#!/bin/sh
# Continuous-profiler smoke test: run the UC1 throughput scenario with
# -profile so the timed appraisal phase executes under a stage-labeled
# CPU capture, then prove the attribution three ways — /profile.json
# must say the hot path is mostly stage-labeled with a verify-stage row,
# `attestctl profile top` must render the same live state, and the raw
# cpu.pprof artifact downloaded from /profile/pprof must re-summarize
# OFFLINE (zero-dependency reader, no live process state) to the same
# hotspot. Run via `make profile-smoke` (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "profile-smoke: building perasim and attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/attestctl" ./cmd/attestctl

# Unique chains (packets == flows, memo off) keep ed25519 verification
# genuinely hot for the whole timed phase — the corpus the profiler is
# supposed to attribute.
"$TMP/perasim" -uc throughput -workers 2 -packets 2000 -flows 2000 -no-memo \
    -profile -telemetry 127.0.0.1:0 -telemetry-hold \
    >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

URL=""
for _ in $(seq 1 150); do
    URL=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/stderr")
    [ -n "$URL" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "profile-smoke: perasim exited early"; cat "$TMP/stderr"; exit 1; }
    sleep 0.2
done
[ -n "$URL" ] || { echo "profile-smoke: endpoint never came up"; cat "$TMP/stderr"; exit 1; }
BASE="${URL%/metrics}"

# The raw wire surface: /profile.json serves the capture summary.
curl -fsS "$BASE/profile.json" >"$TMP/profile.json" || {
    echo "profile-smoke: FAIL — GET /profile.json errored"; cat "$TMP/stderr"; exit 1
}
for want in '"labeled_share"' '"hotspot"' '"stages"' '"verify"'; do
    grep -q "$want" "$TMP/profile.json" || {
        echo "profile-smoke: FAIL — $want missing from /profile.json:"; cat "$TMP/profile.json"; exit 1
    }
done

# A bad query must come back as the application/json error contract,
# not an HTML error page.
curl -fsS "$BASE/profile.json?window=banana" -o /dev/null 2>/dev/null && {
    echo "profile-smoke: FAIL — bad window parameter did not 400"; exit 1
}
curl -sS -i "$BASE/profile.json?window=banana" | grep -qi "content-type: application/json" || {
    echo "profile-smoke: FAIL — /profile.json error is not application/json"; exit 1
}

# Live render: the timed phase must be mostly stage-labeled CPU with a
# verify-stage row (UC1's cost center is chain verification).
"$TMP/attestctl" profile top -collector "$BASE" >"$TMP/live" 2>&1 || {
    echo "profile-smoke: FAIL — attestctl profile top errored:"; cat "$TMP/live"; exit 1
}
grep -q "stage-labeled" "$TMP/live" || {
    echo "profile-smoke: FAIL — no CPU captured:"; cat "$TMP/live"; exit 1
}
grep -q "  verify" "$TMP/live" || {
    echo "profile-smoke: FAIL — no verify-stage attribution:"; cat "$TMP/live"; exit 1
}
LABELED=$(sed -n 's/.* \([0-9][0-9]*\)% stage-labeled.*/\1/p' "$TMP/live")
[ -n "$LABELED" ] && [ "$LABELED" -ge 60 ] || {
    echo "profile-smoke: FAIL — only ${LABELED:-0}% of CPU stage-labeled (want >= 60%):"
    cat "$TMP/live"; exit 1
}
HOTSPOT=$(sed -n 's/.*hotspot \([^ ]*\) .*/\1/p' "$TMP/live")
[ -n "$HOTSPOT" ] || { echo "profile-smoke: FAIL — no hotspot named:"; cat "$TMP/live"; exit 1; }

# Offline half: download the raw cpu.pprof artifact and re-summarize it
# with no live process — the zero-dep reader must agree on the hotspot.
curl -fsS "$BASE/profile/pprof?kind=cpu" -o "$TMP/cpu.pprof" || {
    echo "profile-smoke: FAIL — GET /profile/pprof?kind=cpu errored"; exit 1
}
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""

"$TMP/attestctl" profile top -file "$TMP/cpu.pprof" >"$TMP/offline" 2>&1 || {
    echo "profile-smoke: FAIL — offline decode errored:"; cat "$TMP/offline"; exit 1
}
grep -q "  verify" "$TMP/offline" || {
    echo "profile-smoke: FAIL — offline summary has no verify stage:"; cat "$TMP/offline"; exit 1
}
grep -q "hotspot $HOTSPOT " "$TMP/offline" || {
    echo "profile-smoke: FAIL — offline hotspot disagrees with live ($HOTSPOT):"
    cat "$TMP/offline"; exit 1
}

echo "profile-smoke: OK (${LABELED}% of hot-path CPU stage-labeled; live and offline agree on hotspot $HOTSPOT)"
