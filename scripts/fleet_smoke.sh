#!/bin/sh
# Fleet observability smoke test, over real processes and real sockets:
# boot three perasim -slo runs (one leaves sw2 lapsed with a firing
# alert, two keep every place fresh) plus a fleetd scraping all three,
# then assert on the live /fleet.json that (a) all three processes merge
# into one trust map, (b) the fresh-vs-lapsed disagreement on sw2 is
# reported as a status-conflict finding, (c) a killed process goes
# `down` within two scrape intervals while the survivors keep updating,
# and (d) attestctl fleet and the pera_fleet_* federation metrics render
# the same state. Run via `make fleet-smoke` (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    for p in $PIDS; do wait "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building perasim, fleetd and attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/fleetd" ./cmd/fleetd
go build -o "$TMP/attestctl" ./cmd/attestctl

# Boot one fleet member: $1 = name, $2+ = extra perasim -slo flags. Each
# run holds its telemetry endpoint open after completing; the frozen sim
# clock keeps the coverage stable for assertions.
start_sim() {
    name=$1; shift
    "$TMP/perasim" -slo "$@" -telemetry 127.0.0.1:0 -telemetry-hold \
        >"$TMP/$name.out" 2>"$TMP/$name.err" &
    PIDS="$PIDS $!"
    eval "${name}_pid=$!"
}

wait_url() {
    name=$1
    url=""
    for _ in $(seq 1 150); do
        url=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/$name.err")
        [ -n "$url" ] && break
        sleep 0.2
    done
    if [ -z "$url" ]; then
        echo "fleet-smoke: $name endpoint never came up"; cat "$TMP/$name.err"; exit 1
    fi
    echo "${url%/metrics}"
}

# sim1: recovery disabled — sw2 stays lapsed, staleness alert firing.
# sim2/sim3: freeze disabled — every place fresh. Same chain, same place
# names, so sim1 and sim2 disagree about sw2: the seeded conflict.
start_sim sim1 -slo-packets 96 -slo-recover -1
start_sim sim2 -slo-packets 96 -slo-freeze -1
start_sim sim3 -slo-packets 96 -slo-freeze -1
URL1=$(wait_url sim1); URL2=$(wait_url sim2); URL3=$(wait_url sim3)
echo "fleet-smoke: members at $URL1 $URL2 $URL3"

INTERVAL_MS=300
"$TMP/fleetd" -targets "sim1=$URL1,sim2=$URL2,sim3=$URL3" \
    -interval ${INTERVAL_MS}ms -listen 127.0.0.1:0 \
    >"$TMP/fleetd.out" 2>"$TMP/fleetd.err" &
PIDS="$PIDS $!"

FLEET=""
for _ in $(seq 1 100); do
    FLEET=$(sed -n 's|.*serving fleet view on \(http://[^/]*\)/fleet.json.*|\1|p' "$TMP/fleetd.out")
    [ -n "$FLEET" ] && break
    sleep 0.1
done
[ -n "$FLEET" ] || { echo "fleet-smoke: fleetd never came up"; cat "$TMP/fleetd.out" "$TMP/fleetd.err"; exit 1; }
echo "fleet-smoke: fleetd at $FLEET"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1" >"$2"
    else
        wget -qO "$2" "$1"
    fi
}

# (a) All three processes merged into one trust map, everyone up.
ok=""
for _ in $(seq 1 50); do
    fetch "$FLEET/fleet.json" "$TMP/fleet.json" || true
    if grep -q '"targets_up": 3' "$TMP/fleet.json" 2>/dev/null; then ok=1; break; fi
    sleep 0.2
done
[ -n "$ok" ] || { echo "fleet-smoke: FAIL — three targets never merged up:"; cat "$TMP/fleet.json"; exit 1; }
for place in sw1 sw2 sw3 sw4; do
    grep -q "\"place\": \"$place\"" "$TMP/fleet.json" || {
        echo "fleet-smoke: FAIL — $place missing from merged trust map:"; cat "$TMP/fleet.json"; exit 1
    }
done

# (b) The fresh-vs-lapsed disagreement on sw2 is a first-class finding,
# and the merged feed carries sim1's firing staleness alert.
grep -q '"kind": "status-conflict"' "$TMP/fleet.json" || {
    echo "fleet-smoke: FAIL — no status-conflict finding:"; cat "$TMP/fleet.json"; exit 1
}
grep -q '"conflict": true' "$TMP/fleet.json" || {
    echo "fleet-smoke: FAIL — sw2 trust row not marked conflicted:"; cat "$TMP/fleet.json"; exit 1
}
grep -q '"rule": "staleness-threshold"' "$TMP/fleet.json" || {
    echo "fleet-smoke: FAIL — firing staleness alert missing from merged feed:"; cat "$TMP/fleet.json"; exit 1
}

# attestctl renders the same state from the daemon, and a one-shot
# -endpoints scrape (no daemon) sees the same conflict.
"$TMP/attestctl" fleet top -fleet "$FLEET" >"$TMP/top.txt" 2>&1 || {
    echo "fleet-smoke: FAIL — attestctl fleet top errored:"; cat "$TMP/top.txt"; exit 1
}
grep -q "CONFLICT" "$TMP/top.txt" || {
    echo "fleet-smoke: FAIL — attestctl fleet top missing the conflict row:"; cat "$TMP/top.txt"; exit 1
}
"$TMP/attestctl" fleet status -endpoints "$URL1,$URL2" >"$TMP/oneshot.txt" 2>&1 || {
    echo "fleet-smoke: FAIL — attestctl fleet -endpoints errored:"; cat "$TMP/oneshot.txt"; exit 1
}
grep -q "status-conflict" "$TMP/oneshot.txt" || {
    echo "fleet-smoke: FAIL — one-shot scrape missing the conflict finding:"; cat "$TMP/oneshot.txt"; exit 1
}

# (c) Kill sim3: it must be marked down within two scrape intervals
# (generous wall-clock allowance for scheduling) while the survivors
# keep being scraped.
before=$(sed -n '/"name": "sim1"/,/}/p' "$TMP/fleet.json" | sed -n 's/.*"scrapes": \([0-9]*\).*/\1/p' | head -1)
kill "$sim3_pid" 2>/dev/null || true
down=""
for _ in $(seq 1 40); do   # 40 × 200ms = 8s ≫ 2 × 300ms intervals
    fetch "$FLEET/fleet.json" "$TMP/fleet.json" || true
    if grep -q '"targets_down": 1' "$TMP/fleet.json" 2>/dev/null; then down=1; break; fi
    sleep 0.2
done
[ -n "$down" ] || { echo "fleet-smoke: FAIL — killed target never went down:"; cat "$TMP/fleet.json"; exit 1; }
grep -q '"kind": "target-down"' "$TMP/fleet.json" || {
    echo "fleet-smoke: FAIL — no target-down finding:"; cat "$TMP/fleet.json"; exit 1
}
grep -q '"targets_up": 2' "$TMP/fleet.json" || {
    echo "fleet-smoke: FAIL — survivors not up after the kill:"; cat "$TMP/fleet.json"; exit 1
}
sleep 1
fetch "$FLEET/fleet.json" "$TMP/fleet2.json"
after=$(sed -n '/"name": "sim1"/,/}/p' "$TMP/fleet2.json" | sed -n 's/.*"scrapes": \([0-9]*\).*/\1/p' | head -1)
if [ -z "$before" ] || [ -z "$after" ] || [ "$after" -le "$before" ]; then
    echo "fleet-smoke: FAIL — survivor scrapes stalled ($before -> $after)"; exit 1
fi

# (d) The Prometheus federation endpoint reports the same fleet state.
fetch "$FLEET/metrics" "$TMP/metrics.txt"
grep -q 'pera_fleet_targets{state="down"} 1' "$TMP/metrics.txt" || {
    echo "fleet-smoke: FAIL — federation metrics missing the down target:"; cat "$TMP/metrics.txt"; exit 1
}
grep -q 'pera_fleet_conflicts 1' "$TMP/metrics.txt" || {
    echo "fleet-smoke: FAIL — federation metrics missing the conflict:"; cat "$TMP/metrics.txt"; exit 1
}

echo "fleet-smoke: OK (3 processes merged, sw2 conflict found, kill -> down in <2 intervals, survivors kept updating)"
