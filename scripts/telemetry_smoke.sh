#!/bin/sh
# Telemetry smoke test: run the throughput use case with a live endpoint,
# scrape /metrics, and assert every pipeline stage reported in. This is
# the end-to-end proof that the observability wiring (switch counters,
# stage histograms, pool/cache/memo/netsim metrics, tracer) is intact —
# run via `make telemetry-smoke` (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "telemetry-smoke: building perasim"
go build -o "$TMP/perasim" ./cmd/perasim

# :0 picks a free port; -telemetry-hold keeps serving after the run and
# prints the bound URL to stderr, so waiting for that line both finds
# the port and guarantees the run (and its metrics) is complete.
"$TMP/perasim" -uc throughput -packets 1000 -flows 8 -workers 2 \
    -trace 4 -telemetry 127.0.0.1:0 -telemetry-hold \
    >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/stderr")
    [ -n "$URL" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "telemetry-smoke: perasim exited early"; cat "$TMP/stderr"; exit 1; }
    sleep 0.2
done
if [ -z "$URL" ]; then
    echo "telemetry-smoke: endpoint never came up"
    cat "$TMP/stderr"
    exit 1
fi
echo "telemetry-smoke: scraping $URL"

if command -v curl >/dev/null 2>&1; then
    curl -fsS "$URL" >"$TMP/metrics"
else
    wget -qO "$TMP/metrics" "$URL"
fi

# Every pipeline stage must be present, and the per-stage histograms
# (sign / verify / appraise) must have counted real observations.
for metric in \
    pera_packets_total \
    pera_attested_total \
    pera_sign_ops_total \
    pera_sign_seconds_bucket \
    pera_verify_seconds_count \
    pera_appraise_seconds_count \
    pera_pool_jobs_total \
    pera_pool_queue_depth \
    pera_evidence_cache_hits_total \
    pera_verify_memo_hits_total \
    pera_trace_recorded_total \
    netsim_deliveries_total
do
    grep -q "^$metric" "$TMP/metrics" || {
        echo "telemetry-smoke: FAIL — $metric missing from /metrics"
        exit 1
    }
done

for hist in pera_sign_seconds pera_verify_seconds pera_appraise_seconds; do
    awk -v m="${hist}_count" '$1 ~ "^"m && $2+0 > 0 { found = 1 } END { exit !found }' "$TMP/metrics" || {
        echo "telemetry-smoke: FAIL — $hist has no observations"
        exit 1
    }
done

# The run's one-shot Prometheus dump must be the only thing on stdout.
head -1 "$TMP/stdout" | grep -q '^# TYPE ' || {
    echo "telemetry-smoke: FAIL — stdout is not clean Prometheus text:"
    head -3 "$TMP/stdout"
    exit 1
}

echo "telemetry-smoke: OK ($(grep -c '^# TYPE' "$TMP/metrics") metric families)"
