#!/bin/sh
# Observatory smoke test: run the UC1 observe scenario with a live
# collector endpoint, fetch /observatory.json, and assert (a) every hop
# of the chain is named in the snapshot, (b) the mid-run program swap is
# localized to the attacked switch, and (c) attestctl top/paths render
# the same collector state. Run via `make observe-smoke` (part of tier-1
# `make test`).
set -eu

cd "$(dirname "$0")/.."

HOPS=4
ATTACK=sw2   # default attack target for a 4-hop chain (the middle hop)

TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "observe-smoke: building perasim and attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/attestctl" ./cmd/attestctl

# :0 picks a free port; -telemetry-hold keeps the collector's
# /observatory.json up after the run, and the "run complete" stderr line
# carries the bound URL.
"$TMP/perasim" -observe -observe-hops $HOPS -observe-packets 96 \
    -telemetry 127.0.0.1:0 -telemetry-hold \
    >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/stderr")
    [ -n "$URL" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "observe-smoke: perasim exited early"; cat "$TMP/stderr"; exit 1; }
    sleep 0.2
done
if [ -z "$URL" ]; then
    echo "observe-smoke: endpoint never came up"
    cat "$TMP/stderr"
    exit 1
fi
BASE="${URL%/metrics}"
echo "observe-smoke: fetching $BASE/observatory.json"

if command -v curl >/dev/null 2>&1; then
    curl -fsS "$BASE/observatory.json" >"$TMP/snapshot.json"
else
    wget -qO "$TMP/snapshot.json" "$BASE/observatory.json"
fi

# (a) Every hop of the chain appears in the collector's health rows.
i=1
while [ $i -le $HOPS ]; do
    grep -q "\"place\": \"sw$i\"" "$TMP/snapshot.json" || {
        echo "observe-smoke: FAIL — hop sw$i missing from collector snapshot"
        exit 1
    }
    i=$((i + 1))
done

# (b) The program swap is localized to the attacked switch.
grep -q "\"localization\"" "$TMP/snapshot.json" || {
    echo "observe-smoke: FAIL — no localization in snapshot"
    exit 1
}
sed -n '/"localization"/,$p' "$TMP/snapshot.json" | grep -q "\"place\": \"$ATTACK\"" || {
    echo "observe-smoke: FAIL — compromise not localized to $ATTACK:"
    sed -n '/"localization"/,$p' "$TMP/snapshot.json"
    exit 1
}
grep -q "localized: $ATTACK" "$TMP/stderr" || {
    echo "observe-smoke: FAIL — perasim did not report the localization"
    exit 1
}

# (c) attestctl renders the same collector live.
"$TMP/attestctl" top -collector "$BASE" -n 1 >"$TMP/top" 2>&1 || {
    echo "observe-smoke: FAIL — attestctl top errored:"; cat "$TMP/top"; exit 1
}
grep -q "LOCALIZED: $ATTACK" "$TMP/top" || {
    echo "observe-smoke: FAIL — attestctl top missing localization:"; cat "$TMP/top"; exit 1
}
grep -q "sw$HOPS" "$TMP/top" || {
    echo "observe-smoke: FAIL — attestctl top missing hop rows"; exit 1
}
"$TMP/attestctl" paths -collector "$BASE" -n 2 >"$TMP/paths" 2>&1 || {
    echo "observe-smoke: FAIL — attestctl paths errored:"; cat "$TMP/paths"; exit 1
}
grep -q "FAIL @ $ATTACK" "$TMP/paths" || {
    echo "observe-smoke: FAIL — attestctl paths missing the failing trace:"; cat "$TMP/paths"; exit 1
}

echo "observe-smoke: OK (all $HOPS hops reported, compromise localized to $ATTACK)"
