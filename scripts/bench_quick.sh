#!/bin/sh
# bench_quick.sh — allocation-regression guard for the hot path.
#
# Runs BenchmarkThroughput_EndToEnd a handful of iterations and fails if
# allocs/op exceeds the checked-in budget (bench_budget.txt). allocs/op
# from -benchmem is an exact runtime counter, not a timing, so a short
# run is deterministic enough to gate CI on.
set -eu

cd "$(dirname "$0")/.."

budget=$(grep -v '^#' bench_budget.txt | grep -o '[0-9][0-9]*' | head -n1)
if [ -z "$budget" ]; then
    echo "bench-quick: no budget found in bench_budget.txt" >&2
    exit 2
fi

out=$(${GO:-go} test -run '^$' -bench 'BenchmarkThroughput_EndToEnd' -benchmem -benchtime 5x .)
echo "$out"

allocs=$(echo "$out" | awk '/BenchmarkThroughput_EndToEnd/ { for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$allocs" ]; then
    echo "bench-quick: could not parse allocs/op from benchmark output" >&2
    exit 2
fi

echo "bench-quick: ${allocs} allocs/op (budget ${budget})"
if [ "$allocs" -gt "$budget" ]; then
    echo "bench-quick: FAIL — BenchmarkThroughput_EndToEnd exceeded the allocation budget." >&2
    echo "bench-quick: if this increase is intentional, update bench_budget.txt in the same change." >&2
    exit 1
fi
echo "bench-quick: OK"
