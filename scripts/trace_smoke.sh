#!/bin/sh
# Distributed-tracing smoke test: run attestd and appraised as separate
# processes over real TCP sockets, both tracing every flow, drive one
# attestation round with attestctl (which injects the trace context into
# the challenge and appraise frames), then assert via `attestctl trace`
# that the two processes' span rings merge into ONE trace — same
# flow-derived trace ID on both sides, attester and appraiser span trees
# present, critical-path breakdown rendered. Run via `make trace-smoke`
# (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
ATT_PID=""
APPR_PID=""
cleanup() {
    [ -n "$ATT_PID" ] && kill "$ATT_PID" 2>/dev/null || true
    [ -n "$APPR_PID" ] && kill "$APPR_PID" 2>/dev/null || true
    [ -n "$ATT_PID" ] && wait "$ATT_PID" 2>/dev/null || true
    [ -n "$APPR_PID" ] && wait "$APPR_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "trace-smoke: building attestd, appraised, attestctl"
go build -o "$TMP/attestd" ./cmd/attestd
go build -o "$TMP/appraised" ./cmd/appraised
go build -o "$TMP/attestctl" ./cmd/attestctl

# extract waits for a sed pattern to produce output from a log file.
extract() { # file pattern
    _out=""
    for _ in $(seq 1 100); do
        _out=$(sed -n "$2" "$1")
        [ -n "$_out" ] && break
        sleep 0.1
    done
    [ -n "$_out" ] || { echo "trace-smoke: never saw $2 in $1"; cat "$1"; exit 1; }
    printf '%s' "$_out"
}

"$TMP/attestd" -listen 127.0.0.1:0 -name sw1 -program firewall \
    -telemetry 127.0.0.1:0 -trace 1 >"$TMP/attestd.out" 2>&1 &
ATT_PID=$!
ATT_ADDR=$(extract "$TMP/attestd.out" 's/.*listening on \([0-9.:]*\).*/\1/p')
ATT_TELEM=$(extract "$TMP/attestd.out" 's|.*telemetry serving on \(http://[0-9.:]*\)/metrics.*|\1|p')

# attestd's provisioning stdout IS the appraised config format.
for _ in $(seq 1 100); do
    grep -q '^golden .* tables ' "$TMP/attestd.out" && break
    sleep 0.1
done
grep '^key \|^golden ' "$TMP/attestd.out" >"$TMP/golden.conf"
[ -s "$TMP/golden.conf" ] || { echo "trace-smoke: no provisioning lines"; cat "$TMP/attestd.out"; exit 1; }

"$TMP/appraised" -listen 127.0.0.1:0 -config "$TMP/golden.conf" \
    -telemetry 127.0.0.1:0 -trace 1 >"$TMP/appraised.out" 2>&1 &
APPR_PID=$!
APPR_ADDR=$(extract "$TMP/appraised.out" 's/.*listening on \([0-9.:]*\).*/\1/p')
APPR_TELEM=$(extract "$TMP/appraised.out" 's|.*telemetry serving on \(http://[0-9.:]*\)/metrics.*|\1|p')

echo "trace-smoke: attester $ATT_ADDR ($ATT_TELEM), appraiser $APPR_ADDR ($APPR_TELEM)"

"$TMP/attestctl" -attester "$ATT_ADDR" -appraiser "$APPR_ADDR" \
    -claims hardware,program,tables -subject sw1 >"$TMP/round.out" 2>&1 || {
    echo "trace-smoke: FAIL — attestation round errored:"; cat "$TMP/round.out"; exit 1
}
grep -q "result PASS" "$TMP/round.out" || {
    echo "trace-smoke: FAIL — round did not PASS:"; cat "$TMP/round.out"; exit 1
}
TID=$(sed -n 's/^attestctl: trace \([0-9a-f]\{32\}\).*/\1/p' "$TMP/round.out")
[ -n "$TID" ] || { echo "trace-smoke: no trace ID printed"; cat "$TMP/round.out"; exit 1; }
echo "trace-smoke: round PASS, trace $TID"

# The tree must merge spans from BOTH processes under the one trace.
"$TMP/attestctl" trace -endpoints "$ATT_TELEM,$APPR_TELEM" "$TID" >"$TMP/tree.out" 2>&1 || {
    echo "trace-smoke: FAIL — attestctl trace errored:"; cat "$TMP/tree.out"; exit 1
}
for want in "trace $TID" "sw1/attest" "sw1/sign" "appraised/appraise" "appraised/verdict" "critical path"; do
    grep -q "$want" "$TMP/tree.out" || {
        echo "trace-smoke: FAIL — '$want' missing from span tree:"; cat "$TMP/tree.out"; exit 1
    }
done

# Every merged span carries the same trace ID: one multi-process trace.
"$TMP/attestctl" trace -json -endpoints "$ATT_TELEM,$APPR_TELEM" "$TID" >"$TMP/tree.json" 2>&1
if grep '"trace_id"' "$TMP/tree.json" | grep -qv "$TID"; then
    echo "trace-smoke: FAIL — foreign trace ID in merged spans:"; cat "$TMP/tree.json"; exit 1
fi

# The flow form of the argument resolves to the same trace.
FLOW=$(sed -n 's/^attestctl: nonce \([0-9a-f]*\).*/\1/p' "$TMP/round.out")
"$TMP/attestctl" trace -endpoints "$ATT_TELEM" "$FLOW" >"$TMP/byflow.out" 2>&1
grep -q "trace $TID" "$TMP/byflow.out" || {
    echo "trace-smoke: FAIL — flow arg did not resolve to trace $TID:"; cat "$TMP/byflow.out"; exit 1
}

echo "trace-smoke: OK (one trace $TID across attestd + appraised)"
