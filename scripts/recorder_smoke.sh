#!/bin/sh
# Flight-recorder smoke test: run the UC1 observe scenario with the
# recorder on, read live metric history through `attestctl history`,
# then KILL the process and prove the incident is fully reconstructable
# offline — `attestctl incident` must find a bundle whose trigger names
# the exact compromised switch, whose anomaly record carries the
# localization, and whose file digests and audit-ledger tail chain all
# re-verify with no live process. Run via `make recorder-smoke` (part of
# tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

ATTACK=sw2   # default attack target for a 4-hop chain (the middle hop)

TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "recorder-smoke: building perasim and attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/attestctl" ./cmd/attestctl

"$TMP/perasim" -observe -observe-hops 4 -observe-packets 96 \
    -audit "$TMP/trail.jsonl" -recorder "$TMP/incidents" \
    -telemetry 127.0.0.1:0 -telemetry-hold \
    >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/stderr")
    [ -n "$URL" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "recorder-smoke: perasim exited early"; cat "$TMP/stderr"; exit 1; }
    sleep 0.2
done
[ -n "$URL" ] || { echo "recorder-smoke: endpoint never came up"; cat "$TMP/stderr"; exit 1; }
BASE="${URL%/metrics}"

# Live half: /history.json serves the recorder's ring store.
"$TMP/attestctl" history -collector "$BASE" >"$TMP/index" 2>&1 || {
    echo "recorder-smoke: FAIL — attestctl history errored:"; cat "$TMP/index"; exit 1
}
for want in pera_recorder_scrapes_total pera_evidence_cache_misses_total; do
    grep -q "$want" "$TMP/index" || {
        echo "recorder-smoke: FAIL — series $want missing from history index:"; cat "$TMP/index"; exit 1
    }
done
"$TMP/attestctl" history pera_evidence_cache_misses_total -collector "$BASE" >"$TMP/spark" 2>&1 || {
    echo "recorder-smoke: FAIL — attestctl history <metric> errored:"; cat "$TMP/spark"; exit 1
}
grep -q "pera_evidence_cache_misses_total (counter" "$TMP/spark" || {
    echo "recorder-smoke: FAIL — sparkline header missing:"; cat "$TMP/spark"; exit 1
}

# The anomaly pipeline fired through the shared freshness sinks.
grep -q "recorder: ANOMALY" "$TMP/stderr" || {
    echo "recorder-smoke: FAIL — no anomaly on the log sink"; cat "$TMP/stderr"; exit 1
}

# Offline half: kill the process first. The bundle IS the incident.
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""

"$TMP/attestctl" incident list -dir "$TMP/incidents" >"$TMP/list" 2>&1 || {
    echo "recorder-smoke: FAIL — attestctl incident list errored:"; cat "$TMP/list"; exit 1
}
grep -q "incident-" "$TMP/list" || {
    echo "recorder-smoke: FAIL — no incident bundles:"; cat "$TMP/list"; exit 1
}

# Find the localization bundle: the capture that names the compromised
# switch (it bypasses the debounce precisely so it always exists).
LOC_ID=""
for id in $(sed -n 's/^\([0-9a-f]\{12\}\) .*/\1/p' "$TMP/list"); do
    if "$TMP/attestctl" incident show "$id" -dir "$TMP/incidents" 2>/dev/null |
        grep -q "rule=localization"; then
        LOC_ID="$id"
        break
    fi
done
[ -n "$LOC_ID" ] || { echo "recorder-smoke: FAIL — no localization bundle"; cat "$TMP/list"; exit 1; }

"$TMP/attestctl" incident show "$LOC_ID" -dir "$TMP/incidents" -verify >"$TMP/show" 2>&1 || {
    echo "recorder-smoke: FAIL — incident show -verify errored:"; cat "$TMP/show"; exit 1
}
grep -q "rule=localization place=$ATTACK" "$TMP/show" || {
    echo "recorder-smoke: FAIL — bundle does not name $ATTACK:"; cat "$TMP/show"; exit 1
}
for want in "history.json" "observatory.json" "ledger_tail.jsonl" "verify   OK"; do
    grep -q "$want" "$TMP/show" || {
        echo "recorder-smoke: FAIL — '$want' missing from incident show:"; cat "$TMP/show"; exit 1
    }
done

# The archived anomaly record itself carries the localization.
"$TMP/attestctl" incident show "$LOC_ID" -dir "$TMP/incidents" -file anomaly.json >"$TMP/anom" 2>&1 || {
    echo "recorder-smoke: FAIL — incident show -file errored:"; cat "$TMP/anom"; exit 1
}
grep -q '"rule": "localization"' "$TMP/anom" || {
    echo "recorder-smoke: FAIL — anomaly.json is not the localization:"; cat "$TMP/anom"; exit 1
}
grep -q "\"place\": \"$ATTACK\"" "$TMP/anom" || {
    echo "recorder-smoke: FAIL — anomaly.json does not name $ATTACK:"; cat "$TMP/anom"; exit 1
}

# The full ledger also sealed the anomaly and the capture, and still
# chain-verifies end to end.
"$TMP/attestctl" audit verify -ledger "$TMP/trail.jsonl" >/dev/null || {
    echo "recorder-smoke: FAIL — ledger verification failed"; exit 1
}
for event in anomaly_detected incident_bundle; do
    "$TMP/attestctl" audit query -ledger "$TMP/trail.jsonl" -event "$event" -limit 1 |
        grep -q "$event" || {
        echo "recorder-smoke: FAIL — no $event record on the ledger"; exit 1
    }
done

echo "recorder-smoke: OK (incident bundle $LOC_ID localizes $ATTACK offline; digests + ledger tail verified)"
