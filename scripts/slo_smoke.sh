#!/bin/sh
# Trust-decay smoke test: run the SLO scenario with recovery disabled so
# the frozen switch stays dark, then assert over the live endpoints that
# (a) /coverage.json marks exactly the frozen place lapsed, (b)
# /alerts.json shows a firing staleness alert for it, (c) attestctl
# coverage/alerts render the same watchdog state, and (d) the audit
# ledger holds alert_fired records and still verifies. Run via
# `make slo-smoke` (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

FROZEN=sw2   # default freeze target for a 4-hop chain (the middle hop)

TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "slo-smoke: building perasim and attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/attestctl" ./cmd/attestctl

# -slo-recover -1 leaves the alert firing and the place lapsed; :0 picks
# a free port and -telemetry-hold keeps /coverage.json and /alerts.json
# up after the run. The "run complete" stderr line carries the URL.
"$TMP/perasim" -slo -slo-packets 96 -slo-recover -1 \
    -telemetry 127.0.0.1:0 -telemetry-hold -audit "$TMP/trail.jsonl" \
    >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

URL=""
for _ in $(seq 1 100); do
    URL=$(sed -n 's/.*run complete; telemetry still serving on \(http:[^ ]*\).*/\1/p' "$TMP/stderr")
    [ -n "$URL" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "slo-smoke: perasim exited early"; cat "$TMP/stderr"; exit 1; }
    sleep 0.2
done
if [ -z "$URL" ]; then
    echo "slo-smoke: endpoint never came up"
    cat "$TMP/stderr"
    exit 1
fi
BASE="${URL%/metrics}"
echo "slo-smoke: fetching $BASE/coverage.json and $BASE/alerts.json"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1" >"$2"
    else
        wget -qO "$2" "$1"
    fi
}
fetch "$BASE/coverage.json" "$TMP/coverage.json"
fetch "$BASE/alerts.json" "$TMP/alerts.json"

# (a) Exactly the frozen place is lapsed; the healthy hops are fresh.
grep -q '"lapsed": 1' "$TMP/coverage.json" || {
    echo "slo-smoke: FAIL — coverage does not count exactly 1 lapsed place:"
    cat "$TMP/coverage.json"; exit 1
}
sed -n "/\"place\": \"$FROZEN\"/,/}/p" "$TMP/coverage.json" | grep -q '"status": "lapsed"' || {
    echo "slo-smoke: FAIL — $FROZEN not lapsed in coverage:"
    cat "$TMP/coverage.json"; exit 1
}

# (b) A staleness alert for the frozen place is firing.
grep -q '"rule": "staleness-threshold"' "$TMP/alerts.json" || {
    echo "slo-smoke: FAIL — no staleness alert:"; cat "$TMP/alerts.json"; exit 1
}
grep -q '"state": "firing"' "$TMP/alerts.json" || {
    echo "slo-smoke: FAIL — no firing alert:"; cat "$TMP/alerts.json"; exit 1
}
grep -q "\"place\": \"$FROZEN\"" "$TMP/alerts.json" || {
    echo "slo-smoke: FAIL — alert not attributed to $FROZEN:"; cat "$TMP/alerts.json"; exit 1
}

# (c) attestctl renders the same watchdog live.
"$TMP/attestctl" coverage -collector "$BASE" >"$TMP/coverage.txt" 2>&1 || {
    echo "slo-smoke: FAIL — attestctl coverage errored:"; cat "$TMP/coverage.txt"; exit 1
}
grep -q "$FROZEN" "$TMP/coverage.txt" && grep -q "lapsed" "$TMP/coverage.txt" || {
    echo "slo-smoke: FAIL — attestctl coverage missing the lapsed row:"; cat "$TMP/coverage.txt"; exit 1
}
"$TMP/attestctl" alerts -collector "$BASE" >"$TMP/alerts.txt" 2>&1 || {
    echo "slo-smoke: FAIL — attestctl alerts errored:"; cat "$TMP/alerts.txt"; exit 1
}
grep -q "staleness-threshold" "$TMP/alerts.txt" && grep -q "firing" "$TMP/alerts.txt" || {
    echo "slo-smoke: FAIL — attestctl alerts missing the firing alert:"; cat "$TMP/alerts.txt"; exit 1
}

# (d) The sealed ledger verifies and holds the alert lifecycle records.
grep -q '"event":"alert_fired"' "$TMP/trail.jsonl" || {
    echo "slo-smoke: FAIL — no alert_fired record in the audit ledger"; exit 1
}
"$TMP/attestctl" audit verify -ledger "$TMP/trail.jsonl" >"$TMP/verify.txt" 2>&1 || {
    echo "slo-smoke: FAIL — ledger verification failed:"; cat "$TMP/verify.txt"; exit 1
}

echo "slo-smoke: OK ($FROZEN lapsed, staleness alert firing, ledger verified)"
