#!/bin/sh
# Audit-ledger smoke test: run perasim with -audit, then prove the chain
# end to end with the real CLI — verify passes on the pristine ledger,
# query and explain find the run's verdicts, and flipping a single byte
# makes verify fail at the damaged record. This is the tamper-evidence
# property exercised through the shipped binaries rather than the unit
# tests — run via `make audit-smoke` (part of tier-1 `make test`).
set -eu

cd "$(dirname "$0")/.."

TMP="$(mktemp -d)"
cleanup() { rm -rf "$TMP"; }
trap cleanup EXIT INT TERM

echo "audit-smoke: building perasim + attestctl"
go build -o "$TMP/perasim" ./cmd/perasim
go build -o "$TMP/attestctl" ./cmd/attestctl

LEDGER="$TMP/trail.jsonl"
"$TMP/perasim" -uc 1 -audit "$LEDGER" >"$TMP/stdout" 2>"$TMP/stderr" || {
    echo "audit-smoke: FAIL — perasim -audit exited non-zero"
    cat "$TMP/stderr"
    exit 1
}
grep -q "audit ledger sealed" "$TMP/stderr" || {
    echo "audit-smoke: FAIL — perasim never sealed the ledger"
    cat "$TMP/stderr"
    exit 1
}
[ -s "$LEDGER" ] || { echo "audit-smoke: FAIL — ledger is empty"; exit 1; }

echo "audit-smoke: verifying pristine ledger"
"$TMP/attestctl" audit verify -ledger "$LEDGER" >"$TMP/verify" || {
    echo "audit-smoke: FAIL — pristine ledger did not verify"
    cat "$TMP/verify"
    exit 1
}
grep -q "chain intact" "$TMP/verify"

# The run's verdicts are queryable, and at least one nonce explains into
# a timeline ending in a verdict.
"$TMP/attestctl" audit query -ledger "$LEDGER" -event verdict >"$TMP/verdicts" 2>/dev/null
[ -s "$TMP/verdicts" ] || {
    echo "audit-smoke: FAIL — no verdict records on the ledger"
    exit 1
}
NONCE=$("$TMP/attestctl" audit query -ledger "$LEDGER" -event verdict -json 2>/dev/null |
    sed -n 's/.*"nonce":"\([0-9a-f]\{1,\}\)".*/\1/p' | head -1)
if [ -n "$NONCE" ]; then
    "$TMP/attestctl" audit explain -ledger "$LEDGER" "$NONCE" >"$TMP/explain"
    grep -q "verdict" "$TMP/explain" || {
        echo "audit-smoke: FAIL — explain timeline for $NONCE has no verdict"
        cat "$TMP/explain"
        exit 1
    }
fi

# Tamper with one byte in the middle of the file: verify must now fail
# (exit 1) and name a record index. A raw 0x01 never occurs in the
# JSONL output, so the overwrite is guaranteed to change the byte.
SIZE=$(wc -c <"$LEDGER")
OFF=$((SIZE / 2))
cp "$LEDGER" "$TMP/tampered.jsonl"
printf '\001' | dd of="$TMP/tampered.jsonl" bs=1 seek="$OFF" conv=notrunc 2>/dev/null

echo "audit-smoke: verifying tampered ledger (byte $OFF of $SIZE flipped)"
if "$TMP/attestctl" audit verify -ledger "$TMP/tampered.jsonl" >"$TMP/tampered_out"; then
    echo "audit-smoke: FAIL — tampered ledger verified clean"
    cat "$TMP/tampered_out"
    exit 1
fi
grep -q "TAMPERED at record" "$TMP/tampered_out" || {
    echo "audit-smoke: FAIL — tamper not attributed to a record:"
    cat "$TMP/tampered_out"
    exit 1
}

RECORDS=$(sed -n 's/.*ledger OK — \([0-9]\{1,\}\) records.*/\1/p' "$TMP/verify")
echo "audit-smoke: OK (${RECORDS:-?} records; tamper detected: $(cat "$TMP/tampered_out"))"
