module pera

go 1.22
