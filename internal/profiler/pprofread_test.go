package profiler

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
	"time"
)

// spin burns CPU for roughly d so the 100Hz CPU sampler collects
// samples attributable to this function.
//
//go:noinline
func spin(d time.Duration) uint64 {
	var acc uint64 = 1
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<12; i++ {
			acc = acc*1664525 + 1013904223
		}
	}
	return acc
}

// captureLabeledCPU produces one real runtime/pprof CPU profile whose
// samples carry a pprof label, retrying in case a sparse window catches
// no labeled samples.
func captureLabeledCPU(t *testing.T) []byte {
	t.Helper()
	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Fatalf("StartCPUProfile: %v", err)
		}
		pprof.Do(context.Background(), pprof.Labels("test_region", "hot"), func(context.Context) {
			spin(300 * time.Millisecond)
		})
		pprof.StopCPUProfile()
		p, err := ParseProfile(buf.Bytes())
		if err == nil && len(p.Samples) > 0 {
			return buf.Bytes()
		}
	}
	t.Skip("CPU sampler collected no samples (starved host)")
	return nil
}

func TestParseProfileCPUWithLabels(t *testing.T) {
	data := captureLabeledCPU(t)
	p, err := ParseProfile(data)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	// Go CPU profiles are [samples/count, cpu/nanoseconds].
	vi := p.ValueIndex("cpu")
	if vi < 0 || vi >= len(p.SampleTypes) {
		t.Fatalf("no cpu sample type in %+v", p.SampleTypes)
	}
	if p.SampleTypes[vi].Unit != "nanoseconds" {
		t.Fatalf("cpu unit = %q, want nanoseconds", p.SampleTypes[vi].Unit)
	}
	var total int64
	labeled := false
	named := 0
	for i := range p.Samples {
		s := &p.Samples[i]
		if vi >= len(s.Values) {
			t.Fatalf("sample %d has %d values, want > %d", i, len(s.Values), vi)
		}
		total += s.Values[vi]
		if s.Labels["test_region"] == "hot" {
			labeled = true
		}
		if p.LeafFunction(s) != "?" {
			named++
		}
	}
	if total <= 0 {
		t.Fatalf("total cpu nanoseconds = %d, want > 0", total)
	}
	if !labeled {
		t.Fatalf("no sample carried the test_region label (%d samples)", len(p.Samples))
	}
	if named == 0 {
		t.Fatalf("no sample resolved to a named leaf function")
	}
	if p.Period <= 0 {
		t.Fatalf("period = %d, want > 0", p.Period)
	}
}

func TestParseProfileHeap(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	p, err := ParseProfile(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseProfile(heap): %v", err)
	}
	found := false
	for _, st := range p.SampleTypes {
		if st.Type == "inuse_space" {
			found = true
		}
	}
	if !found {
		t.Fatalf("heap profile sample types %+v missing inuse_space", p.SampleTypes)
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":         nil,
		"garbage":       {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"bad gzip":      {0x1f, 0x8b, 0x00, 0x01, 0x02},
		"no str table":  {0x48, 0x01}, // just time_nanos=1
		"truncated len": {0x32, 0x7f}, // string_table claiming 127 bytes, none present
	}
	for name, data := range cases {
		if _, err := ParseProfile(data); err == nil {
			t.Errorf("%s: ParseProfile accepted malformed input", name)
		}
	}
}

func TestParseProfileTruncatedReal(t *testing.T) {
	data := captureLabeledCPU(t)
	// Corrupt the gzip stream: parse must fail loudly, not mis-decode.
	if _, err := ParseProfile(data[:len(data)/2]); err == nil {
		t.Fatalf("ParseProfile accepted a truncated artifact")
	}
}

func TestLeafFunctionUnknown(t *testing.T) {
	p := &Profile{Locations: map[uint64]Location{}, Functions: map[uint64]Function{}}
	if got := p.LeafFunction(&Sample{}); got != "?" {
		t.Fatalf("LeafFunction(no locations) = %q, want ?", got)
	}
	if got := p.LeafFunction(&Sample{LocationIDs: []uint64{42}}); got != "?" {
		t.Fatalf("LeafFunction(unknown location) = %q, want ?", got)
	}
}
