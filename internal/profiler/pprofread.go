// Package profiler is the continuous-profiling plane: it captures
// CPU/heap/mutex/block/goroutine profiles on a cadence into a bounded
// ring, decodes them with a zero-dependency pprof reader, attributes CPU
// samples to RATS stages via the telemetry.ProfRegion labels stamped
// around the hot-path regions, and diffs the live window against a
// pinned baseline so a hot-path regression pages through the same
// freshness sink pipeline (stderr/JSONL/audit ledger) every other alert
// rides. See docs/PROFILING.md.
package profiler

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// This file is the zero-dependency pprof artifact reader: gzip plus a
// minimal protobuf wire-format decode of profile.proto, covering exactly
// the fields the profiler consumes (sample types, samples with labels,
// locations, functions, string table, period). The repo's no-deps rule
// forbids google.golang.org/protobuf; the wire format itself is small —
// varints, and length-delimited submessages — and decoding it by hand
// keeps incident bundles readable offline with nothing but this package.

// ValueType is one (type, unit) pair from the profile's sample_type or
// period_type, resolved through the string table.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one decoded stack sample.
type Sample struct {
	// LocationIDs lead from the leaf (index 0) to the root.
	LocationIDs []uint64
	// Values align with the profile's SampleTypes.
	Values []int64
	// Labels are the string-valued pprof labels (pera_stage, pera_place).
	Labels map[string]string
}

// Line is one source line of a location.
type Line struct {
	FunctionID uint64
	Line       int64
}

// Location is one decoded program counter.
type Location struct {
	ID      uint64
	Address uint64
	Lines   []Line
}

// Function is one decoded function entry.
type Function struct {
	ID   uint64
	Name string
	File string
}

// Profile is a decoded pprof artifact — the subset of profile.proto the
// profiler consumes.
type Profile struct {
	SampleTypes []ValueType
	Samples     []Sample
	Locations   map[uint64]Location
	Functions   map[uint64]Function
	PeriodType  ValueType
	Period      int64
	TimeNanos   int64
	DurationNS  int64

	strings []string
}

// proto wire types.
const (
	wireVarint = 0
	wire64     = 1
	wireBytes  = 2
	wire32     = 5
)

// errTruncated reports malformed/truncated wire data.
var errTruncated = fmt.Errorf("profiler: truncated profile data")

// uvarint decodes one varint at data[off:], returning the value and the
// next offset, or an error on truncation/overflow.
func uvarint(data []byte, off int) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := off; i < len(data); i++ {
		b := data[i]
		if shift >= 64 {
			return 0, 0, fmt.Errorf("profiler: varint overflow at byte %d", off)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, errTruncated
}

// field decodes one field header + payload span starting at off.
// For wireBytes fields the returned span is the payload; for varints it
// is empty and the value is returned directly.
func field(data []byte, off int) (num int, wt int, val uint64, payload []byte, next int, err error) {
	key, off, err := uvarint(data, off)
	if err != nil {
		return 0, 0, 0, nil, 0, err
	}
	num, wt = int(key>>3), int(key&7)
	switch wt {
	case wireVarint:
		val, next, err = uvarint(data, off)
	case wire64:
		if off+8 > len(data) {
			return 0, 0, 0, nil, 0, errTruncated
		}
		for i := 0; i < 8; i++ {
			val |= uint64(data[off+i]) << (8 * i)
		}
		next = off + 8
	case wireBytes:
		var n uint64
		n, off, err = uvarint(data, off)
		if err != nil {
			return 0, 0, 0, nil, 0, err
		}
		if uint64(len(data)-off) < n {
			return 0, 0, 0, nil, 0, errTruncated
		}
		payload, next = data[off:off+int(n)], off+int(n)
	case wire32:
		if off+4 > len(data) {
			return 0, 0, 0, nil, 0, errTruncated
		}
		for i := 0; i < 4; i++ {
			val |= uint64(data[off+i]) << (8 * i)
		}
		next = off + 4
	default:
		return 0, 0, 0, nil, 0, fmt.Errorf("profiler: unknown wire type %d", wt)
	}
	return num, wt, val, payload, next, err
}

// packedOrOne appends either a whole packed payload of varints or one
// unpacked varint value to dst — repeated scalar fields appear both ways
// on the wire.
func packedOrOne(dst []uint64, wt int, val uint64, payload []byte) ([]uint64, error) {
	if wt == wireVarint {
		return append(dst, val), nil
	}
	for off := 0; off < len(payload); {
		v, next, err := uvarint(payload, off)
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
		off = next
	}
	return dst, nil
}

// str resolves a string-table index, tolerating forward references by
// returning "" for anything unresolved (the table is the last field Go's
// encoder emits, so resolution happens after the full parse).
func (p *Profile) str(i uint64) string {
	if i < uint64(len(p.strings)) {
		return p.strings[i]
	}
	return ""
}

// ParseProfile decodes a pprof artifact (gzip-compressed or raw
// profile.proto bytes) into the subset of the schema the profiler uses.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profiler: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profiler: gunzip: %w", err)
		}
		data = raw
	}
	p := &Profile{
		Locations: make(map[uint64]Location),
		Functions: make(map[uint64]Function),
	}
	// First pass collects raw (string-index) forms; indices are resolved
	// after the string table is complete.
	type rawLabel struct{ key, str uint64 }
	type rawSample struct {
		s      Sample
		labels []rawLabel
	}
	var rawSamples []rawSample
	var rawFuncs []struct {
		id, name, file uint64
	}
	var rawSampleTypes, rawPeriodType [][2]uint64

	parseValueType := func(b []byte) ([2]uint64, error) {
		var vt [2]uint64
		for off := 0; off < len(b); {
			num, _, val, _, next, err := field(b, off)
			if err != nil {
				return vt, err
			}
			switch num {
			case 1:
				vt[0] = val
			case 2:
				vt[1] = val
			}
			off = next
		}
		return vt, nil
	}

	for off := 0; off < len(data); {
		num, wt, val, payload, next, err := field(data, off)
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			vt, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			rawSampleTypes = append(rawSampleTypes, vt)
		case 2: // sample
			var rs rawSample
			for o := 0; o < len(payload); {
				n2, wt2, v2, pl2, nx2, err := field(payload, o)
				if err != nil {
					return nil, err
				}
				switch n2 {
				case 1: // location_id
					rs.s.LocationIDs, err = packedOrOne(rs.s.LocationIDs, wt2, v2, pl2)
				case 2: // value
					var vs []uint64
					vs, err = packedOrOne(nil, wt2, v2, pl2)
					for _, u := range vs {
						rs.s.Values = append(rs.s.Values, int64(u))
					}
				case 3: // label
					var l rawLabel
					for lo := 0; lo < len(pl2); {
						n3, _, v3, _, nx3, err := field(pl2, lo)
						if err != nil {
							return nil, err
						}
						switch n3 {
						case 1:
							l.key = v3
						case 2:
							l.str = v3
						}
						lo = nx3
					}
					if l.str != 0 { // numeric labels (str == 0) are not consumed
						rs.labels = append(rs.labels, l)
					}
				}
				if err != nil {
					return nil, err
				}
				o = nx2
			}
			rawSamples = append(rawSamples, rs)
		case 4: // location
			var loc Location
			for o := 0; o < len(payload); {
				n2, _, v2, pl2, nx2, err := field(payload, o)
				if err != nil {
					return nil, err
				}
				switch n2 {
				case 1:
					loc.ID = v2
				case 3:
					loc.Address = v2
				case 4: // line
					var ln Line
					for lo := 0; lo < len(pl2); {
						n3, _, v3, _, nx3, err := field(pl2, lo)
						if err != nil {
							return nil, err
						}
						switch n3 {
						case 1:
							ln.FunctionID = v3
						case 2:
							ln.Line = int64(v3)
						}
						lo = nx3
					}
					loc.Lines = append(loc.Lines, ln)
				}
				o = nx2
			}
			p.Locations[loc.ID] = loc
		case 5: // function
			var fn struct{ id, name, file uint64 }
			for o := 0; o < len(payload); {
				n2, _, v2, _, nx2, err := field(payload, o)
				if err != nil {
					return nil, err
				}
				switch n2 {
				case 1:
					fn.id = v2
				case 2:
					fn.name = v2
				case 4:
					fn.file = v2
				}
				o = nx2
			}
			rawFuncs = append(rawFuncs, fn)
		case 6: // string_table
			if wt != wireBytes {
				return nil, fmt.Errorf("profiler: string_table wire type %d", wt)
			}
			p.strings = append(p.strings, string(payload))
		case 9:
			p.TimeNanos = int64(val)
		case 10:
			p.DurationNS = int64(val)
		case 11: // period_type
			vt, err := parseValueType(payload)
			if err != nil {
				return nil, err
			}
			rawPeriodType = append(rawPeriodType, vt)
		case 12:
			p.Period = int64(val)
		}
		off = next
	}
	if len(p.strings) == 0 {
		return nil, fmt.Errorf("profiler: no string table (not a pprof profile?)")
	}

	for _, vt := range rawSampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: p.str(vt[0]), Unit: p.str(vt[1])})
	}
	if len(rawPeriodType) > 0 {
		vt := rawPeriodType[len(rawPeriodType)-1]
		p.PeriodType = ValueType{Type: p.str(vt[0]), Unit: p.str(vt[1])}
	}
	for _, fn := range rawFuncs {
		p.Functions[fn.id] = Function{ID: fn.id, Name: p.str(fn.name), File: p.str(fn.file)}
	}
	p.Samples = make([]Sample, 0, len(rawSamples))
	for _, rs := range rawSamples {
		s := rs.s
		if len(rs.labels) > 0 {
			s.Labels = make(map[string]string, len(rs.labels))
			for _, l := range rs.labels {
				s.Labels[p.str(l.key)] = p.str(l.str)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// ValueIndex returns the index of the sample-type named typ, or the last
// index when absent — for CPU profiles the convention is
// [samples/count, cpu/nanoseconds], and "last" is the measured quantity
// for every runtime/pprof profile kind.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return len(p.SampleTypes) - 1
}

// LeafFunction names the innermost frame of a sample — its hotspot
// attribution. Unknown locations render as "?".
func (p *Profile) LeafFunction(s *Sample) string {
	if len(s.LocationIDs) == 0 {
		return "?"
	}
	loc, ok := p.Locations[s.LocationIDs[0]]
	if !ok || len(loc.Lines) == 0 {
		return "?"
	}
	fn, ok := p.Functions[loc.Lines[0].FunctionID]
	if !ok || fn.Name == "" {
		return "?"
	}
	return fn.Name
}
