package profiler

import (
	"strings"
	"testing"
	"time"

	"pera/internal/freshness"
	"pera/internal/telemetry"
)

// testSink records dispatched events.
type testSink struct{ events []freshness.Event }

func (s *testSink) Emit(e freshness.Event) { s.events = append(s.events, e) }

func TestCaptureWhileAttributesStages(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(Options{Service: "test", Registry: reg})
	region := telemetry.NewProfRegion(telemetry.StageVerify, "sw1")

	var sum Summary
	for attempt := 0; attempt < 3; attempt++ {
		if err := p.CaptureWhile(func() {
			defer telemetry.ProfExit(region.Enter())
			spin(300 * time.Millisecond)
		}); err != nil {
			t.Fatalf("CaptureWhile: %v", err)
		}
		sum = p.Summary(0)
		if sum.Samples > 0 {
			break
		}
	}
	if sum.Samples == 0 {
		t.Skip("CPU sampler collected no samples (starved host)")
	}
	if telemetry.ProfilingArmed() {
		t.Fatalf("labels still armed after CaptureWhile on an unstarted profiler")
	}
	if sum.TotalSeconds <= 0 {
		t.Fatalf("TotalSeconds = %v, want > 0", sum.TotalSeconds)
	}
	// The capture is one busy spin inside the verify region: nearly all
	// samples must carry the stage label.
	if sum.LabeledShare < 0.5 {
		t.Fatalf("LabeledShare = %.2f, want >= 0.5 (stages %+v)", sum.LabeledShare, sum.Stages)
	}
	found := false
	for _, sc := range sum.Stages {
		if sc.Stage == "verify" && sc.Place == "sw1" && sc.Seconds > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no (verify, sw1) stage row in %+v", sum.Stages)
	}
	if sum.Hotspot == "" || sum.Hotspot == "?" {
		t.Fatalf("hotspot = %q, want a named function", sum.Hotspot)
	}

	// Raw artifacts: the CPU window plus the runtime snapshot kinds.
	for _, kind := range []string{"cpu", "heap", "goroutine"} {
		if data, ts, ok := p.Artifact(kind); !ok || len(data) == 0 || ts == 0 {
			t.Fatalf("Artifact(%q) missing after capture", kind)
		}
	}
	// The artifact round-trips through the zero-dep reader.
	data, _, _ := p.Artifact("cpu")
	if _, err := ParseProfile(data); err != nil {
		t.Fatalf("reparse cpu artifact: %v", err)
	}

	// The registry carries the profiler series, including the lazily
	// registered stage counter.
	snap := reg.Snapshot()
	var sawCaptures, sawStage bool
	for _, m := range snap.Metrics {
		switch m.Name {
		case "pera_profile_captures_total":
			sawCaptures = m.Value > 0
		case "pera_profile_stage_cpu_seconds":
			for _, l := range m.Labels {
				if l.Value == "verify" {
					sawStage = m.Value > 0
				}
			}
		}
	}
	if !sawCaptures || !sawStage {
		t.Fatalf("registry missing profiler series: captures=%v stage=%v", sawCaptures, sawStage)
	}
}

func TestCaptureWhileNilProfilerRunsFn(t *testing.T) {
	var p *Profiler
	ran := false
	if err := p.CaptureWhile(func() { ran = true }); err != nil || !ran {
		t.Fatalf("nil CaptureWhile: ran=%v err=%v", ran, err)
	}
}

// mkWindow builds a synthetic decoded window for diff-engine tests.
func mkWindow(tsNS int64, total float64, stages map[stageKey]float64, funcs map[string]float64) window {
	w := window{tsNS: tsNS, durNS: int64(time.Second), total: total, samples: 100,
		stages: stages, funcs: funcs}
	for _, v := range stages {
		w.labeled += v
	}
	return w
}

func TestDiffWindowsFindsStageRegression(t *testing.T) {
	base := mkWindow(1, 1.0,
		map[stageKey]float64{{"verify", "ap"}: 0.2, {"sign", "sw1"}: 0.3},
		map[string]float64{"crypto/ed25519.Verify": 0.2})
	cur := mkWindow(2, 1.0,
		map[stageKey]float64{{"verify", "ap"}: 0.6, {"sign", "sw1"}: 0.1},
		map[string]float64{"crypto/ed25519.Verify": 0.6})

	d := diffWindows(&base, &cur, DiffConfig{}.withDefaults())
	if len(d.Findings) == 0 {
		t.Fatalf("no findings for a 20%%→60%% stage jump")
	}
	var stageHit, funcHit bool
	for _, f := range d.Findings {
		if f.Kind == "stage" && f.What == "verify" && f.Place == "ap" {
			stageHit = true
			if f.Delta < 0.39 || f.Delta > 0.41 {
				t.Fatalf("verify delta = %v, want ~0.40", f.Delta)
			}
			if !strings.Contains(f.Reason, "verify") || !strings.Contains(f.Reason, "ap") {
				t.Fatalf("reason %q missing stage/place", f.Reason)
			}
		}
		if f.Kind == "function" && f.What == "crypto/ed25519.Verify" {
			funcHit = true
		}
	}
	if !stageHit || !funcHit {
		t.Fatalf("findings %+v missing stage/function regression", d.Findings)
	}
	// The improved sign stage must not be a finding.
	for _, f := range d.Findings {
		if f.What == "sign" {
			t.Fatalf("improved stage reported as regression: %+v", f)
		}
	}
}

func TestDiffWindowsIgnoresIdle(t *testing.T) {
	base := mkWindow(1, 0.001, map[stageKey]float64{{"verify", "ap"}: 0.0002}, nil)
	cur := mkWindow(2, 0.001, map[stageKey]float64{{"verify", "ap"}: 0.0009}, nil)
	d := diffWindows(&base, &cur, DiffConfig{}.withDefaults())
	if len(d.Findings) != 0 {
		t.Fatalf("near-idle windows produced findings: %+v", d.Findings)
	}
}

func TestEvaluateLatchesFindings(t *testing.T) {
	p := New(Options{Service: "test"})
	sink := &testSink{}
	p.AddSink(sink)

	base := mkWindow(1, 1.0, map[stageKey]float64{{"verify", "ap"}: 0.2}, nil)
	hot := mkWindow(2, 1.0, map[stageKey]float64{{"verify", "ap"}: 0.6}, nil)
	cool := mkWindow(3, 1.0, map[stageKey]float64{{"verify", "ap"}: 0.2}, nil)

	p.evaluate(&base, &hot)
	if len(sink.events) != 1 {
		t.Fatalf("first breach dispatched %d events, want 1", len(sink.events))
	}
	e := sink.events[0]
	if e.Kind != freshness.KindProfile {
		t.Fatalf("event kind = %q, want %q", e.Kind, freshness.KindProfile)
	}
	if !strings.HasPrefix(e.Alert.Rule, "profile_regression:stage:verify") {
		t.Fatalf("rule = %q", e.Alert.Rule)
	}
	if e.Alert.Place != "ap" {
		t.Fatalf("place = %q, want ap", e.Alert.Place)
	}

	// Still breaching: latched, no refire.
	p.evaluate(&base, &hot)
	if len(sink.events) != 1 {
		t.Fatalf("latched breach refired: %d events", len(sink.events))
	}
	// Recovered: latch clears...
	p.evaluate(&base, &cool)
	if len(sink.events) != 1 {
		t.Fatalf("recovery dispatched an event: %d", len(sink.events))
	}
	// ...so the next breach fires again.
	p.evaluate(&base, &hot)
	if len(sink.events) != 2 {
		t.Fatalf("re-breach after recovery dispatched %d events, want 2", len(sink.events))
	}
	if p.Regressions() != 2 {
		t.Fatalf("Regressions() = %d, want 2", p.Regressions())
	}
}

func TestSetBaselineAndSummaryDiff(t *testing.T) {
	p := New(Options{Service: "test"})
	w1 := mkWindow(1, 1.0, map[stageKey]float64{{"verify", "ap"}: 0.2}, map[string]float64{"f": 0.2})
	p.mu.Lock()
	p.windows = append(p.windows, w1)
	p.mu.Unlock()
	p.SetBaseline()

	w2 := mkWindow(2, 1.0, map[stageKey]float64{{"verify", "ap"}: 0.7}, map[string]float64{"f": 0.7})
	p.mu.Lock()
	p.windows = append(p.windows, w2)
	p.mu.Unlock()

	sum := p.Summary(0)
	if !sum.Baseline || sum.Diff == nil {
		t.Fatalf("summary missing baseline diff: %+v", sum)
	}
	if len(sum.Diff.Findings) == 0 {
		t.Fatalf("diff vs baseline found nothing for a 20%%→70%% jump")
	}
	if b := p.TopDiffJSON(); b == nil || !strings.Contains(string(b), "verify") {
		t.Fatalf("TopDiffJSON missing the regressed stage: %s", b)
	}
}

func TestMergeWindowsAndLookback(t *testing.T) {
	now := time.Now()
	p := New(Options{Service: "test", Clock: func() time.Time { return now }})
	old := mkWindow(now.Add(-time.Hour).UnixNano(), 1.0, map[stageKey]float64{{"sign", "sw1"}: 0.5}, nil)
	recent := mkWindow(now.Add(-time.Second).UnixNano(), 2.0, map[stageKey]float64{{"verify", "ap"}: 1.0}, nil)
	p.mu.Lock()
	p.windows = append(p.windows, old, recent)
	p.mu.Unlock()

	// Lookback of a minute covers only the recent window.
	sum := p.Summary(time.Minute)
	if sum.TotalSeconds != 2.0 {
		t.Fatalf("lookback sum total = %v, want 2.0", sum.TotalSeconds)
	}
	// A day covers both.
	sum = p.Summary(24 * time.Hour)
	if sum.TotalSeconds != 3.0 {
		t.Fatalf("full sum total = %v, want 3.0", sum.TotalSeconds)
	}
	if len(sum.Stages) != 2 {
		t.Fatalf("merged stages = %+v, want 2 rows", sum.Stages)
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	p := New(Options{Service: "test", Window: 50 * time.Millisecond})
	p.Start()
	if !telemetry.ProfilingArmed() {
		t.Fatalf("Start did not arm profiling labels")
	}
	spin(120 * time.Millisecond) // let the loop complete at least one window
	p.Close()
	if telemetry.ProfilingArmed() {
		t.Fatalf("Close left profiling labels armed")
	}
	if p.Captures() == 0 {
		t.Fatalf("capture loop ingested no windows")
	}
	p.Close() // idempotent
}
