package profiler

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"pera/internal/freshness"
)

// StageCost is one attributed (stage, place) row of a profile summary.
type StageCost struct {
	Stage   string  `json:"stage"`
	Place   string  `json:"place"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// FuncCost is one flat (leaf) function row.
type FuncCost struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// Finding is one profile_regression: a stage or function whose CPU
// share grew past the configured delta relative to the pinned baseline.
type Finding struct {
	Kind      string  `json:"kind"` // "stage" | "function"
	What      string  `json:"what"` // stage or function name
	Place     string  `json:"place,omitempty"`
	BaseShare float64 `json:"base_share"`
	CurShare  float64 `json:"cur_share"`
	Delta     float64 `json:"delta"`
	TSNS      int64   `json:"ts_ns"`
	Reason    string  `json:"reason"`
}

// key dedups refires: a finding stays latched while it breaches and can
// fire again only after dropping back under the threshold.
func (f *Finding) key() string { return f.Kind + "|" + f.What + "|" + f.Place }

// StageDelta is one baseline-vs-current stage row of a TopDiff.
type StageDelta struct {
	Stage     string  `json:"stage"`
	Place     string  `json:"place"`
	BaseShare float64 `json:"base_share"`
	CurShare  float64 `json:"cur_share"`
	Delta     float64 `json:"delta"`
}

// FuncDelta is one baseline-vs-current function row of a TopDiff.
type FuncDelta struct {
	Name      string  `json:"name"`
	BaseShare float64 `json:"base_share"`
	CurShare  float64 `json:"cur_share"`
	Delta     float64 `json:"delta"`
}

// TopDiff is the full baseline comparison: every stage and every
// function appearing in either profile, sorted by share regression.
// This is the top_diff.json an incident bundle carries.
type TopDiff struct {
	BaselineNS      int64        `json:"baseline_ns"`
	CurrentNS       int64        `json:"current_ns"`
	BaselineSeconds float64      `json:"baseline_seconds"`
	CurrentSeconds  float64      `json:"current_seconds"`
	Stages          []StageDelta `json:"stages"`
	Functions       []FuncDelta  `json:"functions"`
	Findings        []Finding    `json:"findings,omitempty"`
}

// Summary is the decoded state /profile.json serves: the newest capture
// window's attribution plus lifetime counters, the artifact kinds
// available for raw download, and the most recent regression findings.
// fleetscope pins a subset of this wire shape (see fleetscope.ProfileSummary).
type Summary struct {
	Service        string      `json:"service"`
	CapturedNS     int64       `json:"captured_ns"`
	WindowNS       int64       `json:"window_ns"`
	Captures       uint64      `json:"captures"`
	Samples        int         `json:"samples"`
	TotalSeconds   float64     `json:"total_seconds"`
	LabeledSeconds float64     `json:"labeled_seconds"`
	LabeledShare   float64     `json:"labeled_share"`
	Hotspot        string      `json:"hotspot"`
	HotspotShare   float64     `json:"hotspot_share"`
	Stages         []StageCost `json:"stages"`
	Top            []FuncCost  `json:"top"`
	Kinds          []string    `json:"kinds"`
	Baseline       bool        `json:"baseline"`
	Diff           *TopDiff    `json:"diff,omitempty"`
	Regressions    []Finding   `json:"regressions,omitempty"`
}

// maxFindings bounds the retained finding ring.
const maxFindings = 32

// Summary renders the profiler state over the given lookback window
// (0 = the newest capture window only).
func (p *Profiler) Summary(lookback time.Duration) Summary {
	if p == nil {
		return Summary{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Summary{
		Service:  p.opts.Service,
		Captures: p.captures.Load(),
		Baseline: p.baseline != nil,
	}
	var w window
	switch {
	case len(p.windows) == 0:
		return s
	case lookback <= 0:
		w = p.windows[len(p.windows)-1]
	default:
		cut := p.now() - int64(lookback)
		lo := len(p.windows)
		for lo > 0 && p.windows[lo-1].tsNS >= cut {
			lo--
		}
		w = mergeWindows(p.windows[lo:])
	}
	s.CapturedNS = w.tsNS
	s.WindowNS = w.durNS
	s.Samples = w.samples
	s.TotalSeconds = w.total
	s.LabeledSeconds = w.labeled
	if w.total > 0 {
		s.LabeledShare = w.labeled / w.total
	}
	s.Stages = sortedStages(&w)
	s.Top = sortedFuncs(&w, p.opts.TopN)
	if len(s.Top) > 0 {
		s.Hotspot, s.HotspotShare = s.Top[0].Name, s.Top[0].Share
	}
	for _, kind := range Kinds {
		if len(p.artifacts[kind]) > 0 {
			s.Kinds = append(s.Kinds, kind)
		}
	}
	if p.baseline != nil {
		d := diffWindows(p.baseline, &w, p.opts.Diff)
		s.Diff = &d
	}
	if len(p.findings) > 0 {
		s.Regressions = append([]Finding(nil), p.findings...)
	}
	return s
}

// Diff renders the full baseline comparison against the newest window,
// or false when no baseline is pinned or nothing was captured yet.
func (p *Profiler) Diff() (TopDiff, bool) {
	if p == nil {
		return TopDiff{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.baseline == nil || len(p.windows) == 0 {
		return TopDiff{}, false
	}
	w := p.windows[len(p.windows)-1]
	return diffWindows(p.baseline, &w, p.opts.Diff), true
}

// TopDiffJSON marshals the current baseline diff for incident bundles
// (nil when no baseline comparison exists yet).
func (p *Profiler) TopDiffJSON() []byte {
	d, ok := p.Diff()
	if !ok {
		return nil
	}
	b, err := json.MarshalIndent(&d, "", " ")
	if err != nil {
		return nil
	}
	return b
}

// share is a safe division.
func share(sec, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return sec / total
}

// diffWindows builds the stage/function share comparison between a
// baseline and a current window and extracts findings over the
// configured deltas.
func diffWindows(base, cur *window, cfg DiffConfig) TopDiff {
	d := TopDiff{
		BaselineNS: base.tsNS, CurrentNS: cur.tsNS,
		BaselineSeconds: base.total, CurrentSeconds: cur.total,
	}
	seen := make(map[stageKey]bool, len(base.stages)+len(cur.stages))
	for k := range base.stages {
		seen[k] = true
	}
	for k := range cur.stages {
		seen[k] = true
	}
	for k := range seen {
		sd := StageDelta{
			Stage: k.stage, Place: k.place,
			BaseShare: share(base.stages[k], base.total),
			CurShare:  share(cur.stages[k], cur.total),
		}
		sd.Delta = sd.CurShare - sd.BaseShare
		d.Stages = append(d.Stages, sd)
	}
	sort.Slice(d.Stages, func(i, j int) bool {
		if d.Stages[i].Delta != d.Stages[j].Delta {
			return d.Stages[i].Delta > d.Stages[j].Delta
		}
		if d.Stages[i].Stage != d.Stages[j].Stage {
			return d.Stages[i].Stage < d.Stages[j].Stage
		}
		return d.Stages[i].Place < d.Stages[j].Place
	})

	fseen := make(map[string]bool, len(base.funcs)+len(cur.funcs))
	for f := range base.funcs {
		fseen[f] = true
	}
	for f := range cur.funcs {
		fseen[f] = true
	}
	for f := range fseen {
		fd := FuncDelta{
			Name:      f,
			BaseShare: share(base.funcs[f], base.total),
			CurShare:  share(cur.funcs[f], cur.total),
		}
		fd.Delta = fd.CurShare - fd.BaseShare
		d.Functions = append(d.Functions, fd)
	}
	sort.Slice(d.Functions, func(i, j int) bool {
		if d.Functions[i].Delta != d.Functions[j].Delta {
			return d.Functions[i].Delta > d.Functions[j].Delta
		}
		return d.Functions[i].Name < d.Functions[j].Name
	})

	if cur.total < cfg.MinSeconds || base.total < cfg.MinSeconds {
		return d // shares of a near-idle window are noise, never findings
	}
	for _, sd := range d.Stages {
		if sd.Delta >= cfg.StageDelta {
			d.Findings = append(d.Findings, Finding{
				Kind: "stage", What: sd.Stage, Place: sd.Place,
				BaseShare: sd.BaseShare, CurShare: sd.CurShare, Delta: sd.Delta,
				TSNS: cur.tsNS,
				Reason: fmt.Sprintf("stage %s at %s grew from %.0f%% to %.0f%% of CPU (+%.0f pts vs baseline)",
					sd.Stage, sd.Place, sd.BaseShare*100, sd.CurShare*100, sd.Delta*100),
			})
		}
	}
	for _, fd := range d.Functions {
		if fd.Delta >= cfg.FuncDelta {
			d.Findings = append(d.Findings, Finding{
				Kind: "function", What: fd.Name,
				BaseShare: fd.BaseShare, CurShare: fd.CurShare, Delta: fd.Delta,
				TSNS: cur.tsNS,
				Reason: fmt.Sprintf("function %s grew from %.0f%% to %.0f%% of CPU (+%.0f pts vs baseline)",
					fd.Name, fd.BaseShare*100, fd.CurShare*100, fd.Delta*100),
			})
		}
	}
	return d
}

// evaluate diffs one freshly-ingested window against the baseline and
// dispatches new findings through the sink pipeline. Findings stay
// latched while they breach: a persistent regression fires once, not
// once per window.
func (p *Profiler) evaluate(base, cur *window) {
	d := diffWindows(base, cur, p.opts.Diff)

	p.mu.Lock()
	fresh := make([]Finding, 0, len(d.Findings))
	live := make(map[string]bool, len(d.Findings))
	for _, f := range d.Findings {
		live[f.key()] = true
		if !p.breaching[f.key()] {
			p.breaching[f.key()] = true
			fresh = append(fresh, f)
		}
	}
	for k := range p.breaching {
		if !live[k] {
			delete(p.breaching, k)
		}
	}
	if len(fresh) > 0 {
		p.findings = append(p.findings, fresh...)
		if len(p.findings) > maxFindings {
			p.findings = p.findings[len(p.findings)-maxFindings:]
		}
	}
	p.mu.Unlock()

	for i := range fresh {
		p.dispatch(&fresh[i])
	}
}

// dispatch publishes one finding through the freshness sink pipeline —
// the same stderr/JSONL/audit-ledger (and recorder bundling) fan-out
// alerts and anomalies ride.
func (p *Profiler) dispatch(f *Finding) {
	p.regressions.Add(1)
	e := freshness.Event{
		Kind: freshness.KindProfile,
		Alert: freshness.Alert{
			Rule:      "profile_regression:" + f.Kind + ":" + f.What,
			Place:     f.Place,
			State:     freshness.StateFiring,
			Reason:    f.Reason,
			FiredAtNS: f.TSNS,
		},
	}
	p.sinkMu.RLock()
	sinks := p.sinks
	p.sinkMu.RUnlock()
	for _, s := range sinks {
		s.Emit(e)
	}
}
