package profiler

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pera/internal/telemetry"
)

// serve routes a request through the profiler's endpoint table.
func serve(t *testing.T, p *Profiler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for _, ep := range p.Endpoints() {
		if strings.HasPrefix(req.URL.Path, ep.Path) {
			rec := httptest.NewRecorder()
			ep.Handler.ServeHTTP(rec, req)
			return rec
		}
	}
	t.Fatalf("no endpoint for %s", url)
	return nil
}

func TestProfileJSONEndpoint(t *testing.T) {
	p := New(Options{Service: "ep-test"})
	w := mkWindow(time.Now().UnixNano(), 1.0,
		map[stageKey]float64{{"verify", "ap"}: 0.6},
		map[string]float64{"crypto/ed25519.Verify": 0.6})
	p.mu.Lock()
	p.windows = append(p.windows, w)
	p.mu.Unlock()

	rec := serve(t, p, "/profile.json")
	if rec.Code != 200 {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var sum Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sum.Service != "ep-test" || sum.TotalSeconds != 1.0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Hotspot != "crypto/ed25519.Verify" {
		t.Fatalf("hotspot = %q", sum.Hotspot)
	}
}

func TestProfileJSONWindowParam(t *testing.T) {
	p := New(Options{Service: "ep-test"})
	if rec := serve(t, p, "/profile.json?window=5m"); rec.Code != 200 {
		t.Fatalf("good window status = %d", rec.Code)
	}
	for _, bad := range []string{"nonsense", "-3s", "5"} {
		rec := serve(t, p, "/profile.json?window="+bad)
		if rec.Code != 400 {
			t.Errorf("window=%q status = %d, want 400", bad, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("window=%q error content type = %q, want application/json", bad, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("window=%q error body %s not the JSON contract", bad, rec.Body)
		}
	}
}

func TestProfilePprofEndpoint(t *testing.T) {
	p := New(Options{Service: "ep-test"})

	// Unknown kind: 404 with the JSON error contract.
	rec := serve(t, p, "/profile/pprof?kind=flamegraph")
	if rec.Code != 404 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("unknown kind: status=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	// Known kind, nothing captured yet: also 404.
	if rec := serve(t, p, "/profile/pprof?kind=cpu"); rec.Code != 404 {
		t.Fatalf("uncaptured kind status = %d, want 404", rec.Code)
	}

	p.storeArtifact("cpu", 42, []byte("raw-profile-bytes"))
	rec = serve(t, p, "/profile/pprof?kind=cpu")
	if rec.Code != 200 {
		t.Fatalf("captured kind status = %d", rec.Code)
	}
	if rec.Body.String() != "raw-profile-bytes" {
		t.Fatalf("artifact body = %q", rec.Body.String())
	}
	if rec.Header().Get("X-Pera-Captured-NS") != "42" {
		t.Fatalf("capture timestamp header = %q", rec.Header().Get("X-Pera-Captured-NS"))
	}
	// kind defaults to cpu.
	if rec := serve(t, p, "/profile/pprof"); rec.Code != 200 {
		t.Fatalf("default kind status = %d", rec.Code)
	}
}

func TestEndpointsDescribed(t *testing.T) {
	p := New(Options{})
	eps := p.Endpoints()
	if len(eps) != 2 {
		t.Fatalf("endpoint count = %d", len(eps))
	}
	for _, ep := range eps {
		if ep.Desc == "" || ep.Handler == nil {
			t.Fatalf("endpoint %q missing desc or handler", ep.Path)
		}
	}
	_ = telemetry.Endpoint{} // pin the extras type this table feeds
}
