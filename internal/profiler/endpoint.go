package profiler

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"pera/internal/telemetry"
)

// Serving surfaces, mounted as telemetry extras alongside /metrics.
const (
	// ProfilePath serves the decoded summary + top tables.
	ProfilePath = "/profile.json"
	// ArtifactPath serves raw captured pprof artifacts
	// (?kind=cpu|heap|mutex|block|goroutine).
	ArtifactPath = "/profile/pprof"
)

// Endpoints returns the profiler's serving surfaces for telemetry.Serve.
func (p *Profiler) Endpoints() []telemetry.Endpoint {
	return []telemetry.Endpoint{
		{
			Path:    ProfilePath,
			Desc:    "continuous-profiling summary: stage attribution, top functions, baseline diff (param: window)",
			Handler: http.HandlerFunc(p.handleSummary),
		},
		{
			Path:    ArtifactPath,
			Desc:    "raw captured pprof artifact (param: kind=cpu|heap|mutex|block|goroutine)",
			Handler: http.HandlerFunc(p.handleArtifact),
		},
	}
}

// handleSummary serves /profile.json. An unparseable window parameter is
// a 400 with the application/json error contract, matching the
// recorder's /history.json behaviour.
func (p *Profiler) handleSummary(w http.ResponseWriter, req *http.Request) {
	if p == nil {
		telemetry.WriteJSONError(w, http.StatusNotFound, "profiler disabled")
		return
	}
	var lookback time.Duration
	if s := req.URL.Query().Get("window"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			telemetry.WriteJSONError(w, http.StatusBadRequest,
				"bad window: "+s+" (want a duration like 30s, 5m)")
			return
		}
		lookback = d
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.Summary(lookback))
}

// handleArtifact serves the newest raw profile of one kind. Unknown
// kinds are a 404: the caller named a profile that does not exist, not
// one that is merely empty.
func (p *Profiler) handleArtifact(w http.ResponseWriter, req *http.Request) {
	if p == nil {
		telemetry.WriteJSONError(w, http.StatusNotFound, "profiler disabled")
		return
	}
	kind := req.URL.Query().Get("kind")
	if kind == "" {
		kind = "cpu"
	}
	known := false
	for _, k := range Kinds {
		if k == kind {
			known = true
			break
		}
	}
	if !known {
		telemetry.WriteJSONError(w, http.StatusNotFound,
			"unknown profile kind: "+kind+" (want cpu, heap, mutex, block or goroutine)")
		return
	}
	data, tsNS, ok := p.Artifact(kind)
	if !ok {
		telemetry.WriteJSONError(w, http.StatusNotFound,
			"no "+kind+" profile captured yet")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Pera-Captured-NS", strconv.FormatInt(tsNS, 10))
	w.Write(data)
}
