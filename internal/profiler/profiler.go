package profiler

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/freshness"
	"pera/internal/telemetry"
)

// Kinds of profile artifact the profiler captures each window. CPU is
// the attributed one; the others are point-in-time runtime snapshots
// taken at the end of each window so an incident bundle carries the
// contention and allocation picture alongside the CPU attribution.
var Kinds = []string{"cpu", "heap", "mutex", "block", "goroutine"}

// Options tunes a Profiler.
type Options struct {
	// Service names the process in summaries (default "pera").
	Service string
	// Window is one CPU capture window for the Start loop (default 2s).
	Window time.Duration
	// Ring bounds how many capture windows are retained (default 8).
	Ring int
	// TopN bounds the top-function table (default 10).
	TopN int
	// Registry, when non-nil, receives the pera_profile_* instruments.
	Registry *telemetry.Registry
	// Diff tunes the regression detector.
	Diff DiffConfig
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// DiffConfig tunes the baseline diff engine.
type DiffConfig struct {
	// StageDelta is the share increase (absolute, 0..1) of one stage's
	// CPU that flags a profile_regression (default 0.15).
	StageDelta float64
	// FuncDelta is the same threshold for one function (default 0.20).
	FuncDelta float64
	// MinSeconds is the minimum CPU observed in a window before it is
	// diffed at all — near-idle windows have meaningless shares
	// (default 10ms).
	MinSeconds float64
	// AutoBaseline pins the first completed window as the baseline when
	// none was pinned explicitly (the Start loop's default behaviour).
	AutoBaseline bool
}

func (c DiffConfig) withDefaults() DiffConfig {
	if c.StageDelta <= 0 {
		c.StageDelta = 0.15
	}
	if c.FuncDelta <= 0 {
		c.FuncDelta = 0.20
	}
	if c.MinSeconds <= 0 {
		c.MinSeconds = 0.010
	}
	return c
}

func (o Options) withDefaults() Options {
	if o.Service == "" {
		o.Service = "pera"
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.Ring <= 0 {
		o.Ring = 8
	}
	if o.TopN <= 0 {
		o.TopN = 10
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	o.Diff = o.Diff.withDefaults()
	return o
}

// stageKey identifies one attributed (stage, place) series.
type stageKey struct{ stage, place string }

// window is one ingested capture: the decoded aggregate of a single CPU
// window.
type window struct {
	tsNS    int64
	durNS   int64
	total   float64 // CPU seconds in the window
	labeled float64 // CPU seconds under pera_stage labels
	samples int
	stages  map[stageKey]float64
	funcs   map[string]float64
}

// artifact is one raw captured profile.
type artifact struct {
	kind string
	tsNS int64
	data []byte
}

// Profiler owns the capture loop, the artifact ring, the decoded window
// ring, the cumulative stage metrics and the baseline diff engine. All
// public methods are nil-safe, matching the tracer/recorder wiring
// idiom.
type Profiler struct {
	opts Options

	mu        sync.Mutex
	artifacts map[string][]artifact // newest last, bounded by opts.Ring
	windows   []window              // newest last, bounded by opts.Ring
	baseline  *window               // pinned diff reference (aggregated)
	findings  []Finding             // newest last, bounded ring
	breaching map[string]bool       // finding keys currently over threshold

	// stageTotals accumulates CPU seconds per (stage, place) across the
	// profiler's lifetime — the pera_profile_stage_cpu_seconds series.
	stageTotals map[stageKey]*float64
	reg         *telemetry.Registry

	sinkMu sync.RWMutex
	sinks  []freshness.Sink

	captures    atomic.Uint64
	samples     atomic.Uint64
	regressions atomic.Uint64
	cpuErrs     atomic.Uint64

	quit, done chan struct{}
	started    atomic.Bool
	// capturing serializes CPU windows: runtime/pprof allows one CPU
	// profile per process, so Start's loop and CaptureWhile must not
	// overlap.
	capturing sync.Mutex
}

// New builds a profiler. Wire sinks with AddSink, then either Start the
// capture loop (daemons) or drive CaptureWhile directly (harness,
// benchmarks, tests).
func New(opts Options) *Profiler {
	opts = opts.withDefaults()
	p := &Profiler{
		opts:        opts,
		artifacts:   make(map[string][]artifact),
		stageTotals: make(map[stageKey]*float64),
		breaching:   make(map[string]bool),
		reg:         opts.Registry,
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	p.instrument()
	return p
}

// AddSink attaches a freshness sink for profile_regression findings —
// typically the same LogSink/JSONLSink/AuditSink set the watchdog and
// recorder publish to, so all three planes page through one pipeline.
func (p *Profiler) AddSink(s freshness.Sink) {
	if p == nil || s == nil {
		return
	}
	p.sinkMu.Lock()
	p.sinks = append(p.sinks, s)
	p.sinkMu.Unlock()
}

func (p *Profiler) now() int64 { return p.opts.Clock().UnixNano() }

// Start arms the stage labels and launches the wall-clock capture loop:
// one CPU window per Options.Window, runtime snapshots at each window's
// end. Idempotent.
func (p *Profiler) Start() {
	if p == nil || !p.started.CompareAndSwap(false, true) {
		return
	}
	telemetry.ArmProfiling(true)
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.quit:
				return
			default:
			}
			if err := p.captureWindow(p.opts.Window); err != nil {
				p.cpuErrs.Add(1)
				// Another CPU profile is active (e.g. /debug/pprof/profile);
				// back off one window instead of spinning.
				select {
				case <-p.quit:
					return
				case <-time.After(p.opts.Window):
				}
			}
		}
	}()
}

// Close stops the capture loop and disarms the stage labels. Safe on a
// nil or never-started profiler.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	if p.started.Load() {
		select {
		case <-p.quit:
		default:
			close(p.quit)
		}
		<-p.done
	}
	telemetry.ArmProfiling(false)
}

// captureWindow runs one wall-clock CPU window.
func (p *Profiler) captureWindow(d time.Duration) error {
	return p.captureFunc(func() {
		select {
		case <-p.quit:
		case <-time.After(d):
		}
	})
}

// CaptureWhile profiles the execution of fn as one capture window: CPU
// profiling starts, fn runs with stage labels armed, profiling stops and
// the window is ingested (decoded, attributed, diffed). This is the
// deterministic entry point the harness and benchmarks use instead of
// the wall-clock Start loop.
func (p *Profiler) CaptureWhile(fn func()) error {
	if p == nil {
		fn()
		return nil
	}
	armed := telemetry.ProfilingArmed()
	if !armed {
		telemetry.ArmProfiling(true)
		defer telemetry.ArmProfiling(false)
	}
	return p.captureFunc(fn)
}

// captureFunc is the shared capture core: one CPU window around fn, then
// the runtime-snapshot kinds, then ingest.
func (p *Profiler) captureFunc(fn func()) error {
	p.capturing.Lock()
	defer p.capturing.Unlock()
	var cpu bytes.Buffer
	start := p.now()
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		fn()
		return fmt.Errorf("profiler: %w", err)
	}
	fn()
	pprof.StopCPUProfile()
	end := p.now()

	p.storeArtifact("cpu", end, cpu.Bytes())
	for _, kind := range []string{"heap", "mutex", "block", "goroutine"} {
		if prof := pprof.Lookup(kind); prof != nil {
			var buf bytes.Buffer
			if err := prof.WriteTo(&buf, 0); err == nil {
				p.storeArtifact(kind, end, buf.Bytes())
			}
		}
	}
	return p.ingestCPU(cpu.Bytes(), start, end)
}

// storeArtifact appends one raw profile to its kind's ring.
func (p *Profiler) storeArtifact(kind string, tsNS int64, data []byte) {
	if len(data) == 0 {
		return
	}
	p.mu.Lock()
	ring := append(p.artifacts[kind], artifact{kind: kind, tsNS: tsNS, data: data})
	if len(ring) > p.opts.Ring {
		ring = ring[len(ring)-p.opts.Ring:]
	}
	p.artifacts[kind] = ring
	p.mu.Unlock()
}

// Artifact returns the newest raw profile of the given kind and its
// capture timestamp.
func (p *Profiler) Artifact(kind string) (data []byte, tsNS int64, ok bool) {
	if p == nil {
		return nil, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ring := p.artifacts[kind]
	if len(ring) == 0 {
		return nil, 0, false
	}
	a := ring[len(ring)-1]
	return a.data, a.tsNS, true
}

// ingestCPU decodes one CPU window, attributes its samples to stages via
// the pera_stage/pera_place labels, folds the window into the ring and
// cumulative metrics, and runs the baseline diff.
func (p *Profiler) ingestCPU(data []byte, startNS, endNS int64) error {
	prof, err := ParseProfile(data)
	if err != nil {
		return err
	}
	vi := prof.ValueIndex("cpu")
	w := window{
		tsNS:   endNS,
		durNS:  endNS - startNS,
		stages: make(map[stageKey]float64),
		funcs:  make(map[string]float64),
	}
	for i := range prof.Samples {
		s := &prof.Samples[i]
		if vi < 0 || vi >= len(s.Values) {
			continue
		}
		sec := float64(s.Values[vi]) / 1e9
		w.total += sec
		w.samples++
		w.funcs[prof.LeafFunction(s)] += sec
		if stage := s.Labels[telemetry.ProfStageKey]; stage != "" {
			w.labeled += sec
			w.stages[stageKey{stage, s.Labels[telemetry.ProfPlaceKey]}] += sec
		}
	}

	p.mu.Lock()
	p.windows = append(p.windows, w)
	if len(p.windows) > p.opts.Ring {
		p.windows = p.windows[len(p.windows)-p.opts.Ring:]
	}
	for k, sec := range w.stages {
		tot, ok := p.stageTotals[k]
		if !ok {
			tot = new(float64)
			p.stageTotals[k] = tot
			if p.reg != nil {
				p.reg.RegisterFunc("pera_profile_stage_cpu_seconds", telemetry.KindCounter,
					func() float64 { p.mu.Lock(); defer p.mu.Unlock(); return *tot },
					telemetry.L("stage", k.stage), telemetry.L("place", k.place))
			}
		}
		*tot += sec
	}
	if p.baseline == nil && p.opts.Diff.AutoBaseline && w.total >= p.opts.Diff.MinSeconds {
		base := w
		p.baseline = &base
	}
	base := p.baseline
	p.mu.Unlock()

	p.captures.Add(1)
	p.samples.Add(uint64(w.samples))
	if base != nil && base.tsNS != w.tsNS {
		p.evaluate(base, &w)
	}
	return nil
}

// SetBaseline pins the aggregate of the current window ring as the diff
// reference. Subsequent windows whose stage or function CPU shares grow
// past the configured deltas emit profile_regression findings.
func (p *Profiler) SetBaseline() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	agg := mergeWindows(p.windows)
	if agg.samples == 0 {
		return
	}
	p.baseline = &agg
}

// mergeWindows folds several capture windows into one aggregate.
func mergeWindows(ws []window) window {
	agg := window{stages: make(map[stageKey]float64), funcs: make(map[string]float64)}
	for i := range ws {
		w := &ws[i]
		if agg.tsNS < w.tsNS {
			agg.tsNS = w.tsNS
		}
		agg.durNS += w.durNS
		agg.total += w.total
		agg.labeled += w.labeled
		agg.samples += w.samples
		for k, v := range w.stages {
			agg.stages[k] += v
		}
		for f, v := range w.funcs {
			agg.funcs[f] += v
		}
	}
	return agg
}

// Captures returns how many windows have been ingested.
func (p *Profiler) Captures() uint64 {
	if p == nil {
		return 0
	}
	return p.captures.Load()
}

// Regressions returns how many profile_regression findings have fired.
func (p *Profiler) Regressions() uint64 {
	if p == nil {
		return 0
	}
	return p.regressions.Load()
}

// instrument registers the profiler's fixed instruments (the per-stage
// counters register lazily as stages are first observed).
func (p *Profiler) instrument() {
	reg := p.reg
	if reg == nil {
		return
	}
	reg.RegisterFunc("pera_profile_captures_total", telemetry.KindCounter,
		func() float64 { return float64(p.captures.Load()) })
	reg.RegisterFunc("pera_profile_samples_total", telemetry.KindCounter,
		func() float64 { return float64(p.samples.Load()) })
	reg.RegisterFunc("pera_profile_regressions_total", telemetry.KindCounter,
		func() float64 { return float64(p.regressions.Load()) })
	reg.RegisterFunc("pera_profile_capture_errors_total", telemetry.KindCounter,
		func() float64 { return float64(p.cpuErrs.Load()) })
	reg.RegisterFunc("pera_profile_labeled_share", telemetry.KindGauge, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if len(p.windows) == 0 {
			return 0
		}
		w := &p.windows[len(p.windows)-1]
		if w.total <= 0 {
			return 0
		}
		return w.labeled / w.total
	})
	reg.RegisterFunc("pera_profile_hotspot_share", telemetry.KindGauge, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if len(p.windows) == 0 {
			return 0
		}
		w := &p.windows[len(p.windows)-1]
		var top float64
		for _, v := range w.funcs {
			if v > top {
				top = v
			}
		}
		if w.total <= 0 {
			return 0
		}
		return top / w.total
	})
}

// sortedStages renders a window's stage map as a share-sorted table.
func sortedStages(w *window) []StageCost {
	out := make([]StageCost, 0, len(w.stages))
	for k, sec := range w.stages {
		sc := StageCost{Stage: k.stage, Place: k.place, Seconds: sec}
		if w.total > 0 {
			sc.Share = sec / w.total
		}
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Place < out[j].Place
	})
	return out
}

// sortedFuncs renders a window's flat-function map as a top-N table.
func sortedFuncs(w *window, n int) []FuncCost {
	out := make([]FuncCost, 0, len(w.funcs))
	for name, sec := range w.funcs {
		fc := FuncCost{Name: name, Seconds: sec}
		if w.total > 0 {
			fc.Share = sec / w.total
		}
		out = append(out, fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
