package pisa

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pera/internal/p4ir"
	"pera/internal/rot"
)

// Instance is a loaded program together with its runtime state: installed
// table entries, registers and counters. It corresponds to "the dataplane"
// of one switch; a control plane installs entries, the pipeline executes
// packets, and PERA attests its digests.
type Instance struct {
	prog *p4ir.Program

	// qnames maps each header type to its fields' qualified names
	// ("eth.dst"), precomputed at Load so the per-packet parser never
	// concatenates strings. fieldHint sizes each packet's field map: the
	// program's total declared fields plus room for metadata.
	qnames    map[string][]string
	fieldHint int

	parsedN atomic.Uint64 // packets parsed, for stats

	// tablesDigest caches TablesDigest between table mutations; entry
	// installs are control-plane rare, digest reads are per-attestation.
	tablesDigest atomic.Pointer[rot.Digest]

	mu     sync.RWMutex
	tables map[string]*tableState
	regs   map[string][]uint64
	counts map[string][]uint64
}

type tableState struct {
	decl    *p4ir.Table
	entries []p4ir.Entry
}

// Errors from instance operations.
var (
	ErrUnknownTable  = errors.New("pisa: unknown table")
	ErrTableFull     = errors.New("pisa: table full")
	ErrBadEntry      = errors.New("pisa: entry does not fit table")
	ErrUnknownAction = errors.New("pisa: unknown action")
)

// progMeta is the load-time metadata derived from an immutable Program:
// validation outcome and the precomputed qualified field names. Several
// instances routinely load the same shared *Program (every forwarding
// switch in a testbed), so the derivation is cached per program pointer.
type progMeta struct {
	qnames    map[string][]string
	fieldHint int
}

var (
	progMetaMu sync.Mutex
	progMetas  = map[*p4ir.Program]*progMeta{}
)

const progMetaCap = 64

// metaFor validates prog and returns its cached load metadata. Programs
// are treated as immutable after construction (nothing in the repo
// mutates a Program once built), so both the validation verdict and the
// derived name tables are safe to reuse for the program's lifetime.
func metaFor(prog *p4ir.Program) (*progMeta, error) {
	progMetaMu.Lock()
	m, ok := progMetas[prog]
	progMetaMu.Unlock()
	if ok {
		return m, nil
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m = &progMeta{qnames: make(map[string][]string, len(prog.Headers))}
	nfields := 0
	for _, h := range prog.Headers {
		qn := make([]string, len(h.Fields))
		for i, f := range h.Fields {
			qn[i] = p4ir.QName(h.Name, f.Name)
		}
		m.qnames[h.Name] = qn
		nfields += len(h.Fields)
	}
	m.fieldHint = nfields + 8 // declared fields + metadata slots
	progMetaMu.Lock()
	if ex, ok := progMetas[prog]; ok {
		m = ex
	} else {
		if len(progMetas) >= progMetaCap {
			progMetas = make(map[*p4ir.Program]*progMeta, progMetaCap)
		}
		progMetas[prog] = m
	}
	progMetaMu.Unlock()
	return m, nil
}

// Load validates prog and returns a fresh instance with empty tables and
// zeroed registers.
func Load(prog *p4ir.Program) (*Instance, error) {
	meta, err := metaFor(prog)
	if err != nil {
		return nil, err
	}
	in := &Instance{
		prog:      prog,
		qnames:    meta.qnames,
		fieldHint: meta.fieldHint,
		tables:    make(map[string]*tableState, len(prog.Ingress)+len(prog.Egress)),
		regs:      make(map[string][]uint64, len(prog.Registers)),
		counts:    make(map[string][]uint64, len(prog.Registers)),
	}
	for _, t := range prog.Ingress {
		in.tables[t.Name] = &tableState{decl: t}
	}
	for _, t := range prog.Egress {
		in.tables[t.Name] = &tableState{decl: t}
	}
	for _, r := range prog.Registers {
		in.regs[r.Name] = make([]uint64, r.Size)
		in.counts[r.Name] = make([]uint64, r.Size)
	}
	return in, nil
}

// Program returns the loaded program.
func (in *Instance) Program() *p4ir.Program { return in.prog }

// InstallEntry adds an entry to a table, validating arity and action.
func (in *Instance) InstallEntry(table string, e p4ir.Entry) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	ts, ok := in.tables[table]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	if len(e.Matches) != len(ts.decl.Keys) {
		return fmt.Errorf("%w: %d matches for %d keys", ErrBadEntry, len(e.Matches), len(ts.decl.Keys))
	}
	if ts.decl.MaxEntries > 0 && len(ts.entries) >= ts.decl.MaxEntries {
		return fmt.Errorf("%w: %q at %d entries", ErrTableFull, table, len(ts.entries))
	}
	if !actionPermitted(ts.decl, e.Action) {
		return fmt.Errorf("%w: %q not permitted in table %q", ErrUnknownAction, e.Action, table)
	}
	if _, ok := in.prog.Action(e.Action); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAction, e.Action)
	}
	ts.entries = append(ts.entries, e)
	in.tablesDigest.Store(nil)
	return nil
}

func actionPermitted(t *p4ir.Table, name string) bool {
	if len(t.Actions) == 0 {
		return true
	}
	for _, a := range t.Actions {
		if a == name {
			return true
		}
	}
	return false
}

// ClearTable removes all entries from a table.
func (in *Instance) ClearTable(table string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	ts, ok := in.tables[table]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	ts.entries = nil
	in.tablesDigest.Store(nil)
	return nil
}

// Entries returns a copy of the entries installed in a table.
func (in *Instance) Entries(table string) ([]p4ir.Entry, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	ts, ok := in.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	return append([]p4ir.Entry(nil), ts.entries...), nil
}

// lookup finds the best-matching entry for the current packet field
// values. Selection: all keys must match; among matching entries the one
// with the highest (priority, total LPM prefix length) wins; ties go to
// the earliest installed.
func (in *Instance) lookup(ts *tableState, pkt *Packet) (p4ir.Entry, bool) {
	bestIdx := -1
	bestPrio, bestPfx := 0, -1
	for i, e := range ts.entries {
		pfx, ok := entryMatches(ts.decl, e, pkt)
		if !ok {
			continue
		}
		if bestIdx < 0 || e.Priority > bestPrio || (e.Priority == bestPrio && pfx > bestPfx) {
			bestIdx, bestPrio, bestPfx = i, e.Priority, pfx
		}
	}
	if bestIdx < 0 {
		return p4ir.Entry{}, false
	}
	return ts.entries[bestIdx], true
}

// entryMatches checks e against pkt, returning the total prefix length
// used for LPM tie-breaking.
func entryMatches(decl *p4ir.Table, e p4ir.Entry, pkt *Packet) (int, bool) {
	pfxTotal := 0
	for i, k := range decl.Keys {
		v := pkt.Get(k.Field)
		m := e.Matches[i]
		switch k.Kind {
		case p4ir.MatchExact:
			if v != m.Value {
				return 0, false
			}
		case p4ir.MatchLPM:
			bits := k.Bits
			if bits == 0 {
				bits = 64
			}
			if m.PrefixLen > bits {
				return 0, false
			}
			shift := uint(bits - m.PrefixLen)
			if m.PrefixLen > 0 && v>>shift != m.Value>>shift {
				return 0, false
			}
			pfxTotal += m.PrefixLen
		case p4ir.MatchTernary:
			if v&m.Mask != m.Value&m.Mask {
				return 0, false
			}
		}
	}
	return pfxTotal, true
}

// RegRead returns register reg[idx] (zero for out-of-range reads, like
// hardware returning an undefined lane — we choose zero for determinism).
func (in *Instance) RegRead(reg string, idx uint64) uint64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	arr := in.regs[reg]
	if int(idx) >= len(arr) {
		return 0
	}
	return arr[idx]
}

// RegWrite sets register reg[idx]; out-of-range writes are ignored.
func (in *Instance) RegWrite(reg string, idx, v uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	arr := in.regs[reg]
	if int(idx) < len(arr) {
		arr[idx] = v
	}
}

// CounterValue returns counter reg[idx].
func (in *Instance) CounterValue(reg string, idx uint64) uint64 {
	in.mu.RLock()
	defer in.mu.RUnlock()
	arr := in.counts[reg]
	if int(idx) >= len(arr) {
		return 0
	}
	return arr[idx]
}

// PacketsParsed reports how many packets this instance has parsed.
func (in *Instance) PacketsParsed() uint64 {
	return in.parsedN.Load()
}

// ProgramDigest is the attestable digest of the loaded code.
func (in *Instance) ProgramDigest() rot.Digest { return in.prog.Digest() }

// TablesDigest is the attestable digest over every table's installed
// entries, independent of installation order.
func (in *Instance) TablesDigest() rot.Digest {
	if d := in.tablesDigest.Load(); d != nil {
		return *d
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	names := make([]string, 0, len(in.tables))
	for n := range in.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		d := p4ir.EntriesDigest(n, in.tables[n].entries)
		h.Write(d[:])
	}
	var out rot.Digest
	h.Sum(out[:0])
	// Publish while still holding the read lock: invalidation (Store(nil)
	// in InstallEntry/ClearTable) runs under the write lock, so no table
	// mutation can slip between the computation above and this store.
	in.tablesDigest.Store(&out)
	return out
}

// StateDigest is the attestable digest of mutable program state
// (registers and counters) — the Fig. 4 "progstate" detail level.
func (in *Instance) StateDigest() rot.Digest {
	in.mu.RLock()
	defer in.mu.RUnlock()
	names := make([]string, 0, len(in.regs))
	for n := range in.regs {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	var buf [8]byte
	for _, n := range names {
		h.Write([]byte(n))
		for _, v := range in.regs[n] {
			binary.BigEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		for _, v := range in.counts[n] {
			binary.BigEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	var out rot.Digest
	h.Sum(out[:0])
	return out
}

// TableNames lists the instance's tables sorted by name.
func (in *Instance) TableNames() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	names := make([]string, 0, len(in.tables))
	for n := range in.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DumpTables renders installed entries for operator inspection.
func (in *Instance) DumpTables() string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	var b strings.Builder
	names := make([]string, 0, len(in.tables))
	for n := range in.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ts := in.tables[n]
		fmt.Fprintf(&b, "table %s (%d entries)\n", n, len(ts.entries))
		for _, e := range ts.entries {
			fmt.Fprintf(&b, "  prio=%d %v -> %s%v\n", e.Priority, e.Matches, e.Action, e.Params)
		}
	}
	return b.String()
}
