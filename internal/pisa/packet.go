package pisa

import (
	"fmt"
	"sort"
	"strings"

	"pera/internal/p4ir"
)

// Packet is a frame travelling through the pipeline: the raw bytes it
// arrived with, the header fields the parser extracted (plus metadata),
// and bookkeeping to re-serialize modified headers on the way out.
type Packet struct {
	// Data is the original frame.
	Data []byte
	// Fields holds parsed header fields under qualified names
	// ("eth.dst") and pipeline metadata under "meta.*".
	Fields map[string]uint64

	extracted  []string  // header type names in extraction order
	extBuf     [4]string // inline backing for extracted (programs parse ≤4 headers)
	payloadOff int       // bit offset where the unparsed payload begins
}

// NewPacket wraps raw frame bytes arriving on ingressPort.
func NewPacket(data []byte, ingressPort uint64) *Packet {
	return newPacketSized(data, ingressPort, 8)
}

// newPacketSized pre-sizes the field map so parsing a full header stack
// never rehashes; the pipeline passes its program's declared field count.
func newPacketSized(data []byte, ingressPort uint64, fieldHint int) *Packet {
	f := make(map[string]uint64, fieldHint)
	f[p4ir.MetaIngressPort] = ingressPort
	p := &Packet{Data: data, Fields: f}
	p.extracted = p.extBuf[:0]
	return p
}

// Get returns a field value (absent fields read zero, like P4 metadata).
func (p *Packet) Get(qname string) uint64 { return p.Fields[qname] }

// Set assigns a field value.
func (p *Packet) Set(qname string, v uint64) { p.Fields[qname] = v }

// Dropped reports whether the pipeline marked the packet dropped.
func (p *Packet) Dropped() bool { return p.Fields[p4ir.MetaDrop] != 0 }

// EgressPort returns the selected output port.
func (p *Packet) EgressPort() uint64 { return p.Fields[p4ir.MetaEgressPort] }

// Payload returns the unparsed remainder of the frame. The parser always
// leaves the payload byte-aligned when headers are byte-multiples; for
// odd header widths the payload begins at the next full byte.
func (p *Packet) Payload() []byte {
	byteOff := (p.payloadOff + 7) / 8
	if byteOff >= len(p.Data) {
		return nil
	}
	return p.Data[byteOff:]
}

// Extracted returns the header type names extracted by the parser, in
// order.
func (p *Packet) Extracted() []string {
	return append([]string(nil), p.extracted...)
}

// Clone returns a deep copy, used for mirroring/cloning.
func (p *Packet) Clone() *Packet {
	cp := &Packet{
		Data:       append([]byte(nil), p.Data...),
		Fields:     make(map[string]uint64, len(p.Fields)),
		extracted:  append([]string(nil), p.extracted...),
		payloadOff: p.payloadOff,
	}
	for k, v := range p.Fields {
		cp.Fields[k] = v
	}
	return cp
}

// String renders the parsed fields deterministically, for logs and tests.
func (p *Packet) String() string {
	keys := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, p.Fields[k])
	}
	return b.String()
}

// FlowHash returns a stable non-cryptographic hash over the packet's
// addressing fields, used by evidence samplers (per-flow sampling) and
// load distribution. FNV-1a over the canonical flow fields.
func (p *Packet) FlowHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, f := range []string{"ip.src", "ip.dst", "ip.proto", "tp.sport", "tp.dport"} {
		v := p.Fields[f]
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * uint(i)) & 0xff
			h *= prime
		}
	}
	return h
}
