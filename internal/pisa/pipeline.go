package pisa

import (
	"errors"
	"fmt"

	"pera/internal/p4ir"
)

// Pipeline execution: parse → ingress tables → egress tables → deparse.
//
// The stages mirror the paper's Fig. 3 switch diagram. Evidence-handling
// stages (Sign/Verify, Create/Inspect/Compose) are layered on top by
// internal/pera; this file is the plain PISA forwarding substrate those
// stages extend.

// Errors from pipeline execution.
var (
	ErrParseReject   = errors.New("pisa: parser rejected packet")
	ErrNoParserStart = errors.New("pisa: parser has no start state")
)

// maxParserSteps bounds parser state transitions per packet, so cyclic
// parser graphs (legal to declare, ill-advised to run) terminate.
const maxParserSteps = 64

// Output is one frame emitted by the pipeline.
type Output struct {
	Port   uint64
	Packet *Packet
	Mirror bool // true if this output came from a mirror/clone
}

// Parse runs the parser state machine over pkt.Data, populating
// pkt.Fields. The first declared state is the start state.
func (in *Instance) Parse(pkt *Packet) error {
	if len(in.prog.Parser) == 0 {
		return ErrNoParserStart
	}
	r := bitReader{data: pkt.Data}
	state := in.prog.Parser[0]
	for steps := 0; steps < maxParserSteps; steps++ {
		if state.Extract != "" {
			hdr, _ := in.prog.Header(state.Extract)
			qnames := in.qnames[hdr.Name]
			for i, f := range hdr.Fields {
				v, err := r.read(f.Bits)
				if err != nil {
					return fmt.Errorf("extracting %s.%s: %w", hdr.Name, f.Name, err)
				}
				pkt.Fields[qnames[i]] = v
			}
			pkt.extracted = append(pkt.extracted, hdr.Name)
		}
		next := state.Default
		if state.SelectField != "" {
			v := pkt.Get(state.SelectField)
			for _, tr := range state.Transitions {
				if tr.Value == v {
					next = tr.Next
					break
				}
			}
		}
		switch next {
		case p4ir.StateAccept:
			pkt.payloadOff = r.off
			in.parsedN.Add(1)
			return nil
		case p4ir.StateReject:
			return ErrParseReject
		}
		ns, ok := in.prog.State(next)
		if !ok {
			return fmt.Errorf("pisa: parser transition to unknown state %q", next)
		}
		state = ns
	}
	return fmt.Errorf("pisa: parser exceeded %d steps", maxParserSteps)
}

// applyTables runs a pipeline of tables in order. Processing stops early
// if the packet is dropped.
func (in *Instance) applyTables(tables []*p4ir.Table, pkt *Packet) error {
	for _, decl := range tables {
		if pkt.Dropped() {
			return nil
		}
		in.mu.RLock()
		ts := in.tables[decl.Name]
		entry, hit := in.lookup(ts, pkt)
		in.mu.RUnlock()
		var actName string
		var params map[string]uint64
		if hit {
			actName, params = entry.Action, entry.Params
		} else {
			actName, params = decl.DefaultAction, decl.DefaultParams
		}
		if actName == "" {
			continue // no default: table miss is a no-op
		}
		act, ok := in.prog.Action(actName)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownAction, actName)
		}
		if err := in.execAction(act, params, pkt); err != nil {
			return err
		}
	}
	return nil
}

// execAction runs an action's operations against the packet.
func (in *Instance) execAction(act *p4ir.Action, params map[string]uint64, pkt *Packet) error {
	eval := func(v p4ir.Val) uint64 {
		switch v.Kind {
		case p4ir.ValConst:
			return v.Const
		case p4ir.ValField:
			return pkt.Get(v.Name)
		case p4ir.ValParam:
			return params[v.Name]
		default:
			return 0
		}
	}
	for _, op := range act.Ops {
		switch op.Kind {
		case p4ir.OpSet:
			pkt.Set(op.Dst, in.maskToWidth(op.Dst, eval(op.Src)))
		case p4ir.OpAdd:
			pkt.Set(op.Dst, in.maskToWidth(op.Dst, pkt.Get(op.Dst)+eval(op.Src)))
		case p4ir.OpForward:
			pkt.Set(p4ir.MetaEgressPort, eval(op.Src))
		case p4ir.OpDrop:
			pkt.Set(p4ir.MetaDrop, 1)
		case p4ir.OpRegWrite:
			in.RegWrite(op.Reg, eval(op.Index), eval(op.Src))
		case p4ir.OpRegRead:
			pkt.Set(op.Dst, in.RegRead(op.Reg, eval(op.Index)))
		case p4ir.OpCount:
			in.count(op.Reg, eval(op.Index))
		default:
			return fmt.Errorf("pisa: unknown op %v", op.Kind)
		}
	}
	return nil
}

func (in *Instance) count(reg string, idx uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	arr := in.counts[reg]
	if int(idx) < len(arr) {
		arr[idx]++
	}
}

// maskToWidth truncates a value to the declared width of a header field;
// metadata fields are full 64-bit.
func (in *Instance) maskToWidth(qname string, v uint64) uint64 {
	hdrName, fieldName, ok := splitQName(qname)
	if !ok || hdrName == "meta" {
		return v
	}
	hdr, ok := in.prog.Header(hdrName)
	if !ok {
		return v
	}
	f, ok := hdr.Field(fieldName)
	if !ok {
		return v
	}
	return v & mask(f.Bits)
}

func splitQName(qname string) (hdr, field string, ok bool) {
	for i := 0; i < len(qname); i++ {
		if qname[i] == '.' {
			return qname[:i], qname[i+1:], true
		}
	}
	return "", "", false
}

// Deparse re-serializes the packet: extracted headers (with any field
// modifications) followed by the original payload.
func (in *Instance) Deparse(pkt *Packet) []byte {
	// Pre-size for headers + payload so the serialization is one exact
	// allocation: headers re-occupy their parsed width (payloadOff bits).
	payload := pkt.Payload()
	w := bitWriter{data: make([]byte, 0, (pkt.payloadOff+7)/8+len(payload))}
	for _, hname := range pkt.extracted {
		hdr, ok := in.prog.Header(hname)
		if !ok {
			continue
		}
		qnames := in.qnames[hdr.Name]
		for i, f := range hdr.Fields {
			w.write(pkt.Get(qnames[i]), f.Bits)
		}
	}
	return append(w.data, payload...)
}

// Process runs the full pipeline over raw frame bytes arriving on
// ingressPort and returns the emitted outputs (possibly several, when the
// program mirrors). A parse reject or a drop yields no outputs and no
// error; substrate errors (unknown actions, etc.) are returned.
func (in *Instance) Process(data []byte, ingressPort uint64) ([]Output, error) {
	pkt := newPacketSized(data, ingressPort, in.fieldHint)
	if err := in.Parse(pkt); err != nil {
		if errors.Is(err, ErrParseReject) || errors.Is(err, ErrTruncated) {
			return nil, nil
		}
		return nil, err
	}
	if err := in.applyTables(in.prog.Ingress, pkt); err != nil {
		return nil, err
	}
	if pkt.Dropped() {
		return nil, nil
	}
	if err := in.applyTables(in.prog.Egress, pkt); err != nil {
		return nil, err
	}
	if pkt.Dropped() {
		return nil, nil
	}
	pkt.Data = in.Deparse(pkt)
	outs := []Output{{Port: pkt.EgressPort(), Packet: pkt}}
	// Mirroring convention: programs set meta.mirrored=1 and
	// meta.mirror_port to clone the frame (see p4ir.NewRogueForwarding).
	if pkt.Get("meta.mirrored") != 0 {
		cl := pkt.Clone()
		cl.Set(p4ir.MetaEgressPort, pkt.Get("meta.mirror_port"))
		outs = append(outs, Output{Port: cl.EgressPort(), Packet: cl, Mirror: true})
	}
	return outs, nil
}
