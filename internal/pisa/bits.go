// Package pisa executes p4ir programs as a PISA-style switch pipeline:
// programmable parser, ingress match+action stages, egress stages,
// deparser, plus registers and counters. It is the reproduction's
// substitute for Tofino-class hardware — stage-accurate rather than
// cycle-accurate, which is what the paper's Fig. 3 pipeline claims need.
package pisa

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when the parser runs off the end of a packet.
var ErrTruncated = errors.New("pisa: packet truncated during parse")

// bitReader extracts big-endian bit fields from a byte slice.
type bitReader struct {
	data []byte
	off  int // bit offset
}

// read extracts the next n bits (1..64) as a big-endian unsigned value.
func (r *bitReader) read(n int) (uint64, error) {
	if n < 1 || n > 64 {
		return 0, fmt.Errorf("pisa: bad field width %d", n)
	}
	if r.off+n > len(r.data)*8 {
		return 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := (r.off + i) / 8
		bitIdx := 7 - (r.off+i)%8
		v = v<<1 | uint64(r.data[byteIdx]>>bitIdx&1)
	}
	r.off += n
	return v, nil
}

// bitWriter appends big-endian bit fields to a buffer.
type bitWriter struct {
	data []byte
	off  int // bit offset into data (always == bits written)
}

// write appends the low n bits of v.
func (w *bitWriter) write(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		if w.off%8 == 0 {
			w.data = append(w.data, 0)
		}
		bit := byte(v >> uint(i) & 1)
		w.data[w.off/8] |= bit << (7 - w.off%8)
		w.off++
	}
}

// mask returns the n-bit mask (n in 1..64).
func mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
