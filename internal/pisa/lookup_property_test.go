package pisa

import (
	"math/rand"
	"testing"

	"pera/internal/p4ir"
)

// Property: the pipeline's table lookup agrees with an independent
// reference implementation for random entry sets and packets, across
// exact, LPM and ternary key kinds.

// refLookup is a deliberately naive re-implementation of the selection
// rule: all keys must match; highest priority wins, then longest total
// prefix, then earliest installed.
func refLookup(decl *p4ir.Table, entries []p4ir.Entry, pkt *Packet) (p4ir.Entry, bool) {
	best := -1
	bestPrio, bestPfx := 0, -1
	for i, e := range entries {
		match := true
		pfx := 0
		for k, key := range decl.Keys {
			v := pkt.Get(key.Field)
			m := e.Matches[k]
			switch key.Kind {
			case p4ir.MatchExact:
				if v != m.Value {
					match = false
				}
			case p4ir.MatchLPM:
				bits := key.Bits
				if bits == 0 {
					bits = 64
				}
				if m.PrefixLen > bits {
					match = false
					break
				}
				shift := uint(bits - m.PrefixLen)
				if m.PrefixLen > 0 && v>>shift != m.Value>>shift {
					match = false
				}
				pfx += m.PrefixLen
			case p4ir.MatchTernary:
				if v&m.Mask != m.Value&m.Mask {
					match = false
				}
			}
			if !match {
				break
			}
		}
		if !match {
			continue
		}
		if best < 0 || e.Priority > bestPrio || (e.Priority == bestPrio && pfx > bestPfx) {
			best, bestPrio, bestPfx = i, e.Priority, pfx
		}
	}
	if best < 0 {
		return p4ir.Entry{}, false
	}
	return entries[best], true
}

func TestPropertyLookupMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []p4ir.MatchKind{p4ir.MatchExact, p4ir.MatchLPM, p4ir.MatchTernary}
	for trial := 0; trial < 200; trial++ {
		// Random table shape: 1-3 keys of random kinds over small-value
		// fields (so collisions actually happen).
		nkeys := 1 + rng.Intn(3)
		prog := p4ir.NewForwarding("prop")
		tbl := prog.Ingress[0]
		tbl.Keys = nil
		fields := []string{"ip.src", "ip.dst", "tp.dport"}
		for k := 0; k < nkeys; k++ {
			tbl.Keys = append(tbl.Keys, p4ir.Key{
				Field: fields[k],
				Kind:  kinds[rng.Intn(len(kinds))],
				Bits:  16,
			})
		}
		tbl.MaxEntries = 64
		inst, err := Load(prog)
		if err != nil {
			t.Fatal(err)
		}
		// Random entries.
		n := 1 + rng.Intn(12)
		var entries []p4ir.Entry
		for i := 0; i < n; i++ {
			e := p4ir.Entry{Priority: rng.Intn(4), Action: "drop"}
			for _, key := range tbl.Keys {
				m := p4ir.KeyMatch{Value: uint64(rng.Intn(8))}
				switch key.Kind {
				case p4ir.MatchLPM:
					m.PrefixLen = rng.Intn(17)
				case p4ir.MatchTernary:
					m.Mask = uint64(rng.Intn(16))
				}
				e.Matches = append(e.Matches, m)
			}
			if err := inst.InstallEntry("ipv4_fwd", e); err != nil {
				t.Fatal(err)
			}
			entries = append(entries, e)
		}
		// Random packets.
		for p := 0; p < 20; p++ {
			pkt := NewPacket(nil, 1)
			for _, f := range fields {
				pkt.Set(f, uint64(rng.Intn(8)))
			}
			wantE, wantOK := refLookup(tbl, entries, pkt)
			ts := inst.tables["ipv4_fwd"]
			gotE, gotOK := inst.lookup(ts, pkt)
			if wantOK != gotOK {
				t.Fatalf("trial %d: hit disagreement (ref %v, got %v) pkt %s", trial, wantOK, gotOK, pkt)
			}
			if wantOK && (gotE.Priority != wantE.Priority || !matchesEqual(gotE.Matches, wantE.Matches)) {
				t.Fatalf("trial %d: selected different entries:\n ref %+v\n got %+v", trial, wantE, gotE)
			}
		}
	}
}

func matchesEqual(a, b []p4ir.KeyMatch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
