package pisa

import (
	"errors"
	"testing"
	"testing/quick"

	"pera/internal/p4ir"
)

func TestBitReaderWriter(t *testing.T) {
	w := bitWriter{}
	w.write(0xABCD, 16)
	w.write(0x5, 3)
	w.write(0x1FF, 13)
	r := bitReader{data: w.data}
	for _, c := range []struct {
		bits int
		want uint64
	}{{16, 0xABCD}, {3, 0x5}, {13, 0x1FF}} {
		got, err := r.read(c.bits)
		if err != nil || got != c.want {
			t.Fatalf("read %d bits: %x (want %x), err %v", c.bits, got, c.want, err)
		}
	}
	if _, err := r.read(8); !errors.Is(err, ErrTruncated) {
		t.Fatalf("overread: %v", err)
	}
	if _, err := (&bitReader{}).read(0); err == nil {
		t.Fatal("zero-width read accepted")
	}
	if _, err := (&bitReader{}).read(65); err == nil {
		t.Fatal("65-bit read accepted")
	}
}

// Property: write-then-read round-trips arbitrary field sequences.
func TestPropertyBitsRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := bitWriter{}
		type fld struct {
			v    uint64
			bits int
		}
		var flds []fld
		for i := 0; i < n; i++ {
			bits := int(widths[i]%64) + 1
			v := vals[i] & mask(bits)
			flds = append(flds, fld{v, bits})
			w.write(v, bits)
		}
		r := bitReader{data: w.data}
		for _, f := range flds {
			got, err := r.read(f.bits)
			if err != nil || got != f.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	if mask(1) != 1 || mask(8) != 0xff || mask(64) != ^uint64(0) || mask(70) != ^uint64(0) {
		t.Fatal("mask values")
	}
}

func loadFwd(t *testing.T) *Instance {
	t.Helper()
	in, err := Load(p4ir.NewForwarding("fwd_v1.p4"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}},
		Action:  "fwd",
		Params:  map[string]uint64{"port": 2},
	}); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestLoadRejectsInvalid(t *testing.T) {
	bad := p4ir.NewForwarding("")
	if _, err := Load(bad); err == nil {
		t.Fatal("invalid program loaded")
	}
}

func TestParseExtractsFields(t *testing.T) {
	in := loadFwd(t)
	frame, err := IPFrame(in.Program(), 7, 10, 1234, 80, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	pkt := NewPacket(frame, 1)
	if err := in.Parse(pkt); err != nil {
		t.Fatal(err)
	}
	for q, want := range map[string]uint64{
		"eth.typ": p4ir.EtherTypeIP, "ip.src": 7, "ip.dst": 10,
		"ip.proto": 6, "ip.ttl": 64, "tp.sport": 1234, "tp.dport": 80,
	} {
		if pkt.Get(q) != want {
			t.Errorf("%s = %d, want %d", q, pkt.Get(q), want)
		}
	}
	if string(pkt.Payload()) != "hello" {
		t.Fatalf("payload %q", pkt.Payload())
	}
	if got := pkt.Extracted(); len(got) != 3 || got[2] != "tp" {
		t.Fatalf("extracted: %v", got)
	}
	if in.PacketsParsed() != 1 {
		t.Fatal("parse counter")
	}
}

func TestParseNonIPStopsAtEth(t *testing.T) {
	in := loadFwd(t)
	frame, _ := BuildFrame(in.Program(), []string{"eth"}, map[string]uint64{"eth.typ": 0x0806}, nil)
	pkt := NewPacket(frame, 1)
	if err := in.Parse(pkt); err != nil {
		t.Fatal(err)
	}
	if len(pkt.Extracted()) != 1 {
		t.Fatalf("extracted %v", pkt.Extracted())
	}
}

func TestParseTruncated(t *testing.T) {
	in := loadFwd(t)
	pkt := NewPacket([]byte{1, 2, 3}, 1)
	if err := in.Parse(pkt); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated frame: %v", err)
	}
	// Process treats truncation as a silent drop.
	outs, err := in.Process([]byte{1, 2, 3}, 1)
	if err != nil || len(outs) != 0 {
		t.Fatalf("process truncated: %v %v", outs, err)
	}
}

func TestProcessForwards(t *testing.T) {
	in := loadFwd(t)
	frame, _ := IPFrame(in.Program(), 7, 10, 1234, 80, []byte("pp"))
	outs, err := in.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("outputs: %+v", outs)
	}
	// Deparsed frame preserves bytes when nothing was modified.
	if string(outs[0].Packet.Data) != string(frame) {
		t.Fatal("deparse changed an unmodified frame")
	}
}

func TestProcessDefaultDrop(t *testing.T) {
	in := loadFwd(t)
	frame, _ := IPFrame(in.Program(), 7, 99, 1, 2, nil) // unknown dst
	outs, err := in.Process(frame, 1)
	if err != nil || len(outs) != 0 {
		t.Fatalf("miss should drop: %v %v", outs, err)
	}
}

func TestFirewallDropsDeniedFlows(t *testing.T) {
	in, err := Load(p4ir.NewFirewall("firewall_v5.p4"))
	if err != nil {
		t.Fatal(err)
	}
	// Forward dst 10 out port 2; deny src 66 to any dst port 22.
	if err := in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "fwd", Params: map[string]uint64{"port": 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := in.InstallEntry("acl_filter", p4ir.Entry{
		Matches: []p4ir.KeyMatch{
			{Value: 66, Mask: ^uint64(0)},
			{Value: 0, Mask: 0},
			{Value: 22, Mask: ^uint64(0)},
		},
		Priority: 10,
		Action:   "drop",
	}); err != nil {
		t.Fatal(err)
	}
	// Denied flow.
	frame, _ := IPFrame(in.Program(), 66, 10, 999, 22, nil)
	outs, _ := in.Process(frame, 1)
	if len(outs) != 0 {
		t.Fatal("firewall passed denied flow")
	}
	// Allowed flow (different port).
	frame, _ = IPFrame(in.Program(), 66, 10, 999, 443, nil)
	outs, _ = in.Process(frame, 1)
	if len(outs) != 1 {
		t.Fatal("firewall dropped allowed flow")
	}
}

func TestACLDefaultDeny(t *testing.T) {
	in, _ := Load(p4ir.NewACL("ACL_v3.p4"))
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "fwd", Params: map[string]uint64{"port": 2}})
	in.InstallEntry("allowlist", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 7}, {Value: 80}}, Action: "nop"})
	allowed, _ := IPFrame(in.Program(), 7, 10, 5, 80, nil)
	if outs, _ := in.Process(allowed, 1); len(outs) != 1 {
		t.Fatal("allowlisted flow dropped")
	}
	denied, _ := IPFrame(in.Program(), 8, 10, 5, 80, nil)
	if outs, _ := in.Process(denied, 1); len(outs) != 0 {
		t.Fatal("non-allowlisted flow passed")
	}
}

func TestMonitorCountsFlows(t *testing.T) {
	in, _ := Load(p4ir.NewMonitor("mon"))
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "fwd", Params: map[string]uint64{"port": 2}})
	in.InstallEntry("flow_stats", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 7}, {Value: 10}},
		Action:  "count_flow", Params: map[string]uint64{"idx": 42}})
	frame, _ := IPFrame(in.Program(), 7, 10, 5, 80, nil)
	for i := 0; i < 3; i++ {
		in.Process(frame, 1)
	}
	if got := in.CounterValue("flow_count", 42); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if in.CounterValue("flow_count", 9999) != 0 {
		t.Fatal("out-of-range counter read")
	}
}

func TestRogueMirrorsTargetedTraffic(t *testing.T) {
	in, _ := Load(p4ir.NewRogueForwarding("fwd_v1.p4", 99))
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "fwd", Params: map[string]uint64{"port": 2}})
	in.InstallEntry("intercept", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 7, Mask: ^uint64(0)}},
		Action:  "mirror", Priority: 1})

	// Targeted source: two outputs, one mirrored to the tap port.
	frame, _ := IPFrame(in.Program(), 7, 10, 5, 80, []byte("secret"))
	outs, err := in.Process(frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("outputs: %+v", outs)
	}
	if outs[0].Port != 2 || outs[1].Port != 99 || !outs[1].Mirror {
		t.Fatalf("mirror routing: %+v", outs)
	}
	// Untargeted source behaves identically to the legit program.
	frame, _ = IPFrame(in.Program(), 8, 10, 5, 80, nil)
	outs, _ = in.Process(frame, 1)
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("untargeted: %+v", outs)
	}
}

func TestFieldModificationDeparses(t *testing.T) {
	prog := p4ir.NewForwarding("ttl")
	prog.Actions = append(prog.Actions, &p4ir.Action{
		Name: "dec_ttl",
		Ops: []p4ir.Op{
			{Kind: p4ir.OpAdd, Dst: "ip.ttl", Src: p4ir.C(0xff)}, // -1 mod 256
			{Kind: p4ir.OpForward, Src: p4ir.C(2)},
		},
	})
	prog.Ingress[0].Actions = append(prog.Ingress[0].Actions, "dec_ttl")
	in, err := Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "dec_ttl"})
	frame, _ := IPFrame(prog, 7, 10, 5, 80, []byte("xyz"))
	outs, _ := in.Process(frame, 1)
	if len(outs) != 1 {
		t.Fatal("no output")
	}
	// Re-parse the deparsed frame: ttl must be 63, payload preserved.
	in2 := loadFwd(t)
	pkt := NewPacket(outs[0].Packet.Data, 1)
	if err := in2.Parse(pkt); err != nil {
		t.Fatal(err)
	}
	if pkt.Get("ip.ttl") != 63 {
		t.Fatalf("ttl = %d, want 63", pkt.Get("ip.ttl"))
	}
	if string(pkt.Payload()) != "xyz" {
		t.Fatalf("payload %q", pkt.Payload())
	}
}

func TestLPMMatching(t *testing.T) {
	prog := p4ir.NewForwarding("lpm")
	prog.Ingress[0].Keys[0] = p4ir.Key{Field: "ip.dst", Kind: p4ir.MatchLPM, Bits: 32}
	in, _ := Load(prog)
	// 10.x/8 → port 1; 10.1.x/16 → port 2 (longer prefix wins).
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10 << 24, PrefixLen: 8}},
		Action:  "fwd", Params: map[string]uint64{"port": 1}})
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10<<24 | 1<<16, PrefixLen: 16}},
		Action:  "fwd", Params: map[string]uint64{"port": 2}})

	fr1, _ := IPFrame(prog, 1, 10<<24|2<<16, 0, 0, nil) // 10.2.0.0
	outs, _ := in.Process(fr1, 1)
	if len(outs) != 1 || outs[0].Port != 1 {
		t.Fatalf("/8 match: %+v", outs)
	}
	fr2, _ := IPFrame(prog, 1, 10<<24|1<<16|5, 0, 0, nil) // 10.1.0.5
	outs, _ = in.Process(fr2, 1)
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("/16 match: %+v", outs)
	}
	// Zero-length prefix matches anything.
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 0, PrefixLen: 0}},
		Action:  "fwd", Params: map[string]uint64{"port": 9}})
	fr3, _ := IPFrame(prog, 1, 99, 0, 0, nil)
	outs, _ = in.Process(fr3, 1)
	if len(outs) != 1 || outs[0].Port != 9 {
		t.Fatalf("/0 match: %+v", outs)
	}
}

func TestTernaryPriority(t *testing.T) {
	prog := p4ir.NewFirewall("f")
	in, _ := Load(prog)
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 10}}, Action: "fwd", Params: map[string]uint64{"port": 2}})
	// Low priority: drop everything from src 7.
	in.InstallEntry("acl_filter", p4ir.Entry{
		Matches:  []p4ir.KeyMatch{{Value: 7, Mask: ^uint64(0)}, {}, {}},
		Priority: 1, Action: "drop"})
	// High priority: allow src 7 to dport 443.
	in.InstallEntry("acl_filter", p4ir.Entry{
		Matches:  []p4ir.KeyMatch{{Value: 7, Mask: ^uint64(0)}, {}, {Value: 443, Mask: ^uint64(0)}},
		Priority: 10, Action: "nop"})

	blocked, _ := IPFrame(prog, 7, 10, 1, 80, nil)
	if outs, _ := in.Process(blocked, 1); len(outs) != 0 {
		t.Fatal("low-priority drop skipped")
	}
	allowed, _ := IPFrame(prog, 7, 10, 1, 443, nil)
	if outs, _ := in.Process(allowed, 1); len(outs) != 1 {
		t.Fatal("high-priority allow skipped")
	}
}

func TestInstallEntryErrors(t *testing.T) {
	in := loadFwd(t)
	if err := in.InstallEntry("ghost", p4ir.Entry{}); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("unknown table: %v", err)
	}
	if err := in.InstallEntry("ipv4_fwd", p4ir.Entry{Action: "fwd"}); !errors.Is(err, ErrBadEntry) {
		t.Fatalf("arity: %v", err)
	}
	if err := in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 1}}, Action: "mirror"}); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("unpermitted action: %v", err)
	}
	// Fill to MaxEntries.
	small := p4ir.NewForwarding("small")
	small.Ingress[0].MaxEntries = 1
	in2, _ := Load(small)
	in2.InstallEntry("ipv4_fwd", p4ir.Entry{Matches: []p4ir.KeyMatch{{Value: 1}}, Action: "drop"})
	if err := in2.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 2}}, Action: "drop"}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("table full: %v", err)
	}
}

func TestClearTableAndEntries(t *testing.T) {
	in := loadFwd(t)
	es, err := in.Entries("ipv4_fwd")
	if err != nil || len(es) != 1 {
		t.Fatalf("entries: %v %v", es, err)
	}
	if err := in.ClearTable("ipv4_fwd"); err != nil {
		t.Fatal(err)
	}
	es, _ = in.Entries("ipv4_fwd")
	if len(es) != 0 {
		t.Fatal("clear failed")
	}
	if err := in.ClearTable("ghost"); err == nil {
		t.Fatal("ghost clear")
	}
	if _, err := in.Entries("ghost"); err == nil {
		t.Fatal("ghost entries")
	}
}

func TestRegisters(t *testing.T) {
	in, _ := Load(p4ir.NewMonitor("m"))
	in.RegWrite("flow_count", 3, 77)
	if in.RegRead("flow_count", 3) != 77 {
		t.Fatal("reg rw")
	}
	in.RegWrite("flow_count", 1<<40, 1) // out of range: ignored
	if in.RegRead("flow_count", 1<<40) != 0 {
		t.Fatal("oob read")
	}
}

func TestDigests(t *testing.T) {
	a := loadFwd(t)
	b := loadFwd(t)
	if a.ProgramDigest() != b.ProgramDigest() {
		t.Fatal("program digest unstable")
	}
	if a.TablesDigest() != b.TablesDigest() {
		t.Fatal("tables digest unstable for same entries")
	}
	b.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 11}}, Action: "fwd", Params: map[string]uint64{"port": 3}})
	if a.TablesDigest() == b.TablesDigest() {
		t.Fatal("table change not reflected")
	}
	// State digest moves when registers change.
	m, _ := Load(p4ir.NewMonitor("m"))
	s0 := m.StateDigest()
	m.RegWrite("flow_count", 0, 5)
	if m.StateDigest() == s0 {
		t.Fatal("register change not reflected")
	}
	// ...but program digest does not.
	if m.ProgramDigest() != p4ir.NewMonitor("m").Digest() {
		t.Fatal("program digest drifted with state")
	}
}

func TestTableNamesAndDump(t *testing.T) {
	in, _ := Load(p4ir.NewFirewall("f"))
	names := in.TableNames()
	if len(names) != 2 || names[0] != "acl_filter" || names[1] != "ipv4_fwd" {
		t.Fatalf("names: %v", names)
	}
	in.InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 1}}, Action: "drop"})
	dump := in.DumpTables()
	if dump == "" || !contains(dump, "ipv4_fwd") || !contains(dump, "drop") {
		t.Fatalf("dump: %q", dump)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestPacketHelpers(t *testing.T) {
	p := NewPacket([]byte{1}, 4)
	if p.Get(p4ir.MetaIngressPort) != 4 {
		t.Fatal("ingress port")
	}
	p.Set("meta.x", 9)
	cl := p.Clone()
	cl.Set("meta.x", 10)
	if p.Get("meta.x") != 9 {
		t.Fatal("clone aliases fields")
	}
	if p.String() == "" {
		t.Fatal("string")
	}
	if p.FlowHash() == 0 {
		t.Fatal("flow hash zero")
	}
	q := NewPacket(nil, 4)
	q.Set("ip.src", 1)
	if p.FlowHash() == q.FlowHash() {
		t.Fatal("flow hash collision on different flows")
	}
}

func TestIPFrameParsesUnderAllLibraryPrograms(t *testing.T) {
	progs := []*p4ir.Program{
		p4ir.NewForwarding("a"), p4ir.NewFirewall("b"),
		p4ir.NewACL("c"), p4ir.NewMonitor("d"), p4ir.NewRogueForwarding("e", 9),
	}
	for _, prog := range progs {
		in, err := Load(prog)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := IPFrame(prog, 1, 2, 3, 4, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		pkt := NewPacket(frame, 0)
		if err := in.Parse(pkt); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
	}
}

func TestBuildFrameUnknownHeader(t *testing.T) {
	if _, err := BuildFrame(p4ir.NewForwarding("x"), []string{"ghost"}, nil, nil); err == nil {
		t.Fatal("unknown header accepted")
	}
}

// Property: Parse∘Deparse is the identity on well-formed frames.
func TestPropertyParseDeparseIdentity(t *testing.T) {
	in := loadFwd(t)
	prog := in.Program()
	f := func(src, dst uint64, sport, dport uint16, payload []byte) bool {
		frame, err := IPFrame(prog, src&0xffffffff, dst&0xffffffff, uint64(sport), uint64(dport), payload)
		if err != nil {
			return false
		}
		pkt := NewPacket(frame, 1)
		if err := in.Parse(pkt); err != nil {
			return false
		}
		out := in.Deparse(pkt)
		return string(out) == string(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
