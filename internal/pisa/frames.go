package pisa

import (
	"fmt"

	"pera/internal/p4ir"
)

// BuildFrame serializes the named headers of prog, taking field values
// from fields (absent fields are zero), and appends payload. It is the
// inverse of Parse for well-formed inputs and is used by tests, examples
// and the traffic generators.
func BuildFrame(prog *p4ir.Program, headers []string, fields map[string]uint64, payload []byte) ([]byte, error) {
	w := bitWriter{}
	for _, hname := range headers {
		hdr, ok := prog.Header(hname)
		if !ok {
			return nil, fmt.Errorf("pisa: unknown header %q", hname)
		}
		for _, f := range hdr.Fields {
			w.write(fields[p4ir.QName(hname, f.Name)], f.Bits)
		}
	}
	return append(w.data, payload...), nil
}

// IPFrame builds an eth+ip+tp frame for the standard program library
// headers, with eth.typ and ip.proto set so the std parser walks all
// three headers (proto 6 = "TCP-like").
func IPFrame(prog *p4ir.Program, src, dst uint64, sport, dport uint64, payload []byte) ([]byte, error) {
	return BuildFrame(prog, []string{"eth", "ip", "tp"}, map[string]uint64{
		"eth.typ":  p4ir.EtherTypeIP,
		"ip.src":   src,
		"ip.dst":   dst,
		"ip.proto": 6,
		"ip.ttl":   64,
		"tp.sport": sport,
		"tp.dport": dport,
	}, payload)
}
