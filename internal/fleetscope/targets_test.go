package fleetscope

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTargets(t *testing.T) {
	got, err := ParseTargets(" sim1=http://127.0.0.1:9464 , 127.0.0.2:9465/ ,, appr=https://10.0.0.1:9470 ")
	if err != nil {
		t.Fatalf("ParseTargets: %v", err)
	}
	want := []Target{
		{Name: "sim1", URL: "http://127.0.0.1:9464"},
		{Name: "127.0.0.2:9465", URL: "http://127.0.0.2:9465"},
		{Name: "appr", URL: "https://10.0.0.1:9470"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d targets, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("target %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTargetsEmpty(t *testing.T) {
	for _, in := range []string{"", " ", ",", " , , "} {
		got, err := ParseTargets(in)
		if err != nil || len(got) != 0 {
			t.Fatalf("ParseTargets(%q) = %v, %v; want empty, nil", in, got, err)
		}
	}
}

func TestParseTargetsDuplicateName(t *testing.T) {
	_, err := ParseTargets("a=http://x:1,a=http://y:2")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name error = %v", err)
	}
	// Same URL under two names is fine; same name is not, even with one
	// entry spelled bare (host:port names itself).
	if _, err := ParseTargets("127.0.0.1:9464=http://z:1,127.0.0.1:9464"); err == nil {
		t.Fatal("bare-URL name colliding with explicit name not rejected")
	}
}

func TestParseTargetsEmptyURL(t *testing.T) {
	if _, err := ParseTargets("name="); err == nil {
		t.Fatal("empty URL not rejected")
	}
}

func TestLoadTargetsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.targets")
	content := "# fleet\nsim1=http://127.0.0.1:9464\n\n  sim2 = http://127.0.0.1:9465 \n127.0.0.1:9466\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTargetsFile(path)
	if err != nil {
		t.Fatalf("LoadTargetsFile: %v", err)
	}
	if len(got) != 3 || got[0].Name != "sim1" || got[1].Name != "sim2" || got[2].Name != "127.0.0.1:9466" {
		t.Fatalf("targets = %+v", got)
	}
}

func TestLoadTargetsFileDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.targets")
	os.WriteFile(path, []byte("a=http://x:1\na=http://y:2\n"), 0o644)
	_, err := LoadTargetsFile(path)
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("duplicate error should name file:line, got %v", err)
	}
}

func TestMergeTargetsFileWins(t *testing.T) {
	static := []Target{{Name: "a", URL: "http://old:1"}, {Name: "b", URL: "http://b:1"}}
	file := []Target{{Name: "a", URL: "http://new:1"}, {Name: "c", URL: "http://c:1"}}
	got := mergeTargets(static, file)
	if len(got) != 3 {
		t.Fatalf("merged %d targets, want 3: %+v", len(got), got)
	}
	if got[0].URL != "http://new:1" {
		t.Fatalf("file entry should win on name collision, got %+v", got[0])
	}
}
