package fleetscope

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pera/internal/telemetry"
)

// fixedClock pins the aggregator's now for deterministic state math.
var fixedNow = time.Unix(1_700_000_000, 0)

func fixedClock() time.Time { return fixedNow }

// inject installs a fake last-scrape on a target, marking it healthy
// (lastOK = now) unless down is set, in which case it has DownAfter
// consecutive failures on the books.
func inject(a *Aggregator, name string, s *Scrape, down bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.targets[name]
	ts.last = s
	ts.scrapes = 5
	if down {
		ts.consecFails = a.cfg.DownAfter
		ts.errors = uint64(a.cfg.DownAfter)
		ts.lastOK = fixedNow.Add(-10 * time.Second).UnixNano()
		ts.lastErr = "connection refused"
	} else {
		ts.lastOK = fixedNow.UnixNano()
		ts.latencyNS = int64(3 * time.Millisecond)
	}
}

func coverageWith(places ...PlaceCoverage) *Coverage {
	c := &Coverage{Watchdog: "w", Policy: "AP1", Places: places}
	for _, p := range places {
		switch p.Status {
		case statusFresh:
			c.Fresh++
		case statusLapsed:
			c.Lapsed++
		case statusNever:
			c.Never++
		}
	}
	return c
}

func newModelAggregator(names ...string) *Aggregator {
	targets := make([]Target, 0, len(names))
	for _, n := range names {
		targets = append(targets, Target{Name: n, URL: "http://" + n + ":9464"})
	}
	return New(Config{Clock: fixedClock, Interval: time.Second}, targets)
}

// The core tentpole semantics: one appraiser reports sw2 fresh, another
// reports it lapsed — the merged trust map keeps the freshest committed
// evidence and surfaces the disagreement as a status-conflict finding.
func TestViewConflictFinding(t *testing.T) {
	a := newModelAggregator("appr1", "appr2")
	freshAt := fixedNow.Add(-time.Second).UnixNano()
	staleAt := fixedNow.Add(-2 * time.Minute).UnixNano()
	inject(a, "appr1", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusFresh, LastFreshNS: freshAt, AgeNS: int64(time.Second)},
		PlaceCoverage{Place: "sw2", Status: statusFresh, LastFreshNS: freshAt, AgeNS: int64(time.Second)},
	)}, false)
	inject(a, "appr2", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusFresh, LastFreshNS: freshAt, AgeNS: int64(time.Second)},
		PlaceCoverage{Place: "sw2", Status: statusLapsed, LastFreshNS: staleAt, AgeNS: int64(2 * time.Minute)},
	)}, false)

	v := a.View()
	if len(v.TrustMap) != 2 {
		t.Fatalf("trust map has %d places, want 2: %+v", len(v.TrustMap), v.TrustMap)
	}
	var sw2 PlaceTrust
	for _, p := range v.TrustMap {
		if p.Place == "sw2" {
			sw2 = p
		}
	}
	if sw2.Status != statusFresh || sw2.Source != "appr1" {
		t.Fatalf("sw2 merged as %s from %s, want fresh from appr1 (freshest wins)", sw2.Status, sw2.Source)
	}
	if !sw2.Conflict {
		t.Fatal("sw2 fresh-vs-lapsed disagreement not marked as conflict")
	}
	if len(sw2.Reports) != 2 {
		t.Fatalf("sw2 reports = %+v, want both appraisers", sw2.Reports)
	}

	var finding *Finding
	for i := range v.Findings {
		if v.Findings[i].Kind == FindingConflict && v.Findings[i].Place == "sw2" {
			finding = &v.Findings[i]
		}
	}
	if finding == nil {
		t.Fatalf("no status-conflict finding for sw2: %+v", v.Findings)
	}
	if !strings.Contains(finding.Detail, "appr1") || !strings.Contains(finding.Detail, "appr2") {
		t.Fatalf("conflict detail should name both reporters: %q", finding.Detail)
	}
	if v.Rollup.Conflicts != 1 {
		t.Fatalf("rollup conflicts = %d, want 1", v.Rollup.Conflicts)
	}
	// sw1 agrees everywhere: no conflict.
	for _, p := range v.TrustMap {
		if p.Place == "sw1" && p.Conflict {
			t.Fatal("sw1 marked conflicted despite agreement")
		}
	}
}

// A down reporter's stale opinion neither wins the merge nor raises a
// conflict — but when every reporter of a place is down, the last-known
// state is retained and flagged rather than dropped.
func TestViewDownReporters(t *testing.T) {
	a := newModelAggregator("ok", "dead")
	freshAt := fixedNow.Add(-time.Second).UnixNano()
	newer := fixedNow.UnixNano()
	inject(a, "ok", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusLapsed, LastFreshNS: freshAt},
	)}, false)
	// The dead target has NEWER evidence for sw1 and exclusive knowledge
	// of sw9.
	inject(a, "dead", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusFresh, LastFreshNS: newer},
		PlaceCoverage{Place: "sw9", Status: statusFresh, LastFreshNS: newer},
	)}, true)

	v := a.View()
	byPlace := map[string]PlaceTrust{}
	for _, p := range v.TrustMap {
		byPlace[p.Place] = p
	}
	sw1 := byPlace["sw1"]
	if sw1.Status != statusLapsed || sw1.Source != "ok" {
		t.Fatalf("sw1 = %s from %s: a down reporter must not win the merge", sw1.Status, sw1.Source)
	}
	if sw1.Conflict {
		t.Fatal("conflict must only consider live reporters")
	}
	sw9 := byPlace["sw9"]
	if !sw9.AllReportersDown || sw9.Status != statusFresh {
		t.Fatalf("sw9 = %+v: want last-known state retained and flagged all-reporters-down", sw9)
	}
}

// The merged alert feed dedups by (rule, place): firing beats resolved,
// the newest firing instant wins, and every reporting target is listed.
func TestViewAlertDedup(t *testing.T) {
	a := newModelAggregator("n1", "n2", "n3")
	alert := func(state string, fired int64) Alert {
		return Alert{Rule: "staleness-threshold", Place: "sw2", State: state,
			Reason: "r@" + time.Unix(0, fired).UTC().Format("15:04:05"), FiredAtNS: fired}
	}
	inject(a, "n1", &Scrape{Series: -1, Alerts: &AlertsSnapshot{Firing: 1,
		Alerts: []Alert{alert("firing", 100)}}}, false)
	inject(a, "n2", &Scrape{Series: -1, Alerts: &AlertsSnapshot{Firing: 1,
		Alerts: []Alert{alert("firing", 200), {Rule: "freshness-burn", Place: "sw3", State: "resolved", FiredAtNS: 50}}}}, false)
	inject(a, "n3", &Scrape{Series: -1, Alerts: &AlertsSnapshot{
		Alerts: []Alert{alert("resolved", 300)}}}, false)

	v := a.View()
	if len(v.Alerts) != 2 {
		t.Fatalf("feed has %d entries, want 2 (deduplicated): %+v", len(v.Alerts), v.Alerts)
	}
	fa := v.Alerts[0] // firing sorts first
	if fa.Rule != "staleness-threshold" || fa.Place != "sw2" {
		t.Fatalf("first feed entry = %+v", fa)
	}
	if fa.State != "firing" {
		t.Fatal("firing must beat resolved in the dedup")
	}
	if fa.FiredAtNS != 200 {
		t.Fatalf("fired_at = %d, want 200 (newest firing instant)", fa.FiredAtNS)
	}
	if len(fa.Targets) != 3 {
		t.Fatalf("targets = %v, want all three reporters", fa.Targets)
	}
	if v.Rollup.AlertsFiring != 1 {
		t.Fatalf("rollup firing = %d, want 1 (deduplicated)", v.Rollup.AlertsFiring)
	}
}

// Rollup sums verdict/fail/anomaly rates across targets and keeps the
// per-target rows.
func TestViewRollupSums(t *testing.T) {
	a := newModelAggregator("n1", "n2")
	metrics := func(pass, fail, vfails, anom float64) *MetricsSnapshot {
		return &MetricsSnapshot{Metrics: []Metric{
			{Name: "pera_pool_pass_total", Value: pass},
			{Name: "pera_pool_fail_total", Value: fail},
			{Name: "pera_verify_fails_total", Value: vfails},
			{Name: "pera_anomaly_total", Value: anom},
		}}
	}
	inject(a, "n1", &Scrape{Series: -1, Metrics: metrics(10, 2, 1, 0)}, false)
	inject(a, "n2", &Scrape{Series: -1, Metrics: metrics(5, 0, 0, 3)}, false)

	r := a.View().Rollup
	if r.Verdicts != 17 || r.VerifyFails != 1 || r.Anomalies != 3 {
		t.Fatalf("rollup = %+v, want verdicts 17, verify fails 1, anomalies 3", r)
	}
	if len(r.PerTarget) != 2 {
		t.Fatalf("per-target rows = %+v", r.PerTarget)
	}
	for _, tr := range r.PerTarget {
		if tr.Target == "n1" && tr.Verdicts != 12 {
			t.Fatalf("n1 verdicts = %v, want 12", tr.Verdicts)
		}
	}
}

// Profile summaries roll up: each target keeps its own hotspot, the
// fleet-wide top-function table merges per-target rows weighted by the
// CPU each process actually burned, and reported regressions surface as
// fleet findings.
func TestViewProfileRollup(t *testing.T) {
	a := newModelAggregator("n1", "n2")
	p1 := &ProfileSummary{
		Service: "n1", TotalSeconds: 3, LabeledShare: 0.8,
		Hotspot: "crypto/ed25519.Verify", HotspotShare: 0.6,
		Top: []ProfileFunc{
			{Name: "crypto/ed25519.Verify", Seconds: 1.8, Share: 0.6},
			{Name: "crypto/sha256.block", Seconds: 0.6, Share: 0.2},
		},
	}
	p2 := &ProfileSummary{
		Service: "n2", TotalSeconds: 1, LabeledShare: 0.5,
		Hotspot: "crypto/sha256.block", HotspotShare: 0.5,
		Top: []ProfileFunc{{Name: "crypto/sha256.block", Seconds: 0.5, Share: 0.5}},
	}
	p2.Regressions = append(p2.Regressions, struct {
		Kind   string `json:"kind"`
		What   string `json:"what"`
		Reason string `json:"reason"`
	}{Kind: "stage", What: "verify@ap", Reason: "share 0.20 -> 0.60"})
	inject(a, "n1", &Scrape{Series: -1, Profile: p1}, false)
	inject(a, "n2", &Scrape{Series: -1, Profile: p2}, false)

	v := a.View()
	if v.Rollup.Profiled != 2 {
		t.Fatalf("profiled targets = %d, want 2", v.Rollup.Profiled)
	}
	byName := map[string]TargetStatus{}
	for _, ts := range v.Targets {
		byName[ts.Name] = ts
	}
	if byName["n1"].Hotspot != "crypto/ed25519.Verify" || byName["n1"].LabeledShare != 0.8 {
		t.Fatalf("n1 profile row = %+v", byName["n1"])
	}
	if byName["n2"].Hotspot != "crypto/sha256.block" {
		t.Fatalf("n2 profile row = %+v", byName["n2"])
	}

	// Fleet hot path: ed25519 1.8s, sha256 0.6+0.5=1.1s, of 4 total
	// profiled seconds.
	hf := v.Rollup.HotFuncs
	if len(hf) != 2 {
		t.Fatalf("hot funcs = %+v, want 2 merged rows", hf)
	}
	if hf[0].Name != "crypto/ed25519.Verify" || hf[0].Seconds != 1.8 {
		t.Fatalf("top fleet func = %+v, want ed25519 1.8s", hf[0])
	}
	if hf[1].Name != "crypto/sha256.block" || hf[1].Seconds < 1.09 || hf[1].Seconds > 1.11 {
		t.Fatalf("second fleet func = %+v, want sha256 ~1.1s (merged across targets)", hf[1])
	}
	if got, want := hf[0].Share, 1.8/4.0; got < want-0.001 || got > want+0.001 {
		t.Fatalf("top share = %v, want %v (recomputed vs fleet seconds)", got, want)
	}

	var reg *Finding
	for i := range v.Findings {
		if v.Findings[i].Kind == FindingProfileRegression {
			reg = &v.Findings[i]
		}
	}
	if reg == nil || reg.Target != "n2" || !strings.Contains(reg.Detail, "verify@ap") {
		t.Fatalf("profile regression finding = %+v, want n2 verify@ap", reg)
	}

	// Renders surface the profile plane.
	var status, targets strings.Builder
	RenderStatus(&status, v)
	if !strings.Contains(status.String(), "fleet hot path") ||
		!strings.Contains(status.String(), "crypto/ed25519.Verify") {
		t.Fatalf("status render missing fleet hot path:\n%s", status.String())
	}
	RenderTargets(&targets, v)
	if !strings.Contains(targets.String(), "hotspot crypto/ed25519.Verify") {
		t.Fatalf("targets render missing hotspot row:\n%s", targets.String())
	}
}

// The trust map sorts worst-first so renders lead with the problems.
func TestViewTrustMapOrder(t *testing.T) {
	a := newModelAggregator("n1")
	freshAt := fixedNow.UnixNano()
	inject(a, "n1", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "a-fresh", Status: statusFresh, LastFreshNS: freshAt},
		PlaceCoverage{Place: "b-lapsed", Status: statusLapsed, LastFreshNS: 1},
		PlaceCoverage{Place: "c-never", Status: statusNever},
	)}, false)
	v := a.View()
	got := []string{v.TrustMap[0].Place, v.TrustMap[1].Place, v.TrustMap[2].Place}
	want := []string{"b-lapsed", "c-never", "a-fresh"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trust map order = %v, want %v", got, want)
		}
	}
}

// /fleet.json round-trips the view through its JSON encoding.
func TestFleetEndpointJSON(t *testing.T) {
	a := newModelAggregator("n1")
	inject(a, "n1", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusFresh, LastFreshNS: fixedNow.UnixNano()},
	)}, false)

	ep := a.Endpoint()
	if ep.Path != FleetPath {
		t.Fatalf("endpoint path = %s", ep.Path)
	}
	srv := httptest.NewServer(ep.Handler)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + FleetPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var v FleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if v.Fleet != "fleet" || len(v.TrustMap) != 1 || v.TrustMap[0].Place != "sw1" {
		t.Fatalf("round-tripped view = %+v", v)
	}
	if len(v.Targets) != 1 || v.Targets[0].State != StateUp {
		t.Fatalf("targets = %+v", v.Targets)
	}
}

// The pera_fleet_* registry family reflects the merged view.
func TestInstrument(t *testing.T) {
	a := newModelAggregator("n1", "n2")
	reg := telemetry.NewRegistry()
	a.Instrument(reg)

	freshAt := fixedNow.UnixNano()
	inject(a, "n1", &Scrape{Series: -1,
		Metrics:  &MetricsSnapshot{Metrics: []Metric{{Name: "pera_pool_pass_total", Value: 4}}},
		Coverage: coverageWith(PlaceCoverage{Place: "sw1", Status: statusFresh, LastFreshNS: freshAt}),
		Alerts:   &AlertsSnapshot{Firing: 2, Alerts: []Alert{{Rule: "r", Place: "sw1", State: "firing"}}},
	}, false)
	inject(a, "n2", &Scrape{Series: -1, Coverage: coverageWith(
		PlaceCoverage{Place: "sw1", Status: statusLapsed, LastFreshNS: 1}),
	}, false)

	snap := reg.Snapshot()
	if got := snap.Value("pera_fleet_targets", telemetry.L("state", "up")); got != 2 {
		t.Fatalf("targets up = %v, want 2", got)
	}
	if got := snap.Value("pera_fleet_conflicts"); got != 1 {
		t.Fatalf("conflicts = %v, want 1", got)
	}
	if got := snap.Value("pera_fleet_places", telemetry.L("status", "fresh")); got != 1 {
		t.Fatalf("fresh places = %v, want 1 (merged, freshest wins)", got)
	}
	if got := snap.Value("pera_fleet_target_up", telemetry.L("target", "n1")); got != 1 {
		t.Fatalf("n1 up = %v, want 1", got)
	}
	if got := snap.Value("pera_fleet_target_verdicts", telemetry.L("target", "n1")); got != 4 {
		t.Fatalf("n1 verdicts = %v, want 4", got)
	}
	if got := snap.Value("pera_fleet_target_firing", telemetry.L("target", "n1")); got != 2 {
		t.Fatalf("n1 firing = %v, want 2", got)
	}
	if got := snap.Value("pera_fleet_scrapes_total", telemetry.L("target", "n2")); got != 5 {
		t.Fatalf("n2 scrapes = %v, want 5", got)
	}
}
