package fleetscope

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The structs below are fleetscope's pinned copies of the wire schemas
// it scrapes. They are deliberately NOT the producing packages' types:
// the fleet control plane talks to processes from other builds, so the
// JSON contract — field names and units — is the interface, and
// client_test.go round-trips real handler output through these structs
// to catch either side drifting.

// Coverage mirrors the freshness watchdog's /coverage.json surface.
type Coverage struct {
	Watchdog string `json:"watchdog"`
	Policy   string `json:"policy"`
	NowNS    int64  `json:"now_ns"`

	BudgetFreshNS  int64   `json:"budget_fresh_ns"`
	BudgetLapsedNS int64   `json:"budget_lapsed_ns"`
	SLOTarget      float64 `json:"slo_target"`

	Fresh  int `json:"fresh"`
	Stale  int `json:"stale"`
	Lapsed int `json:"lapsed"`
	Never  int `json:"never_attested"`

	Evaluations uint64          `json:"evaluations"`
	Places      []PlaceCoverage `json:"places"`
}

// PlaceCoverage is one (place, policy) coverage row as served on the
// wire. AgeNS/LastFreshNS are what the trust-map merge runs on.
type PlaceCoverage struct {
	Place  string `json:"place"`
	Policy string `json:"policy"`
	Status string `json:"status"` // fresh | stale | lapsed | never-attested

	AgeNS       int64 `json:"age_ns"`
	LastFreshNS int64 `json:"last_fresh_ns"`
	PendingNS   int64 `json:"pending_ns,omitempty"`

	CachePuts    uint64 `json:"cache_puts"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheExpires uint64 `json:"cache_expires"`
	Verdicts     uint64 `json:"verdicts"`
	Fails        uint64 `json:"fails"`
	Probes       uint64 `json:"probes"`
	ProbesOK     uint64 `json:"probes_ok"`

	WindowSamples int     `json:"window_samples"`
	WindowBadFrac float64 `json:"window_bad_frac"`
	Tracked       bool    `json:"tracked"`
}

// AlertsSnapshot mirrors the watchdog's /alerts.json surface.
type AlertsSnapshot struct {
	Watchdog      string  `json:"watchdog"`
	Firing        int     `json:"firing"`
	FiredTotal    uint64  `json:"fired_total"`
	ResolvedTotal uint64  `json:"resolved_total"`
	ProbesTotal   uint64  `json:"probes_total"`
	ProbesOK      uint64  `json:"probes_ok"`
	Alerts        []Alert `json:"alerts"` // newest first
}

// Alert is one alert on the wire.
type Alert struct {
	ID     uint64 `json:"id"`
	Rule   string `json:"rule"`
	Place  string `json:"place"`
	Policy string `json:"policy"`
	State  string `json:"state"` // firing | resolved
	Reason string `json:"reason"`

	AgeNS      int64  `json:"age_ns"`
	FiredAtNS  int64  `json:"fired_at_ns"`
	FiredEval  uint64 `json:"fired_eval"`
	ResolvedNS int64  `json:"resolved_at_ns,omitempty"`
	Probes     uint64 `json:"probes"`
	ProbeOK    uint64 `json:"probes_ok"`
}

// MetricsSnapshot is the subset of /metrics.json fleetscope reads: flat
// name/labels/value triples (histograms additionally carry count/sum,
// which the rollup ignores).
type MetricsSnapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Metric is one sampled metric on the wire.
type Metric struct {
	Name   string        `json:"name"`
	Labels []MetricLabel `json:"labels,omitempty"`
	Value  float64       `json:"value"`
}

// MetricLabel is one name="value" dimension.
type MetricLabel struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Value sums every sample of a metric family across its label variants.
func (m MetricsSnapshot) Value(name string) float64 {
	var v float64
	for i := range m.Metrics {
		if m.Metrics[i].Name == name {
			v += m.Metrics[i].Value
		}
	}
	return v
}

// Observatory is the subset of /observatory.json fleetscope reads:
// anomaly flags per place and the compromise localization.
type Observatory struct {
	Collector    string             `json:"collector"`
	Frames       uint64             `json:"frames"`
	Traces       uint64             `json:"traces"`
	Verdicts     uint64             `json:"verdicts"`
	Places       []ObservatoryPlace `json:"places"`
	Localization *Localization      `json:"localization,omitempty"`
}

// ObservatoryPlace is one place-health row, reduced to what the fleet
// view needs.
type ObservatoryPlace struct {
	Place     string `json:"place"`
	Spans     uint64 `json:"spans"`
	Anomalous bool   `json:"anomalous"`
}

// Localization is a collector's compromise attribution.
type Localization struct {
	Place  string `json:"place"`
	Reason string `json:"reason"`
}

// HistoryIndex is the /history.json series index (no metric= query).
type HistoryIndex struct {
	Series []struct {
		ID string `json:"id"`
	} `json:"series"`
}

// ProfileSummary is the subset of the continuous profiler's
// /profile.json surface the fleet view reads: who the target is, how
// much of its CPU is attributed to RATS stages, the named hotspot and
// the top-function table the fleet-wide rollup merges.
type ProfileSummary struct {
	Service      string         `json:"service"`
	CapturedNS   int64          `json:"captured_ns"`
	Captures     uint64         `json:"captures"`
	TotalSeconds float64        `json:"total_seconds"`
	LabeledShare float64        `json:"labeled_share"`
	Hotspot      string         `json:"hotspot"`
	HotspotShare float64        `json:"hotspot_share"`
	Stages       []ProfileStage `json:"stages"`
	Top          []ProfileFunc  `json:"top"`
	Regressions  []struct {
		Kind   string `json:"kind"`
		What   string `json:"what"`
		Reason string `json:"reason"`
	} `json:"regressions,omitempty"`
}

// ProfileStage is one attributed (stage, place) CPU row on the wire.
type ProfileStage struct {
	Stage   string  `json:"stage"`
	Place   string  `json:"place"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// ProfileFunc is one top-function row on the wire.
type ProfileFunc struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// Paths of the scraped surfaces.
const (
	MetricsPath     = "/metrics.json"
	CoveragePath    = "/coverage.json"
	AlertsPath      = "/alerts.json"
	ObservatoryPath = "/observatory.json"
	HistoryPath     = "/history.json"
	ProfilePath     = "/profile.json"
)

// Client fetches one process's JSON surfaces with a hard per-request
// timeout and one immediate retry on transport errors (distinct from the
// scrape loop's exponential backoff, which paces whole attempts).
type Client struct {
	http    *http.Client
	retries int
}

// NewClient builds a client with the given per-request timeout.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Client{http: &http.Client{Timeout: timeout}, retries: 1}
}

// errNotServed marks a surface the target does not mount (HTTP 404) —
// an attestd exposes /metrics.json but no /coverage.json, and that is a
// property of the target, not a failure.
type errNotServed struct{ path string }

func (e errNotServed) Error() string { return e.path + " not served" }

// IsNotServed reports whether err means the surface is absent rather
// than broken.
func IsNotServed(err error) bool {
	_, ok := err.(errNotServed)
	return ok
}

// getJSON fetches base+path into out, retrying transport errors once.
func (c *Client) getJSON(ctx context.Context, base, path string, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(25 * time.Millisecond):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue // transport error: retry
		}
		func() {
			defer resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusNotFound:
				lastErr = errNotServed{path}
			case resp.StatusCode != http.StatusOK:
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
				lastErr = fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
			default:
				lastErr = json.NewDecoder(resp.Body).Decode(out)
			}
		}()
		if lastErr == nil || IsNotServed(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// Scrape is one successful collection from a target. Optional surfaces
// the target does not serve are nil/zero.
type Scrape struct {
	AtNS      int64
	LatencyNS int64

	Metrics     *MetricsSnapshot
	Coverage    *Coverage
	Alerts      *AlertsSnapshot
	Observatory *Observatory
	Profile     *ProfileSummary
	Series      int // /history.json index size, -1 when not served

	// EndpointErrs counts optional surfaces that errored (not 404) this
	// scrape; the scrape still succeeds if /metrics.json answered.
	EndpointErrs int
}

// ScrapeTarget collects every surface of one target. The scrape fails —
// returns an error — only when /metrics.json fails: that endpoint
// exists on every telemetry server, so its loss means the process is
// unreachable. The richer surfaces are best-effort per target shape.
func (c *Client) ScrapeTarget(ctx context.Context, t Target, clock func() time.Time) (*Scrape, error) {
	start := clock()
	s := &Scrape{Series: -1}

	var ms MetricsSnapshot
	if err := c.getJSON(ctx, t.URL, MetricsPath, &ms); err != nil {
		return nil, fmt.Errorf("%s: %w", t.Name, err)
	}
	s.Metrics = &ms

	var cov Coverage
	switch err := c.getJSON(ctx, t.URL, CoveragePath, &cov); {
	case err == nil:
		s.Coverage = &cov
	case !IsNotServed(err):
		s.EndpointErrs++
	}
	var al AlertsSnapshot
	switch err := c.getJSON(ctx, t.URL, AlertsPath, &al); {
	case err == nil:
		s.Alerts = &al
	case !IsNotServed(err):
		s.EndpointErrs++
	}
	var obs Observatory
	switch err := c.getJSON(ctx, t.URL, ObservatoryPath, &obs); {
	case err == nil:
		s.Observatory = &obs
	case !IsNotServed(err):
		s.EndpointErrs++
	}
	var hist HistoryIndex
	switch err := c.getJSON(ctx, t.URL, HistoryPath, &hist); {
	case err == nil:
		s.Series = len(hist.Series)
	case !IsNotServed(err):
		s.EndpointErrs++
	}
	var prof ProfileSummary
	switch err := c.getJSON(ctx, t.URL, ProfilePath, &prof); {
	case err == nil:
		s.Profile = &prof
	case !IsNotServed(err):
		s.EndpointErrs++
	}

	end := clock()
	s.AtNS = end.UnixNano()
	s.LatencyNS = end.Sub(start).Nanoseconds()
	return s, nil
}
