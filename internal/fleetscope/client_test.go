package fleetscope

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pera/internal/freshness"
	"pera/internal/profiler"
	"pera/internal/telemetry"
)

// seededWatchdog builds a watchdog with one fresh, one lapsed and one
// never-attested place under a wide budget, alerts fired.
func seededWatchdog(name string) *freshness.Watchdog {
	w := freshness.New(name, freshness.Config{
		Budget: freshness.Budget{FreshFor: 30 * time.Second, LapsedAfter: time.Minute},
	})
	now := time.Now()
	w.Track("sw1", "sw2", "sw3")
	w.RecordFresh("sw1", now)
	w.RecordFresh("sw2", now.Add(-2*time.Minute))
	w.Tick()
	w.Tick() // firing hysteresis: two breaching evaluations
	return w
}

// The wire-schema pin (satellite): fleetscope's pinned Coverage struct
// must decode the real watchdog handler's output losslessly — every
// field the trust-map merge and renders read must survive the
// encode/decode round-trip.
func TestCoverageRoundTrip(t *testing.T) {
	w := seededWatchdog("rt")
	srv := httptest.NewServer(w.CoverageHandler())
	defer srv.Close()

	var got Coverage
	c := NewClient(2 * time.Second)
	if err := c.getJSON(context.Background(), srv.URL, "", &got); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	want := w.Coverage()

	if got.Watchdog != want.Watchdog || got.Policy != want.Policy {
		t.Fatalf("identity: got %s/%s want %s/%s", got.Watchdog, got.Policy, want.Watchdog, want.Policy)
	}
	if got.BudgetFreshNS != want.BudgetFreshNS || got.BudgetLapsedNS != want.BudgetLapsedNS ||
		got.SLOTarget != want.SLOTarget {
		t.Fatalf("budget fields drifted: got %+v", got)
	}
	if got.Fresh != 1 || got.Lapsed != 1 || got.Never != 1 {
		t.Fatalf("status counts: fresh=%d lapsed=%d never=%d, want 1/1/1", got.Fresh, got.Lapsed, got.Never)
	}
	if len(got.Places) != len(want.Places) {
		t.Fatalf("places: got %d want %d", len(got.Places), len(want.Places))
	}
	for i, gp := range got.Places {
		wp := want.Places[i]
		if gp.Place != wp.Place || gp.Status != string(wp.Status) || gp.Policy != wp.Policy {
			t.Fatalf("place %d: got %+v want %+v", i, gp, wp)
		}
		if gp.LastFreshNS != wp.LastFreshNS || gp.Tracked != wp.Tracked {
			t.Fatalf("place %s: last_fresh/tracked drifted: got %+v want %+v", gp.Place, gp, wp)
		}
		// AgeNS is clock-relative; both snapshots must agree on "has an age".
		if (gp.AgeNS == 0) != (wp.AgeNS == 0) {
			t.Fatalf("place %s: age presence drifted (got %d, want %d)", gp.Place, gp.AgeNS, wp.AgeNS)
		}
	}
}

// Same pin for /alerts.json: firing alerts decoded through the
// fleetscope Alert struct keep the fields the merged feed depends on.
func TestAlertsRoundTrip(t *testing.T) {
	w := seededWatchdog("rt")
	srv := httptest.NewServer(w.AlertsHandler())
	defer srv.Close()

	var got AlertsSnapshot
	c := NewClient(2 * time.Second)
	if err := c.getJSON(context.Background(), srv.URL, "", &got); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	want := w.Alerts()

	if got.Watchdog != want.Watchdog || got.Firing != want.Firing ||
		got.FiredTotal != want.FiredTotal || got.ResolvedTotal != want.ResolvedTotal {
		t.Fatalf("snapshot header drifted: got %+v want %+v", got, want)
	}
	if got.Firing == 0 {
		t.Fatal("seeded watchdog should have firing alerts")
	}
	if len(got.Alerts) != len(want.Alerts) {
		t.Fatalf("alerts: got %d want %d", len(got.Alerts), len(want.Alerts))
	}
	for i, ga := range got.Alerts {
		wa := want.Alerts[i]
		if ga.ID != wa.ID || ga.Rule != wa.Rule || ga.Place != wa.Place ||
			ga.State != wa.State || ga.Reason != wa.Reason || ga.FiredAtNS != wa.FiredAtNS {
			t.Fatalf("alert %d drifted: got %+v want %+v", i, ga, wa)
		}
	}
}

// The /metrics.json pin: values written through a telemetry registry
// come back through MetricsSnapshot, including label variants, and
// Value sums across them.
func TestMetricsRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("pera_pool_pass_total", telemetry.L("worker", "0")).Add(3)
	reg.Counter("pera_pool_pass_total", telemetry.L("worker", "1")).Add(4)
	reg.Counter("pera_verify_fails_total").Add(2)
	srv := httptest.NewServer(telemetry.Handler(reg, nil))
	defer srv.Close()

	var got MetricsSnapshot
	c := NewClient(2 * time.Second)
	if err := c.getJSON(context.Background(), srv.URL, MetricsPath, &got); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if v := got.Value("pera_pool_pass_total"); v != 7 {
		t.Fatalf("pass total = %v, want 7 (summed across label variants)", v)
	}
	if v := got.Value("pera_verify_fails_total"); v != 2 {
		t.Fatalf("verify fails = %v, want 2", v)
	}
	if v := got.Value("pera_absent_metric"); v != 0 {
		t.Fatalf("absent metric = %v, want 0", v)
	}
}

// burn keeps a goroutine CPU-bound for d so the profiler's sampler has
// something to attribute.
func burn(d time.Duration) uint64 {
	var x uint64 = 88172645463325252
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<12; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
	}
	return x
}

// The /profile.json pin: fleetscope's ProfileSummary struct must decode
// the real continuous-profiler handler's output — the fields the fleet
// rollup reads (hotspot, labeled share, stage and top-function tables)
// survive the round-trip.
func TestProfileRoundTrip(t *testing.T) {
	p := profiler.New(profiler.Options{Service: "prof-rt"})
	region := telemetry.NewProfRegion(telemetry.StageVerify, "sw1")
	hot := func() {
		entered := region.Enter()
		burn(250 * time.Millisecond)
		telemetry.ProfExit(entered)
	}
	// The OS CPU sampler can be starved on loaded hosts; retry, then skip.
	var want profiler.Summary
	for attempt := 0; attempt < 3; attempt++ {
		if err := p.CaptureWhile(hot); err != nil {
			t.Fatalf("capture: %v", err)
		}
		if want = p.Summary(0); want.TotalSeconds > 0 && want.Hotspot != "" {
			break
		}
	}
	if want.TotalSeconds == 0 || want.Hotspot == "" {
		t.Skip("CPU sampler captured no samples on this host")
	}

	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(telemetry.Handler(reg, nil, p.Endpoints()...))
	defer srv.Close()

	var got ProfileSummary
	c := NewClient(2 * time.Second)
	if err := c.getJSON(context.Background(), srv.URL, ProfilePath, &got); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if got.Service != "prof-rt" || got.Captures != want.Captures {
		t.Fatalf("identity drifted: got %+v want %+v", got, want)
	}
	if got.TotalSeconds != want.TotalSeconds || got.LabeledShare != want.LabeledShare {
		t.Fatalf("CPU accounting drifted: got %v/%v want %v/%v",
			got.TotalSeconds, got.LabeledShare, want.TotalSeconds, want.LabeledShare)
	}
	if got.Hotspot != want.Hotspot || got.HotspotShare != want.HotspotShare {
		t.Fatalf("hotspot drifted: got %s@%v want %s@%v",
			got.Hotspot, got.HotspotShare, want.Hotspot, want.HotspotShare)
	}
	if len(got.Stages) != len(want.Stages) || len(got.Top) != len(want.Top) {
		t.Fatalf("tables drifted: %d/%d stages, %d/%d top rows",
			len(got.Stages), len(want.Stages), len(got.Top), len(want.Top))
	}
	for i, gs := range got.Stages {
		ws := want.Stages[i]
		if gs.Stage != ws.Stage || gs.Place != ws.Place || gs.Seconds != ws.Seconds || gs.Share != ws.Share {
			t.Fatalf("stage %d drifted: got %+v want %+v", i, gs, ws)
		}
	}
	var verifyRow *ProfileStage
	for i := range got.Stages {
		if got.Stages[i].Stage == "verify" && got.Stages[i].Place == "sw1" {
			verifyRow = &got.Stages[i]
		}
	}
	if verifyRow == nil || verifyRow.Seconds <= 0 {
		t.Fatalf("no (verify, sw1) stage row on the wire: %+v", got.Stages)
	}
}

// ScrapeTarget succeeds against a plain telemetry server (no watchdog,
// no recorder): the optional surfaces 404 and that is a target shape,
// not an error.
func TestScrapeTargetMetricsOnly(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(telemetry.Handler(reg, nil))
	defer srv.Close()

	c := NewClient(2 * time.Second)
	s, err := c.ScrapeTarget(context.Background(), Target{Name: "bare", URL: srv.URL}, time.Now)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if s.Metrics == nil {
		t.Fatal("metrics missing")
	}
	if s.Coverage != nil || s.Alerts != nil || s.Observatory != nil || s.Profile != nil {
		t.Fatal("absent surfaces should stay nil")
	}
	if s.Series != -1 {
		t.Fatalf("series = %d, want -1 for no recorder", s.Series)
	}
	if s.EndpointErrs != 0 {
		t.Fatalf("endpoint errs = %d, want 0 — 404s are not errors", s.EndpointErrs)
	}
}

// A target with a watchdog yields coverage and alerts on the same scrape.
func TestScrapeTargetWithWatchdog(t *testing.T) {
	w := seededWatchdog("full")
	reg := telemetry.NewRegistry()
	w.Instrument(reg)
	srv := httptest.NewServer(telemetry.Handler(reg, nil, w.Endpoints()...))
	defer srv.Close()

	c := NewClient(2 * time.Second)
	s, err := c.ScrapeTarget(context.Background(), Target{Name: "full", URL: srv.URL}, time.Now)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if s.Coverage == nil || len(s.Coverage.Places) != 3 {
		t.Fatalf("coverage = %+v, want 3 places", s.Coverage)
	}
	if s.Alerts == nil || s.Alerts.Firing == 0 {
		t.Fatalf("alerts = %+v, want firing", s.Alerts)
	}
}

// Scrape failure is exactly "/metrics.json unreachable"; a broken
// optional surface only counts as an endpoint error.
func TestScrapeTargetFailures(t *testing.T) {
	c := NewClient(200 * time.Millisecond)
	if _, err := c.ScrapeTarget(context.Background(),
		Target{Name: "dead", URL: "http://127.0.0.1:1"}, time.Now); err == nil {
		t.Fatal("scrape of a dead address should fail")
	}

	mux := http.NewServeMux()
	reg := telemetry.NewRegistry()
	mux.Handle("/metrics.json", telemetry.Handler(reg, nil))
	mux.HandleFunc(CoveragePath, func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	s, err := c.ScrapeTarget(context.Background(), Target{Name: "half", URL: srv.URL}, time.Now)
	if err != nil {
		t.Fatalf("scrape should survive a broken optional surface: %v", err)
	}
	if s.EndpointErrs == 0 {
		t.Fatal("broken /coverage.json should count as an endpoint error")
	}
	if s.Coverage != nil {
		t.Fatal("broken coverage should stay nil")
	}
}

// Transport errors are retried once within the same attempt.
func TestGetJSONRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Kill the connection mid-flight: a transport error, not HTTP.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"metrics":[]}`))
	}))
	defer srv.Close()

	var out MetricsSnapshot
	c := NewClient(2 * time.Second)
	if err := c.getJSON(context.Background(), srv.URL, "", &out); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one failure + one retry)", calls.Load())
	}
}
