package fleetscope

import (
	"fmt"
	"sort"
	"strings"
)

// TargetStatus is one target's scrape-health row in the fleet view.
type TargetStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"` // up | stale | down

	Scrapes      uint64 `json:"scrapes"`
	Errors       uint64 `json:"errors"`
	EndpointErrs uint64 `json:"endpoint_errors"`
	ConsecFails  int    `json:"consec_fails"`
	LastScrapeNS int64  `json:"last_scrape_ns"` // last attempt
	LastOKNS     int64  `json:"last_ok_ns"`     // last success, 0 = never
	LatencyNS    int64  `json:"latency_ns"`
	LastErr      string `json:"last_err,omitempty"`

	Places int `json:"places"` // coverage rows reported
	Firing int `json:"firing"` // alerts firing at the target
	Series int `json:"series"` // history series (-1: no recorder)

	// Profiler rollup (zero values when the target serves no
	// /profile.json): where this process burns its CPU.
	Hotspot      string  `json:"hotspot,omitempty"`
	HotspotShare float64 `json:"hotspot_share,omitempty"`
	LabeledShare float64 `json:"labeled_share,omitempty"`
}

// PlaceReport is one target's claim about one place.
type PlaceReport struct {
	Target      string `json:"target"`
	TargetState string `json:"target_state"`
	Status      string `json:"status"`
	AgeNS       int64  `json:"age_ns"`
	LastFreshNS int64  `json:"last_fresh_ns"`
	Policy      string `json:"policy,omitempty"`
}

// PlaceTrust is one place's merged row on the global trust map: the
// freshest committed-evidence status across every reporting process,
// with the per-target reports preserved so a conflict is inspectable.
type PlaceTrust struct {
	Place  string `json:"place"`
	Status string `json:"status"` // from the freshest live reporter
	AgeNS  int64  `json:"age_ns"`
	Source string `json:"source"` // target whose report won

	// Conflict marks cross-process disagreement: at least one live
	// reporter claims fresh while another claims lapsed/never-attested.
	Conflict bool `json:"conflict,omitempty"`
	// AllReportersDown marks a place whose every reporter is down; the
	// row carries the last-known state rather than vanishing.
	AllReportersDown bool `json:"all_reporters_down,omitempty"`

	Reports []PlaceReport `json:"reports"`

	// conflictDetail carries the human-readable conflict explanation from
	// the merge to the finding without serializing on the trust-map row.
	conflictDetail string
}

// Finding kinds. Findings are the fleet layer's own first-class
// signals, distinct from per-process alerts.
const (
	// FindingConflict: reporting processes disagree about a place's
	// trust (one fresh, one lapsed/never) — a partitioned or lagging
	// appraiser, or a device answering probes selectively.
	FindingConflict = "status-conflict"
	// FindingTargetDown: a fleet member stopped answering scrapes.
	FindingTargetDown = "target-down"
	// FindingProfileRegression: a target's continuous profiler reports a
	// hot-path regression against its pinned baseline.
	FindingProfileRegression = "profile-regression"
)

// Finding is one fleet-level signal.
type Finding struct {
	Kind   string `json:"kind"`
	Place  string `json:"place,omitempty"`
	Target string `json:"target,omitempty"`
	Detail string `json:"detail"`
}

// TargetRollup is one target's contribution to the fleet rollup,
// keeping per-target labels on the summed rates.
type TargetRollup struct {
	Target      string  `json:"target"`
	Verdicts    float64 `json:"verdicts"`
	VerifyFails float64 `json:"verify_fails"`
	Anomalies   float64 `json:"anomalies"`
	Firing      int     `json:"firing"`
}

// Rollup is the fleet-wide aggregate.
type Rollup struct {
	TargetsUp    int `json:"targets_up"`
	TargetsStale int `json:"targets_stale"`
	TargetsDown  int `json:"targets_down"`

	PlacesFresh  int `json:"places_fresh"`
	PlacesStale  int `json:"places_stale"`
	PlacesLapsed int `json:"places_lapsed"`
	PlacesNever  int `json:"places_never"`
	Conflicts    int `json:"conflicts"`

	AlertsFiring int     `json:"alerts_firing"`
	Verdicts     float64 `json:"verdicts"`
	VerifyFails  float64 `json:"verify_fails"`
	Anomalies    float64 `json:"anomalies"`

	// Profiled counts targets serving /profile.json; HotFuncs is the
	// fleet-wide top-function table — per-target top rows merged by
	// function name with shares recomputed against the fleet's summed
	// profile seconds, so one process's hotspot is weighted by how much
	// CPU that process actually burned.
	Profiled int           `json:"profiled,omitempty"`
	HotFuncs []ProfileFunc `json:"hot_funcs,omitempty"`

	PerTarget []TargetRollup `json:"per_target"`
}

// FleetAlert is one entry of the merged alert feed, deduplicated by
// (rule, place) across targets: a firing state wins over resolved, the
// newest firing instant is kept, and Targets names every reporter.
type FleetAlert struct {
	Rule      string   `json:"rule"`
	Place     string   `json:"place"`
	State     string   `json:"state"`
	Reason    string   `json:"reason"`
	FiredAtNS int64    `json:"fired_at_ns"`
	Targets   []string `json:"targets"`
}

// FleetView is the whole fleet model — what /fleet.json serves and
// attestctl fleet renders.
type FleetView struct {
	Fleet      string `json:"fleet"`
	NowNS      int64  `json:"now_ns"`
	IntervalNS int64  `json:"interval_ns"`

	Targets  []TargetStatus `json:"targets"`
	TrustMap []PlaceTrust   `json:"trust_map"`
	Findings []Finding      `json:"findings"`
	Alerts   []FleetAlert   `json:"alerts"`
	Rollup   Rollup         `json:"rollup"`
}

// Status strings fleetscope understands on coverage rows (mirrors of
// freshness.Status values; redeclared because the wire is the contract).
const (
	statusFresh  = "fresh"
	statusStale  = "stale"
	statusLapsed = "lapsed"
	statusNever  = "never-attested"
)

// statusRank orders statuses worst-first for sorting the trust map.
func statusRank(s string) int {
	switch s {
	case statusLapsed:
		return 0
	case statusNever:
		return 1
	case statusStale:
		return 2
	case statusFresh:
		return 3
	default:
		return 4
	}
}

// View assembles the merged fleet model from each target's latest
// scrape. It never blocks on the network: dead targets contribute their
// last-known data flagged by their health state.
func (a *Aggregator) View() FleetView {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := nowNS(a.cfg.Clock)
	v := FleetView{Fleet: a.cfg.Name, NowNS: now, IntervalNS: int64(a.cfg.Interval)}

	type placeAcc struct {
		reports []PlaceReport
	}
	places := make(map[string]*placeAcc)
	alerts := make(map[alertKey]*FleetAlert)
	hotFuncs := make(map[string]float64) // function name -> summed seconds
	var profSeconds float64              // fleet-wide profiled CPU seconds

	for _, name := range sortedNames(a.targets) {
		ts := a.targets[name]
		st := ts.state(a.cfg, now)
		row := TargetStatus{
			Name: name, URL: ts.t.URL, State: st,
			Scrapes: ts.scrapes, Errors: ts.errors, EndpointErrs: ts.endpointErrs,
			ConsecFails: ts.consecFails, LastScrapeNS: ts.lastAttempt,
			LastOKNS: ts.lastOK, LatencyNS: ts.latencyNS, LastErr: ts.lastErr,
			Series: -1,
		}
		switch st {
		case StateUp:
			v.Rollup.TargetsUp++
		case StateStale:
			v.Rollup.TargetsStale++
		case StateDown:
			v.Rollup.TargetsDown++
			v.Findings = append(v.Findings, Finding{
				Kind: FindingTargetDown, Target: name,
				Detail: fmt.Sprintf("target %s (%s) down after %d consecutive scrape failures: %s",
					name, ts.t.URL, ts.consecFails, ts.lastErr),
			})
		}

		s := ts.last
		if s == nil {
			v.Targets = append(v.Targets, row)
			continue
		}
		row.Series = s.Series
		tr := TargetRollup{Target: name}
		if s.Metrics != nil {
			// Verdicts and fails from the appraisal pool, anomalies from
			// the flight recorder; absent families sum to 0.
			tr.Verdicts = s.Metrics.Value("pera_pool_pass_total") + s.Metrics.Value("pera_pool_fail_total")
			tr.VerifyFails = s.Metrics.Value("pera_verify_fails_total")
			tr.Anomalies = s.Metrics.Value("pera_anomaly_total")
		}
		if s.Alerts != nil {
			row.Firing = s.Alerts.Firing
			tr.Firing = s.Alerts.Firing
			for i := range s.Alerts.Alerts {
				al := &s.Alerts.Alerts[i]
				mergeAlert(alerts, al, name)
			}
		}
		if s.Coverage != nil {
			row.Places = len(s.Coverage.Places)
			for i := range s.Coverage.Places {
				pc := &s.Coverage.Places[i]
				acc := places[pc.Place]
				if acc == nil {
					acc = &placeAcc{}
					places[pc.Place] = acc
				}
				acc.reports = append(acc.reports, PlaceReport{
					Target: name, TargetState: st, Status: pc.Status,
					AgeNS: pc.AgeNS, LastFreshNS: pc.LastFreshNS, Policy: pc.Policy,
				})
			}
		}
		if s.Profile != nil {
			v.Rollup.Profiled++
			row.Hotspot = s.Profile.Hotspot
			row.HotspotShare = s.Profile.HotspotShare
			row.LabeledShare = s.Profile.LabeledShare
			profSeconds += s.Profile.TotalSeconds
			for _, f := range s.Profile.Top {
				hotFuncs[f.Name] += f.Seconds
			}
			for _, reg := range s.Profile.Regressions {
				v.Findings = append(v.Findings, Finding{
					Kind: FindingProfileRegression, Target: name,
					Detail: fmt.Sprintf("target %s: %s %s: %s", name, reg.Kind, reg.What, reg.Reason),
				})
			}
		}
		v.Rollup.Verdicts += tr.Verdicts
		v.Rollup.VerifyFails += tr.VerifyFails
		v.Rollup.Anomalies += tr.Anomalies
		v.Rollup.PerTarget = append(v.Rollup.PerTarget, tr)
		v.Targets = append(v.Targets, row)
	}

	v.Rollup.HotFuncs = mergeHotFuncs(hotFuncs, profSeconds)

	// Merge the trust map: freshest live report wins; conflicts among
	// live reporters become findings.
	for _, place := range sortedNames(places) {
		pt := mergePlace(place, places[place].reports)
		switch pt.Status {
		case statusFresh:
			v.Rollup.PlacesFresh++
		case statusStale:
			v.Rollup.PlacesStale++
		case statusLapsed:
			v.Rollup.PlacesLapsed++
		case statusNever:
			v.Rollup.PlacesNever++
		}
		if pt.Conflict {
			v.Rollup.Conflicts++
			v.Findings = append(v.Findings, conflictFinding(pt))
		}
		v.TrustMap = append(v.TrustMap, pt)
	}
	sort.SliceStable(v.TrustMap, func(i, j int) bool {
		ri, rj := statusRank(v.TrustMap[i].Status), statusRank(v.TrustMap[j].Status)
		if ri != rj {
			return ri < rj
		}
		return v.TrustMap[i].Place < v.TrustMap[j].Place
	})

	// Merged alert feed, firing first, then newest first.
	for _, fa := range alerts {
		sort.Strings(fa.Targets)
		if fa.State == "firing" {
			v.Rollup.AlertsFiring++
		}
		v.Alerts = append(v.Alerts, *fa)
	}
	sort.Slice(v.Alerts, func(i, j int) bool {
		if (v.Alerts[i].State == "firing") != (v.Alerts[j].State == "firing") {
			return v.Alerts[i].State == "firing"
		}
		if v.Alerts[i].FiredAtNS != v.Alerts[j].FiredAtNS {
			return v.Alerts[i].FiredAtNS > v.Alerts[j].FiredAtNS
		}
		return v.Alerts[i].Rule+v.Alerts[i].Place < v.Alerts[j].Rule+v.Alerts[j].Place
	})
	return v
}

// fleetTopFuncs caps the merged fleet-wide top-function table.
const fleetTopFuncs = 5

// mergeHotFuncs ranks the summed per-function seconds and recomputes
// each share against the fleet's total profiled seconds.
func mergeHotFuncs(funcs map[string]float64, totalSeconds float64) []ProfileFunc {
	if len(funcs) == 0 {
		return nil
	}
	out := make([]ProfileFunc, 0, len(funcs))
	for name, secs := range funcs {
		f := ProfileFunc{Name: name, Seconds: secs}
		if totalSeconds > 0 {
			f.Share = secs / totalSeconds
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > fleetTopFuncs {
		out = out[:fleetTopFuncs]
	}
	return out
}

// alertKey is the fleet feed's dedup key.
type alertKey struct{ rule, place string }

// mergeAlert folds one target's alert into the deduplicated feed.
func mergeAlert(feed map[alertKey]*FleetAlert, al *Alert, target string) {
	k := alertKey{al.Rule, al.Place}
	fa := feed[k]
	if fa == nil {
		fa = &FleetAlert{Rule: al.Rule, Place: al.Place, State: al.State,
			Reason: al.Reason, FiredAtNS: al.FiredAtNS}
		feed[k] = fa
	}
	if !hasString(fa.Targets, target) {
		fa.Targets = append(fa.Targets, target)
	}
	// Firing beats resolved; among equals the newest firing instant and
	// its reason win.
	switch {
	case al.State == "firing" && fa.State != "firing",
		al.State == fa.State && al.FiredAtNS > fa.FiredAtNS:
		fa.State, fa.Reason, fa.FiredAtNS = al.State, al.Reason, al.FiredAtNS
	}
}

func hasString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// mergePlace folds every report about one place into its trust-map row.
// Reports from down targets participate only when no live reporter
// exists; conflict detection likewise considers live reporters only —
// a dead process's stale opinion is a health problem, not a trust
// disagreement.
func mergePlace(place string, reports []PlaceReport) PlaceTrust {
	pt := PlaceTrust{Place: place, Reports: reports}
	live := reports[:0:0]
	for _, r := range reports {
		if r.TargetState != StateDown {
			live = append(live, r)
		}
	}
	pool := live
	if len(pool) == 0 {
		pool = reports
		pt.AllReportersDown = true
	}
	best := pool[0]
	for _, r := range pool[1:] {
		if r.LastFreshNS > best.LastFreshNS {
			best = r
		}
	}
	pt.Status, pt.AgeNS, pt.Source = best.Status, best.AgeNS, best.Target

	var anyFresh, anyDecayed bool
	var freshBy, decayedBy []string
	for _, r := range live {
		switch r.Status {
		case statusFresh:
			anyFresh = true
			freshBy = append(freshBy, r.Target)
		case statusLapsed, statusNever:
			anyDecayed = true
			decayedBy = append(decayedBy, fmt.Sprintf("%s=%s", r.Target, r.Status))
		}
	}
	pt.Conflict = anyFresh && anyDecayed
	if pt.Conflict {
		pt.conflictDetail = fmt.Sprintf("place %s: %s report fresh while %s report decayed trust",
			place, strings.Join(freshBy, ","), strings.Join(decayedBy, ","))
	}
	return pt
}

// conflictFinding renders a status-conflict row as a finding.
func conflictFinding(pt PlaceTrust) Finding {
	return Finding{Kind: FindingConflict, Place: pt.Place, Detail: pt.conflictDetail}
}
