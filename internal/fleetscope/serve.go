package fleetscope

import (
	"encoding/json"
	"net/http"

	"pera/internal/telemetry"
)

// FleetPath is where the merged fleet view is served.
const FleetPath = "/fleet.json"

// Endpoint returns the /fleet.json endpoint for telemetry.Serve: the
// whole merged fleet model — target health, trust map, findings, alert
// feed, rollup — as one JSON document per GET.
func (a *Aggregator) Endpoint() telemetry.Endpoint {
	return telemetry.Endpoint{
		Path: FleetPath,
		Desc: "merged fleet view: trust map, findings, alerts, rollup",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				telemetry.WriteJSONError(w, http.StatusMethodNotAllowed, "GET only")
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(a.View())
		}),
	}
}
