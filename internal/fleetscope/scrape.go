package fleetscope

import (
	"context"
	"os"
	"sync"
	"time"

	"pera/internal/telemetry"
)

// Config tunes an Aggregator.
type Config struct {
	// Name labels the fleet in views and renders. Default "fleet".
	Name string
	// Interval is the per-target scrape cadence. Default 1s.
	Interval time.Duration
	// Timeout bounds each HTTP request. Default min(Interval, 2s).
	Timeout time.Duration
	// DownAfter is how many consecutive failed scrapes turn a target
	// down (the first failure marks it stale). Default 2, so a killed
	// process is down within two scrape intervals.
	DownAfter int
	// MaxBackoff caps the exponential backoff between attempts at a
	// failing target. Default 8×Interval.
	MaxBackoff time.Duration
	// StaleAfter marks a target stale when its last successful scrape is
	// older than this even without failed attempts (a hung loop).
	// Default 3×Interval.
	StaleAfter time.Duration
	// TargetsFile, when set, is re-read whenever its mtime changes; the
	// parsed targets are merged over the static list (file wins on name
	// collisions, removed lines drop the target).
	TargetsFile string
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "fleet"
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
		if c.Timeout > c.Interval {
			c.Timeout = c.Interval
		}
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Interval
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 3 * c.Interval
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// targetState is one target's scrape loop state plus its last-known
// data. Mutable fields are guarded by the aggregator mutex; the loop
// goroutine only holds it to publish results, so a slow target's HTTP
// wait never blocks view building.
type targetState struct {
	t    Target
	stop chan struct{}
	done chan struct{}

	scrapes      uint64
	errors       uint64
	endpointErrs uint64
	consecFails  int
	lastAttempt  int64 // unix ns of last attempt (success or failure)
	lastOK       int64 // unix ns of last success, 0 = never
	latencyNS    int64
	lastErr      string

	last *Scrape // last successful scrape, nil until the first
}

// state classifies the target's health at now (unix ns).
func (ts *targetState) state(cfg Config, now int64) string {
	switch {
	case ts.consecFails >= cfg.DownAfter || ts.lastOK == 0 && ts.consecFails > 0:
		return StateDown
	case ts.consecFails > 0:
		return StateStale
	case ts.lastOK == 0:
		return StateStale // no attempt has completed yet
	case now-ts.lastOK > int64(cfg.StaleAfter):
		return StateStale
	default:
		return StateUp
	}
}

// Aggregator owns the target set and the fleet model. Start launches
// one scrape loop per target plus a reload watcher for the targets
// file; View assembles the merged fleet model from the latest scrapes.
type Aggregator struct {
	cfg    Config
	client *Client

	mu       sync.Mutex
	targets  map[string]*targetState
	static   []Target
	fileMod  time.Time
	reloads  uint64
	running  bool
	quit     chan struct{}
	watchEnd chan struct{}

	reg *telemetry.Registry // pera_fleet_* home, nil until Instrument

	// viewMu guards the metrics-sampling view cache (see cachedView).
	viewMu    sync.Mutex
	viewAt    time.Time
	viewCache *FleetView
}

// New builds an aggregator over the static target list (may be empty
// when cfg.TargetsFile provides the fleet).
func New(cfg Config, targets []Target) *Aggregator {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:     cfg,
		client:  NewClient(cfg.Timeout),
		targets: make(map[string]*targetState),
		static:  append([]Target(nil), targets...),
		quit:    make(chan struct{}),
	}
	a.mu.Lock()
	a.applyTargetsLocked(a.resolveTargets())
	a.mu.Unlock()
	return a
}

// resolveTargets merges the static list with the targets file (when
// configured and readable). Never called with the lock held when it
// touches the filesystem — callers pass the result into
// applyTargetsLocked.
func (a *Aggregator) resolveTargets() []Target {
	if a.cfg.TargetsFile == "" {
		return a.static
	}
	fromFile, err := LoadTargetsFile(a.cfg.TargetsFile)
	if err != nil {
		// Unreadable/unparseable file: keep the static set; the watcher
		// retries on the next mtime change.
		return a.static
	}
	return mergeTargets(a.static, fromFile)
}

// applyTargetsLocked reconciles the live target set against want:
// new targets get a state row (and a loop when running), removed
// targets have their loops stopped and rows dropped.
func (a *Aggregator) applyTargetsLocked(want []Target) {
	seen := make(map[string]bool, len(want))
	for _, t := range want {
		seen[t.Name] = true
		if ts, ok := a.targets[t.Name]; ok {
			ts.t = t // URL may have changed; the loop re-reads it per attempt
			continue
		}
		ts := &targetState{t: t, stop: make(chan struct{}), done: make(chan struct{})}
		a.targets[t.Name] = ts
		a.registerTargetLocked(ts)
		if a.running {
			go a.scrapeLoop(ts)
		} else {
			close(ts.done)
		}
	}
	for name, ts := range a.targets {
		if !seen[name] {
			if a.running {
				close(ts.stop)
			}
			delete(a.targets, name)
		}
	}
}

// Targets returns the current target list, sorted by name.
func (a *Aggregator) Targets() []Target {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Target, 0, len(a.targets))
	for _, name := range sortedNames(a.targets) {
		out = append(out, a.targets[name].t)
	}
	return out
}

// Start launches the scrape loops. Idempotent.
func (a *Aggregator) Start() {
	a.mu.Lock()
	if a.running {
		a.mu.Unlock()
		return
	}
	a.running = true
	for _, ts := range a.targets {
		ts.done = make(chan struct{})
		go a.scrapeLoop(ts)
	}
	a.mu.Unlock()
	if a.cfg.TargetsFile != "" {
		a.watchEnd = make(chan struct{})
		go a.watchTargetsFile()
	}
}

// Close stops every loop and the file watcher.
func (a *Aggregator) Close() {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return
	}
	a.running = false
	close(a.quit)
	loops := make([]*targetState, 0, len(a.targets))
	for _, ts := range a.targets {
		close(ts.stop)
		loops = append(loops, ts)
	}
	a.mu.Unlock()
	for _, ts := range loops {
		<-ts.done
	}
	if a.watchEnd != nil {
		<-a.watchEnd
	}
}

// scrapeLoop drives one target: scrape, publish, sleep. The sleep is
// the configured interval while healthy and an exponentially backed-off
// multiple of it while failing (capped at MaxBackoff), so a dead target
// costs the fleet a bounded trickle of connection attempts instead of a
// hot error loop.
func (a *Aggregator) scrapeLoop(ts *targetState) {
	defer close(ts.done)
	for {
		a.scrapeOnce(ts)

		a.mu.Lock()
		delay := a.cfg.Interval
		if n := ts.consecFails; n > 0 {
			for i := 1; i < n && delay < a.cfg.MaxBackoff; i++ {
				delay *= 2
			}
			if delay > a.cfg.MaxBackoff {
				delay = a.cfg.MaxBackoff
			}
		}
		a.mu.Unlock()

		select {
		case <-ts.stop:
			return
		case <-time.After(delay):
		}
	}
}

// scrapeOnce runs a single attempt against one target and publishes the
// outcome under the lock.
func (a *Aggregator) scrapeOnce(ts *targetState) {
	a.mu.Lock()
	target := ts.t
	a.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Timeout)
	s, err := a.client.ScrapeTarget(ctx, target, a.cfg.Clock)
	cancel()

	a.mu.Lock()
	defer a.mu.Unlock()
	ts.lastAttempt = nowNS(a.cfg.Clock)
	ts.scrapes++
	if err != nil {
		ts.errors++
		ts.consecFails++
		ts.lastErr = err.Error()
		return
	}
	ts.consecFails = 0
	ts.lastErr = ""
	ts.lastOK = s.AtNS
	ts.latencyNS = s.LatencyNS
	ts.endpointErrs += uint64(s.EndpointErrs)
	ts.last = s
}

// ScrapeAll runs one synchronous scrape round over every target (in
// parallel) and returns when all attempts complete — the one-shot mode
// behind `attestctl fleet -endpoints ...` and the harness tests.
func (a *Aggregator) ScrapeAll() {
	a.mu.Lock()
	loops := make([]*targetState, 0, len(a.targets))
	for _, ts := range a.targets {
		loops = append(loops, ts)
	}
	a.mu.Unlock()
	var wg sync.WaitGroup
	for _, ts := range loops {
		wg.Add(1)
		go func(ts *targetState) {
			defer wg.Done()
			a.scrapeOnce(ts)
		}(ts)
	}
	wg.Wait()
}

// watchTargetsFile polls the targets file's mtime at the scrape
// interval and reconciles the target set when it changes.
func (a *Aggregator) watchTargetsFile() {
	defer close(a.watchEnd)
	for {
		select {
		case <-a.quit:
			return
		case <-time.After(a.cfg.Interval):
		}
		info, err := os.Stat(a.cfg.TargetsFile)
		if err != nil {
			continue
		}
		a.mu.Lock()
		changed := !info.ModTime().Equal(a.fileMod)
		a.fileMod = info.ModTime()
		a.mu.Unlock()
		if !changed {
			continue
		}
		want := a.resolveTargets()
		a.mu.Lock()
		a.applyTargetsLocked(want)
		a.reloads++
		a.mu.Unlock()
	}
}

// Reloads reports how many times the targets file was re-applied.
func (a *Aggregator) Reloads() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reloads
}
