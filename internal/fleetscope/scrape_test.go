package fleetscope

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pera/internal/telemetry"
)

// metricsServer is a minimal live target: a real HTTP server with a
// real /metrics.json.
func metricsServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(telemetry.Handler(telemetry.NewRegistry(), nil))
	t.Cleanup(srv.Close)
	return srv
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func targetByName(v FleetView, name string) TargetStatus {
	for _, ts := range v.Targets {
		if ts.Name == name {
			return ts
		}
	}
	return TargetStatus{}
}

func TestAggregatorHealthTransitions(t *testing.T) {
	live := metricsServer(t)
	dying := httptest.NewServer(telemetry.Handler(telemetry.NewRegistry(), nil))

	interval := 30 * time.Millisecond
	a := New(Config{Interval: interval, Timeout: 200 * time.Millisecond},
		[]Target{{Name: "live", URL: live.URL}, {Name: "dying", URL: dying.URL}})
	a.Start()
	defer a.Close()

	waitFor(t, 3*time.Second, "both targets up", func() bool {
		v := a.View()
		return targetByName(v, "live").State == StateUp && targetByName(v, "dying").State == StateUp
	})

	// Kill one target: it must reach down within DownAfter=2 consecutive
	// failures — i.e. two scrape intervals — while the other target's
	// scrape counter keeps advancing (the fleet view never stalls on a
	// dead member).
	dying.Close()
	killedAt := time.Now()
	waitFor(t, 3*time.Second, "dying target down", func() bool {
		return targetByName(a.View(), "dying").State == StateDown
	})
	// Generous wall-clock bound: 2 intervals of failing attempts plus
	// client-side retry pauses and scheduling; the point is "promptly",
	// not "after the 8× backoff has stretched attempts out".
	if took := time.Since(killedAt); took > 20*interval {
		t.Fatalf("down transition took %v, want within ~2 scrape intervals (%v)", took, 2*interval)
	}

	before := targetByName(a.View(), "live").Scrapes
	waitFor(t, 3*time.Second, "live target still scraping", func() bool {
		v := a.View()
		return targetByName(v, "live").Scrapes > before && targetByName(v, "live").State == StateUp
	})

	v := a.View()
	if v.Rollup.TargetsUp != 1 || v.Rollup.TargetsDown != 1 {
		t.Fatalf("rollup: %d up / %d down, want 1/1", v.Rollup.TargetsUp, v.Rollup.TargetsDown)
	}
	var found bool
	for _, f := range v.Findings {
		if f.Kind == FindingTargetDown && f.Target == "dying" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no target-down finding for dying target: %+v", v.Findings)
	}
	if ts := targetByName(v, "dying"); ts.LastErr == "" {
		t.Fatal("down target should carry its last error")
	}
}

// A target that never answered is down after its first failed attempt —
// there is no last-known data to serve stale.
func TestAggregatorNeverUpGoesDown(t *testing.T) {
	a := New(Config{Interval: 20 * time.Millisecond, Timeout: 100 * time.Millisecond},
		[]Target{{Name: "ghost", URL: "http://127.0.0.1:1"}})
	a.Start()
	defer a.Close()
	waitFor(t, 3*time.Second, "ghost down", func() bool {
		return targetByName(a.View(), "ghost").State == StateDown
	})
}

// Backoff: a failing target's attempt cadence stretches toward
// MaxBackoff instead of hot-looping.
func TestAggregatorBackoff(t *testing.T) {
	interval := 20 * time.Millisecond
	a := New(Config{Interval: interval, Timeout: 50 * time.Millisecond, MaxBackoff: 8 * interval},
		[]Target{{Name: "ghost", URL: "http://127.0.0.1:1"}})
	a.Start()
	defer a.Close()

	// After the failure streak builds, attempts are spaced at MaxBackoff.
	waitFor(t, 3*time.Second, "failure streak", func() bool {
		return targetByName(a.View(), "ghost").ConsecFails >= 5
	})
	s0 := targetByName(a.View(), "ghost").Scrapes
	time.Sleep(10 * interval)
	s1 := targetByName(a.View(), "ghost").Scrapes
	// 10 intervals at MaxBackoff=8×interval spacing allows ~1-2 attempts;
	// without backoff there would be ~10.
	if attempts := s1 - s0; attempts > 4 {
		t.Fatalf("%d attempts in 10 intervals against a dead target — backoff not applied", attempts)
	}
}

// ScrapeAll is the synchronous one-shot round behind `attestctl fleet
// -endpoints`: no Start, one parallel sweep, view ready after return.
func TestScrapeAllOneShot(t *testing.T) {
	live := metricsServer(t)
	a := New(Config{Timeout: 200 * time.Millisecond},
		[]Target{{Name: "live", URL: live.URL}, {Name: "ghost", URL: "http://127.0.0.1:1"}})
	a.ScrapeAll()
	v := a.View()
	if ts := targetByName(v, "live"); ts.State != StateUp || ts.Scrapes != 1 {
		t.Fatalf("live after one-shot: %+v", ts)
	}
	if ts := targetByName(v, "ghost"); ts.State != StateDown {
		t.Fatalf("ghost after one-shot: %+v, want down (never up + failed)", ts)
	}
}

// The targets file is re-read on mtime change: new targets join the
// scrape set, removed ones are dropped, file entries override static.
func TestAggregatorTargetsFileReload(t *testing.T) {
	live := metricsServer(t)
	second := metricsServer(t)

	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.targets")
	if err := os.WriteFile(path, []byte("one="+live.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := New(Config{Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, TargetsFile: path}, nil)
	a.Start()
	defer a.Close()
	waitFor(t, 3*time.Second, "initial target up", func() bool {
		return targetByName(a.View(), "one").State == StateUp
	})

	// Rewrite the file: add a target, drop the old one. The watcher polls
	// mtime; ensure it differs even on coarse-grained filesystems.
	time.Sleep(10 * time.Millisecond)
	if err := os.WriteFile(path, []byte("two="+second.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	waitFor(t, 5*time.Second, "reloaded target up", func() bool {
		v := a.View()
		return targetByName(v, "two").State == StateUp && targetByName(v, "one").Name == ""
	})
	if a.Reloads() == 0 {
		t.Fatal("reload counter not incremented")
	}
}
