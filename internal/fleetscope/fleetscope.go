// Package fleetscope is the fleet-wide attestation observability
// control plane: it discovers attestation processes (attestd, appraised,
// perasim, any telemetry-serving binary), scrapes each one's existing
// HTTP surfaces (/metrics.json, /coverage.json, /alerts.json,
// /observatory.json, /history.json) on a cadence, and merges the
// answers into one fleet model — a global trust map over places, fleet
// rollup metrics, and a deduplicated alert/anomaly feed.
//
// Every observability layer built before this one (telemetry,
// observatory, tracing, flight recorder, freshness watchdog) is
// per-process: an operator running several attestd/appraised/perasim
// instances has no single answer to "is the network trustworthy right
// now?". ScaRR (PAPERS.md) argues that decoupled, scaled-out
// verification only works when verification state is observable across
// the verifier fleet; fleetscope is that observation layer, and the
// measurement substrate the federated appraisal cluster (ROADMAP) will
// be benched on.
//
// Design constraints:
//
//   - A dead target degrades the fleet view, never blocks it: each
//     target is scraped by its own loop with a per-target timeout,
//     failures back off exponentially, and health is an explicit
//     up/stale/down state on the target row rather than an error that
//     propagates.
//   - Cross-process disagreement is first-class: when one appraiser's
//     coverage says a place is fresh and another's says lapsed, the
//     merged trust map keeps the freshest committed evidence AND emits a
//     status-conflict finding naming both reporters, because divergent
//     verifier state is itself an attestation signal (a partitioned or
//     lagging appraiser, or a device answering probes selectively).
//   - The fleet surface speaks the same protocols as the per-process
//     ones: /fleet.json for operators and tests, and a Prometheus
//     registry (pera_fleet_*) served from the same telemetry mux as a
//     federation endpoint for an off-the-shelf scraper.
package fleetscope

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Target health states. A target is up while scrapes succeed, stale
// after the first failure (or when its loop stops reporting), and down
// after DownAfter consecutive failures — so a killed process is marked
// down within two scrape intervals.
const (
	StateUp    = "up"
	StateStale = "stale"
	StateDown  = "down"
)

// Target is one scrape target: a name (the label on every fleet metric
// and trust-map report) and the base URL of its telemetry server.
type Target struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ParseTargets parses a comma-separated target list. Each entry is
// either "name=url" or a bare URL (the name then defaults to the URL's
// host:port). Entries are trimmed; empty entries are skipped; a
// duplicate name is an error because it would silently shadow a target.
func ParseTargets(s string) ([]Target, error) {
	var out []Target
	seen := make(map[string]bool)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		t, err := parseTarget(entry)
		if err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("duplicate target name %q", t.Name)
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	return out, nil
}

// parseTarget parses one "name=url" or bare-URL entry.
func parseTarget(entry string) (Target, error) {
	name, url := "", entry
	if i := strings.Index(entry, "="); i >= 0 {
		name, url = strings.TrimSpace(entry[:i]), strings.TrimSpace(entry[i+1:])
	}
	url = strings.TrimSuffix(url, "/")
	if url == "" {
		return Target{}, fmt.Errorf("target %q: empty URL", entry)
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if name == "" {
		name = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	}
	return Target{Name: name, URL: url}, nil
}

// LoadTargetsFile reads a targets file: one target per line in the same
// "name=url" / bare-URL syntax as ParseTargets, with blank lines and
// #-comments ignored. The file is re-read by the aggregator whenever its
// modification time changes, so targets can be added or drained without
// restarting fleetd.
func LoadTargetsFile(path string) ([]Target, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Target
	seen := make(map[string]bool)
	for i, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTarget(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("%s:%d: duplicate target name %q", path, i+1, t.Name)
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	return out, nil
}

// mergeTargets combines the static list with the file list; on a name
// collision the file entry wins (the file is the operational override).
func mergeTargets(static, file []Target) []Target {
	byName := make(map[string]int, len(static))
	out := append([]Target(nil), static...)
	for i, t := range out {
		byName[t.Name] = i
	}
	for _, t := range file {
		if i, ok := byName[t.Name]; ok {
			out[i] = t
			continue
		}
		byName[t.Name] = len(out)
		out = append(out, t)
	}
	return out
}

// sortedNames returns map keys in sorted order (deterministic views).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nowNS is the aggregator's clock in unix nanoseconds.
func nowNS(clock func() time.Time) int64 { return clock().UnixNano() }
