package fleetscope

import (
	"time"

	"pera/internal/telemetry"
)

// Instrument registers the pera_fleet_* family on reg. Served from
// fleetd's telemetry mux this doubles as a Prometheus federation
// endpoint: one scrape of fleetd yields the whole fleet's rollup with
// per-target labels, without a Prometheus having to reach every process.
//
// Fleet-level rollups (targets by state, places by status, conflicts,
// alerts firing) are lazy funcs evaluated at snapshot time from a
// briefly-cached view; per-target series are updated by the scrape
// loops as results land. Call before Start.
func (a *Aggregator) Instrument(reg *telemetry.Registry) {
	a.mu.Lock()
	a.reg = reg
	for _, ts := range a.targets {
		a.registerTargetLocked(ts)
	}
	a.mu.Unlock()

	states := []struct {
		state string
		pick  func(Rollup) int
	}{
		{StateUp, func(r Rollup) int { return r.TargetsUp }},
		{StateStale, func(r Rollup) int { return r.TargetsStale }},
		{StateDown, func(r Rollup) int { return r.TargetsDown }},
	}
	for _, s := range states {
		pick := s.pick
		reg.RegisterFunc("pera_fleet_targets", telemetry.KindGauge,
			func() float64 { return float64(pick(a.cachedView().Rollup)) },
			telemetry.L("state", s.state))
	}
	statuses := []struct {
		status string
		pick   func(Rollup) int
	}{
		{statusFresh, func(r Rollup) int { return r.PlacesFresh }},
		{statusStale, func(r Rollup) int { return r.PlacesStale }},
		{statusLapsed, func(r Rollup) int { return r.PlacesLapsed }},
		{statusNever, func(r Rollup) int { return r.PlacesNever }},
	}
	for _, s := range statuses {
		pick := s.pick
		reg.RegisterFunc("pera_fleet_places", telemetry.KindGauge,
			func() float64 { return float64(pick(a.cachedView().Rollup)) },
			telemetry.L("status", s.status))
	}
	reg.RegisterFunc("pera_fleet_conflicts", telemetry.KindGauge,
		func() float64 { return float64(a.cachedView().Rollup.Conflicts) })
	reg.RegisterFunc("pera_fleet_alerts_firing", telemetry.KindGauge,
		func() float64 { return float64(a.cachedView().Rollup.AlertsFiring) })
	reg.RegisterFunc("pera_fleet_verdicts", telemetry.KindGauge,
		func() float64 { return a.cachedView().Rollup.Verdicts })
	reg.RegisterFunc("pera_fleet_verify_fails", telemetry.KindGauge,
		func() float64 { return a.cachedView().Rollup.VerifyFails })
	reg.RegisterFunc("pera_fleet_anomalies", telemetry.KindGauge,
		func() float64 { return a.cachedView().Rollup.Anomalies })
	reg.RegisterFunc("pera_fleet_reloads_total", telemetry.KindCounter,
		func() float64 { return float64(a.Reloads()) })
}

// cachedView returns a recent fleet view for metric sampling, rebuilding
// it at most every viewCacheTTL. One registry snapshot evaluates many
// lazy funcs microseconds apart; they should all read the same view
// instead of re-merging the fleet per sample. The TTL runs on wall time
// deliberately — it is a sampling optimization, not model semantics, so
// tests driving a fake cfg.Clock still see every update.
const viewCacheTTL = 100 * time.Millisecond

func (a *Aggregator) cachedView() FleetView {
	a.viewMu.Lock()
	defer a.viewMu.Unlock()
	if a.viewCache == nil || time.Since(a.viewAt) > viewCacheTTL {
		v := a.View()
		a.viewCache = &v
		a.viewAt = time.Now()
	}
	return *a.viewCache
}

// registerTargetLocked registers one target's per-target series.
// Called with a.mu held when the target first appears (and from
// Instrument for the initial set). The lazy funcs capture this target
// generation's state row; a re-added target re-registers and replaces
// them. A removed target's series linger on the registry with their
// final values — the same behavior Prometheus has for vanished targets.
func (a *Aggregator) registerTargetLocked(ts *targetState) {
	if a.reg == nil {
		return
	}
	l := telemetry.L("target", ts.t.Name)
	a.reg.RegisterFunc("pera_fleet_target_up", telemetry.KindGauge,
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			switch ts.state(a.cfg, nowNS(a.cfg.Clock)) {
			case StateUp:
				return 1
			case StateStale:
				return 0.5
			default:
				return 0
			}
		}, l)
	a.reg.RegisterFunc("pera_fleet_scrapes_total", telemetry.KindCounter,
		func() float64 { a.mu.Lock(); defer a.mu.Unlock(); return float64(ts.scrapes) }, l)
	a.reg.RegisterFunc("pera_fleet_scrape_errors_total", telemetry.KindCounter,
		func() float64 { a.mu.Lock(); defer a.mu.Unlock(); return float64(ts.errors) }, l)
	a.reg.RegisterFunc("pera_fleet_scrape_latency_ns", telemetry.KindGauge,
		func() float64 { a.mu.Lock(); defer a.mu.Unlock(); return float64(ts.latencyNS) }, l)
	a.reg.RegisterFunc("pera_fleet_target_firing", telemetry.KindGauge,
		func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			if s := ts.last; s != nil && s.Alerts != nil {
				return float64(s.Alerts.Firing)
			}
			return 0
		}, l)
	family := func(names ...string) func() float64 {
		return func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			var v float64
			if s := ts.last; s != nil && s.Metrics != nil {
				for _, n := range names {
					v += s.Metrics.Value(n)
				}
			}
			return v
		}
	}
	a.reg.RegisterFunc("pera_fleet_target_verdicts", telemetry.KindGauge,
		family("pera_pool_pass_total", "pera_pool_fail_total"), l)
	a.reg.RegisterFunc("pera_fleet_target_verify_fails", telemetry.KindGauge,
		family("pera_verify_fails_total"), l)
	a.reg.RegisterFunc("pera_fleet_target_anomalies", telemetry.KindGauge,
		family("pera_anomaly_total"), l)
}
