package fleetscope

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// RenderStatus writes the fleet overview — rollup line, findings, and
// the merged alert feed — what attestctl fleet status prints.
func RenderStatus(w io.Writer, v FleetView) {
	r := v.Rollup
	fmt.Fprintf(w, "fleet %s — %d targets (%d up / %d stale / %d down), interval %v\n",
		v.Fleet, len(v.Targets), r.TargetsUp, r.TargetsStale, r.TargetsDown,
		time.Duration(v.IntervalNS).Round(time.Millisecond))
	fmt.Fprintf(w, "trust map: %d places — %d fresh / %d stale / %d lapsed / %d never-attested, %d conflicts\n",
		len(v.TrustMap), r.PlacesFresh, r.PlacesStale, r.PlacesLapsed, r.PlacesNever, r.Conflicts)
	fmt.Fprintf(w, "rollup: %d alerts firing, %.0f verdicts, %.0f verify fails, %.0f anomalies\n",
		r.AlertsFiring, r.Verdicts, r.VerifyFails, r.Anomalies)
	if r.Profiled > 0 {
		funcs := make([]string, 0, len(r.HotFuncs))
		for _, f := range r.HotFuncs {
			funcs = append(funcs, fmt.Sprintf("%s %.0f%%", f.Name, f.Share*100))
		}
		fmt.Fprintf(w, "profiles: %d targets profiled — fleet hot path: %s\n",
			r.Profiled, strings.Join(funcs, ", "))
	}

	if len(v.Findings) > 0 {
		fmt.Fprintf(w, "\nfindings (%d):\n", len(v.Findings))
		for _, f := range v.Findings {
			fmt.Fprintf(w, "  [%s] %s\n", f.Kind, f.Detail)
		}
	}
	if len(v.Alerts) > 0 {
		fmt.Fprintf(w, "\nalerts (%d, deduplicated by rule+place):\n", len(v.Alerts))
		fmt.Fprintf(w, "  %-20s %-10s %-9s %-16s %s\n", "RULE", "PLACE", "STATE", "TARGETS", "REASON")
		for _, a := range v.Alerts {
			fmt.Fprintf(w, "  %-20s %-10s %-9s %-16s %s\n",
				a.Rule, a.Place, a.State, strings.Join(a.Targets, ","), a.Reason)
		}
	}
}

// RenderTrust writes the merged trust map, worst places first — what
// attestctl fleet top prints.
func RenderTrust(w io.Writer, v FleetView) {
	fmt.Fprintf(w, "fleet %s trust map — %d places, %d conflicts\n\n",
		v.Fleet, len(v.TrustMap), v.Rollup.Conflicts)
	if len(v.TrustMap) == 0 {
		fmt.Fprintln(w, "no coverage reported yet")
		return
	}
	fmt.Fprintf(w, "%-10s %-14s %10s %-12s %-8s %s\n",
		"PLACE", "STATUS", "AGE", "SOURCE", "FLAGS", "REPORTS")
	for _, p := range v.TrustMap {
		age := "-"
		if p.Status != statusNever {
			age = fmtAge(time.Duration(p.AgeNS))
		}
		var flags []string
		if p.Conflict {
			flags = append(flags, "CONFLICT")
		}
		if p.AllReportersDown {
			flags = append(flags, "ALL-DOWN")
		}
		reports := make([]string, 0, len(p.Reports))
		for _, rep := range p.Reports {
			reports = append(reports, fmt.Sprintf("%s=%s", rep.Target, rep.Status))
		}
		fmt.Fprintf(w, "%-10s %-14s %10s %-12s %-8s %s\n",
			p.Place, p.Status, age, p.Source,
			strings.Join(flags, ","), strings.Join(reports, " "))
	}
}

// RenderTargets writes per-target scrape health — what attestctl fleet
// targets prints.
func RenderTargets(w io.Writer, v FleetView) {
	fmt.Fprintf(w, "fleet %s targets — %d up / %d stale / %d down\n\n",
		v.Fleet, v.Rollup.TargetsUp, v.Rollup.TargetsStale, v.Rollup.TargetsDown)
	if len(v.Targets) == 0 {
		fmt.Fprintln(w, "no targets configured")
		return
	}
	fmt.Fprintf(w, "%-12s %-6s %8s %7s %9s %7s %7s %7s  %s\n",
		"TARGET", "STATE", "SCRAPES", "ERRORS", "LAST-OK", "LATENCY", "PLACES", "FIRING", "URL")
	for _, t := range v.Targets {
		lastOK, latency := "never", "-"
		if t.LastOKNS > 0 {
			lastOK = fmtAge(time.Duration(v.NowNS-t.LastOKNS)) + " ago"
			latency = time.Duration(t.LatencyNS).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-12s %-6s %8d %7d %9s %7s %7d %7d  %s\n",
			t.Name, t.State, t.Scrapes, t.Errors, lastOK, latency, t.Places, t.Firing, t.URL)
		if t.Hotspot != "" {
			fmt.Fprintf(w, "             └ hotspot %s %.0f%% (%.0f%% of CPU stage-labeled)\n",
				t.Hotspot, t.HotspotShare*100, t.LabeledShare*100)
		}
		if t.LastErr != "" {
			fmt.Fprintf(w, "             └ %s\n", t.LastErr)
		}
	}
}

// fmtAge renders a duration at scrape time scale.
func fmtAge(d time.Duration) string {
	if d >= time.Second {
		return d.Round(time.Second).String()
	}
	return d.Round(time.Millisecond).String()
}
