package workload

import (
	"strings"
	"testing"

	"pera/internal/p4ir"
	"pera/internal/pisa"
)

func TestUniformCoversAllFlows(t *testing.T) {
	g := New(Config{Flows: 8, Pattern: Uniform})
	for i := 0; i < 80; i++ {
		g.NextFlow()
	}
	for i, c := range g.Emitted() {
		if c != 10 {
			t.Fatalf("flow %d got %d packets, want 10", i, c)
		}
	}
	if g.Total() != 80 {
		t.Fatalf("total %d", g.Total())
	}
	// Uniform top share = 1/flows.
	if s := g.TopFlowShare(); s != 0.125 {
		t.Fatalf("top share %v", s)
	}
}

func TestSkewedConcentratesTraffic(t *testing.T) {
	g := New(Config{Flows: 16, Pattern: Skewed, Seed: 7})
	for i := 0; i < 4000; i++ {
		g.NextFlow()
	}
	share := g.TopFlowShare()
	if share < 0.4 || share > 0.6 {
		t.Fatalf("top flow share %v, want ~0.5 (power-law head)", share)
	}
	counts := g.Emitted()
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("popularity not decreasing: %v", counts[:4])
	}
}

func TestBurstyRunsConsecutive(t *testing.T) {
	g := New(Config{Flows: 4, Pattern: Bursty, Burst: 5, Seed: 3})
	var seq []Flow
	for i := 0; i < 40; i++ {
		seq = append(seq, g.NextFlow())
	}
	// Runs of 5 identical flows.
	for start := 0; start+5 <= len(seq); start += 5 {
		for i := 1; i < 5; i++ {
			if seq[start+i] != seq[start] {
				t.Fatalf("burst broken at %d: %v vs %v", start+i, seq[start+i], seq[start])
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{Flows: 8, Pattern: Skewed, Seed: 42})
	b := New(Config{Flows: 8, Pattern: Skewed, Seed: 42})
	for i := 0; i < 200; i++ {
		if a.NextFlow() != b.NextFlow() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(Config{Flows: 8, Pattern: Skewed, Seed: 43})
	same := true
	for i := 0; i < 200; i++ {
		if a.NextFlow() != c.NextFlow() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestNextFrameParses(t *testing.T) {
	prog := p4ir.NewForwarding("w")
	inst, err := pisa.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := New(Config{Flows: 4})
	seenPorts := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		frame, err := g.NextFrame(prog, []byte("pay"))
		if err != nil {
			t.Fatal(err)
		}
		pkt := pisa.NewPacket(frame, 1)
		if err := inst.Parse(pkt); err != nil {
			t.Fatal(err)
		}
		if pkt.Get("ip.dst") != 200 || pkt.Get("tp.dport") != 443 {
			t.Fatalf("frame fields: %s", pkt)
		}
		seenPorts[pkt.Get("tp.sport")] = true
	}
	if len(seenPorts) != 4 {
		t.Fatalf("distinct flows: %d", len(seenPorts))
	}
}

func TestDefaults(t *testing.T) {
	g := New(Config{})
	if len(g.flows) != 16 || g.burst != 8 {
		t.Fatalf("defaults: %d flows burst %d", len(g.flows), g.burst)
	}
	if g.TopFlowShare() != 0 {
		t.Fatal("share before traffic")
	}
	if !strings.Contains(Uniform.String()+Skewed.String()+Bursty.String()+Pattern(9).String(),
		"uniform") {
		t.Fatal("pattern names")
	}
}
