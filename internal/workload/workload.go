// Package workload generates deterministic synthetic traffic for the
// benchmark harness: flow populations with uniform, skewed (power-law)
// or bursty arrival patterns, rendered as ready-to-inject frames. The
// paper's evaluation sketches depend on traffic mix (per-flow sampling,
// C2 fingerprinting, DDoS gating); these generators make those mixes
// reproducible — same seed, same packet sequence.
package workload

import (
	"fmt"

	"pera/internal/p4ir"
	"pera/internal/pisa"
)

// Flow identifies one five-tuple-ish flow.
type Flow struct {
	Src, Dst     uint64
	SPort, DPort uint64
}

// Pattern selects the flow arrival distribution.
type Pattern uint8

const (
	// Uniform cycles through flows round-robin.
	Uniform Pattern = iota
	// Skewed draws flows with power-law popularity: a few heavy
	// hitters, a long tail.
	Skewed
	// Bursty emits runs of consecutive packets from one flow before
	// switching.
	Bursty
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Skewed:
		return "skewed"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Generator produces a deterministic packet sequence over a flow
// population. It is not safe for concurrent use; create one per worker.
type Generator struct {
	flows   []Flow
	pattern Pattern
	burst   int

	// xorshift state: deterministic, seedable, no external deps.
	rng uint64

	n       uint64
	current int
	inBurst int

	counts []uint64
}

// Config configures a Generator.
type Config struct {
	// Flows is the population size (default 16).
	Flows int
	// Pattern is the arrival distribution.
	Pattern Pattern
	// Burst is the run length for Bursty (default 8).
	Burst int
	// Seed makes the sequence reproducible (default 1).
	Seed uint64
	// SrcBase/DstBase offset the synthesized addresses.
	SrcBase, DstBase uint64
	// DPort fixes the destination port (default 443).
	DPort uint64
}

// New creates a generator.
func New(cfg Config) *Generator {
	if cfg.Flows <= 0 {
		cfg.Flows = 16
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SrcBase == 0 {
		cfg.SrcBase = 100
	}
	if cfg.DstBase == 0 {
		cfg.DstBase = 200
	}
	if cfg.DPort == 0 {
		cfg.DPort = 443
	}
	g := &Generator{
		flows:   make([]Flow, cfg.Flows),
		pattern: cfg.Pattern,
		burst:   cfg.Burst,
		rng:     cfg.Seed,
		counts:  make([]uint64, cfg.Flows),
	}
	for i := range g.flows {
		g.flows[i] = Flow{
			Src:   cfg.SrcBase,
			Dst:   cfg.DstBase,
			SPort: 40000 + uint64(i),
			DPort: cfg.DPort,
		}
	}
	return g
}

// next64 is xorshift64*: fast, deterministic, good enough for workload
// shaping (not cryptographic).
func (g *Generator) next64() uint64 {
	x := g.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.rng = x
	return x * 0x2545F4914F6CDD1D
}

// NextFlow returns the flow of the next packet.
func (g *Generator) NextFlow() Flow {
	defer func() { g.n++ }()
	switch g.pattern {
	case Skewed:
		// Power-law via repeated halving: flow 0 gets ~1/2 the traffic,
		// flow 1 ~1/4, etc., the tail sharing the rest.
		idx := 0
		for idx < len(g.flows)-1 && g.next64()%2 == 0 {
			idx++
		}
		g.counts[idx]++
		return g.flows[idx]
	case Bursty:
		if g.inBurst >= g.burst {
			g.inBurst = 0
			g.current = int(g.next64() % uint64(len(g.flows)))
		}
		g.inBurst++
		g.counts[g.current]++
		return g.flows[g.current]
	default: // Uniform
		idx := int(g.n % uint64(len(g.flows)))
		g.counts[idx]++
		return g.flows[idx]
	}
}

// NextFrame synthesizes the next packet as an eth/ip/tp frame for prog's
// header layout.
func (g *Generator) NextFrame(prog *p4ir.Program, payload []byte) ([]byte, error) {
	f := g.NextFlow()
	return pisa.IPFrame(prog, f.Src, f.Dst, f.SPort, f.DPort, payload)
}

// Emitted reports how many packets each flow received.
func (g *Generator) Emitted() []uint64 {
	return append([]uint64(nil), g.counts...)
}

// Total reports the number of packets generated.
func (g *Generator) Total() uint64 { return g.n }

// TopFlowShare returns the traffic fraction of the most popular flow —
// the skew measure benchmarks report.
func (g *Generator) TopFlowShare() float64 {
	if g.n == 0 {
		return 0
	}
	var max uint64
	for _, c := range g.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(g.n)
}
