package copland

import (
	"strings"
	"testing"
	"testing/quick"
)

// The paper's expressions in ASCII syntax. Expression numbers refer to
// §4.2 and §5 of the paper.
const (
	// (1): parallel composition — vulnerable to the repair attack.
	expr1 = `*bank: @ks [av us bmon] +~- @us [bmon us exts]`
	// (2): sequenced and signed — the hardened version.
	expr2 = `*bank: @ks [av us bmon -> !] -<- @us [bmon us exts -> !]`
	// (3): out-of-band PERA variant (RP1 phrase).
	expr3 = `*RP1, n: @Switch [attest(Hardware -~- Program) -> # -> !] +>+ @Appraiser [appraise -> certify(n) -> ! -> store(n)]`
	// (4): in-band PERA variant.
	expr4 = `*RP1: @Switch [attest(Hardware -~- Program) -> # -> !] -> @RP2 [@Appraiser [appraise -> certify -> !]]`
)

func TestParseRequestBankParallel(t *testing.T) {
	req, err := ParseRequest(expr1)
	if err != nil {
		t.Fatal(err)
	}
	if req.RelyingParty != "bank" || len(req.Params) != 0 {
		t.Fatalf("request header: %+v", req)
	}
	par, ok := req.Body.(*BPar)
	if !ok {
		t.Fatalf("body is %T, want *BPar", req.Body)
	}
	if !bool(par.LFlag) || bool(par.RFlag) {
		t.Fatalf("flags: %v~%v, want +~-", par.LFlag, par.RFlag)
	}
	at, ok := par.L.(*At)
	if !ok || at.Place != "ks" {
		t.Fatalf("left arm: %v", par.L)
	}
	asp, ok := at.Body.(*ASP)
	if !ok || asp.Name != "av" || asp.TargetPlace != "us" || asp.Target != "bmon" {
		t.Fatalf("measurement: %v", at.Body)
	}
}

func TestParseRequestBankSequenced(t *testing.T) {
	req, err := ParseRequest(expr2)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := req.Body.(*BSeq)
	if !ok {
		t.Fatalf("body is %T, want *BSeq", req.Body)
	}
	at := seq.L.(*At)
	ls, ok := at.Body.(*LSeq)
	if !ok {
		t.Fatalf("arm body is %T, want *LSeq", at.Body)
	}
	if sig, ok := ls.R.(*ASP); !ok || sig.Name != SigName {
		t.Fatalf("expected trailing !: %v", ls.R)
	}
}

func TestParseExpr3OutOfBand(t *testing.T) {
	req, err := ParseRequest(expr3)
	if err != nil {
		t.Fatal(err)
	}
	if req.RelyingParty != "RP1" || len(req.Params) != 1 || req.Params[0] != "n" {
		t.Fatalf("header: %+v", req)
	}
	seq, ok := req.Body.(*BSeq)
	if !ok {
		t.Fatalf("body is %T, want *BSeq (the +>+ operator)", req.Body)
	}
	_ = seq
}

func TestParseExpr4InBand(t *testing.T) {
	req, err := ParseRequest(expr4)
	if err != nil {
		t.Fatal(err)
	}
	ls, ok := req.Body.(*LSeq)
	if !ok {
		t.Fatalf("body is %T, want *LSeq", req.Body)
	}
	// Right side: @RP2 [@Appraiser [...]]
	rp2, ok := ls.R.(*At)
	if !ok || rp2.Place != "RP2" {
		t.Fatalf("right: %v", ls.R)
	}
	app, ok := rp2.Body.(*At)
	if !ok || app.Place != "Appraiser" {
		t.Fatalf("nested at: %v", rp2.Body)
	}
}

func TestParseAttestSubTerm(t *testing.T) {
	term, err := Parse(`attest(Hardware -~- Program) -> #`)
	if err != nil {
		t.Fatal(err)
	}
	ls := term.(*LSeq)
	attest, ok := ls.L.(*ASP)
	if !ok || attest.Name != "attest" || attest.SubTerm == nil {
		t.Fatalf("attest: %v", ls.L)
	}
	if _, ok := attest.SubTerm.(*BPar); !ok {
		t.Fatalf("subterm is %T, want *BPar", attest.SubTerm)
	}
}

func TestParseArgsVsSubterm(t *testing.T) {
	// Simple args.
	a := mustParseASP(t, `certify(n)`)
	if len(a.Args) != 1 || a.Args[0] != "n" || a.SubTerm != nil {
		t.Fatalf("certify: %+v", a)
	}
	// Multiple args.
	a = mustParseASP(t, `check(n, X, Y)`)
	if len(a.Args) != 3 || a.Args[2] != "Y" {
		t.Fatalf("check: %+v", a)
	}
	// Empty parens.
	a = mustParseASP(t, `probe()`)
	if len(a.Args) != 0 || a.SubTerm != nil {
		t.Fatalf("probe: %+v", a)
	}
	// Args then target: attest(n) X.
	a = mustParseASP(t, `attest(n) X`)
	if len(a.Args) != 1 || a.Target != "X" || a.TargetPlace != "" {
		t.Fatalf("attest(n) X: %+v", a)
	}
}

func mustParseASP(t *testing.T, src string) *ASP {
	t.Helper()
	term, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := term.(*ASP)
	if !ok {
		t.Fatalf("%q parsed to %T", src, term)
	}
	return a
}

func TestParseBuiltins(t *testing.T) {
	for src, want := range map[string]string{"!": SigName, "#": HashName, "_": CopyName} {
		a := mustParseASP(t, src)
		if a.Name != want {
			t.Errorf("%q -> %q", src, a.Name)
		}
	}
}

func TestParsePrecedenceArrowOverBranch(t *testing.T) {
	term, err := Parse(`a -> b -<- c -> d`)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := term.(*BSeq)
	if !ok {
		t.Fatalf("top is %T, want *BSeq", term)
	}
	if _, ok := seq.L.(*LSeq); !ok {
		t.Fatalf("left is %T, want *LSeq", seq.L)
	}
	if _, ok := seq.R.(*LSeq); !ok {
		t.Fatalf("right is %T, want *LSeq", seq.R)
	}
}

func TestParseBranchLeftAssoc(t *testing.T) {
	term, err := Parse(`a -<- b -~- c`)
	if err != nil {
		t.Fatal(err)
	}
	par, ok := term.(*BPar)
	if !ok {
		t.Fatalf("top is %T, want *BPar", term)
	}
	if _, ok := par.L.(*BSeq); !ok {
		t.Fatalf("left is %T, want *BSeq", par.L)
	}
}

func TestParseParensOverride(t *testing.T) {
	term, err := Parse(`a -<- (b -~- c)`)
	if err != nil {
		t.Fatal(err)
	}
	seq, ok := term.(*BSeq)
	if !ok {
		t.Fatalf("top is %T, want *BSeq", term)
	}
	if _, ok := seq.R.(*BPar); !ok {
		t.Fatalf("right is %T, want *BPar", seq.R)
	}
}

func TestParseAllFlagCombos(t *testing.T) {
	for _, src := range []string{`a -<- b`, `a +<- b`, `a -<+ b`, `a +<+ b`, `a -~- b`, `a +~+ b`, `a +>+ b`} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
	// '>' parses as sequential branching, like '<' (paper expression 3).
	term, err := Parse(`a +>+ b`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := term.(*BSeq); !ok {
		t.Fatalf("+>+ parsed to %T, want *BSeq", term)
	}
}

func TestParseComments(t *testing.T) {
	term, err := Parse("a -> // pipe to signer\n !")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := term.(*LSeq); !ok {
		t.Fatalf("got %T", term)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `@`, `@p`, `@p [`, `@p [a`, `(a`, `a ->`, `a -< b`, `a -<`,
		`a -<* b`, `*: a`, `*rp a`, `*rp<: a`, `*rp<n: a`, `f(`, `f(a,`,
		`a b c d`, `$`, `a -> )`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			if _, err2 := ParseRequest(src); err2 == nil {
				t.Errorf("%q parsed", src)
			}
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("a ->\n$")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(se.Error(), "2:1") {
		t.Fatalf("error lacks position: %v", se)
	}
}

func TestParseRequestCommaParams(t *testing.T) {
	req, err := ParseRequest(`*RP2, n, m: @Appraiser [retrieve(n)]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Params) != 2 || req.Params[0] != "n" || req.Params[1] != "m" {
		t.Fatalf("params: %v", req.Params)
	}
}

func TestParseRequestAngleParams(t *testing.T) {
	req, err := ParseRequest(`*bank<n, X>: attest(n) X -> !`)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Params) != 2 || req.Params[1] != "X" {
		t.Fatalf("params: %v", req.Params)
	}
}

// Round trip: String() of a parsed term re-parses to an equal tree.
func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		expr1, expr2, expr4,
		`*RP2, n: @Appraiser [retrieve(n)]`,
		`*x: a -> (b -<- c) -> d`,
		`*x: attest(Hardware -~- Program) -> # -> !`,
		`*x: _ -> # -> !`,
	}
	for _, src := range srcs {
		req, err := ParseRequest(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		again, err := ParseRequest(req.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", req.String(), err)
		}
		if req.String() != again.String() {
			t.Fatalf("round trip:\n  1: %s\n  2: %s", req, again)
		}
	}
}

func TestPlaces(t *testing.T) {
	req, err := ParseRequest(expr2)
	if err != nil {
		t.Fatal(err)
	}
	got := Places(req.Body)
	want := []string{"ks", "us"}
	if len(got) != len(want) {
		t.Fatalf("places: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("places: %v, want %v", got, want)
		}
	}
}

func TestWalkStopsDescent(t *testing.T) {
	term, _ := Parse(`@p [a -> b]`)
	count := 0
	Walk(term, func(Term) bool { count++; return false })
	if count != 1 {
		t.Fatalf("walk visited %d nodes after stop", count)
	}
}

// Property: generated random terms survive String -> Parse -> String.
func TestPropertyTermRoundTrip(t *testing.T) {
	names := []string{"a", "bmon", "av", "attest", "store"}
	places := []string{"p", "q", "ks", "us"}
	var build func(r uint64, depth int) Term
	build = func(r uint64, depth int) Term {
		if depth <= 0 {
			switch r % 4 {
			case 0:
				return Sig()
			case 1:
				return Hsh()
			case 2:
				return &ASP{Name: names[r%5]}
			default:
				return Measure(names[r%5], places[(r>>3)%4], names[(r>>6)%5])
			}
		}
		l := build(r/7, depth-1)
		rr := build(r/13, depth-1)
		switch r % 5 {
		case 0:
			return &LSeq{L: l, R: rr}
		case 1:
			return &BSeq{LFlag: r&1 == 0, RFlag: r&2 == 0, L: l, R: rr}
		case 2:
			return &BPar{LFlag: r&1 == 0, RFlag: r&2 == 0, L: l, R: rr}
		case 3:
			return &At{Place: places[r%4], Body: l}
		default:
			return &ASP{Name: names[r%5], SubTerm: l}
		}
	}
	f := func(r uint64, d uint8) bool {
		term := build(r, int(d%4))
		parsed, err := Parse(term.String())
		if err != nil {
			t.Logf("term %q failed: %v", term, err)
			return false
		}
		return parsed.String() == term.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
