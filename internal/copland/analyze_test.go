package copland

import "testing"

// These tests reproduce the paper's §4.2 narrative: expression (1), with
// parallel composition, is vulnerable to the bmon repair attack; the
// sequenced expression (2) protects bmon's use.

func analyzeBody(t *testing.T, src string) *Report {
	t.Helper()
	req, err := ParseRequest(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(req.Body, AnalyzeOptions{
		TrustedMeasurers: map[string]bool{"av": true},
		RootPlace:        req.RelyingParty,
	})
}

func findingFor(r *Report, agent string) (Finding, bool) {
	for _, f := range r.Findings {
		if f.Agent == agent {
			return f, true
		}
	}
	return Finding{}, false
}

func TestAnalyzeExpr1Vulnerable(t *testing.T) {
	rep := analyzeBody(t, expr1)
	f, ok := findingFor(rep, "bmon")
	if !ok {
		t.Fatalf("no finding for bmon: %v", rep.Findings)
	}
	if f.Status != StatusVulnerable {
		t.Fatalf("expression (1) should be vulnerable, got %v", f)
	}
	if !rep.Vulnerable() {
		t.Fatal("report not flagged vulnerable")
	}
}

func TestAnalyzeExpr2Protected(t *testing.T) {
	rep := analyzeBody(t, expr2)
	f, ok := findingFor(rep, "bmon")
	if !ok {
		t.Fatalf("no finding for bmon: %v", rep.Findings)
	}
	if f.Status != StatusProtected {
		t.Fatalf("expression (2) should be protected, got %v", f)
	}
	if rep.Vulnerable() {
		t.Fatalf("report flagged vulnerable: %v", rep.Findings)
	}
}

func TestAnalyzeUnmeasured(t *testing.T) {
	// exts is measured, bmon never is.
	rep := analyzeBody(t, `*bank: @us [bmon us exts -> !]`)
	f, ok := findingFor(rep, "bmon")
	if !ok || f.Status != StatusUnmeasured {
		t.Fatalf("finding: %v ok=%v", f, ok)
	}
}

func TestAnalyzeUseBeforeMeasurementVulnerable(t *testing.T) {
	// bmon measures first, av checks it afterwards — too late.
	rep := analyzeBody(t, `*bank: @us [bmon us exts] -<- @ks [av us bmon]`)
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusVulnerable {
		t.Fatalf("late measurement should be vulnerable, got %v", f)
	}
}

func TestAnalyzeArrowOrdersEvents(t *testing.T) {
	// The -> operator also sequences: measurement before use is safe.
	rep := analyzeBody(t, `*bank: @us [av us bmon -> bmon us exts]`)
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusProtected {
		t.Fatalf("-> ordering ignored: %v", f)
	}
}

func TestAnalyzePlaceMismatch(t *testing.T) {
	// av measures bmon at place "other"; the bmon running at us is a
	// different agent instance and stays unmeasured.
	rep := analyzeBody(t, `*bank: @ks [av other bmon] -<- @us [bmon us exts]`)
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusUnmeasured {
		t.Fatalf("cross-place measurement credited: %v", f)
	}
}

func TestAnalyzeWildcardPlaceMeasurement(t *testing.T) {
	// A measurement without a target place protects the agent wherever
	// it runs.
	req, err := Parse(`av bmon -> @us [bmon us exts]`)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(req, AnalyzeOptions{TrustedMeasurers: map[string]bool{"av": true}})
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusProtected {
		t.Fatalf("wildcard measurement not credited: %v", f)
	}
}

func TestAnalyzeTrustedMeasurerSkipped(t *testing.T) {
	rep := analyzeBody(t, expr2)
	if _, ok := findingFor(rep, "av"); ok {
		t.Fatal("trusted measurer av reported")
	}
}

func TestAnalyzeTransitiveOrdering(t *testing.T) {
	// a measures bmon, then x runs, then bmon is used: ordering must be
	// transitive through the chain of -<- operators.
	rep := analyzeBody(t, `*bank: (@ks [av us bmon] -<- @ks [x ks y]) -<- @us [bmon us exts]`)
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusProtected {
		t.Fatalf("transitive ordering lost: %v", f)
	}
}

func TestAnalyzeSubtermOrdering(t *testing.T) {
	// Events inside an ASP subterm happen before the applying ASP.
	term, err := Parse(`bmon(av us bmon) us exts`)
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(term, AnalyzeOptions{TrustedMeasurers: map[string]bool{"av": true}, RootPlace: "us"})
	f, _ := findingFor(rep, "bmon")
	if f.Status != StatusProtected {
		t.Fatalf("subterm ordering lost: %v", f)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusProtected:  "protected",
		StatusVulnerable: "vulnerable",
		StatusUnmeasured: "unmeasured",
		Status(9):        "status(9)",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Agent: "bmon", Place: "us", Target: "exts", Status: StatusVulnerable}
	if f.String() != "bmon@us measuring exts: vulnerable" {
		t.Fatalf("finding string: %q", f.String())
	}
}
