package copland

import "fmt"

// Parse parses a single Copland term.
func Parse(input string) (Term, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseRequest parses a top-level `*RP<params>: term` phrase. Parameters
// may also be given in the paper's comma style, `*RP, n: term`.
func ParseRequest(input string) (*Request, error) {
	p, err := newParser(input)
	if err != nil {
		return nil, err
	}
	r, err := p.request()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return r, nil
}

type parser struct {
	input string
	toks  []token
	pos   int
}

func newParser(input string) (*parser, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	return &parser{input: input, toks: toks}, nil
}

func (p *parser) peek() token       { return p.toks[p.pos] }
func (p *parser) next() token       { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool { return p.peek().kind == k }

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Input: p.input, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) error {
	if !p.at(k) {
		return p.errf("expected %v, found %v %q", k, p.peek().kind, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, found %v %q", p.peek().kind, p.peek().text)
	}
	return p.next().text, nil
}

// request := '*' IDENT params? ':' term
// params  := '<' IDENT (',' IDENT)* '>'  |  (',' IDENT)+
func (p *parser) request() (*Request, error) {
	if err := p.expect(tokStar); err != nil {
		return nil, err
	}
	rp, err := p.ident()
	if err != nil {
		return nil, err
	}
	req := &Request{RelyingParty: rp}
	switch {
	case p.at(tokLess):
		p.next()
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			req.Params = append(req.Params, name)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(tokGT); err != nil {
			return nil, err
		}
	case p.at(tokComma):
		for p.at(tokComma) {
			p.next()
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			req.Params = append(req.Params, name)
		}
	}
	if err := p.expect(tokColon); err != nil {
		return nil, err
	}
	body, err := p.term()
	if err != nil {
		return nil, err
	}
	req.Body = body
	return req, nil
}

// term := branch
func (p *parser) term() (Term, error) { return p.branch() }

// branch := linear (FLAG ('<'|'~') FLAG linear)*
func (p *parser) branch() (Term, error) {
	left, err := p.linear()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		lf := Flag(p.next().kind == tokPlus)
		var par bool
		switch p.peek().kind {
		case tokLess, tokGT:
			// '<' is the Copland sequential branch; the paper also
			// renders it '>' in expression (3). Both parse to BSeq.
			par = false
		case tokTilde:
			par = true
		default:
			return nil, p.errf("expected '<', '>' or '~' after branch flag, found %q", p.peek().text)
		}
		p.next()
		var rf Flag
		switch p.peek().kind {
		case tokPlus:
			rf = true
		case tokMinus:
			rf = false
		default:
			return nil, p.errf("expected '+' or '-' flag after branch operator, found %q", p.peek().text)
		}
		p.next()
		right, err := p.linear()
		if err != nil {
			return nil, err
		}
		if par {
			left = &BPar{LFlag: lf, RFlag: rf, L: left, R: right}
		} else {
			left = &BSeq{LFlag: lf, RFlag: rf, L: left, R: right}
		}
	}
	return left, nil
}

// linear := unary ('->' unary)*
func (p *parser) linear() (Term, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tokArrow) {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &LSeq{L: left, R: right}
	}
	return left, nil
}

// unary := '@' IDENT '[' term ']' | '(' term ')' | asp
func (p *parser) unary() (Term, error) {
	switch p.peek().kind {
	case tokAt:
		p.next()
		place, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokLBrack); err != nil {
			return nil, err
		}
		body, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBrack); err != nil {
			return nil, err
		}
		return &At{Place: place, Body: body}, nil
	case tokLParen:
		p.next()
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return p.asp()
	}
}

// asp := '!' | '#' | '_' | IDENT ['(' inner ')'] [IDENT [IDENT]]
func (p *parser) asp() (Term, error) {
	switch p.peek().kind {
	case tokBang:
		p.next()
		return Sig(), nil
	case tokHash:
		p.next()
		return Hsh(), nil
	case tokUnder:
		p.next()
		return Cpy(), nil
	case tokIdent:
		name := p.next().text
		a := &ASP{Name: name}
		if p.at(tokLParen) {
			p.next()
			if err := p.aspInner(a); err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
		// Optional measurement target: one ident = target, two idents =
		// targetPlace target (the `av us bmon` form).
		if p.at(tokIdent) {
			first := p.next().text
			if p.at(tokIdent) {
				a.TargetPlace = first
				a.Target = p.next().text
			} else {
				a.Target = first
			}
		}
		return a, nil
	default:
		return nil, p.errf("expected a term, found %v %q", p.peek().kind, p.peek().text)
	}
}

// aspInner parses the contents of an ASP's parentheses: either a
// comma-separated list of simple identifiers (arguments) or a full
// subterm, e.g. attest(Hardware -~- Program).
func (p *parser) aspInner(a *ASP) error {
	// Empty argument list: f().
	if p.at(tokRParen) {
		return nil
	}
	start := p.pos
	// Try the simple-arguments shape first.
	var args []string
	for {
		if !p.at(tokIdent) {
			args = nil
			break
		}
		args = append(args, p.next().text)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if args != nil && p.at(tokRParen) {
		a.Args = args
		return nil
	}
	// Not a plain argument list — re-parse as a subterm.
	p.pos = start
	t, err := p.term()
	if err != nil {
		return err
	}
	a.SubTerm = t
	return nil
}
