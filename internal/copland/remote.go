package copland

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pera/internal/evidence"
	"pera/internal/rats"
)

// Distributed evaluation: Copland's whole point is that @p [C] executes
// at place p, which is usually a different machine. This file makes that
// literal: an Env can register *remote* places reached over the rats
// protocol; the evaluator ships the serialized subterm, the parameter
// bindings and the accrued evidence to the remote side, which evaluates
// it in its own environment (with its own keys — the local side never
// holds remote signing keys) and returns the resulting evidence plus its
// execution trace.
//
// The term travels in its concrete syntax (String() output re-parses to
// an identical tree — a property-tested invariant), the payload in a
// small binary envelope.

// Caller abstracts the client side of a rats request/response exchange;
// *rats.Conn implements it.
type Caller interface {
	Call(*rats.Message) (*rats.Message, error)
}

// Errors from remote evaluation.
var (
	ErrRemote         = errors.New("copland: remote evaluation failed")
	ErrBadExecPayload = errors.New("copland: malformed exec payload")
)

// AddRemotePlace registers a place reached via c. Local place runtimes
// with the same name take precedence (a host is authoritative for
// itself).
func (e *Env) AddRemotePlace(name string, c Caller) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.remotes == nil {
		e.remotes = make(map[string]Caller)
	}
	e.remotes[name] = c
}

// remote looks up a remote place registration.
func (e *Env) remote(name string) (Caller, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.remotes[name]
	return c, ok
}

// encodeExecPayload packs parameter bindings and input evidence.
func encodeExecPayload(params map[string][]byte, ev *evidence.Evidence) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, uint32(len(params)))
	// Deterministic order for testability.
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		b = appendLVc(b, []byte(k))
		b = appendLVc(b, params[k])
	}
	return append(b, evidence.Encode(ev)...)
}

func appendLVc(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// decodeExecPayload unpacks what encodeExecPayload produced.
func decodeExecPayload(b []byte) (map[string][]byte, *evidence.Evidence, error) {
	if len(b) < 4 {
		return nil, nil, ErrBadExecPayload
	}
	n := binary.BigEndian.Uint32(b)
	if n > 1024 {
		return nil, nil, fmt.Errorf("%w: %d params", ErrBadExecPayload, n)
	}
	off := 4
	params := make(map[string][]byte, n)
	readLV := func() ([]byte, error) {
		if off+4 > len(b) {
			return nil, ErrBadExecPayload
		}
		l := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if l > 1<<20 || off+l > len(b) {
			return nil, ErrBadExecPayload
		}
		v := b[off : off+l]
		off += l
		return v, nil
	}
	for i := uint32(0); i < n; i++ {
		k, err := readLV()
		if err != nil {
			return nil, nil, err
		}
		v, err := readLV()
		if err != nil {
			return nil, nil, err
		}
		params[string(k)] = append([]byte(nil), v...)
	}
	ev, err := evidence.Decode(b[off:])
	if err != nil {
		return nil, nil, err
	}
	return params, ev, nil
}

// evalRemote ships an @place subtree to its remote environment.
func (v *vm) evalRemote(c Caller, place string, body Term, e *evidence.Evidence) (*evidence.Evidence, error) {
	req := &rats.Message{
		Type:   rats.MsgExec,
		Claims: []string{place, body.String()},
		Body:   encodeExecPayload(v.params, e),
	}
	resp, err := c.Call(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	if resp.Type != rats.MsgEvidence {
		return nil, fmt.Errorf("%w: unexpected response %v", ErrRemote, resp.Type)
	}
	out, err := evidence.Decode(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	// Merge the remote trace (rendered events) into the local one.
	v.mu.Lock()
	for _, line := range resp.Claims {
		v.seq++
		v.trace = append(v.trace, Event{Seq: v.seq, Place: place, ASP: "remote:" + line})
	}
	v.mu.Unlock()
	return out, nil
}

// ServeEnv returns a rats.Handler that executes MsgExec requests against
// env: Claims[0] names the place (which must exist locally in env),
// Claims[1] carries the term source. The response's Body is the
// resulting evidence; its Claims render the local execution trace.
//
// SECURITY: a place served this way executes any term it is sent, under
// its own measurement handlers and signing key. Deployments gate this on
// the transport (who may connect) exactly as a local Copland place is
// gated on who may invoke it; the handlers themselves never expose key
// material.
func ServeEnv(env *Env) rats.Handler {
	return func(req *rats.Message) *rats.Message {
		fail := func(format string, args ...any) *rats.Message {
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte(fmt.Sprintf(format, args...))}
		}
		if req.Type != rats.MsgExec {
			return fail("place service cannot handle %v", req.Type)
		}
		if len(req.Claims) != 2 {
			return fail("exec needs [place, term] claims, got %d", len(req.Claims))
		}
		place, src := req.Claims[0], req.Claims[1]
		if _, ok := env.Place(place); !ok {
			return fail("unknown place %q", place)
		}
		term, err := Parse(src)
		if err != nil {
			return fail("term: %v", err)
		}
		params, ev, err := decodeExecPayload(req.Body)
		if err != nil {
			return fail("payload: %v", err)
		}
		res, err := ExecTerm(env, place, term, ev, params)
		if err != nil {
			return fail("exec: %v", err)
		}
		var trace []string
		for _, e := range res.Trace {
			trace = append(trace, e.String())
		}
		return &rats.Message{
			Type: rats.MsgEvidence, Session: req.Session,
			Claims: trace,
			Body:   evidence.Encode(res.Evidence),
		}
	}
}
