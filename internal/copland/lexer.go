package copland

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds of the ASCII Copland syntax.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokStar   // *
	tokColon  // :
	tokComma  // ,
	tokAt     // @
	tokLBrack // [
	tokRBrack // ]
	tokLParen // (
	tokRParen // )
	tokArrow  // ->
	tokPlus   // +
	tokMinus  // -
	tokLess   // <
	tokTilde  // ~
	tokGT     // >
	tokBang   // !
	tokHash   // #
	tokUnder  // _
)

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokStar: "'*'",
	tokColon: "':'", tokComma: "','", tokAt: "'@'", tokLBrack: "'['",
	tokRBrack: "']'", tokLParen: "'('", tokRParen: "')'", tokArrow: "'->'",
	tokPlus: "'+'", tokMinus: "'-'", tokLess: "'<'", tokTilde: "'~'",
	tokGT: "'>'", tokBang: "'!'", tokHash: "'#'", tokUnder: "'_'",
}

func (k tokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in input, for error messages
}

// SyntaxError reports a lexical or parse failure with its input position.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	line, col := 1, 1
	for i, r := range e.Input {
		if i >= e.Pos {
			break
		}
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("copland: %d:%d: %s", line, col, e.Msg)
}

// lex tokenizes input. Identifiers are Unicode letters/digits plus '.' and
// '_' interior characters (program names like firewall_v5.p4 are single
// identifiers); a standalone '_' is the copy operator. Comments run from
// "//" to end of line.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		r, w := utf8.DecodeRuneInString(input[i:])
		switch {
		case unicode.IsSpace(r):
			i += w
		case r == '/' && strings.HasPrefix(input[i:], "//"):
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case r == '-':
			if strings.HasPrefix(input[i:], "->") {
				toks = append(toks, token{tokArrow, "->", i})
				i += 2
			} else {
				toks = append(toks, token{tokMinus, "-", i})
				i++
			}
		case isIdentStart(r):
			j := i + w
			for j < len(input) {
				r2, w2 := utf8.DecodeRuneInString(input[j:])
				if !isIdentCont(r2) {
					break
				}
				j += w2
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			var k tokKind
			switch r {
			case '*':
				k = tokStar
			case ':':
				k = tokColon
			case ',':
				k = tokComma
			case '@':
				k = tokAt
			case '[':
				k = tokLBrack
			case ']':
				k = tokRBrack
			case '(':
				k = tokLParen
			case ')':
				k = tokRParen
			case '+':
				k = tokPlus
			case '<':
				k = tokLess
			case '~':
				k = tokTilde
			case '>':
				k = tokGT
			case '!':
				k = tokBang
			case '#':
				k = tokHash
			case '_':
				k = tokUnder
			default:
				return nil, &SyntaxError{input, i, fmt.Sprintf("unexpected character %q", r)}
			}
			toks = append(toks, token{k, string(r), i})
			i += w
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) }

func isIdentCont(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' || r == '_'
}
