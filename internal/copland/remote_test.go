package copland

import (
	"errors"
	"strings"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rats"
	"pera/internal/rot"
)

// remoteFixture builds a "client device" environment served over an
// in-memory rats pipe, and a "bank" environment that reaches the device's
// places remotely. This is the §4.2 setting as it would actually deploy:
// the bank never holds the client's keys or measurement handlers.
func remoteFixture(t *testing.T) (local *Env, deviceKeys evidence.KeyMap, cleanup func()) {
	t.Helper()
	device := NewEnv()
	keys := evidence.KeyMap{}
	for _, name := range []string{"ks", "us"} {
		r := rot.NewDeterministic(name, []byte("remote:"+name))
		keys[name] = r.Public()
		pl := NewPlace(name, r)
		pl.HandleDefault(measureHandler())
		device.AddPlace(pl)
	}

	clientConn, serverConn := rats.Pipe()
	go rats.Serve(serverConn, ServeEnv(device))

	local = NewEnv()
	local.AddPlace(NewPlace("bank", rot.NewDeterministic("bank", []byte("b"))))
	local.AddRemotePlace("ks", clientConn)
	local.AddRemotePlace("us", clientConn)
	return local, keys, func() { clientConn.Close(); serverConn.Close() }
}

func TestRemoteExecutionBankExample(t *testing.T) {
	env, keys, cleanup := remoteFixture(t)
	defer cleanup()

	req, err := ParseRequest(expr2) // the sequenced bank protocol
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(env, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Evidence shape identical to local evaluation...
	ms := evidence.Measurements(res.Evidence)
	if len(ms) != 2 || ms[0].Measurer != "av" || ms[1].Measurer != "bmon" {
		t.Fatalf("measurements: %v", res.Evidence)
	}
	// ...with signatures produced by the REMOTE keys.
	n, err := evidence.VerifySignatures(res.Evidence, keys)
	if err != nil || n != 2 {
		t.Fatalf("signatures: %d %v", n, err)
	}
	// The remote trace is merged into the local one.
	joined := ""
	for _, e := range res.Trace {
		joined += e.String() + " "
	}
	if !strings.Contains(joined, "remote:") {
		t.Fatalf("trace lacks remote events: %v", res.Trace)
	}
}

func TestRemoteMatchesLocalEvidence(t *testing.T) {
	// The same request evaluated locally and remotely (same seeds) must
	// produce byte-identical evidence: distribution is transparent.
	localEnv := NewEnv()
	for _, name := range []string{"ks", "us"} {
		pl := NewPlace(name, rot.NewDeterministic(name, []byte("remote:"+name)))
		pl.HandleDefault(measureHandler())
		localEnv.AddPlace(pl)
	}
	localEnv.AddPlace(NewPlace("bank", rot.NewDeterministic("bank", []byte("b"))))

	remoteEnv, _, cleanup := remoteFixture(t)
	defer cleanup()

	req, _ := ParseRequest(expr2)
	a, err := Exec(localEnv, req, map[string][]byte{"n": []byte("same")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exec(remoteEnv, req, map[string][]byte{"n": []byte("same")})
	if err != nil {
		t.Fatal(err)
	}
	if !evidence.Equal(a.Evidence, b.Evidence) {
		t.Fatalf("local and remote evidence differ:\n  local:  %v\n  remote: %v", a.Evidence, b.Evidence)
	}
}

func TestRemoteParamsTravel(t *testing.T) {
	device := NewEnv()
	pl := NewPlace("p", rot.NewDeterministic("p", []byte("p")))
	var got []byte
	pl.Handle("certify", func(c *Call) (*evidence.Evidence, error) {
		got = c.Arg(0)
		return c.Input, nil
	})
	device.AddPlace(pl)
	cc, sc := rats.Pipe()
	defer cc.Close()
	defer sc.Close()
	go rats.Serve(sc, ServeEnv(device))

	env := NewEnv()
	env.AddPlace(NewPlace("rp", nil))
	env.AddRemotePlace("p", cc)
	term, _ := Parse(`@p [certify(n)]`)
	if _, err := ExecTerm(env, "rp", term, evidence.Nonce([]byte("x")), map[string][]byte{"n": []byte("bound-value")}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "bound-value" {
		t.Fatalf("param at remote: %q", got)
	}
}

func TestRemoteInputEvidenceTravels(t *testing.T) {
	env, _, cleanup := remoteFixture(t)
	defer cleanup()
	// `_` at the remote returns its input unchanged: round trip.
	term, _ := Parse(`@us [_]`)
	in := evidence.Nonce([]byte("travel"))
	res, err := ExecTerm(env, "bank", term, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !evidence.Equal(in, res.Evidence) {
		t.Fatalf("input evidence mangled: %v", res.Evidence)
	}
}

func TestRemoteErrors(t *testing.T) {
	env, _, cleanup := remoteFixture(t)
	defer cleanup()

	// Unknown remote ASP: the remote reports, the local surfaces.
	term, _ := Parse(`@us [unknownASP target]`)
	// measureHandler handles any name — use a place with no handler.
	device2 := NewEnv()
	device2.AddPlace(NewPlace("bare", nil))
	cc, sc := rats.Pipe()
	defer cc.Close()
	defer sc.Close()
	go rats.Serve(sc, ServeEnv(device2))
	env.AddRemotePlace("bare", cc)
	term, _ = Parse(`@bare [mystery]`)
	if _, err := ExecTerm(env, "bank", term, evidence.Empty(), nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("remote handler error: %v", err)
	}
	// Unknown remote place name at the server.
	term, _ = Parse(`@ghost [_]`)
	env.AddRemotePlace("ghost", cc)
	if _, err := ExecTerm(env, "bank", term, evidence.Empty(), nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("ghost place: %v", err)
	}
	// Dead transport.
	cc2, sc2 := rats.Pipe()
	cc2.Close()
	sc2.Close()
	env.AddRemotePlace("dead", cc2)
	term, _ = Parse(`@dead [_]`)
	if _, err := ExecTerm(env, "bank", term, evidence.Empty(), nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("dead transport: %v", err)
	}
}

func TestServeEnvRejects(t *testing.T) {
	env := NewEnv()
	env.AddPlace(NewPlace("p", nil))
	h := ServeEnv(env)
	if h(&rats.Message{Type: rats.MsgChallenge}).Type != rats.MsgError {
		t.Fatal("wrong type serviced")
	}
	if h(&rats.Message{Type: rats.MsgExec, Claims: []string{"p"}}).Type != rats.MsgError {
		t.Fatal("short claims serviced")
	}
	if h(&rats.Message{Type: rats.MsgExec, Claims: []string{"ghost", "_"}}).Type != rats.MsgError {
		t.Fatal("ghost place serviced")
	}
	if h(&rats.Message{Type: rats.MsgExec, Claims: []string{"p", "(("}}).Type != rats.MsgError {
		t.Fatal("garbage term serviced")
	}
	if h(&rats.Message{Type: rats.MsgExec, Claims: []string{"p", "_"}, Body: []byte{1}}).Type != rats.MsgError {
		t.Fatal("garbage payload serviced")
	}
}

func TestExecPayloadRoundTrip(t *testing.T) {
	params := map[string][]byte{"n": []byte("nonce"), "X": []byte("prop"), "empty": nil}
	ev := evidence.Seq(evidence.Nonce([]byte("e")), evidence.Empty())
	got, gotEv, err := decodeExecPayload(encodeExecPayload(params, ev))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["n"]) != "nonce" || string(got["X"]) != "prop" {
		t.Fatalf("params: %v", got)
	}
	if !evidence.Equal(ev, gotEv) {
		t.Fatal("evidence mangled")
	}
	// Garbage payloads.
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 5}, {0xFF, 0xFF, 0xFF, 0xFF}} {
		if _, _, err := decodeExecPayload(bad); err == nil {
			t.Errorf("payload %v decoded", bad)
		}
	}
}

func TestLocalPlaceShadowsRemote(t *testing.T) {
	// A locally registered place wins over a remote registration with
	// the same name: a host is authoritative for itself.
	env := NewEnv()
	r := rot.NewDeterministic("p", []byte("local"))
	pl := NewPlace("p", r)
	pl.HandleDefault(measureHandler())
	env.AddPlace(pl)
	cc, sc := rats.Pipe()
	cc.Close()
	sc.Close()
	env.AddRemotePlace("p", cc) // dead — would fail if used
	term, _ := Parse(`@p [m x t]`)
	if _, err := ExecTerm(env, "p", term, evidence.Empty(), nil); err != nil {
		t.Fatalf("local place not preferred: %v", err)
	}
}

// Concurrent parallel branches sharing one remote connection must not
// steal each other's responses (rats.Conn.Call serializes exchanges).
func TestRemoteConcurrentParallelBranches(t *testing.T) {
	env, keys, cleanup := remoteFixture(t)
	defer cleanup()
	env.Concurrent = true
	term, err := Parse(`@ks [av us bmon -> !] -~- @us [bmon us exts -> !]`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		res, err := ExecTerm(env, "bank", term, evidence.Empty(), nil)
		if err != nil {
			t.Fatal(err)
		}
		n, err := evidence.VerifySignatures(res.Evidence, keys)
		if err != nil || n != 2 {
			t.Fatalf("iteration %d: %d sigs, %v", i, n, err)
		}
		ms := evidence.Measurements(res.Evidence)
		if len(ms) != 2 || ms[0].Measurer != "av" || ms[1].Measurer != "bmon" {
			t.Fatalf("iteration %d: crossed responses: %v", i, res.Evidence)
		}
	}
}
