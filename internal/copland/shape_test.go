package copland

import (
	"testing"
	"testing/quick"

	"pera/internal/evidence"
)

func TestInferBankExpressions(t *testing.T) {
	// Expression (2): sequenced, both arms signed.
	req, err := ParseRequest(expr2)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := InferRequest(req, false, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := "(sig[ks](msmt(av,bmon,ks)) ;; sig[us](msmt(bmon,exts,us)))"
	if shape.String() != want {
		t.Fatalf("shape %q, want %q", shape, want)
	}
	c := Count(shape)
	if c.Measurements != 2 || c.Signatures != 2 || c.Hashes != 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestInferMatchesExecution(t *testing.T) {
	// The static shape must equal the dynamic evidence's shape for
	// convention-following environments.
	env, _ := testEnv(t)
	srcs := []string{
		expr1, expr2,
		`*bank: @ks [av us bmon -> # -> !]`,
		`*bank: @us [_ -> bmon us exts]`,
		`*bank: (@ks [av us bmon] +<+ @us [bmon us exts]) -> !`,
		`*bank: @ks [m1 p t1] -~- @us [m2 p t2]`,
	}
	for _, src := range srcs {
		req, err := ParseRequest(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for _, withNonce := range []bool{false, true} {
			var bindings map[string][]byte
			if withNonce {
				bindings = map[string][]byte{"n": []byte("n-1")}
			}
			res, err := Exec(env, req, bindings)
			if err != nil {
				t.Fatalf("%q: exec: %v", src, err)
			}
			inferred, err := InferRequest(req, withNonce, InferOptions{})
			if err != nil {
				t.Fatalf("%q: infer: %v", src, err)
			}
			got := ShapeOf(res.Evidence)
			if !ShapeEqual(got, inferred) {
				t.Fatalf("%q (nonce=%v):\n  dynamic: %s\n  static:  %s",
					src, withNonce, got, inferred)
			}
		}
	}
}

// Property: inference agrees with execution on randomly generated
// convention-following terms.
func TestPropertyInferMatchesExecution(t *testing.T) {
	env, _ := testEnv(t)
	names := []string{"m1", "m2", "av", "bmon"}
	places := []string{"ks", "us", "bank"}
	var build func(r uint64, depth int) Term
	build = func(r uint64, depth int) Term {
		if depth <= 0 {
			switch r % 4 {
			case 0:
				return Sig()
			case 1:
				return Cpy()
			default:
				return Measure(names[r%4], places[(r>>2)%3], "t"+names[(r>>4)%4])
			}
		}
		l, rr := build(r/5, depth-1), build(r/11, depth-1)
		switch r % 5 {
		case 0:
			return &LSeq{L: l, R: rr}
		case 1:
			return &BSeq{LFlag: r&1 == 0, RFlag: r&2 == 0, L: l, R: rr}
		case 2:
			return &BPar{LFlag: r&1 == 0, RFlag: r&2 == 0, L: l, R: rr}
		case 3:
			return &At{Place: places[r%3], Body: l}
		default:
			return l
		}
	}
	f := func(r uint64, d uint8) bool {
		term := build(r, int(d%4))
		res, err := ExecTerm(env, "bank", term, evidence.Empty(), nil)
		if err != nil {
			return true // e.g. signing at a place without a signer
		}
		inferred, err := Infer(term, "bank", ShEmpty{}, InferOptions{})
		if err != nil {
			t.Logf("infer failed for %q: %v", term, err)
			return false
		}
		if !ShapeEqual(ShapeOf(res.Evidence), inferred) {
			t.Logf("%q:\n  dynamic: %s\n  static:  %s", term, ShapeOf(res.Evidence), inferred)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInferCustomShapes(t *testing.T) {
	// attest-style collector: returns its input unchanged.
	opts := InferOptions{Custom: map[string]ShapeFn{
		"attest": func(a *ASP, place string, in Shape) (Shape, error) { return in, nil },
	}}
	term, err := Parse(`attest(Hardware -~- Program) -> # -> !`)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := Infer(term, "Switch", ShEmpty{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := "sig[Switch](#(mt))"
	if shape.String() != want {
		t.Fatalf("shape %q, want %q", shape, want)
	}
}

func TestShapeOfHashOpaque(t *testing.T) {
	m := evidence.Measurement("a", "t", "p", evidence.DetailProgram, [32]byte{}, nil)
	h := evidence.Hash(m)
	if ShapeOf(h).String() != "#(mt)" {
		t.Fatalf("hash shape: %s", ShapeOf(h))
	}
	if ShapeOf(nil).String() != "mt" {
		t.Fatal("nil shape")
	}
}

func TestCountAndRender(t *testing.T) {
	req, _ := ParseRequest(expr2)
	shape, _ := InferRequest(req, true, InferOptions{})
	c := Count(shape)
	if c.Nonces != 0 { // both arms are '-' flagged: nonce not passed in
		t.Fatalf("counts: %+v", c)
	}
	if Render(shape) == "" {
		t.Fatal("render")
	}
	// A request whose arms receive the nonce counts it.
	req2, _ := ParseRequest(`*x: _ +<+ _`)
	s2, _ := InferRequest(req2, true, InferOptions{})
	if Count(s2).Nonces != 2 {
		t.Fatalf("nonce counts: %+v", Count(s2))
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(nil, "p", ShEmpty{}, InferOptions{}); err == nil {
		t.Fatal("nil term inferred")
	}
	// Custom shape functions can refuse.
	opts := InferOptions{Custom: map[string]ShapeFn{
		"bad": func(*ASP, string, Shape) (Shape, error) {
			return nil, errTestRefuse
		},
	}}
	term, _ := Parse(`bad`)
	if _, err := Infer(term, "p", ShEmpty{}, opts); err == nil {
		t.Fatal("refusing shape fn ignored")
	}
	// Errors propagate through composition and subterms.
	for _, src := range []string{`bad -> _`, `_ -> bad`, `bad -<- _`, `_ -~- bad`, `f(bad -> _)`, `@p [bad]`} {
		tm, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Infer(tm, "p", ShEmpty{}, opts); err == nil {
			t.Fatalf("%q: error swallowed", src)
		}
	}
}

var errTestRefuse = errTest("refused")

type errTest string

func (e errTest) Error() string { return string(e) }
