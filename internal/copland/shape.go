package copland

import (
	"fmt"
	"strings"

	"pera/internal/evidence"
)

// Evidence-shape inference — Copland's evidence type system. A term's
// evidence shape is derivable statically: relying parties use it to
// pre-validate policies, predict evidence size, and compute expected
// evidence structure (e.g. to provision appraiser.AllowHash digests for
// hash-collapsed attestations) without executing anything.
//
// Shapes abstract concrete evidence: a measurement's value digest is
// runtime data, but who-measured-what-where is fixed by the term.
//
// Measurement ASPs follow the convention the standard handlers implement
// (attester.Host.Place and the evaluator tests): with empty input they
// return a bare measurement, otherwise Seq(input, measurement). ASPs
// with different contracts (appraise, certify, ...) register their own
// ShapeFn; inferring a term that uses an unregistered non-measurement
// convention is the caller's responsibility to avoid.

// Shape is the static abstraction of an evidence tree.
type Shape interface {
	fmt.Stringer
	isShape()
}

// ShEmpty is the shape of empty evidence.
type ShEmpty struct{}

// ShNonce is nonce evidence.
type ShNonce struct{}

// ShMsmt is a measurement by Measurer of Target at Place.
type ShMsmt struct {
	Measurer, Target, Place string
}

// ShHash is a hash commitment over Of.
type ShHash struct{ Of Shape }

// ShSig is Signer's signature over Of.
type ShSig struct {
	Signer string
	Of     Shape
}

// ShSeq is sequential composition.
type ShSeq struct{ L, R Shape }

// ShPar is parallel composition.
type ShPar struct{ L, R Shape }

func (ShEmpty) isShape() {}
func (ShNonce) isShape() {}
func (ShMsmt) isShape()  {}
func (ShHash) isShape()  {}
func (ShSig) isShape()   {}
func (ShSeq) isShape()   {}
func (ShPar) isShape()   {}

func (ShEmpty) String() string { return "mt" }
func (ShNonce) String() string { return "nonce" }
func (m ShMsmt) String() string {
	return fmt.Sprintf("msmt(%s,%s,%s)", m.Measurer, m.Target, m.Place)
}
func (h ShHash) String() string { return "#(" + h.Of.String() + ")" }
func (s ShSig) String() string  { return fmt.Sprintf("sig[%s](%s)", s.Signer, s.Of) }
func (s ShSeq) String() string  { return fmt.Sprintf("(%s ;; %s)", s.L, s.R) }
func (p ShPar) String() string  { return fmt.Sprintf("(%s || %s)", p.L, p.R) }

// ShapeEqual compares shapes structurally.
func ShapeEqual(a, b Shape) bool { return a.String() == b.String() }

// ShapeOf abstracts concrete evidence to its shape.
func ShapeOf(ev *evidence.Evidence) Shape {
	if ev == nil {
		return ShEmpty{}
	}
	switch ev.Kind {
	case evidence.KindEmpty:
		return ShEmpty{}
	case evidence.KindNonce:
		return ShNonce{}
	case evidence.KindMeasurement:
		return ShMsmt{Measurer: ev.Measurer, Target: ev.Target, Place: ev.Place}
	case evidence.KindHash:
		// The hashed subtree is collapsed in the concrete evidence; its
		// shape is unrecoverable. Represent as a hash of an opaque hole.
		return ShHash{Of: ShEmpty{}}
	case evidence.KindSig:
		return ShSig{Signer: ev.Signer, Of: ShapeOf(ev.Left)}
	case evidence.KindSeq:
		return ShSeq{L: ShapeOf(ev.Left), R: ShapeOf(ev.Right)}
	case evidence.KindPar:
		return ShPar{L: ShapeOf(ev.Left), R: ShapeOf(ev.Right)}
	default:
		return ShEmpty{}
	}
}

// ShapeFn computes the output shape of a custom ASP given its input
// shape and the executing place.
type ShapeFn func(a *ASP, place string, in Shape) (Shape, error)

// InferOptions parameterize inference.
type InferOptions struct {
	// Custom maps ASP names with non-measurement contracts to their
	// shape functions.
	Custom map[string]ShapeFn
}

// Infer computes the evidence shape of t executing at place with input
// shape in.
func Infer(t Term, place string, in Shape, opts InferOptions) (Shape, error) {
	switch n := t.(type) {
	case *ASP:
		return inferASP(n, place, in, opts)
	case *At:
		return Infer(n.Body, n.Place, in, opts)
	case *LSeq:
		mid, err := Infer(n.L, place, in, opts)
		if err != nil {
			return nil, err
		}
		return Infer(n.R, place, mid, opts)
	case *BSeq:
		l, err := Infer(n.L, place, splitShape(n.LFlag, in), opts)
		if err != nil {
			return nil, err
		}
		r, err := Infer(n.R, place, splitShape(n.RFlag, in), opts)
		if err != nil {
			return nil, err
		}
		return ShSeq{L: l, R: r}, nil
	case *BPar:
		l, err := Infer(n.L, place, splitShape(n.LFlag, in), opts)
		if err != nil {
			return nil, err
		}
		r, err := Infer(n.R, place, splitShape(n.RFlag, in), opts)
		if err != nil {
			return nil, err
		}
		return ShPar{L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("copland: cannot infer shape of %T", t)
	}
}

func splitShape(f Flag, in Shape) Shape {
	if f {
		return in
	}
	return ShEmpty{}
}

func inferASP(a *ASP, place string, in Shape, opts InferOptions) (Shape, error) {
	input := in
	if a.SubTerm != nil {
		sub, err := Infer(a.SubTerm, place, in, opts)
		if err != nil {
			return nil, err
		}
		input = sub
	}
	switch a.Name {
	case SigName:
		return ShSig{Signer: place, Of: input}, nil
	case HashName:
		return ShHash{Of: ShEmpty{}}, nil
	case CopyName:
		return input, nil
	}
	if fn, ok := opts.Custom[a.Name]; ok {
		return fn(a, place, input)
	}
	// Measurement convention.
	target := a.Target
	if target == "" && len(a.Args) > 0 {
		target = a.Args[0]
	}
	m := ShMsmt{Measurer: a.Name, Target: target, Place: place}
	if _, empty := input.(ShEmpty); empty {
		return m, nil
	}
	return ShSeq{L: input, R: m}, nil
}

// InferRequest infers the shape of a full request: the initial shape is
// nonce evidence when the request binds the conventional n parameter.
func InferRequest(req *Request, nonceBound bool, opts InferOptions) (Shape, error) {
	var init Shape = ShEmpty{}
	if nonceBound {
		init = ShNonce{}
	}
	return Infer(req.Body, req.RelyingParty, init, opts)
}

// CountShapes tallies node kinds in a shape — the static cost model
// (how many signatures, measurements, nonce inclusions a policy demands).
type ShapeCounts struct {
	Measurements int
	Signatures   int
	Hashes       int
	Nonces       int
}

// Count walks the shape and tallies.
func Count(s Shape) ShapeCounts {
	var c ShapeCounts
	var walk func(Shape)
	walk = func(s Shape) {
		switch n := s.(type) {
		case ShMsmt:
			c.Measurements++
		case ShSig:
			c.Signatures++
			walk(n.Of)
		case ShHash:
			c.Hashes++
			walk(n.Of)
		case ShSeq:
			walk(n.L)
			walk(n.R)
		case ShPar:
			walk(n.L)
			walk(n.R)
		case ShNonce:
			c.Nonces++
		}
	}
	walk(s)
	return c
}

// Render pretty-prints a shape for diagnostics and docs.
func Render(s Shape) string {
	return strings.ReplaceAll(s.String(), ";;", "->")
}
