package copland

import (
	"errors"
	"fmt"
	"sync"

	"pera/internal/evidence"
)

// Evaluation — the Copland Virtual Machine.
//
// A Term is evaluated at a place against input evidence, producing output
// evidence. Places are runtime objects registered in an Env; each place
// can sign (the ! built-in) and exposes named ASP handlers (measurements,
// appraise, certify, store, ...). The VM records an execution trace of
// ASP events which tests and the trust analysis use to reason about
// adversary interleavings.

// Errors reported by evaluation.
var (
	ErrUnknownPlace = errors.New("copland: unknown place")
	ErrNoHandler    = errors.New("copland: no handler for ASP")
	ErrNoSigner     = errors.New("copland: place cannot sign")
)

// Call is the context passed to an ASP handler.
type Call struct {
	ASP    *ASP
	Place  string             // place executing the ASP
	Input  *evidence.Evidence // evidence accrued so far
	Params map[string][]byte  // request parameter bindings
}

// Arg resolves an ASP argument name against the request bindings, falling
// back to the literal name when unbound (so attest(Hardware) works without
// a binding for "Hardware").
func (c *Call) Arg(i int) []byte {
	if i >= len(c.ASP.Args) {
		return nil
	}
	name := c.ASP.Args[i]
	if v, ok := c.Params[name]; ok {
		return v
	}
	return []byte(name)
}

// Handler executes one ASP at a place.
type Handler func(*Call) (*evidence.Evidence, error)

// PlaceRuntime is the runtime behaviour of one place.
type PlaceRuntime struct {
	name     string
	signer   evidence.Signer
	mu       sync.Mutex
	handlers map[string]Handler
	fallback Handler
}

// NewPlace creates a place. signer may be nil for places that never sign.
func NewPlace(name string, signer evidence.Signer) *PlaceRuntime {
	return &PlaceRuntime{name: name, signer: signer, handlers: make(map[string]Handler)}
}

// Name returns the place name.
func (p *PlaceRuntime) Name() string { return p.name }

// Handle registers a handler for ASP name, replacing any previous one.
func (p *PlaceRuntime) Handle(name string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[name] = h
}

// HandleDefault registers a fallback for ASP names with no specific
// handler.
func (p *PlaceRuntime) HandleDefault(h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fallback = h
}

func (p *PlaceRuntime) handler(name string) (Handler, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if h, ok := p.handlers[name]; ok {
		return h, true
	}
	if p.fallback != nil {
		return p.fallback, true
	}
	return nil, false
}

// Env maps place names to runtimes and holds evaluation knobs.
type Env struct {
	mu      sync.Mutex
	places  map[string]*PlaceRuntime
	remotes map[string]Caller // places reached over rats (remote.go)

	// Concurrent makes BPar branches run in goroutines. Evidence shape is
	// unaffected (results are still combined left/right); only handler
	// side effects can interleave, as on a real deployment.
	Concurrent bool

	// AdversarySwapsParallel models the active adversary of §4.2 who
	// controls scheduling of unordered branches: BPar evaluates its right
	// branch to completion before its left. Combined evidence shape is
	// unchanged — which is exactly why the attack works.
	AdversarySwapsParallel bool
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{places: make(map[string]*PlaceRuntime)} }

// AddPlace registers a place runtime.
func (e *Env) AddPlace(p *PlaceRuntime) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.places[p.Name()] = p
}

// Place looks up a place by name.
func (e *Env) Place(name string) (*PlaceRuntime, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.places[name]
	return p, ok
}

// Event is one ASP execution in a trace.
type Event struct {
	Seq    int
	Place  string
	ASP    string
	Target string
}

func (ev Event) String() string {
	if ev.Target != "" {
		return fmt.Sprintf("%d:%s@%s→%s", ev.Seq, ev.ASP, ev.Place, ev.Target)
	}
	return fmt.Sprintf("%d:%s@%s", ev.Seq, ev.ASP, ev.Place)
}

// Result is the outcome of executing a Request.
type Result struct {
	Evidence *evidence.Evidence
	Trace    []Event
}

// Exec evaluates a request in env with the given parameter bindings. If a
// parameter named "n" is bound it becomes the initial nonce evidence
// (the paper's `*RP, n :` convention); otherwise evaluation starts from
// empty evidence.
func Exec(env *Env, req *Request, bindings map[string][]byte) (*Result, error) {
	var init *evidence.Evidence
	if n, ok := bindings["n"]; ok {
		init = evidence.Nonce(n)
	} else {
		init = evidence.Empty()
	}
	return ExecTerm(env, req.RelyingParty, req.Body, init, bindings)
}

// ExecTerm evaluates term t starting at place, with explicit initial
// evidence.
func ExecTerm(env *Env, place string, t Term, init *evidence.Evidence, bindings map[string][]byte) (*Result, error) {
	vm := &vm{env: env, params: bindings}
	out, err := vm.eval(place, t, init)
	if err != nil {
		return nil, err
	}
	return &Result{Evidence: out, Trace: vm.trace}, nil
}

type vm struct {
	env    *Env
	params map[string][]byte
	mu     sync.Mutex
	seq    int
	trace  []Event
}

func (v *vm) record(place string, a *ASP) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	v.trace = append(v.trace, Event{Seq: v.seq, Place: place, ASP: a.Name, Target: a.Target})
}

func (v *vm) eval(place string, t Term, e *evidence.Evidence) (*evidence.Evidence, error) {
	switch n := t.(type) {
	case *ASP:
		return v.evalASP(place, n, e)
	case *At:
		if _, ok := v.env.Place(n.Place); ok {
			return v.eval(n.Place, n.Body, e)
		}
		if c, ok := v.env.remote(n.Place); ok {
			return v.evalRemote(c, n.Place, n.Body, e)
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, n.Place)
	case *LSeq:
		mid, err := v.eval(place, n.L, e)
		if err != nil {
			return nil, err
		}
		return v.eval(place, n.R, mid)
	case *BSeq:
		l, err := v.eval(place, n.L, splitEvidence(n.LFlag, e))
		if err != nil {
			return nil, err
		}
		r, err := v.eval(place, n.R, splitEvidence(n.RFlag, e))
		if err != nil {
			return nil, err
		}
		return evidence.Seq(l, r), nil
	case *BPar:
		return v.evalPar(place, n, e)
	default:
		return nil, fmt.Errorf("copland: unknown term %T", t)
	}
}

func splitEvidence(f Flag, e *evidence.Evidence) *evidence.Evidence {
	if f {
		return e
	}
	return evidence.Empty()
}

func (v *vm) evalPar(place string, n *BPar, e *evidence.Evidence) (*evidence.Evidence, error) {
	le, re := splitEvidence(n.LFlag, e), splitEvidence(n.RFlag, e)
	switch {
	case v.env.AdversarySwapsParallel:
		// Adversary schedules the right branch first; the evidence still
		// reads left-then-right.
		r, err := v.eval(place, n.R, re)
		if err != nil {
			return nil, err
		}
		l, err := v.eval(place, n.L, le)
		if err != nil {
			return nil, err
		}
		return evidence.Par(l, r), nil
	case v.env.Concurrent:
		var (
			wg         sync.WaitGroup
			l, r       *evidence.Evidence
			lerr, rerr error
		)
		wg.Add(2)
		go func() { defer wg.Done(); l, lerr = v.eval(place, n.L, le) }()
		go func() { defer wg.Done(); r, rerr = v.eval(place, n.R, re) }()
		wg.Wait()
		if lerr != nil {
			return nil, lerr
		}
		if rerr != nil {
			return nil, rerr
		}
		return evidence.Par(l, r), nil
	default:
		l, err := v.eval(place, n.L, le)
		if err != nil {
			return nil, err
		}
		r, err := v.eval(place, n.R, re)
		if err != nil {
			return nil, err
		}
		return evidence.Par(l, r), nil
	}
}

func (v *vm) evalASP(place string, a *ASP, e *evidence.Evidence) (*evidence.Evidence, error) {
	pl, ok := v.env.Place(place)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, place)
	}
	// f(term): evaluate the subterm, then apply f to its evidence.
	input := e
	if a.SubTerm != nil {
		sub, err := v.eval(place, a.SubTerm, e)
		if err != nil {
			return nil, err
		}
		input = sub
	}
	switch a.Name {
	case SigName:
		if pl.signer == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoSigner, place)
		}
		v.record(place, a)
		return evidence.Sign(pl.signer, input), nil
	case HashName:
		v.record(place, a)
		return evidence.Hash(input), nil
	case CopyName:
		v.record(place, a)
		return input, nil
	}
	h, ok := pl.handler(a.Name)
	if !ok {
		return nil, fmt.Errorf("%w: %q at place %q", ErrNoHandler, a.Name, place)
	}
	v.record(place, a)
	return h(&Call{ASP: a, Place: place, Input: input, Params: v.params})
}
