package copland

import (
	"errors"
	"strings"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rot"
)

// measureHandler returns a handler producing measurement evidence whose
// value is the digest of the target name — a stand-in for a real
// measurement agent.
func measureHandler() Handler {
	return func(c *Call) (*evidence.Evidence, error) {
		target := c.ASP.Target
		if target == "" && len(c.ASP.Args) > 0 {
			target = c.ASP.Args[0]
		}
		m := evidence.Measurement(c.ASP.Name, target, c.Place, evidence.DetailProgram,
			rot.Sum([]byte(target)), nil)
		if c.Input != nil && c.Input.Kind != evidence.KindEmpty {
			return evidence.Seq(c.Input, m), nil
		}
		return m, nil
	}
}

func testEnv(t *testing.T) (*Env, map[string]*rot.RoT) {
	t.Helper()
	env := NewEnv()
	rots := map[string]*rot.RoT{}
	for _, name := range []string{"bank", "ks", "us", "Switch", "Appraiser", "RP1", "RP2", "p"} {
		r := rot.NewDeterministic(name, []byte(name))
		rots[name] = r
		pl := NewPlace(name, r)
		pl.HandleDefault(measureHandler())
		env.AddPlace(pl)
	}
	return env, rots
}

func TestEvalASPProducesMeasurement(t *testing.T) {
	env, _ := testEnv(t)
	term, _ := Parse(`av us bmon`)
	res, err := ExecTerm(env, "ks", term, evidence.Empty(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := evidence.Measurements(res.Evidence)
	if len(ms) != 1 || ms[0].Measurer != "av" || ms[0].Target != "bmon" || ms[0].Place != "ks" {
		t.Fatalf("evidence: %v", res.Evidence)
	}
}

func TestEvalAtChangesPlace(t *testing.T) {
	env, _ := testEnv(t)
	term, _ := Parse(`@us [bmon us exts]`)
	res, err := ExecTerm(env, "bank", term, evidence.Empty(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := evidence.Measurements(res.Evidence)
	if len(ms) != 1 || ms[0].Place != "us" {
		t.Fatalf("measurement place: %v", ms)
	}
	if len(res.Trace) != 1 || res.Trace[0].Place != "us" {
		t.Fatalf("trace: %v", res.Trace)
	}
}

func TestEvalSignAndHash(t *testing.T) {
	env, rots := testEnv(t)
	term, _ := Parse(`av us bmon -> # -> !`)
	res, err := ExecTerm(env, "ks", term, evidence.Empty(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Top: sig(ks) over hash over (nothing visible — collapsed).
	if res.Evidence.Kind != evidence.KindSig || res.Evidence.Signer != "ks" {
		t.Fatalf("top: %v", res.Evidence)
	}
	if res.Evidence.Left.Kind != evidence.KindHash {
		t.Fatalf("inner: %v", res.Evidence.Left)
	}
	keys := evidence.KeyMap{"ks": rots["ks"].Public()}
	if _, err := evidence.VerifySignatures(res.Evidence, keys); err != nil {
		t.Fatalf("signature: %v", err)
	}
}

func TestEvalCopyIsIdentity(t *testing.T) {
	env, _ := testEnv(t)
	in := evidence.Nonce([]byte("keep"))
	res, err := ExecTerm(env, "bank", Cpy(), in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !evidence.Equal(in, res.Evidence) {
		t.Fatal("copy changed evidence")
	}
}

func TestEvalBranchFlags(t *testing.T) {
	env, _ := testEnv(t)
	in := evidence.Nonce([]byte("n0"))

	// Both minus: neither branch sees the input nonce.
	term, _ := Parse(`_ -<- _`)
	res, _ := ExecTerm(env, "bank", term, in, nil)
	if len(evidence.Nonces(res.Evidence)) != 0 {
		t.Fatalf("-<-: nonce leaked: %v", res.Evidence)
	}

	// Both plus: both branches see it.
	term, _ = Parse(`_ +<+ _`)
	res, _ = ExecTerm(env, "bank", term, in, nil)
	if len(evidence.Nonces(res.Evidence)) != 2 {
		t.Fatalf("+<+: %v", res.Evidence)
	}

	// Mixed: exactly one.
	term, _ = Parse(`_ +~- _`)
	res, _ = ExecTerm(env, "bank", term, in, nil)
	if len(evidence.Nonces(res.Evidence)) != 1 {
		t.Fatalf("+~-: %v", res.Evidence)
	}
	if res.Evidence.Kind != evidence.KindPar {
		t.Fatalf("~ did not produce par evidence: %v", res.Evidence)
	}
}

func TestEvalLSeqThreadsEvidence(t *testing.T) {
	env, _ := testEnv(t)
	term, _ := Parse(`av us bmon -> bmon us exts`)
	res, err := ExecTerm(env, "ks", term, evidence.Empty(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The second measurement handler wraps the first's output in a Seq.
	ms := evidence.Measurements(res.Evidence)
	if len(ms) != 2 {
		t.Fatalf("measurements: %v", res.Evidence)
	}
	if ms[0].Measurer != "av" || ms[1].Measurer != "bmon" {
		t.Fatalf("order: %v %v", ms[0], ms[1])
	}
}

func TestEvalSubTerm(t *testing.T) {
	env, _ := testEnv(t)
	term, _ := Parse(`attest(Hardware -~- Program)`)
	res, err := ExecTerm(env, "Switch", term, evidence.Empty(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// attest receives par(Hardware-measurement, Program-measurement) as
	// input; our handler wraps input in Seq.
	ms := evidence.Measurements(res.Evidence)
	if len(ms) != 3 {
		t.Fatalf("want 3 measurements (hw, prog, attest), got %d: %v", len(ms), res.Evidence)
	}
	if ms[2].Measurer != "attest" {
		t.Fatalf("final measurer: %v", ms[2])
	}
}

func TestExecRequestNonceBinding(t *testing.T) {
	env, _ := testEnv(t)
	req, err := ParseRequest(`*RP1, n: @Switch [_ -> !]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(env, req, map[string][]byte{"n": []byte("fresh-nonce")})
	if err != nil {
		t.Fatal(err)
	}
	ns := evidence.Nonces(res.Evidence)
	if len(ns) != 1 || string(ns[0]) != "fresh-nonce" {
		t.Fatalf("nonce evidence: %v", res.Evidence)
	}
	// Without a binding, evaluation starts empty.
	res, err = Exec(env, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence.Nonces(res.Evidence)) != 0 {
		t.Fatal("unbound request carried a nonce")
	}
}

func TestCallArgResolution(t *testing.T) {
	env, _ := testEnv(t)
	var got []byte
	pl, _ := env.Place("p")
	pl.Handle("certify", func(c *Call) (*evidence.Evidence, error) {
		got = c.Arg(0)
		if c.Arg(5) != nil {
			t.Error("out-of-range arg not nil")
		}
		return c.Input, nil
	})
	term, _ := Parse(`certify(n)`)
	if _, err := ExecTerm(env, "p", term, evidence.Empty(), map[string][]byte{"n": []byte("bound")}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "bound" {
		t.Fatalf("arg = %q", got)
	}
	// Unbound args resolve to their literal names.
	if _, err := ExecTerm(env, "p", term, evidence.Empty(), nil); err != nil {
		t.Fatal(err)
	}
	if string(got) != "n" {
		t.Fatalf("unbound arg = %q", got)
	}
}

func TestEvalErrors(t *testing.T) {
	env, _ := testEnv(t)
	if _, err := ExecTerm(env, "nowhere", Cpy(), evidence.Empty(), nil); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("unknown place: %v", err)
	}
	at, _ := Parse(`@ghost [_]`)
	if _, err := ExecTerm(env, "bank", at, evidence.Empty(), nil); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("unknown @place: %v", err)
	}
	noSign := NewPlace("mute", nil)
	env.AddPlace(noSign)
	if _, err := ExecTerm(env, "mute", Sig(), evidence.Empty(), nil); !errors.Is(err, ErrNoSigner) {
		t.Fatalf("signerless place: %v", err)
	}
	bare := NewPlace("bare", nil)
	env.AddPlace(bare)
	if _, err := ExecTerm(env, "bare", &ASP{Name: "mystery"}, evidence.Empty(), nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("missing handler: %v", err)
	}
	// Errors propagate through composition.
	seq, _ := Parse(`@ghost [_] -> _`)
	if _, err := ExecTerm(env, "bank", seq, evidence.Empty(), nil); err == nil {
		t.Fatal("error swallowed by ->")
	}
	par, _ := Parse(`@ghost [_] -~- _`)
	if _, err := ExecTerm(env, "bank", par, evidence.Empty(), nil); err == nil {
		t.Fatal("error swallowed by ~")
	}
	par2, _ := Parse(`_ -~- @ghost [_]`)
	if _, err := ExecTerm(env, "bank", par2, evidence.Empty(), nil); err == nil {
		t.Fatal("right error swallowed by ~")
	}
	bseq, _ := Parse(`@ghost [_] -<- _`)
	if _, err := ExecTerm(env, "bank", bseq, evidence.Empty(), nil); err == nil {
		t.Fatal("error swallowed by <")
	}
}

func TestEvalTraceOrder(t *testing.T) {
	env, _ := testEnv(t)
	req, _ := ParseRequest(expr2)
	res, err := Exec(env, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range res.Trace {
		names = append(names, ev.ASP+"@"+ev.Place)
	}
	joined := strings.Join(names, " ")
	want := "av@ks !@ks bmon@us !@us"
	if joined != want {
		t.Fatalf("trace %q, want %q", joined, want)
	}
}

func TestEvalAdversarySwapsParallel(t *testing.T) {
	env, _ := testEnv(t)
	env.AdversarySwapsParallel = true
	req, _ := ParseRequest(expr1)
	res, err := Exec(env, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The adversary runs the us branch first...
	if res.Trace[0].Place != "us" {
		t.Fatalf("trace: %v", res.Trace)
	}
	// ...but the evidence still reads left (ks) then right (us): the
	// relying party cannot tell the schedule from the evidence. That is
	// the heart of the repair attack.
	if res.Evidence.Kind != evidence.KindPar {
		t.Fatalf("evidence: %v", res.Evidence)
	}
	ms := evidence.Measurements(res.Evidence)
	if ms[0].Place != "ks" || ms[1].Place != "us" {
		t.Fatalf("evidence order: %v", ms)
	}
}

func TestEvalConcurrentParallel(t *testing.T) {
	env, _ := testEnv(t)
	env.Concurrent = true
	term, _ := Parse(`av us bmon -~- bmon us exts`)
	for i := 0; i < 20; i++ {
		res, err := ExecTerm(env, "ks", term, evidence.Empty(), nil)
		if err != nil {
			t.Fatal(err)
		}
		// Evidence shape must be deterministic despite scheduling.
		ms := evidence.Measurements(res.Evidence)
		if len(ms) != 2 || ms[0].Measurer != "av" || ms[1].Measurer != "bmon" {
			t.Fatalf("iteration %d: %v", i, res.Evidence)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 1, Place: "ks", ASP: "av", Target: "bmon"}
	if !strings.Contains(e.String(), "av@ks") {
		t.Fatalf("event string: %s", e)
	}
	e2 := Event{Seq: 2, Place: "ks", ASP: "!"}
	if strings.Contains(e2.String(), "→") {
		t.Fatalf("untargeted event shows arrow: %s", e2)
	}
}
