// Package copland implements the Copland remote-attestation policy
// language used by the paper (§4.2): an abstract syntax of attestation
// protocol terms, a concrete ASCII syntax with parser, an evidence
// semantics (the Copland Virtual Machine), and a static trust analysis
// that detects measurement-reordering ("repair") attacks of the kind
// described by Ramsdell et al. and reproduced in the paper's bank example.
//
// The ASCII concrete syntax follows the Copland literature:
//
//	*bank<n>: @ks [av us bmon -> !] -<- @us [bmon us exts -> !]
//
//	term   := branch
//	branch := linear (FLAG ('<'|'~') FLAG linear)*      left-assoc
//	linear := unary ('->' unary)*                        left-assoc
//	unary  := '@' place '[' term ']' | '(' term ')' | asp
//	asp    := '!' | '#' | '_' | NAME ['(' inner ')'] [NAME [NAME]]
//
// where FLAG is '+' or '-', `-<-` is sequential branching and `-~-`
// parallel branching with evidence-splitting flags, `->` pipes evidence,
// `!` signs, `#` hashes, `_` copies. An ASP written `av us bmon` is the
// measurer av measuring target bmon at place us; `attest(n) X` passes the
// parameter n and measures target X; `attest(Hardware -~- Program)` runs
// the parenthesized subterm and applies attest to its evidence.
package copland

import (
	"fmt"
	"strings"
)

// Term is a Copland protocol term.
type Term interface {
	fmt.Stringer
	isTerm()
}

// SigName, HashName and CopyName are the reserved ASP names for the
// built-in `!`, `#` and `_` operations.
const (
	SigName  = "!"
	HashName = "#"
	CopyName = "_"
)

// ASP (Attestation Service Provider) is a primitive action: a measurement,
// a transformation such as certify/store, or one of the built-ins.
type ASP struct {
	Name        string
	Args        []string // simple parameters, e.g. the nonce name in certify(n)
	TargetPlace string   // place of the measured target ("" if none)
	Target      string   // measured target ("" if none)
	SubTerm     Term     // non-nil for f(term): run term, apply f to its evidence
}

// At runs Body at the named Place.
type At struct {
	Place string
	Body  Term
}

// LSeq pipes the evidence of L into R (the paper's -> operator).
type LSeq struct {
	L, R Term
}

// Flag controls whether a branch receives the evidence accrued so far
// (true, '+') or starts empty (false, '-').
type Flag bool

func (f Flag) String() string {
	if f {
		return "+"
	}
	return "-"
}

// BSeq evaluates L then R (sequential branching, the `<` operator); their
// results are combined as sequential evidence.
type BSeq struct {
	LFlag, RFlag Flag
	L, R         Term
}

// BPar evaluates L and R in parallel (the `~` operator); their results are
// combined as parallel evidence. Parallel branches give an active
// adversary interleaving freedom — see Analyze.
type BPar struct {
	LFlag, RFlag Flag
	L, R         Term
}

func (*ASP) isTerm()  {}
func (*At) isTerm()   {}
func (*LSeq) isTerm() {}
func (*BSeq) isTerm() {}
func (*BPar) isTerm() {}

func (a *ASP) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	if a.SubTerm != nil {
		fmt.Fprintf(&b, "(%s)", a.SubTerm)
	} else if len(a.Args) > 0 {
		fmt.Fprintf(&b, "(%s)", strings.Join(a.Args, ", "))
	}
	if a.TargetPlace != "" {
		fmt.Fprintf(&b, " %s", a.TargetPlace)
	}
	if a.Target != "" {
		fmt.Fprintf(&b, " %s", a.Target)
	}
	return b.String()
}

func (a *At) String() string { return fmt.Sprintf("@%s [%s]", a.Place, a.Body) }

func (l *LSeq) String() string { return fmt.Sprintf("%s -> %s", wrap(l.L), wrap(l.R)) }

func (s *BSeq) String() string {
	return fmt.Sprintf("%s %s<%s %s", wrap(s.L), s.LFlag, s.RFlag, wrap(s.R))
}

func (p *BPar) String() string {
	return fmt.Sprintf("%s %s~%s %s", wrap(p.L), p.LFlag, p.RFlag, wrap(p.R))
}

// wrap parenthesizes composite subterms so String output re-parses to the
// same tree.
func wrap(t Term) string {
	switch t.(type) {
	case *LSeq, *BSeq, *BPar:
		return "(" + t.String() + ")"
	default:
		return t.String()
	}
}

// Request is a top-level phrase `*RP<params>: term` — the relying party RP
// requests evidence for term, binding the named parameters (the first
// parameter conventionally being the nonce).
type Request struct {
	RelyingParty string
	Params       []string
	Body         Term
}

func (r *Request) String() string {
	var b strings.Builder
	b.WriteString("*")
	b.WriteString(r.RelyingParty)
	if len(r.Params) > 0 {
		fmt.Fprintf(&b, "<%s>", strings.Join(r.Params, ", "))
	}
	fmt.Fprintf(&b, ": %s", r.Body)
	return b.String()
}

// Sig returns the built-in signature ASP.
func Sig() *ASP { return &ASP{Name: SigName} }

// Hsh returns the built-in hash ASP.
func Hsh() *ASP { return &ASP{Name: HashName} }

// Cpy returns the built-in copy (identity) ASP.
func Cpy() *ASP { return &ASP{Name: CopyName} }

// Measure builds the `measurer targetPlace target` measurement ASP.
func Measure(measurer, targetPlace, target string) *ASP {
	return &ASP{Name: measurer, TargetPlace: targetPlace, Target: target}
}

// Walk visits every subterm of t in preorder. Returning false from visit
// stops descent into that subterm.
func Walk(t Term, visit func(Term) bool) {
	if t == nil || !visit(t) {
		return
	}
	switch n := t.(type) {
	case *ASP:
		if n.SubTerm != nil {
			Walk(n.SubTerm, visit)
		}
	case *At:
		Walk(n.Body, visit)
	case *LSeq:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *BSeq:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *BPar:
		Walk(n.L, visit)
		Walk(n.R, visit)
	}
}

// Places returns every place name mentioned by @ or as a measurement
// target place, in first-seen order.
func Places(t Term) []string {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	Walk(t, func(n Term) bool {
		switch v := n.(type) {
		case *At:
			add(v.Place)
		case *ASP:
			add(v.TargetPlace)
		}
		return true
	})
	return out
}
