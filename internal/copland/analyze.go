package copland

import "fmt"

// Static trust analysis.
//
// §4.2 of the paper recounts the attack of Ramsdell et al. on the bank
// example: with the two measurements composed in *parallel*, an adversary
// holding userspace (but not kernelspace) control first runs the corrupt
// bmon to measure exts, "repairs" bmon, and only then lets av measure it —
// so av vouches for an agent that lied. Sequencing the measurement of
// bmon strictly *before* bmon's own measurement closes the window.
//
// Analyze reproduces this reasoning: every use of an agent as a measurer
// must be preceded (in the term's happens-before order) by a measurement
// *of* that agent at its executing place. Parallel branches provide no
// ordering, so a measurement in one arm of a `~` does not protect a use in
// the other arm.

// Status classifies one measurer use.
type Status uint8

const (
	// StatusProtected: a measurement of the agent happens before its use.
	StatusProtected Status = iota
	// StatusVulnerable: the agent is measured somewhere, but no
	// measurement is ordered before its use — the repair attack applies.
	StatusVulnerable
	// StatusUnmeasured: the agent is never measured at all; its
	// trustworthiness rests on assumption, not evidence.
	StatusUnmeasured
)

func (s Status) String() string {
	switch s {
	case StatusProtected:
		return "protected"
	case StatusVulnerable:
		return "vulnerable"
	case StatusUnmeasured:
		return "unmeasured"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Finding reports the protection status of one measurer use.
type Finding struct {
	Agent  string // the measuring agent, e.g. "bmon"
	Place  string // where the agent executes
	Target string // what it measures
	Status Status
}

func (f Finding) String() string {
	return fmt.Sprintf("%s@%s measuring %s: %s", f.Agent, f.Place, f.Target, f.Status)
}

// Report is the result of Analyze.
type Report struct {
	Findings []Finding
}

// Vulnerable reports whether any use is vulnerable or unmeasured.
func (r *Report) Vulnerable() bool {
	for _, f := range r.Findings {
		if f.Status != StatusProtected {
			return true
		}
	}
	return false
}

// occ is one ASP occurrence with its execution place.
type occ struct {
	id    int
	place string
	asp   *ASP
}

// collector builds the occurrence list and the happens-before relation
// over occurrence ids.
type collector struct {
	occs   []occ
	before map[[2]int]bool
}

// TrustedMeasurers are agent names assumed trustworthy without measurement
// — roots of the measurement chain. Analysis treats their uses as
// protected. The paper's example trusts av (kernel-resident, assumed
// beyond the userspace adversary).
type AnalyzeOptions struct {
	TrustedMeasurers map[string]bool
	// RootPlace is the place at which the term starts executing (the
	// relying party). Defaults to "" which only matters for top-level
	// measurement ASPs outside any @.
	RootPlace string
}

// Analyze computes repair-attack findings for t.
func Analyze(t Term, opts AnalyzeOptions) *Report {
	c := &collector{before: make(map[[2]int]bool)}
	c.walk(opts.RootPlace, t)

	var rep Report
	for _, use := range c.occs {
		if use.asp.Target == "" {
			continue // not a measurement ASP
		}
		agent, place := use.asp.Name, use.place
		if opts.TrustedMeasurers[agent] || isBuiltin(agent) {
			continue
		}
		f := Finding{Agent: agent, Place: place, Target: use.asp.Target, Status: StatusUnmeasured}
		for _, m := range c.occs {
			if m.asp.Target != agent {
				continue
			}
			// A measurement of the agent counts if it names the agent's
			// executing place (or no place, meaning "wherever it runs").
			if m.asp.TargetPlace != "" && m.asp.TargetPlace != place {
				continue
			}
			if f.Status == StatusUnmeasured {
				f.Status = StatusVulnerable
			}
			if c.before[[2]int{m.id, use.id}] {
				f.Status = StatusProtected
				break
			}
		}
		rep.Findings = append(rep.Findings, f)
	}
	return &rep
}

func isBuiltin(name string) bool {
	return name == SigName || name == HashName || name == CopyName
}

// walk collects occurrences of subterm t executing at place and returns
// their ids.
func (c *collector) walk(place string, t Term) []int {
	switch n := t.(type) {
	case *ASP:
		var ids []int
		if n.SubTerm != nil {
			ids = c.walk(place, n.SubTerm)
		}
		id := len(c.occs)
		c.occs = append(c.occs, occ{id: id, place: place, asp: n})
		// Subterm events happen before the applying ASP.
		for _, s := range ids {
			c.before[[2]int{s, id}] = true
		}
		return append(ids, id)
	case *At:
		return c.walk(n.Place, n.Body)
	case *LSeq:
		l := c.walk(place, n.L)
		r := c.walk(place, n.R)
		c.order(l, r)
		return append(l, r...)
	case *BSeq:
		l := c.walk(place, n.L)
		r := c.walk(place, n.R)
		c.order(l, r)
		return append(l, r...)
	case *BPar:
		l := c.walk(place, n.L)
		r := c.walk(place, n.R)
		// No ordering between parallel arms: this is the attack surface.
		return append(l, r...)
	default:
		return nil
	}
}

// order records that everything in ls happens before everything in rs,
// closing transitively over what is already known. With the small terms
// of attestation policies the O(n²) closure is negligible.
func (c *collector) order(ls, rs []int) {
	for _, l := range ls {
		for _, r := range rs {
			c.before[[2]int{l, r}] = true
		}
	}
	// Transitive closure: anything before an l is before every r.
	for _, l := range ls {
		for i := range c.occs {
			if c.before[[2]int{i, l}] {
				for _, r := range rs {
					c.before[[2]int{i, r}] = true
				}
			}
		}
	}
}
