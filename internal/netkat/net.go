package netkat

import (
	"fmt"
	"sort"
)

// Network-level reasoning in the standard NetKAT encoding:
//
//	net = in ; (prog ; topo)* ; prog ; out
//
// where prog is the union of all switch programs and topo the union of
// all link policies. Reachability and path enumeration over this encoding
// are what the hybrid Copland+NetKAT compiler (internal/nac) uses to bind
// abstract places to concrete hops.

// Link is a unidirectional link between switch ports.
type Link struct {
	FromSwitch, FromPort uint64
	ToSwitch, ToPort     uint64
}

// TopologyPolicy encodes links as a NetKAT policy: a packet at the
// from-switch's from-port is moved to the to-switch's to-port.
func TopologyPolicy(links []Link) Policy {
	pols := make([]Policy, 0, len(links))
	for _, l := range links {
		pols = append(pols, Then(
			F(And(Test(FSwitch, l.FromSwitch), Test(FPort, l.FromPort))),
			Mod(FSwitch, l.ToSwitch),
			Mod(FPort, l.ToPort),
		))
	}
	return Plus(pols...)
}

// NetworkPolicy builds the standard in;(p;t)*;p;out encoding. A Dup is
// sequenced after each application of prog so that histories record the
// per-hop packets — those histories are the network paths.
func NetworkPolicy(ingress, egress Pred, prog, topo Policy) Policy {
	hop := Then(prog, Dup{}, topo)
	return Then(F(ingress), Iterate(hop), prog, Dup{}, F(egress))
}

// Reachable reports whether any packet satisfying ingress can reach a
// state satisfying egress under prog/topo, starting from concrete packet
// pkt (which should satisfy ingress; if not, the result is trivially
// false).
func Reachable(pkt Packet, ingress, egress Pred, prog, topo Policy) (bool, error) {
	res, err := EvalPacket(NetworkPolicy(ingress, egress, prog, topo), pkt)
	if err != nil {
		return false, err
	}
	return res.Len() > 0, nil
}

// Hop is one step of a concrete network path.
type Hop struct {
	Switch uint64
	Port   uint64
	Packet Packet
}

func (h Hop) String() string { return fmt.Sprintf("sw%d:pt%d", h.Switch, h.Port) }

// Path is a sequence of hops from ingress to egress.
type Path []Hop

// Switches returns the switch ids along the path in order.
func (p Path) Switches() []uint64 {
	out := make([]uint64, len(p))
	for i, h := range p {
		out[i] = h.Switch
	}
	return out
}

func (p Path) String() string {
	s := ""
	for i, h := range p {
		if i > 0 {
			s += " -> "
		}
		s += h.String()
	}
	return s
}

// Paths enumerates the concrete paths packet pkt can take from ingress to
// egress under prog/topo, extracted from the dup-traces of the network
// policy. Each history yields one path, oldest hop first.
func Paths(pkt Packet, ingress, egress Pred, prog, topo Policy) ([]Path, error) {
	res, err := EvalPacket(NetworkPolicy(ingress, egress, prog, topo), pkt)
	if err != nil {
		return nil, err
	}
	var paths []Path
	for _, h := range res.Histories() {
		// History is newest-first; the head duplicates the final dup
		// entry (dup copies rather than moves), so skip index 0 and
		// reverse the rest.
		var path Path
		for i := len(h) - 1; i >= 1; i-- {
			p := h[i]
			path = append(path, Hop{Switch: p.Get(FSwitch), Port: p.Get(FPort), Packet: p})
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// SwitchProgram builds a per-switch forwarding policy from (match, action)
// rules: on switch sw, a packet matching pred has its fields set per sets
// and is emitted on outPort. Rules are unioned; overlapping rules emit
// multiple copies, exactly as NetKAT's + prescribes.
type Rule struct {
	Match   Pred
	Sets    map[string]uint64
	OutPort uint64
}

// SwitchProgram encodes rules for switch sw as a policy guarded on sw.
func SwitchProgram(sw uint64, rules []Rule) Policy {
	pols := make([]Policy, 0, len(rules))
	for _, r := range rules {
		seq := []Policy{F(And(Test(FSwitch, sw), r.Match))}
		fields := make([]string, 0, len(r.Sets))
		for f := range r.Sets {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			seq = append(seq, Mod(f, r.Sets[f]))
		}
		seq = append(seq, Mod(FPort, r.OutPort))
		pols = append(pols, Then(seq...))
	}
	return Plus(pols...)
}
