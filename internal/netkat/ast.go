package netkat

import "fmt"

// Pred is a NetKAT predicate — the Boolean algebra fragment.
type Pred interface {
	fmt.Stringer
	isPred()
	// Eval reports whether the predicate holds of packet p.
	Eval(p Packet) bool
}

// PTrue is the true predicate (pass).
type PTrue struct{}

// PFalse is the false predicate (drop).
type PFalse struct{}

// PTest tests Field = Value.
type PTest struct {
	Field string
	Value uint64
}

// PNot negates a predicate.
type PNot struct{ P Pred }

// PAnd is conjunction.
type PAnd struct{ L, R Pred }

// POr is disjunction.
type POr struct{ L, R Pred }

func (PTrue) isPred()  {}
func (PFalse) isPred() {}
func (PTest) isPred()  {}
func (PNot) isPred()   {}
func (PAnd) isPred()   {}
func (POr) isPred()    {}

// Eval implementations.
func (PTrue) Eval(Packet) bool     { return true }
func (PFalse) Eval(Packet) bool    { return false }
func (t PTest) Eval(p Packet) bool { return p.Get(t.Field) == t.Value }
func (n PNot) Eval(p Packet) bool  { return !n.P.Eval(p) }
func (a PAnd) Eval(p Packet) bool  { return a.L.Eval(p) && a.R.Eval(p) }
func (o POr) Eval(p Packet) bool   { return o.L.Eval(p) || o.R.Eval(p) }

func (PTrue) String() string   { return "true" }
func (PFalse) String() string  { return "false" }
func (t PTest) String() string { return fmt.Sprintf("%s=%d", t.Field, t.Value) }
func (n PNot) String() string  { return "not " + parenPred(n.P) }
func (a PAnd) String() string  { return parenPred(a.L) + " and " + parenPred(a.R) }
func (o POr) String() string   { return parenPred(o.L) + " or " + parenPred(o.R) }

func parenPred(p Pred) string {
	switch p.(type) {
	case PAnd, POr, PNot:
		return "(" + p.String() + ")"
	}
	return p.String()
}

// Convenience constructors.

// True returns the true predicate.
func True() Pred { return PTrue{} }

// False returns the false predicate.
func False() Pred { return PFalse{} }

// Test returns the field=value test.
func Test(field string, value uint64) Pred { return PTest{field, value} }

// Not negates p.
func Not(p Pred) Pred { return PNot{p} }

// And folds conjunction over ps (empty = true).
func And(ps ...Pred) Pred {
	if len(ps) == 0 {
		return PTrue{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = PAnd{out, p}
	}
	return out
}

// Or folds disjunction over ps (empty = false).
func Or(ps ...Pred) Pred {
	if len(ps) == 0 {
		return PFalse{}
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = POr{out, p}
	}
	return out
}

// Policy is a NetKAT policy.
type Policy interface {
	fmt.Stringer
	isPolicy()
}

// Filter lifts a predicate to a policy.
type Filter struct{ Pred Pred }

// Assign sets Field := Value.
type Assign struct {
	Field string
	Value uint64
}

// Union is nondeterministic choice (p + q).
type Union struct{ L, R Policy }

// SeqP is sequential composition (p ; q).
type SeqP struct{ L, R Policy }

// Star is Kleene iteration (p*).
type Star struct{ P Policy }

// Dup records the current packet on the history trace.
type Dup struct{}

func (Filter) isPolicy() {}
func (Assign) isPolicy() {}
func (Union) isPolicy()  {}
func (SeqP) isPolicy()   {}
func (Star) isPolicy()   {}
func (Dup) isPolicy()    {}

func (f Filter) String() string { return "filter " + f.Pred.String() }
func (a Assign) String() string { return fmt.Sprintf("%s:=%d", a.Field, a.Value) }
func (u Union) String() string  { return parenPol(u.L) + " + " + parenPol(u.R) }
func (s SeqP) String() string   { return parenPol(s.L) + " ; " + parenPol(s.R) }
func (s Star) String() string   { return parenPol(s.P) + "*" }
func (Dup) String() string      { return "dup" }

func parenPol(p Policy) string {
	switch p.(type) {
	case Union, SeqP:
		return "(" + p.String() + ")"
	}
	return p.String()
}

// Convenience constructors.

// Id is the identity policy (filter true).
func Id() Policy { return Filter{PTrue{}} }

// Drop is the empty policy (filter false).
func Drop() Policy { return Filter{PFalse{}} }

// F lifts a predicate.
func F(p Pred) Policy { return Filter{p} }

// Mod returns the assignment policy field := value.
func Mod(field string, value uint64) Policy { return Assign{field, value} }

// Plus folds union over ps (empty = drop).
func Plus(ps ...Policy) Policy {
	if len(ps) == 0 {
		return Drop()
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = Union{out, p}
	}
	return out
}

// Then folds sequencing over ps (empty = id).
func Then(ps ...Policy) Policy {
	if len(ps) == 0 {
		return Id()
	}
	out := ps[0]
	for _, p := range ps[1:] {
		out = SeqP{out, p}
	}
	return out
}

// Iterate returns p*.
func Iterate(p Policy) Policy { return Star{p} }
