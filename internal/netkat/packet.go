// Package netkat implements the core of the NetKAT network programming
// language (Anderson et al., POPL 2014): packets as field assignments,
// predicates and policies with union, sequencing, Kleene star and dup,
// and the standard trace semantics mapping a packet history to a set of
// histories.
//
// The paper borrows three things from NetKAT for its network-aware
// Copland (§5.1): the Kleene star (path abstraction, `*=>`), Boolean test
// prefixes (the `|>` guard), and reasoning about reachability. This
// package provides all three: policies model both dataplane programs and
// topologies, and Reachability/Paths answer the queries the hybrid
// language compiler needs.
package netkat

import (
	"fmt"
	"sort"
	"strings"
)

// Field names a packet header field. NetKAT is protocol-independent: any
// string may be used. Conventional fields used across this repository:
const (
	FSwitch = "sw"   // switch id
	FPort   = "pt"   // port id
	FSrc    = "src"  // abstract source address
	FDst    = "dst"  // abstract destination address
	FType   = "typ"  // protocol/type tag
	FVLAN   = "vlan" // segment tag
)

// Packet is a total assignment of values to the fields it mentions;
// unmentioned fields read as zero, like uninitialized P4 metadata.
type Packet map[string]uint64

// Get returns the value of field f (zero if absent).
func (p Packet) Get(f string) uint64 { return p[f] }

// Clone returns an independent copy of p.
func (p Packet) Clone() Packet {
	q := make(Packet, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// With returns a copy of p with field f set to v.
func (p Packet) With(f string, v uint64) Packet {
	q := p.Clone()
	q[f] = v
	return q
}

// key returns a canonical string key for use in sets. Zero-valued fields
// are omitted so that explicit zero and absent agree.
func (p Packet) key() string {
	fields := make([]string, 0, len(p))
	for f, v := range p {
		if v != 0 {
			fields = append(fields, f)
		}
	}
	sort.Strings(fields)
	var b strings.Builder
	for _, f := range fields {
		fmt.Fprintf(&b, "%s=%d;", f, p[f])
	}
	return b.String()
}

// String renders the packet's non-zero fields in sorted order.
func (p Packet) String() string {
	s := p.key()
	if s == "" {
		return "<zero>"
	}
	return strings.TrimSuffix(s, ";")
}

// Equal reports field-wise equality treating absent fields as zero.
func (p Packet) Equal(q Packet) bool { return p.key() == q.key() }

// History is a non-empty packet trace: index 0 is the current packet,
// subsequent entries are past observations recorded by dup, newest first.
type History []Packet

// NewHistory makes a single-packet history.
func NewHistory(p Packet) History { return History{p} }

// Head returns the current packet.
func (h History) Head() Packet { return h[0] }

// withHead returns a history like h but with head replaced by p.
func (h History) withHead(p Packet) History {
	out := make(History, len(h))
	copy(out[1:], h[1:])
	out[0] = p
	return out
}

// dup returns a history with the head duplicated onto the trace.
func (h History) dup() History {
	out := make(History, len(h)+1)
	out[0] = h[0]
	copy(out[1:], h)
	return out
}

func (h History) key() string {
	var b strings.Builder
	for _, p := range h {
		b.WriteString(p.key())
		b.WriteString("|")
	}
	return b.String()
}

// String renders the history oldest-first as a path-like chain.
func (h History) String() string {
	parts := make([]string, len(h))
	for i, p := range h {
		parts[len(h)-1-i] = p.String()
	}
	return strings.Join(parts, " >> ")
}

// HistorySet is a set of histories with deterministic iteration order.
type HistorySet struct {
	m     map[string]History
	order []string
}

// NewHistorySet builds a set from the given histories.
func NewHistorySet(hs ...History) *HistorySet {
	s := &HistorySet{m: make(map[string]History)}
	for _, h := range hs {
		s.Add(h)
	}
	return s
}

// Add inserts h, returning true if it was not already present.
func (s *HistorySet) Add(h History) bool {
	k := h.key()
	if _, ok := s.m[k]; ok {
		return false
	}
	s.m[k] = h
	s.order = append(s.order, k)
	return true
}

// AddAll inserts every history of t into s.
func (s *HistorySet) AddAll(t *HistorySet) {
	for _, k := range t.order {
		s.Add(t.m[k])
	}
}

// Len returns the number of histories.
func (s *HistorySet) Len() int { return len(s.order) }

// Histories returns the set contents in insertion order.
func (s *HistorySet) Histories() []History {
	out := make([]History, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.m[k])
	}
	return out
}

// Heads returns the distinct head packets of the set.
func (s *HistorySet) Heads() []Packet {
	seen := map[string]bool{}
	var out []Packet
	for _, k := range s.order {
		h := s.m[k]
		pk := h.Head().key()
		if !seen[pk] {
			seen[pk] = true
			out = append(out, h.Head())
		}
	}
	return out
}

// Equal reports whether two sets contain the same histories.
func (s *HistorySet) Equal(t *HistorySet) bool {
	if s.Len() != t.Len() {
		return false
	}
	for k := range s.m {
		if _, ok := t.m[k]; !ok {
			return false
		}
	}
	return true
}
