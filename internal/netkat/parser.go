package netkat

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Concrete syntax for NetKAT policies, matching the String() rendering:
//
//	policy := seq ('+' seq)*                    union (lowest precedence)
//	seq    := star (';' star)*                  sequencing
//	star   := atom '*'*                         Kleene iteration
//	atom   := 'id' | 'drop' | 'dup'
//	        | 'filter' pred                     predicate filter
//	        | FIELD '=' NUM                     bare test (sugar for filter)
//	        | FIELD ':=' NUM                    assignment
//	        | '(' policy ')'
//	pred   := conj ('or' conj)*
//	conj   := unit ('and' unit)*
//	unit   := 'true' | 'false' | 'not' unit | FIELD '=' NUM | '(' pred ')'
//
// Parse(String(p)) yields a policy with the same semantics as p (and the
// same tree for the constructors in this package) — property-tested.

// ParsePolicy parses the concrete syntax.
func ParsePolicy(input string) (Policy, error) {
	p := &kparser{input: input}
	if err := p.lex(); err != nil {
		return nil, err
	}
	pol, err := p.policy()
	if err != nil {
		return nil, err
	}
	if !p.at(kEOF) {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return pol, nil
}

// ParsePred parses a predicate on its own.
func ParsePred(input string) (Pred, error) {
	p := &kparser{input: input}
	if err := p.lex(); err != nil {
		return nil, err
	}
	pr, err := p.pred()
	if err != nil {
		return nil, err
	}
	if !p.at(kEOF) {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return pr, nil
}

type kKind uint8

const (
	kEOF kKind = iota
	kIdent
	kNum
	kPlus
	kSemi
	kStar
	kAssign // :=
	kEq     // =
	kLParen
	kRParen
)

type ktok struct {
	kind kKind
	text string
	pos  int
}

type kparser struct {
	input string
	toks  []ktok
	pos   int
}

func (p *kparser) lex() error {
	i := 0
	in := p.input
	for i < len(in) {
		c := rune(in[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.HasPrefix(in[i:], ":="):
			p.toks = append(p.toks, ktok{kAssign, ":=", i})
			i += 2
		case c == '+':
			p.toks = append(p.toks, ktok{kPlus, "+", i})
			i++
		case c == ';':
			p.toks = append(p.toks, ktok{kSemi, ";", i})
			i++
		case c == '*':
			p.toks = append(p.toks, ktok{kStar, "*", i})
			i++
		case c == '=':
			p.toks = append(p.toks, ktok{kEq, "=", i})
			i++
		case c == '(':
			p.toks = append(p.toks, ktok{kLParen, "(", i})
			i++
		case c == ')':
			p.toks = append(p.toks, ktok{kRParen, ")", i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(in) && in[j] >= '0' && in[j] <= '9' {
				j++
			}
			p.toks = append(p.toks, ktok{kNum, in[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(in) && (unicode.IsLetter(rune(in[j])) || unicode.IsDigit(rune(in[j])) || in[j] == '_' || in[j] == '.') {
				j++
			}
			p.toks = append(p.toks, ktok{kIdent, in[i:j], i})
			i = j
		default:
			return fmt.Errorf("netkat: offset %d: unexpected character %q", i, c)
		}
	}
	p.toks = append(p.toks, ktok{kEOF, "", len(in)})
	return nil
}

func (p *kparser) peek() ktok      { return p.toks[p.pos] }
func (p *kparser) next() ktok      { t := p.toks[p.pos]; p.pos++; return t }
func (p *kparser) at(k kKind) bool { return p.peek().kind == k }

func (p *kparser) errf(format string, args ...any) error {
	return fmt.Errorf("netkat: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *kparser) expect(k kKind, what string) error {
	if !p.at(k) {
		return p.errf("expected %s, found %q", what, p.peek().text)
	}
	p.next()
	return nil
}

func (p *kparser) number() (uint64, error) {
	if !p.at(kNum) {
		return 0, p.errf("expected number, found %q", p.peek().text)
	}
	v, err := strconv.ParseUint(p.next().text, 10, 64)
	if err != nil {
		return 0, p.errf("bad number: %v", err)
	}
	return v, nil
}

func (p *kparser) policy() (Policy, error) {
	left, err := p.seq()
	if err != nil {
		return nil, err
	}
	for p.at(kPlus) {
		p.next()
		right, err := p.seq()
		if err != nil {
			return nil, err
		}
		left = Union{left, right}
	}
	return left, nil
}

func (p *kparser) seq() (Policy, error) {
	left, err := p.star()
	if err != nil {
		return nil, err
	}
	for p.at(kSemi) {
		p.next()
		right, err := p.star()
		if err != nil {
			return nil, err
		}
		left = SeqP{left, right}
	}
	return left, nil
}

func (p *kparser) star() (Policy, error) {
	a, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.at(kStar) {
		p.next()
		a = Star{a}
	}
	return a, nil
}

func (p *kparser) atom() (Policy, error) {
	switch {
	case p.at(kLParen):
		p.next()
		pol, err := p.policy()
		if err != nil {
			return nil, err
		}
		if err := p.expect(kRParen, "')'"); err != nil {
			return nil, err
		}
		return pol, nil
	case p.at(kIdent):
		word := p.next().text
		switch word {
		case "id":
			return Id(), nil
		case "drop":
			return Drop(), nil
		case "dup":
			return Dup{}, nil
		case "filter":
			pr, err := p.pred()
			if err != nil {
				return nil, err
			}
			return Filter{pr}, nil
		}
		// FIELD '=' NUM (bare test) or FIELD ':=' NUM (assignment).
		switch p.peek().kind {
		case kEq:
			p.next()
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			return Filter{Test(word, v)}, nil
		case kAssign:
			p.next()
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			return Assign{word, v}, nil
		default:
			return nil, p.errf("expected '=' or ':=' after field %q", word)
		}
	default:
		return nil, p.errf("expected a policy, found %q", p.peek().text)
	}
}

func (p *kparser) pred() (Pred, error) {
	left, err := p.conj()
	if err != nil {
		return nil, err
	}
	for p.at(kIdent) && p.peek().text == "or" {
		p.next()
		right, err := p.conj()
		if err != nil {
			return nil, err
		}
		left = POr{left, right}
	}
	return left, nil
}

func (p *kparser) conj() (Pred, error) {
	left, err := p.punit()
	if err != nil {
		return nil, err
	}
	for p.at(kIdent) && p.peek().text == "and" {
		p.next()
		right, err := p.punit()
		if err != nil {
			return nil, err
		}
		left = PAnd{left, right}
	}
	return left, nil
}

func (p *kparser) punit() (Pred, error) {
	switch {
	case p.at(kLParen):
		p.next()
		pr, err := p.pred()
		if err != nil {
			return nil, err
		}
		if err := p.expect(kRParen, "')'"); err != nil {
			return nil, err
		}
		return pr, nil
	case p.at(kIdent):
		word := p.next().text
		switch word {
		case "true":
			return PTrue{}, nil
		case "false":
			return PFalse{}, nil
		case "not":
			inner, err := p.punit()
			if err != nil {
				return nil, err
			}
			return PNot{inner}, nil
		}
		if err := p.expect(kEq, "'='"); err != nil {
			return nil, err
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		return PTest{word, v}, nil
	default:
		return nil, p.errf("expected a predicate, found %q", p.peek().text)
	}
}
