package netkat

import (
	"errors"
	"fmt"
)

// Trace semantics: a policy denotes a function from a history to a set of
// histories (Anderson et al., Fig. 3). Eval computes it by structural
// recursion; Star is the least fixpoint, computed by iterating until the
// result set stops growing. Star fixpoints always terminate on finite
// inputs here because the reachable packet space from a concrete packet
// under a finite policy is finite; StepLimit guards against pathological
// field-value growth (e.g. unbounded counters encoded as assignments).

// StepLimit bounds Kleene-star iterations per evaluation.
const StepLimit = 10_000

// ErrStarDiverges is returned when a Kleene star fails to reach a fixpoint
// within StepLimit iterations.
var ErrStarDiverges = errors.New("netkat: star iteration exceeded step limit")

// Eval applies policy to a single history.
func Eval(pol Policy, h History) (*HistorySet, error) {
	switch n := pol.(type) {
	case Filter:
		if n.Pred.Eval(h.Head()) {
			return NewHistorySet(h), nil
		}
		return NewHistorySet(), nil
	case Assign:
		return NewHistorySet(h.withHead(h.Head().With(n.Field, n.Value))), nil
	case Dup:
		return NewHistorySet(h.dup()), nil
	case Union:
		l, err := Eval(n.L, h)
		if err != nil {
			return nil, err
		}
		r, err := Eval(n.R, h)
		if err != nil {
			return nil, err
		}
		l.AddAll(r)
		return l, nil
	case SeqP:
		mid, err := Eval(n.L, h)
		if err != nil {
			return nil, err
		}
		return EvalSet(n.R, mid)
	case Star:
		return evalStar(n.P, h)
	default:
		return nil, fmt.Errorf("netkat: unknown policy %T", pol)
	}
}

// EvalSet applies policy pointwise to a set of histories and unions the
// results.
func EvalSet(pol Policy, hs *HistorySet) (*HistorySet, error) {
	out := NewHistorySet()
	for _, h := range hs.Histories() {
		r, err := Eval(pol, h)
		if err != nil {
			return nil, err
		}
		out.AddAll(r)
	}
	return out, nil
}

// evalStar computes the least fixpoint of h ∪ p(h) ∪ p(p(h)) ∪ …
func evalStar(p Policy, h History) (*HistorySet, error) {
	result := NewHistorySet(h)
	frontier := NewHistorySet(h)
	for i := 0; i < StepLimit; i++ {
		next, err := EvalSet(p, frontier)
		if err != nil {
			return nil, err
		}
		fresh := NewHistorySet()
		for _, nh := range next.Histories() {
			if result.Add(nh) {
				fresh.Add(nh)
			}
		}
		if fresh.Len() == 0 {
			return result, nil
		}
		frontier = fresh
	}
	return nil, ErrStarDiverges
}

// EvalPacket is a convenience wrapper evaluating pol on a fresh
// single-packet history.
func EvalPacket(pol Policy, p Packet) (*HistorySet, error) {
	return Eval(pol, NewHistory(p))
}

// Domain describes finite value ranges for fields, enabling exhaustive
// equivalence checking over the induced packet space. Fields not listed
// are fixed at zero.
type Domain map[string][]uint64

// Packets enumerates every packet over the domain (cartesian product).
func (d Domain) Packets() []Packet {
	fields := make([]string, 0, len(d))
	for f := range d {
		fields = append(fields, f)
	}
	// Sort for determinism.
	for i := range fields {
		for j := i + 1; j < len(fields); j++ {
			if fields[j] < fields[i] {
				fields[i], fields[j] = fields[j], fields[i]
			}
		}
	}
	out := []Packet{{}}
	for _, f := range fields {
		var next []Packet
		for _, base := range out {
			for _, v := range d[f] {
				next = append(next, base.With(f, v))
			}
		}
		out = next
	}
	return out
}

// EquivalentOn reports whether p and q produce identical history sets for
// every packet in the domain — a complete equivalence check for programs
// whose behaviour depends only on the domain fields.
func EquivalentOn(d Domain, p, q Policy) (bool, Packet, error) {
	for _, pkt := range d.Packets() {
		rp, err := EvalPacket(p, pkt)
		if err != nil {
			return false, pkt, err
		}
		rq, err := EvalPacket(q, pkt)
		if err != nil {
			return false, pkt, err
		}
		if !rp.Equal(rq) {
			return false, pkt, nil
		}
	}
	return true, nil, nil
}
