package netkat

import (
	"testing"
	"testing/quick"
)

func TestParsePolicyBasics(t *testing.T) {
	cases := map[string]Policy{
		"id":                             Id(),
		"drop":                           Drop(),
		"dup":                            Dup{},
		"pt:=2":                          Mod(FPort, 2),
		"sw=1":                           F(Test(FSwitch, 1)),
		"filter sw=1":                    F(Test(FSwitch, 1)),
		"filter true":                    Id(),
		"id ; dup":                       Then(Id(), Dup{}),
		"id + drop":                      Plus(Id(), Drop()),
		"id*":                            Iterate(Id()),
		"(id + drop)*":                   Iterate(Plus(Id(), Drop())),
		"id**":                           Iterate(Iterate(Id())),
		"sw=1 ; pt:=2":                   Then(F(Test(FSwitch, 1)), Mod(FPort, 2)),
		"filter not sw=1":                F(Not(Test(FSwitch, 1))),
		"filter sw=1 and pt=2":           F(And(Test(FSwitch, 1), Test(FPort, 2))),
		"filter sw=1 or sw=2":            F(Or(Test(FSwitch, 1), Test(FSwitch, 2))),
		"filter (sw=1 or sw=2) and pt=3": F(And(Or(Test(FSwitch, 1), Test(FSwitch, 2)), Test(FPort, 3))),
	}
	for src, want := range cases {
		got, err := ParsePolicy(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got.String() != want.String() {
			t.Errorf("%q parsed to %q, want %q", src, got, want)
		}
	}
}

func TestParsePolicyPrecedence(t *testing.T) {
	// ';' binds tighter than '+'; '*' tighter than ';'.
	got, err := ParsePolicy("id + drop ; dup*")
	if err != nil {
		t.Fatal(err)
	}
	want := Plus(Id(), Then(Drop(), Iterate(Dup{})))
	if got.String() != want.String() {
		t.Fatalf("precedence: %q vs %q", got, want)
	}
}

func TestParsePredStandalone(t *testing.T) {
	pr, err := ParsePred("not (sw=1 or sw=2)")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Eval(Packet{FSwitch: 1}) || !pr.Eval(Packet{FSwitch: 3}) {
		t.Fatalf("pred semantics: %v", pr)
	}
}

func TestParseErrorsNetKAT(t *testing.T) {
	bad := []string{
		"", "(", "(id", "id +", "id ;", "filter", "pt:=", "pt:=x", "sw=",
		"sw", "filter sw", "filter not", "id id", "$", "filter sw=1 or",
		"99", "pt:=18446744073709551616x",
	}
	for _, src := range bad {
		if _, err := ParsePolicy(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
	if _, err := ParsePred("sw=1 sw=2"); err == nil {
		t.Error("trailing pred parsed")
	}
	if _, err := ParsePred("filter"); err == nil {
		t.Error("keyword as pred parsed")
	}
}

// Property: String → Parse round-trips to an identical rendering and an
// equivalent policy on a small domain.
func TestPropertyPolicyStringRoundTrip(t *testing.T) {
	d := Domain{FSwitch: {0, 1}, FPort: {0, 1}}
	var build func(r uint64, depth int) Policy
	build = func(r uint64, depth int) Policy {
		if depth <= 0 {
			switch r % 6 {
			case 0:
				return Id()
			case 1:
				return Drop()
			case 2:
				// Dup is excluded here: dup under * diverges in trace
				// semantics (each iteration lengthens the history), so
				// equivalence checking cannot terminate. Dup's own
				// round-trip is covered by TestParsePolicyBasics.
				return Id()
			case 3:
				return Mod(FPort, r%2)
			case 4:
				return F(Test(FSwitch, r%2))
			default:
				return F(Not(And(Test(FSwitch, r%2), Test(FPort, (r>>1)%2))))
			}
		}
		l, rr := build(r/3, depth-1), build(r/7, depth-1)
		switch r % 4 {
		case 0:
			return Union{l, rr}
		case 1:
			return SeqP{l, rr}
		case 2:
			return Star{l}
		default:
			return l
		}
	}
	f := func(r uint64, dRaw uint8) bool {
		pol := build(r, int(dRaw%4))
		parsed, err := ParsePolicy(pol.String())
		if err != nil {
			t.Logf("%q: %v", pol, err)
			return false
		}
		if parsed.String() != pol.String() {
			t.Logf("render drift: %q vs %q", parsed, pol)
			return false
		}
		eq, w, err := EquivalentOn(d, pol, parsed)
		if err != nil || !eq {
			t.Logf("semantic drift at %v: %v", w, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
