package netkat

import (
	"strings"
	"testing"
	"testing/quick"
)

func pk(kv ...uint64) Packet {
	p := Packet{}
	fields := []string{FSwitch, FPort, FSrc, FDst}
	for i := 0; i+1 < len(kv); i += 2 {
		p[fields[kv[i]]] = kv[i+1]
	}
	return p
}

func TestPacketBasics(t *testing.T) {
	p := Packet{FSwitch: 1, FPort: 2}
	if p.Get(FSwitch) != 1 || p.Get("absent") != 0 {
		t.Fatal("get")
	}
	q := p.With(FPort, 3)
	if p.Get(FPort) != 2 || q.Get(FPort) != 3 {
		t.Fatal("with mutated original")
	}
	if !p.Equal(Packet{FSwitch: 1, FPort: 2, FSrc: 0}) {
		t.Fatal("zero fields must not affect equality")
	}
	if p.Equal(q) {
		t.Fatal("distinct packets equal")
	}
	if got := (Packet{}).String(); got != "<zero>" {
		t.Fatalf("zero string: %q", got)
	}
	if !strings.Contains(p.String(), "sw=1") {
		t.Fatalf("string: %q", p.String())
	}
}

func TestHistoryOps(t *testing.T) {
	h := NewHistory(Packet{FSwitch: 1})
	h2 := h.dup()
	if len(h2) != 2 || !h2[0].Equal(h2[1]) {
		t.Fatalf("dup: %v", h2)
	}
	h3 := h2.withHead(Packet{FSwitch: 9})
	if h3.Head().Get(FSwitch) != 9 || h2.Head().Get(FSwitch) != 1 {
		t.Fatal("withHead aliasing")
	}
	if !strings.Contains(h2.String(), ">>") {
		t.Fatalf("history string: %q", h2.String())
	}
}

func TestHistorySet(t *testing.T) {
	a := NewHistory(Packet{FSwitch: 1})
	b := NewHistory(Packet{FSwitch: 2})
	s := NewHistorySet(a, b, a)
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.Equal(NewHistorySet(b, a)) {
		t.Fatal("order-independent equality failed")
	}
	if s.Equal(NewHistorySet(a)) {
		t.Fatal("unequal sets equal")
	}
	if len(s.Heads()) != 2 {
		t.Fatal("heads")
	}
}

func TestPredicateEval(t *testing.T) {
	p := Packet{FSwitch: 1, FPort: 2}
	cases := []struct {
		pred Pred
		want bool
	}{
		{True(), true},
		{False(), false},
		{Test(FSwitch, 1), true},
		{Test(FSwitch, 2), false},
		{Not(Test(FSwitch, 2)), true},
		{And(Test(FSwitch, 1), Test(FPort, 2)), true},
		{And(Test(FSwitch, 1), Test(FPort, 3)), false},
		{Or(Test(FSwitch, 9), Test(FPort, 2)), true},
		{Or(), false},
		{And(), true},
	}
	for i, c := range cases {
		if c.pred.Eval(p) != c.want {
			t.Errorf("case %d (%v): got %v", i, c.pred, !c.want)
		}
	}
}

func TestEvalFilterAssign(t *testing.T) {
	h := NewHistory(Packet{FSwitch: 1})
	res, err := Eval(F(Test(FSwitch, 1)), h)
	if err != nil || res.Len() != 1 {
		t.Fatalf("pass filter: %v %v", res, err)
	}
	res, _ = Eval(F(Test(FSwitch, 2)), h)
	if res.Len() != 0 {
		t.Fatal("drop filter passed")
	}
	res, _ = Eval(Mod(FPort, 7), h)
	if res.Histories()[0].Head().Get(FPort) != 7 {
		t.Fatal("assign")
	}
}

func TestEvalDupRecordsTrace(t *testing.T) {
	pol := Then(Dup{}, Mod(FPort, 2), Dup{})
	res, _ := EvalPacket(pol, Packet{FPort: 1})
	hs := res.Histories()
	if len(hs) != 1 || len(hs[0]) != 3 {
		t.Fatalf("trace: %v", hs)
	}
	if hs[0][2].Get(FPort) != 1 || hs[0][1].Get(FPort) != 2 {
		t.Fatalf("trace contents: %v", hs[0])
	}
}

func TestEvalUnionBranches(t *testing.T) {
	pol := Plus(Mod(FPort, 1), Mod(FPort, 2))
	res, _ := EvalPacket(pol, Packet{})
	if res.Len() != 2 {
		t.Fatalf("union: %v", res.Histories())
	}
}

func TestEvalStarGeneratesClosure(t *testing.T) {
	// Star over "increment port up to 3 via tests".
	step := Plus(
		Then(F(Test(FPort, 0)), Mod(FPort, 1)),
		Then(F(Test(FPort, 1)), Mod(FPort, 2)),
	)
	res, err := EvalPacket(Iterate(step), Packet{})
	if err != nil {
		t.Fatal(err)
	}
	// Heads: pt=0 (zero iterations), 1, 2.
	if len(res.Heads()) != 3 {
		t.Fatalf("star closure: %v", res.Heads())
	}
}

func TestStarDivergenceGuard(t *testing.T) {
	// A policy that fabricates ever-new values cannot exist in NetKAT
	// (assignments are constant), so star always converges; verify a
	// large but convergent chain completes.
	var pols []Policy
	for i := uint64(0); i < 100; i++ {
		pols = append(pols, Then(F(Test(FPort, i)), Mod(FPort, i+1)))
	}
	res, err := EvalPacket(Iterate(Plus(pols...)), Packet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Heads()) != 101 {
		t.Fatalf("chain closure: %d", len(res.Heads()))
	}
}

func TestEquivalenceAxioms(t *testing.T) {
	// Spot-check KAT axioms over a small domain.
	d := Domain{FSwitch: {0, 1}, FPort: {0, 1, 2}}
	a := Then(F(Test(FSwitch, 0)), Mod(FPort, 1))
	b := Mod(FPort, 2)
	c := F(Test(FPort, 2))

	cases := []struct {
		name string
		p, q Policy
	}{
		{"union-comm", Plus(a, b), Plus(b, a)},
		{"union-idem", Plus(a, a), a},
		{"seq-assoc", Then(a, Then(b, c)), Then(Then(a, b), c)},
		{"dist-l", Then(a, Plus(b, c)), Plus(Then(a, b), Then(a, c))},
		{"id-l", Then(Id(), a), a},
		{"drop-l", Then(Drop(), a), Drop()},
		{"star-unroll", Iterate(a), Plus(Id(), Then(a, Iterate(a)))},
		{"filter-and", F(And(Test(FSwitch, 0), Test(FPort, 1))), Then(F(Test(FSwitch, 0)), F(Test(FPort, 1)))},
		{"assign-test", Then(Mod(FPort, 2), c), Mod(FPort, 2)},
	}
	for _, tc := range cases {
		eq, witness, err := EquivalentOn(d, tc.p, tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !eq {
			t.Errorf("%s: not equivalent, witness %v", tc.name, witness)
		}
	}
}

func TestInequivalenceDetected(t *testing.T) {
	d := Domain{FPort: {0, 1}}
	eq, witness, err := EquivalentOn(d, Mod(FPort, 1), Id())
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("distinct policies judged equivalent")
	}
	if witness == nil {
		t.Fatal("no witness")
	}
}

func TestDomainPackets(t *testing.T) {
	d := Domain{FSwitch: {1, 2}, FPort: {0, 1, 2}}
	pkts := d.Packets()
	if len(pkts) != 6 {
		t.Fatalf("cartesian size %d", len(pkts))
	}
	seen := map[string]bool{}
	for _, p := range pkts {
		if seen[p.key()] {
			t.Fatal("duplicate packet")
		}
		seen[p.key()] = true
	}
}

// A 3-switch line topology: h1 -(sw1)-(sw2)-(sw3)- h2.
// Port 1 faces "left", port 2 faces "right" on every switch.
func lineNet() (prog, topo Policy) {
	topo = TopologyPolicy([]Link{
		{1, 2, 2, 1}, {2, 2, 3, 1}, // rightward links
		{3, 1, 2, 2}, {2, 1, 1, 2}, // leftward links (unused here)
	})
	rules := []Rule{{Match: Test(FDst, 2), OutPort: 2}}
	prog = Plus(SwitchProgram(1, rules), SwitchProgram(2, rules), SwitchProgram(3, rules))
	return prog, topo
}

func TestReachabilityLine(t *testing.T) {
	prog, topo := lineNet()
	in := And(Test(FSwitch, 1), Test(FPort, 1))
	out := Test(FSwitch, 3)
	pkt := Packet{FSwitch: 1, FPort: 1, FDst: 2}
	ok, err := Reachable(pkt, in, out, prog, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("dst 2 unreachable over line")
	}
	// A packet for an unknown destination is dropped at sw1.
	ok, _ = Reachable(Packet{FSwitch: 1, FPort: 1, FDst: 9}, in, out, prog, topo)
	if ok {
		t.Fatal("undeliverable packet reached egress")
	}
	// Ingress must gate.
	ok, _ = Reachable(Packet{FSwitch: 2, FPort: 1, FDst: 2}, in, out, prog, topo)
	if ok {
		t.Fatal("packet not at ingress accepted")
	}
}

func TestPathsLine(t *testing.T) {
	prog, topo := lineNet()
	in := And(Test(FSwitch, 1), Test(FPort, 1))
	out := Test(FSwitch, 3)
	paths, err := Paths(Packet{FSwitch: 1, FPort: 1, FDst: 2}, in, out, prog, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths: %v", paths)
	}
	sws := paths[0].Switches()
	want := []uint64{1, 2, 3}
	if len(sws) != 3 || sws[0] != want[0] || sws[1] != want[1] || sws[2] != want[2] {
		t.Fatalf("path switches %v, want %v", sws, want)
	}
	if !strings.Contains(paths[0].String(), "sw1") {
		t.Fatalf("path string %q", paths[0])
	}
}

func TestPathsMultipath(t *testing.T) {
	// sw1 forwards out both port 2 and port 3; two disjoint next hops
	// lead to sw4.
	topo := TopologyPolicy([]Link{
		{1, 2, 2, 1}, {1, 3, 3, 1}, {2, 2, 4, 1}, {3, 2, 4, 2},
	})
	prog := Plus(
		SwitchProgram(1, []Rule{{Match: True(), OutPort: 2}, {Match: True(), OutPort: 3}}),
		SwitchProgram(2, []Rule{{Match: True(), OutPort: 2}}),
		SwitchProgram(3, []Rule{{Match: True(), OutPort: 2}}),
		SwitchProgram(4, []Rule{{Match: True(), OutPort: 9}}),
	)
	in := And(Test(FSwitch, 1), Test(FPort, 1))
	out := Test(FSwitch, 4)
	paths, err := Paths(Packet{FSwitch: 1, FPort: 1}, in, out, prog, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want 2 paths, got %d: %v", len(paths), paths)
	}
	seen := map[uint64]bool{}
	for _, p := range paths {
		if len(p.Switches()) != 3 {
			t.Fatalf("path length: %v", p)
		}
		seen[p.Switches()[1]] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("middle hops: %v", seen)
	}
}

func TestSwitchProgramSetsFields(t *testing.T) {
	prog := SwitchProgram(1, []Rule{{
		Match:   Test(FDst, 5),
		Sets:    map[string]uint64{FVLAN: 42, FType: 7},
		OutPort: 3,
	}})
	res, _ := EvalPacket(prog, Packet{FSwitch: 1, FDst: 5})
	heads := res.Heads()
	if len(heads) != 1 || heads[0].Get(FVLAN) != 42 || heads[0].Get(FType) != 7 || heads[0].Get(FPort) != 3 {
		t.Fatalf("rewrite: %v", heads)
	}
	// Wrong switch: dropped.
	res, _ = EvalPacket(prog, Packet{FSwitch: 2, FDst: 5})
	if res.Len() != 0 {
		t.Fatal("rule fired on wrong switch")
	}
}

func TestPolicyStrings(t *testing.T) {
	pol := Then(F(And(Test(FSwitch, 1), Not(Test(FPort, 2)))), Plus(Mod(FPort, 1), Dup{}), Iterate(Id()))
	s := pol.String()
	for _, want := range []string{"filter", "sw=1", "not", "pt:=1", "dup", "*", "+", ";"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	if Or(Test(FPort, 1), Test(FPort, 2)).String() == "" {
		t.Error("empty or-string")
	}
}

// Property: filters are idempotent — filter p ; filter p ≡ filter p.
func TestPropertyFilterIdempotent(t *testing.T) {
	d := Domain{FSwitch: {0, 1, 2}, FPort: {0, 1}}
	f := func(field bool, v uint64) bool {
		fl := FSwitch
		if field {
			fl = FPort
		}
		p := F(Test(fl, v%3))
		eq, _, err := EquivalentOn(d, Then(p, p), p)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: assignment overwrites — f:=a ; f:=b ≡ f:=b.
func TestPropertyAssignOverwrite(t *testing.T) {
	d := Domain{FPort: {0, 1, 2, 3}}
	f := func(a, b uint64) bool {
		p := Then(Mod(FPort, a%4), Mod(FPort, b%4))
		q := Mod(FPort, b%4)
		eq, _, err := EquivalentOn(d, p, q)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: star of a filter is the identity — (filter p)* ≡ id.
func TestPropertyStarFilterIsId(t *testing.T) {
	d := Domain{FSwitch: {0, 1}}
	f := func(v uint64) bool {
		eq, _, err := EquivalentOn(d, Iterate(F(Test(FSwitch, v%2))), Id())
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
