// Package rats implements the remote-attestation message flow of the
// paper's Fig. 1, following the IETF RATS architecture roles: a Relying
// Party challenges an Attester with a nonce and a claim specification,
// the Attester answers with evidence, an Appraiser verifies the evidence
// and produces an attestation result. Messages have a compact binary wire
// form and travel over any io.ReadWriter — the package provides in-memory
// pipes for simulations and TCP framing for the cmd/ daemons.
package rats

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"pera/internal/telemetry"
)

// MsgType discriminates protocol messages.
type MsgType uint8

const (
	// MsgChallenge: RP → Attester. Carries nonce and claim spec.
	MsgChallenge MsgType = iota + 1
	// MsgEvidence: Attester → RP/Appraiser. Body is encoded evidence.
	MsgEvidence
	// MsgAppraise: RP → Appraiser. Body is encoded evidence to verify.
	MsgAppraise
	// MsgResult: Appraiser → requester. Body is an encoded certificate.
	MsgResult
	// MsgRetrieve: RP2 → Appraiser. Asks for a stored certificate by
	// nonce (the out-of-band variant's retrieve(n)).
	MsgRetrieve
	// MsgError carries a failure reason in Body.
	MsgError
	// MsgExec asks a place to execute a serialized Copland term:
	// Claims[0] is the place name, Claims[1] the term source, Body the
	// execution payload (parameters + input evidence). The response is a
	// MsgEvidence whose Body is the resulting evidence and whose Claims
	// carry the remote execution trace. Used by distributed Copland
	// evaluation (copland.ServeEnv / Env.AddRemotePlace).
	MsgExec
	// MsgSign asks a crypto-offload service to sign Body under the
	// identity named by Claims[0]; the response is a MsgResult whose
	// Body is the detached signature. Used by the disaggregated
	// Sign/Verify stage (pera.SignerHandler / pera.RemoteSigner),
	// following the paper's note that evidence primitives "might be
	// remotely invoked by the programmable switch".
	MsgSign
)

var msgNames = map[MsgType]string{
	MsgChallenge: "challenge", MsgEvidence: "evidence", MsgAppraise: "appraise",
	MsgResult: "result", MsgRetrieve: "retrieve", MsgError: "error",
	MsgExec: "exec", MsgSign: "sign",
}

func (t MsgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is the single wire envelope for all protocol messages. Fields
// unused by a type are left empty.
type Message struct {
	Type    MsgType
	Session uint64   // correlates request/response pairs
	Nonce   []byte   // freshness; also the retrieval key for MsgRetrieve
	Claims  []string // claim spec for challenges (e.g. "program","tables")
	Body    []byte   // evidence encoding, certificate encoding, or reason

	// Trace is the optional distributed-tracing context: the sender's
	// span, which the receiver parents its spans under so one RATS
	// exchange forms one trace across the socket. On the wire it rides
	// the tagged trailer section — absent entirely on pre-trace frames.
	Trace *TraceContext
	// Ext preserves unknown tagged trailer fields across a decode/encode
	// round trip, so this binary forwards fields a future peer defined.
	Ext []ExtField
}

// TraceContext is the wire trace-propagation field (tag extTagTrace):
// 16-byte trace ID, 8-byte sender span ID, and a flags byte whose low
// bit mirrors the sender's sampling decision. IDs are carried here in
// the telemetry layer's lowercase-hex form.
type TraceContext struct {
	TraceID string // 32 hex chars
	SpanID  string // 16 hex chars
	Sampled bool
}

// ExtField is one unrecognized tagged trailer field, kept verbatim.
type ExtField struct {
	Tag   uint8
	Value []byte
}

// Trailer field tags. Tags are a single byte; unknown tags are carried
// through Ext, so the space can grow without breaking old decoders.
const extTagTrace uint8 = 1

const traceWireLen = 16 + 8 + 1

func (tc *TraceContext) wire() []byte {
	v := make([]byte, traceWireLen)
	hexInto(v[0:16], tc.TraceID)
	hexInto(v[16:24], tc.SpanID)
	if tc.Sampled {
		v[24] = 1
	}
	return v
}

// hexInto fills dst from a hex string of exactly the right width;
// malformed IDs encode as zeros rather than corrupting the frame.
func hexInto(dst []byte, s string) {
	if b, err := hex.DecodeString(s); err == nil && len(b) == len(dst) {
		copy(dst, b)
	}
}

func parseTraceContext(v []byte) (*TraceContext, error) {
	if len(v) != traceWireLen {
		return nil, fmt.Errorf("%w: trace context length %d", ErrBadMessage, len(v))
	}
	return &TraceContext{
		TraceID: hex.EncodeToString(v[0:16]),
		SpanID:  hex.EncodeToString(v[16:24]),
		Sampled: v[24]&1 == 1,
	}, nil
}

// Context returns the propagated context in the telemetry layer's form
// (zero when the frame carried none), ready to parent local spans.
func (m *Message) Context() telemetry.SpanContext {
	if m.Trace == nil {
		return telemetry.SpanContext{}
	}
	return telemetry.SpanContext{TraceID: m.Trace.TraceID, SpanID: m.Trace.SpanID}
}

// SetContext stamps a local span context onto the outgoing message.
// Invalid (unsampled) contexts are a no-op, keeping the frame trailer
// absent on untraced flows.
func (m *Message) SetContext(ctx telemetry.SpanContext) {
	if !ctx.Valid() {
		return
	}
	m.Trace = &TraceContext{TraceID: ctx.TraceID, SpanID: ctx.SpanID, Sampled: true}
}

// FlowID names a message's flow for tracing and sampling: the hex of
// its nonce, matching the switch's flow IDs, or "-" when nonceless.
func FlowID(nonce []byte) string {
	if len(nonce) == 0 {
		return "-"
	}
	return hex.EncodeToString(nonce)
}

// Wire format limits: one message may not exceed MaxMessageSize on the
// wire, bounding allocation on receipt.
const MaxMessageSize = 4 << 20

// Errors from codec and transport.
var (
	ErrMessageTooLarge = errors.New("rats: message exceeds size limit")
	ErrBadMessage      = errors.New("rats: malformed message")
)

// Encode serializes m to its wire form (excluding the outer length
// frame, which WriteMessage adds).
func Encode(m *Message) []byte {
	var b []byte
	b = append(b, byte(m.Type))
	b = binary.BigEndian.AppendUint64(b, m.Session)
	b = appendLV(b, m.Nonce)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Claims)))
	for _, c := range m.Claims {
		b = appendLV(b, []byte(c))
	}
	b = appendLV(b, m.Body)
	if m.Trace != nil {
		b = append(b, extTagTrace)
		b = appendLV(b, m.Trace.wire())
	}
	for _, e := range m.Ext {
		if e.Tag == extTagTrace {
			continue // the canonical Trace field owns this tag
		}
		b = append(b, e.Tag)
		b = appendLV(b, e.Value)
	}
	return b
}

func appendLV(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Decode parses a wire-form message.
func Decode(data []byte) (*Message, error) {
	d := &lvReader{buf: data}
	tb, err := d.byte()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: MsgType(tb)}
	if m.Type < MsgChallenge || m.Type > MsgSign {
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, tb)
	}
	if m.Session, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Nonce, err = d.lv(); err != nil {
		return nil, err
	}
	nclaims, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nclaims > 1024 {
		return nil, fmt.Errorf("%w: %d claims", ErrBadMessage, nclaims)
	}
	for i := uint32(0); i < nclaims; i++ {
		c, err := d.lv()
		if err != nil {
			return nil, err
		}
		m.Claims = append(m.Claims, string(c))
	}
	if m.Body, err = d.lv(); err != nil {
		return nil, err
	}
	// Optional tagged trailer fields: [tag u8][u32 len][value]... Known
	// tags decode into their Message fields; unknown tags are preserved
	// in Ext. Pre-trailer frames end exactly at the Body, so old peers'
	// messages decode unchanged, and truncated trailers still error.
	for d.off < len(data) {
		tag, err := d.byte()
		if err != nil {
			return nil, err
		}
		v, err := d.lv()
		if err != nil {
			return nil, err
		}
		switch tag {
		case extTagTrace:
			if m.Trace, err = parseTraceContext(v); err != nil {
				return nil, err
			}
		default:
			m.Ext = append(m.Ext, ExtField{Tag: tag, Value: v})
		}
	}
	return m, nil
}

type lvReader struct {
	buf []byte
	off int
}

func (r *lvReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *lvReader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *lvReader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *lvReader) lv() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	if r.off+int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated field", ErrBadMessage)
	}
	v := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return v, nil
}

// Conn frames messages over a byte stream: u32 big-endian length followed
// by the encoded message. Reads and writes are independently locked, so
// one goroutine may read while another writes.
type Conn struct {
	cmu sync.Mutex // serializes whole Call exchanges
	rmu sync.Mutex
	wmu sync.Mutex
	r   *bufio.Reader
	w   io.Writer
	c   io.Closer

	tracer *telemetry.FlowTracer // optional: auto-inject trace context
}

// NewConn wraps a stream. If rw implements io.Closer, Close closes it.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	return &Conn{r: bufio.NewReader(rw), w: rw, c: c}
}

// SetTracer arms automatic trace-context injection: outgoing messages
// carrying a nonce but no explicit context get one derived from the
// nonce's flow (when that flow is sampled). Callers that record their
// own spans stamp contexts explicitly via SetContext, which wins. Set
// before the Conn is shared between goroutines.
func (c *Conn) SetTracer(tr *telemetry.FlowTracer) { c.tracer = tr }

// Write sends one message.
func (c *Conn) Write(m *Message) error {
	if c.tracer != nil && m.Trace == nil && len(m.Nonce) > 0 {
		m.SetContext(c.tracer.NewContext(FlowID(m.Nonce)))
	}
	data := Encode(m)
	if len(data) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(data)
	return err
}

// Read receives one message.
func (c *Conn) Read() (*Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Close closes the underlying stream when it supports closing.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Call writes a request and reads one response — the client half of a
// request/response exchange. The protocol has no response correlation
// beyond ordering, so Call serializes the whole exchange: concurrent
// Calls on one Conn (e.g. parallel Copland branches sharing a remote
// place) queue rather than stealing each other's responses.
func (c *Conn) Call(req *Message) (*Message, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if err := c.Write(req); err != nil {
		return nil, err
	}
	resp, err := c.Read()
	if err != nil {
		return nil, err
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("rats: remote error: %s", resp.Body)
	}
	return resp, nil
}

// Handler services one request message, returning the response.
type Handler func(*Message) *Message

// Serve reads requests from conn and writes back h's responses until the
// connection fails (io.EOF on orderly shutdown returns nil).
func Serve(conn *Conn, h Handler) error {
	for {
		req, err := conn.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp := h(req)
		if resp == nil {
			resp = &Message{Type: MsgError, Session: req.Session, Body: []byte("no response")}
		}
		if resp.Trace == nil && req.Trace != nil {
			// Echo the requester's context so its next hop (e.g. an RP
			// forwarding evidence to the appraiser) stays in the trace.
			resp.Trace = req.Trace
		}
		if err := conn.Write(resp); err != nil {
			return err
		}
	}
}

// ListenAndServe accepts TCP connections on addr, servicing each with h
// in its own goroutine. It returns the listener so callers can close it
// and the bound address (useful with ":0").
func ListenAndServe(addr string, h Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_ = Serve(NewConn(c), h)
			}()
		}
	}()
	return ln, nil
}

// Dial connects to a rats TCP endpoint.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Pipe returns two in-memory connected Conns, for simulations.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
