// Package rats implements the remote-attestation message flow of the
// paper's Fig. 1, following the IETF RATS architecture roles: a Relying
// Party challenges an Attester with a nonce and a claim specification,
// the Attester answers with evidence, an Appraiser verifies the evidence
// and produces an attestation result. Messages have a compact binary wire
// form and travel over any io.ReadWriter — the package provides in-memory
// pipes for simulations and TCP framing for the cmd/ daemons.
package rats

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MsgType discriminates protocol messages.
type MsgType uint8

const (
	// MsgChallenge: RP → Attester. Carries nonce and claim spec.
	MsgChallenge MsgType = iota + 1
	// MsgEvidence: Attester → RP/Appraiser. Body is encoded evidence.
	MsgEvidence
	// MsgAppraise: RP → Appraiser. Body is encoded evidence to verify.
	MsgAppraise
	// MsgResult: Appraiser → requester. Body is an encoded certificate.
	MsgResult
	// MsgRetrieve: RP2 → Appraiser. Asks for a stored certificate by
	// nonce (the out-of-band variant's retrieve(n)).
	MsgRetrieve
	// MsgError carries a failure reason in Body.
	MsgError
	// MsgExec asks a place to execute a serialized Copland term:
	// Claims[0] is the place name, Claims[1] the term source, Body the
	// execution payload (parameters + input evidence). The response is a
	// MsgEvidence whose Body is the resulting evidence and whose Claims
	// carry the remote execution trace. Used by distributed Copland
	// evaluation (copland.ServeEnv / Env.AddRemotePlace).
	MsgExec
	// MsgSign asks a crypto-offload service to sign Body under the
	// identity named by Claims[0]; the response is a MsgResult whose
	// Body is the detached signature. Used by the disaggregated
	// Sign/Verify stage (pera.SignerHandler / pera.RemoteSigner),
	// following the paper's note that evidence primitives "might be
	// remotely invoked by the programmable switch".
	MsgSign
)

var msgNames = map[MsgType]string{
	MsgChallenge: "challenge", MsgEvidence: "evidence", MsgAppraise: "appraise",
	MsgResult: "result", MsgRetrieve: "retrieve", MsgError: "error",
	MsgExec: "exec", MsgSign: "sign",
}

func (t MsgType) String() string {
	if n, ok := msgNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is the single wire envelope for all protocol messages. Fields
// unused by a type are left empty.
type Message struct {
	Type    MsgType
	Session uint64   // correlates request/response pairs
	Nonce   []byte   // freshness; also the retrieval key for MsgRetrieve
	Claims  []string // claim spec for challenges (e.g. "program","tables")
	Body    []byte   // evidence encoding, certificate encoding, or reason
}

// Wire format limits: one message may not exceed MaxMessageSize on the
// wire, bounding allocation on receipt.
const MaxMessageSize = 4 << 20

// Errors from codec and transport.
var (
	ErrMessageTooLarge = errors.New("rats: message exceeds size limit")
	ErrBadMessage      = errors.New("rats: malformed message")
)

// Encode serializes m to its wire form (excluding the outer length
// frame, which WriteMessage adds).
func Encode(m *Message) []byte {
	var b []byte
	b = append(b, byte(m.Type))
	b = binary.BigEndian.AppendUint64(b, m.Session)
	b = appendLV(b, m.Nonce)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Claims)))
	for _, c := range m.Claims {
		b = appendLV(b, []byte(c))
	}
	b = appendLV(b, m.Body)
	return b
}

func appendLV(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Decode parses a wire-form message.
func Decode(data []byte) (*Message, error) {
	d := &lvReader{buf: data}
	tb, err := d.byte()
	if err != nil {
		return nil, err
	}
	m := &Message{Type: MsgType(tb)}
	if m.Type < MsgChallenge || m.Type > MsgSign {
		return nil, fmt.Errorf("%w: type %d", ErrBadMessage, tb)
	}
	if m.Session, err = d.u64(); err != nil {
		return nil, err
	}
	if m.Nonce, err = d.lv(); err != nil {
		return nil, err
	}
	nclaims, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nclaims > 1024 {
		return nil, fmt.Errorf("%w: %d claims", ErrBadMessage, nclaims)
	}
	for i := uint32(0); i < nclaims; i++ {
		c, err := d.lv()
		if err != nil {
			return nil, err
		}
		m.Claims = append(m.Claims, string(c))
	}
	if m.Body, err = d.lv(); err != nil {
		return nil, err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadMessage)
	}
	return m, nil
}

type lvReader struct {
	buf []byte
	off int
}

func (r *lvReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *lvReader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *lvReader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrBadMessage)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *lvReader) lv() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	if r.off+int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated field", ErrBadMessage)
	}
	v := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return v, nil
}

// Conn frames messages over a byte stream: u32 big-endian length followed
// by the encoded message. Reads and writes are independently locked, so
// one goroutine may read while another writes.
type Conn struct {
	cmu sync.Mutex // serializes whole Call exchanges
	rmu sync.Mutex
	wmu sync.Mutex
	r   *bufio.Reader
	w   io.Writer
	c   io.Closer
}

// NewConn wraps a stream. If rw implements io.Closer, Close closes it.
func NewConn(rw io.ReadWriter) *Conn {
	c, _ := rw.(io.Closer)
	return &Conn{r: bufio.NewReader(rw), w: rw, c: c}
}

// Write sends one message.
func (c *Conn) Write(m *Message) error {
	data := Encode(m)
	if len(data) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(data)
	return err
}

// Read receives one message.
func (c *Conn) Read() (*Message, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return Decode(buf)
}

// Close closes the underlying stream when it supports closing.
func (c *Conn) Close() error {
	if c.c != nil {
		return c.c.Close()
	}
	return nil
}

// Call writes a request and reads one response — the client half of a
// request/response exchange. The protocol has no response correlation
// beyond ordering, so Call serializes the whole exchange: concurrent
// Calls on one Conn (e.g. parallel Copland branches sharing a remote
// place) queue rather than stealing each other's responses.
func (c *Conn) Call(req *Message) (*Message, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if err := c.Write(req); err != nil {
		return nil, err
	}
	resp, err := c.Read()
	if err != nil {
		return nil, err
	}
	if resp.Type == MsgError {
		return resp, fmt.Errorf("rats: remote error: %s", resp.Body)
	}
	return resp, nil
}

// Handler services one request message, returning the response.
type Handler func(*Message) *Message

// Serve reads requests from conn and writes back h's responses until the
// connection fails (io.EOF on orderly shutdown returns nil).
func Serve(conn *Conn, h Handler) error {
	for {
		req, err := conn.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp := h(req)
		if resp == nil {
			resp = &Message{Type: MsgError, Session: req.Session, Body: []byte("no response")}
		}
		if err := conn.Write(resp); err != nil {
			return err
		}
	}
}

// ListenAndServe accepts TCP connections on addr, servicing each with h
// in its own goroutine. It returns the listener so callers can close it
// and the bound address (useful with ":0").
func ListenAndServe(addr string, h Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				_ = Serve(NewConn(c), h)
			}()
		}
	}()
	return ln, nil
}

// Dial connects to a rats TCP endpoint.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Pipe returns two in-memory connected Conns, for simulations.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
