package rats_test

// Distributed-tracing end-to-end test: a relying party challenges the
// switch and appraises the evidence over two rats pipes, with SEPARATE
// tracers on each side — nothing shared but the wire — and the result
// must still be ONE trace: every span on every side carries the same
// flow-derived TraceID, the attester-side and appraiser-side envelope
// spans parent directly under the relying party's root span carried in
// the frame's trace-context field, and the audit ledger's records for
// the flow are stamped with the same trace_id.

import (
	"bytes"
	"testing"
	"time"

	"pera/internal/appraiser"
	"pera/internal/auditlog"
	"pera/internal/rats"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

func TestTraceCrossProcessSingleTrace(t *testing.T) {
	sw, a := provision(t)

	// Distinct tracers stand in for distinct processes: the only channel
	// between the attester's ring and the relying party's is the
	// trace-context field on the wire.
	swTracer := telemetry.NewFlowTracer(256)
	rpTracer := telemetry.NewFlowTracer(256)
	swTracer.SetSampleEvery(1)
	rpTracer.SetSampleEvery(1)
	sw.SetTracer(swTracer)
	a.SetTracer(rpTracer)

	// Audit ledgers on both sides, cross-checked against the trace below.
	var swLedger, rpLedger bytes.Buffer
	swAudit := auditlog.NewWriter(&swLedger, auditlog.Options{})
	rpAudit := auditlog.NewWriter(&rpLedger, auditlog.Options{})
	sw.SetAudit(swAudit)
	a.SetAudit(rpAudit)

	attRP, attSw := rats.Pipe()
	defer attRP.Close()
	go rats.Serve(attSw, sw.AttesterHandler())
	apprRP, apprSrv := rats.Pipe()
	defer apprRP.Close()
	go rats.Serve(apprSrv, a.Handler())

	nonce := rot.NewNonce()
	flow := rats.FlowID(nonce)
	wantTrace := telemetry.TraceIDFromFlow(flow)

	// The relying party roots the trace and sends its context with the
	// challenge; Conn.Write injects it because the conn has a tracer.
	attRP.SetTracer(rpTracer)
	root := rpTracer.NewContext(flow)
	if !root.Valid() {
		t.Fatal("flow not sampled at 1-in-1")
	}
	start := time.Now()

	evResp, err := attRP.Call(&rats.Message{
		Type: rats.MsgChallenge, Session: 1, Nonce: nonce,
		Trace:  &rats.TraceContext{TraceID: root.TraceID, SpanID: root.SpanID, Sampled: true},
		Claims: []string{"hardware", "program", "tables"},
	})
	if err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if evResp.Type != rats.MsgEvidence {
		t.Fatalf("evidence response: %+v", evResp)
	}
	// The attester echoes the trace context on the response so the next
	// hop can keep propagating it without re-deriving.
	if evResp.Trace == nil || evResp.Trace.TraceID != root.TraceID {
		t.Fatalf("response trace context not echoed: %+v", evResp.Trace)
	}

	req := &rats.Message{
		Type: rats.MsgAppraise, Session: 2, Nonce: nonce,
		Claims: []string{"sw1"}, Body: evResp.Body,
	}
	req.SetContext(root)
	res, err := apprRP.Call(req)
	if err != nil {
		t.Fatalf("appraise: %v", err)
	}
	cert, err := appraiser.DecodeCertificate(res.Body)
	if err != nil || !cert.Verdict {
		t.Fatalf("verdict: %v %+v", err, cert)
	}
	rpTracer.RecordSpan(root, telemetry.SpanContext{}, flow, "rp",
		telemetry.StageChallenge, start, time.Since(start), "")

	// ---- One trace, correct parenting. ----
	spans := append(swTracer.Trace(wantTrace), rpTracer.Trace(wantTrace)...)
	byStage := map[telemetry.Stage][]telemetry.Span{}
	ids := map[string]telemetry.Span{}
	for _, s := range spans {
		if s.TraceID != wantTrace {
			t.Fatalf("span %v: trace %s, want %s", s, s.TraceID, wantTrace)
		}
		byStage[s.Stage] = append(byStage[s.Stage], s)
		ids[s.SpanID] = s
	}
	// Both sides also recorded spans under OTHER trace IDs? They must
	// not have: every span for this flow belongs to the one trace.
	for _, s := range append(swTracer.Flow(flow), rpTracer.Flow(flow)...) {
		if s.TraceID != wantTrace {
			t.Fatalf("flow span escaped the trace: %+v", s)
		}
	}

	mustOne := func(stage telemetry.Stage) telemetry.Span {
		t.Helper()
		got := byStage[stage]
		if len(got) != 1 {
			t.Fatalf("stage %s: %d spans, want 1 (%v)", stage, len(got), got)
		}
		return got[0]
	}
	challenge := mustOne(telemetry.StageChallenge)
	attest := mustOne(telemetry.StageAttest)
	sign := mustOne(telemetry.StageSign)
	appraise := mustOne(telemetry.StageAppraise)
	verify := mustOne(telemetry.StageVerify)
	verdict := mustOne(telemetry.StageVerdict)

	if challenge.ParentID != "" {
		t.Fatalf("challenge span is not the root: parent %q", challenge.ParentID)
	}
	if attest.ParentID != challenge.SpanID {
		t.Fatalf("attest span parents under %q, want challenge %q", attest.ParentID, challenge.SpanID)
	}
	if sign.ParentID != attest.SpanID {
		t.Fatalf("sign span parents under %q, want attest %q", sign.ParentID, attest.SpanID)
	}
	if appraise.ParentID != challenge.SpanID {
		t.Fatalf("appraise span parents under %q, want challenge %q", appraise.ParentID, challenge.SpanID)
	}
	if verify.ParentID != appraise.SpanID || verdict.ParentID != appraise.SpanID {
		t.Fatalf("verify/verdict parent under %q/%q, want appraise %q",
			verify.ParentID, verdict.ParentID, appraise.SpanID)
	}
	for _, s := range spans {
		if s.ParentID == "" && s.SpanID != challenge.SpanID {
			t.Fatalf("second root span in trace: %+v", s)
		}
		if s.ParentID != "" {
			if _, ok := ids[s.ParentID]; !ok {
				t.Fatalf("span %+v parents under unknown span %q", s, s.ParentID)
			}
		}
	}

	// ---- Ledger cross-check: every flow record carries the trace ID. ----
	swAudit.Close()
	rpAudit.Close()
	for side, buf := range map[string]*bytes.Buffer{"switch": &swLedger, "rp": &rpLedger} {
		recs, err := auditlog.ReadRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s ledger: %v", side, err)
		}
		n := 0
		for _, r := range recs {
			if r.Flow != flow {
				continue
			}
			n++
			if r.TraceID != wantTrace {
				t.Fatalf("%s ledger record %s/%s: trace_id %q, want %q",
					side, r.Event, r.Place, r.TraceID, wantTrace)
			}
		}
		if n == 0 {
			t.Fatalf("%s ledger has no records for flow %s", side, flow)
		}
	}
}
