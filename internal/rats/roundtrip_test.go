package rats_test

// Full Fig. 1 round-trip over the rats wire protocol: a relying party
// challenges a real PERA switch through its AttesterHandler, forwards the
// returned evidence to a provisioned appraiser through its Handler, and
// checks the signed attestation result — the attestd/appraised/attestctl
// trio collapsed onto in-process pipes.

import (
	"bytes"
	"strings"
	"testing"

	"pera/internal/appraiser"
	"pera/internal/evidence"
	"pera/internal/p4ir"
	"pera/internal/pera"
	"pera/internal/rats"
	"pera/internal/rot"
)

// provision builds a switch and an appraiser that trusts it: the
// authority endorses the switch AIK, and the switch's golden values for
// the inert details are installed — the same steps attestd prints as
// provisioning lines for appraised.
func provision(t *testing.T) (*pera.Switch, *appraiser.Appraiser) {
	t.Helper()
	sw, err := pera.New("sw1", p4ir.NewFirewall("firewall_v5.p4"), pera.Config{})
	if err != nil {
		t.Fatal(err)
	}
	authority := rot.NewDeterministicAuthority("operator", []byte("rt-authority"))
	a := appraiser.New("Appraiser", []byte("rt-appraiser"))
	if err := a.RegisterAIK(authority.Public(), authority.Issue(sw.RoT())); err != nil {
		t.Fatal(err)
	}
	gs, err := sw.Golden(evidence.DetailHardware, evidence.DetailProgram, evidence.DetailTables)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		a.SetGolden("sw1", g.Target, g.Detail, g.Value)
	}
	return sw, a
}

func TestFullRoundTrip(t *testing.T) {
	sw, a := provision(t)

	attRP, attSw := rats.Pipe()
	defer attRP.Close()
	go rats.Serve(attSw, sw.AttesterHandler())
	apprRP, apprSrv := rats.Pipe()
	defer apprRP.Close()
	go rats.Serve(apprSrv, a.Handler())

	// 1-2: Challenge → Evidence.
	nonce := rot.NewNonce()
	evResp, err := attRP.Call(&rats.Message{
		Type: rats.MsgChallenge, Session: 1, Nonce: nonce,
		Claims: []string{"hardware", "program", "tables"},
	})
	if err != nil {
		t.Fatalf("challenge: %v", err)
	}
	if evResp.Type != rats.MsgEvidence || !bytes.Equal(evResp.Nonce, nonce) {
		t.Fatalf("evidence response: %+v", evResp)
	}
	if len(evResp.Body) == 0 {
		t.Fatal("empty evidence body")
	}

	// 3-4: Appraise → Result.
	res, err := apprRP.Call(&rats.Message{
		Type: rats.MsgAppraise, Session: 2, Nonce: nonce,
		Claims: []string{"sw1"}, Body: evResp.Body,
	})
	if err != nil {
		t.Fatalf("appraise: %v", err)
	}
	cert, err := appraiser.DecodeCertificate(res.Body)
	if err != nil {
		t.Fatalf("decode certificate: %v", err)
	}
	if !cert.Verdict {
		t.Fatalf("verdict FAIL: %s", cert.Reason)
	}
	if cert.Subject != "sw1" || !bytes.Equal(cert.Nonce, nonce) {
		t.Fatalf("certificate: %+v", cert)
	}
	if err := appraiser.VerifyCertificate(a.Public(), cert); err != nil {
		t.Fatalf("certificate signature: %v", err)
	}

	// Retrieve the stored certificate by nonce — same bytes back.
	got, err := apprRP.Call(&rats.Message{Type: rats.MsgRetrieve, Session: 3, Nonce: nonce})
	if err != nil {
		t.Fatalf("retrieve: %v", err)
	}
	if !bytes.Equal(got.Body, res.Body) {
		t.Fatal("retrieved certificate differs from issued one")
	}

	// Replaying the session nonce must be refused, not re-certified.
	if _, err := apprRP.Call(&rats.Message{
		Type: rats.MsgAppraise, Session: 4, Nonce: nonce,
		Claims: []string{"sw1"}, Body: evResp.Body,
	}); err == nil || !strings.Contains(err.Error(), "nonce already used") {
		t.Fatalf("nonce replay accepted: %v", err)
	}
}

func TestRoundTripRejectsUnknownClaim(t *testing.T) {
	sw, _ := provision(t)
	rp, srv := rats.Pipe()
	defer rp.Close()
	go rats.Serve(srv, sw.AttesterHandler())
	_, err := rp.Call(&rats.Message{
		Type: rats.MsgChallenge, Session: 1, Nonce: rot.NewNonce(),
		Claims: []string{"firmware"},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown claim") {
		t.Fatalf("unknown claim: %v", err)
	}
}

func TestRoundTripTamperedEvidenceFails(t *testing.T) {
	sw, a := provision(t)
	attRP, attSw := rats.Pipe()
	defer attRP.Close()
	go rats.Serve(attSw, sw.AttesterHandler())
	apprRP, apprSrv := rats.Pipe()
	defer apprRP.Close()
	go rats.Serve(apprSrv, a.Handler())

	nonce := rot.NewNonce()
	evResp, err := attRP.Call(&rats.Message{
		Type: rats.MsgChallenge, Session: 1, Nonce: nonce,
		Claims: []string{"hardware", "program"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte mid-evidence: the appraisal must end in a FAIL
	// verdict or a decode refusal, never a PASS.
	body := append([]byte(nil), evResp.Body...)
	body[len(body)/2] ^= 0x01
	res, err := apprRP.Call(&rats.Message{
		Type: rats.MsgAppraise, Session: 2, Nonce: nonce,
		Claims: []string{"sw1"}, Body: body,
	})
	if err != nil {
		return // refused at decode/verify — fine
	}
	cert, err := appraiser.DecodeCertificate(res.Body)
	if err != nil {
		t.Fatalf("decode certificate: %v", err)
	}
	if cert.Verdict {
		t.Fatal("tampered evidence passed appraisal")
	}
}
