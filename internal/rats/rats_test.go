package rats

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func sampleMsg() *Message {
	return &Message{
		Type:    MsgChallenge,
		Session: 42,
		Nonce:   []byte("nonce-bytes"),
		Claims:  []string{"program", "tables"},
		Body:    []byte("body"),
	}
}

func msgEqual(a, b *Message) bool {
	if a.Type != b.Type || a.Session != b.Session ||
		!bytes.Equal(a.Nonce, b.Nonce) || !bytes.Equal(a.Body, b.Body) ||
		len(a.Claims) != len(b.Claims) {
		return false
	}
	for i := range a.Claims {
		if a.Claims[i] != b.Claims[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []*Message{
		sampleMsg(),
		{Type: MsgEvidence, Session: 1},
		{Type: MsgResult, Body: []byte{}},
		{Type: MsgRetrieve, Nonce: []byte("n")},
		{Type: MsgError, Body: []byte("reason")},
		{Type: MsgAppraise, Claims: []string{""}},
	}
	for i, m := range msgs {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !msgEqual(m, got) {
			t.Fatalf("case %d: %+v != %+v", i, m, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                         // invalid type 0
		{99},                        // invalid type 99
		{1},                         // truncated session
		{1, 0, 0, 0, 0, 0, 0, 0, 0}, // truncated nonce length
		{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9, 1}, // nonce length beyond data
		append(Encode(sampleMsg()), 0xFF),          // trailing byte
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Excessive claim count.
	bad := []byte{1}
	bad = append(bad, make([]byte, 8)...)     // session
	bad = append(bad, 0, 0, 0, 0)             // empty nonce
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF) // huge claim count
	if _, err := Decode(bad); err == nil {
		t.Error("huge claim count decoded")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgChallenge.String() != "challenge" || !strings.Contains(MsgType(0).String(), "0") {
		t.Fatal("msgtype strings")
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, err := b.Read()
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		m.Type = MsgResult
		if err := b.Write(m); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	resp, err := a.Call(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != MsgResult || resp.Session != 42 {
		t.Fatalf("resp: %+v", resp)
	}
	wg.Wait()
}

func TestCallSurfacesRemoteError(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		req, _ := b.Read()
		b.Write(&Message{Type: MsgError, Session: req.Session, Body: []byte("denied")})
	}()
	resp, err := a.Call(sampleMsg())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err: %v", err)
	}
	if resp == nil || resp.Type != MsgError {
		t.Fatalf("resp: %+v", resp)
	}
}

func TestServeEchoesUntilEOF(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		done <- Serve(b, func(m *Message) *Message {
			return &Message{Type: MsgResult, Session: m.Session}
		})
	}()
	for i := uint64(1); i <= 3; i++ {
		resp, err := a.Call(&Message{Type: MsgChallenge, Session: i})
		if err != nil || resp.Session != i {
			t.Fatalf("call %d: %+v %v", i, resp, err)
		}
	}
	a.Close()
	if err := <-done; err != nil && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("serve exit: %v", err)
	}
	b.Close()
}

func TestServeNilResponseBecomesError(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go Serve(b, func(m *Message) *Message { return nil })
	_, err := a.Call(sampleMsg())
	if err == nil {
		t.Fatal("nil handler response not surfaced")
	}
}

func TestTCPTransport(t *testing.T) {
	ln, err := ListenAndServe("127.0.0.1:0", func(m *Message) *Message {
		return &Message{Type: MsgResult, Session: m.Session, Body: m.Body}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := conn.Call(&Message{Type: MsgAppraise, Session: 7, Body: []byte("ev")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Session != 7 || string(resp.Body) != "ev" {
		t.Fatalf("resp: %+v", resp)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestWriteTooLarge(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	big := &Message{Type: MsgEvidence, Body: make([]byte, MaxMessageSize+1)}
	if err := a.Write(big); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}
}

func TestConnCloseWithoutCloser(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Framed write lands in the buffer and reads back.
	if err := c.Write(sampleMsg()); err != nil {
		t.Fatal(err)
	}
	got, err := NewConn(&buf).Read()
	if err != nil || got.Type != MsgChallenge {
		t.Fatalf("read back: %+v %v", got, err)
	}
}

// Property: codec round-trips arbitrary messages.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, session uint64, nonce, body []byte, claims []string) bool {
		m := &Message{
			Type:    MsgType(typ%6) + 1,
			Session: session,
			Nonce:   nonce,
			Claims:  claims,
			Body:    body,
		}
		if len(claims) > 1024 {
			return true
		}
		got, err := Decode(Encode(m))
		return err == nil && msgEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
