package rats

// Wire-evolution tests for the trace-context trailer: pre-trace frames
// decode unchanged, unknown trailing LV fields survive a round trip
// (forward compatibility for the NEXT field after this one), truncated
// trailers still error, and the flow-sampling decision is a pure
// function of the flow string so two processes that share nothing but
// the wire agree on which flows to trace.

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"pera/internal/telemetry"
)

func traceEqual(a, b *TraceContext) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func extEqual(a, b []ExtField) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Tag != b[i].Tag || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestPreTraceFrameDecodes pins the v0 wire format: a frame assembled
// byte by byte the way the pre-trace encoder laid it out (no trailer at
// all) must decode cleanly with a nil trace context, and the current
// encoder must still emit exactly those bytes for a traceless message —
// old and new binaries interoperate in both directions.
func TestPreTraceFrameDecodes(t *testing.T) {
	legacy := []byte{byte(MsgChallenge)}
	legacy = append(legacy, 0, 0, 0, 0, 0, 0, 0, 42)             // session
	legacy = append(legacy, 0, 0, 0, 5, 'n', '1', '2', '3', '4') // nonce LV
	legacy = append(legacy, 0, 0, 0, 1)                          // one claim
	legacy = append(legacy, 0, 0, 0, 7, 'p', 'r', 'o', 'g', 'r', 'a', 'm')
	legacy = append(legacy, 0, 0, 0, 4, 'b', 'o', 'd', 'y') // body LV

	m, err := Decode(legacy)
	if err != nil {
		t.Fatalf("pre-trace frame rejected: %v", err)
	}
	if m.Trace != nil || m.Ext != nil {
		t.Fatalf("pre-trace frame grew trailer fields: %+v", m)
	}
	if m.Session != 42 || string(m.Nonce) != "n1234" || string(m.Body) != "body" {
		t.Fatalf("decoded: %+v", m)
	}
	if got := Encode(m); !bytes.Equal(got, legacy) {
		t.Fatalf("traceless re-encode changed bytes:\n got %x\nwant %x", got, legacy)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	m := sampleMsg()
	m.Trace = &TraceContext{
		TraceID: "00112233445566778899aabbccddeeff",
		SpanID:  "0123456789abcdef",
		Sampled: true,
	}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !msgEqual(m, got) || !traceEqual(m.Trace, got.Trace) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	// Unsampled contexts round-trip the flag too.
	m.Trace.Sampled = false
	if got, _ = Decode(Encode(m)); got.Trace == nil || got.Trace.Sampled {
		t.Fatalf("sampled flag: %+v", got.Trace)
	}
}

// TestUnknownTrailerFieldRoundTrips is this change's promise to the
// NEXT wire evolution: fields with tags this binary does not know are
// carried through Decode→Encode verbatim, in order.
func TestUnknownTrailerFieldRoundTrips(t *testing.T) {
	m := sampleMsg()
	m.Trace = &TraceContext{
		TraceID: "ffeeddccbbaa99887766554433221100",
		SpanID:  "fedcba9876543210",
		Sampled: true,
	}
	m.Ext = []ExtField{
		{Tag: 7, Value: []byte("future field")},
		{Tag: 200, Value: nil},
	}
	enc := Encode(m)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(m.Trace, got.Trace) || !extEqual(m.Ext, got.Ext) {
		t.Fatalf("trailer round trip: %+v %+v", got.Trace, got.Ext)
	}
	if !bytes.Equal(Encode(got), enc) {
		t.Fatal("re-encode after decode changed bytes")
	}
	// A reserved-tag Ext entry must not shadow the canonical field.
	m.Ext = append(m.Ext, ExtField{Tag: 1, Value: make([]byte, 25)})
	got, err = Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(m.Trace, got.Trace) || len(got.Ext) != 2 {
		t.Fatalf("reserved tag leaked into trailer: %+v %+v", got.Trace, got.Ext)
	}
}

func TestTruncatedTrailerErrors(t *testing.T) {
	base := Encode(sampleMsg())
	traced := sampleMsg()
	traced.Trace = &TraceContext{
		TraceID: "00112233445566778899aabbccddeeff",
		SpanID:  "0123456789abcdef",
	}
	full := Encode(traced)
	cases := [][]byte{
		append(append([]byte{}, base...), 1),                            // tag, no LV
		append(append([]byte{}, base...), 1, 0, 0, 0),                   // tag, short LV
		append(append([]byte{}, base...), 1, 0, 0, 0, 99),               // LV beyond data
		full[:len(full)-1],                                              // truncated value
		append(append([]byte{}, base...), 1, 0, 0, 0, 3, 'a', 'b', 'c'), // wrong trace length
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: truncated trailer decoded", i)
		}
	}
}

// Property: the codec round-trips arbitrary messages including the
// trace trailer and unknown extension fields.
func TestPropertyTraceCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, session uint64, nonce, body []byte, tid [16]byte, sid [8]byte, sampled bool, extTag uint8, extVal []byte) bool {
		m := &Message{
			Type:    MsgType(typ%6) + 1,
			Session: session,
			Nonce:   nonce,
			Body:    body,
			Trace: &TraceContext{
				TraceID: hex.EncodeToString(tid[:]),
				SpanID:  hex.EncodeToString(sid[:]),
				Sampled: sampled,
			},
		}
		if extTag != extTagTrace {
			m.Ext = []ExtField{{Tag: extTag, Value: extVal}}
		}
		got, err := Decode(Encode(m))
		return err == nil && msgEqual(m, got) &&
			traceEqual(m.Trace, got.Trace) && extEqual(m.Ext, got.Ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecode throws raw bytes at the decoder: whatever decodes must
// re-encode to bytes that decode to the same message (codec is a
// retraction), and nothing may panic.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(sampleMsg()))
	traced := sampleMsg()
	traced.Trace = &TraceContext{
		TraceID: "00112233445566778899aabbccddeeff",
		SpanID:  "0123456789abcdef",
		Sampled: true,
	}
	traced.Ext = []ExtField{{Tag: 9, Value: []byte("x")}}
	f.Add(Encode(traced))
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !msgEqual(m, again) || !traceEqual(m.Trace, again.Trace) || !extEqual(m.Ext, again.Ext) {
			t.Fatalf("round trip diverged: %+v != %+v", m, again)
		}
	})
}

// TestCrossProcessSamplingDeterminism: two tracers sharing nothing (as
// in two processes at either end of a pipe) make identical sampling
// decisions for every flow, before and after retuning the rate —
// that's what lets both ends record the same traces with no protocol
// for agreeing on them.
func TestCrossProcessSamplingDeterminism(t *testing.T) {
	attesterSide := telemetry.NewFlowTracer(64)
	appraiserSide := telemetry.NewFlowTracer(64)

	flows := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		flows = append(flows, FlowID([]byte{byte(i), byte(i >> 1), 0xA5}))
	}
	check := func(every uint32) {
		t.Helper()
		attesterSide.SetSampleEvery(every)
		appraiserSide.SetSampleEvery(every)
		someSampled := false
		for _, flow := range flows {
			a, b := attesterSide.Sampled(flow), appraiserSide.Sampled(flow)
			if a != b {
				t.Fatalf("every=%d flow %s: attester sampled=%v appraiser sampled=%v", every, flow, a, b)
			}
			// The wire context agrees with the local decision: a conn at
			// either end derives the same TRACE identity from the same
			// nonce (span IDs are fresh per span, by design).
			if actx, bctx := attesterSide.NewContext(flow), appraiserSide.NewContext(flow); actx.TraceID != bctx.TraceID || actx.Valid() != bctx.Valid() {
				t.Fatalf("every=%d flow %s: contexts differ: %+v %+v", every, flow, actx, bctx)
			} else if actx.Valid() != a {
				t.Fatalf("every=%d flow %s: context valid=%v sampled=%v", every, flow, actx.Valid(), a)
			}
			someSampled = someSampled || a
		}
		if !someSampled {
			t.Fatalf("every=%d: no flow sampled", every)
		}
	}
	for _, every := range []uint32{1, 2, 8, 3} { // includes retune after traffic
		check(every)
	}
}

// TestPipeSamplingAgreement drives real frames across a pipe: the
// writer's auto-injected context is exactly what the reader's own
// tracer would have derived, so a sampled flow is sampled on BOTH ends
// and an unsampled one on neither.
func TestPipeSamplingAgreement(t *testing.T) {
	writerTr := telemetry.NewFlowTracer(64)
	readerTr := telemetry.NewFlowTracer(64)
	writerTr.SetSampleEvery(4)
	readerTr.SetSampleEvery(4)

	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.SetTracer(writerTr)

	done := make(chan struct{})
	var got []*Message
	go func() {
		defer close(done)
		for i := 0; i < 32; i++ {
			m, err := b.Read()
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = append(got, m)
		}
	}()
	for i := 0; i < 32; i++ {
		nonce := []byte{byte(i), 0x17}
		if err := a.Write(&Message{Type: MsgChallenge, Session: uint64(i), Nonce: nonce}); err != nil {
			t.Fatal(err)
		}
	}
	<-done

	sampled := 0
	for _, m := range got {
		flow := FlowID(m.Nonce)
		if (m.Trace != nil) != readerTr.Sampled(flow) {
			t.Fatalf("flow %s: wire trace=%v reader would sample=%v",
				flow, m.Trace != nil, readerTr.Sampled(flow))
		}
		if m.Trace != nil {
			if want := telemetry.TraceIDFromFlow(flow); m.Trace.TraceID != want {
				t.Fatalf("flow %s: wire trace %s, derived %s", flow, m.Trace.TraceID, want)
			}
			sampled++
		}
	}
	if sampled == 0 || sampled == len(got) {
		t.Fatalf("degenerate sampling at 1-in-4: %d/%d", sampled, len(got))
	}
}
