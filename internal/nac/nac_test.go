package nac

import (
	"errors"
	"strings"
	"testing"

	"pera/internal/copland"
	"pera/internal/evidence"
	"pera/internal/pera"
)

func TestParseAP1(t *testing.T) {
	pol, err := ParsePolicy(AP1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.RelyingParty != "bank" {
		t.Fatalf("rp: %q", pol.RelyingParty)
	}
	if len(pol.Params) != 2 || pol.Params[0] != "n" || pol.Params[1] != "X" {
		t.Fatalf("params: %v", pol.Params)
	}
	if len(pol.Vars) != 2 || pol.Vars[0] != "hop" || pol.Vars[1] != "client" {
		t.Fatalf("vars: %v", pol.Vars)
	}
	if len(pol.Segments) != 2 {
		t.Fatalf("segments: %d", len(pol.Segments))
	}
	// First segment: BSeq(@hop[...], @Appraiser[...]).
	seq, ok := pol.Segments[0].(*BSeq)
	if !ok {
		t.Fatalf("segment 0: %T", pol.Segments[0])
	}
	hop, ok := seq.L.(*At)
	if !ok || hop.Place != "hop" {
		t.Fatalf("hop atom: %v", seq.L)
	}
	g, ok := hop.Body.(*Guard)
	if !ok || g.Test != "Khop" {
		t.Fatalf("guard: %v", hop.Body)
	}
	// Second segment: @client with Kclient guard over host Copland.
	client, ok := pol.Segments[1].(*At)
	if !ok || client.Place != "client" {
		t.Fatalf("client atom: %v", pol.Segments[1])
	}
	cg, ok := client.Body.(*Guard)
	if !ok || cg.Test != "Kclient" {
		t.Fatalf("client guard: %v", client.Body)
	}
}

func TestParseAP2AndAP3(t *testing.T) {
	p2, err := ParsePolicy(AP2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.RelyingParty != "scanner" || len(p2.Segments) != 1 || len(p2.Vars) != 0 {
		t.Fatalf("ap2: %+v", p2)
	}
	p3, err := ParsePolicy(AP3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.Vars) != 5 || len(p3.Segments) != 2 {
		t.Fatalf("ap3: vars=%v segments=%d", p3.Vars, len(p3.Segments))
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, src := range []string{AP1, AP2, AP3} {
		pol, err := ParsePolicy(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		again, err := ParsePolicy(pol.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", pol.String(), err)
		}
		if pol.String() != again.String() {
			t.Fatalf("round trip:\n1: %s\n2: %s", pol, again)
		}
	}
}

func TestParseTermGuardsAndOperators(t *testing.T) {
	term, err := ParseTerm(`K |> @p [attest(Hardware) -> !]`)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := term.(*Guard)
	if !ok || g.Test != "K" {
		t.Fatalf("term: %v", term)
	}
	// Guard binds tighter than ->? No: guard body is a full term.
	term, err = ParseTerm(`K |> a -> b`)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := term.(*Guard); !ok {
		t.Fatalf("got %T", term)
	} else if _, ok := g.Body.(*LSeq); !ok {
		t.Fatalf("guard body: %T", g.Body)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `*`, `*x`, `*x:`, `*x: @p [`, `*x: forall : a`, `K |>`,
		`*x: a *=>`, `*x<: a`, `$`, `*x: forall p q: a`,
	}
	for _, src := range bad {
		if _, err := ParsePolicy(src); err == nil {
			t.Errorf("%q parsed", src)
		}
	}
	if _, err := ParseTerm(`@p [a] trailing junk ~`); err == nil {
		t.Error("trailing junk parsed")
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ParsePolicy("*x:\n$")
	var se *SyntaxError
	if !errors.As(err, &se) || !strings.Contains(se.Error(), "2:1") {
		t.Fatalf("err: %v", err)
	}
}

func TestToCopland(t *testing.T) {
	term, err := ParseTerm(`@ks [av us bmon -> !] -<- @us [bmon us exts -> !]`)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ToCopland(term)
	if err != nil {
		t.Fatal(err)
	}
	// The lowered term round-trips through the base Copland parser.
	parsed, err := copland.Parse(ct.String())
	if err != nil {
		t.Fatalf("lowered term %q does not re-parse: %v", ct, err)
	}
	if parsed.String() != ct.String() {
		t.Fatalf("lowering unstable: %q vs %q", parsed, ct)
	}
	// Guards cannot lower.
	g, _ := ParseTerm(`K |> !`)
	if _, err := ToCopland(g); err == nil {
		t.Fatal("guard lowered")
	}
	// Subterms lower too.
	sub, _ := ParseTerm(`attest(Hardware -~- Program) -> #`)
	if _, err := ToCopland(sub); err != nil {
		t.Fatalf("subterm lowering: %v", err)
	}
}

// --- Compilation ---

func ap1Registry() TestRegistry {
	keyed := map[string]bool{"sw1": true, "sw2": true, "sw3": true, "client": true}
	return TestRegistry{
		"Khop":    {PlacePred: func(p string) bool { return keyed[p] }},
		"Kclient": {PlacePred: func(p string) bool { return keyed[p] }},
	}
}

func ap1Path() []PathHop {
	return []PathHop{
		{Name: "bank", CanSign: true},
		{Name: "sw1", Attesting: true, CanSign: true},
		{Name: "sw2", Attesting: true, CanSign: true},
		{Name: "sw3", Attesting: true, CanSign: true},
		{Name: "client", CanSign: true},
	}
}

func TestCompileAP1(t *testing.T) {
	pol, err := ParsePolicy(AP1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(pol, ap1Path(), ap1Registry(), Options{
		Nonce:      []byte("n-ap1"),
		PolicyID:   1,
		Properties: map[string][]evidence.Detail{"X": {evidence.DetailProgram, evidence.DetailTables}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One replicated obligation for ∀hop.
	if len(c.Policy.Obls) != 1 {
		t.Fatalf("obligations: %+v", c.Policy.Obls)
	}
	o := c.Policy.Obls[0]
	if o.Place != "" {
		t.Fatalf("hop obligation pinned to %q", o.Place)
	}
	if len(o.Claims) != 2 || o.Claims[0] != evidence.DetailProgram {
		t.Fatalf("claims: %v", o.Claims)
	}
	if !o.SignEvidence || o.HashEvidence {
		t.Fatalf("flags: %+v", o)
	}
	if o.Appraiser != "Appraiser" {
		t.Fatalf("appraiser: %q", o.Appraiser)
	}
	// The client host term is the §4.2 bank phrase in plain Copland.
	if len(c.HostTerms) != 1 || c.HostTerms[0].Place != "client" {
		t.Fatalf("host terms: %+v", c.HostTerms)
	}
	if !strings.Contains(c.HostTerms[0].Term.String(), "av us bmon") {
		t.Fatalf("client term: %s", c.HostTerms[0].Term)
	}
	if c.Bindings["hop"] != "*" || c.Bindings["client"] != "client" {
		t.Fatalf("bindings: %v", c.Bindings)
	}
	// The compiled policy survives the wire.
	dec, err := pera.DecodePolicy(c.Policy.Encode())
	if err != nil || len(dec.Obls) != 1 {
		t.Fatalf("wire: %v %v", dec, err)
	}
}

func TestCompileAP1GuardFailsEarly(t *testing.T) {
	pol, _ := ParsePolicy(AP1)
	// sw2 has no key relationship: Khop must fail the binding (the
	// "fail early" design point) — no span containing sw2 satisfies the
	// guard, and sw2 sits mid-path so it cannot be skipped.
	reg := TestRegistry{
		"Khop":    {PlacePred: func(p string) bool { return p != "sw2" }},
		"Kclient": {PlacePred: func(string) bool { return true }},
	}
	_, err := Compile(pol, ap1Path(), reg, Options{
		Properties: map[string][]evidence.Detail{"X": {evidence.DetailProgram}},
	})
	if !errors.Is(err, ErrNoBinding) {
		t.Fatalf("err: %v", err)
	}
}

func TestCompileAP1UnknownTest(t *testing.T) {
	pol, _ := ParsePolicy(AP1)
	_, err := Compile(pol, ap1Path(), TestRegistry{}, Options{
		Properties: map[string][]evidence.Detail{"X": {evidence.DetailProgram}},
	})
	if !errors.Is(err, ErrNoBinding) {
		// Unknown tests make every guarded candidate fail, surfacing as
		// a binding failure.
		t.Fatalf("err: %v", err)
	}
}

func TestCompileAP2(t *testing.T) {
	pol, err := ParsePolicy(AP2)
	if err != nil {
		t.Fatal(err)
	}
	reg := TestRegistry{
		"P": {PacketGuards: []pera.Guard{{Field: "tp.dport", Value: 4444}}},
	}
	path := []PathHop{{Name: "scanner", Attesting: true, CanSign: true}}
	c, err := Compile(pol, path, reg, Options{
		PolicyID:   2,
		Properties: map[string][]evidence.Detail{"P": {evidence.DetailPackets}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Policy.Obls) != 1 {
		t.Fatalf("obligations: %+v", c.Policy.Obls)
	}
	o := c.Policy.Obls[0]
	if o.Place != "scanner" || !o.SignEvidence {
		t.Fatalf("obligation: %+v", o)
	}
	if len(o.Guards) != 1 || o.Guards[0].Field != "tp.dport" || o.Guards[0].Value != 4444 {
		t.Fatalf("packet guards: %+v", o.Guards)
	}
	if len(o.Claims) != 1 || o.Claims[0] != evidence.DetailPackets {
		t.Fatalf("claims: %v", o.Claims)
	}
}

func TestCompileAP3(t *testing.T) {
	pol, err := ParsePolicy(AP3)
	if err != nil {
		t.Fatal(err)
	}
	reg := TestRegistry{
		"Peer1": {PlacePred: func(p string) bool { return p == "alice" }},
		"Peer2": {PlacePred: func(p string) bool { return p == "bob" }},
		"Q":     {PlacePred: func(p string) bool { return p == "swR" }},
	}
	path := []PathHop{
		{Name: "alice", CanSign: true},
		{Name: "swF1", Attesting: true, CanSign: true},
		{Name: "swF2", Attesting: true, CanSign: true},
		{Name: "dumb1"}, // non-RA gap (the *=> region)
		{Name: "dumb2"}, // more gap
		{Name: "swR", Attesting: true, CanSign: true},
		{Name: "bob", CanSign: true},
	}
	c, err := Compile(pol, path, reg, Options{
		PolicyID: 3,
		Properties: map[string][]evidence.Detail{
			"F1": {evidence.DetailProgram},
			"F2": {evidence.DetailProgram, evidence.DetailTables},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bindings["p"] != "swF1" || c.Bindings["q"] != "swF2" || c.Bindings["r"] != "swR" {
		t.Fatalf("bindings: %v", c.Bindings)
	}
	if c.Bindings["peer1"] != "alice" || c.Bindings["peer2"] != "bob" {
		t.Fatalf("peer bindings: %v", c.Bindings)
	}
	// Obligations: p (attest F1), q (attest F2), r (bare sign).
	if len(c.Policy.Obls) != 3 {
		t.Fatalf("obligations: %+v", c.Policy.Obls)
	}
	if c.Policy.Obls[0].Place != "swF1" || len(c.Policy.Obls[0].Claims) != 1 {
		t.Fatalf("p obligation: %+v", c.Policy.Obls[0])
	}
	if c.Policy.Obls[1].Place != "swF2" || len(c.Policy.Obls[1].Claims) != 2 {
		t.Fatalf("q obligation: %+v", c.Policy.Obls[1])
	}
	if c.Policy.Obls[2].Place != "swR" || len(c.Policy.Obls[2].Claims) != 0 || !c.Policy.Obls[2].SignEvidence {
		t.Fatalf("r obligation: %+v", c.Policy.Obls[2])
	}
	// Host terms: peer1 and peer2 sign.
	if len(c.HostTerms) != 2 || c.HostTerms[0].Place != "alice" || c.HostTerms[1].Place != "bob" {
		t.Fatalf("host terms: %+v", c.HostTerms)
	}
}

func TestCompileAP3RequiresOrder(t *testing.T) {
	pol, _ := ParsePolicy(AP3)
	reg := TestRegistry{
		"Peer1": {PlacePred: func(p string) bool { return p == "alice" }},
		"Peer2": {PlacePred: func(p string) bool { return p == "bob" }},
		"Q":     {PlacePred: func(p string) bool { return p == "swR" }},
	}
	// Path with swR *before* the attested functions: cannot bind.
	path := []PathHop{
		{Name: "alice", CanSign: true},
		{Name: "swR", Attesting: true, CanSign: true},
		{Name: "bob", CanSign: true},
	}
	_, err := Compile(pol, path, reg, Options{
		Properties: map[string][]evidence.Detail{
			"F1": {evidence.DetailProgram}, "F2": {evidence.DetailProgram},
		},
	})
	if !errors.Is(err, ErrNoBinding) {
		t.Fatalf("err: %v", err)
	}
}

func TestCompileConcretePlaceMustExist(t *testing.T) {
	pol, err := ParsePolicy(`*rp: @SwitchX [attest(Program) -> !] -<+ @Appraiser [appraise -> store]`)
	if err != nil {
		t.Fatal(err)
	}
	path := []PathHop{{Name: "other", Attesting: true, CanSign: true}}
	if _, err := Compile(pol, path, TestRegistry{}, Options{}); !errors.Is(err, ErrNoBinding) {
		t.Fatalf("err: %v", err)
	}
	path = []PathHop{{Name: "SwitchX", Attesting: true, CanSign: true}}
	c, err := Compile(pol, path, TestRegistry{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Policy.Obls) != 1 || c.Policy.Obls[0].Place != "SwitchX" {
		t.Fatalf("obligation: %+v", c.Policy.Obls)
	}
}

func TestCompileUnknownProperty(t *testing.T) {
	pol, _ := ParsePolicy(`*rp: @sw [attest(Mystery) -> !] -<+ @Appraiser [appraise -> store]`)
	path := []PathHop{{Name: "sw", Attesting: true, CanSign: true}}
	if _, err := Compile(pol, path, TestRegistry{}, Options{}); err == nil {
		t.Fatal("unknown property compiled")
	}
}

func TestCompileBuiltinProperties(t *testing.T) {
	pol, _ := ParsePolicy(`*rp: @sw [attest(Hardware -~- Program) -> # -> !] -<+ @Appraiser [appraise -> store]`)
	path := []PathHop{{Name: "sw", Attesting: true, CanSign: true}}
	c, err := Compile(pol, path, TestRegistry{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := c.Policy.Obls[0]
	if len(o.Claims) != 2 || !o.HashEvidence || !o.SignEvidence {
		t.Fatalf("obligation: %+v", o)
	}
}

func TestPlacesAndWalk(t *testing.T) {
	pol, _ := ParsePolicy(AP3)
	ps := Places(pol.Segments[0])
	if len(ps) != 4 || ps[0] != "peer1" || ps[3] != "Appraiser" {
		t.Fatalf("places: %v", ps)
	}
	count := 0
	Walk(pol.Segments[0], func(Term) bool { count++; return false })
	if count != 1 {
		t.Fatal("walk stop")
	}
}
