package nac

import (
	"testing"

	"pera/internal/evidence"
	"pera/internal/netsim"
	"pera/internal/p4ir"
	"pera/internal/pera"
	"pera/internal/pisa"
)

// PathFromNetwork + Compile over a live netsim topology: the end-to-end
// "relying party compiles a policy against the network it actually has"
// flow, without the usecases testbed.
func TestPathFromNetworkAndCompile(t *testing.T) {
	net := netsim.New()
	src := netsim.NewHost("src", 1)
	dst := netsim.NewHost("dst", 2)
	net.MustAdd(src)
	net.MustAdd(dst)

	sw, err := pera.New("swA", p4ir.NewForwarding("fwd_v1.p4"), pera.Config{})
	if err != nil {
		t.Fatal(err)
	}
	net.MustAdd(sw)
	plainInst, err := pisa.Load(p4ir.NewForwarding("plain"))
	if err != nil {
		t.Fatal(err)
	}
	net.MustAdd(netsim.NewSwitch("plainB", plainInst)) // non-attesting hop

	net.MustLink("src", netsim.HostPort, "swA", 1)
	net.MustLink("swA", 2, "plainB", 1)
	net.MustLink("plainB", 2, "dst", netsim.HostPort)

	hops := PathFromNetwork(net, "src", "dst")
	if len(hops) != 4 {
		t.Fatalf("hops: %v", hops)
	}
	if !hops[1].Attesting || !hops[1].CanSign || hops[1].Name != "swA" {
		t.Fatalf("pera hop: %+v", hops[1])
	}
	if hops[2].Attesting || hops[2].CanSign {
		t.Fatalf("plain hop: %+v", hops[2])
	}
	if !hops[0].CanSign || hops[0].Attesting {
		t.Fatalf("host hop: %+v", hops[0])
	}

	// AP1 binds over this path: the single attesting hop carries the
	// obligation; the non-attesting switch sits in the star's span.
	pol, err := ParsePolicy(AP1)
	if err != nil {
		t.Fatal(err)
	}
	reg := TestRegistry{
		"Khop":    {PlacePred: func(string) bool { return true }},
		"Kclient": {PlacePred: func(p string) bool { return p == "dst" }},
	}
	c, err := Compile(pol, hops, reg, Options{
		Properties: map[string][]evidence.Detail{"X": {evidence.DetailProgram}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bindings["client"] != "dst" {
		t.Fatalf("bindings: %v", c.Bindings)
	}
	// Unknown endpoints yield an empty path.
	if got := PathFromNetwork(net, "ghost", "dst"); got != nil {
		t.Fatalf("ghost path: %v", got)
	}
}

func TestTermStringsCoverAllNodes(t *testing.T) {
	terms := []Term{
		&BPar{LFlag: true, RFlag: false, L: &ASP{Name: "a"}, R: &ASP{Name: "b"}},
		&BSeq{L: &ASP{Name: "a"}, R: &ASP{Name: "b"}},
		&Guard{Test: "K", Body: &ASP{Name: "!"}},
		&LSeq{L: &ASP{Name: "a", Args: []string{"x", "y"}}, R: &ASP{Name: "m", TargetPlace: "p", Target: "t"}},
		&At{Place: "p", Body: &ASP{Name: "f", SubTerm: &ASP{Name: "inner"}}},
	}
	for _, tm := range terms {
		s := tm.String()
		if s == "" {
			t.Errorf("empty string for %T", tm)
		}
		// Every rendering must re-parse.
		if _, err := ParseTerm(s); err != nil {
			t.Errorf("%q does not re-parse: %v", s, err)
		}
	}
}

func TestSubstPlacesCoversAllNodes(t *testing.T) {
	src := `K |> (@p [f(m q t -~- n) -<+ @q [x q y]])`
	term, err := ParseTerm(src)
	if err != nil {
		t.Fatal(err)
	}
	out := substPlaces(term, map[string]string{"p": "SW1", "q": "SW2"})
	s := out.String()
	for _, want := range []string{"SW1", "SW2"} {
		if !contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
	if contains(s, "@p ") || contains(s, "@q ") {
		t.Errorf("unsubstituted places in %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
