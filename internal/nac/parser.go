package nac

import (
	"fmt"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"pera/internal/copland"
)

// Lexer and parser for the network-aware concrete syntax. The token set
// extends base Copland's with `|>` (guard), `*=>` (path star) and the
// `forall` keyword.

type tkind uint8

const (
	tEOF tkind = iota
	tIdent
	tStar      // * (request marker)
	tStarArrow // *=>
	tGuard     // |>
	tColon
	tComma
	tAt
	tLBrack
	tRBrack
	tLParen
	tRParen
	tArrow // ->
	tPlus
	tMinus
	tLess
	tGT
	tTilde
	tBang
	tHash
	tUnder
)

var tnames = map[tkind]string{
	tEOF: "end of input", tIdent: "identifier", tStar: "'*'", tStarArrow: "'*=>'",
	tGuard: "'|>'", tColon: "':'", tComma: "','", tAt: "'@'", tLBrack: "'['",
	tRBrack: "']'", tLParen: "'('", tRParen: "')'", tArrow: "'->'", tPlus: "'+'",
	tMinus: "'-'", tLess: "'<'", tGT: "'>'", tTilde: "'~'", tBang: "'!'",
	tHash: "'#'", tUnder: "'_'",
}

func (k tkind) String() string {
	if s, ok := tnames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type tok struct {
	kind tkind
	text string
	pos  int
}

// SyntaxError reports a parse failure with position info.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	line, col := 1, 1
	for i, r := range e.Input {
		if i >= e.Pos {
			break
		}
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("nac: %d:%d: %s", line, col, e.Msg)
}

func lexNAC(input string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(input) {
		r, w := utf8.DecodeRuneInString(input[i:])
		switch {
		case unicode.IsSpace(r):
			i += w
		case strings.HasPrefix(input[i:], "//"):
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case strings.HasPrefix(input[i:], "*=>"):
			toks = append(toks, tok{tStarArrow, "*=>", i})
			i += 3
		case strings.HasPrefix(input[i:], "|>"):
			toks = append(toks, tok{tGuard, "|>", i})
			i += 2
		case strings.HasPrefix(input[i:], "->"):
			toks = append(toks, tok{tArrow, "->", i})
			i += 2
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			j := i + w
			for j < len(input) {
				r2, w2 := utf8.DecodeRuneInString(input[j:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '.' && r2 != '_' {
					break
				}
				j += w2
			}
			toks = append(toks, tok{tIdent, input[i:j], i})
			i = j
		default:
			var k tkind
			switch r {
			case '*':
				k = tStar
			case ':':
				k = tColon
			case ',':
				k = tComma
			case '@':
				k = tAt
			case '[':
				k = tLBrack
			case ']':
				k = tRBrack
			case '(':
				k = tLParen
			case ')':
				k = tRParen
			case '+':
				k = tPlus
			case '-':
				k = tMinus
			case '<':
				k = tLess
			case '>':
				k = tGT
			case '~':
				k = tTilde
			case '!':
				k = tBang
			case '#':
				k = tHash
			case '_':
				k = tUnder
			default:
				return nil, &SyntaxError{input, i, fmt.Sprintf("unexpected character %q", r)}
			}
			toks = append(toks, tok{k, string(r), i})
			i += w
		}
	}
	return append(toks, tok{tEOF, "", len(input)}), nil
}

// parseMemo caches successfully parsed policies by source text. The
// shipped policies (AP1..AP3) are constants re-parsed on every compile —
// per-testbed in the throughput harness — and lexing dominated the parse
// cost. Parsed ASTs are never mutated (Compile only reads them), so
// returning the shared *Policy is safe; the cache is bounded and dropped
// wholesale if arbitrary inputs ever push it past the cap.
var parseMemo struct {
	sync.Mutex
	m map[string]*Policy
}

const parseMemoCap = 64

// ParsePolicy parses a top-level network-aware policy. The returned
// Policy may be shared across calls with the same input; callers must
// treat it as immutable.
func ParsePolicy(input string) (*Policy, error) {
	parseMemo.Lock()
	pol, ok := parseMemo.m[input]
	parseMemo.Unlock()
	if ok {
		return pol, nil
	}
	toks, err := lexNAC(input)
	if err != nil {
		return nil, err
	}
	p := &nparser{input: input, toks: toks}
	pol, err = p.policy()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tEOF); err != nil {
		return nil, err
	}
	parseMemo.Lock()
	if parseMemo.m == nil || len(parseMemo.m) >= parseMemoCap {
		parseMemo.m = make(map[string]*Policy, 8)
	}
	parseMemo.m[input] = pol
	parseMemo.Unlock()
	return pol, nil
}

// ParseTerm parses a single network-aware term (no policy header).
func ParseTerm(input string) (Term, error) {
	toks, err := lexNAC(input)
	if err != nil {
		return nil, err
	}
	p := &nparser{input: input, toks: toks}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tEOF); err != nil {
		return nil, err
	}
	return t, nil
}

type nparser struct {
	input string
	toks  []tok
	pos   int
}

func (p *nparser) peek() tok       { return p.toks[p.pos] }
func (p *nparser) next() tok       { t := p.toks[p.pos]; p.pos++; return t }
func (p *nparser) at(k tkind) bool { return p.peek().kind == k }

func (p *nparser) errf(format string, args ...any) error {
	return &SyntaxError{Input: p.input, Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *nparser) expect(k tkind) error {
	if !p.at(k) {
		return p.errf("expected %v, found %v %q", k, p.peek().kind, p.peek().text)
	}
	p.next()
	return nil
}

func (p *nparser) ident() (string, error) {
	if !p.at(tIdent) {
		return "", p.errf("expected identifier, found %v %q", p.peek().kind, p.peek().text)
	}
	return p.next().text, nil
}

// policy := '*' IDENT params? ':' ('forall' IDENT (',' IDENT)* ':')? path
func (p *nparser) policy() (*Policy, error) {
	if err := p.expect(tStar); err != nil {
		return nil, err
	}
	rp, err := p.ident()
	if err != nil {
		return nil, err
	}
	pol := &Policy{RelyingParty: rp}
	if p.at(tLess) {
		p.next()
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			pol.Params = append(pol.Params, name)
			if p.at(tComma) {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(tGT); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tColon); err != nil {
		return nil, err
	}
	if p.at(tIdent) && p.peek().text == "forall" {
		p.next()
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			pol.Vars = append(pol.Vars, name)
			if p.at(tComma) {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(tColon); err != nil {
			return nil, err
		}
	}
	// path := term ('*=>' term)*
	seg, err := p.term()
	if err != nil {
		return nil, err
	}
	pol.Segments = append(pol.Segments, seg)
	for p.at(tStarArrow) {
		p.next()
		seg, err := p.term()
		if err != nil {
			return nil, err
		}
		pol.Segments = append(pol.Segments, seg)
	}
	return pol, nil
}

// term := branch
func (p *nparser) term() (Term, error) { return p.branch() }

func (p *nparser) branch() (Term, error) {
	left, err := p.linear()
	if err != nil {
		return nil, err
	}
	for p.at(tPlus) || p.at(tMinus) {
		lf := p.next().kind == tPlus
		var par bool
		switch p.peek().kind {
		case tLess, tGT:
			par = false
		case tTilde:
			par = true
		default:
			return nil, p.errf("expected '<', '>' or '~' after branch flag")
		}
		p.next()
		var rf bool
		switch p.peek().kind {
		case tPlus:
			rf = true
		case tMinus:
			rf = false
		default:
			return nil, p.errf("expected '+' or '-' flag")
		}
		p.next()
		right, err := p.linear()
		if err != nil {
			return nil, err
		}
		if par {
			left = &BPar{LFlag: copland.Flag(lf), RFlag: copland.Flag(rf), L: left, R: right}
		} else {
			left = &BSeq{LFlag: copland.Flag(lf), RFlag: copland.Flag(rf), L: left, R: right}
		}
	}
	return left, nil
}

func (p *nparser) linear() (Term, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(tArrow) {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &LSeq{L: left, R: right}
	}
	return left, nil
}

// unary := '@' IDENT '[' term ']' | '(' term ')' | IDENT '|>' term | asp
func (p *nparser) unary() (Term, error) {
	switch p.peek().kind {
	case tAt:
		p.next()
		place, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tLBrack); err != nil {
			return nil, err
		}
		body, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRBrack); err != nil {
			return nil, err
		}
		return &At{Place: place, Body: body}, nil
	case tLParen:
		p.next()
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return t, nil
	case tIdent:
		// Guard lookahead: IDENT '|>' ...
		if p.toks[p.pos+1].kind == tGuard {
			test := p.next().text
			p.next() // |>
			body, err := p.term()
			if err != nil {
				return nil, err
			}
			return &Guard{Test: test, Body: body}, nil
		}
		return p.asp()
	default:
		return p.asp()
	}
}

func (p *nparser) asp() (Term, error) {
	switch p.peek().kind {
	case tBang:
		p.next()
		return &ASP{Name: "!"}, nil
	case tHash:
		p.next()
		return &ASP{Name: "#"}, nil
	case tUnder:
		p.next()
		return &ASP{Name: "_"}, nil
	case tIdent:
		name := p.next().text
		a := &ASP{Name: name}
		if p.at(tLParen) {
			p.next()
			if err := p.aspInner(a); err != nil {
				return nil, err
			}
			if err := p.expect(tRParen); err != nil {
				return nil, err
			}
		}
		if p.at(tIdent) && p.toks[p.pos+1].kind != tGuard {
			first := p.next().text
			if p.at(tIdent) && p.toks[p.pos+1].kind != tGuard {
				a.TargetPlace = first
				a.Target = p.next().text
			} else {
				a.Target = first
			}
		}
		return a, nil
	default:
		return nil, p.errf("expected a term, found %v %q", p.peek().kind, p.peek().text)
	}
}

func (p *nparser) aspInner(a *ASP) error {
	if p.at(tRParen) {
		return nil
	}
	start := p.pos
	var args []string
	for {
		if !p.at(tIdent) {
			args = nil
			break
		}
		args = append(args, p.next().text)
		if p.at(tComma) {
			p.next()
			continue
		}
		break
	}
	if args != nil && p.at(tRParen) {
		a.Args = args
		return nil
	}
	p.pos = start
	t, err := p.term()
	if err != nil {
		return err
	}
	a.SubTerm = t
	return nil
}
