package nac

// Table 1 of the paper, in the ASCII concrete syntax. The paper's
// overset-flag sequential arrow (e.g. −+ over >) is written `-<+`; its
// `∗⇒` is `*=>`; its `▶` is `|>`; its `∀` is `forall`.

// AP1 is the bank example with path attestation between bank and client
// (UC5, and UC1 when X covers configuration detail): every hop on the
// path that passes the Khop key test attests property X bound to nonce
// n, signs, and sends the evidence to the Appraiser; at the end of the
// path the client (passing Kclient) runs the host-based §4.2 phrase.
const AP1 = `*bank<n, X>: forall hop, client:
  (@hop [Khop |> attest(n) X -> !] -<+ @Appraiser [appraise -> store(n)])
  *=> @client [Kclient |> (@ks [av us bmon -> !] -<- @us [bmon us exts -> !])]`

// AP2 is the UC4 audit policy: a switch (the relying party itself) scans
// for traffic pattern P; when the test fires it attests the match, signs
// the result and stores it at the Appraiser, creating a referenceable
// audit trail.
const AP2 = `*scanner<P>: @scanner [P |> attest(P) -> !] -<+ @Appraiser [appraise -> store]`

// AP3 combines UC2 and UC3: the path between two peers must traverse
// attested functions F1 and F2 at abstract places p and q — p passes its
// evidence to q before it reaches the Appraiser — and between q and r no
// RA-capable nodes are required (the `*=>` gap); r's Q test and the
// peers' key tests gate signing at the segment ends.
const AP3 = `*pathCheck<F1, F2, Peer1, Peer2>: forall p, q, r, peer1, peer2:
  @peer1 [Peer1 |> !] -<+ @p [attest(F1) -> !] -<+ @q [attest(F2) -> !] -<+ @Appraiser [appraise -> store]
  *=> @r [Q |> !] -<+ @peer2 [Peer2 |> !] -<+ @Appraiser [appraise -> store]`
