package nac

import (
	"errors"
	"fmt"

	"pera/internal/copland"
	"pera/internal/evidence"
	"pera/internal/netsim"
	"pera/internal/pera"
)

// Compilation: a parsed Policy is bound against a concrete forwarding
// path (Prim1–Prim3 resolved), yielding per-hop PERA obligations, lowered
// Copland terms for endpoint places, and the variable bindings chosen.
//
// Binding semantics, matching the paper's Table 1 examples:
//
//   - A concrete place atom (@Switch, @peer1) must appear on the path by
//     name; service places (@Appraiser) are not on the path.
//   - A variable atom (@p) binds to an attesting hop; non-attesting hops
//     may sit in between (AP3's "between q and r we do not require nodes
//     that support RA"). An atom at the end of the path may bind the
//     destination host (AP1's @client).
//   - A starred segment whose only path atom is a single variable (@hop)
//     replicates across every attesting hop in its span — AP1's ∀hop —
//     and compiles to one place-unbound obligation executed by every
//     PERA element the traffic crosses.
//   - `K |>` guards resolve through a TestRegistry: place predicates are
//     evaluated at bind time ("fail early"); packet predicates compile
//     into the obligation's guard list and run per packet on the switch.

// TestSpec gives meaning to a guard test name.
type TestSpec struct {
	// PlacePred, if non-nil, must hold of the concrete place at bind
	// time (e.g. Khop: "the operator has keys for this hop").
	PlacePred func(place string) bool
	// PacketGuards are compiled into the obligation and evaluated per
	// packet on the dataplane (e.g. P: "dport=4444").
	PacketGuards []pera.Guard
}

// TestRegistry maps guard test names to their specifications.
type TestRegistry map[string]TestSpec

// PathHop is one element of the concrete path being bound against.
type PathHop struct {
	Name      string
	Attesting bool // PERA-capable (has a RoT and the evidence stages)
	CanSign   bool // has a signing identity (end hosts, PERA switches)
}

// HostTerm is an endpoint Copland phrase to run at a concrete place.
type HostTerm struct {
	Place string
	Term  copland.Term
}

// Compiled is the output of Compile.
type Compiled struct {
	// Policy carries the per-hop obligations (wire-encodable for the
	// in-band header, or installable as standing config out-of-band).
	Policy *pera.Policy
	// HostTerms are endpoint phrases (e.g. AP1's client-side bank check)
	// in plain Copland, with variables substituted.
	HostTerms []HostTerm
	// Bindings records what each forall variable resolved to; the
	// per-hop variable maps to "*".
	Bindings map[string]string
}

// Options tune compilation.
type Options struct {
	// Nonce binds the policy run (the n parameter).
	Nonce []byte
	// Properties resolves property parameters (AP1's X) and attest
	// arguments to evidence details. Built-in names Hardware, Program,
	// Tables, State and Packet are always available.
	Properties map[string][]evidence.Detail
	// PolicyID stamps the compiled pera policy.
	PolicyID uint64
}

// Errors from compilation.
var (
	ErrNoBinding   = errors.New("nac: policy does not bind to path")
	ErrBadSegment  = errors.New("nac: unsupported segment structure")
	ErrGuardFails  = errors.New("nac: bind-time guard failed")
	ErrUnknownTest = errors.New("nac: unknown guard test")
)

var builtinProps = map[string][]evidence.Detail{
	"Hardware": {evidence.DetailHardware},
	"Program":  {evidence.DetailProgram},
	"Tables":   {evidence.DetailTables},
	"State":    {evidence.DetailProgState},
	"Packet":   {evidence.DetailPackets},
}

// serviceASPs mark an atom as an appraiser-service phrase rather than a
// path hop.
var serviceASPs = map[string]bool{
	"appraise": true, "store": true, "retrieve": true, "certify": true,
}

// atom is one @place phrase extracted from a segment.
type atom struct {
	place   string
	guard   string // test name guarding the phrase ("" = none)
	body    Term   // the phrase inside @place [...]
	service bool   // appraiser-service atom (not on the path)
}

// flatten extracts the ordered atoms of a segment. Segments must be
// (possibly guarded) @place phrases composed with ->, -<-, or -~-.
func flatten(t Term) ([]atom, error) {
	switch n := t.(type) {
	case *At:
		a := atom{place: n.Place, body: n.Body}
		if g, ok := n.Body.(*Guard); ok {
			a.guard = g.Test
			a.body = g.Body
		}
		a.service = isServiceBody(a.body)
		return []atom{a}, nil
	case *Guard:
		inner, err := flatten(n.Body)
		if err != nil {
			return nil, err
		}
		if len(inner) > 0 && inner[0].guard == "" {
			inner[0].guard = n.Test
		}
		return inner, nil
	case *LSeq:
		return flatten2(n.L, n.R)
	case *BSeq:
		return flatten2(n.L, n.R)
	case *BPar:
		return flatten2(n.L, n.R)
	default:
		return nil, fmt.Errorf("%w: segment atom %T (%s)", ErrBadSegment, t, t)
	}
}

func flatten2(l, r Term) ([]atom, error) {
	la, err := flatten(l)
	if err != nil {
		return nil, err
	}
	ra, err := flatten(r)
	if err != nil {
		return nil, err
	}
	return append(la, ra...), nil
}

// isServiceBody reports whether a phrase is an appraiser-service action
// chain (appraise -> store(n), retrieve(n), ...).
func isServiceBody(t Term) bool {
	switch n := t.(type) {
	case *ASP:
		return serviceASPs[n.Name]
	case *LSeq:
		return isServiceBody(n.L)
	case *Guard:
		return isServiceBody(n.Body)
	default:
		return false
	}
}

// attestSpec summarizes what an attestation phrase demands.
type attestSpec struct {
	claims []evidence.Detail
	hash   bool
	sign   bool
}

// errNotAttest is the quiet-mode classification failure: bodyKind probes
// every atom through parseAttest during binding, and formatting a rich
// error for the common "this is a host phrase" outcome was pure waste.
var errNotAttest = errors.New("nac: not an attest phrase")

// parseAttest interprets an atom body of the shape
// `attest(args) target -> # -> !` (any subset of the #/! suffix). A bare
// `!` body (AP3's @peer1 [Peer1 |> !]) yields an empty-claim signing
// spec.
func parseAttest(t Term, props map[string][]evidence.Detail) (*attestSpec, error) {
	return parseAttestQ(t, props, false)
}

// parseAttestQ is parseAttest with a quiet mode that returns the static
// errNotAttest instead of formatted errors, for classification probes.
func parseAttestQ(t Term, props map[string][]evidence.Detail, quiet bool) (*attestSpec, error) {
	spec := &attestSpec{}
	var walk func(Term) error
	walk = func(t Term) error {
		switch n := t.(type) {
		case *LSeq:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case *ASP:
			switch n.Name {
			case "#":
				spec.hash = true
				return nil
			case "!":
				spec.sign = true
				return nil
			case "_":
				return nil
			case "attest":
				names := append([]string(nil), n.Args...)
				if n.Target != "" {
					names = append(names, n.Target)
				}
				if n.SubTerm != nil {
					// attest(Hardware -~- Program): collect ASP names.
					Walk(n.SubTerm, func(s Term) bool {
						if a, ok := s.(*ASP); ok {
							names = append(names, a.Name)
						}
						return true
					})
				}
				for _, name := range names {
					if ds, ok := props[name]; ok {
						spec.claims = append(spec.claims, ds...)
						continue
					}
					if ds, ok := builtinProps[name]; ok {
						spec.claims = append(spec.claims, ds...)
						continue
					}
					// The conventional nonce parameter is freshness
					// binding, not a claim.
					if name == "n" {
						continue
					}
					if quiet {
						return errNotAttest
					}
					return fmt.Errorf("nac: unknown attest property %q", name)
				}
				return nil
			default:
				if quiet {
					return errNotAttest
				}
				return fmt.Errorf("%w: hop action %q", ErrBadSegment, n.Name)
			}
		default:
			if quiet {
				return errNotAttest
			}
			return fmt.Errorf("%w: hop phrase %T", ErrBadSegment, t)
		}
	}
	if err := walk(t); err != nil {
		return nil, err
	}
	return spec, nil
}

// segInfo is a pre-processed segment.
type segInfo struct {
	appraiser string
	repeated  bool   // single-variable starred segment (∀hop)
	repVar    string // the per-hop variable
	pathAtoms []atom // non-service atoms in order
}

// oblSrc records one matched hop atom pending materialization.
type oblSrc struct {
	place string // "" for replicated
	atom  atom
	appr  string
}

// hostSrc records one matched endpoint atom.
type hostSrc struct {
	place string
	atom  atom
}

// binder holds matcher state (backtracking over small paths).
type binder struct {
	policy   *Policy
	path     []PathHop
	reg      TestRegistry
	segs     []segInfo
	bindings map[string]string
	obls     []oblSrc
	hosts    []hostSrc
}

func (b *binder) checkPlaceGuard(test, place string) error {
	if test == "" {
		return nil
	}
	spec, ok := b.reg[test]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTest, test)
	}
	if spec.PlacePred != nil && !spec.PlacePred(place) {
		return fmt.Errorf("%w: %s at %s", ErrGuardFails, test, place)
	}
	return nil
}

// placeGuardOK is the boolean form of checkPlaceGuard for backtracking
// match attempts, where a failed guard just prunes a branch and the
// formatted error would be discarded.
func (b *binder) placeGuardOK(test, place string) bool {
	if test == "" {
		return true
	}
	spec, ok := b.reg[test]
	return ok && (spec.PlacePred == nil || spec.PlacePred(place))
}

func (b *binder) match(segIdx, atomIdx, pathPos int) bool {
	if segIdx == len(b.segs) {
		// Every attesting hop must be accounted for by the policy: an
		// unmatched PERA element after the pattern ends means the
		// binding does not describe this path.
		for _, h := range b.path[pathPos:] {
			if h.Attesting {
				return false
			}
		}
		return true
	}
	seg := &b.segs[segIdx]
	if seg.repeated {
		a := seg.pathAtoms[0]
		for end := pathPos; end <= len(b.path); end++ {
			ok := true
			for _, h := range b.path[pathPos:end] {
				if h.Attesting && !b.placeGuardOK(a.guard, h.Name) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			savedO := len(b.obls)
			b.obls = append(b.obls, oblSrc{place: "", atom: a, appr: seg.appraiser})
			b.bindings[seg.repVar] = "*"
			if b.match(segIdx+1, 0, end) {
				return true
			}
			b.obls = b.obls[:savedO]
			delete(b.bindings, seg.repVar)
		}
		return false
	}
	if atomIdx == len(seg.pathAtoms) {
		return b.match(segIdx+1, 0, pathPos)
	}
	a := seg.pathAtoms[atomIdx]
	isVar := b.policy.IsVar(a.place)
	kind := bodyKind(a.body)
	for pos := pathPos; pos < len(b.path); pos++ {
		h := b.path[pos]
		if b.hopMatches(a, isVar, kind, h) {
			if isVar {
				if prev, ok := b.bindings[a.place]; ok && prev != h.Name {
					// Conflicting rebinding: treat like a mismatch.
					if h.Attesting {
						return false
					}
					continue
				}
				b.bindings[a.place] = h.Name
			}
			savedO, savedH := len(b.obls), len(b.hosts)
			if h.Attesting && kind != bodyHost {
				b.obls = append(b.obls, oblSrc{place: h.Name, atom: a, appr: seg.appraiser})
			} else {
				b.hosts = append(b.hosts, hostSrc{place: h.Name, atom: a})
			}
			if b.match(segIdx, atomIdx+1, pos+1) {
				return true
			}
			b.obls, b.hosts = b.obls[:savedO], b.hosts[:savedH]
			if isVar {
				delete(b.bindings, a.place)
			}
		}
		// Only non-attesting hops may be passed over silently: an
		// attesting element the policy does not account for breaks the
		// binding — path attestation exists to notice exactly that.
		if h.Attesting {
			return false
		}
	}
	return false
}

// hopMatches reports whether atom a can bind hop h.
func (b *binder) hopMatches(a atom, isVar bool, kind int, h PathHop) bool {
	if !b.placeGuardOK(a.guard, h.Name) {
		return false
	}
	if !isVar && h.Name != a.place {
		return false
	}
	switch kind {
	case bodyAttest:
		// Attestation claims demand a PERA dataplane.
		return h.Attesting
	case bodySign:
		// Bare !/# phrases need a signing identity of some kind.
		return h.Attesting || h.CanSign
	default: // bodyHost
		// Host-side Copland phrases run on signing end systems.
		return h.CanSign && !h.Attesting
	}
}

// Body kinds for matching.
const (
	bodyHost   = iota // arbitrary Copland phrase: runs at an end system
	bodySign          // bare !/#/_ chain: needs any signing identity
	bodyAttest        // contains attest claims: needs a PERA dataplane
)

// bodyKind classifies an atom body for capability matching.
func bodyKind(t Term) int {
	hasAttest := false
	Walk(t, func(n Term) bool {
		if a, ok := n.(*ASP); ok && a.Name == "attest" {
			hasAttest = true
		}
		return true
	})
	if hasAttest {
		return bodyAttest
	}
	if _, err := parseAttestQ(t, builtinProps, true); err == nil {
		return bodySign
	}
	return bodyHost
}

// Compile binds policy against path and produces the executable pieces.
func Compile(policy *Policy, path []PathHop, reg TestRegistry, opts Options) (*Compiled, error) {
	props := map[string][]evidence.Detail{}
	for k, v := range opts.Properties {
		props[k] = v
	}

	b := &binder{policy: policy, path: path, reg: reg, bindings: map[string]string{}}
	for i, segTerm := range policy.Segments {
		atoms, err := flatten(segTerm)
		if err != nil {
			return nil, err
		}
		si := segInfo{}
		for _, a := range atoms {
			if a.service {
				si.appraiser = a.place
			} else {
				si.pathAtoms = append(si.pathAtoms, a)
			}
		}
		if i < len(policy.Segments)-1 && len(si.pathAtoms) == 1 && policy.IsVar(si.pathAtoms[0].place) {
			si.repeated = true
			si.repVar = si.pathAtoms[0].place
		}
		b.segs = append(b.segs, si)
	}

	if !b.match(0, 0, 0) {
		return nil, fmt.Errorf("%w: %s over path %v", ErrNoBinding, policy.RelyingParty, pathNames(path))
	}

	out := &Compiled{
		Policy:   &pera.Policy{ID: opts.PolicyID, Nonce: opts.Nonce},
		Bindings: map[string]string{},
	}
	for _, o := range b.obls {
		spec, err := parseAttest(o.atom.body, props)
		if err != nil {
			return nil, err
		}
		obl := pera.Obligation{
			Place:        o.place,
			Claims:       spec.claims,
			HashEvidence: spec.hash,
			SignEvidence: spec.sign,
			Appraiser:    o.appr,
		}
		if o.atom.guard != "" {
			obl.Guards = reg[o.atom.guard].PacketGuards
		}
		out.Policy.Obls = append(out.Policy.Obls, obl)
	}
	for _, h := range b.hosts {
		body := substPlaces(stripGuards(h.atom.body), b.bindings)
		ct, err := ToCopland(body)
		if err != nil {
			return nil, err
		}
		out.HostTerms = append(out.HostTerms, HostTerm{Place: h.place, Term: ct})
	}
	for k, v := range b.bindings {
		out.Bindings[k] = v
	}
	return out, nil
}

func pathNames(path []PathHop) []string {
	out := make([]string, len(path))
	for i, h := range path {
		out[i] = h.Name
	}
	return out
}

// stripGuards removes Guard nodes (their place predicates were evaluated
// at bind time; packet guards are meaningless on hosts).
func stripGuards(t Term) Term {
	switch n := t.(type) {
	case *Guard:
		return stripGuards(n.Body)
	case *At:
		return &At{Place: n.Place, Body: stripGuards(n.Body)}
	case *LSeq:
		return &LSeq{L: stripGuards(n.L), R: stripGuards(n.R)}
	case *BSeq:
		return &BSeq{LFlag: n.LFlag, RFlag: n.RFlag, L: stripGuards(n.L), R: stripGuards(n.R)}
	case *BPar:
		return &BPar{LFlag: n.LFlag, RFlag: n.RFlag, L: stripGuards(n.L), R: stripGuards(n.R)}
	case *ASP:
		if n.SubTerm != nil {
			cp := *n
			cp.SubTerm = stripGuards(n.SubTerm)
			return &cp
		}
		return n
	default:
		return t
	}
}

// PathFromNetwork derives the PathHop list for the shortest path between
// two nodes in a netsim network, marking PERA switches as attesting.
func PathFromNetwork(n *netsim.Network, src, dst string) []PathHop {
	var hops []PathHop
	for _, name := range n.ShortestPath(src, dst) {
		node, ok := n.Node(name)
		if !ok {
			continue
		}
		_, attesting := node.(*pera.Switch)
		_, isHost := node.(*netsim.Host)
		hops = append(hops, PathHop{Name: name, Attesting: attesting, CanSign: attesting || isHost})
	}
	return hops
}
