// Package nac implements Network-Aware Copland — the paper's §5.1 hybrid
// of Copland and NetKAT. It adds three primitives to Copland:
//
//   - Prim1, path abstraction: the `*=>` operator (NetKAT's Kleene star)
//     — the phrase to its left holds for zero or more hops along the
//     forwarding path;
//   - Prim2, place abstraction: `forall` binds place variables so
//     policies need not name concrete switches;
//   - Prim3, reachability + guarded attestation: the `|>` operator
//     (NetKAT's Boolean test prefix) gates attestation on a test, to
//     fail early and to select attestations by predicate.
//
// Concrete syntax (ASCII rendering of the paper's Table 1):
//
//	*bank<n, X>: forall hop, client:
//	    (@hop [Khop |> attest(n) X -> !] -<+ @Appraiser [appraise -> store(n)])
//	  *=> @client [Kclient |> @ks [av us bmon -> !] -<- @us [bmon us exts -> !]]
//
// The paper's overset-flag sequential arrow (−+ over >) is written with
// the same flag syntax as base Copland: `-<+`.
//
// Policies are compiled against a concrete network (internal/netsim):
// variables bind to real nodes, per-hop phrases become pera.Obligations
// carried in the in-band header or installed out-of-band, and endpoint
// phrases lower to plain Copland for host execution.
package nac

import (
	"fmt"
	"strings"

	"pera/internal/copland"
)

// Term is a network-aware Copland term. It mirrors the base Copland
// grammar plus the Guard node.
type Term interface {
	fmt.Stringer
	isTerm()
}

// ASP is a primitive action, as in base Copland. Args/Target/SubTerm have
// the same meaning; SubTerm is a nac.Term to permit nested guards.
type ASP struct {
	Name        string
	Args        []string
	TargetPlace string
	Target      string
	SubTerm     Term
}

// At runs Body at Place (which may be a forall-bound variable).
type At struct {
	Place string
	Body  Term
}

// Guard is the |> operator: Body runs only where test Test holds.
type Guard struct {
	Test string
	Body Term
}

// LSeq pipes evidence (->).
type LSeq struct{ L, R Term }

// BSeq is sequential branching (flags as in base Copland).
type BSeq struct {
	LFlag, RFlag copland.Flag
	L, R         Term
}

// BPar is parallel branching.
type BPar struct {
	LFlag, RFlag copland.Flag
	L, R         Term
}

func (*ASP) isTerm()   {}
func (*At) isTerm()    {}
func (*Guard) isTerm() {}
func (*LSeq) isTerm()  {}
func (*BSeq) isTerm()  {}
func (*BPar) isTerm()  {}

func (a *ASP) String() string {
	var b strings.Builder
	b.WriteString(a.Name)
	if a.SubTerm != nil {
		fmt.Fprintf(&b, "(%s)", a.SubTerm)
	} else if len(a.Args) > 0 {
		fmt.Fprintf(&b, "(%s)", strings.Join(a.Args, ", "))
	}
	if a.TargetPlace != "" {
		fmt.Fprintf(&b, " %s", a.TargetPlace)
	}
	if a.Target != "" {
		fmt.Fprintf(&b, " %s", a.Target)
	}
	return b.String()
}

func (a *At) String() string    { return fmt.Sprintf("@%s [%s]", a.Place, a.Body) }
func (g *Guard) String() string { return fmt.Sprintf("%s |> %s", g.Test, wrap(g.Body)) }
func (l *LSeq) String() string  { return fmt.Sprintf("%s -> %s", wrap(l.L), wrap(l.R)) }
func (s *BSeq) String() string {
	return fmt.Sprintf("%s %s<%s %s", wrap(s.L), s.LFlag, s.RFlag, wrap(s.R))
}
func (p *BPar) String() string {
	return fmt.Sprintf("%s %s~%s %s", wrap(p.L), p.LFlag, p.RFlag, wrap(p.R))
}

func wrap(t Term) string {
	switch t.(type) {
	case *LSeq, *BSeq, *BPar, *Guard:
		return "(" + t.String() + ")"
	default:
		return t.String()
	}
}

// Policy is a top-level network-aware phrase: a relying party, request
// parameters, forall-bound place variables, and path segments joined by
// the `*=>` operator. Segment i *=> segment i+1 means: segment i holds
// across zero or more hops, after which segment i+1's pattern continues.
type Policy struct {
	RelyingParty string
	Params       []string
	Vars         []string
	Segments     []Term
}

func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "*%s", p.RelyingParty)
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "<%s>", strings.Join(p.Params, ", "))
	}
	b.WriteString(": ")
	if len(p.Vars) > 0 {
		fmt.Fprintf(&b, "forall %s: ", strings.Join(p.Vars, ", "))
	}
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteString(" *=> ")
		}
		b.WriteString(wrap(s))
	}
	return b.String()
}

// IsVar reports whether name is bound by the policy's forall.
func (p *Policy) IsVar(name string) bool {
	for _, v := range p.Vars {
		if v == name {
			return true
		}
	}
	return false
}

// Walk visits every subterm in preorder; returning false stops descent.
func Walk(t Term, visit func(Term) bool) {
	if t == nil || !visit(t) {
		return
	}
	switch n := t.(type) {
	case *ASP:
		if n.SubTerm != nil {
			Walk(n.SubTerm, visit)
		}
	case *At:
		Walk(n.Body, visit)
	case *Guard:
		Walk(n.Body, visit)
	case *LSeq:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *BSeq:
		Walk(n.L, visit)
		Walk(n.R, visit)
	case *BPar:
		Walk(n.L, visit)
		Walk(n.R, visit)
	}
}

// Places returns the @-places of t in first-seen order.
func Places(t Term) []string {
	var out []string
	seen := map[string]bool{}
	Walk(t, func(n Term) bool {
		if at, ok := n.(*At); ok && !seen[at.Place] {
			seen[at.Place] = true
			out = append(out, at.Place)
		}
		return true
	})
	return out
}

// ToCopland lowers a guard-free nac term to base Copland. Guards must be
// resolved (checked and stripped) by the binder first; encountering one
// is an error.
func ToCopland(t Term) (copland.Term, error) {
	switch n := t.(type) {
	case *ASP:
		out := &copland.ASP{
			Name: n.Name, Args: append([]string(nil), n.Args...),
			TargetPlace: n.TargetPlace, Target: n.Target,
		}
		if n.SubTerm != nil {
			sub, err := ToCopland(n.SubTerm)
			if err != nil {
				return nil, err
			}
			out.SubTerm = sub
		}
		return out, nil
	case *At:
		body, err := ToCopland(n.Body)
		if err != nil {
			return nil, err
		}
		return &copland.At{Place: n.Place, Body: body}, nil
	case *Guard:
		return nil, fmt.Errorf("nac: unresolved guard %q in lowering", n.Test)
	case *LSeq:
		l, err := ToCopland(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ToCopland(n.R)
		if err != nil {
			return nil, err
		}
		return &copland.LSeq{L: l, R: r}, nil
	case *BSeq:
		l, err := ToCopland(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ToCopland(n.R)
		if err != nil {
			return nil, err
		}
		return &copland.BSeq{LFlag: n.LFlag, RFlag: n.RFlag, L: l, R: r}, nil
	case *BPar:
		l, err := ToCopland(n.L)
		if err != nil {
			return nil, err
		}
		r, err := ToCopland(n.R)
		if err != nil {
			return nil, err
		}
		return &copland.BPar{LFlag: n.LFlag, RFlag: n.RFlag, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("nac: cannot lower %T", t)
	}
}

// substPlaces rewrites variable place names per the binding.
func substPlaces(t Term, bind map[string]string) Term {
	switch n := t.(type) {
	case *ASP:
		cp := *n
		if v, ok := bind[cp.TargetPlace]; ok {
			cp.TargetPlace = v
		}
		if n.SubTerm != nil {
			cp.SubTerm = substPlaces(n.SubTerm, bind)
		}
		return &cp
	case *At:
		place := n.Place
		if v, ok := bind[place]; ok {
			place = v
		}
		return &At{Place: place, Body: substPlaces(n.Body, bind)}
	case *Guard:
		return &Guard{Test: n.Test, Body: substPlaces(n.Body, bind)}
	case *LSeq:
		return &LSeq{L: substPlaces(n.L, bind), R: substPlaces(n.R, bind)}
	case *BSeq:
		return &BSeq{LFlag: n.LFlag, RFlag: n.RFlag, L: substPlaces(n.L, bind), R: substPlaces(n.R, bind)}
	case *BPar:
		return &BPar{LFlag: n.LFlag, RFlag: n.RFlag, L: substPlaces(n.L, bind), R: substPlaces(n.R, bind)}
	default:
		return t
	}
}
