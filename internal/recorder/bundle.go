package recorder

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pera/internal/auditlog"
)

// Bundle archive layout: a gzip'd tar whose first entry is
// manifest.json; every later entry is listed in the manifest with its
// SHA-256, and the ledger tail carries the chain link needed to
// re-verify it standalone. The archive file name embeds the SHA-256 of
// the finished .tar.gz bytes — the bundle's content address — so a
// bundle can never be silently edited in place.
const (
	ManifestName = "manifest.json"
	// ManifestSchema versions the manifest layout for offline readers.
	ManifestSchema = 1

	bundlePrefix = "incident-"
	bundleSuffix = ".tar.gz"
)

// Trigger records what caused a bundle.
type Trigger struct {
	Kind   string `json:"kind"` // anomaly | alert | manual
	Rule   string `json:"rule,omitempty"`
	Place  string `json:"place,omitempty"`
	Reason string `json:"reason,omitempty"`
	TSNS   int64  `json:"ts_ns"`
}

// ManifestFile is one archived file's identity.
type ManifestFile struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// LedgerInfo locates the bundled ledger tail within the full chain.
// PrevLink is the full chain link preceding the tail's first record;
// with the MAC key it re-verifies the tail without the rest of the
// ledger (auditlog.VerifyTailBytes).
type LedgerInfo struct {
	Total    int    `json:"total"`   // records in the full ledger at snapshot
	Start    int    `json:"start"`   // index of the tail's first record
	Records  int    `json:"records"` // records in the tail
	PrevLink string `json:"prev_link"`
	KeyID    string `json:"key_id,omitempty"`
}

// Manifest is the first tar entry of every bundle.
type Manifest struct {
	Schema    int            `json:"schema"`
	Service   string         `json:"service"`
	CreatedNS int64          `json:"created_ns"`
	Trigger   Trigger        `json:"trigger"`
	Files     []ManifestFile `json:"files"`
	Ledger    *LedgerInfo    `json:"ledger,omitempty"`
}

// BundlerConfig tunes incident capture.
type BundlerConfig struct {
	// Dir is where bundles land. Empty disables bundling (history and
	// detection still run).
	Dir string
	// Debounce is the minimum spacing between bundles (default 30s): a
	// burst of anomalies from one incident yields one bundle.
	Debounce time.Duration
	// MaxBytes is the disk budget for Dir (default 64 MiB): after each
	// write, oldest bundles are deleted until the total fits.
	MaxBytes int64
	// TailRecords bounds the bundled ledger tail (default 512).
	TailRecords int
	// Key verifies and re-anchors the ledger tail (nil = DevKey).
	Key []byte
	// KeyID names the key in the manifest (default "dev").
	KeyID string
}

func (c BundlerConfig) withDefaults() BundlerConfig {
	if c.Debounce <= 0 {
		c.Debounce = 30 * time.Second
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.TailRecords <= 0 {
		c.TailRecords = 512
	}
	if c.KeyID == "" {
		c.KeyID = "dev"
	}
	return c
}

// capture is everything the bundler snapshots, gathered by the Recorder
// at trigger time so the bundler stays decoupled from the live types.
type capture struct {
	history     []Series // coarse + fine dump
	otlp        []byte   // OTLP/JSON trace export
	observatory []byte   // collector snapshot JSON
	coverage    []byte   // watchdog coverage JSON
	alerts      []byte   // watchdog alerts JSON
	config      []byte   // flattened flag/config JSON
	anomaly     []byte   // the triggering event JSON
	profCPU     []byte   // newest captured CPU profile (pprof binary)
	profMutex   []byte   // newest captured mutex profile (pprof binary)
	profDiff    []byte   // profiler baseline diff JSON
	ledgerPath  string   // flushed ledger file to tail
}

// writeBundle builds, content-addresses and atomically publishes one
// bundle. Returns the final file path.
func writeBundle(cfg BundlerConfig, service string, trig Trigger, cap capture) (string, error) {
	type section struct {
		name string
		data []byte
	}
	var sections []section
	add := func(name string, data []byte) {
		if len(data) > 0 {
			sections = append(sections, section{name, data})
		}
	}

	hist, err := json.MarshalIndent(struct {
		Series []Series `json:"series"`
	}{cap.history}, "", " ")
	if err != nil {
		return "", fmt.Errorf("recorder: marshal history: %w", err)
	}
	add("history.json", hist)
	add("trace_otlp.json", cap.otlp)
	add("observatory.json", cap.observatory)
	add("coverage.json", cap.coverage)
	add("alerts.json", cap.alerts)
	add("config.json", cap.config)
	add("anomaly.json", cap.anomaly)

	// Runtime state: goroutine dump (text) and heap profile (pprof
	// binary) — the "what was the process doing" half of the bundle.
	var gor bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&gor, 1)
	}
	add("goroutines.txt", gor.Bytes())
	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		p.WriteTo(&heap, 0)
	}
	add("heap.pprof", heap.Bytes())

	// Continuous-profiler capture: the newest CPU and mutex windows and
	// the stage/function diff against the pinned baseline — the "why did
	// it get slow" half (only present when a profiler is wired).
	add("cpu.pprof", cap.profCPU)
	add("mutex.pprof", cap.profMutex)
	add("top_diff.json", cap.profDiff)

	// Chain-verified ledger tail. A verification failure is itself part
	// of the incident: record the error in the bundle rather than
	// aborting the capture.
	var ledger *LedgerInfo
	if cap.ledgerPath != "" {
		tail, err := auditlog.VerifyTailFile(cap.ledgerPath, cfg.Key, cfg.TailRecords)
		if err != nil {
			add("ledger_error.txt", []byte(err.Error()+"\n"))
		} else {
			add("ledger_tail.jsonl", tail.Raw)
			ledger = &LedgerInfo{
				Total:    tail.Total,
				Start:    tail.Start,
				Records:  tail.Total - tail.Start,
				PrevLink: hex.EncodeToString(tail.PrevLink),
				KeyID:    cfg.KeyID,
			}
		}
	}

	man := Manifest{
		Schema:    ManifestSchema,
		Service:   service,
		CreatedNS: trig.TSNS,
		Trigger:   trig,
		Ledger:    ledger,
	}
	for _, s := range sections {
		sum := sha256.Sum256(s.data)
		man.Files = append(man.Files, ManifestFile{
			Name: s.name, Size: int64(len(s.data)), SHA256: hex.EncodeToString(sum[:]),
		})
	}
	manBytes, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return "", fmt.Errorf("recorder: marshal manifest: %w", err)
	}

	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	writeEntry := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)),
			ModTime: time.Unix(0, trig.TSNS).UTC(),
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := writeEntry(ManifestName, manBytes); err != nil {
		return "", fmt.Errorf("recorder: write manifest: %w", err)
	}
	for _, s := range sections {
		if err := writeEntry(s.name, s.data); err != nil {
			return "", fmt.Errorf("recorder: write %s: %w", s.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return "", fmt.Errorf("recorder: close tar: %w", err)
	}
	if err := gz.Close(); err != nil {
		return "", fmt.Errorf("recorder: close gzip: %w", err)
	}

	sum := sha256.Sum256(buf.Bytes())
	name := fmt.Sprintf("%s%d-%s%s",
		bundlePrefix, time.Unix(0, trig.TSNS).Unix(), hex.EncodeToString(sum[:6]), bundleSuffix)
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("recorder: %w", err)
	}
	final := filepath.Join(cfg.Dir, name)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("recorder: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("recorder: %w", err)
	}
	return final, nil
}

// enforceBudget deletes oldest bundles in dir until the total size fits
// maxBytes. Returns how many were deleted.
func enforceBudget(dir string, maxBytes int64) int {
	infos := ListBundles(dir)
	var total int64
	for _, bi := range infos {
		total += bi.Size
	}
	deleted := 0
	for i := len(infos) - 1; i >= 0 && total > maxBytes; i-- { // oldest last
		if os.Remove(infos[i].Path) == nil {
			total -= infos[i].Size
			deleted++
		}
	}
	return deleted
}

// BundleInfo is one on-disk bundle, newest first in ListBundles output.
type BundleInfo struct {
	Path      string `json:"path"`
	ID        string `json:"id"` // content-address fragment from the file name
	Size      int64  `json:"size"`
	CreatedNS int64  `json:"created_ns"` // file mtime
}

// ListBundles returns the bundles in dir, newest first.
func ListBundles(dir string) []BundleInfo {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []BundleInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, bundlePrefix) || !strings.HasSuffix(name, bundleSuffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		id := strings.TrimSuffix(name, bundleSuffix)
		if i := strings.LastIndexByte(id, '-'); i >= 0 {
			id = id[i+1:]
		}
		out = append(out, BundleInfo{
			Path: filepath.Join(dir, name), ID: id,
			Size: fi.Size(), CreatedNS: fi.ModTime().UnixNano(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedNS > out[j].CreatedNS })
	return out
}

// Bundle is an opened incident archive.
type Bundle struct {
	Path     string
	Manifest Manifest
	Files    map[string][]byte
}

// OpenBundle reads and parses one bundle archive. The manifest must be
// the first entry; the remaining entries are loaded whole (bundles are
// bounded by the ring sizes, so whole-file reads stay small).
func OpenBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("recorder: %s: %w", path, err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	b := &Bundle{Path: path, Files: make(map[string][]byte)}
	first := true
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("recorder: %s: %w", path, err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("recorder: %s: read %s: %w", path, hdr.Name, err)
		}
		if first {
			if hdr.Name != ManifestName {
				return nil, fmt.Errorf("recorder: %s: first entry is %q, want %s", path, hdr.Name, ManifestName)
			}
			if err := json.Unmarshal(data, &b.Manifest); err != nil {
				return nil, fmt.Errorf("recorder: %s: parse manifest: %w", path, err)
			}
			first = false
			continue
		}
		b.Files[hdr.Name] = data
	}
	if first {
		return nil, fmt.Errorf("recorder: %s: empty archive", path)
	}
	return b, nil
}

// Verify checks every archived file against its manifest digest and,
// when the bundle carries a ledger tail, re-verifies the tail's HMAC
// chain from the manifest's prev link under key (nil = DevKey). Returns
// the number of verified ledger records.
func (b *Bundle) Verify(key []byte) (int, error) {
	for _, mf := range b.Manifest.Files {
		data, ok := b.Files[mf.Name]
		if !ok {
			return 0, fmt.Errorf("recorder: %s: %s listed in manifest but missing", b.Path, mf.Name)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != mf.SHA256 {
			return 0, fmt.Errorf("recorder: %s: %s digest mismatch", b.Path, mf.Name)
		}
	}
	for name := range b.Files {
		if !b.inManifest(name) {
			return 0, fmt.Errorf("recorder: %s: %s present but not in manifest", b.Path, name)
		}
	}
	if b.Manifest.Ledger == nil {
		return 0, nil
	}
	prev, err := hex.DecodeString(b.Manifest.Ledger.PrevLink)
	if err != nil {
		return 0, fmt.Errorf("recorder: %s: bad prev link: %w", b.Path, err)
	}
	n, err := auditlog.VerifyTailBytes(b.Files["ledger_tail.jsonl"], key, prev)
	if err != nil {
		return n, fmt.Errorf("recorder: %s: ledger tail: %w", b.Path, err)
	}
	return n, nil
}

func (b *Bundle) inManifest(name string) bool {
	for _, mf := range b.Manifest.Files {
		if mf.Name == name {
			return true
		}
	}
	return false
}
