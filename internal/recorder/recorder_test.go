package recorder

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pera/internal/auditlog"
	"pera/internal/freshness"
	"pera/internal/telemetry"
)

// fakeClock is a manually-advanced Config.Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// captureSink records every freshness event it sees.
type captureSink struct {
	mu     sync.Mutex
	events []freshness.Event
}

func (s *captureSink) Emit(e freshness.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *captureSink) byKind(kind string) []freshness.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []freshness.Event
	for _, e := range s.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestRecorderScrapeAndHistoryEndpoint(t *testing.T) {
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pera_pool_queue_depth")
	r := New(Config{Clock: clock.Now})
	r.SetRegistry(reg)
	r.Instrument(reg)

	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		r.Scrape()
		clock.Advance(time.Second)
	}

	// /history.json with no metric: the index.
	rw := httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath, nil))
	var idx struct {
		Series []SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range idx.Series {
		if s.ID == "pera_pool_queue_depth" {
			found = true
			if s.Points != 5 || s.Last != 4 {
				t.Fatalf("index row: %+v", s)
			}
		}
		if s.ID == "pera_recorder_scrapes_total" && s.Last == 0 {
			t.Fatal("recorder self-metrics not scraped")
		}
	}
	if !found {
		t.Fatalf("no pera_pool_queue_depth in index (%d series)", len(idx.Series))
	}

	// ?metric= selects one series; &since trims; &step=10s selects coarse.
	rw = httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath+"?metric=pera_pool_queue_depth&since=2s", nil))
	var out struct {
		Series []Series `json:"series"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 || len(out.Series[0].Points) != 2 {
		t.Fatalf("since=2s: %d series / %d points, want 1/2", len(out.Series), len(out.Series[0].Points))
	}
	rw = httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath+"?metric=pera_pool_queue_depth&step=10s", nil))
	out.Series = nil
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 || len(out.Series[0].Points) != 1 {
		t.Fatalf("coarse query: want the single 10s bucket, got %+v", out.Series)
	}
	rw = httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath+"?metric=x&since=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("bad since: status %d, want 400", rw.Code)
	}
}

// stepSpike drives the recorder's watched gauge flat for warmup scrapes,
// then steps it, returning the recorder, clock and sink.
func spikeRecorder(t *testing.T, dir string) (*Recorder, *captureSink) {
	t.Helper()
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pera_pool_queue_depth")
	r := New(Config{
		Clock:   clock.Now,
		Service: "test",
		Bundle:  BundlerConfig{Dir: dir},
	})
	r.SetRegistry(reg)
	sink := &captureSink{}
	r.AddSink(sink)
	for i := 0; i < 30; i++ {
		g.Set(5)
		r.Scrape()
		clock.Advance(time.Second)
	}
	g.Set(5000)
	r.Scrape()
	return r, sink
}

func TestRecorderAnomalyDispatchAndBundle(t *testing.T) {
	dir := t.TempDir()
	r, sink := spikeRecorder(t, dir)

	if got := r.Anomalies(); got != 1 {
		t.Fatalf("anomalies = %d, want 1", got)
	}
	evs := sink.byKind(freshness.KindAnomaly)
	if len(evs) != 1 {
		t.Fatalf("sink saw %d anomaly events, want 1", len(evs))
	}
	if evs[0].Alert.Rule != "anomaly:"+RuleRobustZ {
		t.Fatalf("event rule = %q", evs[0].Alert.Rule)
	}
	if r.Bundles() != 1 {
		t.Fatalf("bundles = %d, want 1", r.Bundles())
	}
	b, err := OpenBundle(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger.Kind != "anomaly" || b.Manifest.Trigger.Rule != RuleRobustZ {
		t.Fatalf("trigger: %+v", b.Manifest.Trigger)
	}
	var a Anomaly
	if err := json.Unmarshal(b.Files["anomaly.json"], &a); err != nil {
		t.Fatalf("anomaly.json: %v", err)
	}
	if a.SeriesID != "pera_pool_queue_depth" || a.Value != 5000 {
		t.Fatalf("bundled anomaly: %+v", a)
	}
	// The bundled history contains both resolutions of the tripped series.
	var hist struct {
		Series []Series `json:"series"`
	}
	if err := json.Unmarshal(b.Files["history.json"], &hist); err != nil {
		t.Fatal(err)
	}
	fine, coarse := false, false
	for _, s := range hist.Series {
		switch s.ID {
		case "pera_pool_queue_depth":
			fine = true
		case "pera_pool_queue_depth/coarse":
			coarse = true
		}
	}
	if !fine || !coarse {
		t.Fatalf("bundled history missing resolutions (fine=%v coarse=%v)", fine, coarse)
	}
}

func TestRecorderDebounceAndLocalizationBypass(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	r := New(Config{
		Clock:  clock.Now,
		Bundle: BundlerConfig{Dir: dir, Debounce: 30 * time.Second},
	})

	now := func() int64 { return clock.Now().UnixNano() }
	r.maybeBundle(Trigger{Kind: "anomaly", Rule: RuleRateSpike, TSNS: now()}, nil)
	if r.Bundles() != 1 {
		t.Fatalf("first trigger: %d bundles", r.Bundles())
	}
	// A second generic trigger inside the window is debounced...
	clock.Advance(2 * time.Second)
	r.maybeBundle(Trigger{Kind: "anomaly", Rule: RuleRateSpike, TSNS: now()}, nil)
	if r.Bundles() != 1 {
		t.Fatalf("debounce failed: %d bundles", r.Bundles())
	}
	if r.debounced.Load() != 1 {
		t.Fatalf("debounced counter = %d", r.debounced.Load())
	}
	// ...but the localization trigger — the capture that names the
	// compromised switch — bypasses it.
	clock.Advance(time.Second)
	r.maybeBundle(Trigger{Kind: "anomaly", Rule: RuleLocalization, Place: "sw2", TSNS: now()}, nil)
	if r.Bundles() != 2 {
		t.Fatalf("localization was debounced: %d bundles", r.Bundles())
	}
	// After the debounce window, generic triggers capture again.
	clock.Advance(31 * time.Second)
	r.maybeBundle(Trigger{Kind: "alert", Rule: "stale-evidence", TSNS: now()}, nil)
	if r.Bundles() != 3 {
		t.Fatalf("post-window trigger: %d bundles", r.Bundles())
	}
}

func TestRecorderAlertSinkTriggersBundle(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	r := New(Config{Clock: clock.Now, Bundle: BundlerConfig{Dir: dir}})
	s := r.Sink()
	// Non-fired events are ignored.
	s.Emit(freshness.Event{Kind: "resolved", Alert: freshness.Alert{Rule: "stale-evidence"}})
	s.Emit(freshness.Event{Kind: freshness.KindAnomaly, Alert: freshness.Alert{Rule: "anomaly:robust-z"}})
	if r.Bundles() != 0 {
		t.Fatalf("non-fired events bundled: %d", r.Bundles())
	}
	s.Emit(freshness.Event{Kind: "fired", Alert: freshness.Alert{
		Rule: "stale-evidence", Place: "sw3", Reason: "evidence too old",
	}})
	if r.Bundles() != 1 {
		t.Fatalf("fired alert produced %d bundles", r.Bundles())
	}
	b, err := OpenBundle(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger.Kind != "alert" || b.Manifest.Trigger.Place != "sw3" {
		t.Fatalf("trigger: %+v", b.Manifest.Trigger)
	}
}

func TestRecorderAnomalySealedOnLedger(t *testing.T) {
	// The anomaly event and the incident-bundle record both land on the
	// hash-chained ledger through the shared freshness sink pipeline.
	dir := t.TempDir()
	ledger := filepath.Join(dir, "trail.jsonl")
	w, err := auditlog.Create(ledger, auditlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pera_pool_queue_depth")
	r := New(Config{Clock: clock.Now, Bundle: BundlerConfig{Dir: dir}})
	r.SetRegistry(reg)
	r.SetLedger(w, ledger)
	r.AddSink(freshness.NewAuditSink(w))
	for i := 0; i < 30; i++ {
		g.Set(5)
		r.Scrape()
		clock.Advance(time.Second)
	}
	g.Set(5000)
	r.Scrape()
	w.Close()

	if _, err := auditlog.VerifyFile(ledger, nil); err != nil {
		t.Fatalf("ledger verify: %v", err)
	}
	recs, err := auditlog.ReadLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	var sawAnomaly, sawIncident bool
	for _, rec := range recs {
		switch rec.Event {
		case auditlog.EventAnomaly:
			sawAnomaly = true
		case auditlog.EventIncident:
			sawIncident = true
		}
	}
	if !sawAnomaly || !sawIncident {
		t.Fatalf("ledger events: anomaly=%v incident=%v, want both", sawAnomaly, sawIncident)
	}
	// The bundle's own tail verifies and includes the anomaly record.
	b, err := OpenBundle(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Verify(nil); err != nil {
		t.Fatalf("bundle verify: %v", err)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.SetRegistry(nil)
	r.SetTracer(nil)
	r.SetCollector(nil)
	r.SetWatchdog(nil)
	r.SetLedger(nil, "")
	r.SetConfigInfo(nil)
	r.AddSink(nil)
	r.Scrape()
	r.Start()
	r.Close()
	if r.Store() != nil || r.Sink() != nil || r.LastBundle() != "" {
		t.Fatal("nil recorder leaked state")
	}
	if r.Anomalies() != 0 || r.Bundles() != 0 {
		t.Fatal("nil recorder counted")
	}
	if _, err := r.TriggerBundle("x"); err == nil {
		t.Fatal("nil recorder bundled")
	}
	// A live recorder with no bundle dir records history but never bundles.
	live := New(Config{})
	live.SetRegistry(telemetry.NewRegistry())
	live.Scrape()
	if _, err := live.TriggerBundle("x"); err == nil {
		t.Fatal("bundling disabled but TriggerBundle succeeded")
	}
}

func TestRecorderStartClose(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("g").Set(1)
	r := New(Config{Interval: time.Millisecond})
	r.SetRegistry(reg)
	r.Start()
	r.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s, _, _, _, _ := r.Store().Stats(); s > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never scraped")
		}
		time.Sleep(time.Millisecond)
	}
	r.Close()
	r.Close() // idempotent
}

// stubProfiler is a canned ProfileSource.
type stubProfiler struct{ cpu, mutex, diff []byte }

func (s *stubProfiler) Artifact(kind string) ([]byte, int64, bool) {
	switch kind {
	case "cpu":
		return s.cpu, 7, len(s.cpu) > 0
	case "mutex":
		return s.mutex, 7, len(s.mutex) > 0
	}
	return nil, 0, false
}

func (s *stubProfiler) TopDiffJSON() []byte { return s.diff }

func TestRecorderProfileRegressionTriggersBundle(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	r := New(Config{Clock: clock.Now, Bundle: BundlerConfig{Dir: dir}})
	r.SetProfiler(&stubProfiler{
		cpu:   []byte("cpu-window-bytes"),
		mutex: []byte("mutex-window-bytes"),
		diff:  []byte(`{"stages":[{"stage":"verify","delta":0.4}]}`),
	})

	r.Sink().Emit(freshness.Event{Kind: freshness.KindProfile, Alert: freshness.Alert{
		Rule: "profile_regression:stage:verify", Place: "ap",
		Reason: "stage verify at ap grew from 20% to 60% of CPU",
	}})
	if r.Bundles() != 1 {
		t.Fatalf("profile regression produced %d bundles, want 1", r.Bundles())
	}
	b, err := OpenBundle(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger.Kind != "profile" || b.Manifest.Trigger.Place != "ap" {
		t.Fatalf("trigger: %+v", b.Manifest.Trigger)
	}
	if string(b.Files["cpu.pprof"]) != "cpu-window-bytes" {
		t.Fatalf("cpu.pprof = %q", b.Files["cpu.pprof"])
	}
	if string(b.Files["mutex.pprof"]) != "mutex-window-bytes" {
		t.Fatalf("mutex.pprof = %q", b.Files["mutex.pprof"])
	}
	if len(b.Files["top_diff.json"]) == 0 {
		t.Fatal("bundle missing top_diff.json")
	}
	// The manifest checksums cover the profile sections too.
	names := map[string]bool{}
	for _, f := range b.Manifest.Files {
		names[f.Name] = true
	}
	for _, want := range []string{"cpu.pprof", "mutex.pprof", "top_diff.json"} {
		if !names[want] {
			t.Fatalf("manifest missing %s: %+v", want, b.Manifest.Files)
		}
	}
}

func TestRecorderWithoutProfilerBundlesClean(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	r := New(Config{Clock: clock.Now, Bundle: BundlerConfig{Dir: dir}})
	if _, err := r.TriggerBundle("manual"); err != nil {
		t.Fatal(err)
	}
	b, err := OpenBundle(r.LastBundle())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "mutex.pprof", "top_diff.json"} {
		if _, ok := b.Files[name]; ok {
			t.Fatalf("unwired profiler left %s in the bundle", name)
		}
	}
}
