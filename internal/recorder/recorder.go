package recorder

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/freshness"
	"pera/internal/observatory"
	"pera/internal/telemetry"
)

// Config tunes a Recorder.
type Config struct {
	// Interval is the scrape tick for Start (default 1s). Harness runs
	// drive Scrape directly instead, so simulations are deterministic.
	Interval time.Duration
	// Service names the process in bundles and OTLP exports (default
	// "pera").
	Service string
	Store   StoreConfig
	Detect  DetectorConfig
	Bundle  BundlerConfig
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Service == "" {
		c.Service = "pera"
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Recorder is the flight-recorder facade: it owns the history store,
// drives the anomaly engine on each scrape, watches the observatory's
// compromise localization, fans anomaly events out to the freshness
// sink pipeline, and triggers incident bundles. All methods are
// nil-safe so wiring code needs no guards, like the tracer and ledger.
type Recorder struct {
	cfg    Config
	store  *Store
	engine *Engine

	reg        *telemetry.Registry
	tracer     *telemetry.FlowTracer
	collector  *observatory.Collector
	watchdog   *freshness.Watchdog
	audit      *auditlog.Writer
	ledgerPath string
	configInfo []byte
	profiler   ProfileSource

	sinkMu sync.RWMutex
	sinks  []freshness.Sink

	// scrapeMu serializes Scrape: the ticker goroutine and any direct
	// harness calls must not interleave engine evaluation.
	scrapeMu sync.Mutex

	// bundleMu serializes capture + debounce state; alerts arrive from
	// the watchdog's goroutine while scrapes run elsewhere.
	bundleMu     sync.Mutex
	lastBundleNS int64
	locSeen      bool

	quit, done chan struct{}
	started    atomic.Bool

	anomalies atomic.Uint64
	bundles   atomic.Uint64
	debounced atomic.Uint64
	bundleErr atomic.Uint64
	reclaimed atomic.Uint64
	lastPath  atomic.Value // string: newest bundle path
}

// New builds a recorder. Wire sources with the Set* methods, sinks with
// AddSink, then either Start the ticker or drive Scrape directly.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	cfg.Bundle = cfg.Bundle.withDefaults()
	store := NewStore(cfg.Store)
	return &Recorder{
		cfg:    cfg,
		store:  store,
		engine: NewEngine(store, cfg.Detect),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// SetRegistry sets the scraped telemetry registry.
func (r *Recorder) SetRegistry(reg *telemetry.Registry) {
	if r != nil {
		r.reg = reg
	}
}

// SetTracer sets the span ring bundled as trace_otlp.json.
func (r *Recorder) SetTracer(t *telemetry.FlowTracer) {
	if r != nil {
		r.tracer = t
	}
}

// SetCollector sets the observatory collector: its snapshot is bundled
// and its compromise localization is watched as an anomaly source.
func (r *Recorder) SetCollector(c *observatory.Collector) {
	if r != nil {
		r.collector = c
	}
}

// SetWatchdog sets the freshness watchdog whose coverage and alert
// surfaces are bundled. Attach r.Sink() to the watchdog separately to
// trigger bundles on alert firings.
func (r *Recorder) SetWatchdog(w *freshness.Watchdog) {
	if r != nil {
		r.watchdog = w
	}
}

// SetLedger wires the audit writer (flushed synchronously before each
// capture) and the ledger file the tail is read from.
func (r *Recorder) SetLedger(w *auditlog.Writer, path string) {
	if r != nil {
		r.audit = w
		r.ledgerPath = path
	}
}

// ProfileSource is the slice of the continuous profiler the recorder
// consumes: newest raw artifacts for bundling plus the rendered
// baseline diff. internal/profiler.(*Profiler) implements it; an
// interface keeps the recorder free of a profiler dependency (and the
// import cycle a direct one would create through the sink pipeline).
type ProfileSource interface {
	Artifact(kind string) (data []byte, tsNS int64, ok bool)
	TopDiffJSON() []byte
}

// SetProfiler wires the continuous profiler so incident bundles carry
// cpu.pprof, mutex.pprof and top_diff.json. Attach r.Sink() to the
// profiler separately to trigger bundles on profile regressions.
func (r *Recorder) SetProfiler(p ProfileSource) {
	if r != nil {
		r.profiler = p
	}
}

// SetConfigInfo records the process configuration (flag values) that
// lands in every bundle as config.json.
func (r *Recorder) SetConfigInfo(kv map[string]string) {
	if r == nil || len(kv) == 0 {
		return
	}
	b, err := json.MarshalIndent(kv, "", " ")
	if err == nil {
		r.configInfo = b
	}
}

// AddSink attaches a sink for anomaly events — typically the same
// LogSink/JSONLSink/AuditSink instances the watchdog publishes to, so
// anomalies and alerts share one pipeline.
func (r *Recorder) AddSink(s freshness.Sink) {
	if r == nil || s == nil {
		return
	}
	r.sinkMu.Lock()
	r.sinks = append(r.sinks, s)
	r.sinkMu.Unlock()
}

// Store exposes the history store (for /history.json and tests).
func (r *Recorder) Store() *Store {
	if r == nil {
		return nil
	}
	return r.store
}

// alertSink adapts the Recorder into a freshness.Sink: watchdog alert
// firings and profiler regression findings trigger incident bundles.
// Anomaly events are ignored here — the recorder originated them and
// has already bundled.
type alertSink struct{ r *Recorder }

func (s alertSink) Emit(e freshness.Event) {
	kind := ""
	switch e.Kind {
	case "fired":
		kind = "alert"
	case freshness.KindProfile:
		kind = "profile"
	default:
		return
	}
	s.r.maybeBundle(Trigger{
		Kind: kind, Rule: e.Alert.Rule, Place: e.Alert.Place,
		Reason: e.Alert.Reason, TSNS: s.r.now(),
	}, nil)
}

// Sink returns the adapter to register on the watchdog (AddSink) so
// firing alerts capture bundles.
func (r *Recorder) Sink() freshness.Sink {
	if r == nil {
		return nil
	}
	return alertSink{r}
}

func (r *Recorder) now() int64 { return r.cfg.Clock().UnixNano() }

// Scrape runs one recorder tick: snapshot the registry into the store,
// evaluate the anomaly detectors, check the observatory localization,
// and dispatch/bundle anything that tripped. Harnesses call it directly
// for determinism; Start drives it on a wall-clock ticker.
func (r *Recorder) Scrape() {
	if r == nil || r.reg == nil {
		return
	}
	r.scrapeMu.Lock()
	now := r.now()
	r.store.Observe(now, r.reg.Snapshot())
	anomalies := r.engine.Evaluate(now)
	if a := r.checkLocalization(now); a != nil {
		anomalies = append(anomalies, *a)
	}
	r.scrapeMu.Unlock()
	for i := range anomalies {
		r.dispatchAnomaly(&anomalies[i])
	}
}

// checkLocalization fires once when the collector's rolling-window
// analysis first attributes a compromise to a place — the signal that
// names the switch in a UC1 bundle.
func (r *Recorder) checkLocalization(nowNS int64) *Anomaly {
	if r.collector == nil || r.locSeen {
		return nil
	}
	loc := r.collector.Localized()
	if loc == nil {
		return nil
	}
	r.locSeen = true
	return &Anomaly{
		TSNS: nowNS, Rule: RuleLocalization, Place: loc.Place,
		Value: loc.WindowRate, Baseline: loc.BaselineRate,
		Reason: fmt.Sprintf("observatory localized compromise at %s: %s", loc.Place, loc.Reason),
	}
}

// dispatchAnomaly publishes one anomaly through the freshness sink
// pipeline (stderr log, JSONL, sealed audit ledger) and captures a
// bundle for it.
func (r *Recorder) dispatchAnomaly(a *Anomaly) {
	r.anomalies.Add(1)
	e := freshness.Event{
		Kind: freshness.KindAnomaly,
		Alert: freshness.Alert{
			Rule:      "anomaly:" + a.Rule,
			Place:     a.Place,
			State:     freshness.StateFiring,
			Reason:    a.Reason,
			FiredAtNS: a.TSNS,
		},
	}
	r.sinkMu.RLock()
	sinks := r.sinks
	r.sinkMu.RUnlock()
	for _, s := range sinks {
		s.Emit(e)
	}
	aj, _ := json.MarshalIndent(a, "", " ")
	r.maybeBundle(Trigger{
		Kind: "anomaly", Rule: a.Rule, Place: a.Place, Reason: a.Reason, TSNS: a.TSNS,
	}, aj)
}

// TriggerBundle captures a bundle on demand (attestctl / tests),
// bypassing the debounce. Returns the bundle path.
func (r *Recorder) TriggerBundle(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("recorder: not enabled")
	}
	return r.capture(Trigger{Kind: "manual", Reason: reason, TSNS: r.now()}, nil)
}

// maybeBundle captures unless bundling is disabled or debounced. A
// localization trigger bypasses the debounce: it fires at most once per
// run and is the capture that names the compromised place, so a generic
// anomaly bundled moments earlier must not suppress it.
func (r *Recorder) maybeBundle(trig Trigger, anomalyJSON []byte) {
	if r.cfg.Bundle.Dir == "" {
		return
	}
	r.bundleMu.Lock()
	debounced := r.lastBundleNS != 0 && trig.TSNS-r.lastBundleNS < int64(r.cfg.Bundle.Debounce)
	if debounced && trig.Rule != RuleLocalization {
		r.bundleMu.Unlock()
		r.debounced.Add(1)
		return
	}
	r.lastBundleNS = trig.TSNS
	r.bundleMu.Unlock()
	if _, err := r.capture(trig, anomalyJSON); err != nil {
		r.bundleErr.Add(1)
	}
}

// capture gathers every diagnostic surface and writes the archive.
func (r *Recorder) capture(trig Trigger, anomalyJSON []byte) (string, error) {
	if r.cfg.Bundle.Dir == "" {
		return "", fmt.Errorf("recorder: bundling disabled (no directory configured)")
	}
	var cap capture
	cap.anomaly = anomalyJSON
	cap.config = r.configInfo

	// Metric history: full fine-resolution dump of every series, plus
	// the coarse rings appended under a "/coarse" suffix so offline
	// analysis gets both windows.
	cap.history = r.store.Query("", 0, false)
	for _, s := range r.store.Query("", 0, true) {
		s.ID += "/coarse"
		cap.history = append(cap.history, s)
	}

	if r.tracer != nil {
		if spans := r.tracer.Spans(); len(spans) > 0 {
			var buf jsonBuffer
			if err := telemetry.WriteOTLP(&buf, r.cfg.Service, spans); err == nil {
				cap.otlp = buf.b
			}
		}
	}
	if r.collector != nil {
		cap.observatory, _ = json.MarshalIndent(r.collector.Snapshot(), "", " ")
	}
	if r.watchdog != nil {
		cap.coverage, _ = json.MarshalIndent(r.watchdog.Coverage(), "", " ")
		cap.alerts, _ = json.MarshalIndent(r.watchdog.Alerts(), "", " ")
	}
	if r.profiler != nil {
		// Newest captured CPU and mutex profiles plus the rendered
		// baseline diff — the "why did it get slow" half of the bundle.
		cap.profCPU, _, _ = r.profiler.Artifact("cpu")
		cap.profMutex, _, _ = r.profiler.Artifact("mutex")
		cap.profDiff = r.profiler.TopDiffJSON()
	}
	if r.ledgerPath != "" {
		// Synchronous flush so the tail contains the records of this
		// incident (the anomaly_detected record included) rather than
		// racing the writer's periodic flush.
		r.audit.Flush()
		cap.ledgerPath = r.ledgerPath
	}

	path, err := writeBundle(r.cfg.Bundle, r.cfg.Service, trig, cap)
	if err != nil {
		return "", err
	}
	r.bundles.Add(1)
	r.lastPath.Store(path)
	if n := enforceBudget(r.cfg.Bundle.Dir, r.cfg.Bundle.MaxBytes); n > 0 {
		r.reclaimed.Add(uint64(n))
	}
	// Seal the capture itself onto the ledger so the trail records that
	// (and which) diagnostic state was preserved.
	r.audit.Emit(auditlog.Record{
		Event: auditlog.EventIncident, Place: trig.Place, Target: trig.Rule,
		Note: fmt.Sprintf("bundle=%s trigger=%s", path, trig.Kind),
	})
	return path, nil
}

// jsonBuffer is a minimal io.Writer over a byte slice.
type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Start launches the wall-clock scrape ticker. Idempotent.
func (r *Recorder) Start() {
	if r == nil || !r.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Scrape()
			case <-r.quit:
				return
			}
		}
	}()
}

// Close stops the ticker. Safe on a nil or never-started recorder.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	if r.started.Load() {
		select {
		case <-r.quit:
		default:
			close(r.quit)
		}
		<-r.done
	}
}

// LastBundle returns the newest bundle path written by this recorder
// ("" when none).
func (r *Recorder) LastBundle() string {
	if r == nil {
		return ""
	}
	if p, ok := r.lastPath.Load().(string); ok {
		return p
	}
	return ""
}

// Anomalies returns the number of anomalies dispatched.
func (r *Recorder) Anomalies() uint64 {
	if r == nil {
		return 0
	}
	return r.anomalies.Load()
}

// Bundles returns the number of bundles written.
func (r *Recorder) Bundles() uint64 {
	if r == nil {
		return 0
	}
	return r.bundles.Load()
}

// Instrument publishes recorder health through the registry:
// pera_recorder_* store/bundle counters and pera_anomaly_* engine
// counters, all read lazily at scrape time.
func (r *Recorder) Instrument(reg *telemetry.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.RegisterFunc("pera_recorder_scrapes_total", telemetry.KindCounter, func() float64 {
		s, _, _, _, _ := r.store.Stats()
		return float64(s)
	})
	reg.RegisterFunc("pera_recorder_points_total", telemetry.KindCounter, func() float64 {
		_, p, _, _, _ := r.store.Stats()
		return float64(p)
	})
	reg.RegisterFunc("pera_recorder_series", telemetry.KindGauge, func() float64 {
		_, _, _, n, _ := r.store.Stats()
		return float64(n)
	})
	reg.RegisterFunc("pera_recorder_series_dropped_total", telemetry.KindCounter, func() float64 {
		_, _, d, _, _ := r.store.Stats()
		return float64(d)
	})
	reg.RegisterFunc("pera_recorder_bundles_total", telemetry.KindCounter,
		func() float64 { return float64(r.bundles.Load()) })
	reg.RegisterFunc("pera_recorder_bundles_debounced_total", telemetry.KindCounter,
		func() float64 { return float64(r.debounced.Load()) })
	reg.RegisterFunc("pera_recorder_bundle_errors_total", telemetry.KindCounter,
		func() float64 { return float64(r.bundleErr.Load()) })
	reg.RegisterFunc("pera_recorder_bundles_reclaimed_total", telemetry.KindCounter,
		func() float64 { return float64(r.reclaimed.Load()) })
	reg.RegisterFunc("pera_anomaly_total", telemetry.KindCounter,
		func() float64 { return float64(r.anomalies.Load()) })
	reg.RegisterFunc("pera_anomaly_evals_total", telemetry.KindCounter, func() float64 {
		e, _ := r.engine.Stats()
		return float64(e)
	})
}

// HistoryPath is where Endpoint mounts the history query surface.
const HistoryPath = "/history.json"

// Endpoint returns the /history.json handler for telemetry.Serve:
//
//	/history.json                     → series index
//	/history.json?metric=NAME         → fine history for NAME (all label variants)
//	  &since=5m | &since=<unix_ns>    → trim to a lookback window
//	  &step=10s (≥ coarse step)       → serve the coarse ring instead
func (r *Recorder) Endpoint() telemetry.Endpoint {
	return telemetry.Endpoint{
		Path:    HistoryPath,
		Desc:    "flight-recorder metric history (params: metric, since, step)",
		Handler: http.HandlerFunc(r.handleHistory),
	}
}

func (r *Recorder) handleHistory(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		telemetry.WriteJSONError(w, http.StatusNotFound, "recorder disabled")
		return
	}
	q := req.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Series []SeriesInfo `json:"series"`
		}{r.store.List()})
		return
	}
	var since int64
	if s := q.Get("since"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			since = r.now() - int64(d)
		} else if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			since = n
		} else {
			telemetry.WriteJSONError(w, http.StatusBadRequest,
				"bad since: "+s+" (want a duration like 5m or unix nanoseconds)")
			return
		}
	}
	coarse := false
	if s := q.Get("step"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			telemetry.WriteJSONError(w, http.StatusBadRequest,
				"bad step: "+s+" (want a duration like 1s, 10s)")
			return
		}
		coarse = d >= r.store.cfg.CoarseStep
	}
	series := r.store.Query(metric, since, coarse)
	if len(series) == 0 {
		// Query matches by exact ID or base name; nothing matching means
		// the metric is not recorded here — a 404 the caller can act on,
		// not a 200 with an empty body it has to guess about.
		telemetry.WriteJSONError(w, http.StatusNotFound, "unknown metric: "+metric)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Series []Series `json:"series"`
	}{series})
}
