package recorder

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// sparkBlocks are the eight block glyphs a sparkline quantizes into.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-width unicode sparkline. When
// there are more values than width, values are bucketed (max per
// bucket) so spikes stay visible.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		bucketed := make([]float64, 0, width)
		for i := 0; i < width; i++ {
			lo := i * len(vals) / width
			hi := (i + 1) * len(vals) / width
			if hi <= lo {
				hi = lo + 1
			}
			m := vals[lo]
			for _, v := range vals[lo:hi] {
				if v > m {
					m = v
				}
			}
			bucketed = append(bucketed, m)
		}
		vals = bucketed
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	span := max - min
	for _, v := range vals {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(sparkBlocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkBlocks) {
			idx = len(sparkBlocks) - 1
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}

// FormatSeries renders one queried series as a sparkline header plus
// min/max/last stats — the default `attestctl history` view.
func FormatSeries(w io.Writer, s Series, width int) {
	if width <= 0 {
		width = 60
	}
	vals := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vals[i] = p.V
	}
	min, max, last := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if n := len(vals); n > 0 {
		last = vals[n-1]
	} else {
		min, max = 0, 0
	}
	var window string
	if n := len(s.Points); n > 1 {
		window = time.Duration(s.Points[n-1].TS - s.Points[0].TS).Round(time.Second).String()
	}
	fmt.Fprintf(w, "%s (%s, %d points", s.ID, s.Kind, len(s.Points))
	if window != "" {
		fmt.Fprintf(w, ", %s", window)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "  %s\n", Sparkline(vals, width))
	fmt.Fprintf(w, "  min=%.6g max=%.6g last=%.6g\n", min, max, last)
}

// FormatSeriesTable renders the raw points, one row per sample — the
// `attestctl history -table` view.
func FormatSeriesTable(w io.Writer, s Series) {
	fmt.Fprintf(w, "%s (%s)\n", s.ID, s.Kind)
	if len(s.Points) == 0 {
		fmt.Fprintln(w, "  no points")
		return
	}
	t0 := s.Points[0].TS
	for _, p := range s.Points {
		fmt.Fprintf(w, "  %12s  %g\n", "+"+time.Duration(p.TS-t0).Round(time.Millisecond).String(), p.V)
	}
}

// FormatBundleList renders `attestctl incident list` rows.
func FormatBundleList(w io.Writer, infos []BundleInfo) {
	if len(infos) == 0 {
		fmt.Fprintln(w, "no incident bundles")
		return
	}
	fmt.Fprintf(w, "%-14s %-22s %10s  %s\n", "ID", "CREATED", "SIZE", "PATH")
	for _, bi := range infos {
		fmt.Fprintf(w, "%-14s %-22s %10d  %s\n",
			bi.ID, time.Unix(0, bi.CreatedNS).UTC().Format("2006-01-02T15:04:05Z"), bi.Size, bi.Path)
	}
}

// FormatBundle renders `attestctl incident show`: the manifest summary
// plus the file listing.
func FormatBundle(w io.Writer, b *Bundle) {
	m := b.Manifest
	fmt.Fprintf(w, "bundle   %s\n", b.Path)
	fmt.Fprintf(w, "service  %s (schema %d)\n", m.Service, m.Schema)
	fmt.Fprintf(w, "created  %s\n", time.Unix(0, m.CreatedNS).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(w, "trigger  %s", m.Trigger.Kind)
	if m.Trigger.Rule != "" {
		fmt.Fprintf(w, " rule=%s", m.Trigger.Rule)
	}
	if m.Trigger.Place != "" {
		fmt.Fprintf(w, " place=%s", m.Trigger.Place)
	}
	fmt.Fprintln(w)
	if m.Trigger.Reason != "" {
		fmt.Fprintf(w, "reason   %s\n", m.Trigger.Reason)
	}
	if m.Ledger != nil {
		fmt.Fprintf(w, "ledger   records %d..%d of %d (key %s)\n",
			m.Ledger.Start, m.Ledger.Start+m.Ledger.Records-1, m.Ledger.Total, m.Ledger.KeyID)
	}
	fmt.Fprintln(w, "files:")
	for _, f := range m.Files {
		fmt.Fprintf(w, "  %-20s %8d  sha256:%s\n", f.Name, f.Size, f.SHA256[:12])
	}
}
