// Package recorder is the attestation flight recorder: a fixed-memory
// in-process metric history store, anomaly detectors running over it,
// and an incident bundler that snapshots every observability surface
// the repo has (metric history, sampled trace ring, observatory path
// traces, freshness coverage, the chain-verified audit-ledger tail,
// runtime profiles, config) into a content-addressed archive the moment
// something goes wrong.
//
// Every live surface built so far — /metrics, /observatory.json,
// /coverage.json, /trace — answers "what is happening now?". The
// recorder answers "what was happening when it broke?": by the time an
// operator reads an alert, the snapshot that explains it is gone. The
// flight recorder keeps a short dual-resolution history of every
// registered metric and, on an alert or anomaly, freezes the whole
// diagnostic state into a bundle that localizes the incident offline —
// no live process required (ISSUE 8; the ScaRR-style decoupling of
// capture from analysis).
package recorder

import (
	"sort"
	"strings"
	"sync"
	"time"

	"pera/internal/telemetry"
)

// Point is one sample in a metric history ring.
type Point struct {
	TS int64   `json:"ts_ns"` // unix nanoseconds at scrape
	V  float64 `json:"v"`
}

// ring is a fixed-capacity circular buffer of points. Memory is
// allocated once at construction; steady-state appends never allocate.
type ring struct {
	pts  []Point
	head int // next write slot
	n    int // filled slots
}

func newRing(capacity int) ring {
	if capacity < 1 {
		capacity = 1
	}
	return ring{pts: make([]Point, capacity)}
}

func (r *ring) push(p Point) {
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
	if r.n < len(r.pts) {
		r.n++
	}
}

// points appends samples with TS >= since, oldest first, onto dst.
func (r *ring) points(dst []Point, since int64) []Point {
	start := r.head - r.n
	if start < 0 {
		start += len(r.pts)
	}
	for i := 0; i < r.n; i++ {
		p := r.pts[(start+i)%len(r.pts)]
		if p.TS >= since {
			dst = append(dst, p)
		}
	}
	return dst
}

// lastN appends the newest n values (oldest first) onto dst.
func (r *ring) lastN(dst []float64, n int) []float64 {
	if n > r.n {
		n = r.n
	}
	start := r.head - n
	if start < 0 {
		start += len(r.pts)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, r.pts[(start+i)%len(r.pts)].V)
	}
	return dst
}

func (r *ring) last() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	i := r.head - 1
	if i < 0 {
		i += len(r.pts)
	}
	return r.pts[i], true
}

// series is the history of one metric identity at both resolutions.
type series struct {
	id     string
	kind   telemetry.Kind
	place  string // place="..." label value when present (anomaly attribution)
	fine   ring
	coarse ring
	// coarseBucket is the last coarse-step bucket a sample was written
	// for, so the coarse ring gets exactly one point per step.
	coarseBucket int64
}

// StoreConfig sizes the history store. The defaults give every series
// 1s×5min fine history and 10s×1h coarse history — the ISSUE 8 shape —
// in a few KB per series.
type StoreConfig struct {
	FineStep    time.Duration // nominal fine resolution (default 1s)
	FineSlots   int           // fine ring capacity (default 300 → 5min at 1s)
	CoarseStep  time.Duration // coarse resolution (default 10s)
	CoarseSlots int           // coarse ring capacity (default 360 → 1h at 10s)
	// MaxSeries bounds total memory: once reached, newly appearing
	// metric identities are dropped and counted rather than grown.
	MaxSeries int // default 512
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.FineStep <= 0 {
		c.FineStep = time.Second
	}
	if c.FineSlots <= 0 {
		c.FineSlots = 300
	}
	if c.CoarseStep <= 0 {
		c.CoarseStep = 10 * time.Second
	}
	if c.CoarseSlots <= 0 {
		c.CoarseSlots = 360
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 512
	}
	return c
}

// Store is the fixed-memory time-series store. One Observe call per
// scrape tick appends the registry snapshot into per-series rings.
// Histogram metrics expand into derived _p50/_p99/_count series so
// detectors and sparklines work over scalars uniformly.
type Store struct {
	cfg StoreConfig

	mu      sync.RWMutex
	series  map[string]*series
	scrapes uint64
	points  uint64
	dropped uint64 // series beyond MaxSeries
	lastNS  int64

	// scratch backs the per-append series-ID lookup: building the key in
	// a reused byte slice and indexing the map with string(scratch) keeps
	// the steady-state scrape free of per-metric ID allocations (the ID
	// string is materialized only when a series is first seen).
	scratch []byte
}

// NewStore builds an empty store.
func NewStore(cfg StoreConfig) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*series)}
}

// seriesID renders a metric identity as name{k="v",...} — the same
// shape the Prometheus exposition uses, so /history.json IDs match what
// operators see on /metrics.
func seriesID(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func placeOf(labels []telemetry.Label) string {
	for _, l := range labels {
		if l.Key == "place" {
			return l.Value
		}
	}
	return ""
}

// Observe appends one registry snapshot at nowNS. It holds the store
// lock for the whole walk; scrapes are ~1/s so contention with queries
// is negligible, and a single critical section means a query never
// observes a half-applied scrape.
func (s *Store) Observe(nowNS int64, snap telemetry.Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scrapes++
	s.lastNS = nowNS
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		ls := m.LabelString()
		if m.Hist != nil {
			s.append(nowNS, m.Name, "_p50", ls, m.Labels, telemetry.KindGauge, m.Hist.P50)
			s.append(nowNS, m.Name, "_p99", ls, m.Labels, telemetry.KindGauge, m.Hist.P99)
			s.append(nowNS, m.Name, "_count", ls, m.Labels, telemetry.KindCounter, float64(m.Hist.Count))
			continue
		}
		s.append(nowNS, m.Name, "", ls, m.Labels, m.Kind, m.Value)
	}
}

// append records one sample for the series name+suffix+ls. The ID is
// assembled in the scratch buffer and looked up via the allocation-free
// map[string(bytes)] form; labels are consulted only on first sight.
func (s *Store) append(nowNS int64, name, suffix, ls string, labels []telemetry.Label, kind telemetry.Kind, v float64) {
	s.scratch = append(append(append(s.scratch[:0], name...), suffix...), ls...)
	sr := s.series[string(s.scratch)]
	if sr == nil {
		if len(s.series) >= s.cfg.MaxSeries {
			s.dropped++
			return
		}
		id := string(s.scratch)
		sr = &series{
			id:           id,
			kind:         kind,
			place:        placeOf(labels),
			fine:         newRing(s.cfg.FineSlots),
			coarse:       newRing(s.cfg.CoarseSlots),
			coarseBucket: -1,
		}
		s.series[id] = sr
	}
	p := Point{TS: nowNS, V: v}
	sr.fine.push(p)
	s.points++
	if bucket := nowNS / int64(s.cfg.CoarseStep); bucket != sr.coarseBucket {
		sr.coarseBucket = bucket
		sr.coarse.push(p)
	}
}

// Series is one queried history: ID, kind and chronological points.
type Series struct {
	ID     string  `json:"id"`
	Kind   string  `json:"kind"`
	Place  string  `json:"place,omitempty"`
	Points []Point `json:"points"`
}

// SeriesInfo is the index row for one stored series.
type SeriesInfo struct {
	ID     string  `json:"id"`
	Kind   string  `json:"kind"`
	Points int     `json:"points"`
	Last   float64 `json:"last"`
}

// baseName strips the {labels} suffix off a series ID.
func baseName(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// Query returns the histories matching metric — an exact series ID, a
// bare metric name (all label variants), or "" (every series) — with
// points at or after since (0 = everything). coarse selects the 10s
// ring for long lookbacks.
func (s *Store) Query(metric string, since int64, coarse bool) []Series {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Series
	for id, sr := range s.series {
		if metric != "" && id != metric && baseName(id) != metric {
			continue
		}
		r := &sr.fine
		if coarse {
			r = &sr.coarse
		}
		out = append(out, Series{
			ID:     id,
			Kind:   sr.kind.String(),
			Place:  sr.place,
			Points: r.points(make([]Point, 0, r.n), since),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// List returns the index of all stored series, sorted by ID.
func (s *Store) List() []SeriesInfo {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(s.series))
	for id, sr := range s.series {
		info := SeriesInfo{ID: id, Kind: sr.kind.String(), Points: sr.fine.n}
		if p, ok := sr.fine.last(); ok {
			info.Last = p.V
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// window returns the newest n fine-ring values of one series (oldest
// first) plus its kind and place, for the anomaly detectors.
func (s *Store) window(dst []float64, id string, n int) ([]float64, telemetry.Kind, string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[id]
	if sr == nil {
		return dst, 0, "", false
	}
	return sr.fine.lastN(dst, n), sr.kind, sr.place, true
}

// matchIDs appends the IDs of series whose base name or full ID equals
// any of the given names.
func (s *Store) matchIDs(dst []string, names []string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := range s.series {
		base := baseName(id)
		for _, w := range names {
			if id == w || base == w {
				dst = append(dst, id)
				break
			}
		}
	}
	sort.Strings(dst)
	return dst
}

// Stats reports store health for telemetry.
func (s *Store) Stats() (scrapes, points, dropped uint64, nseries int, lastNS int64) {
	if s == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scrapes, s.points, s.dropped, len(s.series), s.lastNS
}
