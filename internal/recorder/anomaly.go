package recorder

import (
	"fmt"
	"math"
	"time"

	"pera/internal/telemetry"
)

// Detector rule names, recorded in the anomaly event's Rule field as
// "anomaly:<name>" and in the audit ledger's target.
const (
	// RuleRobustZ fires when a gauge (or histogram-derived quantile)
	// deviates from its windowed median by more than Z robust standard
	// deviations (1.4826·MAD), confirmed by the EWMA baseline.
	RuleRobustZ = "robust-z"
	// RuleRateSpike fires when a counter's per-second rate of change
	// jumps above its windowed baseline — the verify-failure signature
	// of a UC1 program swap.
	RuleRateSpike = "rate-spike"
	// RuleLocalization fires when the observatory collector's rolling
	// window first attributes a compromise to a specific place. It is
	// the place-naming signal an incident bundle is built around.
	RuleLocalization = "localization"
)

// DefaultWatch is the series the detectors evaluate when the operator
// names none: verdict/verify latency quantiles, verification failures,
// evidence-cache misses, freshness age and the two queue depths — the
// key series called out in ISSUE 8.
var DefaultWatch = []string{
	"pera_appraise_seconds_p99",
	"pera_verify_seconds_p99",
	"pera_verify_fails_total",
	"pera_evidence_cache_misses_total",
	"pera_freshness_oldest_age_seconds",
	"pera_pool_queue_depth",
	"pera_audit_queue_depth",
}

// DetectorConfig tunes the anomaly engine.
type DetectorConfig struct {
	// Watch lists metric names (or exact series IDs) to evaluate. Empty
	// selects DefaultWatch. Histogram metrics are watched through their
	// derived _p50/_p99/_count series names.
	Watch []string
	// Z is the robust z-score trip threshold (default 6).
	Z float64
	// Alpha is the EWMA smoothing factor (default 0.3).
	Alpha float64
	// Warmup is the minimum samples per series before evaluation
	// (default 12): detectors never judge a cold start.
	Warmup int
	// Window is how many fine-ring samples feed the median/MAD baseline
	// (default 60).
	Window int
	// MinSigma floors the robust deviation so an all-constant baseline
	// (MAD 0 — e.g. a counter that has never incremented) still yields
	// a finite z for a genuine jump without tripping on float jitter
	// (default 1e-6).
	MinSigma float64
	// RelSigma floors the robust deviation at this fraction of the
	// baseline median (default 0.1). Latency quantiles cluster so
	// tightly that their MAD is microseconds and ordinary jitter scores
	// hundreds of σ; the relative floor makes deviation meaningful in
	// proportion to the level, while zero-based baselines (a counter
	// that has never failed) keep their absolute MinSigma sensitivity.
	RelSigma float64
	// Cooldown suppresses re-firing the same series for this long
	// (default 30s) so one incident does not become an anomaly storm.
	Cooldown time.Duration
	// Disable turns the engine off while keeping history recording.
	Disable bool
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if len(c.Watch) == 0 {
		c.Watch = DefaultWatch
	}
	if c.Z <= 0 {
		c.Z = 6
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.3
	}
	if c.Warmup <= 0 {
		c.Warmup = 12
	}
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.MinSigma <= 0 {
		c.MinSigma = 1e-6
	}
	if c.RelSigma <= 0 {
		c.RelSigma = 0.1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// Anomaly is one detector trip.
type Anomaly struct {
	TSNS     int64   `json:"ts_ns"`
	Rule     string  `json:"rule"` // robust-z | rate-spike | localization
	SeriesID string  `json:"series,omitempty"`
	Place    string  `json:"place,omitempty"`
	Value    float64 `json:"value"`    // observed value (or rate) that tripped
	Baseline float64 `json:"baseline"` // windowed median it deviated from
	Z        float64 `json:"z"`        // robust z-score at the trip
	Reason   string  `json:"reason"`
}

// detState is the per-series EWMA/rate memory.
type detState struct {
	ewma       float64
	ewmaInit   bool
	lastV      float64
	lastTS     int64
	rateInit   bool
	rates      []float64 // counter-rate window (bounded by cfg.Window)
	samples    int
	mutedUntil int64
}

// Engine runs the detectors over a Store. It is driven by the Recorder
// on each scrape tick; it keeps only O(watched series) state of its own
// — baselines come from the store's rings.
type Engine struct {
	cfg   DetectorConfig
	store *Store

	states map[string]*detState

	// scratch reused across Evaluate calls; the engine is driven from
	// the recorder's single scrape goroutine.
	ids    []string
	window []float64
	base   []float64 // baseline copy handed to medianMAD (sorted in place)
	devs   []float64 // absolute-deviation scratch for the MAD

	evals     uint64
	anomalies uint64
}

// NewEngine builds an engine over store.
func NewEngine(store *Store, cfg DetectorConfig) *Engine {
	return &Engine{cfg: cfg.withDefaults(), store: store, states: make(map[string]*detState)}
}

// sigma converts a MAD into the robust standard deviation, floored
// absolutely (MinSigma) and relative to the baseline level (RelSigma).
func (e *Engine) sigma(med, mad float64) float64 {
	s := 1.4826 * mad
	if rel := e.cfg.RelSigma * math.Abs(med); s < rel {
		s = rel
	}
	if s < e.cfg.MinSigma {
		s = e.cfg.MinSigma
	}
	return s
}

// median-and-MAD over vals; vals is partially reordered in place.
func medianMAD(vals []float64) (med, mad float64) {
	return medianMADScratch(vals, make([]float64, 0, len(vals)))
}

// medianMADScratch is medianMAD with a caller-owned deviation buffer, so
// per-scrape evaluations reuse the engine's scratch instead of
// allocating per series. Medians come from quickselect rather than a
// full sort — the detectors run over every watched series every scrape,
// and selection keeps that walk O(window) per series.
func medianMADScratch(vals, devs []float64) (med, mad float64) {
	med = medianSelect(vals)
	devs = devs[:0]
	for _, v := range vals {
		devs = append(devs, math.Abs(v-med))
	}
	return med, medianSelect(devs)
}

// medianSelect returns the median (interpolating the two middle values
// for even lengths, as a sorted-order q=0.5 interpolation), reordering vals.
func medianSelect(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return selectKth(vals, n/2)
	}
	hi := selectKth(vals, n/2)
	// selectKth partitions: vals[:n/2] holds the n/2 smallest, so the
	// lower middle is its maximum.
	lo := vals[0]
	for _, v := range vals[1 : n/2] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

// selectKth places the kth-smallest value at vals[k] (Hoare quickselect)
// and returns it; elements left of k end up <=, right of k >=.
func selectKth(vals []float64, k int) float64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		p := vals[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for vals[i] < p {
				i++
			}
			for vals[j] > p {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return vals[k]
}

// baselineMedianMAD copies vals into the engine's scratch and returns
// its median/MAD without allocating in steady state.
func (e *Engine) baselineMedianMAD(vals []float64) (med, mad float64) {
	e.base = append(e.base[:0], vals...)
	if cap(e.devs) < len(e.base) {
		e.devs = make([]float64, 0, cap(e.base))
	}
	return medianMADScratch(e.base, e.devs)
}

// Evaluate runs every detector once against the newest samples and
// returns the trips. Called by the Recorder after each Observe.
func (e *Engine) Evaluate(nowNS int64) []Anomaly {
	if e == nil || e.cfg.Disable {
		return nil
	}
	e.evals++
	e.ids = e.store.matchIDs(e.ids[:0], e.cfg.Watch)
	var out []Anomaly
	for _, id := range e.ids {
		if a := e.evalSeries(nowNS, id); a != nil {
			out = append(out, *a)
			e.anomalies++
		}
	}
	return out
}

func (e *Engine) evalSeries(nowNS int64, id string) *Anomaly {
	var kind telemetry.Kind
	var place string
	var ok bool
	e.window, kind, place, ok = e.store.window(e.window[:0], id, e.cfg.Window)
	if !ok || len(e.window) == 0 {
		return nil
	}
	st := e.states[id]
	if st == nil {
		st = &detState{}
		e.states[id] = st
	}
	cur := e.window[len(e.window)-1]

	if kind == telemetry.KindCounter {
		return e.evalRate(nowNS, id, place, st, cur)
	}

	// Gauge path: robust z against the windowed median, EWMA as the
	// smoothed confirmation baseline.
	st.samples++
	if !st.ewmaInit {
		st.ewma, st.ewmaInit = cur, true
	} else {
		st.ewma = e.cfg.Alpha*cur + (1-e.cfg.Alpha)*st.ewma
	}
	if st.samples < e.cfg.Warmup || len(e.window) < e.cfg.Warmup {
		return nil
	}
	// Baseline excludes the newest sample so a genuine step change is
	// judged against history, not against itself.
	med, mad := e.baselineMedianMAD(e.window[:len(e.window)-1])
	sigma := e.sigma(med, mad)
	z := math.Abs(cur-med) / sigma
	// EWMA confirmation: the smoothed series must also have moved, so a
	// single-sample glitch on a flat series does not page.
	ez := math.Abs(st.ewma-med) / sigma
	if z < e.cfg.Z || ez < e.cfg.Z*e.cfg.Alpha/2 {
		return nil
	}
	if nowNS < st.mutedUntil {
		return nil
	}
	st.mutedUntil = nowNS + int64(e.cfg.Cooldown)
	return &Anomaly{
		TSNS: nowNS, Rule: RuleRobustZ, SeriesID: id, Place: place,
		Value: cur, Baseline: med, Z: z,
		Reason: fmt.Sprintf("%s=%.4g deviates %.1fσ from median %.4g (MAD %.4g)", id, cur, z, med, mad),
	}
}

// evalRate turns a cumulative counter into a per-second rate series and
// trips on positive spikes against the rate's own median/MAD baseline.
func (e *Engine) evalRate(nowNS int64, id, place string, st *detState, cur float64) *Anomaly {
	if !st.rateInit {
		st.lastV, st.lastTS, st.rateInit = cur, nowNS, true
		return nil
	}
	dt := float64(nowNS-st.lastTS) / float64(time.Second)
	if dt <= 0 {
		return nil
	}
	rate := (cur - st.lastV) / dt
	st.lastV, st.lastTS = cur, nowNS
	if rate < 0 {
		// Counter reset (component re-created by a sweep); restart the
		// rate baseline rather than treating the wrap as a spike.
		st.rates = st.rates[:0]
		st.samples = 0
		return nil
	}
	st.rates = append(st.rates, rate)
	if len(st.rates) > e.cfg.Window {
		copy(st.rates, st.rates[1:])
		st.rates = st.rates[:len(st.rates)-1]
	}
	st.samples++
	if st.samples < e.cfg.Warmup {
		return nil
	}
	med, mad := e.baselineMedianMAD(st.rates[:len(st.rates)-1])
	sigma := e.sigma(med, mad)
	if rate <= med {
		return nil // only positive spikes: failures appearing, not stopping
	}
	z := (rate - med) / sigma
	if z < e.cfg.Z {
		return nil
	}
	if nowNS < st.mutedUntil {
		return nil
	}
	st.mutedUntil = nowNS + int64(e.cfg.Cooldown)
	return &Anomaly{
		TSNS: nowNS, Rule: RuleRateSpike, SeriesID: id, Place: place,
		Value: rate, Baseline: med, Z: z,
		Reason: fmt.Sprintf("%s rate %.4g/s is %.1fσ above median %.4g/s", id, rate, z, med),
	}
}

// Stats reports engine health for telemetry.
func (e *Engine) Stats() (evals, anomalies uint64) {
	if e == nil {
		return
	}
	return e.evals, e.anomalies
}
