package recorder

import (
	"testing"
	"time"

	"pera/internal/telemetry"
)

// feedGauge drives a gauge series through the store+engine one scrape at
// a time and returns every anomaly tripped.
func feedGauge(t *testing.T, vals []float64, cfg DetectorConfig) []Anomaly {
	t.Helper()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pera_pool_queue_depth")
	s := NewStore(StoreConfig{})
	e := NewEngine(s, cfg)
	var out []Anomaly
	for i, v := range vals {
		g.Set(v)
		now := sec(i)
		s.Observe(now, reg.Snapshot())
		out = append(out, e.Evaluate(now)...)
	}
	return out
}

func TestRobustZTripsOnStep(t *testing.T) {
	// 30 flat samples with small jitter, then a 100× step.
	vals := make([]float64, 31)
	for i := range vals {
		vals[i] = 10 + float64(i%3)*0.01
	}
	vals[30] = 1000
	got := feedGauge(t, vals, DetectorConfig{})
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want exactly 1 (the step)", len(got))
	}
	a := got[0]
	if a.Rule != RuleRobustZ {
		t.Fatalf("rule = %q, want %q", a.Rule, RuleRobustZ)
	}
	if a.SeriesID != "pera_pool_queue_depth" {
		t.Fatalf("series = %q", a.SeriesID)
	}
	if a.Value != 1000 || a.Z < 6 {
		t.Fatalf("value=%g z=%g, want value 1000 and z >= 6", a.Value, a.Z)
	}
	if a.TSNS != sec(30) {
		t.Fatalf("trip at %d, want the step's scrape %d", a.TSNS, sec(30))
	}
}

func TestRobustZQuietOnSteadySeries(t *testing.T) {
	// Jittering around a level must never page.
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = 50 + float64(i%5)
	}
	if got := feedGauge(t, vals, DetectorConfig{}); len(got) != 0 {
		t.Fatalf("steady series tripped %d anomalies: %+v", len(got), got)
	}
}

func TestRobustZAllZeroBaselineStillTrips(t *testing.T) {
	// MAD of an all-constant baseline is 0; MinSigma must keep a genuine
	// jump detectable instead of dividing by zero or staying silent.
	vals := make([]float64, 21)
	vals[20] = 5
	got := feedGauge(t, vals, DetectorConfig{})
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want 1 (jump off a flat-zero baseline)", len(got))
	}
}

func TestDetectorWarmupSuppresses(t *testing.T) {
	// A spike inside the warmup window is never judged.
	vals := []float64{0, 0, 0, 0, 1000}
	if got := feedGauge(t, vals, DetectorConfig{Warmup: 12}); len(got) != 0 {
		t.Fatalf("warmup violated: %+v", got)
	}
}

func TestDetectorCooldownMutes(t *testing.T) {
	// Two steps 5s apart with a 30s cooldown: only the first pages.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 10
	}
	vals[30] = 500
	vals[35] = 800
	got := feedGauge(t, vals, DetectorConfig{})
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want 1 (second trip inside cooldown)", len(got))
	}
	// With a 1s cooldown both page.
	got = feedGauge(t, vals, DetectorConfig{Cooldown: time.Second})
	if len(got) != 2 {
		t.Fatalf("anomalies = %d, want 2 with short cooldown", len(got))
	}
}

func TestRateSpikeOnCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("pera_verify_fails_total")
	s := NewStore(StoreConfig{})
	e := NewEngine(s, DetectorConfig{})
	var got []Anomaly
	for i := 0; i < 40; i++ {
		if i == 30 {
			c.Add(100) // the UC1 signature: verify failures appear in a burst
		}
		now := sec(i)
		s.Observe(now, reg.Snapshot())
		got = append(got, e.Evaluate(now)...)
	}
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want 1", len(got))
	}
	a := got[0]
	if a.Rule != RuleRateSpike {
		t.Fatalf("rule = %q, want %q", a.Rule, RuleRateSpike)
	}
	if a.Value < 99 || a.Value > 101 {
		t.Fatalf("rate = %g/s, want ~100/s", a.Value)
	}
}

func TestRateSpikeIgnoresDecreaseAndReset(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("pera_verify_fails_total")
	s := NewStore(StoreConfig{})
	e := NewEngine(s, DetectorConfig{})
	var got []Anomaly
	tick := 0
	scrape := func() {
		now := sec(tick)
		tick++
		s.Observe(now, reg.Snapshot())
		got = append(got, e.Evaluate(now)...)
	}
	// Steady 1/s rate to warm up.
	for i := 0; i < 30; i++ {
		c.Inc()
		scrape()
	}
	// A rate drop (counter stalls) must not page — failures stopping is
	// not an incident.
	for i := 0; i < 5; i++ {
		scrape()
	}
	if len(got) != 0 {
		t.Fatalf("rate drop paged: %+v", got)
	}
	// Counter reset (component re-created): the engine restarts the
	// baseline instead of seeing a negative rate or a huge recovery jump.
	reg2 := telemetry.NewRegistry()
	c2 := reg2.Counter("pera_verify_fails_total")
	for i := 0; i < 5; i++ {
		c2.Inc()
		s.Observe(sec(tick), reg2.Snapshot())
		got = append(got, e.Evaluate(sec(tick))...)
		tick++
	}
	if len(got) != 0 {
		t.Fatalf("counter reset paged: %+v", got)
	}
	_ = c
}

func TestRateSpikeBaselineRestartsAfterReset(t *testing.T) {
	// A counter reset must restart the rate baseline from scratch: the
	// engine re-enters warmup (a post-reset burst inside it never pages,
	// even though the pre-reset baseline would have scored it), and once
	// re-warmed a genuine spike pages again.
	reg := telemetry.NewRegistry()
	c := reg.Counter("pera_verify_fails_total")
	s := NewStore(StoreConfig{})
	e := NewEngine(s, DetectorConfig{Warmup: 12, Cooldown: time.Second})
	var got []Anomaly
	tick := 0
	scrape := func() {
		now := sec(tick)
		tick++
		s.Observe(now, reg.Snapshot())
		got = append(got, e.Evaluate(now)...)
	}
	// Warm a steady 1/s baseline.
	for i := 0; i < 20; i++ {
		c.Inc()
		scrape()
	}
	if len(got) != 0 {
		t.Fatalf("steady warmup paged: %+v", got)
	}
	// Reset: swap the registry so the same series name restarts at zero.
	reg2 := telemetry.NewRegistry()
	c2 := reg2.Counter("pera_verify_fails_total")
	reg = reg2
	scrape() // the negative-rate sample that must clear the baseline
	if st := e.states["pera_verify_fails_total"]; st == nil || st.samples != 0 || len(st.rates) != 0 {
		t.Fatalf("baseline not restarted after reset: %+v", st)
	}
	// A burst while re-warming must stay silent — only the restarted
	// baseline's own warmup counts, not the 20 pre-reset samples.
	c2.Add(100)
	scrape()
	for i := 0; i < 9; i++ {
		c2.Inc()
		scrape()
	}
	if len(got) != 0 {
		t.Fatalf("post-reset warmup paged: %+v", got)
	}
	// Finish re-warming at 1/s, then a real spike pages once more.
	for i := 0; i < 10; i++ {
		c2.Inc()
		scrape()
	}
	c2.Add(100)
	scrape()
	if len(got) != 1 || got[0].Rule != RuleRateSpike {
		t.Fatalf("re-warmed spike: got %+v, want one rate-spike", got)
	}
}

func TestEngineWatchesOnlyConfiguredSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	watched := reg.Gauge("pera_pool_queue_depth")
	ignored := reg.Gauge("unwatched_gauge")
	s := NewStore(StoreConfig{})
	e := NewEngine(s, DetectorConfig{}) // DefaultWatch
	var got []Anomaly
	for i := 0; i < 40; i++ {
		watched.Set(1)
		ignored.Set(1)
		if i == 30 {
			ignored.Set(99999) // huge step on an unwatched series
		}
		now := sec(i)
		s.Observe(now, reg.Snapshot())
		got = append(got, e.Evaluate(now)...)
	}
	if len(got) != 0 {
		t.Fatalf("unwatched series paged: %+v", got)
	}
	evals, anomalies := e.Stats()
	if evals == 0 || anomalies != 0 {
		t.Fatalf("stats = %d evals / %d anomalies", evals, anomalies)
	}
}

func TestEngineDisable(t *testing.T) {
	vals := make([]float64, 31)
	vals[30] = 1e9
	if got := feedGauge(t, vals, DetectorConfig{Disable: true}); len(got) != 0 {
		t.Fatalf("disabled engine paged: %+v", got)
	}
}

func TestMedianMAD(t *testing.T) {
	med, mad := medianMAD([]float64{1, 2, 3, 4, 100})
	if med != 3 {
		t.Fatalf("median = %g, want 3", med)
	}
	if mad != 1 {
		t.Fatalf("MAD = %g, want 1 (robust to the 100 outlier)", mad)
	}
}
