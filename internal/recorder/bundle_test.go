package recorder

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pera/internal/auditlog"
)

func testCapture(t *testing.T) capture {
	t.Helper()
	return capture{
		history: []Series{{ID: "m", Kind: "gauge", Points: []Point{{TS: sec(1), V: 7}}}},
		config:  []byte(`{"flag":"value"}`),
		anomaly: []byte(`{"rule":"robust-z"}`),
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trig := Trigger{Kind: "anomaly", Rule: RuleRobustZ, Place: "sw2", Reason: "test", TSNS: sec(42)}
	path, err := writeBundle(BundlerConfig{Dir: dir}.withDefaults(), "svc", trig, testCapture(t))
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Base(path)
	if !strings.HasPrefix(name, bundlePrefix) || !strings.HasSuffix(name, bundleSuffix) {
		t.Fatalf("bundle name %q", name)
	}

	b, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Schema != ManifestSchema || b.Manifest.Service != "svc" {
		t.Fatalf("manifest header: %+v", b.Manifest)
	}
	if b.Manifest.Trigger.Place != "sw2" || b.Manifest.Trigger.Rule != RuleRobustZ {
		t.Fatalf("trigger: %+v", b.Manifest.Trigger)
	}
	for _, want := range []string{"history.json", "config.json", "anomaly.json", "goroutines.txt", "heap.pprof"} {
		if _, ok := b.Files[want]; !ok {
			t.Fatalf("bundle missing %s (has %v)", want, fileNames(b))
		}
	}
	if n, err := b.Verify(nil); err != nil || n != 0 {
		t.Fatalf("verify: n=%d err=%v", n, err)
	}

	// The content address in the file name matches the archive bytes: a
	// re-written file under the same name would be detectable. Here we
	// check the fragment parses out as the list ID.
	infos := ListBundles(dir)
	if len(infos) != 1 {
		t.Fatalf("ListBundles = %d", len(infos))
	}
	if !strings.Contains(name, infos[0].ID) {
		t.Fatalf("ID %q not part of name %q", infos[0].ID, name)
	}
}

func sha256hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func fileNames(b *Bundle) []string {
	var out []string
	for n := range b.Files {
		out = append(out, n)
	}
	return out
}

func TestBundleVerifyDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	path, err := writeBundle(BundlerConfig{Dir: dir}.withDefaults(), "svc",
		Trigger{Kind: "manual", TSNS: sec(1)}, testCapture(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in an archived file: the manifest digest must catch it.
	b.Files["history.json"][0] ^= 0xff
	if _, err := b.Verify(nil); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered file passed verify: %v", err)
	}
	b.Files["history.json"][0] ^= 0xff
	// A smuggled extra file fails too.
	b.Files["planted.txt"] = []byte("x")
	if _, err := b.Verify(nil); err == nil || !strings.Contains(err.Error(), "not in manifest") {
		t.Fatalf("planted file passed verify: %v", err)
	}
	delete(b.Files, "planted.txt")
	// A deleted file fails.
	delete(b.Files, "config.json")
	if _, err := b.Verify(nil); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing file passed verify: %v", err)
	}
}

func TestBundleLedgerTail(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "trail.jsonl")
	w, err := auditlog.Create(ledger, auditlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.Emit(auditlog.Record{Event: auditlog.EventVerdict, Place: "sw1", Verdict: "PASS"})
	}
	w.Flush()

	cap := testCapture(t)
	cap.ledgerPath = ledger
	// TailRecords below the ledger length exercises the mid-chain anchor.
	cfg := BundlerConfig{Dir: dir, TailRecords: 8}.withDefaults()
	path, err := writeBundle(cfg, "svc", Trigger{Kind: "alert", TSNS: sec(9)}, cap)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	b, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Ledger == nil {
		t.Fatal("manifest carries no ledger info")
	}
	if b.Manifest.Ledger.Records != 8 {
		t.Fatalf("tail records = %d, want 8", b.Manifest.Ledger.Records)
	}
	if b.Manifest.Ledger.Start != b.Manifest.Ledger.Total-8 {
		t.Fatalf("tail start = %d of %d", b.Manifest.Ledger.Start, b.Manifest.Ledger.Total)
	}
	n, err := b.Verify(nil)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if n != 8 {
		t.Fatalf("verified ledger records = %d, want 8", n)
	}
	// Tamper with one tail line: the HMAC chain must break.
	tail := b.Files["ledger_tail.jsonl"]
	idx := strings.Index(string(tail), "PASS")
	if idx < 0 {
		t.Fatal("no verdict in tail")
	}
	// Keep JSON valid (PASS -> PAXS) so the failure is the chain, not parsing.
	tamper := append([]byte(nil), tail...)
	tamper[idx+2] = 'X'
	b.Files["ledger_tail.jsonl"] = tamper
	// Fix the file digest so only the chain check can object.
	for i := range b.Manifest.Files {
		if b.Manifest.Files[i].Name == "ledger_tail.jsonl" {
			b.Manifest.Files[i].SHA256 = sha256hex(tamper)
		}
	}
	if _, err := b.Verify(nil); err == nil {
		t.Fatal("tampered ledger tail passed chain verification")
	}
}

func TestBundleLedgerErrorCaptured(t *testing.T) {
	// A corrupt ledger must not abort the capture: the error itself is
	// evidence and lands in the bundle.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not a ledger\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cap := testCapture(t)
	cap.ledgerPath = bad
	path, err := writeBundle(BundlerConfig{Dir: dir}.withDefaults(), "svc",
		Trigger{Kind: "manual", TSNS: sec(1)}, cap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Ledger != nil {
		t.Fatal("corrupt ledger produced ledger info")
	}
	if _, ok := b.Files["ledger_error.txt"]; !ok {
		t.Fatalf("no ledger_error.txt in %v", fileNames(b))
	}
	if _, err := b.Verify(nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEnforceBudget(t *testing.T) {
	dir := t.TempDir()
	// Three fake bundles, 100 bytes each, oldest first.
	paths := []string{
		filepath.Join(dir, "incident-1-aaaaaaaaaaaa.tar.gz"),
		filepath.Join(dir, "incident-2-bbbbbbbbbbbb.tar.gz"),
		filepath.Join(dir, "incident-3-cccccccccccc.tar.gz"),
	}
	for i, p := range paths {
		if err := os.WriteFile(p, make([]byte, 100), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Unix(int64(1000+i), 0)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	if n := enforceBudget(dir, 250); n != 1 {
		t.Fatalf("deleted = %d, want 1", n)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatal("oldest bundle survived the budget")
	}
	for _, p := range paths[1:] {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("newer bundle deleted: %v", err)
		}
	}
	if n := enforceBudget(dir, 1<<20); n != 0 {
		t.Fatalf("budget not exceeded but deleted %d", n)
	}
}

func TestListBundlesNewestFirst(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"incident-1-aaaaaaaaaaaa.tar.gz", "incident-2-bbbbbbbbbbbb.tar.gz"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Unix(int64(1000+i), 0)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Noise that must be ignored.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "incident-3-dddddddddddd.tar.gz.tmp"), []byte("x"), 0o644)
	infos := ListBundles(dir)
	if len(infos) != 2 {
		t.Fatalf("ListBundles = %d, want 2", len(infos))
	}
	if infos[0].ID != "bbbbbbbbbbbb" || infos[1].ID != "aaaaaaaaaaaa" {
		t.Fatalf("order: %q then %q, want newest first", infos[0].ID, infos[1].ID)
	}
	if ListBundles(filepath.Join(dir, "missing")) != nil {
		t.Fatal("missing dir should list nil")
	}
}
