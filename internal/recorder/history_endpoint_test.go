package recorder

// /history.json error-contract tests (see telemetry.WriteJSONError):
// unknown metrics are 404, malformed since/step are 400, and every
// error body is application/json with an error field — a client must
// never have to tell "no such metric" from "no points yet" by sniffing
// a 200.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pera/internal/telemetry"
)

func historyRecorder(t *testing.T) *Recorder {
	t.Helper()
	clock := newFakeClock()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("pera_pool_queue_depth")
	r := New(Config{Clock: clock.Now})
	r.SetRegistry(reg)
	for i := 0; i < 3; i++ {
		g.Set(float64(i))
		r.Scrape()
		clock.Advance(time.Second)
	}
	return r
}

func historyGet(t *testing.T, r *Recorder, query string) *httptest.ResponseRecorder {
	t.Helper()
	rw := httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath+query, nil))
	return rw
}

func assertJSONError(t *testing.T, rw *httptest.ResponseRecorder, wantCode int) string {
	t.Helper()
	if rw.Code != wantCode {
		t.Fatalf("status %d, want %d\n%s", rw.Code, wantCode, rw.Body.String())
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
		Code  int    `json:"code"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &e); err != nil || e.Error == "" || e.Code != wantCode {
		t.Fatalf("error body not well-formed JSON: %v\n%s", err, rw.Body.String())
	}
	return e.Error
}

func TestHistoryUnknownMetric404(t *testing.T) {
	r := historyRecorder(t)
	msg := assertJSONError(t, historyGet(t, r, "?metric=pera_no_such_metric"), http.StatusNotFound)
	if msg != "unknown metric: pera_no_such_metric" {
		t.Fatalf("error = %q", msg)
	}
}

func TestHistoryBadSince400(t *testing.T) {
	r := historyRecorder(t)
	for _, bad := range []string{"bogus", "5minutes", "--3"} {
		assertJSONError(t, historyGet(t, r, "?metric=pera_pool_queue_depth&since="+bad), http.StatusBadRequest)
	}
	// A bad since on an unknown metric is still a 400 — parse errors
	// report before existence so the caller fixes one thing at a time.
	assertJSONError(t, historyGet(t, r, "?metric=nope&since=bogus"), http.StatusBadRequest)
}

func TestHistoryBadStep400(t *testing.T) {
	r := historyRecorder(t)
	assertJSONError(t, historyGet(t, r, "?metric=pera_pool_queue_depth&step=fast"), http.StatusBadRequest)
}

func TestHistoryGoodQueriesStillJSON(t *testing.T) {
	r := historyRecorder(t)
	for _, q := range []string{"", "?metric=pera_pool_queue_depth", "?metric=pera_pool_queue_depth&since=1s&step=10s"} {
		rw := historyGet(t, r, q)
		if rw.Code != http.StatusOK {
			t.Fatalf("%q: status %d", q, rw.Code)
		}
		if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%q: content type %q", q, ct)
		}
	}
	// A known metric with a since that excludes every point is an empty
	// 200, not an error: the metric exists, the window is just empty.
	rw := historyGet(t, r, "?metric=pera_pool_queue_depth&since=9000000000000000000")
	if rw.Code != http.StatusOK {
		t.Fatalf("empty window: status %d, want 200", rw.Code)
	}
}

func TestHistoryNilRecorder404(t *testing.T) {
	var r *Recorder
	rw := httptest.NewRecorder()
	r.handleHistory(rw, httptest.NewRequest("GET", HistoryPath, nil))
	assertJSONError(t, rw, http.StatusNotFound)
}
