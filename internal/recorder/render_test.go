package recorder

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty input: %q", got)
	}
	// A ramp uses the full block range, lowest first, highest last.
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(got) != 8 {
		t.Fatalf("width = %d runes, want 8", utf8.RuneCountInString(got))
	}
	if !strings.HasPrefix(got, "▁") || !strings.HasSuffix(got, "█") {
		t.Fatalf("ramp = %q", got)
	}
	// A flat series renders at the floor.
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Fatalf("flat = %q", got)
	}
	// More values than width: max-bucketing keeps a single spike visible.
	vals := make([]float64, 100)
	vals[50] = 9
	got = Sparkline(vals, 10)
	if utf8.RuneCountInString(got) != 10 || !strings.Contains(got, "█") {
		t.Fatalf("bucketed spike = %q", got)
	}
}

func TestFormatSeriesAndTable(t *testing.T) {
	s := Series{
		ID: `q{place="sw1"}`, Kind: "gauge",
		Points: []Point{{TS: sec(0), V: 1}, {TS: sec(5), V: 3}, {TS: sec(10), V: 2}},
	}
	var b strings.Builder
	FormatSeries(&b, s, 20)
	out := b.String()
	for _, want := range []string{`q{place="sw1"} (gauge, 3 points, 10s)`, "min=1", "max=3", "last=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatSeries missing %q in:\n%s", want, out)
		}
	}
	b.Reset()
	FormatSeriesTable(&b, s)
	if !strings.Contains(b.String(), "+10s") || !strings.Contains(b.String(), "  2\n") {
		t.Fatalf("FormatSeriesTable:\n%s", b.String())
	}
	b.Reset()
	FormatSeriesTable(&b, Series{ID: "empty", Kind: "gauge"})
	if !strings.Contains(b.String(), "no points") {
		t.Fatalf("empty table:\n%s", b.String())
	}
}

func TestFormatBundleViews(t *testing.T) {
	var b strings.Builder
	FormatBundleList(&b, nil)
	if !strings.Contains(b.String(), "no incident bundles") {
		t.Fatalf("empty list:\n%s", b.String())
	}
	b.Reset()
	FormatBundleList(&b, []BundleInfo{{Path: "d/incident-1-abc.tar.gz", ID: "abc", Size: 42, CreatedNS: sec(1)}})
	if !strings.Contains(b.String(), "abc") || !strings.Contains(b.String(), "incident-1-abc.tar.gz") {
		t.Fatalf("list:\n%s", b.String())
	}

	// A real round-tripped bundle renders trigger, ledger span and files.
	dir := t.TempDir()
	path, err := writeBundle(BundlerConfig{Dir: dir}.withDefaults(), "svc",
		Trigger{Kind: "anomaly", Rule: RuleLocalization, Place: "sw2", Reason: "swap", TSNS: sec(7)},
		testCapture(t))
	if err != nil {
		t.Fatal(err)
	}
	bun, err := OpenBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	FormatBundle(&b, bun)
	out := b.String()
	for _, want := range []string{"trigger  anomaly rule=localization place=sw2", "reason   swap", "history.json", "sha256:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatBundle missing %q in:\n%s", want, out)
		}
	}
}
