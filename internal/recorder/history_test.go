package recorder

import (
	"testing"
	"time"

	"pera/internal/telemetry"
)

func sec(n int) int64 { return int64(n) * int64(time.Second) }

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 10; i++ {
		r.push(Point{TS: sec(i), V: float64(i)})
	}
	if r.n != 4 {
		t.Fatalf("filled slots = %d, want 4", r.n)
	}
	pts := r.points(nil, 0)
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("point %d = %g, want %g (oldest-first after wrap)", i, p.V, want)
		}
	}
	// since filter trims from the old end.
	pts = r.points(nil, sec(8))
	if len(pts) != 2 || pts[0].V != 8 {
		t.Fatalf("since filter: got %v, want [8 9]", pts)
	}
	vals := r.lastN(nil, 3)
	if len(vals) != 3 || vals[0] != 7 || vals[2] != 9 {
		t.Fatalf("lastN = %v, want [7 8 9]", vals)
	}
	if p, ok := r.last(); !ok || p.V != 9 {
		t.Fatalf("last = %v,%v, want 9,true", p, ok)
	}
}

func TestStoreDualResolution(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("depth")
	s := NewStore(StoreConfig{FineSlots: 300, CoarseSlots: 360})

	// 25 scrapes at 1s: fine keeps all 25, coarse keeps one per 10s bucket.
	for i := 0; i < 25; i++ {
		g.Set(float64(i))
		s.Observe(sec(i), reg.Snapshot())
	}
	fine := s.Query("depth", 0, false)
	if len(fine) != 1 || len(fine[0].Points) != 25 {
		t.Fatalf("fine query: %d series / %d points, want 1/25", len(fine), len(fine[0].Points))
	}
	coarse := s.Query("depth", 0, true)
	if len(coarse) != 1 || len(coarse[0].Points) != 3 {
		t.Fatalf("coarse query: %d points, want 3 (one per 10s bucket)", len(coarse[0].Points))
	}
	// The coarse ring records the first sample of each bucket.
	for i, want := range []float64{0, 10, 20} {
		if got := coarse[0].Points[i].V; got != want {
			t.Fatalf("coarse point %d = %g, want %g", i, got, want)
		}
	}
	if fine[0].Kind != "gauge" {
		t.Fatalf("kind = %q, want gauge", fine[0].Kind)
	}
}

func TestStoreHistogramDerivedSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat_seconds", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	s := NewStore(StoreConfig{})
	s.Observe(sec(1), reg.Snapshot())

	for _, want := range []string{"lat_seconds_p50", "lat_seconds_p99", "lat_seconds_count"} {
		out := s.Query(want, 0, false)
		if len(out) != 1 {
			t.Fatalf("derived series %s: got %d series, want 1", want, len(out))
		}
	}
	cnt := s.Query("lat_seconds_count", 0, false)
	if cnt[0].Kind != "counter" {
		t.Fatalf("_count kind = %q, want counter (rate detector path)", cnt[0].Kind)
	}
	if got := cnt[0].Points[0].V; got != 100 {
		t.Fatalf("_count = %g, want 100", got)
	}
}

func TestStoreMaxSeriesDrop(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i := 0; i < 6; i++ {
		reg.Counter("m", telemetry.L("i", string(rune('a'+i)))).Inc()
	}
	s := NewStore(StoreConfig{MaxSeries: 4})
	s.Observe(sec(1), reg.Snapshot())

	_, _, dropped, nseries, _ := s.Stats()
	if nseries != 4 {
		t.Fatalf("series = %d, want 4 (MaxSeries cap)", nseries)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	// Existing series keep recording after the cap is hit.
	s.Observe(sec(2), reg.Snapshot())
	_, points, _, _, _ := s.Stats()
	if points != 8 {
		t.Fatalf("points = %d, want 8 (4 series × 2 scrapes)", points)
	}
}

func TestStoreQueryByLabelVariantAndID(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("util", telemetry.L("place", "sw1")).Set(1)
	reg.Gauge("util", telemetry.L("place", "sw2")).Set(2)
	s := NewStore(StoreConfig{})
	s.Observe(sec(1), reg.Snapshot())

	// Bare name matches all label variants.
	if got := s.Query("util", 0, false); len(got) != 2 {
		t.Fatalf("bare-name query: %d series, want 2", len(got))
	}
	// Exact ID matches one, and carries the place attribution.
	one := s.Query(`util{place="sw2"}`, 0, false)
	if len(one) != 1 {
		t.Fatalf("exact-ID query: %d series, want 1", len(one))
	}
	if one[0].Place != "sw2" {
		t.Fatalf("place = %q, want sw2", one[0].Place)
	}
	if got := s.Query("nope", 0, false); len(got) != 0 {
		t.Fatalf("unknown metric: %d series, want 0", len(got))
	}
	// List is the sorted index.
	list := s.List()
	if len(list) != 2 || list[0].ID >= list[1].ID {
		t.Fatalf("List not sorted: %+v", list)
	}
	if list[1].Last != 2 {
		t.Fatalf("List last = %g, want 2", list[1].Last)
	}
}

func TestStoreFixedMemory(t *testing.T) {
	// The rings never grow: after filling, points stay bounded by slots.
	reg := telemetry.NewRegistry()
	g := reg.Gauge("bounded")
	s := NewStore(StoreConfig{FineSlots: 8, CoarseSlots: 4})
	for i := 0; i < 1000; i++ {
		g.Set(float64(i))
		s.Observe(sec(i), reg.Snapshot())
	}
	fine := s.Query("bounded", 0, false)
	if len(fine[0].Points) != 8 {
		t.Fatalf("fine points = %d, want 8", len(fine[0].Points))
	}
	coarse := s.Query("bounded", 0, true)
	if len(coarse[0].Points) != 4 {
		t.Fatalf("coarse points = %d, want 4", len(coarse[0].Points))
	}
	// Newest fine value survives; oldest were overwritten.
	last := fine[0].Points[len(fine[0].Points)-1]
	if last.V != 999 {
		t.Fatalf("newest fine value = %g, want 999", last.V)
	}
}

func TestSeriesID(t *testing.T) {
	if got := seriesID("m", nil); got != "m" {
		t.Fatalf("no labels: %q", got)
	}
	got := seriesID("m", []telemetry.Label{telemetry.L("a", "1"), telemetry.L("b", "2")})
	if got != `m{a="1",b="2"}` {
		t.Fatalf("labelled ID = %q", got)
	}
	if baseName(got) != "m" {
		t.Fatalf("baseName = %q", baseName(got))
	}
}
