// Package freshness is the trust-decay watchdog for PERA's Inertia axis
// (paper Fig. 4). Caching evidence cuts attestation overhead, but it
// means every appraisal verdict rests on claims of some *age* — and a
// place that silently stops re-attesting keeps passing appraisals on
// the strength of its last good measurement until someone notices. The
// watchdog is that someone.
//
// It consumes three existing feeds:
//
//   - evidence-cache lifecycle events (evidence.Cache.SetNotify): every
//     Put stamps a candidate freshness instant for the producing place;
//     Hit/Expire events track how hard the inertia window is working.
//   - appraiser verdicts (it implements the appraiser.Observer shape
//     and tees to a downstream observer such as the observatory
//     collector): a clean verdict over a flow *commits* the pending
//     freshness of every place on that flow's path — evidence is only
//     "fresh trust" once it has appraised clean.
//   - observatory span trails (observatory.Collector.SetPathSink): the
//     flow → hop-places map that tells the watchdog which places a
//     verdict actually covered.
//
// From these it maintains per-(place, policy) freshness state, a
// coverage map classifying every place fresh / stale / lapsed /
// never-attested against a staleness budget derived from the Fig. 4
// Inertia knobs (cache TTL × SampleEvery), and an alert rules engine
// (threshold + burn-rate with hysteresis) whose firing alerts trigger
// active re-attestation probes over the RATS Fig. 1 machinery. An alert
// resolves only after fresh evidence appraises clean.
package freshness

import (
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/evidence"
	"pera/internal/pera"
	"pera/internal/telemetry"
)

// Status classifies one place's evidence age against the budget.
type Status string

const (
	// StatusFresh: age < Budget.FreshFor — trust is current.
	StatusFresh Status = "fresh"
	// StatusStale: FreshFor <= age < LapsedAfter — budget is burning.
	StatusStale Status = "stale"
	// StatusLapsed: age >= LapsedAfter — the place's trust has decayed
	// past the budget; verdicts involving it rest on expired claims.
	StatusLapsed Status = "lapsed"
	// StatusNever: the place is tracked but no evidence of it has ever
	// appraised clean.
	StatusNever Status = "never-attested"
)

// Budget is the staleness budget: how old committed evidence may grow
// before a place counts stale, then lapsed. Boundaries are half-open on
// the stale side (age == FreshFor is already stale), matching the
// evidence cache's expiry-tick semantics.
type Budget struct {
	FreshFor    time.Duration
	LapsedAfter time.Duration
}

// DeriveBudget maps the Fig. 4 Inertia knobs onto a staleness budget.
// A healthy place re-produces evidence every ttl (the cache expiry
// forces fresh measurement) but only on sampled flows, so the expected
// refresh period is ttl × sampleEvery. FreshFor allows one period plus
// half again for scheduling jitter; LapsedAfter is two missed refresh
// periods beyond that — a place that quiet is no longer merely late.
func DeriveBudget(ttl time.Duration, sampleEvery uint32) Budget {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	period := ttl * time.Duration(sampleEvery)
	return Budget{FreshFor: period * 3 / 2, LapsedAfter: period * 3}
}

// VerdictObserver is the downstream verdict consumer the watchdog tees
// to (structurally the appraiser.Observer shape, satisfied by
// observatory.Collector).
type VerdictObserver interface {
	ObserveVerdict(flow, subject string, verdict bool, place, stage, reason string)
}

// Config tunes the watchdog. The zero value is usable: budget derived
// from DetailTables inertia at SampleEvery 1, AP1 policy, real clock.
type Config struct {
	// Policy names the appraisal policy this watchdog guards (label on
	// rows, metrics, and alert records). Default "AP1".
	Policy string
	// Detail is the budget-driving detail level. Default DetailTables —
	// the shortest practical inertia on the Fig. 4 ladder.
	Detail evidence.Detail
	// TTL is the effective cache inertia window for Detail (mirror of
	// evidence.Cache.SetTTL). Zero uses Detail.Inertia().
	TTL time.Duration
	// SampleEvery is the Fig. 4 flow-sampling knob feeding the budget
	// derivation. Default 1.
	SampleEvery uint32
	// Budget overrides the derived staleness budget when non-zero.
	Budget Budget
	// Clock drives all age arithmetic; default time.Now. Simulations
	// share one fake clock between cache and watchdog.
	Clock func() time.Time
	// Window is the per-place sliding window of status samples the
	// burn-rate rule evaluates over. Default 64.
	Window int
	// MinSamples gates the burn-rate rule until the window has data.
	// Default 8.
	MinSamples int
	// SLOTarget is the fraction of window samples required fresh
	// (error budget = 1 − SLOTarget). Default 0.9.
	SLOTarget float64
	// BurnMax fires the burn-rate rule when observed badness consumes
	// the error budget this many times faster than allowed. Default 2.
	BurnMax float64
	// FireAfter is the hysteresis on the firing edge: consecutive
	// breaching evaluations before an alert fires. Default 2.
	FireAfter int
	// ResolveAfter is the hysteresis on the resolving edge: consecutive
	// clean evaluations (status fresh again) before a firing alert
	// resolves. Default 2.
	ResolveAfter int
	// AlertRing bounds retained alert history. Default 128.
	AlertRing int
	// ProbeEvery re-probes a still-firing alert every N evaluations
	// (the first probe goes out on the firing transition). Default 8.
	ProbeEvery int
	// MaxFlows bounds the pending flow → hops map. Default 1024.
	MaxFlows int
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "AP1"
	}
	if c.Detail == 0 {
		c.Detail = evidence.DetailTables
	}
	if c.TTL <= 0 {
		c.TTL = c.Detail.Inertia()
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	if c.Budget == (Budget{}) {
		c.Budget = DeriveBudget(c.TTL, c.SampleEvery)
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.SLOTarget <= 0 || c.SLOTarget >= 1 {
		c.SLOTarget = 0.9
	}
	if c.BurnMax <= 0 {
		c.BurnMax = 2
	}
	if c.FireAfter <= 0 {
		c.FireAfter = 2
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = 2
	}
	if c.AlertRing <= 0 {
		c.AlertRing = 128
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 8
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 1024
	}
	return c
}

// row is one (place, policy) freshness ledger entry. All access under
// Watchdog.mu.
type row struct {
	place   string
	tracked bool // explicitly Track()ed: never-attested detection applies

	lastFresh time.Time // last instant committed by a clean appraisal / probe
	pending   time.Time // evidence produced, awaiting a clean verdict

	puts, hits, expires uint64 // cache lifecycle counters
	verdicts, fails     uint64 // appraisal outcomes covering this place
	probes, probeOK     uint64 // active re-attestation probes issued / clean

	win     []bool // sliding status samples, true = outside budget
	winHead int
	winN    int
	winBad  int
}

// Watchdog is the trust-decay watchdog. Construct with New; it is safe
// for concurrent use by the cache notify hook, the appraiser observer
// path, the collector path sink, and telemetry scrapes.
type Watchdog struct {
	name string

	mu      sync.Mutex
	cfg     Config
	rows    map[string]*row
	rowSeq  []string // first-seen order
	flows   map[string][]string
	flowSeq []string
	evals   uint64
	sinks   []Sink
	prober  Prober
	forward VerdictObserver

	// alert engine state (see alerts.go)
	states        map[stateKey]*alertState
	ring          []*Alert
	ringHead      int
	alertSeq      uint64
	firedTotal    uint64
	resolvedTotal uint64
	probesTotal   uint64
	probeOKTotal  uint64

	probing atomic.Bool // re-entrancy guard: probes run watchdog-observed appraisals

	reg        *telemetry.Registry
	ageHist    *telemetry.Histogram
	regPending []string // places awaiting per-place gauge registration
}

// New builds a watchdog named name (its identity on snapshots and audit
// records).
func New(name string, cfg Config) *Watchdog {
	return &Watchdog{
		name:   name,
		cfg:    cfg.withDefaults(),
		rows:   make(map[string]*row),
		flows:  make(map[string][]string),
		states: make(map[stateKey]*alertState),
	}
}

// Configure replaces the watchdog's configuration. Intended for the
// window between construction and the first feed (perasim builds the
// watchdog before the harness knows the simulated clock); rows and
// alert state are preserved but re-evaluated under the new budget.
func (w *Watchdog) Configure(cfg Config) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cfg = cfg.withDefaults()
}

// Name returns the watchdog's identity.
func (w *Watchdog) Name() string { return w.name }

// Budget returns the effective staleness budget.
func (w *Watchdog) Budget() Budget {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg.Budget
}

// Track declares places the watchdog expects to attest. Tracked places
// appear on the coverage map immediately (as never-attested until their
// first clean appraisal), which is what catches a place that never
// shows up at all.
func (w *Watchdog) Track(places ...string) {
	w.mu.Lock()
	for _, p := range places {
		w.rowLocked(p).tracked = true
	}
	w.mu.Unlock()
	w.flushRegistrations()
}

// AddSink attaches an alert sink (stderr log, JSONL file, audit
// ledger…). Sinks are invoked outside the watchdog lock.
func (w *Watchdog) AddSink(s Sink) {
	if s == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sinks = append(w.sinks, s)
}

// SetProber attaches the active re-attestation prober. Nil detaches
// (alerts then resolve only via in-band refresh).
func (w *Watchdog) SetProber(p Prober) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prober = p
}

// SetForward tees every observed verdict to a downstream observer
// (typically the observatory collector, since the appraiser holds a
// single observer slot).
func (w *Watchdog) SetForward(o VerdictObserver) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.forward = o
}

// rowLocked returns (creating if needed) the row for place.
func (w *Watchdog) rowLocked(place string) *row {
	if r, ok := w.rows[place]; ok {
		return r
	}
	r := &row{place: place, win: make([]bool, w.cfg.Window)}
	w.rows[place] = r
	w.rowSeq = append(w.rowSeq, place)
	w.regPending = append(w.regPending, place)
	return r
}

// CacheEvent ingests one evidence-cache lifecycle event; wire it with
// cache.SetNotify(wd.CacheEvent). It runs under the cache's shard lock,
// so it only updates counters — no evaluation, no sink I/O.
func (w *Watchdog) CacheEvent(e evidence.CacheEvent) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	r := w.rowLocked(e.Place)
	switch e.Kind {
	case evidence.CachePut:
		r.puts++
		if e.At.After(r.pending) {
			r.pending = e.At
		}
	case evidence.CacheHit:
		r.hits++
	case evidence.CacheExpire:
		r.expires++
	}
}

// IngestPath records a reassembled span trail's hop places for its
// flow; wire it with collector.SetPathSink(wd.IngestPath). The pending
// map is bounded by Config.MaxFlows.
func (w *Watchdog) IngestPath(flow string, hops []pera.HopSpan, truncated bool) {
	if w == nil {
		return
	}
	w.mu.Lock()
	places := make([]string, len(hops))
	for i := range hops {
		places[i] = hops[i].Place
		w.rowLocked(hops[i].Place)
	}
	if _, ok := w.flows[flow]; !ok {
		w.flowSeq = append(w.flowSeq, flow)
		for len(w.flowSeq) > w.cfg.MaxFlows {
			old := w.flowSeq[0]
			w.flowSeq = w.flowSeq[1:]
			delete(w.flows, old)
		}
	}
	w.flows[flow] = places
	w.mu.Unlock()
	w.flushRegistrations()
}

// ObserveVerdict implements the appraiser.Observer shape. A clean
// verdict commits the pending freshness of every place on the flow's
// recorded path — this is the moment cached evidence becomes committed
// trust. Every verdict also drives one evaluation of the alert rules,
// then the verdict is forwarded downstream.
func (w *Watchdog) ObserveVerdict(flow, subject string, verdict bool, failPlace, stage, reason string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	fwd := w.forward
	hops, traced := w.flows[flow]
	if traced {
		delete(w.flows, flow)
		for _, place := range hops {
			r := w.rowLocked(place)
			r.verdicts++
			if verdict && r.pending.After(r.lastFresh) {
				r.lastFresh = r.pending
			}
		}
	}
	if !verdict && failPlace != "" {
		w.rowLocked(failPlace).fails++
	}
	events, probes := w.evaluateLocked()
	w.mu.Unlock()

	w.flushRegistrations()
	w.dispatch(events)
	w.runProbes(probes)
	if fwd != nil {
		fwd.ObserveVerdict(flow, subject, verdict, failPlace, stage, reason)
	}
}

// RecordFresh commits a fresh-trust instant for place directly — the
// probe path: re-attestation evidence that appraised clean outside any
// in-band flow. Zero at means "now".
func (w *Watchdog) RecordFresh(place string, at time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if at.IsZero() {
		at = w.cfg.Clock()
	}
	r := w.rowLocked(place)
	if at.After(r.lastFresh) {
		r.lastFresh = at
	}
	events, probes := w.evaluateLocked()
	w.mu.Unlock()

	w.flushRegistrations()
	w.dispatch(events)
	w.runProbes(probes)
}

// Tick forces one evaluation of the alert rules against the current
// clock — for callers pacing the watchdog off a timer rather than a
// verdict stream.
func (w *Watchdog) Tick() {
	w.mu.Lock()
	events, probes := w.evaluateLocked()
	w.mu.Unlock()
	w.dispatch(events)
	w.runProbes(probes)
}

// statusLocked classifies one row at now. Boundaries are half-open on
// the decayed side, matching the cache's expiry-tick fix: age ==
// FreshFor is already stale.
func (w *Watchdog) statusLocked(r *row, now time.Time) (Status, time.Duration) {
	if r.lastFresh.IsZero() {
		return StatusNever, 0
	}
	age := now.Sub(r.lastFresh)
	switch {
	case age < w.cfg.Budget.FreshFor:
		return StatusFresh, age
	case age < w.cfg.Budget.LapsedAfter:
		return StatusStale, age
	default:
		return StatusLapsed, age
	}
}

// pushSample folds one budget-compliance sample into the row's sliding
// window (true = outside budget).
func (r *row) pushSample(bad bool) {
	if r.winN < len(r.win) {
		r.win[r.winN] = bad
		r.winN++
		if bad {
			r.winBad++
		}
		return
	}
	if r.win[r.winHead] {
		r.winBad--
	}
	r.win[r.winHead] = bad
	if bad {
		r.winBad++
	}
	r.winHead = (r.winHead + 1) % len(r.win)
}

// dispatch emits events to every sink, outside the watchdog lock.
func (w *Watchdog) dispatch(events []Event) {
	if len(events) == 0 {
		return
	}
	w.mu.Lock()
	sinks := append([]Sink(nil), w.sinks...)
	w.mu.Unlock()
	for _, e := range events {
		for _, s := range sinks {
			s.Emit(e)
		}
	}
}
