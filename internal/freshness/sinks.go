package freshness

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"pera/internal/auditlog"
)

// Sink consumes alert lifecycle events. Implementations must be safe
// for concurrent Emit calls; the watchdog invokes sinks outside its
// lock and never blocks evaluation on sink latency beyond the Emit
// call itself.
type Sink interface {
	Emit(e Event)
}

// LogSink writes one human-readable line per event — the stderr sink.
type LogSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogSink wraps w (typically os.Stderr).
func NewLogSink(w io.Writer) *LogSink { return &LogSink{w: w} }

// Emit implements Sink.
func (s *LogSink) Emit(e Event) {
	if s == nil || s.w == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a := e.Alert
	switch e.Kind {
	case "fired":
		fmt.Fprintf(s.w, "freshness: ALERT FIRING #%d rule=%s place=%s policy=%s age=%v — %s\n",
			a.ID, a.Rule, a.Place, a.Policy, time.Duration(a.AgeNS).Round(time.Millisecond), a.Reason)
	case "resolved":
		fmt.Fprintf(s.w, "freshness: alert resolved #%d rule=%s place=%s after %d probes (%d clean)\n",
			a.ID, a.Rule, a.Place, a.Probes, a.ProbeOK)
	case "probe":
		outcome := "clean"
		if !e.ProbeOK {
			outcome = "failed: " + e.ProbeErr
		}
		fmt.Fprintf(s.w, "freshness: re-attestation probe place=%s rule=%s → %s\n",
			a.Place, a.Rule, outcome)
	case KindAnomaly:
		fmt.Fprintf(s.w, "recorder: ANOMALY rule=%s place=%s — %s\n", a.Rule, a.Place, a.Reason)
	case KindProfile:
		fmt.Fprintf(s.w, "profiler: REGRESSION rule=%s place=%s — %s\n", a.Rule, a.Place, a.Reason)
	}
}

// JSONLSink writes one JSON object per line — the machine-readable
// file sink.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w (typically an opened file; the caller owns
// closing it).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s == nil || s.w == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(append(b, '\n'))
}

// AuditSink seals alert transitions onto the tamper-evident audit
// ledger as alert_fired / alert_resolved / alert_probe records, so the
// alert history itself carries the same integrity guarantee as the
// attestation events it summarizes.
type AuditSink struct {
	w *auditlog.Writer
}

// NewAuditSink wraps an attached ledger writer.
func NewAuditSink(w *auditlog.Writer) *AuditSink { return &AuditSink{w: w} }

// Emit implements Sink.
func (s *AuditSink) Emit(e Event) {
	if s == nil || s.w == nil {
		return
	}
	a := e.Alert
	rec := auditlog.Record{
		Place:  a.Place,
		Policy: a.Policy,
		Target: a.Rule,
	}
	switch e.Kind {
	case "fired":
		rec.Event = auditlog.EventAlertFired
		rec.Verdict = "FIRING"
		rec.Note = a.Reason
		rec.DurNS = a.AgeNS
	case "resolved":
		rec.Event = auditlog.EventAlertResolved
		rec.Verdict = "RESOLVED"
		rec.Note = fmt.Sprintf("resolved after %d probes (%d clean)", a.Probes, a.ProbeOK)
		rec.DurNS = a.ResolvedNS - a.FiredAtNS
	case "probe":
		rec.Event = auditlog.EventAlertProbe
		if e.ProbeOK {
			rec.Verdict = "PASS"
			rec.Note = "re-attestation evidence appraised clean"
		} else {
			rec.Verdict = "FAIL"
			rec.Note = e.ProbeErr
		}
	case KindAnomaly:
		// Flight-recorder anomaly detections ride the same sealed trail
		// as the alert lifecycle — no parallel alerting path.
		rec.Event = auditlog.EventAnomaly
		rec.Verdict = "ANOMALY"
		rec.Note = a.Reason
	case KindProfile:
		// Profiler hot-path regressions ride the same trail too, so a
		// perf cliff is as attributable after the fact as a verdict.
		rec.Event = auditlog.EventProfileRegression
		rec.Verdict = "REGRESSION"
		rec.Note = a.Reason
	default:
		return
	}
	s.w.Emit(rec)
}
