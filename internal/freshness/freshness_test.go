package freshness

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pera/internal/auditlog"
	"pera/internal/evidence"
	"pera/internal/pera"
	"pera/internal/telemetry"
)

func TestDeriveBudget(t *testing.T) {
	b := DeriveBudget(16*time.Second, 1)
	if b.FreshFor != 24*time.Second || b.LapsedAfter != 48*time.Second {
		t.Fatalf("budget = %+v, want 24s/48s", b)
	}
	// SampleEvery scales the refresh period (Fig. 4): 1-in-4 sampling
	// quadruples the expected gap between refreshes.
	b = DeriveBudget(time.Minute, 4)
	if b.FreshFor != 6*time.Minute || b.LapsedAfter != 12*time.Minute {
		t.Fatalf("sampled budget = %+v, want 6m/12m", b)
	}
	if b = DeriveBudget(time.Second, 0); b != DeriveBudget(time.Second, 1) {
		t.Fatal("sampleEvery 0 must clamp to 1")
	}
}

// newTestWatchdog builds a watchdog with second-scale budgets and no
// firing hysteresis slack beyond one confirming evaluation.
func newTestWatchdog(clk *SimClock) *Watchdog {
	return New("wd-test", Config{
		Policy:       "AP1",
		Budget:       Budget{FreshFor: 24 * time.Second, LapsedAfter: 48 * time.Second},
		Clock:        clk.Now,
		Window:       16,
		MinSamples:   4,
		SLOTarget:    0.9,
		BurnMax:      2,
		FireAfter:    2,
		ResolveAfter: 2,
		AlertRing:    8,
		ProbeEvery:   4,
	})
}

func TestStatusBoundaries(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	w.Track("sw1")
	w.RecordFresh("sw1", clk.Now())

	at := func(age time.Duration, want Status) {
		t.Helper()
		cov := w.Coverage()
		if len(cov.Places) != 1 || cov.Places[0].Status != want {
			t.Fatalf("age %v: coverage = %+v, want %s", age, cov.Places, want)
		}
	}
	at(0, StatusFresh)
	clk.Advance(24*time.Second - time.Nanosecond)
	at(24*time.Second-time.Nanosecond, StatusFresh)
	clk.Advance(time.Nanosecond) // age == FreshFor: half-open → stale
	at(24*time.Second, StatusStale)
	clk.Advance(24*time.Second - time.Nanosecond)
	at(48*time.Second-time.Nanosecond, StatusStale)
	clk.Advance(time.Nanosecond) // age == LapsedAfter → lapsed
	at(48*time.Second, StatusLapsed)
}

// recordSink captures events for assertions.
type recordSink struct {
	mu     sync.Mutex
	events []Event
}

func (s *recordSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *recordSink) kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.events))
	for i, e := range s.events {
		out[i] = e.Kind + ":" + e.Alert.Place
	}
	return out
}

func TestAlertLifecycle(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	sink := &recordSink{}
	w.AddSink(sink)
	w.Track("sw1")
	w.RecordFresh("sw1", clk.Now())

	var probed []string
	w.SetProber(ProbeFunc(func(place string) error {
		probed = append(probed, place)
		return errors.New("attester unreachable")
	}))

	// Decay past the lapse budget, then evaluate. FireAfter=2 means the
	// first breaching evaluation must NOT fire (hysteresis).
	clk.Advance(49 * time.Second)
	w.Tick()
	if got := w.Alerts(); got.FiredTotal != 0 {
		t.Fatalf("fired after one breaching eval, want hysteresis hold: %+v", got)
	}
	w.Tick()
	snap := w.Alerts()
	if snap.FiredTotal == 0 || snap.Firing == 0 {
		t.Fatalf("no alert after %d breaching evals: %+v", 2, snap)
	}
	var stale *Alert
	for i := range snap.Alerts {
		if snap.Alerts[i].Rule == RuleStaleness && snap.Alerts[i].State == StateFiring {
			stale = &snap.Alerts[i]
		}
	}
	if stale == nil {
		t.Fatalf("no firing staleness alert: %+v", snap.Alerts)
	}
	if stale.Place != "sw1" || stale.Policy != "AP1" {
		t.Fatalf("alert = %+v", stale)
	}
	// The firing transition probes immediately, even though the probe
	// fails here.
	if len(probed) == 0 || probed[0] != "sw1" {
		t.Fatalf("no probe on firing transition: %v", probed)
	}

	// Fresh evidence + ResolveAfter clean evaluations resolves the
	// threshold alert immediately; the burn-rate alert (fired on the
	// now-40%-bad window) drains as clean samples dilute the window.
	w.RecordFresh("sw1", clk.Now())
	w.Tick()
	mid := w.Alerts()
	var staleFiring bool
	for _, a := range mid.Alerts {
		if a.Rule == RuleStaleness && a.State == StateFiring {
			staleFiring = true
		}
	}
	if staleFiring || mid.ResolvedTotal == 0 {
		t.Fatalf("staleness alert did not resolve on fresh evidence: %+v", mid)
	}
	for i := 0; i < 20; i++ {
		w.Tick()
	}
	final := w.Alerts()
	if final.Firing != 0 {
		t.Fatalf("alerts still firing after window drained clean: %+v", final)
	}

	kinds := sink.kinds()
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "fired:sw1") || !strings.Contains(joined, "probe:sw1") ||
		!strings.Contains(joined, "resolved:sw1") {
		t.Fatalf("sink saw %v, want fired+probe+resolved", kinds)
	}
}

func TestNeverAttestedAlert(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	w.Track("ghost")
	w.Tick()
	w.Tick()
	snap := w.Alerts()
	if snap.Firing == 0 {
		t.Fatalf("tracked-but-never-attested place did not alert: %+v", snap)
	}
	cov := w.Coverage()
	if cov.Never != 1 || cov.Places[0].Status != StatusNever {
		t.Fatalf("coverage = %+v, want 1 never-attested", cov)
	}
}

func TestBurnRateRule(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	w.Track("sw1")
	w.RecordFresh("sw1", clk.Now())

	// Sit just inside stale (past FreshFor, before LapsedAfter): the
	// threshold rule never breaches, but every window sample is out of
	// budget, so the burn rule must fire once MinSamples accumulate.
	clk.Advance(30 * time.Second)
	for i := 0; i < 6; i++ {
		w.Tick()
	}
	snap := w.Alerts()
	var burn bool
	for _, a := range snap.Alerts {
		if a.Rule == RuleBurn && a.Place == "sw1" {
			burn = true
		}
		if a.Rule == RuleStaleness {
			t.Fatalf("threshold rule fired while merely stale: %+v", a)
		}
	}
	if !burn {
		t.Fatalf("burn-rate rule never fired: %+v", snap.Alerts)
	}
}

func TestAlertRingBounded(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk) // AlertRing: 8
	// Cycle many fire→resolve pairs on distinct tracked places.
	for i := 0; i < 12; i++ {
		place := "sw" + string(rune('a'+i))
		w.Track(place)
		w.Tick()
		w.Tick() // never-attested fires
		w.RecordFresh(place, clk.Now())
		w.Tick() // resolves
	}
	snap := w.Alerts()
	if len(snap.Alerts) > 8 {
		t.Fatalf("ring holds %d alerts, bound is 8", len(snap.Alerts))
	}
	if snap.FiredTotal < 12 {
		t.Fatalf("fired total = %d, want ≥ 12", snap.FiredTotal)
	}
	// Newest first.
	for i := 1; i < len(snap.Alerts); i++ {
		if snap.Alerts[i].ID > snap.Alerts[i-1].ID {
			t.Fatalf("alerts not newest-first: %v then %v", snap.Alerts[i-1].ID, snap.Alerts[i].ID)
		}
	}
}

func TestCacheCommitFlow(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)

	// Evidence produced (cache Put) is only *pending* trust…
	w.CacheEvent(evidence.CacheEvent{
		Kind: evidence.CachePut, Place: "sw1", Target: "tables",
		Detail: evidence.DetailTables, TTL: 16 * time.Second, At: clk.Now(),
	})
	cov := w.Coverage()
	if cov.Places[0].Status != StatusNever {
		t.Fatalf("pending evidence counted as committed: %+v", cov.Places[0])
	}

	// …and a clean verdict over a traced path commits it.
	w.IngestPath("flow-1", []pera.HopSpan{{Place: "sw1"}}, false)
	w.ObserveVerdict("flow-1", "path", true, "", "accept", "")
	cov = w.Coverage()
	if cov.Places[0].Status != StatusFresh {
		t.Fatalf("clean verdict did not commit pending trust: %+v", cov.Places[0])
	}
	if cov.Places[0].LastFreshNS != clk.Now().UnixNano() {
		t.Fatalf("lastFresh = %d, want put instant", cov.Places[0].LastFreshNS)
	}

	// A failing verdict must not commit.
	clk.Advance(time.Second)
	w.CacheEvent(evidence.CacheEvent{
		Kind: evidence.CachePut, Place: "sw2", Target: "tables",
		Detail: evidence.DetailTables, TTL: 16 * time.Second, At: clk.Now(),
	})
	w.IngestPath("flow-2", []pera.HopSpan{{Place: "sw2"}}, false)
	w.ObserveVerdict("flow-2", "path", false, "sw2", "golden", "hash mismatch")
	for _, p := range w.Coverage().Places {
		if p.Place == "sw2" && p.Status != StatusNever {
			t.Fatalf("failing verdict committed trust: %+v", p)
		}
		if p.Place == "sw2" && p.Fails != 1 {
			t.Fatalf("fail not attributed: %+v", p)
		}
	}
}

func TestVerdictForwarding(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	var got []string
	w.SetForward(forwardFunc(func(flow, subject string, verdict bool, place, stage, reason string) {
		got = append(got, flow)
	}))
	w.ObserveVerdict("flow-9", "path", true, "", "accept", "")
	if len(got) != 1 || got[0] != "flow-9" {
		t.Fatalf("forward saw %v", got)
	}
}

type forwardFunc func(flow, subject string, verdict bool, place, stage, reason string)

func (f forwardFunc) ObserveVerdict(flow, subject string, verdict bool, place, stage, reason string) {
	f(flow, subject, verdict, place, stage, reason)
}

func TestSinks(t *testing.T) {
	a := Alert{ID: 7, Rule: RuleStaleness, Place: "sw2", Policy: "AP1",
		State: StateFiring, Reason: "age 50s exceeds 48s", AgeNS: int64(50 * time.Second)}

	var logBuf bytes.Buffer
	NewLogSink(&logBuf).Emit(Event{Kind: "fired", Alert: a})
	if !strings.Contains(logBuf.String(), "ALERT FIRING") || !strings.Contains(logBuf.String(), "sw2") {
		t.Fatalf("log sink: %q", logBuf.String())
	}

	var jsonBuf bytes.Buffer
	js := NewJSONLSink(&jsonBuf)
	js.Emit(Event{Kind: "fired", Alert: a})
	js.Emit(Event{Kind: "probe", Alert: a, ProbeOK: false, ProbeErr: "unreachable"})
	lines := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Alert.Place != "sw2" || e.Kind != "fired" {
		t.Fatalf("jsonl round-trip: %+v", e)
	}

	var ledger bytes.Buffer
	aw := auditlog.NewWriter(&ledger, auditlog.Options{})
	as := NewAuditSink(aw)
	as.Emit(Event{Kind: "fired", Alert: a})
	as.Emit(Event{Kind: "probe", Alert: a, ProbeOK: true})
	resolved := a
	resolved.State = StateResolved
	resolved.ResolvedNS = resolved.FiredAtNS + int64(10*time.Second)
	as.Emit(Event{Kind: "resolved", Alert: resolved})
	aw.Close()
	if _, err := auditlog.VerifyReader(bytes.NewReader(ledger.Bytes()), auditlog.DevKey()); err != nil {
		t.Fatalf("alert ledger verification: %v", err)
	}
	recs, err := auditlog.ReadRecords(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []auditlog.Event{auditlog.EventAlertFired, auditlog.EventAlertProbe, auditlog.EventAlertResolved} {
		if n := len(auditlog.Query{Event: string(ev)}.Filter(recs)); n != 1 {
			t.Fatalf("%s records = %d, want 1", ev, n)
		}
	}
}

func TestInstrument(t *testing.T) {
	clk := NewSimClock(time.Unix(1000, 0))
	w := newTestWatchdog(clk)
	reg := telemetry.NewRegistry()
	w.Instrument(reg)
	w.Track("sw1", "sw2")
	w.RecordFresh("sw1", clk.Now())
	clk.Advance(30 * time.Second) // sw1 stale, sw2 never
	w.Tick()
	w.Tick()

	snap := reg.Snapshot()
	if v := snap.Value("pera_freshness_places", telemetry.L("status", "stale")); v != 1 {
		t.Fatalf("stale places = %v", v)
	}
	if v := snap.Value("pera_freshness_places", telemetry.L("status", "never-attested")); v != 1 {
		t.Fatalf("never places = %v", v)
	}
	if v := snap.Value("pera_freshness_evidence_age_seconds",
		telemetry.L("place", "sw1"), telemetry.L("policy", "AP1")); v != 30 {
		t.Fatalf("sw1 age = %v, want 30", v)
	}
	if v := snap.Value("pera_freshness_oldest_age_seconds"); v != 30 {
		t.Fatalf("oldest = %v", v)
	}
	if v := snap.Value("pera_alerts_firing"); v < 1 {
		t.Fatalf("firing gauge = %v", v)
	}
}
