package freshness

import (
	"fmt"
	"io"
	"time"
)

// RenderCoverage writes the coverage map as a fixed-width table —
// what attestctl coverage prints.
func RenderCoverage(w io.Writer, cov Coverage) {
	fmt.Fprintf(w, "coverage — watchdog %s, policy %s (budget: fresh < %v, lapsed ≥ %v, SLO %.0f%%)\n",
		cov.Watchdog, cov.Policy,
		time.Duration(cov.BudgetFreshNS).Round(time.Millisecond),
		time.Duration(cov.BudgetLapsedNS).Round(time.Millisecond),
		cov.SLOTarget*100)
	fmt.Fprintf(w, "%d fresh / %d stale / %d lapsed / %d never-attested over %d evaluations\n\n",
		cov.Fresh, cov.Stale, cov.Lapsed, cov.Never, cov.Evaluations)
	fmt.Fprintf(w, "%-10s %-14s %10s %6s %6s %6s %8s %6s %7s %8s\n",
		"PLACE", "STATUS", "AGE", "PUTS", "HITS", "EXPIRE", "VERDICTS", "FAILS", "PROBES", "BAD%WIN")
	for _, p := range cov.Places {
		age := "-"
		if p.Status != StatusNever {
			age = fmtAge(time.Duration(p.AgeNS))
		}
		fmt.Fprintf(w, "%-10s %-14s %10s %6d %6d %6d %8d %6d %4d/%-2d %7.1f%%\n",
			p.Place, p.Status, age,
			p.CachePuts, p.CacheHits, p.CacheExpires,
			p.Verdicts, p.Fails, p.ProbesOK, p.Probes, p.WindowBadFrac*100)
	}
}

// RenderAlerts writes the alert ring as a fixed-width table, newest
// first — what attestctl alerts prints.
func RenderAlerts(w io.Writer, snap AlertsSnapshot) {
	fmt.Fprintf(w, "alerts — watchdog %s: %d firing, %d fired / %d resolved total, probes %d (%d clean)\n\n",
		snap.Watchdog, snap.Firing, snap.FiredTotal, snap.ResolvedTotal,
		snap.ProbesTotal, snap.ProbesOK)
	if len(snap.Alerts) == 0 {
		fmt.Fprintln(w, "no alerts recorded")
		return
	}
	fmt.Fprintf(w, "%4s %-20s %-10s %-9s %10s %7s  %s\n",
		"ID", "RULE", "PLACE", "STATE", "AGE@FIRE", "PROBES", "REASON")
	for _, a := range snap.Alerts {
		fmt.Fprintf(w, "%4d %-20s %-10s %-9s %10s %4d/%-2d  %s\n",
			a.ID, a.Rule, a.Place, a.State,
			fmtAge(time.Duration(a.AgeNS)), a.ProbeOK, a.Probes, a.Reason)
	}
}

// fmtAge renders a duration at the freshness time scale (seconds and
// up; sub-second ages round to ms).
func fmtAge(d time.Duration) string {
	if d >= time.Second {
		return d.Round(time.Second).String()
	}
	return d.Round(time.Millisecond).String()
}
