package freshness

import (
	"errors"
	"fmt"
	"time"

	"pera/internal/rats"
	"pera/internal/telemetry"
)

// Prober issues an active re-attestation for a place. A nil error means
// the full Fig. 1 loop closed clean: challenge → evidence → appraisal →
// passing result.
type Prober interface {
	Probe(place string) error
}

// ProbeFunc adapts a function to the Prober interface.
type ProbeFunc func(place string) error

// Probe implements Prober.
func (f ProbeFunc) Probe(place string) error { return f(place) }

// RATSProber drives the paper's Fig. 1 challenge-response loop over the
// rats wire protocol: dial the place's attester, send MsgChallenge with
// a fresh nonce (the appraiser rejects replays, so every probe must
// mint its own), and appraise the returned evidence. On a clean
// appraisal it commits the fresh instant via OnFresh — normally wired
// to Watchdog.RecordFresh.
type RATSProber struct {
	// Dial connects to the place's attester endpoint (in simulations, a
	// rats.Pipe served by the switch's AttesterHandler). Required.
	Dial func(place string) (*rats.Conn, error)
	// NewNonce mints a fresh challenge nonce per probe. Required.
	NewNonce func(place string) []byte
	// Claims is the challenge claim spec (e.g. "program", "tables").
	Claims []string
	// Appraise judges the returned evidence against the active policy;
	// nil error means clean. Required.
	Appraise func(place string, nonce, evidenceBody []byte) error
	// OnFresh commits a clean probe (typically Watchdog.RecordFresh).
	OnFresh func(place string, at time.Time)
	// Clock stamps the fresh instant; default time.Now.
	Clock func() time.Time
	// Tracer, when set, records a root "probe" span per probe (for
	// sampled nonce flows) and propagates its context in the challenge
	// frame, so the attester's and appraiser's spans join one trace.
	Tracer *telemetry.FlowTracer
	// AppraiseCtx, when set, replaces Appraise with a trace-context-aware
	// variant: ctx is the probe span, for the appraisal side to parent
	// under (zero when the flow is unsampled).
	AppraiseCtx func(place string, ctx telemetry.SpanContext, nonce, evidenceBody []byte) error
}

// Probe implements Prober.
func (p *RATSProber) Probe(place string) error {
	if p.Dial == nil || p.NewNonce == nil || (p.Appraise == nil && p.AppraiseCtx == nil) {
		return errors.New("rats prober: Dial, NewNonce, and Appraise are required")
	}
	conn, err := p.Dial(place)
	if err != nil {
		return fmt.Errorf("dial attester %s: %w", place, err)
	}
	defer conn.Close()

	nonce := p.NewNonce(place)
	pctx := p.Tracer.NewContext(rats.FlowID(nonce))
	var pstart time.Time
	if pctx.Valid() {
		pstart = time.Now()
	}
	probeErr := func(err error) error {
		if pctx.Valid() {
			p.Tracer.RecordSpan(pctx, telemetry.SpanContext{}, rats.FlowID(nonce), place,
				telemetry.StageProbe, pstart, time.Since(pstart), errNote(err))
		}
		return err
	}
	req := &rats.Message{Type: rats.MsgChallenge, Nonce: nonce, Claims: p.Claims}
	req.SetContext(pctx)
	resp, err := conn.Call(req)
	if err != nil {
		return probeErr(fmt.Errorf("challenge %s: %w", place, err))
	}
	if resp.Type != rats.MsgEvidence {
		return probeErr(fmt.Errorf("challenge %s: attester answered %v: %s", place, resp.Type, resp.Body))
	}
	if p.AppraiseCtx != nil {
		err = p.AppraiseCtx(place, pctx, nonce, resp.Body)
	} else {
		err = p.Appraise(place, nonce, resp.Body)
	}
	if err != nil {
		return probeErr(fmt.Errorf("probe evidence from %s: %w", place, err))
	}
	if p.OnFresh != nil {
		clock := p.Clock
		if clock == nil {
			clock = time.Now
		}
		p.OnFresh(place, clock())
	}
	return probeErr(nil)
}

// errNote renders a probe outcome for the span note.
func errNote(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
