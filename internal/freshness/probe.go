package freshness

import (
	"errors"
	"fmt"
	"time"

	"pera/internal/rats"
)

// Prober issues an active re-attestation for a place. A nil error means
// the full Fig. 1 loop closed clean: challenge → evidence → appraisal →
// passing result.
type Prober interface {
	Probe(place string) error
}

// ProbeFunc adapts a function to the Prober interface.
type ProbeFunc func(place string) error

// Probe implements Prober.
func (f ProbeFunc) Probe(place string) error { return f(place) }

// RATSProber drives the paper's Fig. 1 challenge-response loop over the
// rats wire protocol: dial the place's attester, send MsgChallenge with
// a fresh nonce (the appraiser rejects replays, so every probe must
// mint its own), and appraise the returned evidence. On a clean
// appraisal it commits the fresh instant via OnFresh — normally wired
// to Watchdog.RecordFresh.
type RATSProber struct {
	// Dial connects to the place's attester endpoint (in simulations, a
	// rats.Pipe served by the switch's AttesterHandler). Required.
	Dial func(place string) (*rats.Conn, error)
	// NewNonce mints a fresh challenge nonce per probe. Required.
	NewNonce func(place string) []byte
	// Claims is the challenge claim spec (e.g. "program", "tables").
	Claims []string
	// Appraise judges the returned evidence against the active policy;
	// nil error means clean. Required.
	Appraise func(place string, nonce, evidenceBody []byte) error
	// OnFresh commits a clean probe (typically Watchdog.RecordFresh).
	OnFresh func(place string, at time.Time)
	// Clock stamps the fresh instant; default time.Now.
	Clock func() time.Time
}

// Probe implements Prober.
func (p *RATSProber) Probe(place string) error {
	if p.Dial == nil || p.NewNonce == nil || p.Appraise == nil {
		return errors.New("rats prober: Dial, NewNonce, and Appraise are required")
	}
	conn, err := p.Dial(place)
	if err != nil {
		return fmt.Errorf("dial attester %s: %w", place, err)
	}
	defer conn.Close()

	nonce := p.NewNonce(place)
	resp, err := conn.Call(&rats.Message{
		Type: rats.MsgChallenge, Nonce: nonce, Claims: p.Claims,
	})
	if err != nil {
		return fmt.Errorf("challenge %s: %w", place, err)
	}
	if resp.Type != rats.MsgEvidence {
		return fmt.Errorf("challenge %s: attester answered %v: %s", place, resp.Type, resp.Body)
	}
	if err := p.Appraise(place, nonce, resp.Body); err != nil {
		return fmt.Errorf("probe evidence from %s: %w", place, err)
	}
	if p.OnFresh != nil {
		clock := p.Clock
		if clock == nil {
			clock = time.Now
		}
		p.OnFresh(place, clock())
	}
	return nil
}
