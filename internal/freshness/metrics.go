package freshness

import (
	"time"

	"pera/internal/telemetry"
)

// AgeBuckets is the bound set for evidence-age histograms: powers of
// two from 1s to ~18h. Freshness lives on a seconds-to-hours scale (the
// Fig. 4 inertia ladder spans 1s progstate to 365d hardware), unlike
// the latency histograms' microsecond ladder.
var AgeBuckets = func() []float64 {
	bounds := make([]float64, 17)
	b := 1.0
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Instrument publishes the watchdog's state as lazy telemetry metrics
// (everything computed at scrape time under the watchdog lock) plus the
// evidence-age histogram observed on every evaluation. It also arms
// per-place freshness gauges: rows discovered after Instrument register
// their gauge on the next feed outside the watchdog lock.
func (w *Watchdog) Instrument(reg *telemetry.Registry) {
	if w == nil || reg == nil {
		return
	}
	// The registry locks during registration and scrapes hold its lock
	// while calling closures that take w.mu, so nothing below may hold
	// w.mu across a registry call.
	hist := reg.Histogram("pera_freshness_age_seconds", AgeBuckets,
		telemetry.L("watchdog", w.name))
	w.mu.Lock()
	w.reg = reg
	w.ageHist = hist
	// Arm gauges for rows that predate instrumentation.
	pending := append([]string(nil), w.rowSeq...)
	w.regPending = nil
	w.mu.Unlock()

	statuses := []Status{StatusFresh, StatusStale, StatusLapsed, StatusNever}
	for _, st := range statuses {
		st := st
		reg.RegisterFunc("pera_freshness_places", telemetry.KindGauge,
			func() float64 { return float64(w.statusCount(st)) },
			telemetry.L("status", string(st)))
	}
	reg.RegisterFunc("pera_freshness_oldest_age_seconds", telemetry.KindGauge,
		func() float64 { return w.oldestAge().Seconds() })
	reg.RegisterFunc("pera_freshness_evaluations_total", telemetry.KindCounter,
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.evals) })
	reg.RegisterFunc("pera_alerts_firing", telemetry.KindGauge,
		func() float64 {
			w.mu.Lock()
			defer w.mu.Unlock()
			n := 0
			for _, as := range w.states {
				if as.current != nil {
					n++
				}
			}
			return float64(n)
		})
	reg.RegisterFunc("pera_alerts_fired_total", telemetry.KindCounter,
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.firedTotal) })
	reg.RegisterFunc("pera_alerts_resolved_total", telemetry.KindCounter,
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.resolvedTotal) })
	reg.RegisterFunc("pera_alerts_probes_total", telemetry.KindCounter,
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.probesTotal) })
	reg.RegisterFunc("pera_alerts_probes_ok_total", telemetry.KindCounter,
		func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.probeOKTotal) })

	for _, place := range pending {
		w.registerPlace(reg, place)
	}
}

// statusCount counts places currently in status st.
func (w *Watchdog) statusCount(st Status) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.cfg.Clock()
	n := 0
	for _, place := range w.rowSeq {
		r := w.rows[place]
		if got, _ := w.statusLocked(r, now); got == st {
			if st == StatusNever && !r.tracked {
				continue
			}
			n++
		}
	}
	return n
}

// oldestAge returns the largest committed-evidence age across attested
// places.
func (w *Watchdog) oldestAge() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.cfg.Clock()
	var oldest time.Duration
	for _, place := range w.rowSeq {
		r := w.rows[place]
		if r.lastFresh.IsZero() {
			continue
		}
		if age := now.Sub(r.lastFresh); age > oldest {
			oldest = age
		}
	}
	return oldest
}

// placeAge returns one place's committed-evidence age in seconds (0
// when never attested) — the per-(place, policy) freshness gauge.
func (w *Watchdog) placeAge(place string) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.rows[place]
	if !ok || r.lastFresh.IsZero() {
		return 0
	}
	return w.cfg.Clock().Sub(r.lastFresh).Seconds()
}

// registerPlace arms one per-place freshness gauge. Never called while
// holding w.mu: the registry locks during RegisterFunc, and scrapes
// hold the registry lock while calling closures that take w.mu — so
// the two locks must only ever nest registry → watchdog.
func (w *Watchdog) registerPlace(reg *telemetry.Registry, place string) {
	w.mu.Lock()
	policy := w.cfg.Policy
	w.mu.Unlock()
	reg.RegisterFunc("pera_freshness_evidence_age_seconds", telemetry.KindGauge,
		func() float64 { return w.placeAge(place) },
		telemetry.L("place", place), telemetry.L("policy", policy))
}

// flushRegistrations arms gauges for rows created since the last feed,
// outside the watchdog lock (see registerPlace).
func (w *Watchdog) flushRegistrations() {
	w.mu.Lock()
	reg := w.reg
	pending := w.regPending
	w.regPending = nil
	w.mu.Unlock()
	if reg == nil {
		return
	}
	for _, place := range pending {
		w.registerPlace(reg, place)
	}
}
