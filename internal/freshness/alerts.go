package freshness

import (
	"fmt"
	"sort"
	"time"
)

// Rule names. The threshold rule is the hard edge of the budget; the
// burn-rate rule is the early-warning SLO evaluator over the sliding
// window.
const (
	// RuleStaleness fires when a place's committed evidence age crosses
	// LapsedAfter (or the place is tracked and never attested).
	RuleStaleness = "staleness-threshold"
	// RuleBurn fires when the fraction of out-of-budget window samples
	// consumes the error budget (1 − SLOTarget) at ≥ BurnMax× the
	// allowed rate.
	RuleBurn = "freshness-burn"
)

// Alert states on the firing→resolved lifecycle.
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is one alert through its lifecycle. Instances live in the
// bounded ring; sinks receive copies at each transition.
type Alert struct {
	ID     uint64 `json:"id"`
	Rule   string `json:"rule"`
	Place  string `json:"place"`
	Policy string `json:"policy"`
	State  string `json:"state"` // firing | resolved
	Reason string `json:"reason"`

	AgeNS      int64  `json:"age_ns"` // evidence age when fired
	FiredAtNS  int64  `json:"fired_at_ns"`
	FiredEval  uint64 `json:"fired_eval"` // evaluation count at firing
	ResolvedNS int64  `json:"resolved_at_ns,omitempty"`
	Probes     uint64 `json:"probes"`    // re-attestation probes issued while firing
	ProbeOK    uint64 `json:"probes_ok"` // of those, appraised clean
}

// stateKey identifies one rule × place evaluation thread.
type stateKey struct {
	rule  string
	place string
}

// alertState is the hysteresis ladder for one rule × place.
type alertState struct {
	breachStreak  int
	cleanStreak   int
	current       *Alert // non-nil while firing (points into the ring)
	lastProbeEval uint64
}

// KindAnomaly marks events emitted by the flight-recorder anomaly
// detectors (internal/recorder). They ride the same Sink pipeline as the
// watchdog's fired/resolved/probe transitions so anomalies land in the
// same stderr log, JSONL stream and sealed audit ledger as alerts — no
// parallel alerting path. For anomaly events Alert.Rule carries the
// detector name, Alert.Place the attributed place (when known) and
// Alert.Reason the detector's explanation.
const KindAnomaly = "anomaly"

// KindProfile marks events emitted by the continuous profiler's
// baseline diff engine (internal/profiler): a stage or function whose
// CPU share regressed past the configured delta. Like anomalies, they
// share the alert Sink pipeline — Alert.Rule carries
// "profile_regression:<kind>:<what>", Alert.Place the attributed place
// for stage findings, and Alert.Reason the share comparison.
const KindProfile = "profile_regression"

// Event is one sink-visible alert transition.
type Event struct {
	Kind     string `json:"kind"` // fired | resolved | probe | anomaly | profile_regression
	Alert    Alert  `json:"alert"`
	ProbeOK  bool   `json:"probe_ok,omitempty"`
	ProbeErr string `json:"probe_err,omitempty"`
}

// probeTarget is one place a probe round should challenge.
type probeTarget struct {
	place string
	key   stateKey
}

// evaluateLocked runs one evaluation of both rules over every row:
// classify each place, feed the sliding windows and the age histogram,
// walk the hysteresis ladders, and collect sink events plus probe
// targets for the caller to act on after releasing the lock.
func (w *Watchdog) evaluateLocked() ([]Event, []probeTarget) {
	w.evals++
	now := w.cfg.Clock()
	var events []Event
	var probes []probeTarget

	for _, place := range w.rowSeq {
		r := w.rows[place]
		st, age := w.statusLocked(r, now)
		if st == StatusNever && !r.tracked {
			continue // untracked and unattested: nothing to judge yet
		}
		bad := st != StatusFresh
		r.pushSample(bad)
		if st != StatusNever {
			w.ageHist.Observe(age.Seconds())
		}

		// Threshold rule: the hard budget edge.
		breach := st == StatusLapsed || st == StatusNever
		reason := ""
		if breach {
			if st == StatusNever {
				reason = "no evidence for this place has ever appraised clean"
			} else {
				reason = fmt.Sprintf("committed evidence age %v exceeds lapse budget %v",
					age.Round(time.Millisecond), w.cfg.Budget.LapsedAfter)
			}
		}
		events, probes = w.stepRuleLocked(RuleStaleness, r, st, age, breach, reason, events, probes)

		// Burn-rate rule: error budget = 1 − SLOTarget of window samples
		// may be out of budget; fire when consumption runs ≥ BurnMax×.
		if r.winN >= w.cfg.MinSamples {
			badFrac := float64(r.winBad) / float64(r.winN)
			errBudget := 1 - w.cfg.SLOTarget
			burn := badFrac / errBudget
			breach = burn >= w.cfg.BurnMax
			reason = ""
			if breach {
				reason = fmt.Sprintf("freshness SLO burning at %.1fx: %.0f%% of last %d samples out of budget (target %.0f%%)",
					burn, badFrac*100, r.winN, w.cfg.SLOTarget*100)
			}
			events, probes = w.stepRuleLocked(RuleBurn, r, st, age, breach, reason, events, probes)
		}
	}
	return events, probes
}

// stepRuleLocked advances one rule × place hysteresis ladder by one
// evaluation and appends any transition events / probe targets.
func (w *Watchdog) stepRuleLocked(rule string, r *row, st Status, age time.Duration,
	breach bool, reason string, events []Event, probes []probeTarget) ([]Event, []probeTarget) {

	key := stateKey{rule, r.place}
	as := w.states[key]
	if as == nil {
		as = &alertState{}
		w.states[key] = as
	}

	if as.current == nil {
		// Quiescent: count consecutive breaches toward FireAfter.
		if !breach {
			as.breachStreak = 0
			return events, probes
		}
		as.breachStreak++
		if as.breachStreak < w.cfg.FireAfter {
			return events, probes
		}
		w.alertSeq++
		a := &Alert{
			ID: w.alertSeq, Rule: rule, Place: r.place, Policy: w.cfg.Policy,
			State: StateFiring, Reason: reason,
			AgeNS: int64(age), FiredAtNS: w.cfg.Clock().UnixNano(), FiredEval: w.evals,
		}
		w.pushAlertLocked(a)
		as.current = a
		as.breachStreak, as.cleanStreak = 0, 0
		as.lastProbeEval = w.evals
		w.firedTotal++
		events = append(events, Event{Kind: "fired", Alert: *a})
		probes = append(probes, probeTarget{place: r.place, key: key})
		return events, probes
	}

	// Firing: resolution requires the place back in budget (fresh
	// evidence appraised clean) AND the rule's breach condition clear —
	// a burn alert must not flap while its window is still draining —
	// for ResolveAfter consecutive evals.
	if st == StatusFresh && !breach {
		as.cleanStreak++
		if as.cleanStreak >= w.cfg.ResolveAfter {
			a := as.current
			a.State = StateResolved
			a.ResolvedNS = w.cfg.Clock().UnixNano()
			w.resolvedTotal++
			as.current = nil
			as.cleanStreak, as.breachStreak = 0, 0
			events = append(events, Event{Kind: "resolved", Alert: *a})
		}
		return events, probes
	}
	as.cleanStreak = 0
	if reason != "" {
		as.current.Reason = reason // keep the latest breach detail
	}
	if w.evals-as.lastProbeEval >= uint64(w.cfg.ProbeEvery) {
		as.lastProbeEval = w.evals
		probes = append(probes, probeTarget{place: r.place, key: key})
	}
	return events, probes
}

// ProbeFiring issues one immediate probe round for every firing alert,
// regardless of the ProbeEvery cadence — the hook a harness or operator
// uses the moment a device is believed back.
func (w *Watchdog) ProbeFiring() {
	w.mu.Lock()
	var targets []probeTarget
	for key, as := range w.states {
		if as.current != nil {
			as.lastProbeEval = w.evals
			targets = append(targets, probeTarget{place: key.place, key: key})
		}
	}
	w.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].place != targets[j].place {
			return targets[i].place < targets[j].place
		}
		return targets[i].key.rule < targets[j].key.rule
	})
	w.runProbes(targets)
}

// pushAlertLocked inserts an alert into the bounded ring.
func (w *Watchdog) pushAlertLocked(a *Alert) {
	if len(w.ring) < w.cfg.AlertRing {
		w.ring = append(w.ring, a)
		return
	}
	w.ring[w.ringHead] = a
	w.ringHead = (w.ringHead + 1) % w.cfg.AlertRing
}

// runProbes challenges each target place through the prober, records
// the outcome on the row and the firing alert, and emits probe events.
// A CAS guard prevents recursion: a probe's own appraisal re-enters
// ObserveVerdict, whose evaluation must not spawn nested probes.
func (w *Watchdog) runProbes(targets []probeTarget) {
	if len(targets) == 0 {
		return
	}
	w.mu.Lock()
	p := w.prober
	w.mu.Unlock()
	if p == nil {
		return
	}
	if !w.probing.CompareAndSwap(false, true) {
		return
	}
	defer w.probing.Store(false)

	var events []Event
	for _, t := range targets {
		err := p.Probe(t.place)
		w.mu.Lock()
		r := w.rowLocked(t.place)
		r.probes++
		w.probesTotal++
		if err == nil {
			r.probeOK++
			w.probeOKTotal++
		}
		var snap Alert
		if as := w.states[t.key]; as != nil && as.current != nil {
			as.current.Probes++
			if err == nil {
				as.current.ProbeOK++
			}
			snap = *as.current
		} else {
			snap = Alert{Rule: t.key.rule, Place: t.place, Policy: w.cfg.Policy}
		}
		w.mu.Unlock()
		e := Event{Kind: "probe", Alert: snap, ProbeOK: err == nil}
		if err != nil {
			e.ProbeErr = err.Error()
		}
		events = append(events, e)
	}
	w.dispatch(events)
}
