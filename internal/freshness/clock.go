package freshness

import (
	"sync"
	"time"
)

// SimClock is a mutex-guarded manual clock. Simulations share one
// instance between the evidence cache, the sampler, and the watchdog so
// freshness arithmetic is deterministic: one Advance per injected
// packet turns packet counts into simulated seconds.
type SimClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewSimClock starts a clock at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the current simulated instant; pass the method value as
// any Clock func.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
