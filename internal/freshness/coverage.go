package freshness

import (
	"encoding/json"
	"net/http"
	"sort"

	"pera/internal/telemetry"
)

// PlaceCoverage is one (place, policy) row on the coverage map.
type PlaceCoverage struct {
	Place  string `json:"place"`
	Policy string `json:"policy"`
	Status Status `json:"status"`

	AgeNS       int64 `json:"age_ns"`        // 0 when never-attested
	LastFreshNS int64 `json:"last_fresh_ns"` // unix ns of last committed trust; 0 never
	PendingNS   int64 `json:"pending_ns,omitempty"`

	CachePuts    uint64 `json:"cache_puts"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheExpires uint64 `json:"cache_expires"`
	Verdicts     uint64 `json:"verdicts"`
	Fails        uint64 `json:"fails"`
	Probes       uint64 `json:"probes"`
	ProbesOK     uint64 `json:"probes_ok"`

	WindowSamples int     `json:"window_samples"`
	WindowBadFrac float64 `json:"window_bad_frac"`
	Tracked       bool    `json:"tracked"`
}

// Coverage is the watchdog's full coverage surface — what
// /coverage.json serves and attestctl coverage renders.
type Coverage struct {
	Watchdog string `json:"watchdog"`
	Policy   string `json:"policy"`
	NowNS    int64  `json:"now_ns"`

	BudgetFreshNS  int64   `json:"budget_fresh_ns"`
	BudgetLapsedNS int64   `json:"budget_lapsed_ns"`
	SLOTarget      float64 `json:"slo_target"`

	Fresh  int `json:"fresh"`
	Stale  int `json:"stale"`
	Lapsed int `json:"lapsed"`
	Never  int `json:"never_attested"`

	Evaluations uint64          `json:"evaluations"`
	Places      []PlaceCoverage `json:"places"`
}

// AlertsSnapshot is the alert ring's JSON surface — what /alerts.json
// serves and attestctl alerts renders.
type AlertsSnapshot struct {
	Watchdog      string  `json:"watchdog"`
	Firing        int     `json:"firing"`
	FiredTotal    uint64  `json:"fired_total"`
	ResolvedTotal uint64  `json:"resolved_total"`
	ProbesTotal   uint64  `json:"probes_total"`
	ProbesOK      uint64  `json:"probes_ok"`
	Alerts        []Alert `json:"alerts"` // newest first
}

// Coverage renders the current coverage map. Places appear in
// first-seen order (path order on a single chain).
func (w *Watchdog) Coverage() Coverage {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.cfg.Clock()
	cov := Coverage{
		Watchdog:       w.name,
		Policy:         w.cfg.Policy,
		NowNS:          now.UnixNano(),
		BudgetFreshNS:  int64(w.cfg.Budget.FreshFor),
		BudgetLapsedNS: int64(w.cfg.Budget.LapsedAfter),
		SLOTarget:      w.cfg.SLOTarget,
		Evaluations:    w.evals,
	}
	for _, place := range w.rowSeq {
		r := w.rows[place]
		st, age := w.statusLocked(r, now)
		pc := PlaceCoverage{
			Place: place, Policy: w.cfg.Policy, Status: st,
			AgeNS:        int64(age),
			CachePuts:    r.puts,
			CacheHits:    r.hits,
			CacheExpires: r.expires,
			Verdicts:     r.verdicts,
			Fails:        r.fails,
			Probes:       r.probes,
			ProbesOK:     r.probeOK,
			Tracked:      r.tracked,
		}
		if !r.lastFresh.IsZero() {
			pc.LastFreshNS = r.lastFresh.UnixNano()
		}
		if !r.pending.IsZero() {
			pc.PendingNS = r.pending.UnixNano()
		}
		pc.WindowSamples = r.winN
		if r.winN > 0 {
			pc.WindowBadFrac = float64(r.winBad) / float64(r.winN)
		}
		switch st {
		case StatusFresh:
			cov.Fresh++
		case StatusStale:
			cov.Stale++
		case StatusLapsed:
			cov.Lapsed++
		case StatusNever:
			cov.Never++
		}
		cov.Places = append(cov.Places, pc)
	}
	return cov
}

// Alerts renders the alert ring, newest first.
func (w *Watchdog) Alerts() AlertsSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := AlertsSnapshot{
		Watchdog:      w.name,
		FiredTotal:    w.firedTotal,
		ResolvedTotal: w.resolvedTotal,
		ProbesTotal:   w.probesTotal,
		ProbesOK:      w.probeOKTotal,
	}
	for _, a := range w.ring {
		snap.Alerts = append(snap.Alerts, *a)
		if a.State == StateFiring {
			snap.Firing++
		}
	}
	sort.Slice(snap.Alerts, func(i, j int) bool { return snap.Alerts[i].ID > snap.Alerts[j].ID })
	return snap
}

// Paths on the telemetry server.
const (
	CoveragePath = "/coverage.json"
	AlertsPath   = "/alerts.json"
)

// CoverageHandler serves Coverage as indented JSON.
func (w *Watchdog) CoverageHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(w.Coverage())
	})
}

// AlertsHandler serves AlertsSnapshot as indented JSON.
func (w *Watchdog) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(w.Alerts())
	})
}

// Endpoints mounts both surfaces on the shared telemetry server. Nil
// receiver yields nothing, so callers can pass through unconditionally.
func (w *Watchdog) Endpoints() []telemetry.Endpoint {
	if w == nil {
		return nil
	}
	return []telemetry.Endpoint{
		{Path: CoveragePath, Desc: "freshness coverage map (per-place evidence age)", Handler: w.CoverageHandler()},
		{Path: AlertsPath, Desc: "freshness alert ring (firing + resolved)", Handler: w.AlertsHandler()},
	}
}
