package pera

import (
	"errors"
	"fmt"
	"testing"

	"pera/internal/evidence"
)

func sampleSpans() []HopSpan {
	return []HopSpan{
		{Place: "sw1", Flags: SpanAttested, SignNS: 120000, TotalNS: 150000, EvBytes: 210, CacheMisses: 1},
		{Place: "sw2", Flags: SpanVerified | SpanAttested, VerifyNS: 80000, SignNS: 110000, TotalNS: 400000, EvBytes: 305, CacheHits: 1, GuardRejects: 2, SampleSkips: 1},
	}
}

func TestSpanSectionRoundTrip(t *testing.T) {
	spans := sampleSpans()
	enc := appendSpanSection(nil, spans, true)
	if len(enc) != SpanSectionSize(spans) {
		t.Fatalf("size: %d, predicted %d", len(enc), SpanSectionSize(spans))
	}
	got, truncated, err := decodeSpanSection(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("truncated flag lost")
	}
	if len(got) != len(spans) {
		t.Fatalf("spans: %d", len(got))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d: %+v != %+v", i, got[i], spans[i])
		}
	}
	if !got[1].Verified() || !got[1].Attested() || got[0].Verified() {
		t.Fatalf("flags: %+v", got)
	}
}

func TestSpanSectionDecodeGarbage(t *testing.T) {
	good := appendSpanSection(nil, sampleSpans(), false)
	cases := [][]byte{
		nil,
		good[:1],
		good[:len(good)/2],
		{0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // huge count
	}
	for i, data := range cases {
		if _, _, err := decodeSpanSection(data); err == nil {
			t.Errorf("case %d decoded", i)
		} else if !errors.Is(err, ErrHeaderDecode) {
			t.Errorf("case %d: wrong error %v", i, err)
		}
	}
}

func TestHeaderV2PushPop(t *testing.T) {
	pol := &Policy{ID: 3, Nonce: []byte("n2"), Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}}}
	inner := []byte("payload")

	// No spans: byte-identical to the v1 wire.
	v1 := Push(&Header{Policy: pol, Evidence: evidence.Nonce(pol.Nonce)}, inner)
	if v1[4] != headerVersion {
		t.Fatalf("span-free header emitted version %d", v1[4])
	}

	h := &Header{Policy: pol, Evidence: evidence.Nonce(pol.Nonce), Spans: sampleSpans()}
	wire := Push(h, inner)
	if wire[4] != headerVersionV2 {
		t.Fatalf("spanned header emitted version %d", wire[4])
	}
	got, rest, err := Pop(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != string(inner) {
		t.Fatalf("inner: %q", rest)
	}
	if len(got.Spans) != 2 || got.Spans[0].Place != "sw1" || got.Spans[1].Place != "sw2" {
		t.Fatalf("spans: %+v", got.Spans)
	}
	if got.SpansTruncated {
		t.Fatal("spurious truncation")
	}
	if HeaderOverhead(got) != len(wire)-len(inner) {
		t.Fatalf("overhead %d, want %d", HeaderOverhead(got), len(wire)-len(inner))
	}
}

func TestSpanSamplingWholeFlow(t *testing.T) {
	every := SpanConfig{Enabled: true}
	if !every.Sampled("anything") {
		t.Fatal("SampleEvery=0 must sample all flows")
	}
	c := SpanConfig{Enabled: true, SampleEvery: 8}
	sampled := 0
	for i := 0; i < 800; i++ {
		flow := fmt.Sprintf("flow-%d", i)
		first := c.Sampled(flow)
		if first != c.Sampled(flow) {
			t.Fatal("sampling not deterministic per flow")
		}
		if first {
			sampled++
		}
	}
	if sampled < 40 || sampled > 300 {
		t.Fatalf("1-in-8 sampling picked %d/800 flows", sampled)
	}
}

// TestSwitchAppendsHopSpans runs a frame through two span-enabled hops
// and checks each hop's record: order, attestation flags, verify timing
// at the second hop, and evidence-growth accounting.
func TestSwitchAppendsHopSpans(t *testing.T) {
	cfg := func() Config {
		return Config{InBand: true, Composition: evidence.Chained, Spans: SpanConfig{Enabled: true}}
	}
	sw1 := newSwitch(t, "sw1", cfg())
	c2 := cfg()
	c2.VerifyIncoming = evidence.KeyMap{"sw1": sw1.RoT().Public()}
	sw2 := newSwitch(t, "sw2", c2)

	pol := &Policy{
		ID: 1, Nonce: []byte("n"),
		Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true, Appraiser: "Appraiser"}},
	}
	outs, err := sw1.Receive(1, WrapFrame(pol, testFrame(t, sw1)))
	if err != nil {
		t.Fatal(err)
	}
	outs, err = sw2.Receive(1, outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := UnwrapFrame(outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Spans) != 2 {
		t.Fatalf("spans: %+v", hdr.Spans)
	}
	s1, s2 := hdr.Spans[0], hdr.Spans[1]
	if s1.Place != "sw1" || s2.Place != "sw2" {
		t.Fatalf("hop order: %s, %s", s1.Place, s2.Place)
	}
	if !s1.Attested() || !s2.Attested() {
		t.Fatalf("attested flags: %+v %+v", s1, s2)
	}
	if s1.Verified() {
		t.Fatal("sw1 has no verify stage configured")
	}
	if !s2.Verified() || s2.VerifyNS == 0 {
		t.Fatalf("sw2 verify span: %+v", s2)
	}
	if s1.SignNS == 0 || s1.TotalNS < s1.SignNS {
		t.Fatalf("sw1 timing: %+v", s1)
	}
	if s1.EvBytes == 0 || s2.EvBytes == 0 {
		t.Fatalf("evidence growth: %+v %+v", s1, s2)
	}
	st := sw1.Stats()
	if st.HopSpans != 1 || st.HopSpanBytes == 0 || st.HopSpanDrops != 0 {
		t.Fatalf("sw1 stats: %+v", st)
	}
}

// TestSpanByteBudgetTruncates pushes a frame through a hop whose budget
// cannot hold even one span: the hop must drop its own record, mark the
// section truncated, and count the drop — never blow the budget.
func TestSpanByteBudgetTruncates(t *testing.T) {
	cfg := Config{
		InBand: true, Composition: evidence.Chained,
		Spans: SpanConfig{Enabled: true, ByteBudget: 4},
	}
	sw := newSwitch(t, "sw1", cfg)
	pol := &Policy{
		ID: 1, Nonce: []byte("n"),
		Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true, Appraiser: "Appraiser"}},
	}
	outs, err := sw.Receive(1, WrapFrame(pol, testFrame(t, sw)))
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, err := UnwrapFrame(outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Spans) != 0 || !hdr.SpansTruncated {
		t.Fatalf("budget not honored: %+v truncated=%v", hdr.Spans, hdr.SpansTruncated)
	}
	if st := sw.Stats(); st.HopSpanDrops != 1 || st.HopSpans != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSpanSamplingSkipsUnsampledFlows: an unsampled flow's header stays
// on wire version 1 — zero observability bytes for 1-in-N traffic.
func TestSpanSamplingSkipsUnsampledFlows(t *testing.T) {
	cfg := Config{
		InBand: true, Composition: evidence.Chained,
		// Astronomically sparse sampling: this flow will not be chosen.
		Spans: SpanConfig{Enabled: true, SampleEvery: 1 << 30},
	}
	sw := newSwitch(t, "sw1", cfg)
	pol := &Policy{
		ID: 1, Nonce: []byte("unsampled"),
		Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true, Appraiser: "Appraiser"}},
	}
	outs, err := sw.Receive(1, WrapFrame(pol, testFrame(t, sw)))
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Frame[4] != headerVersion {
		t.Fatalf("unsampled flow carried version %d", outs[0].Frame[4])
	}
	hdr, _, err := UnwrapFrame(outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Spans) != 0 || hdr.SpansTruncated {
		t.Fatalf("unsampled flow carried spans: %+v", hdr.Spans)
	}
}
