package pera

import (
	"encoding/hex"
	"testing"

	"pera/internal/evidence"
	"pera/internal/telemetry"
)

// TestInstrumentStatsParity is the telemetry layer's no-second-books
// check: Stats() reads the same instruments a registry snapshot samples,
// so the two views must agree counter for counter.
func TestInstrumentStatsParity(t *testing.T) {
	s := newSwitch(t, "sw1", Config{InBand: true, Composition: evidence.Chained})
	reg := telemetry.NewRegistry()
	s.Instrument(reg)

	pol := &Policy{
		ID:    1,
		Nonce: []byte("n"),
		Obls: []Obligation{{
			Claims:       []evidence.Detail{evidence.DetailProgram},
			SignEvidence: true,
			Appraiser:    "Appraiser",
		}},
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Receive(1, WrapFrame(pol, testFrame(t, s))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Attest([]byte("nonce"), evidence.DetailProgram); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Packets != 3 || st.Attested != 3 || st.SignOps != 4 {
		t.Fatalf("stats: %+v", st)
	}
	snap := reg.Snapshot()
	sw := telemetry.L("switch", "sw1")
	parity := []struct {
		metric string
		stat   uint64
	}{
		{"pera_packets_total", st.Packets},
		{"pera_attested_total", st.Attested},
		{"pera_sign_ops_total", st.SignOps},
		{"pera_evidence_bytes_total", st.EvidenceBytes},
		{"pera_inband_bytes_total", st.InBandBytes},
		{"pera_oob_msgs_total", st.OutOfBandMsgs},
		{"pera_guard_rejects_total", st.GuardRejects},
		{"pera_sample_skips_total", st.SampleSkips},
		{"pera_verify_ops_total", st.VerifyOps},
		{"pera_verify_fails_total", st.VerifyFails},
	}
	for _, p := range parity {
		if got := snap.Value(p.metric, sw); got != float64(p.stat) {
			t.Errorf("%s = %v, Stats() says %d", p.metric, got, p.stat)
		}
	}

	// Instrument armed stage timing: the Sign-stage histogram has one
	// observation per signature operation.
	m, ok := snap.Get("pera_sign_seconds", sw)
	if !ok || m.Hist == nil {
		t.Fatal("pera_sign_seconds not exported")
	}
	if m.Hist.Count != st.SignOps {
		t.Fatalf("sign histogram count = %d, want %d sign ops", m.Hist.Count, st.SignOps)
	}

	// ResetStats zeroes both views at once — same storage.
	s.ResetStats()
	if got := s.Stats(); got.Packets != 0 || got.SignOps != 0 {
		t.Fatalf("stats after reset: %+v", got)
	}
	if got := reg.Snapshot().Value("pera_packets_total", sw); got != 0 {
		t.Fatalf("registry after reset: %v", got)
	}
}

// TestUninstrumentedSwitchSkipsTiming checks the zero-overhead contract:
// without Instrument or a tracer, the packet path takes no timestamps, so
// the (unregistered but live) sign histogram stays empty while the sign
// counter still advances.
func TestUninstrumentedSwitchSkipsTiming(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	if _, err := s.Attest([]byte("n"), evidence.DetailProgram); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SignOps != 1 {
		t.Fatalf("sign ops: %d", s.Stats().SignOps)
	}
	if n := s.met.signSeconds.Sample().Hist.Count; n != 0 {
		t.Fatalf("untimed switch recorded %d sign durations", n)
	}
}

// TestSwitchTracerSpans checks flow correlation: an Attest with a nonce
// records a Sign span under the nonce-hex flow ID, and an in-band packet
// records spans under the evidence nonce.
func TestSwitchTracerSpans(t *testing.T) {
	s := newSwitch(t, "sw1", Config{InBand: true, Composition: evidence.Chained})
	tr := telemetry.NewFlowTracer(64)
	s.SetTracer(tr)

	nonce := []byte("challenge")
	if _, err := s.Attest(nonce, evidence.DetailProgram); err != nil {
		t.Fatal(err)
	}
	spans := tr.Flow(hex.EncodeToString(nonce))
	if len(spans) == 0 {
		t.Fatal("no spans for attest nonce flow")
	}
	sawSign := false
	for _, sp := range spans {
		if sp.Place != "sw1" {
			t.Fatalf("span place %q", sp.Place)
		}
		if sp.Stage == telemetry.StageSign {
			sawSign = true
		}
	}
	if !sawSign {
		t.Fatalf("no sign span in %+v", spans)
	}

	pol := &Policy{ID: 1, Nonce: []byte("pn"), Obls: []Obligation{{
		Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true,
	}}}
	if _, err := s.Receive(1, WrapFrame(pol, testFrame(t, s))); err != nil {
		t.Fatal(err)
	}
	if len(tr.Flow(hex.EncodeToString([]byte("pn")))) == 0 {
		t.Fatal("no spans for in-band packet flow")
	}

	// Detach: no further spans.
	s.SetTracer(nil)
	before := tr.Recorded()
	if _, err := s.Attest([]byte("post-detach"), evidence.DetailProgram); err != nil {
		t.Fatal(err)
	}
	if tr.Recorded() != before {
		t.Fatal("detached tracer still recording")
	}
}
