package pera

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/evidence"
	"pera/internal/netsim"
	"pera/internal/p4ir"
	"pera/internal/pisa"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

// PCR allocation for PERA platforms, mirroring measured-boot conventions:
// PCR 0 holds the hardware/firmware identity, PCR 4 the loaded dataplane
// program, PCR 5 rolling table state.
const (
	PCRHardware = 0
	PCRProgram  = 4
	PCRTables   = 5
)

// Claim target names used in measurement evidence.
const (
	TargetHardware = "hardware"
	TargetTables   = "tables"
	TargetState    = "state"
	TargetPacket   = "packet"
)

// Sink receives out-of-band evidence emitted by a switch (Fig. 3 cases B,
// C and E): the harness wires it to an appraiser, a collector host, or a
// rats connection.
type Sink func(sw, appraiser string, ev *evidence.Evidence)

// Config tunes a switch's evidence production — the paper's §5.2
// "configuration interface that can tune the level of detail and
// frequency of evidence" (Fig. 4).
type Config struct {
	// InBand enables the in-band header path (pop/compose/push).
	InBand bool
	// Composition selects chained vs pointwise evidence.
	Composition evidence.Composition
	// Sampler decides per packet whether evidence is produced. Nil means
	// attest every sampled packet... nil defaults to per-packet.
	Sampler *evidence.Sampler
	// Cache reuses high-inertia evidence. Nil disables caching.
	Cache *evidence.Cache
	// Standing obligations applied to all traffic (out-of-band
	// configuration); in-band policies arrive in headers.
	Standing []Obligation
	// VerifyIncoming enables the Verify half of the Fig. 3 Sign/Verify
	// stage: in-band evidence arriving on a frame is checked against
	// these keys and the frame is dropped if the chain does not verify
	// — upstream tampering never propagates. Nil disables verification.
	VerifyIncoming evidence.KeyResolver
	// VerifyMemo, when non-nil, memoizes the Verify stage's signature
	// checks, so a high-inertia chain re-presented across packets costs
	// one hash instead of one ed25519.Verify per signature node.
	VerifyMemo *evidence.VerifyMemo
	// Spans tunes in-band hop-span production for the observatory plane
	// (see hopspan.go): per-hop place/timing/outcome records appended to
	// the header alongside the evidence.
	Spans SpanConfig
}

// Stats are cumulative counters the benchmarks read. It is a plain
// snapshot type; the switch maintains the live counters as telemetry
// instruments (see switchMetrics) so concurrent Inject callers never
// serialize on a stats lock.
type Stats struct {
	Packets       uint64 // frames processed
	Attested      uint64 // frames for which evidence was produced
	SignOps       uint64 // RoT signature operations
	EvidenceBytes uint64 // evidence bytes emitted (in-band + out-of-band)
	InBandBytes   uint64 // header bytes carried on egress frames
	OutOfBandMsgs uint64 // sink emissions
	GuardRejects  uint64 // obligations skipped by failed ▶ tests
	SampleSkips   uint64 // obligations skipped by the sampler
	VerifyOps     uint64 // incoming chains checked by the Verify stage
	VerifyFails   uint64 // frames dropped for unverifiable chains
	HopSpans      uint64 // hop spans appended to in-band headers
	HopSpanBytes  uint64 // encoded bytes those spans added
	HopSpanDrops  uint64 // spans dropped for the section byte budget
}

// switchMetrics is the live, lock-free representation of Stats: every
// counter is a telemetry instrument (striped atomics), so the same
// storage backs both the Stats() snapshot API and the telemetry
// registry — there is no second set of books to drift. The duration
// histograms and trace spans are armed only once Instrument or
// SetTracer is called, so an un-instrumented switch pays no time.Now
// calls on the packet path.
// The instruments are embedded by value — one switchMetrics sits inside
// each Switch — so constructing a switch costs two histogram bucket
// arrays rather than fifteen separate instrument allocations.
type switchMetrics struct {
	timing atomic.Bool // take stage timestamps (Instrument arms this)

	packets       telemetry.Counter
	attested      telemetry.Counter
	signOps       telemetry.Counter
	evidenceBytes telemetry.Counter
	inBandBytes   telemetry.Counter
	outOfBandMsgs telemetry.Counter
	guardRejects  telemetry.Counter
	sampleSkips   telemetry.Counter
	verifyOps     telemetry.Counter
	verifyFails   telemetry.Counter
	hopSpans      telemetry.Counter
	hopSpanBytes  telemetry.Counter
	hopSpanDrops  telemetry.Counter

	signSeconds   telemetry.Histogram // Fig. 3 Sign stage latency
	verifySeconds telemetry.Histogram // Fig. 3 Verify stage latency (in-band)

	// Profiling label regions (internal/profiler). Enter is an atomic
	// load + branch while the profiler is disarmed, so the packet path
	// pays nothing unless continuous profiling is on.
	profSign     *telemetry.ProfRegion
	profEvidence *telemetry.ProfRegion
	profCompose  *telemetry.ProfRegion
	profVerify   *telemetry.ProfRegion
}

func (m *switchMetrics) init(name string) {
	// One label slice shared by every instrument of this switch.
	sw := []telemetry.Label{telemetry.L("switch", name)}
	m.packets.Init("pera_packets_total", sw)
	m.attested.Init("pera_attested_total", sw)
	m.signOps.Init("pera_sign_ops_total", sw)
	m.evidenceBytes.Init("pera_evidence_bytes_total", sw)
	m.inBandBytes.Init("pera_inband_bytes_total", sw)
	m.outOfBandMsgs.Init("pera_oob_msgs_total", sw)
	m.guardRejects.Init("pera_guard_rejects_total", sw)
	m.sampleSkips.Init("pera_sample_skips_total", sw)
	m.verifyOps.Init("pera_verify_ops_total", sw)
	m.verifyFails.Init("pera_verify_fails_total", sw)
	m.hopSpans.Init("pera_hop_spans_total", sw)
	m.hopSpanBytes.Init("pera_hop_span_bytes_total", sw)
	m.hopSpanDrops.Init("pera_hop_span_drops_total", sw)
	m.signSeconds.Init("pera_sign_seconds", nil, sw)
	m.verifySeconds.Init("pera_switch_verify_seconds", nil, sw)
	m.profSign = telemetry.NewProfRegion(telemetry.StageSign, name)
	m.profEvidence = telemetry.NewProfRegion(telemetry.StageEvidence, name)
	m.profCompose = telemetry.NewProfRegion(telemetry.StageCompose, name)
	m.profVerify = telemetry.NewProfRegion(telemetry.StageVerify, name)
}

func (m *switchMetrics) instruments() []telemetry.Instrument {
	return []telemetry.Instrument{
		&m.packets, &m.attested, &m.signOps, &m.evidenceBytes, &m.inBandBytes,
		&m.outOfBandMsgs, &m.guardRejects, &m.sampleSkips, &m.verifyOps,
		&m.verifyFails, &m.hopSpans, &m.hopSpanBytes, &m.hopSpanDrops,
		&m.signSeconds, &m.verifySeconds,
	}
}

func (m *switchMetrics) snapshot() Stats {
	return Stats{
		Packets:       m.packets.Value(),
		Attested:      m.attested.Value(),
		SignOps:       m.signOps.Value(),
		EvidenceBytes: m.evidenceBytes.Value(),
		InBandBytes:   m.inBandBytes.Value(),
		OutOfBandMsgs: m.outOfBandMsgs.Value(),
		GuardRejects:  m.guardRejects.Value(),
		SampleSkips:   m.sampleSkips.Value(),
		VerifyOps:     m.verifyOps.Value(),
		VerifyFails:   m.verifyFails.Value(),
		HopSpans:      m.hopSpans.Value(),
		HopSpanBytes:  m.hopSpanBytes.Value(),
		HopSpanDrops:  m.hopSpanDrops.Value(),
	}
}

func (m *switchMetrics) reset() {
	m.packets.Reset()
	m.attested.Reset()
	m.signOps.Reset()
	m.evidenceBytes.Reset()
	m.inBandBytes.Reset()
	m.outOfBandMsgs.Reset()
	m.guardRejects.Reset()
	m.sampleSkips.Reset()
	m.verifyOps.Reset()
	m.verifyFails.Reset()
	m.hopSpans.Reset()
	m.hopSpanBytes.Reset()
	m.hopSpanDrops.Reset()
}

// start returns a stage timestamp when timing is armed (Instrument was
// called, a tracer is attached, or this frame carries a hop span), else
// the zero time — downstream ObserveSince/elapsed treat zero as "not
// timed".
func (m *switchMetrics) start(tr *telemetry.FlowTracer, sp *HopSpan) time.Time {
	if tr != nil || sp != nil || m.timing.Load() {
		return time.Now()
	}
	return time.Time{}
}

// elapsed converts a start timestamp into a span duration.
func elapsed(start time.Time) time.Duration {
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// Switch is a PERA switch: a PISA dataplane plus a root of trust, the
// Sign/Verify stage, and the evidence Create/Inspect/Compose block.
// It implements netsim.Node and netsim.Dataplane, and is safe for
// concurrent Inject: configuration is read under a read lock, the PISA
// instance guards its own tables/registers, and all counters are atomic.
type Switch struct {
	name string
	rot  *rot.RoT
	met  switchMetrics
	trc  atomic.Pointer[telemetry.FlowTracer]
	aud  atomic.Pointer[auditlog.Writer]

	mu     sync.RWMutex
	signer evidence.Signer // defaults to the local RoT; see SetSigner
	inst   *pisa.Instance
	cfg    Config
	sink   Sink
}

// New creates a PERA switch, measures the platform into PCR 0 and loads
// prog, measuring it into PCR 4 (the measured-boot sequence a deployed
// switch would perform before enabling its dataplane).
func New(name string, prog *p4ir.Program, cfg Config) (*Switch, error) {
	inst, err := pisa.Load(prog)
	if err != nil {
		return nil, err
	}
	r := rot.NewDeterministic(name, []byte("pera:"+name))
	s := &Switch{name: name, rot: r, signer: r, inst: inst, cfg: cfg}
	s.met.init(name)
	if cfg.Sampler == nil {
		s.cfg.Sampler = evidence.NewSampler(evidence.SamplerConfig{Mode: evidence.SamplePerPacket})
	}
	if err := r.ExtendData(PCRHardware, []byte("PERA-ASIC-v1:"+name), "hardware identity"); err != nil {
		return nil, err
	}
	pd := prog.Digest()
	if err := r.Extend(PCRProgram, pd, "program "+prog.Name); err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements netsim.Node.
func (s *Switch) Name() string { return s.name }

// Instance implements netsim.Dataplane.
func (s *Switch) Instance() *pisa.Instance { return s.inst }

// RoT exposes the root of trust (read-only use: keys, quotes).
func (s *Switch) RoT() *rot.RoT { return s.rot }

// SetSigner replaces the Sign-stage backend — e.g. with a RemoteSigner
// when the crypto primitive is disaggregated onto a neighbouring device
// (§5.2). The signer's Name must resolve to a key the appraiser trusts
// for this switch. Quotes still come from the local RoT.
func (s *Switch) SetSigner(signer evidence.Signer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.signer = signer
}

// currentSigner returns the active Sign-stage backend.
func (s *Switch) currentSigner() evidence.Signer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.signer
}

// instance returns the live PISA instance under the read lock, so a
// concurrent ReloadProgram cannot race frame processing.
func (s *Switch) instance() *pisa.Instance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inst
}

// SetSink installs the out-of-band evidence destination.
func (s *Switch) SetSink(sink Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// SetSampler swaps the obligation sampler mid-run — the Fig. 4 knob a
// live operator (or a fault) turns: a never-firing sampler silently
// stops this place's in-band re-attestation while the pipeline keeps
// forwarding, which is exactly the trust-decay condition the freshness
// watchdog exists to catch. A nil sampler restores per-packet sampling.
func (s *Switch) SetSampler(sm *evidence.Sampler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sm == nil {
		sm = evidence.NewSampler(evidence.SamplerConfig{Mode: evidence.SamplePerPacket})
	}
	s.cfg.Sampler = sm
}

// SetConfig replaces the evidence configuration.
func (s *Switch) SetConfig(cfg Config) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.Sampler == nil {
		cfg.Sampler = evidence.NewSampler(evidence.SamplerConfig{Mode: evidence.SamplePerPacket})
	}
	s.cfg = cfg
}

// Config returns the current configuration.
func (s *Switch) Config() Config {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg
}

// Stats returns a snapshot of the counters. The values are read from
// the same telemetry instruments a registry exposes, so Stats() and a
// /metrics scrape can never disagree.
func (s *Switch) Stats() Stats {
	return s.met.snapshot()
}

// ResetStats zeroes the counters.
func (s *Switch) ResetStats() {
	s.met.reset()
}

// Instrument registers the switch's counters and stage-latency
// histograms with reg (metric names carry a switch=<name> label) and
// arms stage timing. Counters keep accumulating whether or not they are
// registered; registration only exposes them.
func (s *Switch) Instrument(reg *telemetry.Registry) {
	for _, m := range s.met.instruments() {
		reg.Register(m)
	}
	s.met.timing.Store(true)
}

// SetTracer attaches a flow tracer: per-packet spans for the Verify,
// cache, Sign and compose stages are recorded for sampled flows,
// correlated by the evidence nonce (in-band) or the packet's flow hash.
// A nil tracer detaches.
func (s *Switch) SetTracer(tr *telemetry.FlowTracer) {
	s.trc.Store(tr)
}

// tracer returns the attached flow tracer, or nil.
func (s *Switch) tracer() *telemetry.FlowTracer {
	return s.trc.Load()
}

// SetAudit attaches the durable audit ledger: the same lifecycle events
// the tracer samples into its ring are emitted as hash-chained records
// (every flow, not 1-in-N — the ledger is the compliance trail, the
// tracer the debugging aid). A nil writer detaches.
func (s *Switch) SetAudit(w *auditlog.Writer) {
	s.aud.Store(w)
}

// audit returns the attached ledger writer, or nil.
func (s *Switch) audit() *auditlog.Writer {
	return s.aud.Load()
}

// flowIDOf derives the trace correlation ID visible at this stage: the
// first nonce in the in-band chain (hex) when present — the same nonce
// the appraiser side sees — falling back to the literal tag for
// nonce-less traffic.
func flowIDOf(hdr *Header) string {
	if hdr != nil && hdr.Evidence != nil {
		if ns := evidence.Nonces(hdr.Evidence); len(ns) > 0 {
			return hex.EncodeToString(ns[0])
		}
	}
	return "-"
}

// ReloadProgram swaps the dataplane program, re-measuring PCR 4 — the
// extend chain records both the old and new program, so a swap is always
// visible to an appraiser comparing against a single-program golden log
// (UC1's protection).
func (s *Switch) ReloadProgram(prog *p4ir.Program) error {
	inst, err := pisa.Load(prog)
	if err != nil {
		return err
	}
	if err := s.rot.Extend(PCRProgram, prog.Digest(), "program "+prog.Name); err != nil {
		return err
	}
	s.mu.Lock()
	s.inst = inst
	if s.cfg.Cache != nil {
		s.cfg.Cache.InvalidatePlace(s.name)
	}
	s.mu.Unlock()
	return nil
}

// ClaimValue returns the attestable digest for one detail level. The
// packet argument is used only for DetailPackets and may be nil
// otherwise.
func (s *Switch) ClaimValue(d evidence.Detail, frame []byte) (target string, value rot.Digest, err error) {
	inst := s.instance()
	switch d {
	case evidence.DetailHardware:
		v, err := s.rot.PCR(PCRHardware)
		return TargetHardware, v, err
	case evidence.DetailProgram:
		return inst.Program().Name, inst.ProgramDigest(), nil
	case evidence.DetailTables:
		return TargetTables, inst.TablesDigest(), nil
	case evidence.DetailProgState:
		return TargetState, inst.StateDigest(), nil
	case evidence.DetailPackets:
		return TargetPacket, rot.Sum(frame), nil
	default:
		return "", rot.Digest{}, fmt.Errorf("pera: unknown detail %v", d)
	}
}

// Attest produces signed evidence for the requested details bound to
// nonce — the switch half of Fig. 1 and the `attest(...) -> # -> !`
// phrase of expressions (3)/(4). The hardware claim carries a serialized
// RoT quote in the measurement's Claims bytes so appraisers can verify
// hardware rooting independently.
func (s *Switch) Attest(nonce []byte, details ...evidence.Detail) (*evidence.Evidence, error) {
	return s.AttestCtx(telemetry.SpanContext{}, nonce, details...)
}

// AttestCtx is Attest with a propagated trace context: the servicing
// "attest" span parents under the challenger's span (carried in the
// rats trace-context field), so the challenge round trip and the
// attester-side claim/sign work form one cross-process trace.
func (s *Switch) AttestCtx(parent telemetry.SpanContext, nonce []byte, details ...evidence.Detail) (*evidence.Evidence, error) {
	tr := s.tracer()
	aud := s.audit()
	flow := ""
	if (tr != nil || aud != nil) && len(nonce) > 0 {
		flow = hex.EncodeToString(nonce)
	}
	actx := tr.ChildContext(parent, flow)
	var astart time.Time
	if actx.Valid() {
		astart = time.Now()
	} else {
		tr = nil // unsampled flow: keep stage timers unarmed
	}
	if aud != nil {
		names := make([]string, len(details))
		for i, d := range details {
			names[i] = d.String()
		}
		aud.Emit(auditlog.Record{
			Event: auditlog.EventClaimIssued, Place: s.name, Flow: flow,
			Nonce: flow, Detail: strings.Join(names, ","),
		})
	}
	var parts []*evidence.Evidence
	if len(nonce) > 0 {
		parts = append(parts, evidence.Nonce(nonce))
	}
	for _, d := range details {
		m, err := s.claimEvidence(d, nil, flow, actx, tr, aud, nil)
		if err != nil {
			return nil, err
		}
		parts = append(parts, m)
	}
	ev := evidence.SeqAll(parts...)
	signed := s.signEvidence(ev, flow, actx, tr, aud, nil)
	if actx.Valid() {
		tr.RecordSpan(actx, parent, flow, s.name, telemetry.StageAttest, astart, time.Since(astart), "")
	}
	return signed, nil
}

// claimTarget returns the cache/evidence target name for a detail level
// without computing the (possibly expensive) claim digest.
func (s *Switch) claimTarget(d evidence.Detail) (string, error) {
	switch d {
	case evidence.DetailHardware:
		return TargetHardware, nil
	case evidence.DetailProgram:
		return s.instance().Program().Name, nil
	case evidence.DetailTables:
		return TargetTables, nil
	case evidence.DetailProgState:
		return TargetState, nil
	case evidence.DetailPackets:
		return TargetPacket, nil
	default:
		return "", fmt.Errorf("pera: unknown detail %v", d)
	}
}

// claimEvidence builds (or fetches from cache) the measurement node for
// one detail level. flow/parent/tr/aud/sp carry the trace, audit and
// hop-span context (zero/nil when off); recorded spans parent under
// the hop or attest span.
func (s *Switch) claimEvidence(d evidence.Detail, frame []byte, flow string, parent telemetry.SpanContext, tr *telemetry.FlowTracer, aud *auditlog.Writer, sp *HopSpan) (*evidence.Evidence, error) {
	defer telemetry.ProfExit(s.met.profEvidence.Enter())
	s.mu.RLock()
	cache := s.cfg.Cache
	s.mu.RUnlock()
	target, err := s.claimTarget(d)
	if err != nil {
		return nil, err
	}
	build := func() (*evidence.Evidence, error) {
		tgt, val, err := s.ClaimValue(d, frame)
		if err != nil {
			return nil, err
		}
		var claims []byte
		if d == evidence.DetailHardware {
			// The hardware claim carries a full serialized quote over
			// the identity and program PCRs, so appraisers can verify
			// the hardware rooting independently of the evidence
			// signature.
			q, err := s.rot.Quote(nil, PCRHardware, PCRProgram)
			if err != nil {
				return nil, err
			}
			claims = rot.EncodeQuote(q)
		}
		return evidence.Measurement(s.name, tgt, s.name, d, val, claims), nil
	}
	if cache == nil {
		start := s.met.start(tr, sp)
		ev, err := build()
		tr.RecordChild(parent, flow, s.name, telemetry.StageEvidence, start, elapsed(start), target)
		if aud != nil {
			aud.Emit(auditlog.Record{
				Event: auditlog.EventEvidence, Place: s.name, Flow: flow,
				Target: target, Detail: d.String(), DurNS: int64(elapsed(start)),
			})
		}
		return ev, err
	}
	start := s.met.start(tr, sp)
	ev, hit, err := cache.GetOrProduce(s.name, target, d, build)
	if sp != nil {
		if hit {
			sp.CacheHits++
		} else {
			sp.CacheMisses++
		}
	}
	if tr != nil || aud != nil {
		stage := telemetry.StageCacheMiss
		if hit {
			stage = telemetry.StageCacheHit
		}
		tr.RecordChild(parent, flow, s.name, stage, start, elapsed(start), target)
		if aud != nil {
			aud.Emit(auditlog.Record{
				Event: auditlog.Event(stage), Place: s.name, Flow: flow,
				Target: target, Detail: d.String(), DurNS: int64(elapsed(start)),
			})
		}
	}
	return ev, err
}

// Inject delivers one frame to the switch's pipeline. It is the
// concurrent-ingestion entry point: multiple goroutines may Inject into
// the same switch simultaneously (the throughput harness's per-worker
// traffic sources do exactly that).
func (s *Switch) Inject(port uint64, frame []byte) ([]netsim.Emission, error) {
	return s.Receive(port, frame)
}

// Receive implements netsim.Node: the full Fig. 3 pipeline with the
// evidence stages around the PISA core. Safe for concurrent use.
func (s *Switch) Receive(port uint64, frame []byte) ([]netsim.Emission, error) {
	s.mu.RLock()
	cfg := s.cfg
	sink := s.sink
	inst := s.inst
	s.mu.RUnlock()
	s.met.packets.Inc()
	tr := s.tracer()
	aud := s.audit()

	var hdr *Header
	var sp *HopSpan
	var spanStart time.Time
	var hopCtx telemetry.SpanContext // parent of this hop's stage spans
	var hopStart time.Time
	evBefore := 0
	inner := frame
	flow := ""
	if cfg.InBand && HasHeader(frame) {
		h, rest, err := Pop(frame)
		if err != nil {
			return nil, err
		}
		hdr, inner = h, rest
		if tr != nil || aud != nil || cfg.Spans.Enabled {
			flow = flowIDOf(hdr)
		}
		if hopCtx = tr.NewContext(flow); hopCtx.Valid() {
			hopStart = time.Now()
		} else {
			// Unsampled flow: drop the local tracer reference so the
			// stage timers below stay unarmed — every tr.Record* call
			// would be a no-op with an invalid context anyway, and this
			// keeps the per-packet cost of an attached tracer confined
			// to the sampled fraction.
			tr = nil
		}
		if cfg.Spans.Enabled && cfg.Spans.Sampled(flow) {
			sp = &HopSpan{Place: s.name}
			spanStart = time.Now()
			evBefore = evidence.EncodedSize(hdr.Evidence)
		}
		// The Verify half of the Sign/Verify stage (Fig. 3): inspect the
		// incoming chain before doing any work on its behalf; a frame
		// whose evidence does not verify is dropped here, so upstream
		// tampering cannot ride further along the path.
		if cfg.VerifyIncoming != nil {
			s.met.verifyOps.Inc()
			start := s.met.start(tr, sp)
			ventered := s.met.profVerify.Enter()
			var err error
			if cfg.VerifyMemo != nil {
				// Batch path: gather the chain's signatures, settle them
				// with one batch equation (or per-item fallback), seed the
				// memo, then walk as usual — verdicts and error text are
				// identical to the unbatched stage.
				bv := switchBatchPool.Get().(*evidence.BatchVerifier)
				bv.Reset(cfg.VerifyMemo)
				_, err = evidence.VerifySignaturesBatched(hdr.Evidence, cfg.VerifyIncoming, cfg.VerifyMemo, bv)
				switchBatchPool.Put(bv)
			} else {
				_, err = evidence.VerifySignaturesMemo(hdr.Evidence, cfg.VerifyIncoming, nil)
			}
			telemetry.ProfExit(ventered)
			s.met.verifySeconds.ObserveSinceExemplar(start, hopCtx.TraceID)
			if err != nil {
				s.met.verifyFails.Inc()
				tr.RecordChild(hopCtx, flow, s.name, telemetry.StageVerifyFail, start, elapsed(start), err.Error())
				if aud != nil {
					aud.Emit(auditlog.Record{
						Event: auditlog.EventVerifyFail, Place: s.name, Flow: flow,
						DurNS: int64(elapsed(start)), Note: err.Error(),
						Prov: &auditlog.Provenance{
							Clause: "Khop |> attest(n) X -> !", Stage: "signature",
							Accept: false, Reason: err.Error(),
						},
					})
				}
				if hopCtx.Valid() {
					tr.RecordSpan(hopCtx, telemetry.SpanContext{}, flow, s.name, telemetry.StageHop, hopStart, time.Since(hopStart), "dropped")
				}
				return nil, nil
			}
			if sp != nil {
				sp.VerifyNS = uint64(elapsed(start))
				sp.Flags |= SpanVerified
			}
			tr.RecordChild(hopCtx, flow, s.name, telemetry.StageVerify, start, elapsed(start), "")
			if aud != nil {
				aud.Emit(auditlog.Record{
					Event: auditlog.EventVerify, Place: s.name, Flow: flow,
					DurNS: int64(elapsed(start)),
				})
			}
		}
	}

	outs, err := inst.Process(inner, port)
	if err != nil {
		return nil, err
	}
	if len(outs) == 0 {
		return nil, nil
	}

	// Evidence stage: obligations come from the standing config and any
	// in-band policy. The two sources are iterated in place — standing
	// first, then the policy's precomputed per-place index — instead of
	// concatenating them into a fresh slice per packet.
	pkt := outs[0].Packet
	if (tr != nil || aud != nil) && flow == "" {
		flow = strconv.FormatUint(pkt.FlowHash(), 16)
		if hopCtx = tr.NewContext(flow); hopCtx.Valid() {
			hopStart = time.Now()
		} else {
			tr = nil // unsampled flow: keep stage timers unarmed
		}
	}
	attested := false
	for i := range cfg.Standing {
		o := &cfg.Standing[i]
		if !o.AppliesAt(s.name) {
			continue
		}
		did, err := s.applyObligation(o, &cfg, sink, pkt, inner, hdr, flow, hopCtx, tr, aud, sp)
		if err != nil {
			return nil, err
		}
		attested = attested || did
	}
	if hdr != nil {
		if idx, ok := hdr.Policy.forPlace(s.name); ok {
			for _, i := range idx {
				did, err := s.applyObligation(&hdr.Policy.Obls[i], &cfg, sink, pkt, inner, hdr, flow, hopCtx, tr, aud, sp)
				if err != nil {
					return nil, err
				}
				attested = attested || did
			}
		} else {
			for i := range hdr.Policy.Obls {
				o := &hdr.Policy.Obls[i]
				if !o.AppliesAt(s.name) {
					continue
				}
				did, err := s.applyObligation(o, &cfg, sink, pkt, inner, hdr, flow, hopCtx, tr, aud, sp)
				if err != nil {
					return nil, err
				}
				attested = attested || did
			}
		}
	}
	if attested {
		s.met.attested.Inc()
		if sp != nil {
			sp.Flags |= SpanAttested
		}
	}

	// Seal this hop's span into the header, budget permitting. EvBytes is
	// the chain growth across the hop, TotalNS the whole-pipeline time —
	// measured here so the span itself is the last thing the hop does.
	if sp != nil && hdr != nil {
		if grown := evidence.EncodedSize(hdr.Evidence) - evBefore; grown > 0 {
			sp.EvBytes = uint32(grown)
		}
		sp.TotalNS = uint64(time.Since(spanStart))
		before := 0
		if len(hdr.Spans) > 0 || hdr.SpansTruncated {
			before = SpanSectionSize(hdr.Spans)
		}
		withSelf := SpanSectionSize(append(hdr.Spans[:len(hdr.Spans):len(hdr.Spans)], *sp))
		if withSelf <= cfg.Spans.Budget() {
			hdr.Spans = append(hdr.Spans, *sp)
			s.met.hopSpans.Inc()
			s.met.hopSpanBytes.Add(uint64(withSelf - before))
		} else {
			hdr.SpansTruncated = true
			s.met.hopSpanDrops.Inc()
		}
	}

	emissions := make([]netsim.Emission, 0, len(outs))
	for _, o := range outs {
		data := o.Packet.Data
		if hdr != nil {
			data = Push(hdr, data)
			s.met.inBandBytes.Add(uint64(len(data) - len(o.Packet.Data)))
		}
		emissions = append(emissions, netsim.Emission{Port: o.Port, Frame: data})
	}
	// The hop root span covers the whole pipeline and is recorded last,
	// after its stage children, so the ring holds complete hops.
	if hopCtx.Valid() {
		tr.RecordSpan(hopCtx, telemetry.SpanContext{}, flow, s.name, telemetry.StageHop, hopStart, time.Since(hopStart), "")
	}
	return emissions, nil
}

// switchBatchPool reuses BatchVerifier state (signature arenas, item
// lists) across the Verify stage's per-frame batch passes.
var switchBatchPool = sync.Pool{New: func() any { return evidence.NewBatchVerifier(nil) }}

// applyObligation runs one obligation against the current packet: guard
// and sampling gates, evidence production, and in-band or out-of-band
// emission. It reports whether evidence was actually produced.
func (s *Switch) applyObligation(o *Obligation, cfg *Config, sink Sink, pkt *pisa.Packet, inner []byte, hdr *Header, flow string, parent telemetry.SpanContext, tr *telemetry.FlowTracer, aud *auditlog.Writer, sp *HopSpan) (bool, error) {
	if !MatchAll(o.Guards, pkt) {
		s.met.guardRejects.Inc()
		if sp != nil {
			sp.GuardRejects++
		}
		if aud != nil {
			aud.Emit(auditlog.Record{
				Event: auditlog.EventGuardReject, Place: s.name, Flow: flow,
				Prov: &auditlog.Provenance{
					Clause: guardClause(o.Guards), Stage: "guard",
					Accept: false, Reason: "NetKAT guard test failed; obligation skipped",
				},
			})
		}
		return false, nil
	}
	if !cfg.Sampler.Sample(pkt.FlowHash()) {
		s.met.sampleSkips.Inc()
		if sp != nil {
			sp.SampleSkips++
		}
		return false, nil
	}
	ev, err := s.obligationEvidence(o, inner, hdr, flow, parent, tr, aud, sp)
	if err != nil {
		return false, err
	}
	switch {
	case hdr != nil && cfg.Composition == evidence.Chained:
		hdr.Evidence = ev
	default:
		// Pointwise (or no header to thread through): out-of-band.
		s.emitOOB(sink, o.Appraiser, ev)
	}
	return true, nil
}

// obligationEvidence builds the evidence one obligation demands,
// composing with the header chain when chained. flow/parent/tr/aud/sp
// carry the trace, audit and hop-span context ("" / zero / nil when
// off).
func (s *Switch) obligationEvidence(o *Obligation, frame []byte, hdr *Header, flow string, parent telemetry.SpanContext, tr *telemetry.FlowTracer, aud *auditlog.Writer, sp *HopSpan) (*evidence.Evidence, error) {
	// Obligations carry one claim in the common case; fold incrementally
	// so no parts slice is materialized.
	var local *evidence.Evidence
	for i, d := range o.Claims {
		m, err := s.claimEvidence(d, frame, flow, parent, tr, aud, sp)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			local = m
		} else {
			local = evidence.Seq(local, m)
		}
	}
	if local == nil {
		local = evidence.Empty()
	}
	if o.HashEvidence {
		local = evidence.Hash(local)
	}
	cfg := s.Config()
	if hdr != nil && cfg.Composition == evidence.Chained {
		// Thread the incoming chain through this hop: local evidence is
		// sequenced after everything accumulated so far, and the switch
		// signs the whole chain, committing to its position on the path.
		centered := s.met.profCompose.Enter()
		composed := evidence.Seq(hdr.Evidence, local)
		telemetry.ProfExit(centered)
		tr.RecordChild(parent, flow, s.name, telemetry.StageCompose, time.Time{}, 0, "chained")
		if aud != nil {
			aud.Emit(auditlog.Record{
				Event: auditlog.EventCompose, Place: s.name, Flow: flow, Note: "chained",
			})
		}
		if o.SignEvidence {
			composed = s.signEvidence(composed, flow, parent, tr, aud, sp)
		}
		s.met.evidenceBytes.Add(uint64(evidence.EncodedSize(composed)))
		return composed, nil
	}
	if o.SignEvidence {
		local = s.signEvidence(local, flow, parent, tr, aud, sp)
	}
	s.met.evidenceBytes.Add(uint64(evidence.EncodedSize(local)))
	return local, nil
}

// signEvidence is the instrumented Sign stage: one signature op counted,
// timed into the sign histogram, traced for sampled flows and recorded
// on the audit ledger.
func (s *Switch) signEvidence(ev *evidence.Evidence, flow string, parent telemetry.SpanContext, tr *telemetry.FlowTracer, aud *auditlog.Writer, sp *HopSpan) *evidence.Evidence {
	s.met.signOps.Inc()
	start := s.met.start(tr, sp)
	sentered := s.met.profSign.Enter()
	signed := evidence.Sign(s.currentSigner(), ev)
	telemetry.ProfExit(sentered)
	s.met.signSeconds.ObserveSinceExemplar(start, parent.TraceID)
	if sp != nil {
		sp.SignNS += uint64(elapsed(start))
	}
	tr.RecordChild(parent, flow, s.name, telemetry.StageSign, start, elapsed(start), "")
	if aud != nil {
		aud.Emit(auditlog.Record{
			Event: auditlog.EventSign, Place: s.name, Flow: flow,
			DurNS: int64(elapsed(start)),
		})
	}
	return signed
}

// guardClause renders a guard list as the NetKAT test expression it
// encodes — a sequential composition of field tests — for verdict
// provenance on guard_reject records.
func guardClause(gs []Guard) string {
	if len(gs) == 0 {
		return "true"
	}
	terms := make([]string, len(gs))
	for i, g := range gs {
		terms[i] = fmt.Sprintf("%s = %d", g.Field, g.Value)
	}
	return strings.Join(terms, " · ")
}

func (s *Switch) emitOOB(sink Sink, appraiserPlace string, ev *evidence.Evidence) {
	s.met.outOfBandMsgs.Inc()
	if sink != nil {
		sink(s.name, appraiserPlace, ev)
	}
}

// GoldenValues returns the appraiser-side reference digests for this
// switch's current configuration, keyed by (target, detail). Operators
// distribute these when provisioning appraisal policies.
type GoldenValue struct {
	Target string
	Detail evidence.Detail
	Value  rot.Digest
}

// Golden lists reference values for the given details.
func (s *Switch) Golden(details ...evidence.Detail) ([]GoldenValue, error) {
	var out []GoldenValue
	for _, d := range details {
		t, v, err := s.ClaimValue(d, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, GoldenValue{Target: t, Detail: d, Value: v})
	}
	return out, nil
}
