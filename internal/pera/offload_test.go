package pera

import (
	"testing"

	"pera/internal/evidence"
	"pera/internal/rats"
	"pera/internal/rot"
)

func TestVerifyStageDropsTamperedChains(t *testing.T) {
	upstream := newSwitch(t, "up", Config{InBand: true, Composition: evidence.Chained})
	keys := evidence.KeyMap{"up": upstream.RoT().Public()}
	downstream := newSwitch(t, "down", Config{
		InBand: true, Composition: evidence.Chained,
		VerifyIncoming: keys,
	})

	pol := &Policy{Obls: []Obligation{{
		Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true,
	}}}
	outs, err := upstream.Receive(1, WrapFrame(pol, testFrame(t, upstream)))
	if err != nil || len(outs) != 1 {
		t.Fatalf("upstream: %v %v", outs, err)
	}
	good := outs[0].Frame

	// Clean chain passes the verify stage.
	outs, err = downstream.Receive(1, good)
	if err != nil || len(outs) != 1 {
		t.Fatalf("verified frame dropped: %v %v", outs, err)
	}
	st := downstream.Stats()
	if st.VerifyOps != 1 || st.VerifyFails != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Tamper inside the evidence region: decode, flip a measurement,
	// re-encode — the signature no longer covers the content.
	hdr, inner, err := Pop(good)
	if err != nil {
		t.Fatal(err)
	}
	evidence.Measurements(hdr.Evidence)[0].Value[0] ^= 1
	bad := Push(hdr, inner)
	outs, err = downstream.Receive(1, bad)
	if err != nil || len(outs) != 0 {
		t.Fatalf("tampered frame forwarded: %v %v", outs, err)
	}
	st = downstream.Stats()
	if st.VerifyOps != 2 || st.VerifyFails != 1 {
		t.Fatalf("stats after tamper: %+v", st)
	}

	// A chain from an unknown signer is also refused.
	rogue := newSwitch(t, "rogue", Config{InBand: true, Composition: evidence.Chained})
	outs, _ = rogue.Receive(1, WrapFrame(pol, testFrame(t, rogue)))
	if outs2, err := downstream.Receive(1, outs[0].Frame); err != nil || len(outs2) != 0 {
		t.Fatalf("unknown signer forwarded: %v %v", outs2, err)
	}
}

func TestVerifyStageDisabledByDefault(t *testing.T) {
	sw := newSwitch(t, "sw", Config{InBand: true, Composition: evidence.Chained})
	pol := &Policy{Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}}}
	up := newSwitch(t, "up", Config{InBand: true, Composition: evidence.Chained})
	outs, _ := up.Receive(1, WrapFrame(pol, testFrame(t, up)))
	hdr, inner, _ := Pop(outs[0].Frame)
	evidence.Measurements(hdr.Evidence)[0].Value[0] ^= 1
	// Without VerifyIncoming, the switch forwards even tampered chains —
	// verification is the appraiser's job in that deployment.
	if outs2, err := sw.Receive(1, Push(hdr, inner)); err != nil || len(outs2) != 1 {
		t.Fatalf("default-mode drop: %v %v", outs2, err)
	}
	if sw.Stats().VerifyOps != 0 {
		t.Fatal("verify ran while disabled")
	}
}

func newOffloadPair(t *testing.T) (*SignerService, *RemoteSigner, func()) {
	t.Helper()
	svc := NewSignerService()
	cc, sc := rats.Pipe()
	go rats.Serve(sc, svc.Handler())
	rs := NewRemoteSigner("sw1", cc)
	return svc, rs, func() { cc.Close(); sc.Close() }
}

func TestRemoteSignerProducesValidSignatures(t *testing.T) {
	svc, rs, cleanup := newOffloadPair(t)
	defer cleanup()

	// The service hosts sw1's signing key (same seed as the switch's
	// local RoT, modelling the key living in the offload device).
	keyHolder := rot.NewDeterministic("sw1", []byte("pera:sw1"))
	svc.Host(keyHolder)

	sw := newSwitch(t, "sw1", Config{})
	sw.SetSigner(rs)

	ev, err := sw.Attest([]byte("offload"), evidence.DetailProgram)
	if err != nil {
		t.Fatal(err)
	}
	n, err := evidence.VerifySignatures(ev, evidence.KeyMap{"sw1": keyHolder.Public()})
	if err != nil || n != 1 {
		t.Fatalf("offloaded signature: %d %v", n, err)
	}
	if rs.Err() != nil {
		t.Fatalf("signer error: %v", rs.Err())
	}
	if svc.Signs() != 1 || rs.Calls() != 1 {
		t.Fatalf("counters: svc=%d rs=%d", svc.Signs(), rs.Calls())
	}
}

func TestRemoteSignerFailsClosed(t *testing.T) {
	svc, rs, cleanup := newOffloadPair(t)
	defer cleanup()
	// Service does NOT host sw1: signing returns an error → nil sig.
	_ = svc
	sig := rs.Sign([]byte("msg"))
	if sig != nil {
		t.Fatalf("signature from unhosted key: %x", sig)
	}
	if rs.Err() == nil {
		t.Fatal("error not recorded")
	}
	// Evidence signed this way never verifies.
	sw := newSwitch(t, "sw1", Config{})
	sw.SetSigner(rs)
	ev, err := sw.Attest(nil, evidence.DetailProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evidence.VerifySignatures(ev, evidence.KeyMap{"sw1": sw.RoT().Public()}); err == nil {
		t.Fatal("fail-closed signature verified")
	}
}

func TestRemoteSignerDeadTransport(t *testing.T) {
	cc, sc := rats.Pipe()
	cc.Close()
	sc.Close()
	rs := NewRemoteSigner("sw1", cc)
	if rs.Sign([]byte("m")) != nil {
		t.Fatal("signature over dead transport")
	}
	if rs.Err() == nil {
		t.Fatal("transport error not recorded")
	}
}

func TestSignerServiceHandlerErrors(t *testing.T) {
	svc := NewSignerService()
	h := svc.Handler()
	if h(&rats.Message{Type: rats.MsgChallenge}).Type != rats.MsgError {
		t.Fatal("wrong type serviced")
	}
	if h(&rats.Message{Type: rats.MsgSign}).Type != rats.MsgError {
		t.Fatal("missing identity serviced")
	}
	if h(&rats.Message{Type: rats.MsgSign, Claims: []string{"ghost"}}).Type != rats.MsgError {
		t.Fatal("unhosted identity serviced")
	}
}
