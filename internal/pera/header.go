package pera

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pera/internal/evidence"
)

// In-band evidence header (§5.2, Fig. 2's in-band variant).
//
// The relying party serializes a compiled attestation policy "into an
// options header in the transport layer, to be evaluated along the path
// of traffic that it is sending out". In this simulation the header is
// prepended to the frame; a PERA switch pops it on ingress (Fig. 3 case
// A), composes its evidence into it, and pushes it back on egress (case
// D). Non-attesting elements forward the frame untouched — the header
// survives because it travels as opaque leading bytes of the payload from
// their point of view. (The netsim substrate delivers whole frames, so a
// plain pisa switch would fail to parse the header as Ethernet; in the
// simulated topologies, non-attesting hops are modelled as appliances or
// PERA switches with attestation disabled, which both pass the header
// through intact.)

// headerMagic marks a PERA in-band header.
var headerMagic = [4]byte{'P', 'E', 'R', 'A'}

// Wire versions: v1 carries policy + evidence; v2 appends a third LV
// section of hop spans (see hopspan.go). Push emits v1 whenever the
// header carries no spans, so span-free traffic is byte-identical to
// the v1 wire and older parsers keep working on it.
const (
	headerVersion   = 1
	headerVersionV2 = 2
)

// Header is the in-band unit: the policy being executed, the evidence
// accumulated so far along the path, and (v2) the hop spans recording
// each place's processing of this frame.
type Header struct {
	Policy   *Policy
	Evidence *evidence.Evidence

	// Spans is the observability section: one compact record per hop
	// that processed this frame with span recording enabled.
	Spans []HopSpan
	// SpansTruncated marks that at least one hop dropped its span to
	// honor the section byte budget — the trace is a prefix, not a lie.
	SpansTruncated bool

	// rawPolicy caches the encoded policy bytes recovered by Pop, valid
	// while Policy still points at rawPolicyOf. The policy travels the
	// whole path unchanged, so every per-hop Push would otherwise
	// re-encode identical bytes — on the hot path that re-encoding
	// dominated header construction.
	rawPolicy   []byte
	rawPolicyOf *Policy
}

// encodedPolicy returns the policy wire bytes, reusing the bytes Pop
// recovered when the policy has not been replaced since.
func (h *Header) encodedPolicy() []byte {
	if h.rawPolicy != nil && h.rawPolicyOf == h.Policy {
		return h.rawPolicy
	}
	return h.Policy.Encode()
}

// Errors from header codec.
var (
	ErrNoHeader     = errors.New("pera: frame carries no PERA header")
	ErrHeaderDecode = errors.New("pera: header decode error")
)

// HasHeader reports whether frame starts with a PERA in-band header.
func HasHeader(frame []byte) bool {
	return len(frame) >= 4 && frame[0] == headerMagic[0] && frame[1] == headerMagic[1] &&
		frame[2] == headerMagic[2] && frame[3] == headerMagic[3]
}

// Push prepends a header to inner, producing the on-wire frame. The
// evidence tree is encoded straight into the output buffer (one exact
// allocation) rather than via an intermediate Encode slice.
func Push(h *Header, inner []byte) []byte {
	pol := h.encodedPolicy()
	evSize := evidence.EncodedSize(h.Evidence)
	withSpans := len(h.Spans) > 0 || h.SpansTruncated
	size := 4 + 1 + 4 + len(pol) + 4 + evSize + len(inner)
	spanSize := 0
	if withSpans {
		spanSize = SpanSectionSize(h.Spans)
		size += 4 + spanSize
	}
	out := make([]byte, 0, size)
	out = append(out, headerMagic[:]...)
	if withSpans {
		out = append(out, headerVersionV2)
	} else {
		out = append(out, headerVersion)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(pol)))
	out = append(out, pol...)
	out = binary.BigEndian.AppendUint32(out, uint32(evSize))
	out = evidence.AppendEncode(out, h.Evidence)
	if withSpans {
		out = binary.BigEndian.AppendUint32(out, uint32(spanSize))
		out = appendSpanSection(out, h.Spans, h.SpansTruncated)
	}
	return append(out, inner...)
}

// Pop parses and removes the header, returning it and the inner frame.
func Pop(frame []byte) (*Header, []byte, error) {
	if !HasHeader(frame) {
		return nil, nil, ErrNoHeader
	}
	off := 4
	if off >= len(frame) {
		return nil, nil, fmt.Errorf("%w: truncated version", ErrHeaderDecode)
	}
	version := frame[off]
	if version != headerVersion && version != headerVersionV2 {
		return nil, nil, fmt.Errorf("%w: version %d", ErrHeaderDecode, version)
	}
	off++
	pol, off, err := lv(frame, off)
	if err != nil {
		return nil, nil, err
	}
	evb, off, err := lv(frame, off)
	if err != nil {
		return nil, nil, err
	}
	var spans []HopSpan
	truncated := false
	if version == headerVersionV2 {
		var spb []byte
		spb, off, err = lv(frame, off)
		if err != nil {
			return nil, nil, err
		}
		spans, truncated, err = decodeSpanSection(spb)
		if err != nil {
			return nil, nil, err
		}
	}
	// The policy travels the path unchanged, so hops share one decode per
	// unique wire encoding; raw is the cache's canonical copy (never the
	// frame), kept for the egress Push to replay. The evidence section
	// changes at every attesting hop — DecodeShared copies it once into a
	// private slab instead of once per field. Neither result aliases
	// frame: callers may reuse the buffer after Pop returns.
	policy, raw, err := decodePolicyCached(pol)
	if err != nil {
		return nil, nil, err
	}
	ev, err := evidence.DecodeShared(evb)
	if err != nil {
		return nil, nil, err
	}
	return &Header{
		Policy: policy, Evidence: ev,
		Spans: spans, SpansTruncated: truncated,
		rawPolicy: raw, rawPolicyOf: policy,
	}, frame[off:], nil
}

func lv(frame []byte, off int) ([]byte, int, error) {
	if off+4 > len(frame) {
		return nil, 0, fmt.Errorf("%w: truncated length", ErrHeaderDecode)
	}
	n := binary.BigEndian.Uint32(frame[off:])
	off += 4
	if n > 4<<20 || off+int(n) > len(frame) {
		return nil, 0, fmt.Errorf("%w: bad field length %d", ErrHeaderDecode, n)
	}
	return frame[off : off+int(n)], off + int(n), nil
}

// HeaderOverhead returns the wire bytes the header adds to a frame — the
// quantity the Fig. 2/Fig. 4 harnesses report as in-band overhead.
func HeaderOverhead(h *Header) int {
	n := 4 + 1 + 4 + len(h.encodedPolicy()) + 4 + evidence.EncodedSize(h.Evidence)
	if len(h.Spans) > 0 || h.SpansTruncated {
		n += 4 + SpanSectionSize(h.Spans)
	}
	return n
}
