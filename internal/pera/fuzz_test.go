package pera

import (
	"math/rand"
	"testing"

	"pera/internal/evidence"
)

// Mutation robustness for the in-band header and policy codecs: a PERA
// switch pops headers from frames it did not originate; corruption must
// surface as an error, never a panic.

func fuzzBaseFrame() []byte {
	pol := &Policy{
		ID:    9,
		Nonce: []byte("fuzz-nonce"),
		Obls: []Obligation{
			{
				Place:        "sw1",
				Guards:       []Guard{{Field: "tp.dport", Value: 443}},
				Claims:       []evidence.Detail{evidence.DetailProgram, evidence.DetailTables},
				HashEvidence: true, SignEvidence: true,
				Appraiser: "Appraiser",
			},
			{Claims: []evidence.Detail{evidence.DetailHardware}},
		},
	}
	return WrapFrame(pol, []byte("inner-frame-payload-bytes"))
}

func TestHeaderPopMutationRobustness(t *testing.T) {
	base := fuzzBaseFrame()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		for m := 0; m < 1+rng.Intn(4); m++ {
			switch rng.Intn(3) {
			case 0:
				if len(data) > 0 {
					data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
				}
			case 1:
				if len(data) > 1 {
					data = data[:rng.Intn(len(data))]
				}
			case 2:
				data = append(data, byte(rng.Intn(256)))
			}
		}
		hdr, rest, err := Pop(data)
		if err == nil {
			// A surviving header must re-encode.
			_ = Push(hdr, rest)
		}
	}
}

func TestPolicyDecodeRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(128))
		rng.Read(data)
		if p, err := DecodePolicy(data); err == nil {
			_ = p.Encode()
		}
	}
}

// A switch receiving mutated in-band frames must either forward, drop,
// or error — never panic or corrupt its own state.
func TestSwitchReceiveMutatedFrames(t *testing.T) {
	s := newSwitch(t, "sw1", Config{InBand: true, Composition: evidence.Chained})
	base := fuzzBaseFrame()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		data := append([]byte(nil), base...)
		for m := 0; m < 1+rng.Intn(3); m++ {
			if len(data) > 0 {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		_, _ = s.Receive(1, data) // must not panic
	}
	// The switch still works on clean traffic afterwards.
	outs, err := s.Receive(1, testFrame(t, s))
	if err != nil || len(outs) != 1 {
		t.Fatalf("switch wedged after fuzzing: %v %v", outs, err)
	}
}
