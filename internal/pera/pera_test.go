package pera

import (
	"errors"
	"testing"

	"pera/internal/evidence"
	"pera/internal/netsim"
	"pera/internal/p4ir"
	"pera/internal/pisa"
	"pera/internal/rats"
)

func newSwitch(t *testing.T, name string, cfg Config) *Switch {
	t.Helper()
	s, err := New(name, p4ir.NewForwarding("fwd_v1.p4"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Instance().InstallEntry("ipv4_fwd", p4ir.Entry{
		Matches: []p4ir.KeyMatch{{Value: 200}},
		Action:  "fwd", Params: map[string]uint64{"port": 2},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func testFrame(t *testing.T, s *Switch) []byte {
	t.Helper()
	f, err := pisa.IPFrame(s.Instance().Program(), 100, 200, 40000, 443, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPolicyCodecRoundTrip(t *testing.T) {
	p := &Policy{
		ID:    7,
		Nonce: []byte("nn"),
		Obls: []Obligation{
			{
				Place:        "sw1",
				Guards:       []Guard{{Field: "ip.dst", Value: 200}, {Field: "tp.dport", Value: 443}},
				Claims:       []evidence.Detail{evidence.DetailProgram, evidence.DetailTables},
				HashEvidence: true, SignEvidence: true,
				Appraiser: "Appraiser",
			},
			{Claims: []evidence.Detail{evidence.DetailHardware}, SignEvidence: true},
		},
	}
	got, err := DecodePolicy(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || string(got.Nonce) != "nn" || len(got.Obls) != 2 {
		t.Fatalf("header: %+v", got)
	}
	o := got.Obls[0]
	if o.Place != "sw1" || len(o.Guards) != 2 || o.Guards[1].Value != 443 ||
		len(o.Claims) != 2 || !o.HashEvidence || !o.SignEvidence || o.Appraiser != "Appraiser" {
		t.Fatalf("obligation: %+v", o)
	}
	if got.Obls[1].Place != "" || got.Obls[1].HashEvidence {
		t.Fatalf("second obligation: %+v", got.Obls[1])
	}
}

func TestPolicyDecodeGarbage(t *testing.T) {
	good := (&Policy{Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}}}}).Encode()
	cases := [][]byte{
		nil,
		good[:3],
		append(append([]byte(nil), good...), 9),
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, // huge obl count
	}
	for i, data := range cases {
		if _, err := DecodePolicy(data); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Invalid detail byte inside an obligation.
	bad := append([]byte(nil), good...)
	// Find the claim byte (last-but-flags-and-appraiser); simpler: craft
	// a policy manually with detail 200.
	p := &Policy{Obls: []Obligation{{Claims: []evidence.Detail{evidence.Detail(200)}}}}
	if _, err := DecodePolicy(p.Encode()); err == nil {
		t.Error("invalid detail decoded")
	}
	_ = bad
}

func TestHeaderPushPop(t *testing.T) {
	pol := &Policy{ID: 1, Nonce: []byte("n"), Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}}}
	inner := []byte("inner-frame-bytes")
	wire := WrapFrame(pol, inner)
	if !HasHeader(wire) {
		t.Fatal("no magic")
	}
	hdr, rest, err := Pop(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != string(inner) {
		t.Fatalf("inner: %q", rest)
	}
	if hdr.Policy.ID != 1 || len(evidence.Nonces(hdr.Evidence)) != 1 {
		t.Fatalf("header: %+v", hdr)
	}
	if HeaderOverhead(hdr) != len(wire)-len(inner) {
		t.Fatalf("overhead %d, want %d", HeaderOverhead(hdr), len(wire)-len(inner))
	}
}

func TestHeaderErrors(t *testing.T) {
	if _, _, err := Pop([]byte("ETH frame")); !errors.Is(err, ErrNoHeader) {
		t.Fatalf("no header: %v", err)
	}
	if HasHeader([]byte("PE")) {
		t.Fatal("short magic matched")
	}
	// Bad version.
	bad := append([]byte("PERA"), 99)
	if _, _, err := Pop(append(bad, 0, 0, 0, 0)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated after magic.
	if _, _, err := Pop([]byte("PERA")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Truncated policy length.
	if _, _, err := Pop([]byte{'P', 'E', 'R', 'A', 1, 0, 0}); err == nil {
		t.Fatal("truncated length accepted")
	}
}

func TestSwitchBootMeasurements(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	log := s.RoT().EventLog()
	if len(log) != 2 || log[0].PCR != PCRHardware || log[1].PCR != PCRProgram {
		t.Fatalf("boot log: %v", log)
	}
	p4, _ := s.RoT().PCR(PCRProgram)
	if p4.IsZero() {
		t.Fatal("program PCR empty")
	}
}

func TestAttestProducesVerifiableEvidence(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	nonce := []byte("challenge-nonce")
	ev, err := s.Attest(nonce, evidence.DetailHardware, evidence.DetailProgram, evidence.DetailTables)
	if err != nil {
		t.Fatal(err)
	}
	keys := evidence.KeyMap{"sw1": s.RoT().Public()}
	if _, err := evidence.VerifySignatures(ev, keys); err != nil {
		t.Fatalf("signature: %v", err)
	}
	ns := evidence.Nonces(ev)
	if len(ns) != 1 || string(ns[0]) != string(nonce) {
		t.Fatal("nonce not bound")
	}
	ms := evidence.Measurements(ev)
	if len(ms) != 3 {
		t.Fatalf("measurements: %v", ms)
	}
	if ms[1].Target != "fwd_v1.p4" || ms[1].Value != s.Instance().ProgramDigest() {
		t.Fatalf("program claim: %v", ms[1])
	}
	if len(ms[0].Claims) == 0 {
		t.Fatal("hardware claim lacks quote binding")
	}
}

func TestClaimValues(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	for _, d := range evidence.Details() {
		target, v, err := s.ClaimValue(d, []byte("frame"))
		if err != nil || target == "" || v.IsZero() {
			t.Errorf("%v: %q %v %v", d, target, v, err)
		}
	}
	if _, _, err := s.ClaimValue(evidence.Detail(99), nil); err == nil {
		t.Fatal("unknown detail accepted")
	}
}

func TestGoldenMatchesClaims(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	gs, err := s.Golden(evidence.DetailProgram, evidence.DetailTables)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || gs[0].Value != s.Instance().ProgramDigest() || gs[1].Value != s.Instance().TablesDigest() {
		t.Fatalf("golden: %+v", gs)
	}
	if _, err := s.Golden(evidence.Detail(99)); err == nil {
		t.Fatal("bad golden detail")
	}
}

func TestReloadProgramChangesAttestation(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	before, _ := s.RoT().PCR(PCRProgram)
	if err := s.ReloadProgram(p4ir.NewRogueForwarding("fwd_v1.p4", 99)); err != nil {
		t.Fatal(err)
	}
	after, _ := s.RoT().PCR(PCRProgram)
	if before == after {
		t.Fatal("reload invisible in PCR")
	}
	_, v, _ := s.ClaimValue(evidence.DetailProgram, nil)
	if v != p4ir.NewRogueForwarding("fwd_v1.p4", 99).Digest() {
		t.Fatal("program claim not updated")
	}
	// Boot log shows both programs — the swap cannot be hidden.
	if len(s.RoT().EventLog()) != 3 {
		t.Fatalf("log: %v", s.RoT().EventLog())
	}
	if err := s.ReloadProgram(p4ir.NewForwarding("")); err == nil {
		t.Fatal("invalid reload accepted")
	}
}

func TestOutOfBandStandingObligation(t *testing.T) {
	s := newSwitch(t, "sw1", Config{
		Standing: []Obligation{{
			Claims:       []evidence.Detail{evidence.DetailProgram},
			SignEvidence: true,
			Appraiser:    "Appraiser",
		}},
	})
	var got []*evidence.Evidence
	var appr string
	s.SetSink(func(sw, appraiser string, ev *evidence.Evidence) {
		got = append(got, ev)
		appr = appraiser
	})
	outs, err := s.Receive(1, testFrame(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 2 {
		t.Fatalf("forwarding: %+v", outs)
	}
	if len(got) != 1 || appr != "Appraiser" {
		t.Fatalf("sink: %d msgs to %q", len(got), appr)
	}
	if _, err := evidence.VerifySignatures(got[0], evidence.KeyMap{"sw1": s.RoT().Public()}); err != nil {
		t.Fatalf("oob evidence: %v", err)
	}
	st := s.Stats()
	if st.Packets != 1 || st.Attested != 1 || st.OutOfBandMsgs != 1 || st.SignOps != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGuardGatesAttestation(t *testing.T) {
	s := newSwitch(t, "sw1", Config{
		Standing: []Obligation{{
			Guards: []Guard{{Field: "tp.dport", Value: 22}}, // frame has 443
			Claims: []evidence.Detail{evidence.DetailProgram},
		}},
	})
	n := 0
	s.SetSink(func(string, string, *evidence.Evidence) { n++ })
	if _, err := s.Receive(1, testFrame(t, s)); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("guard did not gate")
	}
	if s.Stats().GuardRejects != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	// Matching guard attests.
	s.SetConfig(Config{Standing: []Obligation{{
		Guards: []Guard{{Field: "tp.dport", Value: 443}},
		Claims: []evidence.Detail{evidence.DetailProgram},
	}}})
	if _, err := s.Receive(1, testFrame(t, s)); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatal("matching guard did not attest")
	}
}

func TestObligationPlaceBinding(t *testing.T) {
	s := newSwitch(t, "sw1", Config{
		Standing: []Obligation{{
			Place:  "sw9", // someone else's duty
			Claims: []evidence.Detail{evidence.DetailProgram},
		}},
	})
	n := 0
	s.SetSink(func(string, string, *evidence.Evidence) { n++ })
	s.Receive(1, testFrame(t, s))
	if n != 0 {
		t.Fatal("foreign obligation executed")
	}
}

func TestInBandChainedComposition(t *testing.T) {
	cfg := func() Config {
		return Config{InBand: true, Composition: evidence.Chained}
	}
	sw1 := newSwitch(t, "sw1", cfg())
	sw2 := newSwitch(t, "sw2", cfg())

	pol := &Policy{
		ID:    1,
		Nonce: []byte("n"),
		Obls: []Obligation{{
			Claims:       []evidence.Detail{evidence.DetailProgram},
			SignEvidence: true,
			Appraiser:    "Appraiser",
		}},
	}
	wire := WrapFrame(pol, testFrame(t, sw1))

	outs, err := sw1.Receive(1, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !HasHeader(outs[0].Frame) {
		t.Fatalf("sw1 out: %d frames, header=%v", len(outs), HasHeader(outs[0].Frame))
	}
	outs, err = sw2.Receive(1, outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	hdr, inner, err := UnwrapFrame(outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner) == 0 {
		t.Fatal("inner frame lost")
	}
	// The chain: sig[sw2](seq(sig[sw1](seq(nonce, m1)), m2)).
	keys := evidence.KeyMap{"sw1": sw1.RoT().Public(), "sw2": sw2.RoT().Public()}
	nsigs, err := evidence.VerifySignatures(hdr.Evidence, keys)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	if nsigs != 2 {
		t.Fatalf("signatures: %d", nsigs)
	}
	signers := evidence.Signers(hdr.Evidence)
	if len(signers) != 2 || signers[0] != "sw2" || signers[1] != "sw1" {
		t.Fatalf("signers: %v", signers)
	}
	ms := evidence.Measurements(hdr.Evidence)
	if len(ms) != 2 || ms[0].Place != "sw1" || ms[1].Place != "sw2" {
		t.Fatalf("hop order: %v", ms)
	}
	// Nonce survives the chain.
	if len(evidence.Nonces(hdr.Evidence)) != 1 {
		t.Fatal("nonce lost")
	}
}

func TestInBandPointwiseEmitsPerHop(t *testing.T) {
	sw1 := newSwitch(t, "sw1", Config{InBand: true, Composition: evidence.Pointwise})
	var oob int
	sw1.SetSink(func(string, string, *evidence.Evidence) { oob++ })
	pol := &Policy{Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}}}
	outs, err := sw1.Receive(1, WrapFrame(pol, testFrame(t, sw1)))
	if err != nil {
		t.Fatal(err)
	}
	if oob != 1 {
		t.Fatalf("pointwise oob msgs: %d", oob)
	}
	// Header still travels (with its original evidence).
	hdr, _, err := UnwrapFrame(outs[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence.Signers(hdr.Evidence)) != 0 {
		t.Fatal("pointwise mode chained evidence into header")
	}
}

func TestInBandDisabledIgnoresHeader(t *testing.T) {
	s := newSwitch(t, "sw1", Config{InBand: false})
	pol := &Policy{Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}}}}
	wire := WrapFrame(pol, testFrame(t, s))
	// The header bytes are not valid eth/ip for the std parser, so the
	// pipeline drops the frame silently — matching a non-PERA device
	// that cannot interpret the options header in our frame encoding.
	outs, err := s.Receive(1, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("outs: %+v", outs)
	}
}

func TestSamplerGatesEvidence(t *testing.T) {
	s := newSwitch(t, "sw1", Config{
		Sampler:  evidence.NewSampler(evidence.SamplerConfig{Mode: evidence.SamplePerFlow}),
		Standing: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}},
	})
	n := 0
	s.SetSink(func(string, string, *evidence.Evidence) { n++ })
	f := testFrame(t, s)
	for i := 0; i < 5; i++ {
		s.Receive(1, f)
	}
	if n != 1 {
		t.Fatalf("per-flow sampling produced %d evidences", n)
	}
	if s.Stats().SampleSkips != 4 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestCacheReducesWork(t *testing.T) {
	cache := evidence.NewCache()
	s := newSwitch(t, "sw1", Config{
		Cache:    cache,
		Standing: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}}},
	})
	s.SetSink(func(string, string, *evidence.Evidence) {})
	f := testFrame(t, s)
	for i := 0; i < 10; i++ {
		s.Receive(1, f)
	}
	st := cache.Stats()
	if st.Hits != 9 || st.Misses != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
}

func TestHashEvidenceObligation(t *testing.T) {
	s := newSwitch(t, "sw1", Config{
		Standing: []Obligation{{
			Claims:       []evidence.Detail{evidence.DetailProgram},
			HashEvidence: true, SignEvidence: true,
		}},
	})
	var got *evidence.Evidence
	s.SetSink(func(_, _ string, ev *evidence.Evidence) { got = ev })
	s.Receive(1, testFrame(t, s))
	if got == nil || got.Kind != evidence.KindSig || got.Left.Kind != evidence.KindHash {
		t.Fatalf("shape: %v", got)
	}
}

func TestAttesterHandler(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	h := s.AttesterHandler()
	resp := h(&rats.Message{
		Type: rats.MsgChallenge, Session: 5, Nonce: []byte("n"),
		Claims: []string{"hardware", "program", "tables"},
	})
	if resp.Type != rats.MsgEvidence {
		t.Fatalf("resp: %+v", resp)
	}
	ev, err := evidence.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence.Measurements(ev)) != 3 {
		t.Fatalf("claims: %v", ev)
	}
	// Default claims.
	resp = h(&rats.Message{Type: rats.MsgChallenge})
	ev, _ = evidence.Decode(resp.Body)
	if len(evidence.Measurements(ev)) != 2 {
		t.Fatal("default claims")
	}
	// Errors.
	if h(&rats.Message{Type: rats.MsgRetrieve}).Type != rats.MsgError {
		t.Fatal("wrong type serviced")
	}
	if h(&rats.Message{Type: rats.MsgChallenge, Claims: []string{"ghost"}}).Type != rats.MsgError {
		t.Fatal("unknown claim serviced")
	}
}

func TestParseClaimsAndNames(t *testing.T) {
	ds, err := ParseClaims([]string{"hardware", "packets"})
	if err != nil || len(ds) != 2 || ds[1] != evidence.DetailPackets {
		t.Fatalf("parse: %v %v", ds, err)
	}
	if _, err := ParseClaims([]string{"nope"}); err == nil {
		t.Fatal("bad claim parsed")
	}
	for _, d := range evidence.Details() {
		if ClaimName(d) == "" {
			t.Fatalf("no name for %v", d)
		}
		back, err := ParseClaims([]string{ClaimName(d)})
		if err != nil || back[0] != d {
			t.Fatalf("round trip %v: %v %v", d, back, err)
		}
	}
}

func TestSwitchInNetsimTopology(t *testing.T) {
	// h1 -- pera(sw1) -- h2 with in-band chained attestation end to end.
	n := netsim.New()
	h1, h2 := netsim.NewHost("h1", 100), netsim.NewHost("h2", 200)
	n.MustAdd(h1)
	n.MustAdd(h2)
	sw, err := New("sw1", p4ir.NewForwarding("fwd_v1.p4"), Config{InBand: true, Composition: evidence.Chained})
	if err != nil {
		t.Fatal(err)
	}
	n.MustAdd(sw)
	n.MustLink("h1", netsim.HostPort, "sw1", 1)
	n.MustLink("sw1", 2, "h2", netsim.HostPort)
	if err := n.InstallRoutes([]*netsim.Host{h1, h2}, "ipv4_fwd", "fwd", "port"); err != nil {
		t.Fatal(err)
	}

	pol := &Policy{
		ID: 1, Nonce: []byte("e2e"),
		Obls: []Obligation{{Claims: []evidence.Detail{evidence.DetailProgram}, SignEvidence: true}},
	}
	inner, _ := pisa.IPFrame(sw.Instance().Program(), 100, 200, 1, 2, []byte("pay"))
	if err := n.Send("h1", netsim.HostPort, WrapFrame(pol, inner)); err != nil {
		t.Fatal(err)
	}
	if h2.ReceivedCount() != 1 {
		t.Fatal("frame not delivered")
	}
	hdr, rest, err := UnwrapFrame(h2.Received()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) == 0 {
		t.Fatal("inner lost")
	}
	if _, err := evidence.VerifySignatures(hdr.Evidence, evidence.KeyMap{"sw1": sw.RoT().Public()}); err != nil {
		t.Fatalf("path evidence: %v", err)
	}
	if st := sw.Stats(); st.InBandBytes == 0 || st.EvidenceBytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestResetStats(t *testing.T) {
	s := newSwitch(t, "sw1", Config{})
	s.Receive(1, testFrame(t, s))
	s.ResetStats()
	if s.Stats().Packets != 0 {
		t.Fatal("reset failed")
	}
}
