package pera

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// In-band hop spans (observatory plane).
//
// Alongside the evidence a PERA hop composes into the header, the switch
// can append a compact span record — which place processed the frame,
// how long its Sign/Verify stages took, what the evidence/cache/guard
// machinery did. The spans ride the same in-band header (a third LV
// section, wire version 2) in the INT lineage the paper leans on: the
// network itself carries its own observability state to the path's end,
// where a collector pops it off and reassembles the end-to-end trace.
//
// Two knobs map the spans onto the Fig. 4 design-space axes:
//
//   - SampleEvery (Inertia): spans are recorded for 1-in-N flows, chosen
//     by flow hash exactly like telemetry.FlowTracer, so a whole flow is
//     either fully spanned or not at all — partial traces are useless.
//   - ByteBudget (Detail): the span section may not exceed this many
//     encoded bytes. A hop whose span would overflow the budget drops
//     its own span and marks the section truncated, bounding the
//     header-bytes tax a long path pays for observability.

// Span flag bits.
const (
	// SpanVerified: the Verify stage ran on the incoming chain and passed.
	SpanVerified uint8 = 1 << 0
	// SpanAttested: this hop produced evidence for at least one obligation.
	SpanAttested uint8 = 1 << 1
)

// HopSpan is one hop's span record: the per-place slice of an end-to-end
// path trace. All counters are per-frame (not cumulative).
type HopSpan struct {
	Place        string `json:"place"`
	Flags        uint8  `json:"flags"`
	VerifyNS     uint64 `json:"verify_ns"`     // Verify stage duration
	SignNS       uint64 `json:"sign_ns"`       // total Sign stage duration
	TotalNS      uint64 `json:"total_ns"`      // whole-hop pipeline duration
	EvBytes      uint32 `json:"ev_bytes"`      // evidence bytes this hop added
	CacheHits    uint16 `json:"cache_hits"`    // evidence-cache hits
	CacheMisses  uint16 `json:"cache_misses"`  // evidence-cache misses
	GuardRejects uint16 `json:"guard_rejects"` // obligations skipped by ▶ tests
	SampleSkips  uint16 `json:"sample_skips"`  // obligations skipped by sampler
}

// Verified reports whether the Verify stage passed at this hop.
func (sp *HopSpan) Verified() bool { return sp.Flags&SpanVerified != 0 }

// Attested reports whether this hop produced evidence.
func (sp *HopSpan) Attested() bool { return sp.Flags&SpanAttested != 0 }

// DefaultSpanBudget bounds the encoded span section when SpanConfig
// leaves ByteBudget zero: roomy enough for ~10 hops of typical spans,
// small next to the evidence chain itself.
const DefaultSpanBudget = 512

// SpanConfig tunes in-band hop-span production (Fig. 4 knobs).
type SpanConfig struct {
	// Enabled turns span recording on for this switch.
	Enabled bool
	// SampleEvery records spans for 1-in-N flows (hash-chosen, whole
	// flows). 0 or 1 means every flow.
	SampleEvery uint32
	// ByteBudget caps the encoded span section per header; 0 means
	// DefaultSpanBudget.
	ByteBudget int
}

// Budget returns the effective byte budget.
func (c SpanConfig) Budget() int {
	if c.ByteBudget <= 0 {
		return DefaultSpanBudget
	}
	return c.ByteBudget
}

// Sampled reports whether a flow's packets should carry spans — the same
// whole-flow hash selection telemetry.FlowTracer uses, so a sampled flow
// is spanned at every hop or none.
func (c SpanConfig) Sampled(flow string) bool {
	n := c.SampleEvery
	if n <= 1 {
		return true
	}
	h := fnv.New32a()
	h.Write([]byte(flow))
	return h.Sum32()%n == 0
}

// Span section wire format (header v2, third LV section):
//
//	flags   byte    bit0 = truncated (a hop dropped its span for budget)
//	count   uvarint number of spans
//	span*   count times:
//	  place        uvarint-len + bytes
//	  flags        byte
//	  verify_ns    uvarint
//	  sign_ns      uvarint
//	  total_ns     uvarint
//	  ev_bytes     uvarint
//	  cache_hits   uvarint
//	  cache_misses uvarint
//	  guard_rejects uvarint
//	  sample_skips uvarint

const spanSectionTruncated = 1 << 0

// maxSpans bounds decoding so a hostile header cannot force unbounded
// allocation (mirrors the evidence codec's limits).
const maxSpans = 1 << 10

// encodedSpanSize returns the encoded size of one span.
func encodedSpanSize(sp *HopSpan) int {
	n := uvarintLen(uint64(len(sp.Place))) + len(sp.Place)
	n++ // flags
	n += uvarintLen(sp.VerifyNS)
	n += uvarintLen(sp.SignNS)
	n += uvarintLen(sp.TotalNS)
	n += uvarintLen(uint64(sp.EvBytes))
	n += uvarintLen(uint64(sp.CacheHits))
	n += uvarintLen(uint64(sp.CacheMisses))
	n += uvarintLen(uint64(sp.GuardRejects))
	n += uvarintLen(uint64(sp.SampleSkips))
	return n
}

// SpanSectionSize returns the encoded size of a span section carrying
// spans — what a switch checks against the byte budget before appending
// its own span.
func SpanSectionSize(spans []HopSpan) int {
	n := 1 + uvarintLen(uint64(len(spans)))
	for i := range spans {
		n += encodedSpanSize(&spans[i])
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendSpanSection encodes the span section onto b.
func appendSpanSection(b []byte, spans []HopSpan, truncated bool) []byte {
	var flags byte
	if truncated {
		flags |= spanSectionTruncated
	}
	b = append(b, flags)
	b = binary.AppendUvarint(b, uint64(len(spans)))
	for i := range spans {
		sp := &spans[i]
		b = binary.AppendUvarint(b, uint64(len(sp.Place)))
		b = append(b, sp.Place...)
		b = append(b, sp.Flags)
		b = binary.AppendUvarint(b, sp.VerifyNS)
		b = binary.AppendUvarint(b, sp.SignNS)
		b = binary.AppendUvarint(b, sp.TotalNS)
		b = binary.AppendUvarint(b, uint64(sp.EvBytes))
		b = binary.AppendUvarint(b, uint64(sp.CacheHits))
		b = binary.AppendUvarint(b, uint64(sp.CacheMisses))
		b = binary.AppendUvarint(b, uint64(sp.GuardRejects))
		b = binary.AppendUvarint(b, uint64(sp.SampleSkips))
	}
	return b
}

// decodeSpanSection parses the span section bytes.
func decodeSpanSection(b []byte) (spans []HopSpan, truncated bool, err error) {
	if len(b) == 0 {
		return nil, false, fmt.Errorf("%w: empty span section", ErrHeaderDecode)
	}
	truncated = b[0]&spanSectionTruncated != 0
	d := spanDecoder{b: b, off: 1}
	count := d.uvarint()
	if d.err == nil && count > maxSpans {
		return nil, false, fmt.Errorf("%w: span count %d exceeds limit", ErrHeaderDecode, count)
	}
	for i := uint64(0); i < count && d.err == nil; i++ {
		var sp HopSpan
		sp.Place = d.str()
		sp.Flags = d.byte()
		sp.VerifyNS = d.uvarint()
		sp.SignNS = d.uvarint()
		sp.TotalNS = d.uvarint()
		sp.EvBytes = uint32(d.uvarint())
		sp.CacheHits = uint16(d.uvarint())
		sp.CacheMisses = uint16(d.uvarint())
		sp.GuardRejects = uint16(d.uvarint())
		sp.SampleSkips = uint16(d.uvarint())
		if d.err == nil {
			spans = append(spans, sp)
		}
	}
	if d.err != nil {
		return nil, false, d.err
	}
	return spans, truncated, nil
}

// spanDecoder reads the span wire form with sticky error handling.
type spanDecoder struct {
	b   []byte
	off int
	err error
}

func (d *spanDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad span uvarint", ErrHeaderDecode)
		return 0
	}
	d.off += n
	return v
}

func (d *spanDecoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.err = fmt.Errorf("%w: truncated span", ErrHeaderDecode)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *spanDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<16 || d.off+int(n) > len(d.b) {
		d.err = fmt.Errorf("%w: bad span string length %d", ErrHeaderDecode, n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// FlowID exposes the header's trace correlation ID — the hex of the
// first nonce in the in-band chain, "-" for nonce-less traffic. The
// collector uses the same derivation as the switch and the appraiser,
// so spans, tracer records, ledger records and verdicts all key alike.
func FlowID(hdr *Header) string {
	return flowIDOf(hdr)
}
