package pera

import (
	"bytes"
	"math/rand"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rot"
)

// Zero-copy LV parsing contract (see Pop): the returned Header must not
// alias the source frame — only the returned inner-frame slice does — so
// a caller may reuse or scribble over the frame buffer the moment Pop
// returns. These tests pin that contract and the codec's round-trip
// equality under the raw-policy replay cache.

// zcHeader builds a header with signed, chained evidence and (optionally)
// hop spans — the richest shape the wire carries. It panics on setup
// failure so FuzzPop can use it for seed corpora too.
func zcHeader(spans bool) *Header {
	r, err := rot.New("sw1")
	if err != nil {
		panic(err)
	}
	m1 := evidence.Measurement("sw1", "prog", "sw1", evidence.DetailProgram, rot.Digest{7: 7}, nil)
	m2 := evidence.Measurement("sw1", "tables", "sw1", evidence.DetailTables, rot.Digest{9: 9}, nil)
	ev := evidence.Sign(r, evidence.Seq(m1, m2))
	h := &Header{
		Policy: &Policy{
			ID:    42,
			Nonce: []byte("zc-nonce"),
			Obls: []Obligation{{
				Place:        "sw1",
				Guards:       []Guard{{Field: "tp.dport", Value: 443}},
				Claims:       []evidence.Detail{evidence.DetailProgram, evidence.DetailTables},
				HashEvidence: true, SignEvidence: true,
				Appraiser: "Appraiser",
			}},
		},
		Evidence: ev,
	}
	if spans {
		h.Spans = []HopSpan{
			{Place: "sw1", Flags: SpanVerified, VerifyNS: 123, SignNS: 456, TotalNS: 789, EvBytes: 64, CacheHits: 2},
			{Place: "sw2", TotalNS: 1},
		}
	}
	return h
}

// TestPopDoesNotAliasFrame mutates every byte of the source frame after
// Pop and requires the parsed header to re-encode identically — the
// zero-copy parse may alias the frame transiently, but nothing the
// caller receives in the Header may.
func TestPopDoesNotAliasFrame(t *testing.T) {
	for _, spans := range []bool{false, true} {
		inner := []byte("inner-frame-payload")
		frame := Push(zcHeader(spans), inner)
		hdr, rest, err := Pop(frame)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		if !bytes.Equal(rest, inner) {
			t.Fatalf("spans=%v: inner frame mismatch", spans)
		}
		before := Push(hdr, nil)
		for i := range frame {
			frame[i] ^= 0xFF
		}
		after := Push(hdr, nil)
		if !bytes.Equal(before, after) {
			t.Fatalf("spans=%v: header re-encode changed after source frame mutation", spans)
		}
		// Spot-check decoded structure too, not just the encoder.
		if hdr.Policy.ID != 42 || string(hdr.Policy.Nonce) != "zc-nonce" {
			t.Fatalf("spans=%v: policy corrupted by frame mutation: %+v", spans, hdr.Policy)
		}
		if n := len(evidence.Measurements(hdr.Evidence)); n != 2 {
			t.Fatalf("spans=%v: evidence corrupted: %d measurements", spans, n)
		}
	}
}

// TestPushPopRoundTrip requires Pop∘Push to be the identity on bytes:
// popping a frame and pushing the unmodified header back must reproduce
// the original frame bit for bit (the raw-policy replay cache makes this
// cheap; this test makes sure it also keeps it correct).
func TestPushPopRoundTrip(t *testing.T) {
	for _, spans := range []bool{false, true} {
		inner := []byte("round-trip-inner")
		orig := Push(zcHeader(spans), inner)
		hdr, rest, err := Pop(orig)
		if err != nil {
			t.Fatalf("spans=%v: %v", spans, err)
		}
		again := Push(hdr, rest)
		if !bytes.Equal(orig, again) {
			t.Fatalf("spans=%v: Push(Pop(frame)) != frame\n orig %x\nagain %x", spans, orig, again)
		}
	}
}

// TestPopRandomSlicesNoAliasing is the property-test form: random
// truncations and corruptions of a valid frame either fail to parse or
// yield headers that survive the source buffer being zeroed.
func TestPopRandomSlicesNoAliasing(t *testing.T) {
	base := Push(zcHeader(true), []byte("payload"))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		data := append([]byte(nil), base...)
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		for m := 0; m < rng.Intn(3); m++ {
			if len(data) > 0 {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
		hdr, _, err := Pop(data)
		if err != nil {
			continue
		}
		before := Push(hdr, nil)
		for j := range data {
			data[j] = 0
		}
		if !bytes.Equal(before, Push(hdr, nil)) {
			t.Fatalf("iteration %d: header aliases popped frame", i)
		}
	}
}

// FuzzPop drives the header parser with arbitrary bytes: it must never
// panic, and any frame it accepts must re-encode to a frame it accepts
// again with an identical header section.
func FuzzPop(f *testing.F) {
	f.Add(Push(zcHeader(false), []byte("seed")))
	f.Add(Push(zcHeader(true), []byte("seed-v2")))
	f.Add([]byte("PERA"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, rest, err := Pop(data)
		if err != nil {
			return
		}
		reenc := Push(hdr, rest)
		hdr2, rest2, err := Pop(reenc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !bytes.Equal(rest, rest2) {
			t.Fatal("inner frame not preserved across re-encode")
		}
		if !bytes.Equal(Push(hdr, nil), Push(hdr2, nil)) {
			t.Fatal("header not fixed under re-encode")
		}
	})
}
