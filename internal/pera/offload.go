package pera

import (
	"fmt"
	"sync"

	"pera/internal/rats"
	"pera/internal/rot"
)

// Crypto disaggregation. §5.2: the evidence primitives "might be
// integrated into the ASIC or might be remotely invoked by the
// programmable switch" (citing Flightplan's dataplane disaggregation).
// This file implements the remote variant: a SignerService holds the
// signing roots of trust (e.g. on an FPGA or crypto appliance beside the
// switch) and answers MsgSign requests; a RemoteSigner plugs into a
// Switch in place of its local RoT, so every ! operation becomes a
// service call.
//
// Failure semantics are fail-closed: if the offload is unreachable, the
// RemoteSigner produces an empty signature, which no verifier accepts —
// degraded crypto never masquerades as attestation.

// Caller is the client side of a rats exchange; *rats.Conn implements it.
type Caller interface {
	Call(*rats.Message) (*rats.Message, error)
}

// SignerService hosts signing identities for offloaded switches.
type SignerService struct {
	mu    sync.Mutex
	roots map[string]*rot.RoT
	signs uint64
}

// NewSignerService creates an empty service.
func NewSignerService() *SignerService {
	return &SignerService{roots: make(map[string]*rot.RoT)}
}

// Host installs the signing RoT for an identity.
func (s *SignerService) Host(r *rot.RoT) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roots[r.Name()] = r
}

// Signs reports how many signatures the service has produced.
func (s *SignerService) Signs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.signs
}

// Handler returns the rats.Handler servicing MsgSign requests.
func (s *SignerService) Handler() rats.Handler {
	return func(req *rats.Message) *rats.Message {
		if req.Type != rats.MsgSign {
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte(fmt.Sprintf("signer service cannot handle %v", req.Type))}
		}
		if len(req.Claims) != 1 {
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte("sign needs exactly one identity claim")}
		}
		s.mu.Lock()
		r, ok := s.roots[req.Claims[0]]
		if ok {
			s.signs++
		}
		s.mu.Unlock()
		if !ok {
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte(fmt.Sprintf("no key hosted for %q", req.Claims[0]))}
		}
		return &rats.Message{Type: rats.MsgResult, Session: req.Session, Body: r.Sign(req.Body)}
	}
}

// RemoteSigner is an evidence.Signer whose Sign operation is a service
// call. It satisfies the same interface as *rot.RoT, so a Switch can use
// it transparently.
type RemoteSigner struct {
	name string
	c    Caller

	mu      sync.Mutex
	lastErr error
	calls   uint64
}

// NewRemoteSigner builds a signer for identity name backed by c.
func NewRemoteSigner(name string, c Caller) *RemoteSigner {
	return &RemoteSigner{name: name, c: c}
}

// Name implements evidence.Signer.
func (r *RemoteSigner) Name() string { return r.name }

// Sign implements evidence.Signer by calling the offload service. On any
// failure it records the error and returns nil — an invalid signature
// that fails closed at verification.
func (r *RemoteSigner) Sign(message []byte) []byte {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	resp, err := r.c.Call(&rats.Message{
		Type:   rats.MsgSign,
		Claims: []string{r.name},
		Body:   message,
	})
	if err != nil {
		r.setErr(err)
		return nil
	}
	if resp.Type != rats.MsgResult {
		r.setErr(fmt.Errorf("pera: unexpected signer response %v", resp.Type))
		return nil
	}
	r.setErr(nil)
	return resp.Body
}

func (r *RemoteSigner) setErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastErr = err
}

// Err returns the error from the most recent Sign call, nil if it
// succeeded.
func (r *RemoteSigner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Calls reports how many sign operations were attempted.
func (r *RemoteSigner) Calls() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}
