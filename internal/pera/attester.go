package pera

import (
	"fmt"

	"pera/internal/evidence"
	"pera/internal/rats"
)

// RATS integration: a PERA switch as the Attester of Fig. 1, answering
// challenge messages with signed evidence for the requested claims, and
// relying-party helpers for originating in-band traffic.

// Claim names accepted in rats challenge messages, mapping to the Fig. 4
// detail levels.
var claimNames = map[string]evidence.Detail{
	"hardware":  evidence.DetailHardware,
	"program":   evidence.DetailProgram,
	"tables":    evidence.DetailTables,
	"progstate": evidence.DetailProgState,
	"packets":   evidence.DetailPackets,
}

// ParseClaims converts claim-name strings to detail levels.
func ParseClaims(names []string) ([]evidence.Detail, error) {
	var out []evidence.Detail
	for _, n := range names {
		d, ok := claimNames[n]
		if !ok {
			return nil, fmt.Errorf("pera: unknown claim %q", n)
		}
		out = append(out, d)
	}
	return out, nil
}

// ClaimName returns the wire name of a detail level.
func ClaimName(d evidence.Detail) string {
	for n, dd := range claimNames {
		if dd == d {
			return n
		}
	}
	return d.String()
}

// AttesterHandler returns a rats.Handler exposing the switch as a RATS
// attester: MsgChallenge(nonce, claims) → MsgEvidence(signed evidence).
func (s *Switch) AttesterHandler() rats.Handler {
	return func(req *rats.Message) *rats.Message {
		if req.Type != rats.MsgChallenge {
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte(fmt.Sprintf("attester cannot service %v", req.Type))}
		}
		claims := req.Claims
		if len(claims) == 0 {
			claims = []string{"hardware", "program"}
		}
		details, err := ParseClaims(claims)
		if err != nil {
			return &rats.Message{Type: rats.MsgError, Session: req.Session, Body: []byte(err.Error())}
		}
		// Parent the attester-side spans under the challenger's span,
		// carried in the frame's trace-context field: one challenge,
		// one trace, across the socket.
		ev, err := s.AttestCtx(req.Context(), req.Nonce, details...)
		if err != nil {
			return &rats.Message{Type: rats.MsgError, Session: req.Session, Body: []byte(err.Error())}
		}
		return &rats.Message{
			Type: rats.MsgEvidence, Session: req.Session, Nonce: req.Nonce,
			Body: evidence.Encode(ev),
		}
	}
}

// WrapFrame attaches a fresh in-band header carrying policy (and the
// policy's nonce as initial evidence) to a frame — what the relying
// party's stack does when originating attested traffic (§5.2).
func WrapFrame(policy *Policy, frame []byte) []byte {
	var init *evidence.Evidence
	if len(policy.Nonce) > 0 {
		init = evidence.Nonce(policy.Nonce)
	} else {
		init = evidence.Empty()
	}
	return Push(&Header{Policy: policy, Evidence: init}, frame)
}

// UnwrapFrame recovers the header and inner frame at the receiving end of
// an attested path — what the destination (or RP2 in the in-band variant
// of Fig. 2) does before submitting the evidence for appraisal.
func UnwrapFrame(frame []byte) (*Header, []byte, error) {
	return Pop(frame)
}
