package pera

import (
	"sync"
	"sync/atomic"
	"testing"

	"pera/internal/evidence"
)

// TestSwitchConcurrentInject is the regression test for the Stats data
// race: before the counters moved to sync/atomic, concurrent Receive
// calls could lose increments (and tripped the race detector). N
// goroutines inject frames simultaneously and every counter must come
// out exact. This test is part of the tier-1 `go test -race` flow.
func TestSwitchConcurrentInject(t *testing.T) {
	s := newSwitch(t, "sw-conc", Config{
		Composition: evidence.Pointwise,
		Standing: []Obligation{{
			Claims:       []evidence.Detail{evidence.DetailProgram},
			SignEvidence: true,
			Appraiser:    "Appraiser",
		}},
	})
	var oob atomic.Uint64
	s.SetSink(func(sw, appr string, ev *evidence.Evidence) { oob.Add(1) })

	frame := testFrame(t, s)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Inject(1, frame); err != nil {
					t.Errorf("inject: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const want = workers * perWorker
	st := s.Stats()
	if st.Packets != want {
		t.Fatalf("packets = %d, want %d (lost increments under concurrency)", st.Packets, want)
	}
	if st.Attested != want || st.SignOps != want || st.OutOfBandMsgs != want {
		t.Fatalf("attested/signOps/oob = %d/%d/%d, want %d each", st.Attested, st.SignOps, st.OutOfBandMsgs, want)
	}
	if got := oob.Load(); got != want {
		t.Fatalf("sink saw %d emissions, want %d", got, want)
	}
	if st.EvidenceBytes == 0 {
		t.Fatal("no evidence bytes recorded")
	}
}

// TestSwitchConcurrentInjectInBand runs the concurrent-inject check over
// the in-band path with the Verify stage and its memo enabled: the same
// wrapped frame re-presented from every goroutine must verify each time
// and the memo must absorb the repeated signature checks.
func TestSwitchConcurrentInjectInBand(t *testing.T) {
	up := newSwitch(t, "sw-up", Config{
		InBand:      true,
		Composition: evidence.Chained,
	})
	memo := evidence.NewVerifyMemo(0)
	s := newSwitch(t, "sw-conc", Config{
		InBand:         true,
		Composition:    evidence.Chained,
		VerifyIncoming: evidence.KeyMap{"sw-up": up.RoT().Public()},
		VerifyMemo:     memo,
	})

	// Let the upstream switch attest once, producing a frame whose header
	// carries a signed chain for sw-conc's Verify stage.
	pol := &Policy{ID: 3, Nonce: []byte("conc-ib"), Obls: []Obligation{{
		Place:        "sw-up",
		Claims:       []evidence.Detail{evidence.DetailProgram},
		SignEvidence: true,
	}}}
	outs, err := up.Receive(1, WrapFrame(pol, testFrame(t, up)))
	if err != nil || len(outs) == 0 {
		t.Fatalf("upstream attestation: outs=%d err=%v", len(outs), err)
	}
	wire := outs[0].Frame

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Inject(1, wire); err != nil {
					t.Errorf("inject: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const want = workers * perWorker
	st := s.Stats()
	if st.Packets != want || st.VerifyOps != want {
		t.Fatalf("packets/verifyOps = %d/%d, want %d each", st.Packets, st.VerifyOps, want)
	}
	if st.VerifyFails != 0 {
		t.Fatalf("%d verify failures on a valid chain", st.VerifyFails)
	}
	ms := memo.Stats()
	if ms.Hits == 0 {
		t.Fatalf("verify memo recorded no hits over %d identical chains: %+v", want, ms)
	}
}
