// Package pera implements PERA — "PISA Extended with Remote Attestation"
// (§5 of the paper): a programmable switch whose pipeline is augmented
// with a Sign/Verify stage backed by a hardware root of trust and an
// evidence Create/Inspect/Compose block (Fig. 3). PERA switches execute
// compiled attestation obligations carried either in-band (in an options
// header travelling with traffic, Fig. 2's in-band variant) or configured
// out-of-band, and emit evidence in-band (chained along the path) or
// out-of-band to an appraiser.
package pera

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pera/internal/evidence"
	"pera/internal/pisa"
)

// Guard is one Boolean test on a parsed packet field — the execution form
// of the hybrid language's ▶ operator (NetKAT test prefix). A guard list
// is a conjunction.
type Guard struct {
	Field string
	Value uint64
}

// Matches reports whether the packet satisfies the guard.
func (g Guard) Matches(pkt *pisa.Packet) bool { return pkt.Get(g.Field) == g.Value }

// MatchAll reports whether the packet satisfies every guard.
func MatchAll(gs []Guard, pkt *pisa.Packet) bool {
	for _, g := range gs {
		if !g.Matches(pkt) {
			return false
		}
	}
	return true
}

// Obligation is one compiled per-hop attestation duty: at Place (or at
// every attesting hop when Place is empty — the ∀hop of the hybrid
// language), if the packet passes the Guards (▶), attest the given claim
// details, optionally hash and sign, and direct the evidence to the
// appraiser place.
type Obligation struct {
	// Place restricts the obligation to one concrete switch; empty means
	// every PERA hop on the path applies it.
	Place string
	// Guards gate the attestation (▶ "fail early" tests).
	Guards []Guard
	// Claims are the detail levels to attest (Fig. 4 detail axis).
	Claims []evidence.Detail
	// HashEvidence applies # to the produced evidence.
	HashEvidence bool
	// SignEvidence applies ! (the RoT-backed Sign stage).
	SignEvidence bool
	// Appraiser names the place evidence is destined for.
	Appraiser string
}

// AppliesAt reports whether the obligation binds the named switch.
func (o *Obligation) AppliesAt(place string) bool {
	return o.Place == "" || o.Place == place
}

// Policy is an ordered set of obligations plus a nonce binding the run.
// It is what the relying party compiles (from network-aware Copland) and
// serializes into the transport options header (§5.2).
type Policy struct {
	ID    uint64
	Nonce []byte
	Obls  []Obligation

	// wild/byPlace form the dispatch index built by DecodePolicy: byPlace
	// lists, per concrete place named by any obligation, the indices of
	// obligations applying there (place-less obligations merged in
	// obligation order); wild holds just the place-less indices, for
	// places no obligation names explicitly. byPlace != nil marks the
	// index as built — hand-constructed policies fall back to a scan.
	wild    []uint16
	byPlace map[string][]uint16
}

// dispatch precomputes the per-place obligation index. The wire caps
// obligations at maxPolicyObls (1024), so uint16 indices suffice.
func (p *Policy) dispatch() {
	p.byPlace = make(map[string][]uint16, 4)
	for i := range p.Obls {
		if p.Obls[i].Place == "" {
			p.wild = append(p.wild, uint16(i))
		}
	}
	for i := range p.Obls {
		pl := p.Obls[i].Place
		if pl == "" || p.byPlace[pl] != nil {
			continue
		}
		var l []uint16
		for j := range p.Obls {
			if o := &p.Obls[j]; o.Place == "" || o.Place == pl {
				l = append(l, uint16(j))
			}
		}
		p.byPlace[pl] = l
	}
}

// forPlace returns the indices of obligations applying at place, in
// obligation order, when the dispatch index is available; ok=false means
// the caller must scan Obls with AppliesAt.
func (p *Policy) forPlace(place string) (idx []uint16, ok bool) {
	if p.byPlace == nil {
		return nil, false
	}
	if l, ok := p.byPlace[place]; ok {
		return l, true
	}
	return p.wild, true
}

// Errors from policy codec.
var ErrPolicyDecode = errors.New("pera: policy decode error")

// policy wire limits.
const (
	maxPolicyObls   = 1024
	maxPolicyGuards = 64
	maxPolicyClaims = 16
)

// Encode serializes the policy.
func (p *Policy) Encode() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, p.ID)
	b = appendLV(b, p.Nonce)
	b = binary.BigEndian.AppendUint32(b, uint32(len(p.Obls)))
	for i := range p.Obls {
		o := &p.Obls[i]
		b = appendLV(b, []byte(o.Place))
		b = binary.BigEndian.AppendUint32(b, uint32(len(o.Guards)))
		for _, g := range o.Guards {
			b = appendLV(b, []byte(g.Field))
			b = binary.BigEndian.AppendUint64(b, g.Value)
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(o.Claims)))
		for _, c := range o.Claims {
			b = append(b, byte(c))
		}
		var flags byte
		if o.HashEvidence {
			flags |= 1
		}
		if o.SignEvidence {
			flags |= 2
		}
		b = append(b, flags)
		b = appendLV(b, []byte(o.Appraiser))
	}
	return b
}

func appendLV(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// DecodePolicy parses an encoded policy. The result never aliases data
// (the bytes are copied once up front) and carries a precomputed
// per-place dispatch index; byte fields of the returned policy alias that
// private copy, so treat the decoded policy as immutable.
func DecodePolicy(data []byte) (*Policy, error) {
	p, err := parsePolicy(append([]byte(nil), data...))
	if err != nil {
		return nil, err
	}
	p.dispatch()
	return p, nil
}

// policyCache memoizes decoded policies by wire bytes. A policy travels
// unchanged along its whole path and recurs for every packet of a flow,
// so each hop's Pop was re-decoding identical bytes. Entries own a
// canonical copy of the encoding which the decoded policy aliases; the
// bounded cache drops wholesale when hostile traffic floods it with
// unique policies.
var policyCache struct {
	sync.Mutex
	m map[string]*policyCacheEntry
}

type policyCacheEntry struct {
	pol *Policy
	raw []byte
}

const policyCacheCap = 512

// decodePolicyCached returns the decoded policy for these wire bytes and
// the canonical raw encoding it aliases (safe to retain: owned by the
// cache entry, never by the caller's frame).
func decodePolicyCached(data []byte) (*Policy, []byte, error) {
	policyCache.Lock()
	ent, ok := policyCache.m[string(data)] // key lookup does not allocate
	policyCache.Unlock()
	if ok {
		return ent.pol, ent.raw, nil
	}
	raw := append([]byte(nil), data...)
	p, err := parsePolicy(raw)
	if err != nil {
		return nil, nil, err
	}
	p.dispatch()
	policyCache.Lock()
	if policyCache.m == nil || len(policyCache.m) >= policyCacheCap {
		policyCache.m = make(map[string]*policyCacheEntry, 64)
	}
	policyCache.m[string(raw)] = &policyCacheEntry{pol: p, raw: raw}
	policyCache.Unlock()
	return p, raw, nil
}

// parsePolicy decodes a policy whose byte fields ALIAS data — the caller
// must own data and never mutate it afterwards.
func parsePolicy(data []byte) (*Policy, error) {
	r := &reader{buf: data}
	p := &Policy{}
	var err error
	if p.ID, err = r.u64(); err != nil {
		return nil, err
	}
	if p.Nonce, err = r.lv(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxPolicyObls {
		return nil, fmt.Errorf("%w: %d obligations", ErrPolicyDecode, n)
	}
	for i := uint32(0); i < n; i++ {
		var o Obligation
		pl, err := r.lv()
		if err != nil {
			return nil, err
		}
		o.Place = string(pl)
		ng, err := r.u32()
		if err != nil {
			return nil, err
		}
		if ng > maxPolicyGuards {
			return nil, fmt.Errorf("%w: %d guards", ErrPolicyDecode, ng)
		}
		for j := uint32(0); j < ng; j++ {
			f, err := r.lv()
			if err != nil {
				return nil, err
			}
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			o.Guards = append(o.Guards, Guard{Field: string(f), Value: v})
		}
		nc, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nc > maxPolicyClaims {
			return nil, fmt.Errorf("%w: %d claims", ErrPolicyDecode, nc)
		}
		for j := uint32(0); j < nc; j++ {
			cb, err := r.byte()
			if err != nil {
				return nil, err
			}
			d := evidence.Detail(cb)
			if !d.Valid() {
				return nil, fmt.Errorf("%w: detail %d", ErrPolicyDecode, cb)
			}
			o.Claims = append(o.Claims, d)
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		o.HashEvidence = flags&1 != 0
		o.SignEvidence = flags&2 != 0
		ap, err := r.lv()
		if err != nil {
			return nil, err
		}
		o.Appraiser = string(ap)
		p.Obls = append(p.Obls, o)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrPolicyDecode)
	}
	return p, nil
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrPolicyDecode)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrPolicyDecode)
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrPolicyDecode)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) lv() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: oversized field", ErrPolicyDecode)
	}
	if r.off+int(n) > len(r.buf) {
		return nil, fmt.Errorf("%w: truncated field", ErrPolicyDecode)
	}
	// Zero-copy: the field aliases r.buf, capacity-clamped so an append
	// by the caller reallocates instead of clobbering the next field.
	// parsePolicy's contract makes this safe (the buffer is a private,
	// immutable copy owned by the decode).
	var v []byte
	if n > 0 {
		v = r.buf[r.off : r.off+int(n) : r.off+int(n)]
	}
	r.off += int(n)
	return v, nil
}
