package evidence

import (
	"math/rand"
	"testing"
)

// Mutation robustness: decoding arbitrarily corrupted evidence must
// return an error or a valid tree — never panic, never hang, never
// allocate unboundedly. A PERA switch parses these bytes off the wire
// from untrusted peers.
func TestDecodeMutationRobustness(t *testing.T) {
	s := testSigner("sw1")
	base := Encode(sampleTree(s))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		data := append([]byte(nil), base...)
		// Apply 1-4 random mutations: flip, truncate, extend.
		for m := 0; m < 1+rng.Intn(4); m++ {
			switch rng.Intn(3) {
			case 0:
				if len(data) > 0 {
					data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
				}
			case 1:
				if len(data) > 1 {
					data = data[:rng.Intn(len(data))]
				}
			case 2:
				data = append(data, byte(rng.Intn(256)))
			}
		}
		ev, err := Decode(data)
		if err == nil {
			// If it decoded, it must be structurally valid and
			// re-encodable.
			if verr := Validate(ev); verr != nil {
				t.Fatalf("mutation %d: decoded invalid tree: %v", i, verr)
			}
			_ = Encode(ev)
		}
	}
}

// Random byte strings (not derived from valid encodings).
func TestDecodeRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		if ev, err := Decode(data); err == nil {
			if verr := Validate(ev); verr != nil {
				t.Fatalf("random %d: invalid tree accepted: %v", i, verr)
			}
		}
	}
}

// Deeply nested trees must decode within the node bound, not recurse
// to a stack overflow.
func TestDecodeDeepNesting(t *testing.T) {
	// A long chain of sig nodes (each 1 child).
	var data []byte
	depth := maxNodes + 10
	for i := 0; i < depth; i++ {
		data = append(data, byte(KindSig))
		data = append(data, 0, 0, 0, 1, 'x') // signer "x"
		data = append(data, 0, 0, 0, 0)      // empty signature
	}
	data = append(data, byte(KindEmpty))
	if _, err := Decode(data); err == nil {
		t.Fatal("over-deep tree decoded")
	}
}
