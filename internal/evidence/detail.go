package evidence

import (
	"fmt"
	"time"
)

// Detail is the paper's Fig. 4 y-axis: what class of platform state a
// measurement covers, ordered from most inert (hardware identity, which
// never changes) to most volatile (individual packets).
type Detail uint8

// Detail levels, in decreasing inertia order.
const (
	DetailHardware  Detail = iota // platform model / RoT identity
	DetailProgram                 // loaded dataplane program digest
	DetailTables                  // match-action table contents
	DetailProgState               // registers, counters, mutable state
	DetailPackets                 // individual packet contents
	detailCount
)

var detailNames = [...]string{"hardware", "program", "tables", "progstate", "packets"}

func (d Detail) String() string {
	if int(d) < len(detailNames) {
		return detailNames[d]
	}
	return fmt.Sprintf("detail(%d)", uint8(d))
}

// Valid reports whether d names a defined detail level.
func (d Detail) Valid() bool { return d < detailCount }

// Details lists all levels from most to least inert, for sweeps.
func Details() []Detail {
	return []Detail{DetailHardware, DetailProgram, DetailTables, DetailProgState, DetailPackets}
}

// Inertia returns how long evidence at this detail level remains valid for
// caching purposes — the paper's observation that "high-inertia
// attestations are more easily cached since they take longer to expire."
// Hardware identity effectively never expires; per-packet evidence can
// never be reused. The intermediate values model a deployment where
// programs are reloaded rarely, tables updated occasionally, and program
// state churns quickly.
func (d Detail) Inertia() time.Duration {
	switch d {
	case DetailHardware:
		return 365 * 24 * time.Hour
	case DetailProgram:
		return time.Hour
	case DetailTables:
		return time.Minute
	case DetailProgState:
		return time.Second
	default: // DetailPackets and anything unknown: uncacheable
		return 0
	}
}

// MoreInertThan reports whether d expires no sooner than other.
func (d Detail) MoreInertThan(other Detail) bool {
	return d.Inertia() >= other.Inertia()
}

// Composition is the paper's Fig. 4 z-axis: how per-hop evidence is
// combined along a traffic path.
type Composition uint8

const (
	// Pointwise evidence is independent per element: each attesting
	// element reports directly and separately to the appraiser.
	Pointwise Composition = iota
	// Chained evidence threads each hop's output into the next hop's
	// input, producing one linked tree whose order cannot be forged
	// without breaking a signature.
	Chained
	compositionCount
)

var compositionNames = [...]string{"pointwise", "chained"}

func (c Composition) String() string {
	if int(c) < len(compositionNames) {
		return compositionNames[c]
	}
	return fmt.Sprintf("composition(%d)", uint8(c))
}

// Valid reports whether c names a defined composition mode.
func (c Composition) Valid() bool { return c < compositionCount }

// Compositions lists both modes, for sweeps.
func Compositions() []Composition { return []Composition{Pointwise, Chained} }
