package evidence

import (
	"strings"
	"testing"
	"testing/quick"

	"pera/internal/rot"
)

func testSigner(name string) *rot.RoT {
	return rot.NewDeterministic(name, []byte(name+"-seed"))
}

func sampleMeasurement() *Evidence {
	return Measurement("attest", "firewall_v5.p4", "sw1", DetailProgram, rot.Sum([]byte("prog")), nil)
}

func sampleTree(s Signer) *Evidence {
	m1 := sampleMeasurement()
	m2 := Measurement("attest", "acl_v3.p4", "sw2", DetailProgram, rot.Sum([]byte("acl")), []byte("claims"))
	return Sign(s, Seq(Par(m1, m2), Nonce([]byte("nonce-1"))))
}

func TestConstructorsAndValidate(t *testing.T) {
	s := testSigner("sw1")
	cases := []*Evidence{
		Empty(),
		Nonce([]byte("n")),
		sampleMeasurement(),
		Hash(sampleMeasurement()),
		Sign(s, sampleMeasurement()),
		Seq(Empty(), Nonce(nil)),
		Par(sampleMeasurement(), Hash(Empty())),
		sampleTree(s),
	}
	for i, e := range cases {
		if err := Validate(e); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []*Evidence{
		nil,
		{Kind: KindSig},                        // sig without child
		{Kind: KindSeq, Left: Empty()},         // seq missing right
		{Kind: KindPar, Right: Empty()},        // par missing left
		{Kind: KindEmpty, Left: Empty()},       // leaf with child
		{Kind: Kind(99)},                       // unknown kind
		{Kind: KindSeq, Left: nil, Right: nil}, // empty seq
	}
	for i, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("case %d: malformed tree accepted", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSigner("sw1")
	trees := []*Evidence{
		Empty(),
		Nonce([]byte{1, 2, 3}),
		Nonce(nil),
		sampleMeasurement(),
		Hash(sampleTree(s)),
		sampleTree(s),
		SeqAll(Empty(), Nonce([]byte("a")), sampleMeasurement(), Sign(s, Empty())),
	}
	for i, e := range trees {
		enc := Encode(e)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !Equal(e, dec) {
			t.Fatalf("case %d: round trip mismatch:\n  in:  %v\n  out: %v", i, e, dec)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff},                           // unknown kind
		{byte(KindNonce)},                // truncated length
		{byte(KindNonce), 0, 0, 0, 9, 1}, // length beyond data
		{byte(KindSig), 0, 0, 0, 0},      // truncated sig
		{byte(KindHash), 1, 2},           // truncated digest
		append(Encode(Empty()), 0),       // trailing byte
		{byte(KindNonce), 0xff, 0xff, 0xff, 0xff},                                       // oversized field
		{byte(KindMeasurement), 0, 0, 0, 1, 'a', 0, 0, 0, 1, 'b', 0, 0, 0, 1, 'c', 200}, // invalid detail
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func TestDecodePrefix(t *testing.T) {
	e := Nonce([]byte("abc"))
	data := append(Encode(e), []byte("payload")...)
	dec, n, err := DecodePrefix(data)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(e, dec) {
		t.Fatal("prefix decode mismatch")
	}
	if string(data[n:]) != "payload" {
		t.Fatalf("consumed %d bytes, remainder %q", n, data[n:])
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	s := testSigner("sw1")
	trees := []*Evidence{Empty(), Nonce([]byte("xyz")), sampleMeasurement(), sampleTree(s), Hash(Empty())}
	for i, e := range trees {
		if got, want := EncodedSize(e), len(Encode(e)); got != want {
			t.Errorf("case %d: EncodedSize=%d len(Encode)=%d", i, got, want)
		}
	}
	if EncodedSize(nil) != len(Encode(nil)) {
		t.Error("nil size mismatch")
	}
}

func TestSignVerify(t *testing.T) {
	s := testSigner("sw1")
	tree := sampleTree(s)
	keys := KeyMap{"sw1": s.Public()}
	n, err := VerifySignatures(tree, keys)
	if err != nil {
		t.Fatalf("good tree rejected: %v", err)
	}
	if n != 1 {
		t.Fatalf("checked %d signatures, want 1", n)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	s := testSigner("sw1")
	keys := KeyMap{"sw1": s.Public()}

	tree := sampleTree(s)
	// Tamper with the signed payload.
	tree.Left.Left.Left.Value[0] ^= 1
	if _, err := VerifySignatures(tree, keys); err == nil {
		t.Fatal("tampered payload verified")
	}

	// Unknown signer.
	other := Sign(testSigner("sw9"), Empty())
	if _, err := VerifySignatures(other, keys); err == nil {
		t.Fatal("unknown signer verified")
	}

	// Signature transplanted to a different signer name must fail
	// (signer binding).
	tr := Sign(s, Empty())
	tr.Signer = "sw2"
	keys2 := KeyMap{"sw2": s.Public()}
	if _, err := VerifySignatures(tr, keys2); err == nil {
		t.Fatal("transplanted signature verified")
	}
}

func TestVerifyCountsNestedSignatures(t *testing.T) {
	a, b := testSigner("a"), testSigner("b")
	tree := Sign(b, Seq(Sign(a, sampleMeasurement()), Nonce([]byte("n"))))
	keys := KeyMap{"a": a.Public(), "b": b.Public()}
	n, err := VerifySignatures(tree, keys)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("checked %d signatures, want 2", n)
	}
}

func TestAccessors(t *testing.T) {
	s := testSigner("sw1")
	tree := sampleTree(s)
	ms := Measurements(tree)
	if len(ms) != 2 {
		t.Fatalf("measurements: %d, want 2", len(ms))
	}
	if ms[0].Target != "firewall_v5.p4" || ms[1].Target != "acl_v3.p4" {
		t.Fatalf("measurement order wrong: %v", ms)
	}
	ns := Nonces(tree)
	if len(ns) != 1 || string(ns[0]) != "nonce-1" {
		t.Fatalf("nonces: %v", ns)
	}
	if sg := Signers(tree); len(sg) != 1 || sg[0] != "sw1" {
		t.Fatalf("signers: %v", sg)
	}
	if Size(tree) != 6 {
		t.Fatalf("size = %d, want 6", Size(tree))
	}
	if Depth(tree) != 4 {
		t.Fatalf("depth = %d, want 4", Depth(tree))
	}
	if Size(nil) != 0 || Depth(nil) != 0 {
		t.Fatal("nil size/depth wrong")
	}
}

func TestSeqAll(t *testing.T) {
	if SeqAll().Kind != KindEmpty {
		t.Fatal("empty SeqAll not Empty")
	}
	one := Nonce([]byte("x"))
	if SeqAll(one) != one {
		t.Fatal("single SeqAll not identity")
	}
	three := SeqAll(Empty(), Empty(), Empty())
	if Size(three) != 5 {
		t.Fatalf("SeqAll(3) size %d, want 5", Size(three))
	}
}

func TestStringRendering(t *testing.T) {
	s := testSigner("sw1")
	str := sampleTree(s).String()
	for _, want := range []string{"sig[sw1]", "msmt[attest firewall_v5.p4@sw1", "nonce(", "par(", "seq("} {
		if !strings.Contains(str, want) {
			t.Errorf("rendering %q missing %q", str, want)
		}
	}
	var nilEv *Evidence
	_ = nilEv // String on nil pointer is not required; skip.
}

func TestHashCollapsesAndCommits(t *testing.T) {
	m := sampleMeasurement()
	h := Hash(m)
	if h.Left != nil {
		t.Fatal("hash node must not retain subtree")
	}
	if h.Digest != DigestOf(m) {
		t.Fatal("hash digest mismatch")
	}
	m2 := sampleMeasurement()
	m2.Target = "other"
	if Hash(m2).Digest == h.Digest {
		t.Fatal("different subtrees share hash")
	}
}

// Property: encode/decode is the identity on arbitrary generated trees.
func TestPropertyCodecRoundTrip(t *testing.T) {
	s := testSigner("p")
	f := func(nonce []byte, target string, detail uint8, depth uint8) bool {
		d := Detail(detail % uint8(detailCount))
		e := Measurement("m", target, "pl", d, rot.Sum(nonce), nonce)
		var tree *Evidence = e
		for i := uint8(0); i < depth%6; i++ {
			switch i % 3 {
			case 0:
				tree = Seq(tree, Nonce(nonce))
			case 1:
				tree = Par(Hash(tree), tree)
			case 2:
				tree = Sign(s, tree)
			}
		}
		dec, err := Decode(Encode(tree))
		return err == nil && Equal(tree, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: digests are stable (same tree, same digest) and sensitive to
// content changes.
func TestPropertyDigestBinding(t *testing.T) {
	f := func(a, b string) bool {
		e1 := Measurement("m", a, "p", DetailProgram, rot.Sum([]byte(a)), nil)
		e1b := Measurement("m", a, "p", DetailProgram, rot.Sum([]byte(a)), nil)
		if DigestOf(e1) != DigestOf(e1b) {
			return false
		}
		if a == b {
			return true
		}
		e2 := Measurement("m", b, "p", DetailProgram, rot.Sum([]byte(b)), nil)
		return DigestOf(e1) != DigestOf(e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Seq and Par are not commutative in the encoding — order is
// evidence. (The appraiser relies on this to detect reordered paths.)
func TestPropertySeqOrderMatters(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		x := Measurement("m", a, "p", DetailProgram, rot.Sum([]byte(a)), nil)
		y := Measurement("m", b, "p", DetailProgram, rot.Sum([]byte(b)), nil)
		return !Equal(Seq(x, y), Seq(y, x)) && !Equal(Par(x, y), Par(y, x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
