package evidence

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Trusted redaction and pseudonymization.
//
// The paper proposes (UC5, and footnotes 1–2 of UC1) that operators give
// peers "a signed and suitably redacted form" of path evidence: switches
// are identified by per-user pseudonyms instead of serial numbers, program
// names may be pseudonymized "that can be lifted by an auditor's request
// or court order", and whole subtrees sensitive to an enterprise customer
// can be collapsed to hashes before the evidence reaches a compliance
// officer.
//
// Redaction here is digest-preserving: a redacted subtree is replaced by
// its Hash node, so the redacted tree still commits to the original
// content — an auditor who later obtains the cleartext can check it
// against the commitment.

// Pseudonymizer deterministically maps principal and program names to
// per-scope pseudonyms using an HMAC key, and retains the reverse mapping
// so an authorized auditor can lift pseudonyms. It is safe for concurrent
// use.
type Pseudonymizer struct {
	mu      sync.Mutex
	key     []byte
	scope   string
	forward map[string]string
	reverse map[string]string
}

// NewPseudonymizer creates a pseudonymizer for the given scope (typically
// a user or tenant identity) keyed by the operator secret key.
func NewPseudonymizer(key []byte, scope string) *Pseudonymizer {
	return &Pseudonymizer{
		key:     append([]byte(nil), key...),
		scope:   scope,
		forward: make(map[string]string),
		reverse: make(map[string]string),
	}
}

// Pseudonym returns the stable pseudonym for name within this scope.
func (p *Pseudonymizer) Pseudonym(name string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ps, ok := p.forward[name]; ok {
		return ps
	}
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(p.scope))
	mac.Write([]byte{0})
	mac.Write([]byte(name))
	ps := "pn-" + hex.EncodeToString(mac.Sum(nil)[:8])
	p.forward[name] = ps
	p.reverse[ps] = name
	return ps
}

// Lift reverses a pseudonym previously produced in this scope — the
// auditor's "court order" path. It fails for unknown pseudonyms.
func (p *Pseudonymizer) Lift(pseudonym string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	name, ok := p.reverse[pseudonym]
	if !ok {
		return "", fmt.Errorf("evidence: unknown pseudonym %q", pseudonym)
	}
	return name, nil
}

// Pseudonymize rewrites measurer, target, place and signer names in e
// through p, returning a new tree. Signature nodes are converted to hash
// commitments because the original signatures cover the cleartext names;
// the caller (the operator, who holds the cleartext) is expected to
// re-sign the pseudonymized tree, vouching for the translation.
func Pseudonymize(p *Pseudonymizer, e *Evidence) *Evidence {
	if e == nil {
		return nil
	}
	switch e.Kind {
	case KindEmpty, KindNonce, KindHash:
		cp := *e
		return &cp
	case KindMeasurement:
		cp := *e
		cp.Measurer = p.Pseudonym(e.Measurer)
		cp.Target = p.Pseudonym(e.Target)
		cp.Place = p.Pseudonym(e.Place)
		return &cp
	case KindSig:
		// The inner signature binds cleartext names; keep a commitment
		// to it and pseudonymize the payload it covered.
		return Seq(Hash(e), Pseudonymize(p, e.Left))
	case KindSeq:
		return Seq(Pseudonymize(p, e.Left), Pseudonymize(p, e.Right))
	case KindPar:
		return Par(Pseudonymize(p, e.Left), Pseudonymize(p, e.Right))
	default:
		cp := *e
		return &cp
	}
}

// RedactFunc decides whether a measurement node must be redacted.
type RedactFunc func(m *Evidence) bool

// Redact returns a copy of e in which every measurement node selected by
// keep==false is replaced by its Hash commitment. Composition structure
// and signatures over untouched subtrees are preserved; a signature whose
// subtree was modified is replaced by a hash commitment to the original
// signed unit (it could no longer verify anyway, and the commitment keeps
// the tree appraisable for structure).
func Redact(e *Evidence, redact RedactFunc) *Evidence {
	out, _ := redactWalk(e, redact)
	return out
}

// redactWalk returns the rewritten node and whether anything beneath it
// changed.
func redactWalk(e *Evidence, redact RedactFunc) (*Evidence, bool) {
	if e == nil {
		return nil, false
	}
	switch e.Kind {
	case KindEmpty, KindNonce, KindHash:
		cp := *e
		return &cp, false
	case KindMeasurement:
		if redact(e) {
			return Hash(e), true
		}
		cp := *e
		return &cp, false
	case KindSig:
		inner, changed := redactWalk(e.Left, redact)
		if !changed {
			cp := *e
			cp.Left = inner
			return &cp, false
		}
		return Seq(Hash(e), inner), true
	case KindSeq:
		l, cl := redactWalk(e.Left, redact)
		r, cr := redactWalk(e.Right, redact)
		return Seq(l, r), cl || cr
	case KindPar:
		l, cl := redactWalk(e.Left, redact)
		r, cr := redactWalk(e.Right, redact)
		return Par(l, r), cl || cr
	default:
		cp := *e
		return &cp, false
	}
}

// RedactPlaces redacts every measurement taken at one of the named places.
func RedactPlaces(e *Evidence, places ...string) *Evidence {
	set := make(map[string]bool, len(places))
	for _, p := range places {
		set[p] = true
	}
	return Redact(e, func(m *Evidence) bool { return set[m.Place] })
}

// RedactDetailAbove redacts measurements more detailed (more volatile)
// than max — e.g. hide packet- and state-level evidence from a regulator
// while leaving program identities visible.
func RedactDetailAbove(e *Evidence, max Detail) *Evidence {
	return Redact(e, func(m *Evidence) bool { return m.Detail > max })
}
