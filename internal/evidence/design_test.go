package evidence

import (
	"errors"
	"testing"
	"time"

	"pera/internal/rot"
)

func TestDetailInertiaOrdering(t *testing.T) {
	ds := Details()
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Inertia() < ds[i].Inertia() {
			t.Fatalf("inertia not monotone: %v (%v) < %v (%v)",
				ds[i-1], ds[i-1].Inertia(), ds[i], ds[i].Inertia())
		}
		if !ds[i-1].MoreInertThan(ds[i]) {
			t.Fatalf("%v should be more inert than %v", ds[i-1], ds[i])
		}
	}
	if DetailPackets.Inertia() != 0 {
		t.Fatal("per-packet evidence must be uncacheable")
	}
}

func TestDetailNamesAndValidity(t *testing.T) {
	for _, d := range Details() {
		if !d.Valid() {
			t.Errorf("%v invalid", d)
		}
		if d.String() == "" {
			t.Errorf("empty name for %d", d)
		}
	}
	if Detail(200).Valid() {
		t.Error("out-of-range detail valid")
	}
	if Composition(9).Valid() {
		t.Error("out-of-range composition valid")
	}
	if Sampling(9).Valid() {
		t.Error("out-of-range sampling valid")
	}
	// String on out-of-range values must not panic.
	_ = Detail(200).String()
	_ = Composition(9).String()
	_ = Sampling(9).String()
	_ = Kind(200).String()
}

type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) Advance(d time.Duration) { f.now = f.now.Add(d) }

func TestCacheHitWithinInertia(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	ev := sampleMeasurement()
	c.Put("sw1", "prog", DetailProgram, ev)

	got, ok := c.Get("sw1", "prog", DetailProgram)
	if !ok || !Equal(got, ev) {
		t.Fatal("fresh entry missed")
	}
	clk.Advance(30 * time.Minute) // within the 1h program inertia
	if _, ok := c.Get("sw1", "prog", DetailProgram); !ok {
		t.Fatal("entry expired within inertia window")
	}
	clk.Advance(31 * time.Minute) // past 1h
	if _, ok := c.Get("sw1", "prog", DetailProgram); ok {
		t.Fatal("entry survived past inertia window")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCachePacketsNeverCached(t *testing.T) {
	c := NewCache()
	c.Put("sw1", "pkt", DetailPackets, sampleMeasurement())
	if _, ok := c.Get("sw1", "pkt", DetailPackets); ok {
		t.Fatal("packet-detail evidence was cached")
	}
}

func TestCacheKeyIsolation(t *testing.T) {
	c := NewCache()
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	if _, ok := c.Get("sw2", "prog", DetailProgram); ok {
		t.Fatal("cross-place hit")
	}
	if _, ok := c.Get("sw1", "other", DetailProgram); ok {
		t.Fatal("cross-target hit")
	}
	if _, ok := c.Get("sw1", "prog", DetailTables); ok {
		t.Fatal("cross-detail hit")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache()
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Put("sw1", "tbl", DetailTables, sampleMeasurement())
	c.Invalidate("sw1", "prog", DetailProgram)
	if _, ok := c.Get("sw1", "prog", DetailProgram); ok {
		t.Fatal("invalidated entry hit")
	}
	if _, ok := c.Get("sw1", "tbl", DetailTables); !ok {
		t.Fatal("unrelated entry dropped")
	}
	c.InvalidatePlace("sw1")
	if _, ok := c.Get("sw1", "tbl", DetailTables); ok {
		t.Fatal("place invalidation missed entry")
	}
}

func TestCacheGetOrProduce(t *testing.T) {
	c := NewCache()
	calls := 0
	produce := func() (*Evidence, error) {
		calls++
		return sampleMeasurement(), nil
	}
	if _, cached, err := c.GetOrProduce("sw1", "p", DetailProgram, produce); err != nil || cached {
		t.Fatalf("first call: cached=%v err=%v", cached, err)
	}
	if _, cached, err := c.GetOrProduce("sw1", "p", DetailProgram, produce); err != nil || !cached {
		t.Fatalf("second call: cached=%v err=%v", cached, err)
	}
	if calls != 1 {
		t.Fatalf("produce called %d times", calls)
	}
	wantErr := errors.New("boom")
	_, _, err := c.GetOrProduce("sw1", "q", DetailProgram, func() (*Evidence, error) { return nil, wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestCacheResetStats(t *testing.T) {
	c := NewCache()
	c.Get("a", "b", DetailProgram)
	c.ResetStats()
	if s := c.Stats(); s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestStatsHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
	if hr := (Stats{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestSamplerPerPacket(t *testing.T) {
	s := NewSampler(SamplerConfig{Mode: SamplePerPacket})
	for i := 0; i < 10; i++ {
		if !s.Sample(uint64(i)) {
			t.Fatal("per-packet sampler skipped a packet")
		}
	}
	if s.Rate() != 1 {
		t.Fatalf("rate %v", s.Rate())
	}
}

func TestSamplerPerFlow(t *testing.T) {
	s := NewSampler(SamplerConfig{Mode: SamplePerFlow})
	if !s.Sample(7) {
		t.Fatal("first packet of flow not sampled")
	}
	for i := 0; i < 5; i++ {
		if s.Sample(7) {
			t.Fatal("repeat packet of flow sampled")
		}
	}
	if !s.Sample(9) {
		t.Fatal("new flow not sampled")
	}
	s.ResetFlows()
	if !s.Sample(7) {
		t.Fatal("flow not re-sampled after reset")
	}
	dec, sam := s.Counts()
	if dec != 8 || sam != 3 {
		t.Fatalf("counts = %d/%d", sam, dec)
	}
}

func TestSamplerPerEpoch(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0).Add(time.Hour)}
	s := NewSampler(SamplerConfig{Mode: SamplePerEpoch, Epoch: time.Second, Clock: clk.Now})
	if !s.Sample(1) {
		t.Fatal("first packet of epoch not sampled")
	}
	if s.Sample(2) {
		t.Fatal("same-epoch packet sampled")
	}
	clk.Advance(time.Second)
	if !s.Sample(3) {
		t.Fatal("new epoch not sampled")
	}
}

func TestSamplerEveryN(t *testing.T) {
	s := NewSampler(SamplerConfig{Mode: SampleEveryN, N: 3})
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, s.Sample(0))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every-3 pattern wrong at %d: %v", i, got)
		}
	}
	if r := s.Rate(); r < 0.32 || r > 0.34 {
		t.Fatalf("rate %v, want ~1/3", r)
	}
}

func TestSamplerDefaults(t *testing.T) {
	s := NewSampler(SamplerConfig{Mode: SampleEveryN}) // N defaults to 1
	if !s.Sample(0) {
		t.Fatal("every-1 sampler skipped")
	}
	if NewSampler(SamplerConfig{Mode: SamplePerPacket}).Rate() != 0 {
		t.Fatal("rate before any decision")
	}
}

func TestPseudonymizerStableAndLiftable(t *testing.T) {
	p := NewPseudonymizer([]byte("operator-key"), "tenant-a")
	a1 := p.Pseudonym("sw1")
	a2 := p.Pseudonym("sw1")
	if a1 != a2 {
		t.Fatal("pseudonym unstable")
	}
	if a1 == "sw1" {
		t.Fatal("pseudonym equals cleartext")
	}
	name, err := p.Lift(a1)
	if err != nil || name != "sw1" {
		t.Fatalf("lift: %q %v", name, err)
	}
	if _, err := p.Lift("pn-unknown"); err == nil {
		t.Fatal("unknown pseudonym lifted")
	}
}

func TestPseudonymizerScopeSeparation(t *testing.T) {
	pa := NewPseudonymizer([]byte("k"), "tenant-a")
	pb := NewPseudonymizer([]byte("k"), "tenant-b")
	if pa.Pseudonym("sw1") == pb.Pseudonym("sw1") {
		t.Fatal("pseudonyms identical across scopes — linkable")
	}
}

func TestPseudonymizeTree(t *testing.T) {
	s := testSigner("sw1")
	tree := sampleTree(s)
	p := NewPseudonymizer([]byte("k"), "user")
	out := Pseudonymize(p, tree)
	for _, m := range Measurements(out) {
		if m.Place == "sw1" || m.Place == "sw2" {
			t.Fatalf("place not pseudonymized: %v", m)
		}
		if m.Target == "firewall_v5.p4" {
			t.Fatalf("target not pseudonymized: %v", m)
		}
	}
	// Original signature becomes a commitment; no signer names leak.
	if len(Signers(out)) != 0 {
		t.Fatalf("signers leak: %v", Signers(out))
	}
	// The commitment must equal the digest of the original signed node.
	if out.Left.Kind != KindHash || out.Left.Digest != DigestOf(tree) {
		t.Fatal("pseudonymized tree lost commitment to original")
	}
	if Pseudonymize(p, nil) != nil {
		t.Fatal("nil tree")
	}
}

func TestRedactPlaces(t *testing.T) {
	s := testSigner("sw1")
	tree := sampleTree(s)
	out := RedactPlaces(tree, "sw2")
	ms := Measurements(out)
	if len(ms) != 1 || ms[0].Place != "sw1" {
		t.Fatalf("redaction wrong: %v", ms)
	}
	// Redacting nothing preserves the tree (including its signature).
	same := RedactPlaces(tree, "nowhere")
	if !Equal(tree, same) {
		t.Fatal("no-op redaction changed tree")
	}
	keys := KeyMap{"sw1": s.Public()}
	if _, err := VerifySignatures(same, keys); err != nil {
		t.Fatalf("no-op redaction broke signature: %v", err)
	}
}

func TestRedactDetailAbove(t *testing.T) {
	prog := Measurement("a", "p", "sw1", DetailProgram, rot.Digest{}, nil)
	pkt := Measurement("a", "pkt", "sw1", DetailPackets, rot.Digest{}, nil)
	tree := Seq(prog, pkt)
	out := RedactDetailAbove(tree, DetailTables)
	ms := Measurements(out)
	if len(ms) != 1 || ms[0].Detail != DetailProgram {
		t.Fatalf("detail redaction wrong: %v", ms)
	}
}

func TestRedactionCommits(t *testing.T) {
	m := sampleMeasurement()
	out := Redact(m, func(*Evidence) bool { return true })
	if out.Kind != KindHash || out.Digest != DigestOf(m) {
		t.Fatal("redacted node is not a commitment to the original")
	}
	// A signature over a redacted subtree becomes a commitment pair.
	s := testSigner("sw1")
	signed := Sign(s, m)
	red := Redact(signed, func(*Evidence) bool { return true })
	if red.Kind != KindSeq || red.Left.Kind != KindHash || red.Left.Digest != DigestOf(signed) {
		t.Fatalf("signature redaction shape wrong: %v", red)
	}
}
