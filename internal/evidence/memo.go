package evidence

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
	"sync/atomic"

	"pera/internal/auditlog"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

// VerifyMemo is a bounded, sharded memo of signature-verification
// outcomes: (public key, message digest, signature) → verdict. It is the
// paper's §5.2 inertia axis applied to the verifier side — high-inertia
// evidence re-presented across thousands of packets is byte-identical
// (claims are cached on the switch and Ed25519 signing is deterministic),
// so after the first full verification each re-presentation costs one
// SHA-256 over the candidate triple instead of one ed25519.Verify.
//
// Both verdicts are cacheable: a (key, message, signature) triple that
// failed once fails forever, so negative results are memoized too and a
// replayed forgery never earns a second full verification.
//
// The memo is safe for concurrent use; it is sharded so appraisal workers
// verifying different chains do not serialize behind one lock.
type VerifyMemo struct {
	shards   [memoShards]memoShard
	perShard int

	hits   atomic.Uint64
	misses atomic.Uint64
	aud    atomic.Pointer[auditlog.Writer]
}

// SetAudit attaches the audit ledger: the first full verification of
// each signature triple (the memo-miss path, where the real Ed25519
// check runs) is recorded as a memo_insert event with its verdict, so
// the ledger shows exactly which cryptographic checks were actually
// performed versus served from memory. A nil writer detaches.
func (m *VerifyMemo) SetAudit(w *auditlog.Writer) {
	if m == nil {
		return
	}
	m.aud.Store(w)
}

const memoShards = 16

// DefaultMemoCapacity bounds a memo built with capacity <= 0.
const DefaultMemoCapacity = 8192

// memoShard bounds its entries with FIFO replacement: ring holds keys in
// insertion order and, once full, each insert overwrites (and deletes)
// the oldest. Verdicts are immutable — a triple's verdict never changes —
// so recency tracking buys nothing here, and FIFO keeps the hit path to
// one map read and the insert path to one map write plus a ring slot
// (the previous list-based LRU cost three heap objects per insert).
type memoShard struct {
	mu      sync.Mutex
	entries map[memoKey]bool
	ring    []memoKey // grows to perShard, then wraps
	pos     int       // next overwrite index once the ring is full
}

// memoKey is the SHA-256 of the canonical (pubkey, signature, message)
// triple. Hashing the full triple (not just the message) means a colliding
// key would need a full SHA-256 collision to alias two verdicts.
type memoKey [sha256.Size]byte

// NewVerifyMemo returns a memo bounded to capacity entries (rounded up to
// at least one entry per shard). capacity <= 0 selects
// DefaultMemoCapacity.
func NewVerifyMemo(capacity int) *VerifyMemo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	per := (capacity + memoShards - 1) / memoShards
	if per < 1 {
		per = 1
	}
	// Shard maps are created lazily on first store into each shard —
	// lookups against a nil map are natural misses, and a memo is
	// rebuilt per run in benchmarks and sweeps, so the 16-shard eager
	// setup was pure constructor overhead.
	return &VerifyMemo{perShard: per}
}

// memoHashPool recycles SHA-256 states for key construction; sha256.New
// escapes to the heap through the hash.Hash interface, so without the
// pool every memo lookup — hit or miss — would allocate.
var memoHashPool = sync.Pool{New: func() any { return &memoHasher{h: sha256.New()} }}

// memoHasher pairs a hasher with a sum buffer so key computation stays
// allocation-free: summing into a stack array forces it to escape, while
// the pooled buffer is already on the heap.
type memoHasher struct {
	h   hash.Hash
	sum [sha256.Size]byte
}

// memoKeyOf builds the lookup key. Fields are length-prefixed so the
// boundary between public key, signature and message is unambiguous.
func memoKeyOf(pub ed25519.PublicKey, message, sig []byte) memoKey {
	mh := memoHashPool.Get().(*memoHasher)
	h := mh.h
	h.Reset()
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(pub)))
	h.Write(lp[:])
	h.Write(pub)
	binary.BigEndian.PutUint32(lp[:], uint32(len(sig)))
	h.Write(lp[:])
	h.Write(sig)
	h.Write(message)
	var k memoKey
	copy(k[:], h.Sum(mh.sum[:0]))
	memoHashPool.Put(mh)
	return k
}

// lookup returns the memoized verdict for k and whether it was present.
func (m *VerifyMemo) lookup(k memoKey) (verdict, ok bool) {
	s := &m.shards[binary.BigEndian.Uint32(k[:4])%memoShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	verdict, ok = s.entries[k]
	return verdict, ok
}

// store records a verdict for k, displacing the oldest entry once the
// shard is at its bound. Concurrent duplicate stores keep the existing
// entry: verdicts for identical triples are identical.
func (m *VerifyMemo) store(k memoKey, verdict bool) {
	s := &m.shards[binary.BigEndian.Uint32(k[:4])%memoShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		return
	}
	if s.entries == nil {
		s.entries = make(map[memoKey]bool)
	}
	s.entries[k] = verdict
	if len(s.ring) < m.perShard {
		s.ring = append(s.ring, k)
		return
	}
	delete(s.entries, s.ring[s.pos])
	s.ring[s.pos] = k
	s.pos = (s.pos + 1) % m.perShard
}

// auditInsert records one full (non-memoized) verification on the ledger.
func (m *VerifyMemo) auditInsert(verdict bool, note string) {
	aud := m.aud.Load()
	if aud == nil {
		return
	}
	v := "PASS"
	if !verdict {
		v = "FAIL"
	}
	aud.Emit(auditlog.Record{Event: auditlog.EventMemoInsert, Verdict: v, Note: note})
}

// Verify checks the detached rot.Sign-style signature under pub, consulting
// the memo first. A nil memo is valid and always verifies in full. Unlike
// the generic Check, this path builds no closure, so memo hits are
// allocation-free.
func (m *VerifyMemo) Verify(pub ed25519.PublicKey, message, sig []byte) bool {
	if m == nil {
		return rot.Verify(pub, message, sig)
	}
	k := memoKeyOf(pub, message, sig)
	if v, ok := m.lookup(k); ok {
		m.hits.Add(1)
		return v
	}
	m.misses.Add(1)
	v := rot.Verify(pub, message, sig)
	m.auditInsert(v, "full signature verification (memo miss)")
	m.store(k, v)
	return v
}

// Seed records an externally computed verdict for the triple — the memo
// transport batch verification uses: a verify window batch-checks its
// signatures, seeds the verdicts here, and the unchanged appraisal logic
// then consumes them as ordinary memo hits, which is what keeps batched
// and per-item verdicts bit-identical.
func (m *VerifyMemo) Seed(pub ed25519.PublicKey, message, sig []byte, verdict bool, note string) {
	if m == nil {
		return
	}
	k := memoKeyOf(pub, message, sig)
	if _, ok := m.lookup(k); ok {
		return
	}
	m.misses.Add(1)
	m.auditInsert(verdict, note)
	m.store(k, verdict)
}

// Known reports whether a verdict for the triple is already memoized,
// without counting a hit or a miss. Batch gatherers use it to skip
// triples that need no verification.
func (m *VerifyMemo) Known(pub ed25519.PublicKey, message, sig []byte) (verdict, ok bool) {
	if m == nil {
		return false, false
	}
	return m.lookup(memoKeyOf(pub, message, sig))
}

// Check returns the memoized verdict for (pub, message, sig), calling
// verify and recording its result on a miss. It is the generic entry point
// for memoizing any signature-shaped check (quotes); the evidence
// signature path uses the closure-free Verify.
func (m *VerifyMemo) Check(pub ed25519.PublicKey, message, sig []byte, verify func() bool) bool {
	if m == nil {
		return verify()
	}
	k := memoKeyOf(pub, message, sig)
	if v, ok := m.lookup(k); ok {
		m.hits.Add(1)
		return v
	}
	m.misses.Add(1)
	v := verify()
	m.auditInsert(v, "full signature verification (memo miss)")
	m.store(k, v)
	return v
}

// MemoStats reports memo effectiveness counters.
type MemoStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters. A nil memo reports zeros.
func (m *VerifyMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	st := MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load()}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the hit/miss counters without dropping entries.
func (m *VerifyMemo) ResetStats() {
	if m == nil {
		return
	}
	m.hits.Store(0)
	m.misses.Store(0)
}

// Instrument publishes the memo's effectiveness counters as lazy
// telemetry metrics, read from the counters the memo already maintains —
// the Check hot path is untouched. Nil-safe on both arguments.
func (m *VerifyMemo) Instrument(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.RegisterFunc("pera_verify_memo_hits_total", telemetry.KindCounter,
		func() float64 { return float64(m.hits.Load()) })
	reg.RegisterFunc("pera_verify_memo_misses_total", telemetry.KindCounter,
		func() float64 { return float64(m.misses.Load()) })
	reg.RegisterFunc("pera_verify_memo_entries", telemetry.KindGauge,
		func() float64 { return float64(m.Stats().Entries) })
}
