package evidence

import (
	"container/list"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"pera/internal/auditlog"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

// VerifyMemo is a bounded, sharded LRU memo of signature-verification
// outcomes: (public key, message digest, signature) → verdict. It is the
// paper's §5.2 inertia axis applied to the verifier side — high-inertia
// evidence re-presented across thousands of packets is byte-identical
// (claims are cached on the switch and Ed25519 signing is deterministic),
// so after the first full verification each re-presentation costs one
// SHA-256 over the candidate triple instead of one ed25519.Verify.
//
// Both verdicts are cacheable: a (key, message, signature) triple that
// failed once fails forever, so negative results are memoized too and a
// replayed forgery never earns a second full verification.
//
// The memo is safe for concurrent use; it is sharded so appraisal workers
// verifying different chains do not serialize behind one lock.
type VerifyMemo struct {
	shards   [memoShards]memoShard
	perShard int

	hits   atomic.Uint64
	misses atomic.Uint64
	aud    atomic.Pointer[auditlog.Writer]
}

// SetAudit attaches the audit ledger: the first full verification of
// each signature triple (the memo-miss path, where the real Ed25519
// check runs) is recorded as a memo_insert event with its verdict, so
// the ledger shows exactly which cryptographic checks were actually
// performed versus served from memory. A nil writer detaches.
func (m *VerifyMemo) SetAudit(w *auditlog.Writer) {
	if m == nil {
		return
	}
	m.aud.Store(w)
}

const memoShards = 16

// DefaultMemoCapacity bounds a memo built with capacity <= 0.
const DefaultMemoCapacity = 8192

type memoShard struct {
	mu      sync.Mutex
	entries map[memoKey]*list.Element
	order   *list.List // front = most recently used
}

// memoKey is the SHA-256 of the canonical (pubkey, signature, message)
// triple. Hashing the full triple (not just the message) means a colliding
// key would need a full SHA-256 collision to alias two verdicts.
type memoKey [sha256.Size]byte

type memoEntry struct {
	key     memoKey
	verdict bool
}

// NewVerifyMemo returns a memo bounded to capacity entries (rounded up to
// at least one entry per shard). capacity <= 0 selects
// DefaultMemoCapacity.
func NewVerifyMemo(capacity int) *VerifyMemo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	per := (capacity + memoShards - 1) / memoShards
	if per < 1 {
		per = 1
	}
	m := &VerifyMemo{perShard: per}
	for i := range m.shards {
		m.shards[i].entries = make(map[memoKey]*list.Element)
		m.shards[i].order = list.New()
	}
	return m
}

// memoKeyOf builds the lookup key. Fields are length-prefixed so the
// boundary between public key, signature and message is unambiguous.
func memoKeyOf(pub ed25519.PublicKey, message, sig []byte) memoKey {
	h := sha256.New()
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(pub)))
	h.Write(lp[:])
	h.Write(pub)
	binary.BigEndian.PutUint32(lp[:], uint32(len(sig)))
	h.Write(lp[:])
	h.Write(sig)
	h.Write(message)
	var k memoKey
	h.Sum(k[:0])
	return k
}

// Verify checks the detached rot.Sign-style signature under pub, consulting
// the memo first. A nil memo is valid and always verifies in full.
func (m *VerifyMemo) Verify(pub ed25519.PublicKey, message, sig []byte) bool {
	if m == nil {
		return rot.Verify(pub, message, sig)
	}
	return m.Check(pub, message, sig, func() bool {
		return rot.Verify(pub, message, sig)
	})
}

// Check returns the memoized verdict for (pub, message, sig), calling
// verify and recording its result on a miss. It is the generic entry point
// for memoizing any signature-shaped check (evidence signatures, quotes).
func (m *VerifyMemo) Check(pub ed25519.PublicKey, message, sig []byte, verify func() bool) bool {
	if m == nil {
		return verify()
	}
	k := memoKeyOf(pub, message, sig)
	s := &m.shards[binary.BigEndian.Uint32(k[:4])%memoShards]

	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*memoEntry).verdict
		s.mu.Unlock()
		m.hits.Add(1)
		return v
	}
	s.mu.Unlock()
	m.misses.Add(1)

	v := verify()

	if aud := m.aud.Load(); aud != nil {
		verdict := "PASS"
		if !v {
			verdict = "FAIL"
		}
		aud.Emit(auditlog.Record{
			Event: auditlog.EventMemoInsert, Verdict: verdict,
			Note: "full signature verification (memo miss)",
		})
	}

	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		// Another worker verified the same triple concurrently; keep the
		// existing entry (verdicts for identical triples are identical).
		s.order.MoveToFront(el)
	} else {
		s.entries[k] = s.order.PushFront(&memoEntry{key: k, verdict: v})
		for s.order.Len() > m.perShard {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*memoEntry).key)
		}
	}
	s.mu.Unlock()
	return v
}

// MemoStats reports memo effectiveness counters.
type MemoStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the counters. A nil memo reports zeros.
func (m *VerifyMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	st := MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load()}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// ResetStats zeroes the hit/miss counters without dropping entries.
func (m *VerifyMemo) ResetStats() {
	if m == nil {
		return
	}
	m.hits.Store(0)
	m.misses.Store(0)
}

// Instrument publishes the memo's effectiveness counters as lazy
// telemetry metrics, read from the counters the memo already maintains —
// the Check hot path is untouched. Nil-safe on both arguments.
func (m *VerifyMemo) Instrument(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.RegisterFunc("pera_verify_memo_hits_total", telemetry.KindCounter,
		func() float64 { return float64(m.hits.Load()) })
	reg.RegisterFunc("pera_verify_memo_misses_total", telemetry.KindCounter,
		func() float64 { return float64(m.misses.Load()) })
	reg.RegisterFunc("pera_verify_memo_entries", telemetry.KindGauge,
		func() float64 { return float64(m.Stats().Entries) })
}
