package evidence

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pera/internal/rot"
)

// Canonical binary encoding of evidence trees.
//
// The encoding is a preorder walk; each node starts with a one-byte kind
// tag followed by its fields, strings and byte slices as u32
// length-prefixed values. Canonicality (one tree ⇒ one byte string, and
// vice versa) matters because digests and signatures are computed over the
// encoding: any ambiguity would let an attacker present one tree to a
// signer and a different one to an appraiser.
//
// The same encoding travels in-band inside the PERA evidence header and
// out-of-band inside RATS messages.

// encodeLimits bound decoding so a hostile in-band header cannot cause
// unbounded allocation on a switch.
const (
	maxFieldLen = 1 << 20 // 1 MiB per string/bytes field
	maxNodes    = 1 << 16 // nodes per tree
)

// ErrDecode wraps all decoding failures.
var ErrDecode = errors.New("evidence: decode error")

// Encode serializes e into its canonical binary form. A nil tree encodes
// as the empty node.
func Encode(e *Evidence) []byte {
	var b []byte
	return appendEvidence(b, e)
}

// AppendEncode appends e's canonical form to buf and returns the extended
// slice, for allocation-conscious callers on the switch fast path.
func AppendEncode(buf []byte, e *Evidence) []byte {
	return appendEvidence(buf, e)
}

func appendEvidence(b []byte, e *Evidence) []byte {
	if e == nil {
		return append(b, byte(KindEmpty))
	}
	b = append(b, byte(e.Kind))
	switch e.Kind {
	case KindEmpty:
	case KindNonce:
		b = appendBytes(b, e.Nonce)
	case KindMeasurement:
		b = appendString(b, e.Measurer)
		b = appendString(b, e.Target)
		b = appendString(b, e.Place)
		b = append(b, byte(e.Detail))
		b = append(b, e.Value[:]...)
		b = appendBytes(b, e.Claims)
	case KindHash:
		b = append(b, e.Digest[:]...)
	case KindSig:
		b = appendString(b, e.Signer)
		b = appendBytes(b, e.Signature)
		b = appendEvidence(b, e.Left)
	case KindSeq, KindPar:
		b = appendEvidence(b, e.Left)
		b = appendEvidence(b, e.Right)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Decode parses a canonical encoding back into a tree. It rejects trailing
// bytes, oversized fields, and trees beyond maxNodes.
func Decode(data []byte) (*Evidence, error) {
	d := decoder{buf: data}
	e, err := d.evidence()
	if err != nil {
		return nil, err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(data)-d.off)
	}
	return e, nil
}

// DecodePrefix parses one evidence tree from the front of data and returns
// it with the number of bytes consumed, for streaming contexts (in-band
// headers carrying evidence followed by payload).
func DecodePrefix(data []byte) (*Evidence, int, error) {
	d := decoder{buf: data}
	e, err := d.evidence()
	if err != nil {
		return nil, 0, err
	}
	return e, d.off, nil
}

type decoder struct {
	buf   []byte
	off   int
	nodes int
}

func (d *decoder) evidence() (*Evidence, error) {
	d.nodes++
	if d.nodes > maxNodes {
		return nil, fmt.Errorf("%w: tree exceeds %d nodes", ErrDecode, maxNodes)
	}
	k, err := d.byte()
	if err != nil {
		return nil, err
	}
	e := &Evidence{Kind: Kind(k)}
	switch e.Kind {
	case KindEmpty:
	case KindNonce:
		if e.Nonce, err = d.bytes(); err != nil {
			return nil, err
		}
	case KindMeasurement:
		if e.Measurer, err = d.string(); err != nil {
			return nil, err
		}
		if e.Target, err = d.string(); err != nil {
			return nil, err
		}
		if e.Place, err = d.string(); err != nil {
			return nil, err
		}
		db, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.Detail = Detail(db)
		if !e.Detail.Valid() {
			return nil, fmt.Errorf("%w: invalid detail %d", ErrDecode, db)
		}
		if err := d.digest(&e.Value); err != nil {
			return nil, err
		}
		if e.Claims, err = d.bytes(); err != nil {
			return nil, err
		}
	case KindHash:
		if err := d.digest(&e.Digest); err != nil {
			return nil, err
		}
	case KindSig:
		if e.Signer, err = d.string(); err != nil {
			return nil, err
		}
		if e.Signature, err = d.bytes(); err != nil {
			return nil, err
		}
		if e.Left, err = d.evidence(); err != nil {
			return nil, err
		}
	case KindSeq, KindPar:
		if e.Left, err = d.evidence(); err != nil {
			return nil, err
		}
		if e.Right, err = d.evidence(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrDecode, k)
	}
	return e, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrDecode)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) digest(out *rot.Digest) error {
	if d.off+rot.DigestSize > len(d.buf) {
		return fmt.Errorf("%w: truncated digest", ErrDecode)
	}
	copy(out[:], d.buf[d.off:d.off+rot.DigestSize])
	d.off += rot.DigestSize
	return nil
}

func (d *decoder) bytes() ([]byte, error) {
	if d.off+4 > len(d.buf) {
		return nil, fmt.Errorf("%w: truncated length", ErrDecode)
	}
	n := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if n > maxFieldLen {
		return nil, fmt.Errorf("%w: field of %d bytes exceeds limit", ErrDecode, n)
	}
	if d.off+int(n) > len(d.buf) {
		return nil, fmt.Errorf("%w: truncated field", ErrDecode)
	}
	v := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return v, nil
}

func (d *decoder) string() (string, error) {
	b, err := d.bytes()
	return string(b), err
}

// EncodedSize returns len(Encode(e)) without building the encoding, used
// by the Fig. 2/Fig. 4 harnesses to account header overhead.
func EncodedSize(e *Evidence) int {
	if e == nil {
		return 1
	}
	n := 1
	switch e.Kind {
	case KindNonce:
		n += 4 + len(e.Nonce)
	case KindMeasurement:
		n += 4 + len(e.Measurer)
		n += 4 + len(e.Target)
		n += 4 + len(e.Place)
		n += 1 + rot.DigestSize
		n += 4 + len(e.Claims)
	case KindHash:
		n += rot.DigestSize
	case KindSig:
		n += 4 + len(e.Signer)
		n += 4 + len(e.Signature)
		n += EncodedSize(e.Left)
	case KindSeq, KindPar:
		n += EncodedSize(e.Left) + EncodedSize(e.Right)
	}
	return n
}
