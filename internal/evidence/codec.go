package evidence

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"pera/internal/rot"
)

// Canonical binary encoding of evidence trees.
//
// The encoding is a preorder walk; each node starts with a one-byte kind
// tag followed by its fields, strings and byte slices as u32
// length-prefixed values. Canonicality (one tree ⇒ one byte string, and
// vice versa) matters because digests and signatures are computed over the
// encoding: any ambiguity would let an attacker present one tree to a
// signer and a different one to an appraiser.
//
// The same encoding travels in-band inside the PERA evidence header and
// out-of-band inside RATS messages.

// encodeLimits bound decoding so a hostile in-band header cannot cause
// unbounded allocation on a switch.
const (
	maxFieldLen = 1 << 20 // 1 MiB per string/bytes field
	maxNodes    = 1 << 16 // nodes per tree
)

// ErrDecode wraps all decoding failures.
var ErrDecode = errors.New("evidence: decode error")

// Encode serializes e into its canonical binary form. A nil tree encodes
// as the empty node.
func Encode(e *Evidence) []byte {
	var b []byte
	return appendEvidence(b, e)
}

// AppendEncode appends e's canonical form to buf and returns the extended
// slice, for allocation-conscious callers on the switch fast path.
func AppendEncode(buf []byte, e *Evidence) []byte {
	return appendEvidence(buf, e)
}

func appendEvidence(b []byte, e *Evidence) []byte {
	if e == nil {
		return append(b, byte(KindEmpty))
	}
	b = append(b, byte(e.Kind))
	switch e.Kind {
	case KindEmpty:
	case KindNonce:
		b = appendBytes(b, e.Nonce)
	case KindMeasurement:
		b = appendString(b, e.Measurer)
		b = appendString(b, e.Target)
		b = appendString(b, e.Place)
		b = append(b, byte(e.Detail))
		b = append(b, e.Value[:]...)
		b = appendBytes(b, e.Claims)
	case KindHash:
		b = append(b, e.Digest[:]...)
	case KindSig:
		b = appendString(b, e.Signer)
		b = appendBytes(b, e.Signature)
		b = appendEvidence(b, e.Left)
	case KindSeq, KindPar:
		b = appendEvidence(b, e.Left)
		b = appendEvidence(b, e.Right)
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Decode parses a canonical encoding back into a tree. It rejects trailing
// bytes, oversized fields, and trees beyond maxNodes. Each field gets its
// own copy of the input bytes; for the per-packet path prefer DecodeShared.
func Decode(data []byte) (*Evidence, error) {
	d := decoder{buf: data}
	e, err := d.evidence()
	if err != nil {
		return nil, err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(data)-d.off)
	}
	return e, nil
}

// DecodeShared parses a canonical encoding with shared backing storage:
// the input is copied ONCE into a private slab, every decoded byte field
// aliases that slab (capacity-clamped, so appending to a field reallocates
// instead of clobbering a sibling), node structs come from chunked arenas,
// and string fields go through a bounded intern table (measurer, place and
// signer names recur on every packet of a flow). The result never aliases
// data — callers may reuse or mutate their buffer freely — but the nodes
// of one tree share storage: treat a DecodeShared tree as immutable, or
// replace fields wholesale rather than writing into their byte slices.
func DecodeShared(data []byte) (*Evidence, error) {
	slab := append([]byte(nil), data...)
	d := decoder{buf: slab, shared: true}
	e, err := d.evidence()
	if err != nil {
		return nil, err
	}
	if d.off != len(slab) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(slab)-d.off)
	}
	return e, nil
}

// internTab deduplicates decoded strings across packets. The table is
// bounded: oversized strings bypass it and a full table is dropped
// wholesale (hostile unique-string floods degrade to plain allocation,
// they cannot grow memory without bound).
var internTab struct {
	sync.RWMutex
	m map[string]string
}

const (
	internCap    = 4096
	internMaxLen = 128
)

func internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	internTab.RLock()
	s, ok := internTab.m[string(b)] // key lookup does not allocate
	internTab.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internTab.Lock()
	if internTab.m == nil || len(internTab.m) >= internCap {
		internTab.m = make(map[string]string, 64)
	}
	internTab.m[s] = s
	internTab.Unlock()
	return s
}

// DecodePrefix parses one evidence tree from the front of data and returns
// it with the number of bytes consumed, for streaming contexts (in-band
// headers carrying evidence followed by payload).
func DecodePrefix(data []byte) (*Evidence, int, error) {
	d := decoder{buf: data}
	e, err := d.evidence()
	if err != nil {
		return nil, 0, err
	}
	return e, d.off, nil
}

type decoder struct {
	buf   []byte
	off   int
	nodes int

	// shared-mode state (DecodeShared): fields alias buf, nodes come from
	// arena chunks, strings are interned.
	shared bool
	arena  []Evidence
}

// arenaChunk sizes the node arena: typical per-packet chains are a few
// dozen nodes, so one chunk covers a whole decode.
const arenaChunk = 32

func (d *decoder) node(k Kind) *Evidence {
	if !d.shared {
		return &Evidence{Kind: k}
	}
	if len(d.arena) == 0 {
		d.arena = make([]Evidence, arenaChunk)
	}
	e := &d.arena[0]
	d.arena = d.arena[1:]
	e.Kind = k
	return e
}

func (d *decoder) evidence() (*Evidence, error) {
	d.nodes++
	if d.nodes > maxNodes {
		return nil, fmt.Errorf("%w: tree exceeds %d nodes", ErrDecode, maxNodes)
	}
	k, err := d.byte()
	if err != nil {
		return nil, err
	}
	e := d.node(Kind(k))
	switch e.Kind {
	case KindEmpty:
	case KindNonce:
		if e.Nonce, err = d.bytes(); err != nil {
			return nil, err
		}
	case KindMeasurement:
		if e.Measurer, err = d.string(); err != nil {
			return nil, err
		}
		if e.Target, err = d.string(); err != nil {
			return nil, err
		}
		if e.Place, err = d.string(); err != nil {
			return nil, err
		}
		db, err := d.byte()
		if err != nil {
			return nil, err
		}
		e.Detail = Detail(db)
		if !e.Detail.Valid() {
			return nil, fmt.Errorf("%w: invalid detail %d", ErrDecode, db)
		}
		if err := d.digest(&e.Value); err != nil {
			return nil, err
		}
		if e.Claims, err = d.bytes(); err != nil {
			return nil, err
		}
	case KindHash:
		if err := d.digest(&e.Digest); err != nil {
			return nil, err
		}
	case KindSig:
		if e.Signer, err = d.string(); err != nil {
			return nil, err
		}
		if e.Signature, err = d.bytes(); err != nil {
			return nil, err
		}
		if e.Left, err = d.evidence(); err != nil {
			return nil, err
		}
	case KindSeq, KindPar:
		if e.Left, err = d.evidence(); err != nil {
			return nil, err
		}
		if e.Right, err = d.evidence(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrDecode, k)
	}
	return e, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated", ErrDecode)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) digest(out *rot.Digest) error {
	if d.off+rot.DigestSize > len(d.buf) {
		return fmt.Errorf("%w: truncated digest", ErrDecode)
	}
	copy(out[:], d.buf[d.off:d.off+rot.DigestSize])
	d.off += rot.DigestSize
	return nil
}

func (d *decoder) bytes() ([]byte, error) {
	if d.off+4 > len(d.buf) {
		return nil, fmt.Errorf("%w: truncated length", ErrDecode)
	}
	n := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if n > maxFieldLen {
		return nil, fmt.Errorf("%w: field of %d bytes exceeds limit", ErrDecode, n)
	}
	if d.off+int(n) > len(d.buf) {
		return nil, fmt.Errorf("%w: truncated field", ErrDecode)
	}
	var v []byte
	if n > 0 {
		if d.shared {
			v = d.buf[d.off : d.off+int(n) : d.off+int(n)]
		} else {
			v = append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
		}
	}
	d.off += int(n)
	return v, nil
}

func (d *decoder) string() (string, error) {
	b, err := d.bytes()
	if err != nil {
		return "", err
	}
	if d.shared {
		return internString(b), nil
	}
	return string(b), nil
}

// EncodedSize returns len(Encode(e)) without building the encoding, used
// by the Fig. 2/Fig. 4 harnesses to account header overhead.
func EncodedSize(e *Evidence) int {
	if e == nil {
		return 1
	}
	n := 1
	switch e.Kind {
	case KindNonce:
		n += 4 + len(e.Nonce)
	case KindMeasurement:
		n += 4 + len(e.Measurer)
		n += 4 + len(e.Target)
		n += 4 + len(e.Place)
		n += 1 + rot.DigestSize
		n += 4 + len(e.Claims)
	case KindHash:
		n += rot.DigestSize
	case KindSig:
		n += 4 + len(e.Signer)
		n += 4 + len(e.Signature)
		n += EncodedSize(e.Left)
	case KindSeq, KindPar:
		n += EncodedSize(e.Left) + EncodedSize(e.Right)
	}
	return n
}
