package evidence

import (
	"bytes"
	"testing"

	"pera/internal/rot"
)

// allocEvidence builds a representative signed chain for the allocation
// and aliasing tests below.
func allocEvidence(t testing.TB) (*Evidence, *rot.RoT) {
	t.Helper()
	r, err := rot.New("sw1")
	if err != nil {
		t.Fatal(err)
	}
	m1 := Measurement("sw1", "prog", "sw1", DetailProgram, rot.Digest{1: 1}, nil)
	m2 := Measurement("sw1", "tables", "sw1", DetailTables, rot.Digest{2: 2}, nil)
	return Sign(r, Seq(m1, m2)), r
}

// TestAppendSigMessageZeroAlloc pins the single-buffer signature message
// construction: appending into a buffer with sufficient capacity must not
// allocate at all, and SigMessageSize must predict the exact length so
// callers can size that buffer up front.
func TestAppendSigMessageZeroAlloc(t *testing.T) {
	ev, _ := allocEvidence(t)
	want := SigMessageSize("sw1", ev)
	buf := make([]byte, 0, want)
	if got := len(AppendSigMessage(buf, "sw1", ev)); got != want {
		t.Fatalf("SigMessageSize predicted %d, AppendSigMessage wrote %d", want, got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendSigMessage(buf[:0], "sw1", ev)
	})
	if allocs != 0 {
		t.Fatalf("AppendSigMessage into presized buffer allocated %.1f/op, want 0", allocs)
	}
}

// TestSigMessageMatchesAppend keeps the two construction paths (the
// allocation-free append and the sizing helper) byte-identical.
func TestSigMessageMatchesAppend(t *testing.T) {
	ev, _ := allocEvidence(t)
	a := AppendSigMessage(nil, "sw1", ev)
	b := sigMessage("sw1", ev)
	if !bytes.Equal(a, b) {
		t.Fatalf("sigMessage and AppendSigMessage diverge:\n %x\n %x", a, b)
	}
}

// TestDecodeSharedDoesNotAliasInput is the zero-copy decoding contract:
// DecodeShared copies the wire bytes into one private slab, so zeroing
// the input after decode must leave the tree untouched.
func TestDecodeSharedDoesNotAliasInput(t *testing.T) {
	ev, _ := allocEvidence(t)
	wire := Encode(ev)
	dec, err := DecodeShared(wire)
	if err != nil {
		t.Fatal(err)
	}
	before := Encode(dec)
	for i := range wire {
		wire[i] = 0
	}
	after := Encode(dec)
	if !bytes.Equal(before, after) {
		t.Fatal("decoded tree aliases the input buffer")
	}
	if !bytes.Equal(before, Encode(ev)) {
		t.Fatal("decode round-trip changed the encoding")
	}
}
