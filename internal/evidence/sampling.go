package evidence

import (
	"fmt"
	"sync"
	"time"
)

// Sampling is the paper's Fig. 4 x-axis: how often evidence is produced
// relative to traffic. "For some situations, it might be adequate to
// expect evidence to be gathered for each packet ... in other situations,
// such per-packet overhead might be cumbersome and prohibitive." (§5.2)
type Sampling uint8

const (
	// SamplePerPacket attests every packet — maximal assurance and cost.
	SamplePerPacket Sampling = iota
	// SamplePerFlow attests the first packet of each flow, relying on
	// flow affinity for the rest.
	SamplePerFlow
	// SamplePerEpoch attests at most once per time epoch regardless of
	// traffic volume.
	SamplePerEpoch
	// SampleEveryN attests every Nth packet (probabilistic coverage).
	SampleEveryN
	samplingCount
)

var samplingNames = [...]string{"per-packet", "per-flow", "per-epoch", "every-n"}

func (s Sampling) String() string {
	if int(s) < len(samplingNames) {
		return samplingNames[s]
	}
	return fmt.Sprintf("sampling(%d)", uint8(s))
}

// Valid reports whether s names a defined sampling mode.
func (s Sampling) Valid() bool { return s < samplingCount }

// Samplings lists the fixed modes used by the Fig. 4 sweep.
func Samplings() []Sampling {
	return []Sampling{SamplePerPacket, SamplePerFlow, SamplePerEpoch}
}

// Sampler decides, per packet, whether to produce evidence. It is safe
// for concurrent use by one switch's pipeline workers.
type Sampler struct {
	mu     sync.Mutex
	mode   Sampling
	n      uint64 // for SampleEveryN
	epoch  time.Duration
	clock  func() time.Time
	count  uint64
	flows  map[uint64]struct{}
	epochT time.Time

	decisions uint64
	sampled   uint64
}

// SamplerConfig configures a Sampler.
type SamplerConfig struct {
	Mode  Sampling
	N     uint64        // SampleEveryN period; 0 defaults to 1
	Epoch time.Duration // SamplePerEpoch length; 0 defaults to 1s
	Clock func() time.Time
}

// NewSampler builds a sampler; zero-value config fields get defaults.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.N == 0 {
		cfg.N = 1
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Sampler{
		mode:  cfg.Mode,
		n:     cfg.N,
		epoch: cfg.Epoch,
		clock: cfg.Clock,
		flows: make(map[uint64]struct{}),
	}
}

// Sample reports whether evidence should be produced for a packet
// belonging to flow flowHash.
func (s *Sampler) Sample(flowHash uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.decisions++
	take := false
	switch s.mode {
	case SamplePerPacket:
		take = true
	case SamplePerFlow:
		if _, seen := s.flows[flowHash]; !seen {
			s.flows[flowHash] = struct{}{}
			take = true
		}
	case SamplePerEpoch:
		now := s.clock()
		if s.epochT.IsZero() || now.Sub(s.epochT) >= s.epoch {
			s.epochT = now
			take = true
		}
	case SampleEveryN:
		s.count++
		take = s.count%s.n == 0
	}
	if take {
		s.sampled++
	}
	return take
}

// ResetFlows forgets seen flows (e.g. at a flow-table epoch boundary), so
// long-lived flows are re-attested periodically even in per-flow mode.
func (s *Sampler) ResetFlows() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flows = make(map[uint64]struct{})
}

// Rate returns sampled/decisions, the effective evidence production rate.
func (s *Sampler) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.decisions == 0 {
		return 0
	}
	return float64(s.sampled) / float64(s.decisions)
}

// Counts returns (decisions, sampled).
func (s *Sampler) Counts() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decisions, s.sampled
}
