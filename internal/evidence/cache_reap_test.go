package evidence

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pera/internal/auditlog"
	"pera/internal/telemetry"
)

// TestCacheLenIsPure pins the Len/Reap split: Len must not evict, so a
// telemetry gauge sampling cache size cannot change what it observes.
func TestCacheLenIsPure(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Put("sw2", "prog", DetailProgram, sampleMeasurement())
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	clk.Advance(2 * time.Hour) // past the 1h program inertia

	// Expired entries are still resident: Len reads, never reaps.
	if got := c.Len(); got != 2 {
		t.Fatalf("len after expiry = %d, want 2 (expired but unreaped)", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("second len = %d — Len mutated the cache", got)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("Len drove %d evictions", ev)
	}

	// Reap is the explicit eviction pass.
	if n := c.Reap(); n != 2 {
		t.Fatalf("reap removed %d, want 2", n)
	}
	if c.Len() != 0 || c.Stats().Evictions != 2 {
		t.Fatalf("after reap: len=%d stats=%+v", c.Len(), c.Stats())
	}
	if n := c.Reap(); n != 0 {
		t.Fatalf("second reap removed %d", n)
	}
}

// TestCachePutReaps pins the other half of the split: entries that are
// never re-requested still get evicted, because Put sweeps its shard.
func TestCachePutReaps(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	clk.Advance(2 * time.Hour)
	// Same (place, target, detail) → same shard: the expired entry is
	// reaped before the new one is stored.
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("put-side reaping evicted %d, want 1", ev)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

// TestCacheConcurrentPutReap races explicit Reap passes against Puts
// (which sweep their own shard) over a population of expired entries.
// Whatever the interleaving, each expired entry must be evicted exactly
// once — the eviction counter can neither double-count an entry claimed
// by two sweepers nor miss one — and every eviction must land on the
// audit ledger as a cache_evict record with the chain still intact.
func TestCacheConcurrentPutReap(t *testing.T) {
	const expired = 64
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)

	var ledger bytes.Buffer
	aud := auditlog.NewWriter(&ledger, auditlog.Options{})
	c.SetAudit(aud)

	for i := 0; i < expired; i++ {
		c.Put(fmt.Sprintf("sw%d", i), "prog", DetailProgram, sampleMeasurement())
	}
	clk.Advance(2 * time.Hour) // past the 1h program inertia

	var (
		wg      sync.WaitGroup
		reaped  atomic.Int64
		workers = 8
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				reaped.Add(int64(c.Reap()))
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Fresh keys: stored at the advanced clock, not expired.
				c.Put(fmt.Sprintf("fresh%d-%d", g, i), "prog", DetailProgram, sampleMeasurement())
			}
		}(g)
	}
	wg.Wait()

	if ev := c.Stats().Evictions; ev != expired {
		t.Fatalf("evictions = %d, want exactly %d", ev, expired)
	}
	if n := reaped.Load(); n > expired {
		t.Fatalf("Reap calls claimed %d removals, more than the %d expired entries", n, expired)
	}
	if got, want := c.Len(), workers*4; got != want {
		t.Fatalf("len = %d, want %d fresh entries", got, want)
	}
	if n := c.Reap(); n != 0 {
		t.Fatalf("follow-up reap removed %d fresh entries", n)
	}

	// Every eviction is on the ledger exactly once, and the chain holds.
	aud.Close()
	if _, err := auditlog.VerifyReader(bytes.NewReader(ledger.Bytes()), auditlog.DevKey()); err != nil {
		t.Fatalf("ledger verification: %v", err)
	}
	recs, err := auditlog.ReadRecords(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evicts := auditlog.Query{Event: string(auditlog.EventCacheEvict)}.Filter(recs)
	if len(evicts) != expired {
		t.Fatalf("cache_evict records = %d, want %d", len(evicts), expired)
	}
}

func TestCacheInstrument(t *testing.T) {
	c := NewCache()
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Get("sw1", "prog", DetailProgram) // hit
	c.Get("sw1", "none", DetailProgram) // miss
	snap := reg.Snapshot()
	if v := snap.Value("pera_evidence_cache_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}

func TestVerifyMemoInstrument(t *testing.T) {
	m := NewVerifyMemo(0)
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	s := testSigner("sw1")
	ev := Sign(s, Seq(sampleMeasurement(), Nonce([]byte("n"))))
	keys := KeyMap{"sw1": s.Public()}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v := snap.Value("pera_verify_memo_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_verify_memo_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_verify_memo_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}
