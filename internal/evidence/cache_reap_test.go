package evidence

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pera/internal/auditlog"
	"pera/internal/telemetry"
)

// TestCacheLenIsPure pins the Len/Reap split: Len must not evict, so a
// telemetry gauge sampling cache size cannot change what it observes.
func TestCacheLenIsPure(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Put("sw2", "prog", DetailProgram, sampleMeasurement())
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	clk.Advance(2 * time.Hour) // past the 1h program inertia

	// Expired entries are still resident: Len reads, never reaps.
	if got := c.Len(); got != 2 {
		t.Fatalf("len after expiry = %d, want 2 (expired but unreaped)", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("second len = %d — Len mutated the cache", got)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("Len drove %d evictions", ev)
	}

	// Reap is the explicit eviction pass.
	if n := c.Reap(); n != 2 {
		t.Fatalf("reap removed %d, want 2", n)
	}
	if c.Len() != 0 || c.Stats().Evictions != 2 {
		t.Fatalf("after reap: len=%d stats=%+v", c.Len(), c.Stats())
	}
	if n := c.Reap(); n != 0 {
		t.Fatalf("second reap removed %d", n)
	}
}

// TestCachePutReaps pins the other half of the split: entries that are
// never re-requested still get evicted, because Put sweeps its shard.
func TestCachePutReaps(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	clk.Advance(2 * time.Hour)
	// Same (place, target, detail) → same shard: the expired entry is
	// reaped before the new one is stored.
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("put-side reaping evicted %d, want 1", ev)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

// TestCacheConcurrentPutReap races explicit Reap passes against Puts
// (which sweep their own shard) over a population of expired entries.
// Whatever the interleaving, each expired entry must be evicted exactly
// once — the eviction counter can neither double-count an entry claimed
// by two sweepers nor miss one — and every eviction must land on the
// audit ledger as a cache_expire record with the chain still intact.
func TestCacheConcurrentPutReap(t *testing.T) {
	const expired = 64
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)

	var ledger bytes.Buffer
	aud := auditlog.NewWriter(&ledger, auditlog.Options{})
	c.SetAudit(aud)

	for i := 0; i < expired; i++ {
		c.Put(fmt.Sprintf("sw%d", i), "prog", DetailProgram, sampleMeasurement())
	}
	clk.Advance(2 * time.Hour) // past the 1h program inertia

	var (
		wg      sync.WaitGroup
		reaped  atomic.Int64
		workers = 8
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				reaped.Add(int64(c.Reap()))
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Fresh keys: stored at the advanced clock, not expired.
				c.Put(fmt.Sprintf("fresh%d-%d", g, i), "prog", DetailProgram, sampleMeasurement())
			}
		}(g)
	}
	wg.Wait()

	if ev := c.Stats().Evictions; ev != expired {
		t.Fatalf("evictions = %d, want exactly %d", ev, expired)
	}
	if n := reaped.Load(); n > expired {
		t.Fatalf("Reap calls claimed %d removals, more than the %d expired entries", n, expired)
	}
	if got, want := c.Len(), workers*4; got != want {
		t.Fatalf("len = %d, want %d fresh entries", got, want)
	}
	if n := c.Reap(); n != 0 {
		t.Fatalf("follow-up reap removed %d fresh entries", n)
	}

	// Every eviction is on the ledger exactly once, and the chain holds.
	aud.Close()
	if _, err := auditlog.VerifyReader(bytes.NewReader(ledger.Bytes()), auditlog.DevKey()); err != nil {
		t.Fatalf("ledger verification: %v", err)
	}
	recs, err := auditlog.ReadRecords(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evicts := auditlog.Query{Event: string(auditlog.EventCacheExpire)}.Filter(recs)
	if len(evicts) != expired {
		t.Fatalf("cache_expire records = %d, want %d", len(evicts), expired)
	}
}

// TestCacheExpiryBoundary pins the freshness boundary: an entry read in
// the exact tick its inertia window closes counts stale, not fresh.
// One tick earlier it is still served; at the boundary it expires, is
// counted as a miss+eviction, and lands on the ledger as cache_expire.
func TestCacheExpiryBoundary(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	var ledger bytes.Buffer
	aud := auditlog.NewWriter(&ledger, auditlog.Options{})
	c.SetAudit(aud)

	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	ttl := DetailProgram.Inertia()

	clk.Advance(ttl - time.Nanosecond)
	if _, ok := c.Get("sw1", "prog", DetailProgram); !ok {
		t.Fatal("one tick before expiry: entry must still be fresh")
	}

	clk.Advance(time.Nanosecond) // now == expires exactly
	if _, ok := c.Get("sw1", "prog", DetailProgram); ok {
		t.Fatal("read in the expiry tick returned fresh evidence")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 eviction", st)
	}

	aud.Close()
	recs, err := auditlog.ReadRecords(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(auditlog.Query{Event: string(auditlog.EventCacheExpire)}.Filter(recs)); n != 1 {
		t.Fatalf("cache_expire records = %d, want 1", n)
	}
}

// TestCacheNotify exercises the SetNotify hook: Put, Hit, and Expire
// events arrive in order with the resident age and stored TTL, and a
// per-detail SetTTL override replaces the paper's inertia window.
func TestCacheNotify(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.SetTTL(DetailTables, 16*time.Second) // compress the 1min window

	var mu sync.Mutex
	var events []CacheEvent
	c.SetNotify(func(e CacheEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	c.Put("sw1", "tables", DetailTables, sampleMeasurement())
	clk.Advance(10 * time.Second)
	if _, ok := c.Get("sw1", "tables", DetailTables); !ok {
		t.Fatal("entry should be fresh at 10s under the 16s override")
	}
	clk.Advance(6 * time.Second) // age 16s == overridden TTL
	if _, ok := c.Get("sw1", "tables", DetailTables); ok {
		t.Fatal("entry must be stale at the overridden TTL")
	}

	mu.Lock()
	got := append([]CacheEvent(nil), events...)
	mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("events = %d, want 3 (put, hit, expire)", len(got))
	}
	want := []CacheEventKind{CachePut, CacheHit, CacheExpire}
	for i, k := range want {
		if got[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, got[i].Kind, k)
		}
		if got[i].Place != "sw1" || got[i].Detail != DetailTables {
			t.Fatalf("event %d = %+v", i, got[i])
		}
		if got[i].TTL != 16*time.Second {
			t.Fatalf("event %d TTL = %v, want overridden 16s", i, got[i].TTL)
		}
	}
	if got[1].Age != 10*time.Second {
		t.Fatalf("hit age = %v, want 10s", got[1].Age)
	}
	if got[2].Age != 16*time.Second {
		t.Fatalf("expire age = %v, want 16s", got[2].Age)
	}

	// Restoring the default re-arms the paper's inertia table.
	c.SetTTL(DetailTables, 0)
	c.Put("sw1", "tables", DetailTables, sampleMeasurement())
	mu.Lock()
	last := events[len(events)-1]
	mu.Unlock()
	if last.Kind != CachePut || last.TTL != DetailTables.Inertia() {
		t.Fatalf("post-restore put = %+v, want default inertia TTL", last)
	}
}

func TestCacheInstrument(t *testing.T) {
	c := NewCache()
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Get("sw1", "prog", DetailProgram) // hit
	c.Get("sw1", "none", DetailProgram) // miss
	snap := reg.Snapshot()
	if v := snap.Value("pera_evidence_cache_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}

func TestVerifyMemoInstrument(t *testing.T) {
	m := NewVerifyMemo(0)
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	s := testSigner("sw1")
	ev := Sign(s, Seq(sampleMeasurement(), Nonce([]byte("n"))))
	keys := KeyMap{"sw1": s.Public()}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v := snap.Value("pera_verify_memo_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_verify_memo_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_verify_memo_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}
