package evidence

import (
	"testing"
	"time"

	"pera/internal/telemetry"
)

// TestCacheLenIsPure pins the Len/Reap split: Len must not evict, so a
// telemetry gauge sampling cache size cannot change what it observes.
func TestCacheLenIsPure(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Put("sw2", "prog", DetailProgram, sampleMeasurement())
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	clk.Advance(2 * time.Hour) // past the 1h program inertia

	// Expired entries are still resident: Len reads, never reaps.
	if got := c.Len(); got != 2 {
		t.Fatalf("len after expiry = %d, want 2 (expired but unreaped)", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("second len = %d — Len mutated the cache", got)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("Len drove %d evictions", ev)
	}

	// Reap is the explicit eviction pass.
	if n := c.Reap(); n != 2 {
		t.Fatalf("reap removed %d, want 2", n)
	}
	if c.Len() != 0 || c.Stats().Evictions != 2 {
		t.Fatalf("after reap: len=%d stats=%+v", c.Len(), c.Stats())
	}
	if n := c.Reap(); n != 0 {
		t.Fatalf("second reap removed %d", n)
	}
}

// TestCachePutReaps pins the other half of the split: entries that are
// never re-requested still get evicted, because Put sweeps its shard.
func TestCachePutReaps(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := NewCacheWithClock(clk.Now)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	clk.Advance(2 * time.Hour)
	// Same (place, target, detail) → same shard: the expired entry is
	// reaped before the new one is stored.
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("put-side reaping evicted %d, want 1", ev)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheInstrument(t *testing.T) {
	c := NewCache()
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	c.Put("sw1", "prog", DetailProgram, sampleMeasurement())
	c.Get("sw1", "prog", DetailProgram) // hit
	c.Get("sw1", "none", DetailProgram) // miss
	snap := reg.Snapshot()
	if v := snap.Value("pera_evidence_cache_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_evidence_cache_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}

func TestVerifyMemoInstrument(t *testing.T) {
	m := NewVerifyMemo(0)
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	s := testSigner("sw1")
	ev := Sign(s, Seq(sampleMeasurement(), Nonce([]byte("n"))))
	keys := KeyMap{"sw1": s.Public()}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifySignaturesMemo(ev, keys, m); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v := snap.Value("pera_verify_memo_misses_total"); v != 1 {
		t.Fatalf("misses = %v", v)
	}
	if v := snap.Value("pera_verify_memo_hits_total"); v != 1 {
		t.Fatalf("hits = %v", v)
	}
	if v := snap.Value("pera_verify_memo_entries"); v != 1 {
		t.Fatalf("entries = %v", v)
	}
}
