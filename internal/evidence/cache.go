package evidence

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/telemetry"
)

// Cache is the inertia-aware evidence cache from the paper's §5.2/Fig. 4:
// "High-inertia attestations are more easily cached since they take longer
// to expire." Entries are keyed by (place, target, detail) and expire after
// the detail level's inertia window. A Clock function is injectable so
// simulations and tests control time; it defaults to time.Now.
//
// The cache is striped into lock shards so concurrent switch pipelines
// (and many switches sharing one cache) do not serialize behind a single
// mutex; each shard owns its own entry map and counters. Expired entries
// are reaped on Put (and on demand via Reap), so an entry that is never
// re-requested still cannot leak past the next insertion into its shard;
// Len is a pure read and never mutates.
//
// The cache also records hit/miss counters, which the Fig. 4 benchmark
// sweep reads to show the caching cliff between high- and low-inertia
// detail levels.
type Cache struct {
	shards [cacheShards]cacheShard
	clock  func() time.Time
	aud    atomic.Pointer[auditlog.Writer]
}

const cacheShards = 16

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheKey struct {
	place  string
	target string
	detail Detail
}

type cacheEntry struct {
	ev      *Evidence
	expires time.Time
}

// NewCache returns an empty cache using the real clock.
func NewCache() *Cache {
	return NewCacheWithClock(time.Now)
}

// NewCacheWithClock returns a cache driven by the given clock, for
// simulated time.
func NewCacheWithClock(clock func() time.Time) *Cache {
	c := &Cache{clock: clock}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]cacheEntry)
	}
	return c
}

// SetAudit attaches the audit ledger: expirations (reaped on Put, Reap,
// or an expired Get) are recorded as cache_evict events, so an auditor
// can see exactly when high-inertia evidence aged out and forced fresh
// measurement. Hit/miss events are emitted by the switch, which knows
// the flow context the cache cannot see. A nil writer detaches.
func (c *Cache) SetAudit(w *auditlog.Writer) {
	if c == nil {
		return
	}
	c.aud.Store(w)
}

// emitEvict records one expiry on the ledger (nil-safe).
func emitEvict(aud *auditlog.Writer, k cacheKey) {
	if aud != nil {
		aud.Emit(auditlog.Record{
			Event: auditlog.EventCacheEvict, Place: k.place,
			Target: k.target, Detail: k.detail.String(), Note: "inertia window elapsed",
		})
	}
}

// shard maps a key onto its lock stripe.
func (c *Cache) shard(k cacheKey) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(k.place))
	h.Write([]byte{0, byte(k.detail)})
	h.Write([]byte(k.target))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns cached evidence for (place, target, detail) if present and
// unexpired.
func (c *Cache) Get(place, target string, detail Detail) (*Evidence, bool) {
	k := cacheKey{place, target, detail}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	if c.clock().After(e.expires) {
		delete(s.entries, k)
		s.evictions++
		s.misses++
		emitEvict(c.aud.Load(), k)
		return nil, false
	}
	s.hits++
	return e.ev, true
}

// Put stores ev under (place, target, detail) with the detail level's
// inertia as TTL. Zero-inertia details (per-packet evidence) are not
// cached at all — there is nothing to reuse. Put also reaps any expired
// entries in the key's shard, so entries that are never re-requested are
// still evicted rather than leaking forever.
func (c *Cache) Put(place, target string, detail Detail, ev *Evidence) {
	ttl := detail.Inertia()
	if ttl == 0 {
		return
	}
	k := cacheKey{place, target, detail}
	now := c.clock()
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(now, c.aud.Load())
	s.entries[k] = cacheEntry{ev: ev, expires: now.Add(ttl)}
}

// reapLocked deletes expired entries from the shard and returns how many
// were evicted, recording each on the ledger when one is attached.
// Caller holds s.mu (Emit never blocks, so holding it is safe).
func (s *cacheShard) reapLocked(now time.Time, aud *auditlog.Writer) int {
	n := 0
	for k, e := range s.entries {
		if now.After(e.expires) {
			delete(s.entries, k)
			s.evictions++
			n++
			emitEvict(aud, k)
		}
	}
	return n
}

// Reap evicts every expired entry across all shards and returns the
// number removed. It is the explicit form of the reaping Put performs on
// its own shard; telemetry and tests that want a fresh entry count call
// Reap then Len, keeping Len itself a pure read.
func (c *Cache) Reap() int {
	now := c.clock()
	aud := c.aud.Load()
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.reapLocked(now, aud)
		s.mu.Unlock()
	}
	return n
}

// GetOrProduce returns cached evidence or calls produce, caching its
// result. produce errors are returned unchanged and nothing is cached.
func (c *Cache) GetOrProduce(place, target string, detail Detail, produce func() (*Evidence, error)) (*Evidence, bool, error) {
	if ev, ok := c.Get(place, target, detail); ok {
		return ev, true, nil
	}
	ev, err := produce()
	if err != nil {
		return nil, false, err
	}
	c.Put(place, target, detail, ev)
	return ev, false, nil
}

// Invalidate drops any entry for (place, target, detail); used when the
// underlying state is known to have changed before its inertia window
// elapsed (e.g. a program reload).
func (c *Cache) Invalidate(place, target string, detail Detail) {
	k := cacheKey{place, target, detail}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, k)
}

// InvalidatePlace drops all entries for a place, e.g. after its reboot.
func (c *Cache) InvalidatePlace(place string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if k.place == place {
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of resident (possibly expired but not yet
// reaped) entries across all shards. It is a pure read — no reaping, no
// mutation — so telemetry gauges can sample cache size without changing
// it; call Reap first for a count of unexpired entries only.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats reports cumulative cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters summed over shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Instrument publishes the cache's counters as lazy telemetry metrics.
// Everything is computed at scrape time from state the cache already
// keeps, so Get/Put stay untouched; the entries gauge reads Len() — a
// pure read, never a reap. Nil-safe on both arguments.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.RegisterFunc("pera_evidence_cache_hits_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Hits) })
	reg.RegisterFunc("pera_evidence_cache_misses_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Misses) })
	reg.RegisterFunc("pera_evidence_cache_evictions_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Evictions) })
	reg.RegisterFunc("pera_evidence_cache_entries", telemetry.KindGauge,
		func() float64 { return float64(c.Len()) })
}

// ResetStats zeroes the counters without touching cached entries, so a
// sweep can measure each configuration independently.
func (c *Cache) ResetStats() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.hits, s.misses, s.evictions = 0, 0, 0
		s.mu.Unlock()
	}
}
