package evidence

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/telemetry"
)

// Cache is the inertia-aware evidence cache from the paper's §5.2/Fig. 4:
// "High-inertia attestations are more easily cached since they take longer
// to expire." Entries are keyed by (place, target, detail) and expire after
// the detail level's inertia window. A Clock function is injectable so
// simulations and tests control time; it defaults to time.Now.
//
// The cache is striped into lock shards so concurrent switch pipelines
// (and many switches sharing one cache) do not serialize behind a single
// mutex; each shard owns its own entry map and counters. Expired entries
// are reaped on Put (and on demand via Reap), so an entry that is never
// re-requested still cannot leak past the next insertion into its shard;
// Len is a pure read and never mutates.
//
// The cache also records hit/miss counters, which the Fig. 4 benchmark
// sweep reads to show the caching cliff between high- and low-inertia
// detail levels.
type Cache struct {
	shards [cacheShards]cacheShard
	clock  func() time.Time
	aud    atomic.Pointer[auditlog.Writer]
	notify atomic.Pointer[func(CacheEvent)]
	ttls   [detailCount]atomic.Int64 // per-detail TTL override in ns; 0 = detail.Inertia()
}

const cacheShards = 16

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheKey struct {
	place  string
	target string
	detail Detail
}

type cacheEntry struct {
	ev      *Evidence
	added   time.Time
	expires time.Time
}

// CacheEventKind discriminates the cache lifecycle moments a notify hook
// can observe.
type CacheEventKind uint8

const (
	CachePut    CacheEventKind = iota // fresh evidence inserted
	CacheHit                          // unexpired evidence served
	CacheExpire                       // entry aged past its inertia window
)

// String names the kind for logs and JSON.
func (k CacheEventKind) String() string {
	switch k {
	case CachePut:
		return "put"
	case CacheHit:
		return "hit"
	case CacheExpire:
		return "expire"
	}
	return "unknown"
}

// CacheEvent is one cache lifecycle moment: evidence inserted, served,
// or expired. Age is how long the entry had been resident at the event
// (zero on Put), TTL the inertia window it was stored under, and At the
// cache clock's reading when the event happened — consumers like the
// freshness watchdog track evidence age without re-deriving cache time.
type CacheEvent struct {
	Kind   CacheEventKind
	Place  string
	Target string
	Detail Detail
	Age    time.Duration
	TTL    time.Duration
	At     time.Time
}

// NewCache returns an empty cache using the real clock.
func NewCache() *Cache {
	return NewCacheWithClock(time.Now)
}

// NewCacheWithClock returns a cache driven by the given clock, for
// simulated time.
func NewCacheWithClock(clock func() time.Time) *Cache {
	// Shard maps are allocated lazily on first Put into each shard: reads
	// of a nil map are natural misses, and most workloads touch only a few
	// of the 16 shards (or none, when caching is configured but idle).
	return &Cache{clock: clock}
}

// SetAudit attaches the audit ledger: expirations (reaped on Put, Reap,
// or a stale Get) are recorded as cache_expire events, so an auditor
// can see exactly when high-inertia evidence aged out and forced fresh
// measurement. Hit/miss events are emitted by the switch, which knows
// the flow context the cache cannot see. A nil writer detaches.
func (c *Cache) SetAudit(w *auditlog.Writer) {
	if c == nil {
		return
	}
	c.aud.Store(w)
}

// SetNotify attaches a cache-event hook invoked on every Put, Hit, and
// Expire — the feed the freshness watchdog uses to track evidence age
// per place. The hook runs inline under the entry's shard lock, so it
// must be fast and must not call back into the cache. Single slot; nil
// detaches.
func (c *Cache) SetNotify(fn func(CacheEvent)) {
	if c == nil {
		return
	}
	if fn == nil {
		c.notify.Store(nil)
		return
	}
	c.notify.Store(&fn)
}

// SetTTL overrides the inertia window for one detail level, replacing
// detail.Inertia() as the TTL on subsequent Puts — the Fig. 4 Inertia
// knob made explicit, so simulations can compress a 1-minute tables
// window into seconds of simulated time. A zero or negative ttl restores
// the paper's default; already-resident entries keep the TTL they were
// stored under.
func (c *Cache) SetTTL(detail Detail, ttl time.Duration) {
	if c == nil || !detail.Valid() {
		return
	}
	if ttl < 0 {
		ttl = 0
	}
	c.ttls[detail].Store(int64(ttl))
}

// ttl resolves the effective inertia window for a detail level.
func (c *Cache) ttl(detail Detail) time.Duration {
	if !detail.Valid() {
		return detail.Inertia()
	}
	if o := c.ttls[detail].Load(); o > 0 {
		return time.Duration(o)
	}
	return detail.Inertia()
}

// emitExpire records one expiry on the ledger and notify hook (nil-safe).
func emitExpire(aud *auditlog.Writer, fn *func(CacheEvent), k cacheKey, e cacheEntry, now time.Time) {
	if aud != nil {
		aud.Emit(auditlog.Record{
			Event: auditlog.EventCacheExpire, Place: k.place,
			Target: k.target, Detail: k.detail.String(), Note: "inertia window elapsed",
		})
	}
	if fn != nil {
		(*fn)(CacheEvent{
			Kind: CacheExpire, Place: k.place, Target: k.target, Detail: k.detail,
			Age: now.Sub(e.added), TTL: e.expires.Sub(e.added), At: now,
		})
	}
}

// shard maps a key onto its lock stripe.
func (c *Cache) shard(k cacheKey) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(k.place))
	h.Write([]byte{0, byte(k.detail)})
	h.Write([]byte(k.target))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns cached evidence for (place, target, detail) if present and
// unexpired. The expiry comparison is half-open: a read in the same tick
// the entry expires counts stale — evidence that has lived its full
// inertia window is no longer fresh, and serving it would make the
// freshness boundary depend on clock granularity.
func (c *Cache) Get(place, target string, detail Detail) (*Evidence, bool) {
	k := cacheKey{place, target, detail}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	now := c.clock()
	if !now.Before(e.expires) {
		delete(s.entries, k)
		s.evictions++
		s.misses++
		emitExpire(c.aud.Load(), c.notify.Load(), k, e, now)
		return nil, false
	}
	s.hits++
	if fn := c.notify.Load(); fn != nil {
		(*fn)(CacheEvent{
			Kind: CacheHit, Place: place, Target: target, Detail: detail,
			Age: now.Sub(e.added), TTL: e.expires.Sub(e.added), At: now,
		})
	}
	return e.ev, true
}

// Put stores ev under (place, target, detail) with the detail level's
// inertia as TTL. Zero-inertia details (per-packet evidence) are not
// cached at all — there is nothing to reuse. Put also reaps any expired
// entries in the key's shard, so entries that are never re-requested are
// still evicted rather than leaking forever.
func (c *Cache) Put(place, target string, detail Detail, ev *Evidence) {
	ttl := c.ttl(detail)
	if ttl == 0 {
		return
	}
	k := cacheKey{place, target, detail}
	now := c.clock()
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(now, c.aud.Load(), c.notify.Load())
	if s.entries == nil {
		s.entries = make(map[cacheKey]cacheEntry)
	}
	s.entries[k] = cacheEntry{ev: ev, added: now, expires: now.Add(ttl)}
	if fn := c.notify.Load(); fn != nil {
		(*fn)(CacheEvent{
			Kind: CachePut, Place: place, Target: target, Detail: detail,
			TTL: ttl, At: now,
		})
	}
}

// reapLocked deletes expired entries from the shard and returns how many
// were evicted, recording each on the ledger when one is attached.
// Caller holds s.mu (Emit never blocks, so holding it is safe).
func (s *cacheShard) reapLocked(now time.Time, aud *auditlog.Writer, fn *func(CacheEvent)) int {
	n := 0
	for k, e := range s.entries {
		if !now.Before(e.expires) {
			delete(s.entries, k)
			s.evictions++
			n++
			emitExpire(aud, fn, k, e, now)
		}
	}
	return n
}

// Reap evicts every expired entry across all shards and returns the
// number removed. It is the explicit form of the reaping Put performs on
// its own shard; telemetry and tests that want a fresh entry count call
// Reap then Len, keeping Len itself a pure read.
func (c *Cache) Reap() int {
	now := c.clock()
	aud := c.aud.Load()
	fn := c.notify.Load()
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.reapLocked(now, aud, fn)
		s.mu.Unlock()
	}
	return n
}

// GetOrProduce returns cached evidence or calls produce, caching its
// result. produce errors are returned unchanged and nothing is cached.
func (c *Cache) GetOrProduce(place, target string, detail Detail, produce func() (*Evidence, error)) (*Evidence, bool, error) {
	if ev, ok := c.Get(place, target, detail); ok {
		return ev, true, nil
	}
	ev, err := produce()
	if err != nil {
		return nil, false, err
	}
	c.Put(place, target, detail, ev)
	return ev, false, nil
}

// Invalidate drops any entry for (place, target, detail); used when the
// underlying state is known to have changed before its inertia window
// elapsed (e.g. a program reload).
func (c *Cache) Invalidate(place, target string, detail Detail) {
	k := cacheKey{place, target, detail}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, k)
}

// InvalidatePlace drops all entries for a place, e.g. after its reboot.
func (c *Cache) InvalidatePlace(place string) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.entries {
			if k.place == place {
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
}

// Len returns the number of resident (possibly expired but not yet
// reaped) entries across all shards. It is a pure read — no reaping, no
// mutation — so telemetry gauges can sample cache size without changing
// it; call Reap first for a count of unexpired entries only.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats reports cumulative cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters summed over shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Instrument publishes the cache's counters as lazy telemetry metrics.
// Everything is computed at scrape time from state the cache already
// keeps, so Get/Put stay untouched; the entries gauge reads Len() — a
// pure read, never a reap. Nil-safe on both arguments.
func (c *Cache) Instrument(reg *telemetry.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.RegisterFunc("pera_evidence_cache_hits_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Hits) })
	reg.RegisterFunc("pera_evidence_cache_misses_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Misses) })
	reg.RegisterFunc("pera_evidence_cache_evictions_total", telemetry.KindCounter,
		func() float64 { return float64(c.Stats().Evictions) })
	reg.RegisterFunc("pera_evidence_cache_entries", telemetry.KindGauge,
		func() float64 { return float64(c.Len()) })
}

// ResetStats zeroes the counters without touching cached entries, so a
// sweep can measure each configuration independently.
func (c *Cache) ResetStats() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.hits, s.misses, s.evictions = 0, 0, 0
		s.mu.Unlock()
	}
}
