package evidence

import (
	"sync"
	"time"
)

// Cache is the inertia-aware evidence cache from the paper's §5.2/Fig. 4:
// "High-inertia attestations are more easily cached since they take longer
// to expire." Entries are keyed by (place, target, detail) and expire after
// the detail level's inertia window. A Clock function is injectable so
// simulations and tests control time; it defaults to time.Now.
//
// The cache also records hit/miss counters, which the Fig. 4 benchmark
// sweep reads to show the caching cliff between high- and low-inertia
// detail levels.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
	clock   func() time.Time

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheKey struct {
	place  string
	target string
	detail Detail
}

type cacheEntry struct {
	ev      *Evidence
	expires time.Time
}

// NewCache returns an empty cache using the real clock.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]cacheEntry), clock: time.Now}
}

// NewCacheWithClock returns a cache driven by the given clock, for
// simulated time.
func NewCacheWithClock(clock func() time.Time) *Cache {
	return &Cache{entries: make(map[cacheKey]cacheEntry), clock: clock}
}

// Get returns cached evidence for (place, target, detail) if present and
// unexpired.
func (c *Cache) Get(place, target string, detail Detail) (*Evidence, bool) {
	k := cacheKey{place, target, detail}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	if c.clock().After(e.expires) {
		delete(c.entries, k)
		c.evictions++
		c.misses++
		return nil, false
	}
	c.hits++
	return e.ev, true
}

// Put stores ev under (place, target, detail) with the detail level's
// inertia as TTL. Zero-inertia details (per-packet evidence) are not
// cached at all — there is nothing to reuse.
func (c *Cache) Put(place, target string, detail Detail, ev *Evidence) {
	ttl := detail.Inertia()
	if ttl == 0 {
		return
	}
	k := cacheKey{place, target, detail}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = cacheEntry{ev: ev, expires: c.clock().Add(ttl)}
}

// GetOrProduce returns cached evidence or calls produce, caching its
// result. produce errors are returned unchanged and nothing is cached.
func (c *Cache) GetOrProduce(place, target string, detail Detail, produce func() (*Evidence, error)) (*Evidence, bool, error) {
	if ev, ok := c.Get(place, target, detail); ok {
		return ev, true, nil
	}
	ev, err := produce()
	if err != nil {
		return nil, false, err
	}
	c.Put(place, target, detail, ev)
	return ev, false, nil
}

// Invalidate drops any entry for (place, target, detail); used when the
// underlying state is known to have changed before its inertia window
// elapsed (e.g. a program reload).
func (c *Cache) Invalidate(place, target string, detail Detail) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, cacheKey{place, target, detail})
}

// InvalidatePlace drops all entries for a place, e.g. after its reboot.
func (c *Cache) InvalidatePlace(place string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.place == place {
			delete(c.entries, k)
		}
	}
}

// Stats reports cumulative cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// HitRate returns hits/(hits+misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// ResetStats zeroes the counters without touching cached entries, so a
// sweep can measure each configuration independently.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.evictions = 0, 0, 0
}
