// Package evidence defines the evidence values produced and consumed by
// remote attestation in the PERA reproduction, together with the paper's
// Fig. 4 design-space controls: evidence Detail levels with associated
// Inertia, Sampling frequency, and Composition mode.
//
// Evidence is a tree, mirroring the result structure of Copland evaluation
// (Helble et al., "Flexible Mechanisms for Remote Attestation"):
//
//	E ::= empty | nonce(n) | measurement(m, t, place, value)
//	    | hash(E) | sig_place(E) | seq(E1, E2) | par(E1, E2)
//
// Hashing collapses a subtree to its digest (the paper's # operator);
// signing wraps a subtree with a platform signature (the ! operator); seq
// and par record how sub-evidence was composed. The tree serializes to a
// canonical byte form (codec.go) over which digests and signatures are
// computed, so evidence is independently appraisable after any number of
// network hops.
package evidence

import (
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"
	"sync"

	"pera/internal/rot"
)

// Kind discriminates evidence tree nodes.
type Kind uint8

// Evidence node kinds.
const (
	KindEmpty Kind = iota
	KindNonce
	KindMeasurement
	KindHash
	KindSig
	KindSeq
	KindPar
)

var kindNames = [...]string{"empty", "nonce", "measurement", "hash", "sig", "seq", "par"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Evidence is one node of an evidence tree. Exactly the fields relevant to
// its Kind are populated. Evidence values are treated as immutable once
// built; helpers return new nodes rather than mutating.
type Evidence struct {
	Kind Kind

	// KindNonce
	Nonce []byte

	// KindMeasurement
	Measurer string // measuring principal (e.g. "av", "pera-sw1")
	Target   string // measured object (e.g. "bmon", "firewall_v5.p4")
	Place    string // where the measurement ran (e.g. "ks", "sw1")
	Detail   Detail // what class of state was measured (Fig 4)
	Value    rot.Digest
	Claims   []byte // optional raw claim payload (e.g. serialized quote)

	// KindHash
	Digest rot.Digest

	// KindSig
	Signer    string
	Signature []byte

	// KindHash wraps nothing further (the subtree is collapsed);
	// KindSig, KindSeq and KindPar carry children.
	Left  *Evidence // sig/seq/par: first (or only) child
	Right *Evidence // seq/par: second child
}

// Errors reported by evidence operations.
var (
	ErrBadSignature = errors.New("evidence: signature verification failed")
	ErrUnknownKey   = errors.New("evidence: no key known for signer")
	ErrMalformed    = errors.New("evidence: malformed tree")
)

// Empty returns the empty evidence value.
func Empty() *Evidence { return &Evidence{Kind: KindEmpty} }

// Nonce returns nonce evidence binding n.
func Nonce(n []byte) *Evidence {
	return &Evidence{Kind: KindNonce, Nonce: append([]byte(nil), n...)}
}

// Measurement builds measurement evidence: measurer measured target at
// place, observing value. claims may carry a serialized quote or other raw
// appraisal input and may be nil.
func Measurement(measurer, target, place string, detail Detail, value rot.Digest, claims []byte) *Evidence {
	return &Evidence{
		Kind:     KindMeasurement,
		Measurer: measurer,
		Target:   target,
		Place:    place,
		Detail:   detail,
		Value:    value,
		Claims:   append([]byte(nil), claims...),
	}
}

// Hash collapses e to its digest — the Copland # operator. The resulting
// node carries only the digest of e's canonical encoding.
func Hash(e *Evidence) *Evidence {
	return &Evidence{Kind: KindHash, Digest: DigestOf(e)}
}

// Seq composes evidence gathered sequentially (left then right).
func Seq(l, r *Evidence) *Evidence { return &Evidence{Kind: KindSeq, Left: l, Right: r} }

// Par composes evidence gathered in parallel.
func Par(l, r *Evidence) *Evidence { return &Evidence{Kind: KindPar, Left: l, Right: r} }

// SeqAll folds a slice into a left-leaning Seq chain. An empty slice
// yields Empty; a single element is returned as-is.
func SeqAll(es ...*Evidence) *Evidence {
	switch len(es) {
	case 0:
		return Empty()
	case 1:
		return es[0]
	}
	out := es[0]
	for _, e := range es[1:] {
		out = Seq(out, e)
	}
	return out
}

// encBufPool recycles encode scratch buffers across DigestOf and
// signature-message construction; the encodings are consumed before the
// buffer is returned, so nothing retains them.
var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// DigestOf returns the SHA-256 digest of e's canonical encoding.
func DigestOf(e *Evidence) rot.Digest {
	bp := encBufPool.Get().(*[]byte)
	b := AppendEncode((*bp)[:0], e)
	d := sha256.Sum256(b)
	*bp = b[:0]
	encBufPool.Put(bp)
	return d
}

// Signer abstracts the signing capability evidence needs — satisfied by
// *rot.RoT and by host attester identities.
type Signer interface {
	Name() string
	Sign(message []byte) []byte
}

// Sign wraps e in a signature by s — the Copland ! operator. The signature
// covers e's canonical encoding prefixed by the signer name, so a signature
// cannot be transplanted between principals.
func Sign(s Signer, e *Evidence) *Evidence {
	bp := encBufPool.Get().(*[]byte)
	msg := AppendSigMessage((*bp)[:0], s.Name(), e)
	sig := s.Sign(msg)
	*bp = msg[:0]
	encBufPool.Put(bp)
	return &Evidence{Kind: KindSig, Signer: s.Name(), Signature: sig, Left: e}
}

const sigDomain = "PERA-EVSIG\x00"

// AppendSigMessage appends the exact byte string a signature over e by
// signer covers — domain tag, signer name, NUL, canonical encoding — to
// buf in a single pass, and returns the extended slice. It is the
// allocation-free form of the old two-buffer sigMessage construction.
func AppendSigMessage(buf []byte, signer string, e *Evidence) []byte {
	buf = append(buf, sigDomain...)
	buf = append(buf, signer...)
	buf = append(buf, 0)
	return appendEvidence(buf, e)
}

// SigMessageSize returns len(AppendSigMessage(nil, signer, e)) without
// building it, so callers can size a buffer exactly.
func SigMessageSize(signer string, e *Evidence) int {
	return len(sigDomain) + len(signer) + 1 + EncodedSize(e)
}

func sigMessage(signer string, e *Evidence) []byte {
	b := make([]byte, 0, SigMessageSize(signer, e))
	return AppendSigMessage(b, signer, e)
}

// KeyResolver maps a signer name to its verification key. Appraisers
// implement this against their AIK certificate store.
type KeyResolver interface {
	KeyFor(signer string) (ed25519.PublicKey, bool)
}

// KeyMap is a KeyResolver backed by a map.
type KeyMap map[string]ed25519.PublicKey

// KeyFor implements KeyResolver.
func (m KeyMap) KeyFor(signer string) (ed25519.PublicKey, bool) {
	k, ok := m[signer]
	return k, ok
}

// VerifySignatures walks e and checks every signature node against keys.
// It returns the number of signatures checked. A single bad or unkeyed
// signature fails the whole tree: path evidence is only as strong as its
// weakest link.
func VerifySignatures(e *Evidence, keys KeyResolver) (int, error) {
	return VerifySignaturesMemo(e, keys, nil)
}

// VerifySignaturesMemo is VerifySignatures with an optional verification
// memo: signature nodes whose (key, message, signature) triple was checked
// before cost one hash lookup instead of one ed25519.Verify. A nil memo
// verifies everything in full.
func VerifySignaturesMemo(e *Evidence, keys KeyResolver, memo *VerifyMemo) (int, error) {
	if e == nil {
		return 0, ErrMalformed
	}
	// One scratch buffer serves every signature node in the walk; on memo
	// hits the whole traversal allocates nothing.
	bp := encBufPool.Get().(*[]byte)
	defer func() {
		encBufPool.Put(bp)
	}()
	n := 0
	var walk func(*Evidence) error
	walk = func(ev *Evidence) error {
		if ev == nil {
			return ErrMalformed
		}
		switch ev.Kind {
		case KindEmpty, KindNonce, KindMeasurement, KindHash:
			return nil
		case KindSig:
			pub, ok := keys.KeyFor(ev.Signer)
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownKey, ev.Signer)
			}
			msg := AppendSigMessage((*bp)[:0], ev.Signer, ev.Left)
			*bp = msg[:0]
			if !memo.Verify(pub, msg, ev.Signature) {
				return fmt.Errorf("%w: signer %q", ErrBadSignature, ev.Signer)
			}
			n++
			return walk(ev.Left)
		case KindSeq, KindPar:
			if err := walk(ev.Left); err != nil {
				return err
			}
			return walk(ev.Right)
		default:
			return fmt.Errorf("%w: kind %v", ErrMalformed, ev.Kind)
		}
	}
	if err := walk(e); err != nil {
		return n, err
	}
	return n, nil
}

// Measurements returns all measurement nodes in e, left-to-right. This is
// the appraiser's view of "what was claimed along the path".
func Measurements(e *Evidence) []*Evidence {
	var out []*Evidence
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil {
			return
		}
		switch ev.Kind {
		case KindMeasurement:
			out = append(out, ev)
		case KindSig:
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return out
}

// WalkMeasurements visits every measurement node in e, left-to-right,
// without building a slice; fn returning false stops the walk. The
// appraisal hot path uses this in place of Measurements.
func WalkMeasurements(e *Evidence, fn func(*Evidence) bool) {
	var walk func(*Evidence) bool
	walk = func(ev *Evidence) bool {
		if ev == nil {
			return true
		}
		switch ev.Kind {
		case KindMeasurement:
			return fn(ev)
		case KindSig:
			return walk(ev.Left)
		case KindSeq, KindPar:
			return walk(ev.Left) && walk(ev.Right)
		}
		return true
	}
	walk(e)
}

// CountMeasurements returns the number of measurement nodes in e.
func CountMeasurements(e *Evidence) int {
	n := 0
	WalkMeasurements(e, func(*Evidence) bool { n++; return true })
	return n
}

// HasNonce reports whether nonce appears as a nonce node in e, without
// materializing the Nonces slice.
func HasNonce(e *Evidence, nonce []byte) bool {
	found := false
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil || found {
			return
		}
		switch ev.Kind {
		case KindNonce:
			if string(ev.Nonce) == string(nonce) {
				found = true
			}
		case KindSig:
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return found
}

// FirstNonce returns the first nonce node's value in e, or nil.
func FirstNonce(e *Evidence) []byte {
	var out []byte
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil || out != nil {
			return
		}
		switch ev.Kind {
		case KindNonce:
			out = ev.Nonce
		case KindSig:
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return out
}

// Hashes returns all hash-commitment digests appearing in e,
// left-to-right — what an appraiser checks against expected evidence
// digests when attesters collapse their measurements with # before
// signing (expression (3) of the paper).
func Hashes(e *Evidence) []rot.Digest {
	var out []rot.Digest
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil {
			return
		}
		switch ev.Kind {
		case KindHash:
			out = append(out, ev.Digest)
		case KindSig:
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return out
}

// Nonces returns all nonce values appearing in e.
func Nonces(e *Evidence) [][]byte {
	var out [][]byte
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil {
			return
		}
		switch ev.Kind {
		case KindNonce:
			out = append(out, ev.Nonce)
		case KindSig:
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return out
}

// Signers returns the distinct signer names in e, in first-seen order.
// For path evidence this is the set of attesting elements traversed.
func Signers(e *Evidence) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(*Evidence)
	walk = func(ev *Evidence) {
		if ev == nil {
			return
		}
		switch ev.Kind {
		case KindSig:
			if !seen[ev.Signer] {
				seen[ev.Signer] = true
				out = append(out, ev.Signer)
			}
			walk(ev.Left)
		case KindSeq, KindPar:
			walk(ev.Left)
			walk(ev.Right)
		}
	}
	walk(e)
	return out
}

// Size returns the number of nodes in the tree.
func Size(e *Evidence) int {
	if e == nil {
		return 0
	}
	n := 1
	switch e.Kind {
	case KindSig:
		n += Size(e.Left)
	case KindSeq, KindPar:
		n += Size(e.Left) + Size(e.Right)
	}
	return n
}

// Depth returns the height of the tree; Empty has depth 1.
func Depth(e *Evidence) int {
	if e == nil {
		return 0
	}
	switch e.Kind {
	case KindSig:
		return 1 + Depth(e.Left)
	case KindSeq, KindPar:
		l, r := Depth(e.Left), Depth(e.Right)
		if l > r {
			return 1 + l
		}
		return 1 + r
	default:
		return 1
	}
}

// Validate checks structural well-formedness: children present exactly
// where the kind requires them.
func Validate(e *Evidence) error {
	if e == nil {
		return ErrMalformed
	}
	switch e.Kind {
	case KindEmpty, KindNonce, KindMeasurement, KindHash:
		if e.Left != nil || e.Right != nil {
			return fmt.Errorf("%w: leaf kind %v has children", ErrMalformed, e.Kind)
		}
		return nil
	case KindSig:
		if e.Left == nil || e.Right != nil {
			return fmt.Errorf("%w: sig needs exactly one child", ErrMalformed)
		}
		return Validate(e.Left)
	case KindSeq, KindPar:
		if e.Left == nil || e.Right == nil {
			return fmt.Errorf("%w: %v needs two children", ErrMalformed, e.Kind)
		}
		if err := Validate(e.Left); err != nil {
			return err
		}
		return Validate(e.Right)
	default:
		return fmt.Errorf("%w: unknown kind %v", ErrMalformed, e.Kind)
	}
}

// String renders the tree in a compact Copland-like notation for logs and
// debugging, e.g. `sig[sw1](seq(msmt[attest sw1/prog], nonce))`.
func (e *Evidence) String() string {
	var b strings.Builder
	writeString(&b, e)
	return b.String()
}

func writeString(b *strings.Builder, e *Evidence) {
	if e == nil {
		b.WriteString("<nil>")
		return
	}
	switch e.Kind {
	case KindEmpty:
		b.WriteString("empty")
	case KindNonce:
		fmt.Fprintf(b, "nonce(%x)", shortBytes(e.Nonce))
	case KindMeasurement:
		fmt.Fprintf(b, "msmt[%s %s@%s %s=%v]", e.Measurer, e.Target, e.Place, e.Detail, e.Value)
	case KindHash:
		fmt.Fprintf(b, "#%v", e.Digest)
	case KindSig:
		fmt.Fprintf(b, "sig[%s](", e.Signer)
		writeString(b, e.Left)
		b.WriteString(")")
	case KindSeq:
		b.WriteString("seq(")
		writeString(b, e.Left)
		b.WriteString(", ")
		writeString(b, e.Right)
		b.WriteString(")")
	case KindPar:
		b.WriteString("par(")
		writeString(b, e.Left)
		b.WriteString(", ")
		writeString(b, e.Right)
		b.WriteString(")")
	}
}

func shortBytes(b []byte) []byte {
	if len(b) > 4 {
		return b[:4]
	}
	return b
}

// Equal reports deep equality of two evidence trees via their canonical
// encodings.
func Equal(a, b *Evidence) bool {
	if a == nil || b == nil {
		return a == b
	}
	return string(Encode(a)) == string(Encode(b))
}
