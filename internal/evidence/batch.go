package evidence

import (
	"crypto/ed25519"
	"fmt"
	"sync/atomic"

	"pera/internal/ed25519batch"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

// Batch-verification counters, exported as pera_verify_batch_* metrics
// via InstrumentBatch. Package-global because batch verifiers are
// short-lived window objects; the counters outlive them.
var (
	batchBatches   atomic.Uint64 // windows flushed through the batch equation
	batchSigs      atomic.Uint64 // signatures verified in batches
	batchFallbacks atomic.Uint64 // windows re-verified per-item after a batch failure
	batchSkipped   atomic.Uint64 // signatures skipped because the memo already knew
	batchLastSize  atomic.Uint64 // size of the most recent window
)

// InstrumentBatch registers the batch-verification counters with reg.
func InstrumentBatch(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterFunc("pera_verify_batch_batches_total", telemetry.KindCounter,
		func() float64 { return float64(batchBatches.Load()) })
	reg.RegisterFunc("pera_verify_batch_sigs_total", telemetry.KindCounter,
		func() float64 { return float64(batchSigs.Load()) })
	reg.RegisterFunc("pera_verify_batch_fallbacks_total", telemetry.KindCounter,
		func() float64 { return float64(batchFallbacks.Load()) })
	reg.RegisterFunc("pera_verify_batch_memo_skips_total", telemetry.KindCounter,
		func() float64 { return float64(batchSkipped.Load()) })
	reg.RegisterFunc("pera_verify_batch_window_size", telemetry.KindGauge,
		func() float64 { return float64(batchLastSize.Load()) })
}

// BatchStats is a snapshot of the package batch counters, for tests and
// the benchmark harness.
type BatchStats struct {
	Batches, Sigs, Fallbacks, MemoSkips uint64
}

// ReadBatchStats returns the current counters.
func ReadBatchStats() BatchStats {
	return BatchStats{
		Batches:   batchBatches.Load(),
		Sigs:      batchSigs.Load(),
		Fallbacks: batchFallbacks.Load(),
		MemoSkips: batchSkipped.Load(),
	}
}

// BatchVerifier collects the signature nodes of one or more evidence
// chains and verifies them with a single Ed25519 batch equation
// (internal/ed25519batch), seeding the verdicts into a VerifyMemo. The
// appraisal logic itself is untouched: it re-walks the chain through
// VerifySignaturesMemo and consumes the seeded verdicts as memo hits, so
// a batched appraisal renders exactly the verdict a per-item appraisal
// would.
//
// When the batch equation fails — at least one signature in the window is
// bad — every gathered triple is re-verified individually with
// crypto/ed25519 (the standard library stays the ground truth for all
// rejections) and the per-item verdicts are seeded instead.
//
// A BatchVerifier is not safe for concurrent use; pools hold one per
// verify window. Zero allocation in steady state: the message arena and
// item list are retained across Reset.
type BatchVerifier struct {
	memo  *VerifyMemo
	bv    *ed25519batch.Verifier
	arena []byte // rot.SigPrefix‖sigMessage, back to back
	items []batchSigRef
}

type batchSigRef struct {
	pub      ed25519.PublicKey
	sig      []byte
	off, end int // wire message bounds in arena (prefix included)
}

// NewBatchVerifier returns a verifier seeding verdicts into memo. The
// memo is the transport that hands batch results to the appraisal walk;
// it may be nil at construction (pooled verifiers are built idle) but
// must be set via Reset before Flush, or the batch work is wasted.
func NewBatchVerifier(memo *VerifyMemo) *BatchVerifier {
	return &BatchVerifier{memo: memo, bv: ed25519batch.NewVerifier()}
}

// Reset re-arms the verifier for a new window, optionally retargeting a
// different memo (nil keeps the current one).
func (b *BatchVerifier) Reset(memo *VerifyMemo) {
	if memo != nil {
		b.memo = memo
	}
	b.arena = b.arena[:0]
	b.items = b.items[:0]
}

// Pending returns the number of gathered, not-yet-flushed signatures.
func (b *BatchVerifier) Pending() int { return len(b.items) }

// Gather walks e and queues every signature node whose verdict the memo
// does not already know. Unknown signers fail fast with the same error
// the verification walk would produce; the caller typically ignores the
// error and lets appraisal render it, since Gather is an optimization
// pass, not a verdict.
func (b *BatchVerifier) Gather(e *Evidence, keys KeyResolver) error {
	var walk func(*Evidence) error
	walk = func(ev *Evidence) error {
		if ev == nil {
			return ErrMalformed
		}
		switch ev.Kind {
		case KindEmpty, KindNonce, KindMeasurement, KindHash:
			return nil
		case KindSig:
			pub, ok := keys.KeyFor(ev.Signer)
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownKey, ev.Signer)
			}
			off := len(b.arena)
			b.arena = append(b.arena, rot.SigPrefix...)
			msgOff := len(b.arena)
			b.arena = AppendSigMessage(b.arena, ev.Signer, ev.Left)
			if _, known := b.memo.Known(pub, b.arena[msgOff:], ev.Signature); known {
				batchSkipped.Add(1)
				b.arena = b.arena[:off]
			} else {
				b.items = append(b.items, batchSigRef{
					pub: pub, sig: ev.Signature, off: off, end: len(b.arena),
				})
			}
			return walk(ev.Left)
		case KindSeq, KindPar:
			if err := walk(ev.Left); err != nil {
				return err
			}
			return walk(ev.Right)
		default:
			return fmt.Errorf("%w: kind %v", ErrMalformed, ev.Kind)
		}
	}
	return walk(e)
}

// BatchMinSigs is the smallest window the batch equation is worth: below
// it, per-item verification with the standard library's optimized curve
// arithmetic is faster than this package's pure-Go multiscalar (each
// batched term still costs NAF table setup and ~43 additions, and each
// distinct point a decompression).
const BatchMinSigs = 4

// Flush verifies every gathered signature — one batch equation, with
// per-item standard-library fallback on batch failure — and seeds the
// verdicts into the memo. Windows smaller than BatchMinSigs skip the
// equation and verify per item directly. It reports how many signatures
// were settled and whether the per-item path ran. The window is reset
// either way.
func (b *BatchVerifier) Flush() (settled int, fellBack bool) {
	n := len(b.items)
	if n == 0 {
		return 0, false
	}
	batchLastSize.Store(uint64(n))

	if n < BatchMinSigs {
		for i := range b.items {
			it := &b.items[i]
			v := ed25519.Verify(it.pub, b.arena[it.off:it.end], it.sig)
			b.memo.Seed(it.pub, b.arena[it.off+len(rot.SigPrefix):it.end], it.sig, v,
				"full signature verification (memo miss)")
		}
		b.items = b.items[:0]
		b.arena = b.arena[:0]
		return n, true
	}

	b.bv.Reset()
	for i := range b.items {
		it := &b.items[i]
		b.bv.Add(it.pub, b.arena[it.off:it.end], it.sig)
	}
	if b.bv.Verify() {
		// One equation proved every signature in the window.
		for i := range b.items {
			it := &b.items[i]
			b.memo.Seed(it.pub, b.arena[it.off+len(rot.SigPrefix):it.end], it.sig, true,
				"batch signature verification (window seed)")
		}
		batchBatches.Add(1)
		batchSigs.Add(uint64(n))
	} else {
		// At least one bad signature: attribute per item with the stdlib,
		// which keeps rejected-input semantics bit-identical to rot.Verify.
		for i := range b.items {
			it := &b.items[i]
			v := ed25519.Verify(it.pub, b.arena[it.off:it.end], it.sig)
			b.memo.Seed(it.pub, b.arena[it.off+len(rot.SigPrefix):it.end], it.sig, v,
				"per-item fallback after batch failure")
		}
		batchBatches.Add(1)
		batchFallbacks.Add(1)
		fellBack = true
	}
	b.items = b.items[:0]
	b.arena = b.arena[:0]
	return n, fellBack
}

// VerifySignaturesBatched is VerifySignaturesMemo with the verification
// work front-loaded through the batch equation: gather unknown
// signatures, flush them as one batch, then run the ordinary memoized
// walk (which now hits for every node). memo must not be nil. The
// (count, error) result is identical to VerifySignaturesMemo's.
func VerifySignaturesBatched(e *Evidence, keys KeyResolver, memo *VerifyMemo, b *BatchVerifier) (int, error) {
	if b == nil {
		b = NewBatchVerifier(memo)
	} else {
		b.Reset(memo)
	}
	// Gather errors (unknown signer, malformed tree) are deliberately
	// dropped: the memoized walk below reproduces them with the exact
	// error text the unbatched path reports.
	_ = b.Gather(e, keys)
	b.Flush()
	return VerifySignaturesMemo(e, keys, memo)
}
