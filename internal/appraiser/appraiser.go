// Package appraiser implements the Appraiser/Verifier role of the
// paper's Fig. 1: it verifies evidence signatures against registered
// attestation keys, checks measurement values against golden references,
// enforces nonce freshness, and issues signed attestation-result
// certificates. It also provides the certificate store used by the
// out-of-band PERA variant (expression (3)'s store(n)/retrieve(n)).
package appraiser

import (
	"crypto/ed25519"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/evidence"
	"pera/internal/rats"
	"pera/internal/rot"
	"pera/internal/telemetry"
)

// Errors from appraisal.
var (
	ErrNonceReplayed  = errors.New("appraiser: nonce already used")
	ErrNonceMissing   = errors.New("appraiser: evidence lacks the session nonce")
	ErrNoCertificate  = errors.New("appraiser: no stored certificate for nonce")
	ErrBadCertificate = errors.New("appraiser: certificate signature invalid")
)

// Certificate is a signed attestation result.
type Certificate struct {
	Issuer         string
	Subject        string
	Nonce          []byte
	EvidenceDigest rot.Digest
	Verdict        bool
	Reason         string
	Serial         uint64
	Signature      []byte
}

func certMessage(c *Certificate) []byte {
	size := len("PERA-RESULT-V1\x00") + 4 + len(c.Issuer) + 4 + len(c.Subject) +
		4 + len(c.Nonce) + rot.DigestSize + 1 + 4 + len(c.Reason) + 8
	// One exact-size allocation; Encode appends the signature LV after,
	// so leave room for it too.
	b := make([]byte, 0, size+4+len(c.Signature))
	b = append(b, "PERA-RESULT-V1\x00"...)
	b = appendLV(b, []byte(c.Issuer))
	b = appendLV(b, []byte(c.Subject))
	b = appendLV(b, c.Nonce)
	b = append(b, c.EvidenceDigest[:]...)
	if c.Verdict {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendLV(b, []byte(c.Reason))
	b = binary.BigEndian.AppendUint64(b, c.Serial)
	return b
}

func appendLV(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

// Encode serializes the certificate (including signature) for transport.
func (c *Certificate) Encode() []byte {
	b := certMessage(c)
	return appendLV(b, c.Signature)
}

// DecodeCertificate parses a certificate from its wire form.
func DecodeCertificate(data []byte) (*Certificate, error) {
	read := func(off int) ([]byte, int, error) {
		if off+4 > len(data) {
			return nil, 0, fmt.Errorf("%w: truncated", ErrBadCertificate)
		}
		n := binary.BigEndian.Uint32(data[off:])
		off += 4
		if off+int(n) > len(data) {
			return nil, 0, fmt.Errorf("%w: truncated field", ErrBadCertificate)
		}
		return data[off : off+int(n)], off + int(n), nil
	}
	magic := "PERA-RESULT-V1\x00"
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCertificate)
	}
	off := len(magic)
	c := &Certificate{}
	var f []byte
	var err error
	if f, off, err = read(off); err != nil {
		return nil, err
	}
	c.Issuer = string(f)
	if f, off, err = read(off); err != nil {
		return nil, err
	}
	c.Subject = string(f)
	if f, off, err = read(off); err != nil {
		return nil, err
	}
	c.Nonce = append([]byte(nil), f...)
	if off+rot.DigestSize > len(data) {
		return nil, fmt.Errorf("%w: truncated digest", ErrBadCertificate)
	}
	copy(c.EvidenceDigest[:], data[off:])
	off += rot.DigestSize
	if off >= len(data) {
		return nil, fmt.Errorf("%w: truncated verdict", ErrBadCertificate)
	}
	c.Verdict = data[off] == 1
	off++
	if f, off, err = read(off); err != nil {
		return nil, err
	}
	c.Reason = string(f)
	if off+8 > len(data) {
		return nil, fmt.Errorf("%w: truncated serial", ErrBadCertificate)
	}
	c.Serial = binary.BigEndian.Uint64(data[off:])
	off += 8
	if f, _, err = read(off); err != nil {
		return nil, err
	}
	c.Signature = append([]byte(nil), f...)
	return c, nil
}

// VerifyCertificate checks the certificate's signature under the issuing
// appraiser's public key.
func VerifyCertificate(pub ed25519.PublicKey, c *Certificate) error {
	if len(pub) != ed25519.PublicKeySize ||
		!ed25519.Verify(pub, certMessage(c), c.Signature) {
		return ErrBadCertificate
	}
	return nil
}

// goldenKey identifies one reference measurement.
type goldenKey struct {
	place  string
	target string
	detail evidence.Detail
}

// Appraiser holds verification keys, golden values, issued certificates
// and nonce state. It is safe for true concurrent use: appraisal workers
// read the key/golden/hash tables as immutable copy-on-write snapshots
// (writers replace whole maps under mu, so the per-packet read path takes
// one brief RLock and never copies), the nonce store and certificate
// store sit behind their own mutexes, and the certificate serial is
// atomic so signing happens outside every lock.
type Appraiser struct {
	name string
	key  ed25519.PrivateKey
	pub  ed25519.PublicKey

	// mu guards the copy-on-write configuration tables below. Writers
	// clone-and-swap; readers snapshot the map references under RLock and
	// then read lock-free (the maps themselves are never mutated in
	// place).
	mu     sync.RWMutex
	keys   evidence.KeyMap
	golden map[goldenKey]rot.Digest
	hashes map[rot.Digest]bool // expected digests for hash-collapsed evidence
	// Strict makes measurements with no golden reference a failure;
	// otherwise they are accepted but noted in the certificate reason.
	Strict bool
	// RequireNonce makes appraisal fail when the session nonce does not
	// appear in the evidence (freshness binding).
	RequireNonce bool

	// memo, when enabled, caches signature-verification outcomes so
	// re-presented high-inertia evidence costs one hash per signature
	// node instead of one ed25519.Verify. Set via EnableMemo.
	memo *evidence.VerifyMemo

	// verifySec, when instrumented, times the Verify half of each
	// appraisal (signature + quote chain checks) separately from the
	// golden-value appraisal logic — the relying party's view of the
	// Fig. 3 Verify stage.
	verifySec *telemetry.Histogram

	// aud, when attached, records appraise/verdict events (with clause
	// provenance) on the durable audit ledger. policyName/policyTerm name
	// the Copland policy in force so every verdict is attributable to a
	// written-down term, not just "the code". All three live behind mu
	// with the copy-on-write tables.
	aud        *auditlog.Writer
	policyName string
	policyTerm string

	// obs, when attached, sees every rendered verdict with its place
	// attribution — the hook an observatory collector uses to correlate
	// appraisal outcomes with in-band path traces. Lives behind mu with
	// the other attachments.
	obs Observer

	// tracer, when attached, records appraise/verify/verdict spans for
	// sampled flows, parented under the requester's propagated context.
	// Deployments embedding the appraiser in a Pool leave this unset
	// (the pool records the spans with worker attribution instead).
	tracer *telemetry.FlowTracer

	serial atomic.Uint64

	nonceMu sync.Mutex
	used    map[string]bool

	certMu sync.Mutex
	certs  map[string]*Certificate

	// Profiling label regions (internal/profiler). Appraisal work on
	// this goroutine is labeled "appraise"; the signature/quote walk
	// inside check re-labels itself "verify" for its duration so
	// stage-attributed CPU separates the relying party's two halves.
	// Enter is an atomic load + branch while the profiler is disarmed.
	profVerify   *telemetry.ProfRegion
	profAppraise *telemetry.ProfRegion
}

// New creates an appraiser with a key derived from seed, so simulations
// are reproducible. Production callers should seed with fresh entropy.
func New(name string, seed []byte) *Appraiser {
	h := rot.Sum(append([]byte("appraiser:"), seed...))
	priv := ed25519.NewKeyFromSeed(h[:])
	return &Appraiser{
		name:         name,
		key:          priv,
		pub:          priv.Public().(ed25519.PublicKey),
		keys:         evidence.KeyMap{},
		golden:       make(map[goldenKey]rot.Digest),
		used:         make(map[string]bool),
		certs:        make(map[string]*Certificate),
		profVerify:   telemetry.NewProfRegion(telemetry.StageVerify, name),
		profAppraise: telemetry.NewProfRegion(telemetry.StageAppraise, name),
	}
}

// EnableMemo installs a verification memo bounded to capacity entries
// (capacity <= 0 selects evidence.DefaultMemoCapacity). Subsequent
// appraisals memoize signature and quote checks; MemoStats exposes the
// hit/miss counters.
func (a *Appraiser) EnableMemo(capacity int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.memo = evidence.NewVerifyMemo(capacity)
	a.memo.SetAudit(a.aud)
}

// MemoStats reports the verification memo's counters; zeros when no memo
// is enabled.
func (a *Appraiser) MemoStats() evidence.MemoStats {
	a.mu.RLock()
	m := a.memo
	a.mu.RUnlock()
	return m.Stats()
}

// Instrument registers the appraiser's Verify-stage latency histogram
// (pera_verify_seconds, labelled with the appraiser name) with reg and
// arms the timing. The memo, when enabled, is exported too.
func (a *Appraiser) Instrument(reg *telemetry.Registry) {
	h := telemetry.NewHistogram("pera_verify_seconds", nil, telemetry.L("appraiser", a.name))
	reg.Register(h)
	a.mu.Lock()
	a.verifySec = h
	memo := a.memo
	a.mu.Unlock()
	memo.Instrument(reg)
}

// SetAudit attaches the durable audit ledger: every appraisal emits an
// appraise record when it starts and a verdict record carrying clause
// provenance when it completes. A nil writer detaches.
func (a *Appraiser) SetAudit(w *auditlog.Writer) {
	a.mu.Lock()
	a.aud = w
	a.memo.SetAudit(w) // nil-safe; order vs EnableMemo doesn't matter
	a.mu.Unlock()
}

// SetPolicy binds the appraiser to a named Copland policy term (AP1–AP3
// from nac.Table1, or an operator policy). The name is stamped on every
// subsequent verdict's provenance, and the binding itself is recorded on
// the ledger so an auditor can see which policy governed which span of
// the trail.
func (a *Appraiser) SetPolicy(name, term string) {
	a.mu.Lock()
	a.policyName, a.policyTerm = name, term
	aud := a.aud
	a.mu.Unlock()
	if aud != nil {
		aud.Emit(auditlog.Record{
			Event: auditlog.EventPolicyBound, Place: a.name,
			Policy: name, Note: term,
		})
	}
}

// memoSnapshot returns the appraiser's persistent verification memo, or
// nil when none is enabled. Pools use it to decide whether a batch
// window seeds the durable memo or an ephemeral per-window one.
func (a *Appraiser) memoSnapshot() *evidence.VerifyMemo {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.memo
}

// keysSnapshot returns the current copy-on-write key table; the map is
// immutable once published, so callers read it lock-free.
func (a *Appraiser) keysSnapshot() evidence.KeyMap {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.keys
}

// auditCtx snapshots the audit binding for one appraisal.
func (a *Appraiser) auditCtx() (*auditlog.Writer, string) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.aud, a.policyName
}

// Observer receives appraisal outcomes as they are rendered. place names
// the switch whose claim decided a rejection ("" when no single place is
// attributable — e.g. structural or signature failures over the whole
// chain, or a pass). Implementations must be safe for concurrent calls:
// pool workers appraise in parallel.
type Observer interface {
	ObserveVerdict(flow, subject string, verdict bool, place, stage, reason string)
}

// SetObserver attaches the verdict observer; nil detaches.
func (a *Appraiser) SetObserver(o Observer) {
	a.mu.Lock()
	a.obs = o
	a.mu.Unlock()
}

// observer snapshots the attached verdict observer.
func (a *Appraiser) observer() Observer {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.obs
}

// SetTracer attaches the distributed-tracing span recorder; nil
// detaches.
func (a *Appraiser) SetTracer(tr *telemetry.FlowTracer) {
	a.mu.Lock()
	a.tracer = tr
	a.mu.Unlock()
}

// tracerSnapshot reads the attached tracer.
func (a *Appraiser) tracerSnapshot() *telemetry.FlowTracer {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.tracer
}

// Name returns the appraiser identity.
func (a *Appraiser) Name() string { return a.name }

// Public returns the key relying parties use to verify certificates.
func (a *Appraiser) Public() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), a.pub...)
}

// RegisterKey trusts pub to sign evidence as signer — typically from a
// verified AIK certificate.
func (a *Appraiser) RegisterKey(signer string, pub ed25519.PublicKey) {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make(evidence.KeyMap, len(a.keys)+1)
	for k, v := range a.keys {
		keys[k] = v
	}
	keys[signer] = append(ed25519.PublicKey(nil), pub...)
	a.keys = keys
}

// RegisterAIK verifies cert under the authority key and, on success,
// trusts the contained AIK for the platform.
func (a *Appraiser) RegisterAIK(authorityPub ed25519.PublicKey, cert *rot.AIKCertificate) error {
	if err := rot.VerifyCertificate(authorityPub, cert); err != nil {
		return err
	}
	a.RegisterKey(cert.Platform, cert.AIK)
	return nil
}

// SetGolden installs the reference digest for (place, target, detail).
func (a *Appraiser) SetGolden(place, target string, detail evidence.Detail, d rot.Digest) {
	a.mu.Lock()
	defer a.mu.Unlock()
	golden := make(map[goldenKey]rot.Digest, len(a.golden)+1)
	for k, v := range a.golden {
		golden[k] = v
	}
	golden[goldenKey{place, target, detail}] = d
	a.golden = golden
}

// GoldenRef is one reference digest for SetGoldenBatch.
type GoldenRef struct {
	Place  string
	Target string
	Detail evidence.Detail
	Value  rot.Digest
}

// SetGoldenBatch registers many golden references with a single copy of
// the published table. SetGolden's copy-on-write is per call, which makes
// provisioning loops quadratic; batch installation is one copy total.
func (a *Appraiser) SetGoldenBatch(refs []GoldenRef) {
	if len(refs) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	golden := make(map[goldenKey]rot.Digest, len(a.golden)+len(refs))
	for k, v := range a.golden {
		golden[k] = v
	}
	for _, r := range refs {
		golden[goldenKey{r.Place, r.Target, r.Detail}] = r.Value
	}
	a.golden = golden
}

// AllowHash registers an expected evidence digest for attesters that
// collapse their measurements with # before signing (expression (3)'s
// `attest(...) -> # -> !`). Once any digest is registered, every hash
// node in appraised evidence must match a registered digest.
func (a *Appraiser) AllowHash(d rot.Digest) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hashes := make(map[rot.Digest]bool, len(a.hashes)+1)
	for k := range a.hashes {
		hashes[k] = true
	}
	hashes[d] = true
	a.hashes = hashes
}

// Appraise verifies ev end to end and issues a signed certificate whose
// Verdict reflects the outcome. A non-nil error is returned only for
// operational failures (nonce replay); verification failures are reported
// through the certificate so they remain attributable and storable.
func (a *Appraiser) Appraise(subject string, ev *evidence.Evidence, nonce []byte) (*Certificate, error) {
	return a.AppraiseNoted(subject, ev, nonce, "")
}

// appraisalFlowID correlates appraisal-side audit records with the
// switch side: the session nonce (hex) when present, else the first
// nonce inside the evidence — the same ID flowIDOf derives in-band.
func appraisalFlowID(ev *evidence.Evidence, nonce []byte) string {
	if len(nonce) > 0 {
		return hex.EncodeToString(nonce)
	}
	if n := evidence.FirstNonce(ev); n != nil {
		return hex.EncodeToString(n)
	}
	return "-"
}

// AppraiseNoted is Appraise with an attribution note (e.g. "worker 3")
// stamped on the audit records, so pool-dispatched appraisals remain
// attributable to the goroutine that ran them.
func (a *Appraiser) AppraiseNoted(subject string, ev *evidence.Evidence, nonce []byte, note string) (*Certificate, error) {
	return a.appraiseNoted(telemetry.SpanContext{}, subject, ev, nonce, note, nil, "")
}

// AppraiseCtx is Appraise with a propagated trace context: the
// appraisal spans parent under the requester's span (carried in the
// rats trace-context field), joining the challenge's cross-process
// trace.
func (a *Appraiser) AppraiseCtx(parent telemetry.SpanContext, subject string, ev *evidence.Evidence, nonce []byte) (*Certificate, error) {
	return a.appraiseNoted(parent, subject, ev, nonce, "", nil, "")
}

// appraiseNoted additionally threads an override verification memo (the
// pool's per-window batch memo when the appraiser has no persistent
// one; nil uses the appraiser's own) and a span link naming the shared
// batch-flush span this appraisal's signatures rode, if any.
func (a *Appraiser) appraiseNoted(parent telemetry.SpanContext, subject string, ev *evidence.Evidence, nonce []byte, note string, memoOverride *evidence.VerifyMemo, link string) (*Certificate, error) {
	defer telemetry.ProfExit(a.profAppraise.Enter())
	aud, policy := a.auditCtx()
	obs := a.observer()
	tr := a.tracerSnapshot()
	flow, nonceHex := "", ""
	var start time.Time
	if aud != nil || obs != nil || tr != nil {
		flow = appraisalFlowID(ev, nonce)
	}
	actx := tr.ChildContext(parent, flow)
	var spanStart time.Time
	if actx.Valid() {
		spanStart = time.Now()
	}
	if aud != nil {
		nonceHex = hex.EncodeToString(nonce)
		start = time.Now()
		aud.Emit(auditlog.Record{
			Event: auditlog.EventAppraise, Place: a.name, Flow: flow,
			Nonce: nonceHex, Policy: policy, Target: subject, Note: note,
		})
	}
	if len(nonce) > 0 {
		a.nonceMu.Lock()
		replayed := a.used[string(nonce)]
		a.used[string(nonce)] = true
		a.nonceMu.Unlock()
		if replayed {
			if aud != nil {
				aud.Emit(auditlog.Record{
					Event: auditlog.EventVerdict, Place: a.name, Flow: flow,
					Nonce: nonceHex, Policy: policy, Target: subject,
					Verdict: "FAIL", DurNS: int64(time.Since(start)), Note: note,
					Prov: &auditlog.Provenance{
						Policy: policy, Clause: "*bank<n, X>", Stage: "nonce",
						Accept: false, Reason: ErrNonceReplayed.Error(),
					},
				})
			}
			if actx.Valid() {
				tr.RecordSpan(actx, parent, flow, a.name, telemetry.StageAppraise, spanStart, time.Since(spanStart), "nonce replayed")
			}
			return nil, ErrNonceReplayed
		}
	}
	verdict, reason, prov := a.check(ev, nonce, memoOverride, flow, actx, tr)
	c := &Certificate{
		Issuer:         a.name,
		Subject:        subject,
		Nonce:          append([]byte(nil), nonce...),
		EvidenceDigest: evidence.DigestOf(ev),
		Verdict:        verdict,
		Reason:         reason,
		Serial:         a.serial.Add(1),
	}
	// Signing happens outside every lock: concurrent appraisal workers
	// must not serialize their Ed25519 work behind shared state.
	c.Signature = ed25519.Sign(a.key, certMessage(c))
	if obs != nil {
		obs.ObserveVerdict(flow, subject, verdict, prov.Place, prov.Stage, reason)
	}
	if actx.Valid() {
		v := "PASS"
		if !verdict {
			v = "FAIL"
		}
		tr.RecordChild(actx, flow, a.name, telemetry.StageVerdict, time.Time{}, 0, v)
		if link != "" {
			tr.RecordSpan(actx, parent, flow, a.name, telemetry.StageAppraise, spanStart, time.Since(spanStart), note, link)
		} else {
			tr.RecordSpan(actx, parent, flow, a.name, telemetry.StageAppraise, spanStart, time.Since(spanStart), note)
		}
	}
	if aud != nil {
		v := "PASS"
		if !verdict {
			v = "FAIL"
		}
		prov.Policy = policy
		aud.Emit(auditlog.Record{
			Event: auditlog.EventVerdict, Place: a.name, Flow: flow,
			Nonce: nonceHex, Policy: policy, Target: subject,
			Verdict: v, DurNS: int64(time.Since(start)), Note: note,
			Prov: &prov,
		})
	}
	return c, nil
}

// Clause fragments of the Copland policy terms (nac.Table1) that each
// appraisal stage enforces — the provenance a verdict record carries.
// Rejecting a chain at the signature stage is rejecting the `!` (sign)
// phrase of `@hop [Khop |> attest(n) X -> !]`; a golden-value mismatch
// is the measurement claim `attest(n) X` failing the appraiser's golden
// comparison (same phrase as the structure check, distinguished by the
// provenance stage); and so on.
const (
	clauseStructure = "attest(n) X"
	clauseSignature = "@hop [Khop |> attest(n) X -> !]"
	clauseNonce     = "*bank<n, X>"
	clauseHash      = "attest(n) X -> # -> !"
	clauseQuote     = "Khop |> attest(n) hardware -> !"
	clauseGolden    = "attest(n) X"
	clauseAppraise  = "@Appraiser [appraise -> store(n)]"
)

// reject builds the provenance for a failed stage.
func reject(stage, clause, reason string) auditlog.Provenance {
	return auditlog.Provenance{Clause: clause, Stage: stage, Accept: false, Reason: reason}
}

// rejectAt is reject with the deciding place stamped on — golden and
// quote failures always name the switch whose claim mismatched, which is
// what lets a collector localize a compromise instead of reporting
// "path failed".
func rejectAt(stage, clause, place, reason string) auditlog.Provenance {
	p := reject(stage, clause, reason)
	p.Place = place
	return p
}

// batchVerifiers recycles chain batch verifiers across appraisals; each
// check that batches takes one, retargets it at the active memo, and
// returns it with buffers intact.
var batchVerifiers = sync.Pool{
	New: func() any { return evidence.NewBatchVerifier(nil) },
}

// check runs the verification pipeline and renders a verdict together
// with the provenance naming the exact policy clause that decided.
// memoOverride, when non-nil, replaces the appraiser's own memo for this
// appraisal — the pool's batch-window transport. flow/actx/tr carry the
// trace context so the Verify half records as a child span of the
// appraisal (zero/nil when tracing is off or the flow unsampled).
func (a *Appraiser) check(ev *evidence.Evidence, nonce []byte, memoOverride *evidence.VerifyMemo, flow string, actx telemetry.SpanContext, tr *telemetry.FlowTracer) (bool, string, auditlog.Provenance) {
	if err := evidence.Validate(ev); err != nil {
		return false, err.Error(), reject("structure", clauseStructure, err.Error())
	}
	// Snapshot the copy-on-write tables: the referenced maps are immutable
	// once published, so the verification work below runs lock-free.
	a.mu.RLock()
	keys, golden, hashes := a.keys, a.golden, a.hashes
	strict, requireNonce := a.Strict, a.RequireNonce
	memo := a.memo
	verifySec := a.verifySec
	a.mu.RUnlock()
	if memoOverride != nil {
		memo = memoOverride
	}

	var start time.Time
	if verifySec != nil || actx.Valid() {
		start = time.Now()
	}
	// Re-label this goroutine "verify" for the signature walk below; it
	// falls back to the enclosing "appraise" region once the walk is done
	// (appraiseNoted's deferred ProfExit clears it when the appraisal
	// returns).
	ventered := a.profVerify.Enter()
	// With a memo available, front-load the chain's unverified signatures
	// through the batch equation; the memoized walk below then consumes
	// the seeded verdicts, so the rendered verdict (and error text) is
	// exactly what the per-item path produces.
	if memo != nil {
		bv := batchVerifiers.Get().(*evidence.BatchVerifier)
		bv.Reset(memo)
		if err := bv.Gather(ev, keys); err == nil {
			bv.Flush()
		} else {
			bv.Reset(memo) // drop the partial window; the walk reports the error
		}
		batchVerifiers.Put(bv)
	}
	nsigs, err := evidence.VerifySignaturesMemo(ev, keys, memo)
	if ventered {
		a.profAppraise.Enter()
	}
	verifySec.ObserveSinceExemplar(start, actx.TraceID)
	if actx.Valid() {
		stage, note := telemetry.StageVerify, ""
		if err != nil {
			stage, note = telemetry.StageVerifyFail, err.Error()
		}
		tr.RecordChild(actx, flow, a.name, stage, start, time.Since(start), note)
	}
	if err != nil {
		return false, err.Error(), reject("signature", clauseSignature, err.Error())
	}
	if requireNonce && len(nonce) > 0 && !evidence.HasNonce(ev, nonce) {
		return false, ErrNonceMissing.Error(), reject("nonce", clauseNonce, ErrNonceMissing.Error())
	}
	if len(hashes) > 0 {
		for _, h := range evidence.Hashes(ev) {
			if !hashes[h] {
				reason := fmt.Sprintf("unrecognized evidence digest %v", h)
				return false, reason, reject("hash", clauseHash, reason)
			}
		}
	} else if strict && len(evidence.Hashes(ev)) > 0 {
		reason := "hash-collapsed evidence with no expected digests provisioned"
		return false, reason, reject("hash", clauseHash, reason)
	}
	unknown, total := 0, 0
	var failReason string
	var failProv auditlog.Provenance
	evidence.WalkMeasurements(ev, func(m *evidence.Evidence) bool {
		total++
		// Hardware claims carrying a serialized quote get the deeper
		// check: the quote must verify under the platform's AIK and
		// speak for the place that presented it.
		if m.Detail == evidence.DetailHardware && len(m.Claims) > 0 {
			q, err := rot.DecodeQuote(m.Claims)
			if err != nil {
				failReason = fmt.Sprintf("hardware claim at %s: %v", m.Place, err)
				failProv = rejectAt("quote", clauseQuote, m.Place, failReason)
				return false
			}
			if q.Platform != m.Place {
				failReason = fmt.Sprintf("hardware quote speaks for %q but was presented by %q", q.Platform, m.Place)
				failProv = rejectAt("quote", clauseQuote, m.Place, failReason)
				return false
			}
			pub, ok := keys.KeyFor(q.Platform)
			if !ok {
				failReason = fmt.Sprintf("no key to verify hardware quote from %q", q.Platform)
				failProv = rejectAt("quote", clauseQuote, m.Place, failReason)
				return false
			}
			// Quote checks ride the same memo as evidence signatures: a
			// cached hardware quote re-presented across packets is
			// byte-identical, so the serialized claim bytes key the
			// memoized verdict.
			ok = memo.Check(pub, m.Claims, q.Signature, func() bool {
				return rot.VerifyQuote(pub, q, nil) == nil
			})
			if !ok {
				failReason = fmt.Sprintf("hardware quote from %s: verification failed", q.Platform)
				failProv = rejectAt("quote", clauseQuote, m.Place, failReason)
				return false
			}
		}
		want, ok := golden[goldenKey{m.Place, m.Target, m.Detail}]
		if !ok {
			unknown++
			if strict {
				failReason = fmt.Sprintf("no golden value for %s/%s (%s)", m.Place, m.Target, m.Detail)
				failProv = rejectAt("golden", clauseGolden, m.Place, failReason)
				return false
			}
			return true
		}
		if want != m.Value {
			failReason = fmt.Sprintf("measurement mismatch: %s/%s (%s) got %v want %v",
				m.Place, m.Target, m.Detail, m.Value, want)
			failProv = rejectAt("golden", clauseGolden, m.Place, failReason)
			return false
		}
		return true
	})
	if failReason != "" {
		return false, failReason, failProv
	}
	reason := okReason(nsigs, total, unknown)
	return true, reason, auditlog.Provenance{
		Clause: clauseAppraise, Stage: "accept", Accept: true, Reason: reason,
	}
}

// okReason renders the acceptance reason without fmt (two Sprintf calls
// per certificate showed up in the allocation profile).
func okReason(nsigs, measurements, unknown int) string {
	b := make([]byte, 0, 64)
	b = append(b, "ok: "...)
	b = strconv.AppendInt(b, int64(nsigs), 10)
	b = append(b, " signatures, "...)
	b = strconv.AppendInt(b, int64(measurements), 10)
	b = append(b, " measurements"...)
	if unknown > 0 {
		b = append(b, ", "...)
		b = strconv.AppendInt(b, int64(unknown), 10)
		b = append(b, " unreferenced"...)
	}
	return string(b)
}

// Store saves a certificate for later retrieval by nonce — the
// out-of-band variant's store(n).
func (a *Appraiser) Store(c *Certificate) {
	a.certMu.Lock()
	defer a.certMu.Unlock()
	a.certs[string(c.Nonce)] = c
}

// Retrieve returns the certificate stored under nonce — retrieve(n).
func (a *Appraiser) Retrieve(nonce []byte) (*Certificate, error) {
	a.certMu.Lock()
	defer a.certMu.Unlock()
	c, ok := a.certs[string(nonce)]
	if !ok {
		return nil, ErrNoCertificate
	}
	return c, nil
}

// Handler returns a rats.Handler serving MsgAppraise (verify + certify +
// store) and MsgRetrieve (fetch stored certificate) requests.
func (a *Appraiser) Handler() rats.Handler {
	return func(req *rats.Message) *rats.Message {
		switch req.Type {
		case rats.MsgAppraise:
			ev, err := evidence.Decode(req.Body)
			if err != nil {
				return &rats.Message{Type: rats.MsgError, Session: req.Session, Body: []byte(err.Error())}
			}
			subject := "unknown"
			if len(req.Claims) > 0 {
				subject = req.Claims[0]
			}
			cert, err := a.AppraiseCtx(req.Context(), subject, ev, req.Nonce)
			if err != nil {
				return &rats.Message{Type: rats.MsgError, Session: req.Session, Body: []byte(err.Error())}
			}
			a.Store(cert)
			return &rats.Message{Type: rats.MsgResult, Session: req.Session, Nonce: req.Nonce, Body: cert.Encode()}
		case rats.MsgRetrieve:
			cert, err := a.Retrieve(req.Nonce)
			if err != nil {
				return &rats.Message{Type: rats.MsgError, Session: req.Session, Body: []byte(err.Error())}
			}
			return &rats.Message{Type: rats.MsgResult, Session: req.Session, Nonce: req.Nonce, Body: cert.Encode()}
		default:
			return &rats.Message{Type: rats.MsgError, Session: req.Session,
				Body: []byte(fmt.Sprintf("unsupported message %v", req.Type))}
		}
	}
}
