package appraiser

import (
	"errors"
	"fmt"

	"pera/internal/evidence"
	"pera/internal/rot"
)

// Path appraisal for UC2 (path evidence as an authentication factor) and
// UC3 (path evidence as an authorization tag): a relying party states
// what the path must have looked like — which places processed the
// traffic, running what — and the appraiser checks chained path evidence
// against that expectation.

// ErrPathMismatch reports a failed path expectation.
var ErrPathMismatch = errors.New("appraiser: path expectation not met")

// Expectation describes one required hop property.
type Expectation struct {
	// Place that must appear ("" = any place).
	Place string
	// Target that must have been measured there ("" = any).
	Target string
	// Detail level required for the measurement.
	Detail evidence.Detail
	// Value pins the measurement digest; ignored when AnyValue.
	Value    rot.Digest
	AnyValue bool
}

func (e Expectation) matches(m *evidence.Evidence) bool {
	if e.Place != "" && e.Place != m.Place {
		return false
	}
	if e.Target != "" && e.Target != m.Target {
		return false
	}
	if e.Detail != m.Detail {
		return false
	}
	if !e.AnyValue && e.Value != m.Value {
		return false
	}
	return true
}

// CheckPath verifies that the measurements of ev contain the expectations
// in order. With exact set, the measurement list must match the
// expectations one-to-one; otherwise expectations may be interleaved with
// extra measurements (a subsequence match), which tolerates non-attesting
// elements adding nothing and attesting elements adding more detail.
func CheckPath(ev *evidence.Evidence, expect []Expectation, exact bool) error {
	ms := evidence.Measurements(ev)
	if exact {
		if len(ms) != len(expect) {
			return fmt.Errorf("%w: %d measurements, want %d", ErrPathMismatch, len(ms), len(expect))
		}
		for i, e := range expect {
			if !e.matches(ms[i]) {
				return fmt.Errorf("%w: hop %d (%s/%s) does not satisfy expectation %d",
					ErrPathMismatch, i, ms[i].Place, ms[i].Target, i)
			}
		}
		return nil
	}
	i := 0
	for _, m := range ms {
		if i < len(expect) && expect[i].matches(m) {
			i++
		}
	}
	if i != len(expect) {
		return fmt.Errorf("%w: matched %d of %d expectations", ErrPathMismatch, i, len(expect))
	}
	return nil
}

// CheckSigners verifies the distinct signer sequence of chained path
// evidence equals want — i.e., the evidence really traversed exactly
// those attesting elements in that order.
func CheckSigners(ev *evidence.Evidence, want []string) error {
	got := evidence.Signers(ev)
	if len(got) != len(want) {
		return fmt.Errorf("%w: signers %v, want %v", ErrPathMismatch, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%w: signer %d is %q, want %q", ErrPathMismatch, i, got[i], want[i])
		}
	}
	return nil
}

// PathTag derives an authorization tag from appraised path evidence: a
// digest over the ordered (place, target, value) triples of its
// measurements. Two flows that traversed the same attested processing get
// the same tag, giving UC3's FlowTags-style decisions an evidential basis.
func PathTag(ev *evidence.Evidence) rot.Digest {
	var b []byte
	for _, m := range evidence.Measurements(ev) {
		b = append(b, m.Place...)
		b = append(b, 0)
		b = append(b, m.Target...)
		b = append(b, 0)
		b = append(b, byte(m.Detail))
		b = append(b, m.Value[:]...)
	}
	return rot.Sum(b)
}
