package appraiser

import (
	"strconv"
	"sync"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rot"
)

// poolCorpus builds a deterministic corpus of appraisal jobs over mixed
// good and tampered evidence chains: every third chain has its outer
// signature corrupted, and every tenth job reuses the previous job's
// nonce to exercise the replay path. good reports how many chains are
// untampered.
func poolCorpus(t testing.TB, signer *rot.RoT, n int) (jobs []Job, good int) {
	t.Helper()
	val := rot.Sum([]byte("golden"))
	for i := 0; i < n; i++ {
		nonce := []byte("pool-" + strconv.Itoa(i))
		if i%10 == 9 {
			nonce = []byte("pool-" + strconv.Itoa(i-1)) // deliberate replay
		}
		m := evidence.Measurement(signer.Name(), "prog", signer.Name(), evidence.DetailProgram, val, nil)
		ev := evidence.Sign(signer, evidence.Seq(evidence.Nonce(nonce), m))
		if i%3 == 2 {
			// Tamper after signing: flip a signature byte.
			sig := append([]byte(nil), ev.Signature...)
			sig[0] ^= 0xff
			ev = &evidence.Evidence{Kind: evidence.KindSig, Signer: ev.Signer, Signature: sig, Left: ev.Left}
		} else if i%10 != 9 {
			good++
		}
		jobs = append(jobs, Job{Subject: "sw-under-test", Evidence: ev, Nonce: nonce})
	}
	return jobs, good
}

func poolAppraiser(signer *rot.RoT) *Appraiser {
	a := New("pool-appraiser", []byte("pool-test"))
	a.RegisterKey(signer.Name(), signer.Public())
	a.SetGolden(signer.Name(), "prog", evidence.DetailProgram, rot.Sum([]byte("golden")))
	return a
}

// TestPoolDifferential runs 100 mixed good/tampered chains through the
// serial appraiser (1 worker) and the parallel pool (8 workers) and
// requires identical per-job verdicts, reasons and errors — the parallel
// engine must be observationally equivalent to the serial one.
func TestPoolDifferential(t *testing.T) {
	signer := rot.NewDeterministic("sw1", []byte("pool-signer"))
	jobs, good := poolCorpus(t, signer, 100)

	serial := AppraiseParallel(poolAppraiser(signer), jobs, 1)
	parallel := AppraiseParallel(poolAppraiser(signer), jobs, 8)

	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result lengths: serial=%d parallel=%d want %d", len(serial), len(parallel), len(jobs))
	}
	var sPass, pPass int
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if (s.Err == nil) != (p.Err == nil) {
			t.Fatalf("job %d: err mismatch serial=%v parallel=%v", i, s.Err, p.Err)
		}
		if s.Err != nil {
			if s.Err.Error() != p.Err.Error() {
				t.Fatalf("job %d: error text mismatch %q vs %q", i, s.Err, p.Err)
			}
			continue
		}
		if s.Certificate.Verdict != p.Certificate.Verdict {
			t.Fatalf("job %d: verdict mismatch serial=%v parallel=%v", i, s.Certificate.Verdict, p.Certificate.Verdict)
		}
		if s.Certificate.Reason != p.Certificate.Reason {
			t.Fatalf("job %d: reason mismatch %q vs %q", i, s.Certificate.Reason, p.Certificate.Reason)
		}
		if s.Certificate.Verdict {
			sPass++
		}
		if p.Certificate.Verdict {
			pPass++
		}
	}
	if sPass != good || pPass != good {
		t.Fatalf("pass counts: serial=%d parallel=%d want %d", sPass, pPass, good)
	}
}

// TestPoolDifferentialMemo repeats the differential check with the
// verification memo enabled on the parallel side: memoized verification
// must never change a verdict, and re-presented chains must actually hit.
func TestPoolDifferentialMemo(t *testing.T) {
	signer := rot.NewDeterministic("sw1", []byte("pool-signer"))
	jobs, _ := poolCorpus(t, signer, 60)
	// Re-present every chain three times (nonce-less so replay protection
	// does not interfere) — the memoized pass must agree with the serial
	// appraiser on all of them.
	var repeated []Job
	for round := 0; round < 3; round++ {
		for _, j := range jobs {
			repeated = append(repeated, Job{Subject: j.Subject, Evidence: j.Evidence})
		}
	}

	serial := AppraiseParallel(poolAppraiser(signer), repeated, 1)

	memoed := poolAppraiser(signer)
	memoed.EnableMemo(0)
	parallel := AppraiseParallel(memoed, repeated, 4)

	for i := range repeated {
		if serial[i].Certificate.Verdict != parallel[i].Certificate.Verdict {
			t.Fatalf("job %d: verdict mismatch with memo", i)
		}
	}
	st := memoed.MemoStats()
	if st.Hits == 0 {
		t.Fatalf("memo recorded no hits over %d re-presented chains: %+v", len(repeated), st)
	}
	if st.HitRate() < 0.5 {
		t.Fatalf("memo hit rate %.2f, want >= 0.5 over 3x re-presented corpus: %+v", st.HitRate(), st)
	}
}

// TestPoolNonceOrdering submits many jobs sharing one nonce and checks
// exactly the first submission wins the replay check, deterministically,
// at every pool width.
func TestPoolNonceOrdering(t *testing.T) {
	signer := rot.NewDeterministic("sw1", []byte("pool-signer"))
	val := rot.Sum([]byte("golden"))
	nonce := []byte("shared-nonce")
	m := evidence.Measurement(signer.Name(), "prog", signer.Name(), evidence.DetailProgram, val, nil)
	ev := evidence.Sign(signer, evidence.Seq(evidence.Nonce(nonce), m))
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Subject: "sw", Evidence: ev, Nonce: nonce}
	}
	for _, workers := range []int{1, 4} {
		results := AppraiseParallel(poolAppraiser(signer), jobs, workers)
		if results[0].Err != nil {
			t.Fatalf("workers=%d: first submission should win the replay check: %v", workers, results[0].Err)
		}
		for i := 1; i < len(results); i++ {
			if results[i].Err != ErrNonceReplayed {
				t.Fatalf("workers=%d job %d: want ErrNonceReplayed, got %v", workers, i, results[i].Err)
			}
		}
	}
}

// TestPoolSubmitStream exercises the streaming Submit/OnResult/Close path
// under contention from multiple producers.
func TestPoolSubmitStream(t *testing.T) {
	signer := rot.NewDeterministic("sw1", []byte("pool-signer"))
	jobs, good := poolCorpus(t, signer, 100)

	p := NewPool(poolAppraiser(signer), 4)
	var mu sync.Mutex
	got := map[int]bool{}
	p.OnResult = func(r Result) {
		mu.Lock()
		got[r.Index] = true
		mu.Unlock()
	}
	var producers sync.WaitGroup
	for part := 0; part < 4; part++ {
		producers.Add(1)
		go func(part int) {
			defer producers.Done()
			for i := part * 25; i < (part+1)*25; i++ {
				p.Submit(jobs[i])
			}
		}(part)
	}
	producers.Wait()
	st := p.Close()
	if st.Jobs != 100 {
		t.Fatalf("jobs completed = %d, want 100", st.Jobs)
	}
	if len(got) != 100 {
		t.Fatalf("OnResult saw %d distinct indices, want 100", len(got))
	}
	if st.Pass == 0 || st.Fail == 0 || st.Errors == 0 {
		t.Fatalf("expected mixed outcomes over the corpus, got %+v", st)
	}
	if int(st.Pass) > good {
		t.Fatalf("pass=%d exceeds good corpus size %d", st.Pass, good)
	}
}
