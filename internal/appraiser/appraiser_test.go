package appraiser

import (
	"errors"
	"strings"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rats"
	"pera/internal/rot"
)

func attesterRoT() *rot.RoT { return rot.NewDeterministic("sw1", []byte("sw1-seed")) }

func goodEvidence(r *rot.RoT, nonce []byte) *evidence.Evidence {
	m := evidence.Measurement("attest", "firewall_v5.p4", "sw1", evidence.DetailProgram,
		rot.Sum([]byte("prog-bytes")), nil)
	return evidence.Sign(r, evidence.Seq(m, evidence.Nonce(nonce)))
}

func newAppraiser(r *rot.RoT) *Appraiser {
	a := New("Appraiser", []byte("seed"))
	a.RegisterKey("sw1", r.Public())
	a.SetGolden("sw1", "firewall_v5.p4", evidence.DetailProgram, rot.Sum([]byte("prog-bytes")))
	return a
}

func TestAppraiseGoodEvidence(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	nonce := []byte("n1")
	cert, err := a.Appraise("sw1", goodEvidence(r, nonce), nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Verdict {
		t.Fatalf("good evidence rejected: %s", cert.Reason)
	}
	if err := VerifyCertificate(a.Public(), cert); err != nil {
		t.Fatalf("certificate: %v", err)
	}
	if cert.Subject != "sw1" || string(cert.Nonce) != "n1" {
		t.Fatalf("cert fields: %+v", cert)
	}
}

func TestAppraiseDetectsMismatch(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	// Evidence claims a different program digest than golden.
	bad := evidence.Sign(r, evidence.Measurement("attest", "firewall_v5.p4", "sw1",
		evidence.DetailProgram, rot.Sum([]byte("rogue-bytes")), nil))
	cert, err := a.Appraise("sw1", bad, []byte("n2"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict {
		t.Fatal("mismatched measurement accepted")
	}
	if !strings.Contains(cert.Reason, "mismatch") {
		t.Fatalf("reason: %s", cert.Reason)
	}
}

func TestAppraiseDetectsBadSignature(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	ev := goodEvidence(r, []byte("n"))
	ev.Left.Left.Value[0] ^= 1 // tamper inside the signed payload
	cert, _ := a.Appraise("sw1", ev, []byte("n3"))
	if cert.Verdict {
		t.Fatal("tampered evidence accepted")
	}
}

func TestAppraiseUnknownSigner(t *testing.T) {
	r := attesterRoT()
	a := New("Appraiser", []byte("seed")) // no keys registered
	cert, _ := a.Appraise("sw1", goodEvidence(r, nil), []byte("n4"))
	if cert.Verdict {
		t.Fatal("unknown signer accepted")
	}
}

func TestAppraiseNonceReplay(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	nonce := []byte("replay-me")
	if _, err := a.Appraise("sw1", goodEvidence(r, nonce), nonce); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Appraise("sw1", goodEvidence(r, nonce), nonce); !errors.Is(err, ErrNonceReplayed) {
		t.Fatalf("replay: %v", err)
	}
	// Empty nonces are exempt (nonce-free in-band mode).
	if _, err := a.Appraise("sw1", goodEvidence(r, nil), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Appraise("sw1", goodEvidence(r, nil), nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequireNonceBinding(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	a.RequireNonce = true
	// Evidence carries nonce "x" but session nonce is "y".
	cert, err := a.Appraise("sw1", goodEvidence(r, []byte("x")), []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict {
		t.Fatal("evidence without session nonce accepted")
	}
	cert, _ = a.Appraise("sw1", goodEvidence(r, []byte("z")), []byte("z"))
	if !cert.Verdict {
		t.Fatalf("bound nonce rejected: %s", cert.Reason)
	}
}

func TestStrictMode(t *testing.T) {
	r := attesterRoT()
	a := New("Appraiser", []byte("seed"))
	a.RegisterKey("sw1", r.Public())
	ev := goodEvidence(r, nil)
	cert, _ := a.Appraise("sw1", ev, []byte("s1"))
	if !cert.Verdict || !strings.Contains(cert.Reason, "unreferenced") {
		t.Fatalf("permissive mode: %+v", cert)
	}
	a.Strict = true
	cert, _ = a.Appraise("sw1", ev, []byte("s2"))
	if cert.Verdict {
		t.Fatal("strict mode accepted unreferenced measurement")
	}
}

func TestAppraiseMalformedEvidence(t *testing.T) {
	a := New("Appraiser", []byte("seed"))
	bad := &evidence.Evidence{Kind: evidence.KindSeq} // missing children
	cert, err := a.Appraise("x", bad, []byte("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Verdict {
		t.Fatal("malformed evidence accepted")
	}
}

func TestCertificateCodecRoundTrip(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	cert, _ := a.Appraise("sw1", goodEvidence(r, []byte("c")), []byte("c"))
	dec, err := DecodeCertificate(cert.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Issuer != cert.Issuer || dec.Subject != cert.Subject ||
		dec.Verdict != cert.Verdict || dec.Serial != cert.Serial ||
		dec.EvidenceDigest != cert.EvidenceDigest || dec.Reason != cert.Reason {
		t.Fatalf("round trip: %+v != %+v", dec, cert)
	}
	if err := VerifyCertificate(a.Public(), dec); err != nil {
		t.Fatalf("decoded cert: %v", err)
	}
}

func TestCertificateTamperDetected(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	cert, _ := a.Appraise("sw1", goodEvidence(r, []byte("t")), []byte("t"))
	cert.Verdict = !cert.Verdict
	if err := VerifyCertificate(a.Public(), cert); err == nil {
		t.Fatal("flipped verdict verified")
	}
}

func TestDecodeCertificateGarbage(t *testing.T) {
	cases := [][]byte{nil, []byte("junk"), []byte("PERA-RESULT-V1\x00"), make([]byte, 20)}
	r := attesterRoT()
	a := newAppraiser(r)
	cert, _ := a.Appraise("sw1", goodEvidence(r, []byte("g")), []byte("g"))
	enc := cert.Encode()
	cases = append(cases, enc[:len(enc)-3])
	for i, data := range cases {
		if _, err := DecodeCertificate(data); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestStoreRetrieve(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	cert, _ := a.Appraise("sw1", goodEvidence(r, []byte("sr")), []byte("sr"))
	a.Store(cert)
	got, err := a.Retrieve([]byte("sr"))
	if err != nil || got.Serial != cert.Serial {
		t.Fatalf("retrieve: %+v %v", got, err)
	}
	if _, err := a.Retrieve([]byte("missing")); !errors.Is(err, ErrNoCertificate) {
		t.Fatalf("missing: %v", err)
	}
}

func TestRegisterAIK(t *testing.T) {
	auth := rot.NewDeterministicAuthority("op", []byte("authority"))
	r := attesterRoT()
	cert := auth.Issue(r)
	a := New("Appraiser", []byte("seed"))
	if err := a.RegisterAIK(auth.Public(), cert); err != nil {
		t.Fatal(err)
	}
	a.SetGolden("sw1", "firewall_v5.p4", evidence.DetailProgram, rot.Sum([]byte("prog-bytes")))
	res, _ := a.Appraise("sw1", goodEvidence(r, []byte("aik")), []byte("aik"))
	if !res.Verdict {
		t.Fatalf("AIK-registered evidence rejected: %s", res.Reason)
	}
	// A cert from the wrong authority is refused.
	other := rot.NewDeterministicAuthority("evil", []byte("other"))
	if err := a.RegisterAIK(other.Public(), cert); err == nil {
		t.Fatal("wrong authority accepted")
	}
}

func TestHandlerAppraiseAndRetrieve(t *testing.T) {
	r := attesterRoT()
	a := newAppraiser(r)
	h := a.Handler()

	nonce := []byte("h1")
	resp := h(&rats.Message{
		Type: rats.MsgAppraise, Session: 1, Nonce: nonce,
		Claims: []string{"sw1"},
		Body:   evidence.Encode(goodEvidence(r, nonce)),
	})
	if resp.Type != rats.MsgResult {
		t.Fatalf("appraise resp: %+v", resp)
	}
	cert, err := DecodeCertificate(resp.Body)
	if err != nil || !cert.Verdict {
		t.Fatalf("cert: %+v %v", cert, err)
	}

	// Out-of-band retrieval by nonce (the RP2 flow of expression (3)).
	resp = h(&rats.Message{Type: rats.MsgRetrieve, Session: 2, Nonce: nonce})
	if resp.Type != rats.MsgResult {
		t.Fatalf("retrieve resp: %+v", resp)
	}
	cert2, _ := DecodeCertificate(resp.Body)
	if cert2.Serial != cert.Serial {
		t.Fatal("retrieved different certificate")
	}

	// Unknown nonce.
	resp = h(&rats.Message{Type: rats.MsgRetrieve, Nonce: []byte("nope")})
	if resp.Type != rats.MsgError {
		t.Fatal("unknown nonce retrieval succeeded")
	}
	// Garbage evidence body.
	resp = h(&rats.Message{Type: rats.MsgAppraise, Body: []byte("junk")})
	if resp.Type != rats.MsgError {
		t.Fatal("garbage appraised")
	}
	// Unsupported type.
	resp = h(&rats.Message{Type: rats.MsgChallenge})
	if resp.Type != rats.MsgError {
		t.Fatal("challenge serviced by appraiser")
	}
	// Replay through the handler surfaces as an error message.
	resp = h(&rats.Message{
		Type: rats.MsgAppraise, Nonce: nonce, Body: evidence.Encode(goodEvidence(r, nonce)),
	})
	if resp.Type != rats.MsgError {
		t.Fatal("handler allowed nonce replay")
	}
}

func TestVerifyCertificateBadKey(t *testing.T) {
	if err := VerifyCertificate(nil, &Certificate{}); err == nil {
		t.Fatal("nil key accepted")
	}
}

func TestAllowHashGatesCollapsedEvidence(t *testing.T) {
	r := attesterRoT()
	a := New("Appraiser", []byte("seed"))
	a.RegisterKey("sw1", r.Public())

	inner := evidence.Measurement("attest", "prog", "sw1", evidence.DetailProgram,
		rot.Sum([]byte("claims")), nil)
	good := evidence.Sign(r, evidence.Hash(inner))

	// Without provisioning, hashes are opaque and pass (permissive mode).
	cert, _ := a.Appraise("sw1", good, []byte("h1"))
	if !cert.Verdict {
		t.Fatalf("opaque hash rejected in permissive mode: %s", cert.Reason)
	}
	// Strict mode without provisioning refuses collapsed evidence.
	a.Strict = true
	cert, _ = a.Appraise("sw1", good, []byte("h2"))
	if cert.Verdict {
		t.Fatal("strict mode accepted unprovisioned hash")
	}
	a.Strict = false

	// With the expected digest provisioned, the honest hash passes...
	a.AllowHash(evidence.DigestOf(inner))
	cert, _ = a.Appraise("sw1", good, []byte("h3"))
	if !cert.Verdict {
		t.Fatalf("expected hash rejected: %s", cert.Reason)
	}
	// ...and any other digest fails.
	other := evidence.Sign(r, evidence.Hash(evidence.Measurement("attest", "rogue", "sw1",
		evidence.DetailProgram, rot.Sum([]byte("rogue")), nil)))
	cert, _ = a.Appraise("sw1", other, []byte("h4"))
	if cert.Verdict {
		t.Fatal("foreign hash accepted")
	}
}

func TestHardwareQuoteVerification(t *testing.T) {
	r := attesterRoT()
	a := New("Appraiser", []byte("hwq"))
	a.RegisterKey("sw1", r.Public())
	r.ExtendData(0, []byte("asic"), "hw")
	pcr0, _ := r.PCR(0)
	a.SetGolden("sw1", "hardware", evidence.DetailHardware, pcr0)

	q, _ := r.Quote(nil, 0, 4)
	hw := evidence.Measurement("sw1", "hardware", "sw1", evidence.DetailHardware,
		pcr0, rot.EncodeQuote(q))
	good := evidence.Sign(r, hw)
	cert, _ := a.Appraise("sw1", good, []byte("q1"))
	if !cert.Verdict {
		t.Fatalf("quoted hardware claim rejected: %s", cert.Reason)
	}

	// A quote speaking for a different platform is refused.
	other := rot.NewDeterministic("sw9", []byte("other"))
	a.RegisterKey("sw9", other.Public())
	oq, _ := other.Quote(nil, 0, 4)
	imposter := evidence.Sign(r, evidence.Measurement("sw1", "hardware", "sw1",
		evidence.DetailHardware, pcr0, rot.EncodeQuote(oq)))
	cert, _ = a.Appraise("sw1", imposter, []byte("q2"))
	if cert.Verdict {
		t.Fatal("foreign quote accepted")
	}

	// Garbage quote bytes are refused.
	garbled := evidence.Sign(r, evidence.Measurement("sw1", "hardware", "sw1",
		evidence.DetailHardware, pcr0, []byte("not-a-quote")))
	cert, _ = a.Appraise("sw1", garbled, []byte("q3"))
	if cert.Verdict {
		t.Fatal("garbled quote accepted")
	}
}
