package appraiser

import (
	"crypto/ed25519"
	"fmt"

	"pera/internal/evidence"
)

// Spec is a declarative appraisal policy: one object that states
// everything a relying party requires of a piece of evidence. It bundles
// the appraiser's base checks (signatures, golden values, freshness) with
// structural requirements (which principals signed, what the path looked
// like), so operators can ship appraisal policy as data.
type Spec struct {
	// Subject is recorded in the issued certificate.
	Subject string
	// RequiredSigners, when non-empty, is the exact ordered list of
	// distinct signers the evidence must carry (outermost first).
	RequiredSigners []string
	// MinSignatures requires at least this many signature nodes.
	MinSignatures int
	// Expectations are path requirements checked via CheckPath.
	Expectations []Expectation
	// ExactPath requires the expectations to match measurements
	// one-to-one rather than as a subsequence.
	ExactPath bool
	// RequireNonce demands the session nonce appear in the evidence.
	RequireNonce bool
}

// AppraiseWith appraises ev under both the appraiser's base checks and
// the spec's structural requirements, issuing a single certificate whose
// verdict is the conjunction.
func (a *Appraiser) AppraiseWith(spec Spec, ev *evidence.Evidence, nonce []byte) (*Certificate, error) {
	// Temporarily honor the spec's nonce requirement without mutating
	// shared state: evaluate it here.
	cert, err := a.Appraise(spec.Subject, ev, nonce)
	if err != nil {
		return nil, err
	}
	if !cert.Verdict {
		return cert, nil
	}
	fail := func(reason string) (*Certificate, error) {
		c := *cert
		c.Verdict = false
		c.Reason = reason
		// Re-sign the amended certificate under a fresh serial.
		c.Serial = a.serial.Add(1)
		c.Signature = ed25519.Sign(a.key, certMessage(&c))
		return &c, nil
	}

	if spec.RequireNonce && len(nonce) > 0 {
		found := false
		for _, n := range evidence.Nonces(ev) {
			if string(n) == string(nonce) {
				found = true
				break
			}
		}
		if !found {
			return fail(ErrNonceMissing.Error())
		}
	}
	if n := len(evidence.Signers(ev)); spec.MinSignatures > 0 && n < spec.MinSignatures {
		return fail(fmt.Sprintf("spec: %d signers, need at least %d", n, spec.MinSignatures))
	}
	if len(spec.RequiredSigners) > 0 {
		if err := CheckSigners(ev, spec.RequiredSigners); err != nil {
			return fail("spec: " + err.Error())
		}
	}
	if len(spec.Expectations) > 0 || spec.ExactPath {
		if err := CheckPath(ev, spec.Expectations, spec.ExactPath); err != nil {
			return fail("spec: " + err.Error())
		}
	}
	return cert, nil
}
