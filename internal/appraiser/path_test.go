package appraiser

import (
	"errors"
	"strings"
	"testing"

	"pera/internal/evidence"
	"pera/internal/rot"
)

func hopMeasurement(place, target string, val string) *evidence.Evidence {
	return evidence.Measurement("attest", target, place, evidence.DetailProgram, rot.Sum([]byte(val)), nil)
}

// pathEvidence builds chained evidence: each hop signs the accumulated
// chain, like a PERA path in chained composition.
func pathEvidence(t *testing.T) *evidence.Evidence {
	t.Helper()
	ev := evidence.SeqAll(
		hopMeasurement("sw1", "firewall_v5.p4", "fw"),
		hopMeasurement("sw2", "ACL_v3.p4", "acl"),
		hopMeasurement("sw3", "fwd_v1.p4", "fwd"),
	)
	return ev
}

func TestCheckPathExactMatch(t *testing.T) {
	ev := pathEvidence(t)
	expect := []Expectation{
		{Place: "sw1", Target: "firewall_v5.p4", Detail: evidence.DetailProgram, Value: rot.Sum([]byte("fw"))},
		{Place: "sw2", Target: "ACL_v3.p4", Detail: evidence.DetailProgram, Value: rot.Sum([]byte("acl"))},
		{Place: "sw3", Target: "fwd_v1.p4", Detail: evidence.DetailProgram, Value: rot.Sum([]byte("fwd"))},
	}
	if err := CheckPath(ev, expect, true); err != nil {
		t.Fatalf("exact: %v", err)
	}
	// Wrong order fails exact matching.
	expect[0], expect[1] = expect[1], expect[0]
	if err := CheckPath(ev, expect, true); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("reorder: %v", err)
	}
}

func TestCheckPathSubsequence(t *testing.T) {
	ev := pathEvidence(t)
	// Only require the firewall and the forwarder, anywhere on the path.
	expect := []Expectation{
		{Target: "firewall_v5.p4", Detail: evidence.DetailProgram, AnyValue: true},
		{Target: "fwd_v1.p4", Detail: evidence.DetailProgram, AnyValue: true},
	}
	if err := CheckPath(ev, expect, false); err != nil {
		t.Fatalf("subsequence: %v", err)
	}
	// Requiring a scrubber that never appeared fails.
	expect = append(expect, Expectation{Target: "scrubber.p4", Detail: evidence.DetailProgram, AnyValue: true})
	if err := CheckPath(ev, expect, false); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("missing appliance: %v", err)
	}
}

func TestCheckPathLengthMismatch(t *testing.T) {
	ev := pathEvidence(t)
	if err := CheckPath(ev, nil, true); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("length: %v", err)
	}
	if err := CheckPath(ev, nil, false); err != nil {
		t.Fatalf("empty subsequence should pass: %v", err)
	}
}

func TestCheckPathDetailMismatch(t *testing.T) {
	ev := hopMeasurement("sw1", "p", "v")
	e := []Expectation{{Place: "sw1", Target: "p", Detail: evidence.DetailTables, AnyValue: true}}
	if err := CheckPath(ev, e, false); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("detail: %v", err)
	}
}

func TestCheckSigners(t *testing.T) {
	r1 := rot.NewDeterministic("sw1", []byte("1"))
	r2 := rot.NewDeterministic("sw2", []byte("2"))
	ev := evidence.Sign(r2, evidence.Seq(evidence.Sign(r1, evidence.Empty()), evidence.Empty()))
	if err := CheckSigners(ev, []string{"sw2", "sw1"}); err != nil {
		t.Fatalf("signers: %v", err)
	}
	if err := CheckSigners(ev, []string{"sw1", "sw2"}); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("order: %v", err)
	}
	if err := CheckSigners(ev, []string{"sw2"}); !errors.Is(err, ErrPathMismatch) {
		t.Fatalf("length: %v", err)
	}
}

func TestPathTagStableAndDiscriminating(t *testing.T) {
	a := pathEvidence(t)
	b := pathEvidence(t)
	if PathTag(a) != PathTag(b) {
		t.Fatal("same path, different tags")
	}
	// A path missing the ACL hop gets a different tag.
	c := evidence.Seq(
		hopMeasurement("sw1", "firewall_v5.p4", "fw"),
		hopMeasurement("sw3", "fwd_v1.p4", "fwd"),
	)
	if PathTag(a) == PathTag(c) {
		t.Fatal("different paths share a tag")
	}
	// Order matters.
	d := evidence.SeqAll(
		hopMeasurement("sw2", "ACL_v3.p4", "acl"),
		hopMeasurement("sw1", "firewall_v5.p4", "fw"),
		hopMeasurement("sw3", "fwd_v1.p4", "fwd"),
	)
	if PathTag(a) == PathTag(d) {
		t.Fatal("reordered path shares a tag")
	}
}

func TestAppraiseWithSpec(t *testing.T) {
	r1 := rot.NewDeterministic("sw1", []byte("1"))
	r2 := rot.NewDeterministic("sw2", []byte("2"))
	a := New("Appraiser", []byte("spec"))
	a.RegisterKey("sw1", r1.Public())
	a.RegisterKey("sw2", r2.Public())

	nonce := []byte("spec-nonce")
	chain := evidence.Sign(r2, evidence.Seq(
		evidence.Sign(r1, evidence.Seq(evidence.Nonce(nonce), hopMeasurement("sw1", "firewall_v5.p4", "fw"))),
		hopMeasurement("sw2", "fwd_v1.p4", "fwd"),
	))

	spec := Spec{
		Subject:         "path",
		RequiredSigners: []string{"sw2", "sw1"},
		MinSignatures:   2,
		RequireNonce:    true,
		Expectations: []Expectation{
			{Place: "sw1", Target: "firewall_v5.p4", Detail: evidence.DetailProgram, AnyValue: true},
			{Place: "sw2", Target: "fwd_v1.p4", Detail: evidence.DetailProgram, AnyValue: true},
		},
	}
	cert, err := a.AppraiseWith(spec, chain, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Verdict {
		t.Fatalf("spec-conformant evidence rejected: %s", cert.Reason)
	}
	if err := VerifyCertificate(a.Public(), cert); err != nil {
		t.Fatal(err)
	}

	// Each requirement, violated in turn, flips the verdict with a
	// signed certificate explaining why.
	cases := []struct {
		name  string
		mut   func() (Spec, *evidence.Evidence, []byte)
		wants string
	}{
		{"wrong signer order", func() (Spec, *evidence.Evidence, []byte) {
			s := spec
			s.RequireNonce = false // isolate the signer requirement
			s.RequiredSigners = []string{"sw1", "sw2"}
			return s, chain, []byte("s1")
		}, "signer"},
		{"too few signatures", func() (Spec, *evidence.Evidence, []byte) {
			s := spec
			s.RequireNonce = false
			s.RequiredSigners = nil
			s.MinSignatures = 3
			return s, chain, []byte("s2")
		}, "need at least"},
		{"missing hop", func() (Spec, *evidence.Evidence, []byte) {
			s := spec
			s.RequireNonce = false
			s.Expectations = append(s.Expectations,
				Expectation{Place: "sw9", Detail: evidence.DetailProgram, AnyValue: true})
			return s, chain, []byte("s3")
		}, "expectation"},
		{"missing nonce", func() (Spec, *evidence.Evidence, []byte) {
			s := spec
			return s, chain, []byte("other-nonce")
		}, "nonce"},
	}
	for _, tc := range cases {
		s, ev, n := tc.mut()
		cert, err := a.AppraiseWith(s, ev, n)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if cert.Verdict {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(cert.Reason, tc.wants) {
			t.Errorf("%s: reason %q missing %q", tc.name, cert.Reason, tc.wants)
		}
		if err := VerifyCertificate(a.Public(), cert); err != nil {
			t.Errorf("%s: failed-spec certificate unsigned: %v", tc.name, err)
		}
	}

	// Base-check failures short-circuit (unknown signer).
	r3 := rot.NewDeterministic("sw3", []byte("3"))
	foreign := evidence.Sign(r3, evidence.Empty())
	cert, err = a.AppraiseWith(Spec{Subject: "x"}, foreign, []byte("s4"))
	if err != nil || cert.Verdict {
		t.Fatalf("foreign signer: %+v %v", cert, err)
	}
}
