// Worker-pool appraisal engine: fans evidence chains out to N goroutines
// while preserving per-nonce ordering. This is the verify/appraise half of
// the paper's Fig. 2/3 throughput story — evidence Create/Sign runs at
// dataplane speed on the switch, so the off-switch Verify/Appraise stage
// must scale with cores to keep up.
package appraiser

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/evidence"
	"pera/internal/telemetry"
)

// Job is one appraisal request submitted to a Pool.
type Job struct {
	Subject  string
	Evidence *evidence.Evidence
	// Nonce is passed to Appraise (replay-checked when non-empty). Jobs
	// sharing a nonce are guaranteed to be appraised in submission order
	// on the same worker, so replay verdicts are deterministic.
	Nonce []byte
}

// Result is one appraisal outcome. Index is the submission sequence number
// (0-based), so callers can correlate results with jobs regardless of
// worker interleaving.
type Result struct {
	Index       int
	Certificate *Certificate
	Err         error
}

// PoolStats aggregates verdicts across a pool's lifetime.
type PoolStats struct {
	Jobs   uint64 // jobs completed
	Pass   uint64 // certificates with Verdict true
	Fail   uint64 // certificates with Verdict false
	Errors uint64 // operational errors (e.g. nonce replay)
}

// Pool appraises evidence on a fixed set of worker goroutines.
//
// Dispatch preserves per-nonce ordering: every job is routed to a worker
// chosen by hashing its nonce, so two submissions with the same nonce are
// appraised in submission order (the first wins the replay check, the
// second deterministically gets ErrNonceReplayed). Nonce-less jobs are
// spread round-robin.
type Pool struct {
	a       *Appraiser
	workers int
	queues  []chan poolTask
	wg      sync.WaitGroup

	// OnResult, when set before the first Submit, is invoked from the
	// worker goroutine for every completed job. It must be safe for
	// concurrent use.
	OnResult func(Result)

	next   atomic.Uint64 // submission index + round-robin source
	closed atomic.Bool

	jobs   atomic.Uint64
	pass   atomic.Uint64
	fail   atomic.Uint64
	errors atomic.Uint64

	// latency[i], when instrumented, is worker i's appraisal-latency
	// histogram; tracer records appraise/verdict spans for sampled flows.
	latency []*telemetry.Histogram
	tracer  *telemetry.FlowTracer
	// aud, when attached, receives the pool_drained summary record at
	// Close (per-job appraise/verdict records come from the Appraiser
	// itself, with worker attribution in their notes).
	aud *auditlog.Writer
}

type poolTask struct {
	job  Job
	idx  int
	res  *Result         // AppraiseAll: slot to fill
	done *sync.WaitGroup // AppraiseAll: completion signal
}

// NewPool starts workers goroutines appraising against a. workers <= 0
// selects GOMAXPROCS. Close must be called to release the workers.
func NewPool(a *Appraiser, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{a: a, workers: workers, queues: make([]chan poolTask, workers)}
	for i := range p.queues {
		p.queues[i] = make(chan poolTask, 64)
		p.wg.Add(1)
		go p.worker(i, p.queues[i])
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Instrument registers the pool's verdict counters, live queue depth and
// per-worker appraisal-latency histograms (pera_appraise_seconds with a
// worker label) with reg. Like OnResult, it must be called before the
// first Submit: workers observe the instruments only through the task
// channel's happens-before edge.
func (p *Pool) Instrument(reg *telemetry.Registry) {
	p.latency = make([]*telemetry.Histogram, p.workers)
	for i := range p.latency {
		p.latency[i] = reg.Histogram("pera_appraise_seconds", nil, telemetry.L("worker", strconv.Itoa(i)))
	}
	reg.RegisterFunc("pera_pool_jobs_total", telemetry.KindCounter,
		func() float64 { return float64(p.jobs.Load()) })
	reg.RegisterFunc("pera_pool_pass_total", telemetry.KindCounter,
		func() float64 { return float64(p.pass.Load()) })
	reg.RegisterFunc("pera_pool_fail_total", telemetry.KindCounter,
		func() float64 { return float64(p.fail.Load()) })
	reg.RegisterFunc("pera_pool_errors_total", telemetry.KindCounter,
		func() float64 { return float64(p.errors.Load()) })
	reg.RegisterFunc("pera_pool_workers", telemetry.KindGauge,
		func() float64 { return float64(p.workers) })
	reg.RegisterFunc("pera_pool_queue_depth", telemetry.KindGauge, func() float64 {
		depth := 0
		for _, q := range p.queues {
			depth += len(q)
		}
		return float64(depth)
	})
}

// SetTracer attaches a flow tracer recording appraise/verdict spans for
// sampled flows. Like Instrument, call before the first Submit.
func (p *Pool) SetTracer(tr *telemetry.FlowTracer) { p.tracer = tr }

// SetAudit attaches the audit ledger for the pool's lifecycle records
// and arms worker attribution on per-job records. Like Instrument, call
// before the first Submit.
func (p *Pool) SetAudit(w *auditlog.Writer) { p.aud = w }

// jobFlowID is the trace correlation ID the appraisal side can see: the
// job nonce (hex) when present — matching the switch side's in-band
// nonce ID — else the first nonce inside the evidence, else the subject.
func jobFlowID(job *Job) string {
	if len(job.Nonce) > 0 {
		return hex.EncodeToString(job.Nonce)
	}
	if ns := evidence.Nonces(job.Evidence); len(ns) > 0 {
		return hex.EncodeToString(ns[0])
	}
	return job.Subject
}

func (p *Pool) worker(id int, queue <-chan poolTask) {
	defer p.wg.Done()
	for t := range queue {
		var hist *telemetry.Histogram
		if p.latency != nil {
			hist = p.latency[id]
		}
		var start time.Time
		if hist != nil || p.tracer != nil {
			start = time.Now()
		}
		attr := ""
		if p.aud != nil {
			attr = "worker " + strconv.Itoa(id)
		}
		cert, err := p.a.AppraiseNoted(t.job.Subject, t.job.Evidence, t.job.Nonce, attr)
		hist.ObserveSince(start)
		if tr := p.tracer; tr != nil {
			flow := jobFlowID(&t.job)
			var dur time.Duration
			if !start.IsZero() {
				dur = time.Since(start)
			}
			note := "PASS"
			switch {
			case err != nil:
				note = "error: " + err.Error()
			case !cert.Verdict:
				note = "FAIL"
			}
			tr.Record(flow, p.a.Name(), telemetry.StageAppraise, dur, "worker "+strconv.Itoa(id))
			tr.Record(flow, p.a.Name(), telemetry.StageVerdict, 0, note)
		}
		r := Result{Index: t.idx, Certificate: cert, Err: err}
		p.jobs.Add(1)
		switch {
		case err != nil:
			p.errors.Add(1)
		case cert.Verdict:
			p.pass.Add(1)
		default:
			p.fail.Add(1)
		}
		if t.res != nil {
			*t.res = r
		}
		if p.OnResult != nil {
			p.OnResult(r)
		}
		if t.done != nil {
			t.done.Done()
		}
	}
}

// route picks the worker queue for a job: nonce-affine for non-empty
// nonces, round-robin otherwise.
func (p *Pool) route(job *Job, idx int) chan poolTask {
	if len(job.Nonce) > 0 {
		h := fnv.New32a()
		h.Write(job.Nonce)
		return p.queues[h.Sum32()%uint32(p.workers)]
	}
	return p.queues[idx%p.workers]
}

// Submit enqueues a job and returns its submission index. It blocks only
// when the routed worker's queue is full (natural backpressure on the
// producer). Submit must not be called after Close.
func (p *Pool) Submit(job Job) int {
	idx := int(p.next.Add(1) - 1)
	p.route(&job, idx) <- poolTask{job: job, idx: idx}
	return idx
}

// submitTracked is Submit with a result slot and completion group, used by
// AppraiseAll.
func (p *Pool) submitTracked(job Job, res *Result, done *sync.WaitGroup) {
	idx := int(p.next.Add(1) - 1)
	p.route(&job, idx) <- poolTask{job: job, idx: idx, res: res, done: done}
}

// AppraiseAll runs every job through the pool and returns results in
// submission order. It may be interleaved with concurrent Submit calls;
// only the jobs passed here are waited on.
func (p *Pool) AppraiseAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var done sync.WaitGroup
	done.Add(len(jobs))
	for i := range jobs {
		p.submitTracked(jobs[i], &results[i], &done)
	}
	done.Wait()
	return results
}

// Stats returns a snapshot of the aggregate verdict counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Jobs:   p.jobs.Load(),
		Pass:   p.pass.Load(),
		Fail:   p.fail.Load(),
		Errors: p.errors.Load(),
	}
}

// Close drains the queues, stops the workers and returns the final
// aggregate stats. The pool must not be used afterwards.
func (p *Pool) Close() PoolStats {
	if p.closed.CompareAndSwap(false, true) {
		for _, q := range p.queues {
			close(q)
		}
		p.wg.Wait()
		if p.aud != nil {
			st := p.Stats()
			p.aud.Emit(auditlog.Record{
				Event: auditlog.EventPoolDrained, Place: p.a.Name(),
				Note: fmt.Sprintf("workers=%d jobs=%d pass=%d fail=%d errors=%d",
					p.workers, st.Jobs, st.Pass, st.Fail, st.Errors),
			})
		}
	}
	return p.Stats()
}

// AppraiseParallel is the one-shot form: it appraises jobs on a temporary
// pool of the given width and returns results in submission order. The
// serial appraiser is the workers == 1 case, so differential tests can
// compare widths directly.
func AppraiseParallel(a *Appraiser, jobs []Job, workers int) []Result {
	p := NewPool(a, workers)
	defer p.Close()
	return p.AppraiseAll(jobs)
}
