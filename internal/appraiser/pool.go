// Worker-pool appraisal engine: fans evidence chains out to N goroutines
// while preserving per-nonce ordering. This is the verify/appraise half of
// the paper's Fig. 2/3 throughput story — evidence Create/Sign runs at
// dataplane speed on the switch, so the off-switch Verify/Appraise stage
// must scale with cores to keep up.
package appraiser

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"pera/internal/evidence"
)

// Job is one appraisal request submitted to a Pool.
type Job struct {
	Subject  string
	Evidence *evidence.Evidence
	// Nonce is passed to Appraise (replay-checked when non-empty). Jobs
	// sharing a nonce are guaranteed to be appraised in submission order
	// on the same worker, so replay verdicts are deterministic.
	Nonce []byte
}

// Result is one appraisal outcome. Index is the submission sequence number
// (0-based), so callers can correlate results with jobs regardless of
// worker interleaving.
type Result struct {
	Index       int
	Certificate *Certificate
	Err         error
}

// PoolStats aggregates verdicts across a pool's lifetime.
type PoolStats struct {
	Jobs   uint64 // jobs completed
	Pass   uint64 // certificates with Verdict true
	Fail   uint64 // certificates with Verdict false
	Errors uint64 // operational errors (e.g. nonce replay)
}

// Pool appraises evidence on a fixed set of worker goroutines.
//
// Dispatch preserves per-nonce ordering: every job is routed to a worker
// chosen by hashing its nonce, so two submissions with the same nonce are
// appraised in submission order (the first wins the replay check, the
// second deterministically gets ErrNonceReplayed). Nonce-less jobs are
// spread round-robin.
type Pool struct {
	a       *Appraiser
	workers int
	queues  []chan poolTask
	wg      sync.WaitGroup

	// OnResult, when set before the first Submit, is invoked from the
	// worker goroutine for every completed job. It must be safe for
	// concurrent use.
	OnResult func(Result)

	next   atomic.Uint64 // submission index + round-robin source
	closed atomic.Bool

	jobs   atomic.Uint64
	pass   atomic.Uint64
	fail   atomic.Uint64
	errors atomic.Uint64
}

type poolTask struct {
	job  Job
	idx  int
	res  *Result         // AppraiseAll: slot to fill
	done *sync.WaitGroup // AppraiseAll: completion signal
}

// NewPool starts workers goroutines appraising against a. workers <= 0
// selects GOMAXPROCS. Close must be called to release the workers.
func NewPool(a *Appraiser, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{a: a, workers: workers, queues: make([]chan poolTask, workers)}
	for i := range p.queues {
		p.queues[i] = make(chan poolTask, 64)
		p.wg.Add(1)
		go p.worker(p.queues[i])
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(queue <-chan poolTask) {
	defer p.wg.Done()
	for t := range queue {
		cert, err := p.a.Appraise(t.job.Subject, t.job.Evidence, t.job.Nonce)
		r := Result{Index: t.idx, Certificate: cert, Err: err}
		p.jobs.Add(1)
		switch {
		case err != nil:
			p.errors.Add(1)
		case cert.Verdict:
			p.pass.Add(1)
		default:
			p.fail.Add(1)
		}
		if t.res != nil {
			*t.res = r
		}
		if p.OnResult != nil {
			p.OnResult(r)
		}
		if t.done != nil {
			t.done.Done()
		}
	}
}

// route picks the worker queue for a job: nonce-affine for non-empty
// nonces, round-robin otherwise.
func (p *Pool) route(job *Job, idx int) chan poolTask {
	if len(job.Nonce) > 0 {
		h := fnv.New32a()
		h.Write(job.Nonce)
		return p.queues[h.Sum32()%uint32(p.workers)]
	}
	return p.queues[idx%p.workers]
}

// Submit enqueues a job and returns its submission index. It blocks only
// when the routed worker's queue is full (natural backpressure on the
// producer). Submit must not be called after Close.
func (p *Pool) Submit(job Job) int {
	idx := int(p.next.Add(1) - 1)
	p.route(&job, idx) <- poolTask{job: job, idx: idx}
	return idx
}

// submitTracked is Submit with a result slot and completion group, used by
// AppraiseAll.
func (p *Pool) submitTracked(job Job, res *Result, done *sync.WaitGroup) {
	idx := int(p.next.Add(1) - 1)
	p.route(&job, idx) <- poolTask{job: job, idx: idx, res: res, done: done}
}

// AppraiseAll runs every job through the pool and returns results in
// submission order. It may be interleaved with concurrent Submit calls;
// only the jobs passed here are waited on.
func (p *Pool) AppraiseAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var done sync.WaitGroup
	done.Add(len(jobs))
	for i := range jobs {
		p.submitTracked(jobs[i], &results[i], &done)
	}
	done.Wait()
	return results
}

// Stats returns a snapshot of the aggregate verdict counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Jobs:   p.jobs.Load(),
		Pass:   p.pass.Load(),
		Fail:   p.fail.Load(),
		Errors: p.errors.Load(),
	}
}

// Close drains the queues, stops the workers and returns the final
// aggregate stats. The pool must not be used afterwards.
func (p *Pool) Close() PoolStats {
	if p.closed.CompareAndSwap(false, true) {
		for _, q := range p.queues {
			close(q)
		}
		p.wg.Wait()
	}
	return p.Stats()
}

// AppraiseParallel is the one-shot form: it appraises jobs on a temporary
// pool of the given width and returns results in submission order. The
// serial appraiser is the workers == 1 case, so differential tests can
// compare widths directly.
func AppraiseParallel(a *Appraiser, jobs []Job, workers int) []Result {
	p := NewPool(a, workers)
	defer p.Close()
	return p.AppraiseAll(jobs)
}
