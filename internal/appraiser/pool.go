// Worker-pool appraisal engine: fans evidence chains out to N goroutines
// while preserving per-nonce ordering. This is the verify/appraise half of
// the paper's Fig. 2/3 throughput story — evidence Create/Sign runs at
// dataplane speed on the switch, so the off-switch Verify/Appraise stage
// must scale with cores to keep up.
package appraiser

import (
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pera/internal/auditlog"
	"pera/internal/evidence"
	"pera/internal/telemetry"
)

// Job is one appraisal request submitted to a Pool.
type Job struct {
	Subject  string
	Evidence *evidence.Evidence
	// Nonce is passed to Appraise (replay-checked when non-empty). Jobs
	// sharing a nonce are guaranteed to be appraised in submission order
	// on the same worker, so replay verdicts are deterministic.
	Nonce []byte
	// Trace, when set, is the submitter's span context (e.g. extracted
	// from a rats frame): the appraisal spans parent under it. When
	// zero, sampled jobs root their flow-derived trace, which still
	// joins the switch-side spans of the same flow.
	Trace telemetry.SpanContext
}

// Result is one appraisal outcome. Index is the submission sequence number
// (0-based), so callers can correlate results with jobs regardless of
// worker interleaving.
type Result struct {
	Index       int
	Certificate *Certificate
	Err         error
}

// PoolStats aggregates verdicts across a pool's lifetime.
type PoolStats struct {
	Jobs   uint64 // jobs completed
	Pass   uint64 // certificates with Verdict true
	Fail   uint64 // certificates with Verdict false
	Errors uint64 // operational errors (e.g. nonce replay)
}

// Pool appraises evidence on a fixed set of worker goroutines.
//
// Dispatch preserves per-nonce ordering: every job is routed to a worker
// chosen by hashing its nonce, so two submissions with the same nonce are
// appraised in submission order (the first wins the replay check, the
// second deterministically gets ErrNonceReplayed). Nonce-less jobs are
// spread round-robin.
type Pool struct {
	a       *Appraiser
	workers int
	queues  []chan poolTask
	wg      sync.WaitGroup

	// OnResult, when set before the first Submit, is invoked from the
	// worker goroutine for every completed job. It must be safe for
	// concurrent use.
	OnResult func(Result)

	next   atomic.Uint64 // submission index + round-robin source
	closed atomic.Bool

	// win, when set via EnableVerifyWindow, batches Submit-path jobs into
	// bounded-latency signature-verification windows before dispatch.
	win *verifyWindow

	jobs   atomic.Uint64
	pass   atomic.Uint64
	fail   atomic.Uint64
	errors atomic.Uint64

	// latency[i], when instrumented, is worker i's appraisal-latency
	// histogram; tracer records appraise/verdict spans for sampled flows.
	latency []*telemetry.Histogram
	tracer  *telemetry.FlowTracer
	// aud, when attached, receives the pool_drained summary record at
	// Close (per-job appraise/verdict records come from the Appraiser
	// itself, with worker attribution in their notes).
	aud *auditlog.Writer
}

type poolTask struct {
	job  Job
	idx  int
	res  *Result         // AppraiseAll: slot to fill
	done *sync.WaitGroup // AppraiseAll: completion signal
	// memo, when set, overrides the appraiser's memo for this appraisal —
	// the transport that hands a batch window's pre-verified signature
	// verdicts to the worker without installing a persistent cache.
	memo *evidence.VerifyMemo
	// link, when set, names the shared batch-flush span whose batched
	// verification this job's signatures rode — recorded as a span link
	// (not a parent: the flush serves many jobs across many traces).
	link string
}

// NewPool starts workers goroutines appraising against a. workers <= 0
// selects GOMAXPROCS. Close must be called to release the workers.
func NewPool(a *Appraiser, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{a: a, workers: workers, queues: make([]chan poolTask, workers)}
	for i := range p.queues {
		p.queues[i] = make(chan poolTask, 64)
		p.wg.Add(1)
		go p.worker(i, p.queues[i])
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Instrument registers the pool's verdict counters, live queue depth and
// per-worker appraisal-latency histograms (pera_appraise_seconds with a
// worker label) with reg. Like OnResult, it must be called before the
// first Submit: workers observe the instruments only through the task
// channel's happens-before edge.
func (p *Pool) Instrument(reg *telemetry.Registry) {
	p.latency = make([]*telemetry.Histogram, p.workers)
	for i := range p.latency {
		p.latency[i] = reg.Histogram("pera_appraise_seconds", nil, telemetry.L("worker", strconv.Itoa(i)))
	}
	reg.RegisterFunc("pera_pool_jobs_total", telemetry.KindCounter,
		func() float64 { return float64(p.jobs.Load()) })
	reg.RegisterFunc("pera_pool_pass_total", telemetry.KindCounter,
		func() float64 { return float64(p.pass.Load()) })
	reg.RegisterFunc("pera_pool_fail_total", telemetry.KindCounter,
		func() float64 { return float64(p.fail.Load()) })
	reg.RegisterFunc("pera_pool_errors_total", telemetry.KindCounter,
		func() float64 { return float64(p.errors.Load()) })
	reg.RegisterFunc("pera_pool_workers", telemetry.KindGauge,
		func() float64 { return float64(p.workers) })
	reg.RegisterFunc("pera_pool_queue_depth", telemetry.KindGauge, func() float64 {
		depth := 0
		for _, q := range p.queues {
			depth += len(q)
		}
		return float64(depth)
	})
}

// SetTracer attaches a flow tracer recording appraise/verdict spans for
// sampled flows. Like Instrument, call before the first Submit.
func (p *Pool) SetTracer(tr *telemetry.FlowTracer) { p.tracer = tr }

// SetAudit attaches the audit ledger for the pool's lifecycle records
// and arms worker attribution on per-job records. Like Instrument, call
// before the first Submit.
func (p *Pool) SetAudit(w *auditlog.Writer) { p.aud = w }

// jobFlowID is the trace correlation ID the appraisal side can see: the
// job nonce (hex) when present — matching the switch side's in-band
// nonce ID — else the first nonce inside the evidence, else the subject.
func jobFlowID(job *Job) string {
	if len(job.Nonce) > 0 {
		return hex.EncodeToString(job.Nonce)
	}
	if n := evidence.FirstNonce(job.Evidence); n != nil {
		return hex.EncodeToString(n)
	}
	return job.Subject
}

func (p *Pool) worker(id int, queue <-chan poolTask) {
	defer p.wg.Done()
	for t := range queue {
		var hist *telemetry.Histogram
		if p.latency != nil {
			hist = p.latency[id]
		}
		var start time.Time
		if hist != nil || p.tracer != nil {
			start = time.Now()
		}
		attr := ""
		if p.aud != nil {
			attr = "worker " + strconv.Itoa(id)
		}
		cert, err := p.a.appraiseNoted(t.job.Trace, t.job.Subject, t.job.Evidence, t.job.Nonce, attr, t.memo, t.link)
		hist.ObserveSince(start)
		if tr := p.tracer; tr != nil {
			flow := jobFlowID(&t.job)
			if actx := tr.ChildContext(t.job.Trace, flow); actx.Valid() {
				var dur time.Duration
				if !start.IsZero() {
					dur = time.Since(start)
				}
				note := "PASS"
				switch {
				case err != nil:
					note = "error: " + err.Error()
				case !cert.Verdict:
					note = "FAIL"
				}
				if t.link != "" {
					tr.RecordSpan(actx, t.job.Trace, flow, p.a.Name(), telemetry.StageAppraise, start, dur, "worker "+strconv.Itoa(id), t.link)
				} else {
					tr.RecordSpan(actx, t.job.Trace, flow, p.a.Name(), telemetry.StageAppraise, start, dur, "worker "+strconv.Itoa(id))
				}
				tr.RecordChild(actx, flow, p.a.Name(), telemetry.StageVerdict, time.Time{}, 0, note)
			}
		}
		r := Result{Index: t.idx, Certificate: cert, Err: err}
		p.jobs.Add(1)
		switch {
		case err != nil:
			p.errors.Add(1)
		case cert.Verdict:
			p.pass.Add(1)
		default:
			p.fail.Add(1)
		}
		if t.res != nil {
			*t.res = r
		}
		if p.OnResult != nil {
			p.OnResult(r)
		}
		if t.done != nil {
			t.done.Done()
		}
	}
}

// route picks the worker queue for a job: nonce-affine for non-empty
// nonces, round-robin otherwise.
func (p *Pool) route(job *Job, idx int) chan poolTask {
	if len(job.Nonce) > 0 {
		h := fnv.New32a()
		h.Write(job.Nonce)
		return p.queues[h.Sum32()%uint32(p.workers)]
	}
	return p.queues[idx%p.workers]
}

// Submit enqueues a job and returns its submission index. It blocks only
// when the routed worker's queue is full (natural backpressure on the
// producer). Submit must not be called after Close. With a verify window
// enabled, the job is held for at most the window's delay before
// dispatch; per-nonce ordering is preserved because the window drains in
// submission order.
func (p *Pool) Submit(job Job) int {
	idx := int(p.next.Add(1) - 1)
	t := poolTask{job: job, idx: idx}
	if w := p.win; w != nil {
		p.windowAdd(w, t)
		return idx
	}
	p.route(&job, idx) <- t
	return idx
}

// submitTracked is Submit with a result slot, completion group, memo
// override and batch-flush span link, used by AppraiseAll. It bypasses
// the verify window: AppraiseAll runs its own whole-call batch prewarm.
func (p *Pool) submitTracked(job Job, res *Result, done *sync.WaitGroup, memo *evidence.VerifyMemo, link string) {
	idx := int(p.next.Add(1) - 1)
	p.route(&job, idx) <- poolTask{job: job, idx: idx, res: res, done: done, memo: memo, link: link}
}

// verifyWindow is the bounded-latency batching stage in front of the
// workers: Submit-path jobs are buffered until the window fills or the
// delay timer fires, their chains' signatures verified as one Ed25519
// batch, then dispatched in submission order. The crypto runs under the
// window mutex, so producers feel the window's latency as backpressure —
// that is the bound the delay parameter promises.
type verifyWindow struct {
	mu       sync.Mutex
	buf      []poolTask
	timer    *time.Timer
	maxJobs  int
	maxDelay time.Duration
}

// EnableVerifyWindow inserts a batch-verification window in front of the
// workers: Submit-path jobs wait for at most maxDelay (or until maxJobs
// accumulate, whichever is first) so their signatures can be verified
// together with one batch equation. maxJobs <= 1 and maxDelay <= 0 pick
// defaults (16 jobs, 2ms). Like Instrument, call before the first
// Submit; AppraiseAll is unaffected (it batches whole calls already).
func (p *Pool) EnableVerifyWindow(maxJobs int, maxDelay time.Duration) {
	if maxJobs <= 1 {
		maxJobs = 16
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	p.win = &verifyWindow{maxJobs: maxJobs, maxDelay: maxDelay}
}

// windowAdd buffers one task, flushing when the window fills and arming
// the delay timer for the partial-window case.
func (p *Pool) windowAdd(w *verifyWindow, t poolTask) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, t)
	if len(w.buf) >= w.maxJobs {
		p.windowFlushLocked(w)
		return
	}
	if w.timer == nil {
		w.timer = time.AfterFunc(w.maxDelay, func() { p.windowFlush(w) })
	}
}

func (p *Pool) windowFlush(w *verifyWindow) {
	w.mu.Lock()
	defer w.mu.Unlock()
	p.windowFlushLocked(w)
}

// windowFlushLocked batch-verifies the buffered chains and dispatches
// them in buffered (= submission) order. Dispatch happens under the
// window mutex so a timer flush racing Close cannot send on a closed
// queue: Close's final flush holds the same lock and stops the timer.
func (p *Pool) windowFlushLocked(w *verifyWindow) {
	if w.timer != nil {
		w.timer.Stop()
		w.timer = nil
	}
	if len(w.buf) == 0 {
		return
	}
	memo, override := p.windowMemo()
	keys := p.a.keysSnapshot()
	flushCtx, flushStart := p.flushSpanStart(func(yield func(*Job) bool) {
		for i := range w.buf {
			if !yield(&w.buf[i].job) {
				return
			}
		}
	})
	ventered := p.a.profVerify.Enter()
	bv := batchVerifiers.Get().(*evidence.BatchVerifier)
	bv.Reset(memo)
	for i := range w.buf {
		// Gather errors (unknown signer, malformed tree) are dropped here;
		// the worker's appraisal walk reproduces them verbatim.
		_ = bv.Gather(w.buf[i].job.Evidence, keys)
	}
	bv.Flush()
	batchVerifiers.Put(bv)
	telemetry.ProfExit(ventered)
	link := p.flushSpanEnd(flushCtx, flushStart, len(w.buf))
	for i := range w.buf {
		t := w.buf[i]
		t.memo = override
		t.link = link
		p.route(&t.job, t.idx) <- t
	}
	w.buf = w.buf[:0]
}

// flushSpanStart mints the shared batch-flush span's context when the
// tracer would keep it: the span rides the trace of the first sampled
// job in the batch (one batch serves many traces; the others reach it
// through their appraise spans' links). Returns a zero context when
// tracing is off or no buffered flow is sampled.
func (p *Pool) flushSpanStart(jobs func(yield func(*Job) bool)) (telemetry.SpanContext, time.Time) {
	tr := p.tracer
	if tr == nil {
		return telemetry.SpanContext{}, time.Time{}
	}
	var ctx telemetry.SpanContext
	jobs(func(j *Job) bool {
		flow := jobFlowID(j)
		if tr.Sampled(flow) {
			ctx = telemetry.SpanContext{TraceID: telemetry.TraceIDFromFlow(flow), SpanID: telemetry.NewSpanID()}
			return false
		}
		return true
	})
	if !ctx.Valid() {
		return telemetry.SpanContext{}, time.Time{}
	}
	return ctx, time.Now()
}

// flushSpanEnd records the batch-flush span and returns its span ID for
// the batched jobs to link to ("" when none was started).
func (p *Pool) flushSpanEnd(ctx telemetry.SpanContext, start time.Time, jobs int) string {
	if !ctx.Valid() {
		return ""
	}
	p.tracer.RecordSpan(ctx, telemetry.SpanContext{}, "batch", p.a.Name(),
		telemetry.StageBatchFlush, start, time.Since(start), strconv.Itoa(jobs)+" jobs")
	return ctx.SpanID
}

// windowMemo picks the memo a batch window seeds: the appraiser's own
// persistent memo when enabled (override nil — workers already use it),
// else a fresh ephemeral memo that must be threaded through the tasks
// and dies with the window, so memo-off configurations batch within a
// window without gaining a cross-call cache.
func (p *Pool) windowMemo() (memo, override *evidence.VerifyMemo) {
	if m := p.a.memoSnapshot(); m != nil {
		return m, nil
	}
	m := evidence.NewVerifyMemo(1024)
	return m, m
}

// AppraiseAll runs every job through the pool and returns results in
// submission order. It may be interleaved with concurrent Submit calls;
// only the jobs passed here are waited on.
//
// Two window-level optimizations apply to the whole call:
//
//   - identical nonce-less jobs — same subject, same evidence tree — are
//     coalesced: one appraisal runs and every duplicate receives its
//     certificate. High-inertia evidence re-presented across the packets
//     of one batch is pointer-identical (the switch caches the frame),
//     so re-appraising it per packet proves nothing the first appraisal
//     didn't. Jobs with a nonce are never coalesced: replay semantics
//     require each submission to be appraised.
//   - the unique chains' signatures are batch-verified up front, in
//     parallel sub-windows, seeding the verification memo the dispatched
//     appraisals then consume.
//
// Coalesced duplicates still count in Stats and still trigger OnResult
// (from this goroutine, not a worker); their Result.Index is the
// leader's.
func (p *Pool) AppraiseAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	var done sync.WaitGroup

	type dupKey struct {
		subject string
		ev      *evidence.Evidence
	}
	leader := make(map[dupKey]int, len(jobs))
	leaderOf := make([]int, len(jobs)) // -1 = this job runs; else index of its leader
	dups := 0
	for i := range jobs {
		leaderOf[i] = -1
		if len(jobs[i].Nonce) != 0 {
			continue
		}
		k := dupKey{jobs[i].Subject, jobs[i].Evidence}
		if l, ok := leader[k]; ok {
			leaderOf[i] = l
			dups++
		} else {
			leader[k] = i
		}
	}

	memo, link := p.prewarm(jobs, leaderOf)

	done.Add(len(jobs) - dups)
	for i := range jobs {
		if leaderOf[i] == -1 {
			p.submitTracked(jobs[i], &results[i], &done, memo, link)
		}
	}
	done.Wait()

	for i := range jobs {
		l := leaderOf[i]
		if l == -1 {
			continue
		}
		r := results[l]
		results[i] = r
		p.jobs.Add(1)
		switch {
		case r.Err != nil:
			p.errors.Add(1)
		case r.Certificate != nil && r.Certificate.Verdict:
			p.pass.Add(1)
		default:
			p.fail.Add(1)
		}
		if p.OnResult != nil {
			p.OnResult(r)
		}
	}
	return results
}

// prewarm batch-verifies the signatures of the call's unique chains,
// split across up to Workers parallel sub-windows, before any job is
// dispatched. It returns the memo override to stamp on the tasks (nil
// when the appraiser's own memo is the seed target) and the span ID of
// the whole-call batch-flush span for the jobs to link to.
func (p *Pool) prewarm(jobs []Job, leaderOf []int) (*evidence.VerifyMemo, string) {
	memo, override := p.windowMemo()
	keys := p.a.keysSnapshot()
	uniq := make([]int, 0, len(jobs))
	for i := range jobs {
		if leaderOf[i] == -1 {
			uniq = append(uniq, i)
		}
	}
	if len(uniq) == 0 {
		return override, ""
	}
	flushCtx, flushStart := p.flushSpanStart(func(yield func(*Job) bool) {
		for _, j := range uniq {
			if !yield(&jobs[j]) {
				return
			}
		}
	})
	parts := p.workers
	if parts > len(uniq) {
		parts = len(uniq)
	}
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Fresh goroutine: pprof labels are goroutine-scoped, so the
			// batch crypto must label itself here, not inherit the caller's.
			defer telemetry.ProfExit(p.a.profVerify.Enter())
			bv := batchVerifiers.Get().(*evidence.BatchVerifier)
			bv.Reset(memo)
			for j := w; j < len(uniq); j += parts {
				_ = bv.Gather(jobs[uniq[j]].Evidence, keys)
			}
			bv.Flush()
			batchVerifiers.Put(bv)
		}(w)
	}
	wg.Wait()
	return override, p.flushSpanEnd(flushCtx, flushStart, len(uniq))
}

// Stats returns a snapshot of the aggregate verdict counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Jobs:   p.jobs.Load(),
		Pass:   p.pass.Load(),
		Fail:   p.fail.Load(),
		Errors: p.errors.Load(),
	}
}

// Close drains the queues, stops the workers and returns the final
// aggregate stats. The pool must not be used afterwards.
func (p *Pool) Close() PoolStats {
	if p.closed.CompareAndSwap(false, true) {
		if w := p.win; w != nil {
			p.windowFlush(w) // dispatch any buffered partial window
		}
		for _, q := range p.queues {
			close(q)
		}
		p.wg.Wait()
		if p.aud != nil {
			st := p.Stats()
			p.aud.Emit(auditlog.Record{
				Event: auditlog.EventPoolDrained, Place: p.a.Name(),
				Note: fmt.Sprintf("workers=%d jobs=%d pass=%d fail=%d errors=%d",
					p.workers, st.Jobs, st.Pass, st.Fail, st.Errors),
			})
		}
	}
	return p.Stats()
}

// AppraiseParallel is the one-shot form: it appraises jobs on a temporary
// pool of the given width and returns results in submission order. The
// serial appraiser is the workers == 1 case, so differential tests can
// compare widths directly.
func AppraiseParallel(a *Appraiser, jobs []Job, workers int) []Result {
	p := NewPool(a, workers)
	defer p.Close()
	return p.AppraiseAll(jobs)
}
