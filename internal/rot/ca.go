package rot

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// AIKCertificate binds a platform name to its AIK public key under an
// endorsement authority's signature. It is the simulated analogue of a TPM
// endorsement/platform certificate chain: relying parties that trust the
// authority can establish which AIK speaks for which platform without a
// prior pairwise relationship.
type AIKCertificate struct {
	Platform  string
	AIK       ed25519.PublicKey
	Authority string
	Serial    uint64
	Revoked   bool
	Signature []byte
}

func certMessage(platform string, aik ed25519.PublicKey, authority string, serial uint64) []byte {
	var buf []byte
	buf = append(buf, "PERA-AIKCERT-V1\x00"...)
	buf = appendLV(buf, []byte(platform))
	buf = appendLV(buf, aik)
	buf = appendLV(buf, []byte(authority))
	buf = binary.BigEndian.AppendUint64(buf, serial)
	return buf
}

// Authority is a simulated endorsement authority (manufacturer or operator
// CA) that issues and revokes AIK certificates. It is safe for concurrent
// use.
type Authority struct {
	mu     sync.Mutex
	name   string
	key    ed25519.PrivateKey
	pub    ed25519.PublicKey
	serial uint64
	issued map[uint64]*AIKCertificate
}

// NewAuthority creates an endorsement authority with a fresh signing key.
func NewAuthority(name string) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("rot: generating authority key: %w", err)
	}
	return &Authority{name: name, key: priv, pub: pub, issued: make(map[uint64]*AIKCertificate)}, nil
}

// NewDeterministicAuthority derives the authority key from seed, for
// reproducible tests and benchmarks.
func NewDeterministicAuthority(name string, seed []byte) *Authority {
	h := sha256.Sum256(append([]byte("authority:"), seed...))
	priv := ed25519.NewKeyFromSeed(h[:])
	return &Authority{
		name:   name,
		key:    priv,
		pub:    priv.Public().(ed25519.PublicKey),
		issued: make(map[uint64]*AIKCertificate),
	}
}

// Name returns the authority's identity.
func (a *Authority) Name() string { return a.name }

// Public returns the authority verification key that relying parties pin.
func (a *Authority) Public() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), a.pub...)
}

// Issue signs an AIK certificate for the given platform RoT.
func (a *Authority) Issue(r *RoT) *AIKCertificate {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.serial++
	cert := &AIKCertificate{
		Platform:  r.Name(),
		AIK:       r.Public(),
		Authority: a.name,
		Serial:    a.serial,
	}
	cert.Signature = ed25519.Sign(a.key, certMessage(cert.Platform, cert.AIK, cert.Authority, cert.Serial))
	a.issued[cert.Serial] = cert
	return cert
}

// Revoke marks a previously issued certificate as revoked. Verification via
// the authority's IsRevoked will then fail, modelling compromise recovery.
func (a *Authority) Revoke(serial uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.issued[serial]
	if !ok {
		return false
	}
	c.Revoked = true
	return true
}

// IsRevoked reports whether the certificate with the given serial has been
// revoked. Unknown serials are treated as revoked.
func (a *Authority) IsRevoked(serial uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.issued[serial]
	return !ok || c.Revoked
}

// VerifyCertificate checks cert's signature under the authority public key.
// Revocation must be checked separately against the issuing authority (or a
// distributed revocation list) since the certificate itself is immutable.
func VerifyCertificate(authorityPub ed25519.PublicKey, cert *AIKCertificate) error {
	if len(authorityPub) != ed25519.PublicKeySize {
		return ErrCertificate
	}
	msg := certMessage(cert.Platform, cert.AIK, cert.Authority, cert.Serial)
	if !ed25519.Verify(authorityPub, msg, cert.Signature) {
		return ErrCertificate
	}
	return nil
}
