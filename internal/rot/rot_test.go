package rot

import (
	"bytes"
	"crypto/ed25519"
	"sync"
	"testing"
	"testing/quick"
)

func testRoT(t *testing.T) *RoT {
	t.Helper()
	return NewDeterministic("sw1", []byte("seed"))
}

func TestExtendChangesPCR(t *testing.T) {
	r := testRoT(t)
	before, err := r.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if !before.IsZero() {
		t.Fatalf("fresh PCR not zero: %v", before)
	}
	if err := r.ExtendData(0, []byte("firmware"), "fw"); err != nil {
		t.Fatal(err)
	}
	after, _ := r.PCR(0)
	if after.IsZero() || after == before {
		t.Fatalf("extend did not change PCR: %v -> %v", before, after)
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a := NewDeterministic("a", []byte("x"))
	b := NewDeterministic("b", []byte("y"))
	a.ExtendData(1, []byte("p"), "p")
	a.ExtendData(1, []byte("q"), "q")
	b.ExtendData(1, []byte("q"), "q")
	b.ExtendData(1, []byte("p"), "p")
	pa, _ := a.PCR(1)
	pb, _ := b.PCR(1)
	if pa == pb {
		t.Fatal("PCR extend must be order-sensitive")
	}
}

func TestExtendIsNotIdempotent(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(2, []byte("m"), "m")
	once, _ := r.PCR(2)
	r.ExtendData(2, []byte("m"), "m")
	twice, _ := r.PCR(2)
	if once == twice {
		t.Fatal("double extend must change PCR (no silent replay)")
	}
}

func TestPCRIndexBounds(t *testing.T) {
	r := testRoT(t)
	if err := r.Extend(-1, Digest{}, ""); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := r.Extend(NumPCRs, Digest{}, ""); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := r.PCR(NumPCRs); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := r.Quote([]byte("n"), NumPCRs+3); err == nil {
		t.Fatal("quote over bad selection accepted")
	}
}

func TestQuoteVerifies(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(0, []byte("fw"), "fw")
	r.ExtendData(4, []byte("prog"), "prog")
	nonce := []byte("nonce-123")
	q, err := r.Quote(nonce, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(r.Public(), q, nonce); err != nil {
		t.Fatalf("good quote rejected: %v", err)
	}
}

func TestQuoteNonceMismatch(t *testing.T) {
	r := testRoT(t)
	q, _ := r.Quote([]byte("fresh"), 0)
	if err := VerifyQuote(r.Public(), q, []byte("stale")); err != ErrQuoteNonce {
		t.Fatalf("want ErrQuoteNonce, got %v", err)
	}
}

func TestQuoteTamperDetected(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(0, []byte("fw"), "fw")
	q, _ := r.Quote([]byte("n"), 0)
	q.PCRDigest[0] ^= 0xff
	if err := VerifyQuote(r.Public(), q, []byte("n")); err != ErrQuoteSignature {
		t.Fatalf("tampered quote accepted: %v", err)
	}
}

func TestQuoteWrongKeyRejected(t *testing.T) {
	r := testRoT(t)
	other := NewDeterministic("sw2", []byte("other"))
	q, _ := r.Quote([]byte("n"), 0)
	if err := VerifyQuote(other.Public(), q, []byte("n")); err != ErrQuoteSignature {
		t.Fatalf("quote verified under wrong AIK: %v", err)
	}
}

func TestQuoteSelectionNormalized(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(1, []byte("a"), "a")
	q1, _ := r.Quote([]byte("n"), 3, 1, 1, 3)
	q2, _ := r.Quote([]byte("n"), 1, 3)
	if q1.PCRDigest != q2.PCRDigest {
		t.Fatal("selection order/duplicates changed quote digest")
	}
	if len(q1.PCRSelect) != 2 {
		t.Fatalf("selection not deduplicated: %v", q1.PCRSelect)
	}
}

func TestVerifyQuoteAgainstGolden(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(4, []byte("firewall_v5.p4"), "program")
	good, _ := r.PCR(4)
	q, _ := r.Quote([]byte("n"), 4)

	if err := VerifyQuoteAgainst(r.Public(), q, []byte("n"), map[int]Digest{4: good}); err != nil {
		t.Fatalf("golden match rejected: %v", err)
	}
	bad := good
	bad[0] ^= 1
	if err := VerifyQuoteAgainst(r.Public(), q, []byte("n"), map[int]Digest{4: bad}); err != ErrQuotePCRs {
		t.Fatalf("golden mismatch accepted: %v", err)
	}
	if err := VerifyQuoteAgainst(r.Public(), q, []byte("n"), map[int]Digest{}); err == nil {
		t.Fatal("missing golden value accepted")
	}
}

func TestRebootResetsAndCounts(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(0, []byte("fw"), "fw")
	if r.Boots() != 1 {
		t.Fatalf("boots = %d, want 1", r.Boots())
	}
	r.Reboot()
	p, _ := r.PCR(0)
	if !p.IsZero() {
		t.Fatal("reboot did not clear PCR")
	}
	if len(r.EventLog()) != 0 {
		t.Fatal("reboot did not clear event log")
	}
	if r.Boots() != 2 {
		t.Fatalf("boots = %d, want 2", r.Boots())
	}
}

func TestRebootVisibleInQuote(t *testing.T) {
	r := testRoT(t)
	q1, _ := r.Quote([]byte("n"), 0)
	r.Reboot()
	q2, _ := r.Quote([]byte("n"), 0)
	if q1.Boots == q2.Boots {
		t.Fatal("reboot not reflected in quote boot counter")
	}
}

func TestMonotonicCounter(t *testing.T) {
	r := testRoT(t)
	a := r.CounterIncrement()
	b := r.CounterIncrement()
	if b != a+1 {
		t.Fatalf("counter not monotonic: %d then %d", a, b)
	}
	if r.Counter() != b {
		t.Fatalf("Counter() = %d, want %d", r.Counter(), b)
	}
}

func TestEventLogReplay(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(0, []byte("fw"), "fw")
	r.ExtendData(4, []byte("prog"), "prog")
	r.ExtendData(4, []byte("tables"), "tables")
	q, _ := r.Quote([]byte("n"), 0, 4)
	if err := VerifyLogAgainstQuote(r.EventLog(), q); err != nil {
		t.Fatalf("honest log rejected: %v", err)
	}
	// A log with one event removed must not replay.
	log := r.EventLog()
	if err := VerifyLogAgainstQuote(log[:len(log)-1], q); err != ErrLogReplay {
		t.Fatalf("truncated log accepted: %v", err)
	}
	// A log with a swapped event must not replay.
	swapped := append([]Event(nil), log...)
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if err := VerifyLogAgainstQuote(swapped, q); err != ErrLogReplay {
		t.Fatalf("reordered log accepted: %v", err)
	}
}

func TestReplayLogBadPCR(t *testing.T) {
	if _, err := ReplayLog([]Event{{PCR: 99}}); err == nil {
		t.Fatal("bad event PCR accepted")
	}
}

func TestSignVerifyDomainSeparation(t *testing.T) {
	r := testRoT(t)
	msg := []byte("evidence-chunk")
	sig := r.Sign(msg)
	if !Verify(r.Public(), msg, sig) {
		t.Fatal("good signature rejected")
	}
	if Verify(r.Public(), []byte("other"), sig) {
		t.Fatal("signature verified for wrong message")
	}
	// A Sign signature must not verify as a quote signature (domain
	// separation between the two signing uses of the AIK).
	q, _ := r.Quote([]byte("n"), 0)
	if Verify(r.Public(), quoteBytesForTest(q), q.Signature) {
		t.Fatal("quote signature verified in sign domain")
	}
}

func quoteBytesForTest(q *Quote) []byte {
	return quoteMessage(q.Platform, q.Nonce, q.PCRSelect, q.PCRDigest, q.Boots, q.Counter)
}

func TestVerifyRejectsShortKeys(t *testing.T) {
	if Verify(ed25519.PublicKey{1, 2}, []byte("m"), []byte("s")) {
		t.Fatal("short key accepted")
	}
	if err := VerifyQuote(ed25519.PublicKey{1}, &Quote{}, nil); err != ErrQuoteSignature {
		t.Fatal("short key accepted for quote")
	}
}

func TestDeterministicSeedsStable(t *testing.T) {
	a := NewDeterministic("p", []byte("s"))
	b := NewDeterministic("p", []byte("s"))
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("same seed produced different AIKs")
	}
	c := NewDeterministic("p", []byte("s2"))
	if bytes.Equal(a.Public(), c.Public()) {
		t.Fatal("different seeds produced same AIK")
	}
}

func TestNewGeneratesDistinctKeys(t *testing.T) {
	a, err := New("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("b")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("two fresh RoTs share an AIK")
	}
}

func TestNonceFreshness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		n := NewNonce()
		if len(n) != 32 {
			t.Fatalf("nonce length %d", len(n))
		}
		if seen[string(n)] {
			t.Fatal("nonce repeated")
		}
		seen[string(n)] = true
	}
}

func TestConcurrentExtendQuote(t *testing.T) {
	r := testRoT(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.ExtendData(i%4, []byte{byte(i), byte(j)}, "c")
				if q, err := r.Quote([]byte("n"), i%4); err != nil || q == nil {
					t.Errorf("quote failed: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	// Final log must replay to final PCR state.
	q, _ := r.Quote([]byte("n"), 0, 1, 2, 3)
	if err := VerifyLogAgainstQuote(r.EventLog(), q); err != nil {
		t.Fatalf("concurrent log does not replay: %v", err)
	}
}

// Property: for any sequence of measured data, replaying the event log
// reproduces the PCR bank (extend chain integrity).
func TestPropertyReplayMatchesExtend(t *testing.T) {
	f := func(chunks [][]byte) bool {
		r := NewDeterministic("p", []byte("prop"))
		for i, c := range chunks {
			r.ExtendData(i%NumPCRs, c, "chunk")
		}
		replayed, err := ReplayLog(r.EventLog())
		if err != nil {
			return false
		}
		for i := 0; i < NumPCRs; i++ {
			got, _ := r.PCR(i)
			if replayed[i] != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: quotes over distinct PCR states have distinct digests
// (second-preimage-free in practice for our state space).
func TestPropertyQuoteBindsState(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		r1 := NewDeterministic("p", []byte("q"))
		r2 := NewDeterministic("p", []byte("q"))
		r1.ExtendData(0, a, "a")
		r2.ExtendData(0, b, "b")
		q1, _ := r1.Quote([]byte("n"), 0)
		q2, _ := r2.Quote([]byte("n"), 0)
		return q1.PCRDigest != q2.PCRDigest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAuthorityIssueVerify(t *testing.T) {
	auth := NewDeterministicAuthority("operator", []byte("ca"))
	r := testRoT(t)
	cert := auth.Issue(r)
	if err := VerifyCertificate(auth.Public(), cert); err != nil {
		t.Fatalf("good cert rejected: %v", err)
	}
	if cert.Platform != "sw1" {
		t.Fatalf("cert platform %q", cert.Platform)
	}
	other := NewDeterministicAuthority("evil", []byte("ca2"))
	if err := VerifyCertificate(other.Public(), cert); err == nil {
		t.Fatal("cert verified under wrong authority")
	}
}

func TestAuthorityTamperedCert(t *testing.T) {
	auth := NewDeterministicAuthority("op", []byte("ca"))
	cert := auth.Issue(testRoT(t))
	cert.Platform = "sw-imposter"
	if err := VerifyCertificate(auth.Public(), cert); err == nil {
		t.Fatal("tampered cert accepted")
	}
}

func TestAuthorityRevocation(t *testing.T) {
	auth := NewDeterministicAuthority("op", []byte("ca"))
	cert := auth.Issue(testRoT(t))
	if auth.IsRevoked(cert.Serial) {
		t.Fatal("fresh cert reported revoked")
	}
	if !auth.Revoke(cert.Serial) {
		t.Fatal("revoke failed")
	}
	if !auth.IsRevoked(cert.Serial) {
		t.Fatal("revoked cert reported valid")
	}
	if auth.Revoke(9999) {
		t.Fatal("revoking unknown serial succeeded")
	}
	if !auth.IsRevoked(9999) {
		t.Fatal("unknown serial treated as valid")
	}
}

func TestAuthoritySerialsIncrease(t *testing.T) {
	auth := NewDeterministicAuthority("op", []byte("ca"))
	c1 := auth.Issue(testRoT(t))
	c2 := auth.Issue(testRoT(t))
	if c2.Serial <= c1.Serial {
		t.Fatalf("serials not increasing: %d then %d", c1.Serial, c2.Serial)
	}
}

func TestNewAuthorityDistinctKeys(t *testing.T) {
	a, err := NewAuthority("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuthority("b")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Public(), b.Public()) {
		t.Fatal("fresh authorities share keys")
	}
}

func TestQuoteCodecRoundTrip(t *testing.T) {
	r := testRoT(t)
	r.ExtendData(0, []byte("fw"), "fw")
	r.CounterIncrement()
	q, _ := r.Quote([]byte("wire-nonce"), 0, 4)
	dec, err := DecodeQuote(EncodeQuote(q))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Platform != q.Platform || !bytes.Equal(dec.Nonce, q.Nonce) ||
		dec.PCRDigest != q.PCRDigest || dec.Boots != q.Boots || dec.Counter != q.Counter ||
		len(dec.PCRSelect) != len(q.PCRSelect) {
		t.Fatalf("round trip: %+v vs %+v", dec, q)
	}
	// The decoded quote still verifies.
	if err := VerifyQuote(r.Public(), dec, []byte("wire-nonce")); err != nil {
		t.Fatalf("decoded quote: %v", err)
	}
}

func TestDecodeQuoteGarbage(t *testing.T) {
	r := testRoT(t)
	q, _ := r.Quote([]byte("n"), 0)
	enc := EncodeQuote(q)
	cases := [][]byte{
		nil, []byte("junk"), enc[:10], enc[:len(enc)-3],
		append(append([]byte{}, enc...), 1),
	}
	for i, data := range cases {
		if _, err := DecodeQuote(data); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Excessive selection count.
	bad := append([]byte("PERA-QUOTEWIRE-V1\x00"), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF)
	if _, err := DecodeQuote(bad); err == nil {
		t.Error("huge selection decoded")
	}
}
