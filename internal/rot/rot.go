// Package rot provides a simulated hardware root of trust for the PERA
// reproduction.
//
// The paper's threat model (§3) assumes "evidence-producing hardware
// components (e.g., those that initialize a chip or generate a digital
// signature) are trustworthy". Production deployments would realize this
// with a TPM, DICE engine, or an ASIC-integrated signing block; this
// package substitutes a software simulation that produces real SHA-256
// measurement chains and real Ed25519 signatures, so every verification
// path an appraiser would run against hardware quotes runs unchanged here.
//
// A RoT owns:
//
//   - a bank of platform configuration registers (PCRs) supporting only
//     the extend operation, so recorded history cannot be rewritten;
//   - an append-only measured-boot event log that can be replayed against
//     the PCR bank;
//   - an attestation identity key (AIK) used exclusively to sign Quotes;
//   - a monotonic counter for anti-rollback evidence.
package rot

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// DigestSize is the size in bytes of all measurement digests (SHA-256).
const DigestSize = sha256.Size

// NumPCRs is the number of platform configuration registers in a bank,
// matching the TPM 2.0 convention.
const NumPCRs = 24

// Digest is a SHA-256 measurement value.
type Digest [DigestSize]byte

// String renders the digest as hex, truncated for readability.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// IsZero reports whether the digest is the all-zero (reset) value.
func (d Digest) IsZero() bool { return d == Digest{} }

// Sum computes the digest of data.
func Sum(data []byte) Digest { return sha256.Sum256(data) }

// Errors returned by RoT operations.
var (
	ErrPCRIndex       = errors.New("rot: PCR index out of range")
	ErrQuoteSignature = errors.New("rot: quote signature invalid")
	ErrQuoteNonce     = errors.New("rot: quote nonce mismatch")
	ErrQuotePCRs      = errors.New("rot: quoted PCR digest does not match expected values")
	ErrLogReplay      = errors.New("rot: event log replay does not reproduce PCR values")
	ErrCertificate    = errors.New("rot: AIK certificate invalid")
	ErrCounter        = errors.New("rot: monotonic counter regression")
)

// Event is one measured-boot event: a digest extended into a PCR together
// with a description of what was measured.
type Event struct {
	PCR    int
	Digest Digest
	Desc   string
}

// RoT is a simulated root of trust. It is safe for concurrent use.
type RoT struct {
	mu      sync.Mutex
	name    string
	pcrs    [NumPCRs]Digest
	log     []Event
	aik     ed25519.PrivateKey
	aikPub  ed25519.PublicKey
	counter uint64
	boots   uint64
}

// New creates a root of trust with a freshly generated AIK. name identifies
// the platform (e.g. a switch serial number or its operator pseudonym).
func New(name string) (*RoT, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("rot: generating AIK: %w", err)
	}
	return &RoT{name: name, aik: priv, aikPub: pub, boots: 1}, nil
}

// NewDeterministic creates a root of trust whose AIK is derived from seed.
// It exists for reproducible tests and benchmarks; production-style use
// should call New.
func NewDeterministic(name string, seed []byte) *RoT {
	h := sha256.Sum256(seed)
	priv := ed25519.NewKeyFromSeed(h[:])
	return &RoT{
		name:   name,
		aik:    priv,
		aikPub: priv.Public().(ed25519.PublicKey),
		boots:  1,
	}
}

// Name returns the platform identity string.
func (r *RoT) Name() string { return r.name }

// Public returns the AIK public key used to verify this RoT's quotes.
func (r *RoT) Public() ed25519.PublicKey {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(ed25519.PublicKey(nil), r.aikPub...)
}

// Extend folds digest into PCR index and appends the event to the boot log.
// Extend is the only way to change a PCR value, mirroring hardware.
func (r *RoT) Extend(index int, digest Digest, desc string) error {
	if index < 0 || index >= NumPCRs {
		return fmt.Errorf("%w: %d", ErrPCRIndex, index)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pcrs[index] = extendOne(r.pcrs[index], digest)
	r.log = append(r.log, Event{PCR: index, Digest: digest, Desc: desc})
	return nil
}

// ExtendData measures raw data (hashing it first) into PCR index.
func (r *RoT) ExtendData(index int, data []byte, desc string) error {
	return r.Extend(index, Sum(data), desc)
}

func extendOne(old, d Digest) Digest {
	h := sha256.New()
	h.Write(old[:])
	h.Write(d[:])
	var out Digest
	h.Sum(out[:0])
	return out
}

// PCR returns the current value of a register.
func (r *RoT) PCR(index int) (Digest, error) {
	if index < 0 || index >= NumPCRs {
		return Digest{}, fmt.Errorf("%w: %d", ErrPCRIndex, index)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pcrs[index], nil
}

// EventLog returns a copy of the measured-boot log.
func (r *RoT) EventLog() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.log...)
}

// Reboot clears all PCRs and the event log, as a platform reset would,
// and increments the boot counter. Attested state must be re-measured.
func (r *RoT) Reboot() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pcrs = [NumPCRs]Digest{}
	r.log = nil
	r.boots++
}

// Boots returns the number of platform boots, which appraisers can use to
// detect resets between evidence collections.
func (r *RoT) Boots() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.boots
}

// CounterIncrement advances and returns the monotonic counter.
func (r *RoT) CounterIncrement() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counter++
	return r.counter
}

// Counter returns the current monotonic counter value.
func (r *RoT) Counter() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counter
}

// Quote is a signed report over a selection of PCRs, bound to a caller
// nonce for freshness. It is the unit of hardware-rooted evidence.
type Quote struct {
	Platform  string
	Nonce     []byte
	PCRSelect []int
	PCRDigest Digest // digest over the selected PCR values
	Boots     uint64
	Counter   uint64
	Signature []byte
}

// quoteMessage builds the canonical byte string that the AIK signs.
func quoteMessage(platform string, nonce []byte, sel []int, pcrDigest Digest, boots, counter uint64) []byte {
	var buf []byte
	buf = append(buf, "PERA-QUOTE-V1\x00"...)
	buf = appendLV(buf, []byte(platform))
	buf = appendLV(buf, nonce)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(sel)))
	for _, i := range sel {
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
	}
	buf = append(buf, pcrDigest[:]...)
	buf = binary.BigEndian.AppendUint64(buf, boots)
	buf = binary.BigEndian.AppendUint64(buf, counter)
	return buf
}

func appendLV(buf, v []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	return append(buf, v...)
}

// Quote signs the current values of the selected PCRs bound to nonce.
// The selection is sorted and deduplicated so logically equal selections
// produce identical quote messages.
func (r *RoT) Quote(nonce []byte, pcrSelect ...int) (*Quote, error) {
	sel := normalizeSelection(pcrSelect)
	for _, i := range sel {
		if i < 0 || i >= NumPCRs {
			return nil, fmt.Errorf("%w: %d", ErrPCRIndex, i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pd := digestPCRs(&r.pcrs, sel)
	msg := quoteMessage(r.name, nonce, sel, pd, r.boots, r.counter)
	q := &Quote{
		Platform:  r.name,
		Nonce:     append([]byte(nil), nonce...),
		PCRSelect: sel,
		PCRDigest: pd,
		Boots:     r.boots,
		Counter:   r.counter,
		Signature: ed25519.Sign(r.aik, msg),
	}
	return q, nil
}

// SigPrefix is the domain-separation prefix Sign prepends to every
// message before the Ed25519 operation. Batch verifiers that feed raw
// triples to crypto/ed25519 (or the batch equation) must build
// SigPrefix‖message themselves to match what Sign actually signed.
const SigPrefix = "PERA-SIG-V1\x00"

// Sign signs an arbitrary message under the AIK with domain separation from
// quotes. PERA's dataplane Sign stage uses this for evidence chunks.
func (r *RoT) Sign(message []byte) []byte {
	msg := append([]byte(SigPrefix), message...)
	r.mu.Lock()
	defer r.mu.Unlock()
	return ed25519.Sign(r.aik, msg)
}

// AuditKey derives the platform's audit-ledger MAC key from the AIK
// seed, domain-separated from every signing use of the key. It matches
// auditlog.DeriveKey's construction (SHA-256 over "PERA-AUDIT-KEY-V1" ||
// secret) with the AIK seed as the secret, so a ledger written by a
// platform verifies against the key that platform's RoT reports —
// without the auditlog package depending on rot or vice versa.
func (r *RoT) AuditKey() []byte {
	r.mu.Lock()
	seed := r.aik.Seed()
	r.mu.Unlock()
	h := sha256.New()
	h.Write([]byte("PERA-AUDIT-KEY-V1"))
	h.Write(seed)
	return h.Sum(nil)
}

// Verify checks a detached signature produced by Sign under pub.
func Verify(pub ed25519.PublicKey, message, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	msg := append([]byte(SigPrefix), message...)
	return ed25519.Verify(pub, msg, sig)
}

func normalizeSelection(sel []int) []int {
	out := append([]int(nil), sel...)
	sort.Ints(out)
	dedup := out[:0]
	prev := -1
	for _, v := range out {
		if v != prev {
			dedup = append(dedup, v)
			prev = v
		}
	}
	return dedup
}

func digestPCRs(pcrs *[NumPCRs]Digest, sel []int) Digest {
	h := sha256.New()
	for _, i := range sel {
		h.Write(pcrs[i][:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

// VerifyQuote checks q's signature under pub and that the nonce matches.
// It does not check PCR contents; use VerifyQuoteAgainst for that.
func VerifyQuote(pub ed25519.PublicKey, q *Quote, nonce []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return ErrQuoteSignature
	}
	msg := quoteMessage(q.Platform, q.Nonce, q.PCRSelect, q.PCRDigest, q.Boots, q.Counter)
	if !ed25519.Verify(pub, msg, q.Signature) {
		return ErrQuoteSignature
	}
	if nonce != nil && !equalBytes(nonce, q.Nonce) {
		return ErrQuoteNonce
	}
	return nil
}

// VerifyQuoteAgainst verifies signature, nonce, and that the quoted PCR
// digest equals the digest of the supplied expected PCR values (golden
// values), in selection order.
func VerifyQuoteAgainst(pub ed25519.PublicKey, q *Quote, nonce []byte, expected map[int]Digest) error {
	if err := VerifyQuote(pub, q, nonce); err != nil {
		return err
	}
	h := sha256.New()
	for _, i := range q.PCRSelect {
		v, ok := expected[i]
		if !ok {
			return fmt.Errorf("%w: no golden value for PCR %d", ErrQuotePCRs, i)
		}
		h.Write(v[:])
	}
	var want Digest
	h.Sum(want[:0])
	if want != q.PCRDigest {
		return ErrQuotePCRs
	}
	return nil
}

// ReplayLog recomputes PCR values from an event log. Appraisers use this
// to check that a claimed log is consistent with a quoted PCR digest.
func ReplayLog(events []Event) ([NumPCRs]Digest, error) {
	var pcrs [NumPCRs]Digest
	for _, ev := range events {
		if ev.PCR < 0 || ev.PCR >= NumPCRs {
			return pcrs, fmt.Errorf("%w: event PCR %d", ErrPCRIndex, ev.PCR)
		}
		pcrs[ev.PCR] = extendOne(pcrs[ev.PCR], ev.Digest)
	}
	return pcrs, nil
}

// VerifyLogAgainstQuote replays events and checks the result matches the
// quote's PCR digest over the quote's selection.
func VerifyLogAgainstQuote(events []Event, q *Quote) error {
	pcrs, err := ReplayLog(events)
	if err != nil {
		return err
	}
	if digestPCRs(&pcrs, q.PCRSelect) != q.PCRDigest {
		return ErrLogReplay
	}
	return nil
}

// readRandom fills b from crypto/rand, panicking on failure: entropy
// exhaustion is unrecoverable for an attestation system.
func readRandom(b []byte) {
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		panic(fmt.Sprintf("rot: reading entropy: %v", err))
	}
}

// NewNonce returns a fresh 32-byte nonce for freshness binding.
func NewNonce() []byte {
	b := make([]byte, 32)
	readRandom(b)
	return b
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
