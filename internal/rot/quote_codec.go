package rot

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec for quotes, so hardware evidence can carry the full quote
// and appraisers can verify the hardware rooting independently of the
// evidence signature (the measurement's Claims bytes in PERA hardware
// claims hold exactly this encoding).

// ErrQuoteDecode wraps quote decoding failures.
var ErrQuoteDecode = errors.New("rot: quote decode error")

// EncodeQuote serializes q.
func EncodeQuote(q *Quote) []byte {
	var b []byte
	b = append(b, "PERA-QUOTEWIRE-V1\x00"...)
	b = appendLV(b, []byte(q.Platform))
	b = appendLV(b, q.Nonce)
	b = binary.BigEndian.AppendUint32(b, uint32(len(q.PCRSelect)))
	for _, i := range q.PCRSelect {
		b = binary.BigEndian.AppendUint32(b, uint32(i))
	}
	b = append(b, q.PCRDigest[:]...)
	b = binary.BigEndian.AppendUint64(b, q.Boots)
	b = binary.BigEndian.AppendUint64(b, q.Counter)
	b = appendLV(b, q.Signature)
	return b
}

// DecodeQuote parses an encoded quote.
func DecodeQuote(data []byte) (*Quote, error) {
	const magic = "PERA-QUOTEWIRE-V1\x00"
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrQuoteDecode)
	}
	off := len(magic)
	readLV := func() ([]byte, error) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated length", ErrQuoteDecode)
		}
		n := binary.BigEndian.Uint32(data[off:])
		off += 4
		if n > 1<<20 || off+int(n) > len(data) {
			return nil, fmt.Errorf("%w: bad field length", ErrQuoteDecode)
		}
		v := append([]byte(nil), data[off:off+int(n)]...)
		off += int(n)
		return v, nil
	}
	q := &Quote{}
	p, err := readLV()
	if err != nil {
		return nil, err
	}
	q.Platform = string(p)
	if q.Nonce, err = readLV(); err != nil {
		return nil, err
	}
	if off+4 > len(data) {
		return nil, fmt.Errorf("%w: truncated selection", ErrQuoteDecode)
	}
	nsel := binary.BigEndian.Uint32(data[off:])
	off += 4
	if nsel > NumPCRs {
		return nil, fmt.Errorf("%w: %d selected PCRs", ErrQuoteDecode, nsel)
	}
	for i := uint32(0); i < nsel; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated selection entry", ErrQuoteDecode)
		}
		q.PCRSelect = append(q.PCRSelect, int(binary.BigEndian.Uint32(data[off:])))
		off += 4
	}
	if off+DigestSize > len(data) {
		return nil, fmt.Errorf("%w: truncated digest", ErrQuoteDecode)
	}
	copy(q.PCRDigest[:], data[off:])
	off += DigestSize
	if off+16 > len(data) {
		return nil, fmt.Errorf("%w: truncated counters", ErrQuoteDecode)
	}
	q.Boots = binary.BigEndian.Uint64(data[off:])
	q.Counter = binary.BigEndian.Uint64(data[off+8:])
	off += 16
	if q.Signature, err = readLV(); err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrQuoteDecode)
	}
	return q, nil
}
