package p4ir

import (
	"fmt"
	"strings"
)

// Format renders a program in P4-lite syntax; ParseProgram(Format(p))
// reproduces p for valid programs (a tested round-trip invariant).
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n\n", p.Name)
	for _, h := range p.Headers {
		fmt.Fprintf(&b, "header %s {", h.Name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, " %s:%d", f.Name, f.Bits)
		}
		b.WriteString(" }\n")
	}
	if len(p.Parser) > 0 {
		b.WriteString("\nparser {\n")
		for _, st := range p.Parser {
			fmt.Fprintf(&b, "  state %s {", st.Name)
			if st.Extract != "" {
				fmt.Fprintf(&b, " extract %s", st.Extract)
			}
			if st.SelectField != "" {
				fmt.Fprintf(&b, " select %s {", st.SelectField)
				for _, tr := range st.Transitions {
					fmt.Fprintf(&b, " %d -> %s", tr.Value, tr.Next)
				}
				fmt.Fprintf(&b, " default -> %s }", st.Default)
			} else if st.Default != StateAccept {
				fmt.Fprintf(&b, " goto %s", st.Default)
			}
			b.WriteString(" }\n")
		}
		b.WriteString("}\n")
	}
	for _, r := range p.Registers {
		fmt.Fprintf(&b, "\nregister %s[%d]\n", r.Name, r.Size)
	}
	for _, a := range p.Actions {
		fmt.Fprintf(&b, "\naction %s(%s) {", a.Name, strings.Join(a.Params, ", "))
		for _, op := range a.Ops {
			b.WriteString(" ")
			b.WriteString(formatOp(op))
		}
		b.WriteString(" }\n")
	}
	writeTable := func(t *Table) {
		fmt.Fprintf(&b, "\ntable %s {\n  key {", t.Name)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, " %s: %s", k.Field, k.Kind)
		}
		b.WriteString(" }\n  actions {")
		for _, a := range t.Actions {
			fmt.Fprintf(&b, " %s", a)
		}
		b.WriteString(" }\n")
		if t.DefaultAction != "" {
			fmt.Fprintf(&b, "  default %s\n", t.DefaultAction)
		}
		if t.MaxEntries > 0 {
			fmt.Fprintf(&b, "  max %d\n", t.MaxEntries)
		}
		b.WriteString("}\n")
	}
	for _, t := range p.Ingress {
		writeTable(t)
	}
	for _, t := range p.Egress {
		writeTable(t)
	}
	names := func(ts []*Table) string {
		var ns []string
		for _, t := range ts {
			ns = append(ns, t.Name)
		}
		return strings.Join(ns, " ")
	}
	fmt.Fprintf(&b, "\ningress { %s }\negress { %s }\n", names(p.Ingress), names(p.Egress))
	return b.String()
}

func formatOp(op Op) string {
	switch op.Kind {
	case OpDrop:
		return "drop"
	case OpForward:
		return "forward " + formatVal(op.Src)
	case OpSet:
		return fmt.Sprintf("set %s = %s", op.Dst, formatVal(op.Src))
	case OpAdd:
		return fmt.Sprintf("add %s += %s", op.Dst, formatVal(op.Src))
	case OpCount:
		return fmt.Sprintf("count %s[%s]", op.Reg, formatVal(op.Index))
	case OpRegWrite:
		return fmt.Sprintf("regwrite %s[%s] = %s", op.Reg, formatVal(op.Index), formatVal(op.Src))
	case OpRegRead:
		return fmt.Sprintf("regread %s = %s[%s]", op.Dst, op.Reg, formatVal(op.Index))
	default:
		return op.Kind.String()
	}
}

func formatVal(v Val) string {
	switch v.Kind {
	case ValParam:
		return "$" + v.Name
	case ValField:
		return v.Name
	default:
		return fmt.Sprintf("%d", v.Const)
	}
}
