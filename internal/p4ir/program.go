package p4ir

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pera/internal/rot"
)

// Program is a complete dataplane program: header declarations, a parser,
// actions, the ingress and egress table pipelines, and register
// declarations. Table *contents* are runtime state owned by the pisa
// switch, not part of the Program (mirroring P4, where entries are
// installed by a control plane); the program digest therefore covers code
// only, and table digests are computed separately.
type Program struct {
	Name      string
	Headers   []*HeaderType
	Parser    []*ParserState
	Actions   []*Action
	Ingress   []*Table // applied in order
	Egress    []*Table
	Registers []*Register

	// digestOnce caches Digest: the canonical rendering is rebuilt from
	// scratch otherwise, and attestation paths ask for the digest per
	// claim. Programs are immutable once deployed — a modified dataplane
	// is a new Program (see Switch.ReloadProgram) — so callers mutating a
	// Program after its first Digest call get the stale value by design.
	digestOnce sync.Once
	digest     rot.Digest
}

// Errors from validation.
var (
	ErrValidate = errors.New("p4ir: invalid program")
)

func validationErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrValidate, fmt.Sprintf(format, args...))
}

// Header returns the named header type.
func (p *Program) Header(name string) (*HeaderType, bool) {
	for _, h := range p.Headers {
		if h.Name == name {
			return h, true
		}
	}
	return nil, false
}

// Action returns the named action.
func (p *Program) Action(name string) (*Action, bool) {
	for _, a := range p.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Table returns the named table from either pipeline.
func (p *Program) Table(name string) (*Table, bool) {
	for _, t := range p.Ingress {
		if t.Name == name {
			return t, true
		}
	}
	for _, t := range p.Egress {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// State returns the named parser state.
func (p *Program) State(name string) (*ParserState, bool) {
	for _, s := range p.Parser {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Validate checks structural consistency: referenced headers, fields,
// actions, states and registers all exist; field widths are in range;
// parser terminal states are reachable names.
func (p *Program) Validate() error {
	if p.Name == "" {
		return validationErr("program has no name")
	}
	seenHdr := map[string]bool{}
	for _, h := range p.Headers {
		if seenHdr[h.Name] {
			return validationErr("duplicate header %q", h.Name)
		}
		seenHdr[h.Name] = true
		if len(h.Fields) == 0 {
			return validationErr("header %q has no fields", h.Name)
		}
		seenF := map[string]bool{}
		for _, f := range h.Fields {
			if f.Bits < 1 || f.Bits > 64 {
				return validationErr("field %s.%s width %d out of range", h.Name, f.Name, f.Bits)
			}
			if seenF[f.Name] {
				return validationErr("duplicate field %s.%s", h.Name, f.Name)
			}
			seenF[f.Name] = true
		}
	}

	fieldExists := func(qname string) bool {
		if strings.HasPrefix(qname, "meta.") {
			return true
		}
		dot := strings.IndexByte(qname, '.')
		if dot < 0 {
			return false
		}
		h, ok := p.Header(qname[:dot])
		if !ok {
			return false
		}
		_, ok = h.Field(qname[dot+1:])
		return ok
	}

	if len(p.Parser) == 0 {
		return validationErr("program has no parser states")
	}
	seenState := map[string]bool{StateAccept: true, StateReject: true}
	for _, s := range p.Parser {
		if seenState[s.Name] {
			return validationErr("duplicate or reserved parser state %q", s.Name)
		}
		seenState[s.Name] = true
	}
	for _, s := range p.Parser {
		if s.Extract != "" {
			if _, ok := p.Header(s.Extract); !ok {
				return validationErr("state %q extracts unknown header %q", s.Name, s.Extract)
			}
		}
		if s.SelectField != "" && !fieldExists(s.SelectField) {
			return validationErr("state %q selects unknown field %q", s.Name, s.SelectField)
		}
		next := append([]Transition(nil), s.Transitions...)
		next = append(next, Transition{Next: s.Default})
		for _, tr := range next {
			if tr.Next == "" {
				return validationErr("state %q has empty next state", s.Name)
			}
			if !seenState[tr.Next] && !stateDeclaredLater(p.Parser, tr.Next) {
				return validationErr("state %q transitions to unknown state %q", s.Name, tr.Next)
			}
		}
	}

	regs := map[string]bool{}
	for _, r := range p.Registers {
		if regs[r.Name] {
			return validationErr("duplicate register %q", r.Name)
		}
		if r.Size <= 0 {
			return validationErr("register %q has size %d", r.Name, r.Size)
		}
		regs[r.Name] = true
	}

	seenAct := map[string]bool{}
	for _, a := range p.Actions {
		if seenAct[a.Name] {
			return validationErr("duplicate action %q", a.Name)
		}
		seenAct[a.Name] = true
		params := map[string]bool{}
		for _, prm := range a.Params {
			params[prm] = true
		}
		for _, op := range a.Ops {
			for _, v := range []Val{op.Src, op.Index} {
				switch v.Kind {
				case ValField:
					if v.Name != "" && !fieldExists(v.Name) {
						return validationErr("action %q references unknown field %q", a.Name, v.Name)
					}
				case ValParam:
					if !params[v.Name] {
						return validationErr("action %q references undeclared param %q", a.Name, v.Name)
					}
				}
			}
			switch op.Kind {
			case OpSet, OpAdd, OpRegRead:
				if !fieldExists(op.Dst) {
					return validationErr("action %q writes unknown field %q", a.Name, op.Dst)
				}
			}
			switch op.Kind {
			case OpRegWrite, OpRegRead, OpCount:
				if !regs[op.Reg] {
					return validationErr("action %q uses unknown register %q", a.Name, op.Reg)
				}
			}
		}
	}

	tables := map[string]bool{}
	for _, t := range append(append([]*Table(nil), p.Ingress...), p.Egress...) {
		if tables[t.Name] {
			return validationErr("duplicate table %q", t.Name)
		}
		tables[t.Name] = true
		for _, k := range t.Keys {
			if !fieldExists(k.Field) {
				return validationErr("table %q keys on unknown field %q", t.Name, k.Field)
			}
		}
		for _, an := range t.Actions {
			if !seenAct[an] {
				return validationErr("table %q permits unknown action %q", t.Name, an)
			}
		}
		if t.DefaultAction != "" && !seenAct[t.DefaultAction] {
			return validationErr("table %q default action %q unknown", t.Name, t.DefaultAction)
		}
	}
	return nil
}

func stateDeclaredLater(states []*ParserState, name string) bool {
	for _, s := range states {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Canonical returns the deterministic textual form of the program over
// which its digest is computed. Two programs are attestation-equal iff
// their canonical forms agree.
func (p *Program) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, h := range p.Headers {
		fmt.Fprintf(&b, "header %s {", h.Name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, " %s:%d", f.Name, f.Bits)
		}
		b.WriteString(" }\n")
	}
	for _, s := range p.Parser {
		fmt.Fprintf(&b, "state %s extract=%s select=%s", s.Name, s.Extract, s.SelectField)
		for _, tr := range s.Transitions {
			fmt.Fprintf(&b, " %d->%s", tr.Value, tr.Next)
		}
		fmt.Fprintf(&b, " default->%s\n", s.Default)
	}
	for _, r := range p.Registers {
		fmt.Fprintf(&b, "register %s[%d]\n", r.Name, r.Size)
	}
	for _, a := range p.Actions {
		fmt.Fprintf(&b, "action %s(%s) {", a.Name, strings.Join(a.Params, ","))
		for _, op := range a.Ops {
			fmt.Fprintf(&b, " %s;", op)
		}
		b.WriteString(" }\n")
	}
	writeTables := func(label string, ts []*Table) {
		for _, t := range ts {
			fmt.Fprintf(&b, "%s table %s keys=[", label, t.Name)
			for _, k := range t.Keys {
				fmt.Fprintf(&b, "%s:%s ", k.Field, k.Kind)
			}
			fmt.Fprintf(&b, "] actions=[%s] default=%s(%s) max=%d\n",
				strings.Join(t.Actions, ","), t.DefaultAction,
				canonicalParams(t.DefaultParams), t.MaxEntries)
		}
	}
	writeTables("ingress", p.Ingress)
	writeTables("egress", p.Egress)
	return b.String()
}

// Digest returns the attestable program digest — what a PERA switch
// extends into its RoT when the program is loaded (UC1's "which dataplane
// program is running").
func (p *Program) Digest() rot.Digest {
	p.digestOnce.Do(func() { p.digest = rot.Sum([]byte(p.Canonical())) })
	return p.digest
}

// EntriesDigest computes the attestable digest of a set of installed
// table entries (the Fig. 4 "tables" detail level). Entries are
// canonicalized independent of installation order.
func EntriesDigest(tableName string, entries []Entry) rot.Digest {
	// This runs on every tables-detail attestation whose digest cache was
	// invalidated, so each canonical line is built with strconv appends
	// into one reused buffer rather than per-entry Fprintf calls.
	lines := make([]string, 0, len(entries))
	var buf []byte
	for _, e := range entries {
		buf = append(buf[:0], "entry prio="...)
		buf = strconv.AppendInt(buf, int64(e.Priority), 10)
		buf = append(buf, " action="...)
		buf = append(buf, e.Action...)
		buf = append(buf, '(')
		buf = appendCanonicalParams(buf, e.Params)
		buf = append(buf, ") match=["...)
		for _, m := range e.Matches {
			buf = strconv.AppendUint(buf, m.Value, 10)
			buf = append(buf, '/')
			buf = strconv.AppendInt(buf, int64(m.PrefixLen), 10)
			buf = append(buf, '/')
			buf = strconv.AppendUint(buf, m.Mask, 16)
			buf = append(buf, ' ')
		}
		buf = append(buf, ']')
		lines = append(lines, string(buf))
	}
	sort.Strings(lines)
	return rot.Sum([]byte("table " + tableName + "\n" + strings.Join(lines, "\n")))
}
