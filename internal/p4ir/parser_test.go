package p4ir

import (
	"strings"
	"testing"
)

const demoSrc = `
program demo

header eth { dst:48 src:48 typ:16 }
header ip  { src:32 dst:32 proto:8 ttl:8 }

parser {
  state start {
    extract eth
    select eth.typ { 0x0800 -> parse_ip  default -> accept }
  }
  state parse_ip { extract ip }
}

register flow_count[4096]

action fwd(port) { forward $port }
action drop_pkt() { drop }
action bump(idx) { add ip.ttl += 1  count flow_count[$idx]  set meta.seen = 1 }
action mirror() { regwrite flow_count[0] = ip.src  regread meta.last = flow_count[0] }

table ipv4_fwd {
  key { ip.dst: exact }
  actions { fwd drop_pkt bump }
  default drop_pkt
  max 1024
}

table filterT {
  key { ip.src: ternary ip.dst: lpm }
  actions { drop_pkt mirror }
}

ingress { filterT ipv4_fwd }
egress { }
`

func TestParseProgramDemo(t *testing.T) {
	prog, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" {
		t.Fatalf("name %q", prog.Name)
	}
	if len(prog.Headers) != 2 || prog.Headers[0].BitWidth() != 112 {
		t.Fatalf("headers: %+v", prog.Headers)
	}
	if len(prog.Parser) != 2 {
		t.Fatalf("parser states: %d", len(prog.Parser))
	}
	start := prog.Parser[0]
	if start.Extract != "eth" || start.SelectField != "eth.typ" ||
		len(start.Transitions) != 1 || start.Transitions[0].Value != 0x0800 ||
		start.Transitions[0].Next != "parse_ip" || start.Default != StateAccept {
		t.Fatalf("start state: %+v", start)
	}
	if prog.Parser[1].Default != StateAccept {
		t.Fatalf("implicit accept: %+v", prog.Parser[1])
	}
	if len(prog.Registers) != 1 || prog.Registers[0].Size != 4096 {
		t.Fatalf("registers: %+v", prog.Registers)
	}
	if len(prog.Actions) != 4 {
		t.Fatalf("actions: %d", len(prog.Actions))
	}
	bump, _ := prog.Action("bump")
	if len(bump.Ops) != 3 || bump.Ops[0].Kind != OpAdd || bump.Ops[1].Kind != OpCount ||
		bump.Ops[1].Index.Kind != ValParam || bump.Ops[2].Kind != OpSet {
		t.Fatalf("bump ops: %+v", bump.Ops)
	}
	mirror, _ := prog.Action("mirror")
	if mirror.Ops[0].Kind != OpRegWrite || mirror.Ops[0].Src.Kind != ValField ||
		mirror.Ops[1].Kind != OpRegRead || mirror.Ops[1].Dst != "meta.last" {
		t.Fatalf("mirror ops: %+v", mirror.Ops)
	}
	// Pipeline order preserved.
	if len(prog.Ingress) != 2 || prog.Ingress[0].Name != "filterT" || prog.Ingress[1].Name != "ipv4_fwd" {
		t.Fatalf("ingress: %+v", prog.Ingress)
	}
	ft := prog.Ingress[0]
	if len(ft.Keys) != 2 || ft.Keys[0].Kind != MatchTernary || ft.Keys[1].Kind != MatchLPM {
		t.Fatalf("filterT keys: %+v", ft.Keys)
	}
	fwdT := prog.Ingress[1]
	if fwdT.DefaultAction != "drop_pkt" || fwdT.MaxEntries != 1024 {
		t.Fatalf("ipv4_fwd: %+v", fwdT)
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		``,
		`program`,
		`program p junk`,
		`program p header h {`,
		`program p header h { f }`,
		`program p header h { f: }`,
		`program p parser { state s { bogus } } ingress { }`,
		`program p table t { wrong } ingress { t }`,
		`program p table t { key { f: magic } } ingress { t }`,
		`program p ingress { ghost }`,
		`program p action a() { fly } ingress { }`,
		`program p action a() { set x } ingress { }`,
		`program p register r[] ingress { }`,
		`program p $x`,
		"program p \x01",
		// Declared but unplaced table.
		`program p header h { f:8 } parser { state s { extract h } } action a() { drop } table t { key { h.f: exact } actions { a } } ingress { }`,
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("%.60q parsed", src)
		}
	}
}

func TestParseValidatesSemantics(t *testing.T) {
	// Syntactically fine, semantically broken (unknown header in state).
	src := `program p
header h { f:8 }
parser { state s { extract ghost } }
ingress { }`
	if _, err := ParseProgram(src); err == nil {
		t.Fatal("semantic error not caught")
	}
}

// Format/Parse round trip on the library programs and the demo.
func TestFormatParseRoundTrip(t *testing.T) {
	progs := []*Program{
		NewForwarding("fwd_v1.p4"),
		NewFirewall("firewall_v5.p4"),
		NewACL("ACL_v3.p4"),
		NewMonitor("monitor_v2.p4"),
		NewRogueForwarding("rogue.p4", 99),
	}
	demo, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	progs = append(progs, demo)
	for _, p := range progs {
		src := Format(p)
		again, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: formatted source does not parse: %v\n%s", p.Name, err, src)
		}
		// Round trip preserves attestation identity — the digest.
		if again.Digest() != p.Digest() {
			t.Fatalf("%s: digest drift through format/parse:\n%s\nvs\n%s",
				p.Name, p.Canonical(), again.Canonical())
		}
	}
}

func TestFormatMentionsEverything(t *testing.T) {
	src := Format(NewMonitor("m"))
	for _, want := range []string{"program m", "header eth", "parser {", "register flow_count[4096]",
		"action fwd(port)", "table flow_stats", "ingress {", "egress {"} {
		if !strings.Contains(src, want) {
			t.Errorf("format missing %q:\n%s", want, src)
		}
	}
}

// A program name containing dots (firewall_v5.p4) must survive the lexer.
func TestDottedProgramNames(t *testing.T) {
	prog, err := ParseProgram("program firewall_v5.p4\nheader h { f:8 }\nparser { state s { extract h } }\ningress { }")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "firewall_v5.p4" {
		t.Fatalf("name %q", prog.Name)
	}
}

func TestParseGotoAndSelectDefaults(t *testing.T) {
	src := `program p
header h { f:8 }
parser {
  state start { extract h goto mid }
  state mid { select h.f { 1 -> done default -> reject } }
  state done { }
}
ingress { }`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Parser[0].Default != "mid" {
		t.Fatalf("goto: %+v", prog.Parser[0])
	}
	if prog.Parser[1].Default != StateReject || prog.Parser[1].Transitions[0].Next != "done" {
		t.Fatalf("select: %+v", prog.Parser[1])
	}
	if prog.Parser[2].Default != StateAccept {
		t.Fatalf("empty state: %+v", prog.Parser[2])
	}
	// Parser-level error branches.
	for _, bad := range []string{
		`program p parser { state s { select } } ingress { }`,
		`program p parser { state s { select f { x } } } ingress { }`,
		`program p parser { state s { select f { 1 } } } ingress { }`,
		`program p parser { state s { select f { default } } } ingress { }`,
		`program p action a() { count r } ingress { }`,
		`program p action a() { regread x = r[0 } ingress { }`,
		`program p action a() { regwrite r[0] 5 } ingress { }`,
	} {
		if _, err := ParseProgram(bad); err == nil {
			t.Errorf("%.50q parsed", bad)
		}
	}
}
