// Package p4ir defines a small protocol-independent intermediate
// representation for dataplane programs, modelled on P4: header types
// with bit-level fields, a parser state machine, actions built from
// primitive operations, and match+action tables with exact, LPM and
// ternary matching.
//
// Programs in this IR are what PERA attests: the package provides
// deterministic digests of a program's code (Detail level "program"), of
// its table contents ("tables"), and — via the pisa runtime — of its
// mutable register state ("progstate"), matching the evidence detail axis
// of the paper's Fig. 4.
package p4ir

import (
	"fmt"
	"sort"
	"strconv"
)

// Field is one header field with a width in bits (1..64).
type Field struct {
	Name string
	Bits int
}

// HeaderType declares a header layout. Fields are extracted in order.
type HeaderType struct {
	Name   string
	Fields []Field
}

// BitWidth returns the total width of the header in bits.
func (h *HeaderType) BitWidth() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Bits
	}
	return n
}

// Field returns the named field declaration.
func (h *HeaderType) Field(name string) (Field, bool) {
	for _, f := range h.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// QName returns the qualified runtime name of a field, e.g. "eth.dst".
func QName(header, field string) string { return header + "." + field }

// Well-known metadata fields maintained by the pisa runtime. Metadata
// lives beside header fields in the same value space under the "meta."
// prefix.
const (
	MetaIngressPort = "meta.ingress_port"
	MetaEgressPort  = "meta.egress_port"
	MetaDrop        = "meta.drop"
)

// ValKind discriminates value sources in actions and expressions.
type ValKind uint8

const (
	// ValConst is an immediate constant.
	ValConst ValKind = iota
	// ValField reads a qualified header or metadata field.
	ValField
	// ValParam reads an action parameter bound by the table entry.
	ValParam
)

// Val is a value source.
type Val struct {
	Kind  ValKind
	Const uint64
	Name  string // field qname or parameter name
}

// C returns a constant value source.
func C(v uint64) Val { return Val{Kind: ValConst, Const: v} }

// Fld returns a field value source.
func Fld(qname string) Val { return Val{Kind: ValField, Name: qname} }

// P returns a parameter value source.
func P(name string) Val { return Val{Kind: ValParam, Name: name} }

func (v Val) String() string {
	switch v.Kind {
	case ValConst:
		return fmt.Sprintf("%d", v.Const)
	case ValField:
		return v.Name
	case ValParam:
		return "$" + v.Name
	default:
		return "?"
	}
}

// OpKind discriminates primitive action operations.
type OpKind uint8

const (
	// OpSet sets Dst to the value of Src.
	OpSet OpKind = iota
	// OpAdd adds Src to Dst (modular in the field width).
	OpAdd
	// OpForward sets the egress port to Src.
	OpForward
	// OpDrop marks the packet dropped.
	OpDrop
	// OpRegWrite writes Src to register Reg at index Index.
	OpRegWrite
	// OpRegRead reads register Reg at index Index into Dst.
	OpRegRead
	// OpCount increments counter Reg at index Index.
	OpCount
)

var opNames = [...]string{"set", "add", "forward", "drop", "regwrite", "regread", "count"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one primitive operation inside an action.
type Op struct {
	Kind  OpKind
	Dst   string // field qname (OpSet/OpAdd/OpRegRead)
	Src   Val    // value source (OpSet/OpAdd/OpForward/OpRegWrite)
	Reg   string // register/counter name
	Index Val    // register index
}

func (o Op) String() string {
	switch o.Kind {
	case OpSet:
		return fmt.Sprintf("set %s = %s", o.Dst, o.Src)
	case OpAdd:
		return fmt.Sprintf("add %s += %s", o.Dst, o.Src)
	case OpForward:
		return fmt.Sprintf("forward %s", o.Src)
	case OpDrop:
		return "drop"
	case OpRegWrite:
		return fmt.Sprintf("regwrite %s[%s] = %s", o.Reg, o.Index, o.Src)
	case OpRegRead:
		return fmt.Sprintf("regread %s = %s[%s]", o.Dst, o.Reg, o.Index)
	case OpCount:
		return fmt.Sprintf("count %s[%s]", o.Reg, o.Index)
	default:
		return o.Kind.String()
	}
}

// Action is a named sequence of operations with declared parameters.
type Action struct {
	Name   string
	Params []string
	Ops    []Op
}

// MatchKind is the match semantics of one table key.
type MatchKind uint8

const (
	// MatchExact requires equality.
	MatchExact MatchKind = iota
	// MatchLPM is longest-prefix match on the key field.
	MatchLPM
	// MatchTernary matches under a mask; highest priority entry wins.
	MatchTernary
)

var matchNames = [...]string{"exact", "lpm", "ternary"}

func (k MatchKind) String() string {
	if int(k) < len(matchNames) {
		return matchNames[k]
	}
	return fmt.Sprintf("match(%d)", uint8(k))
}

// Key is one table key: a field and how it is matched.
type Key struct {
	Field string
	Kind  MatchKind
	Bits  int // field width, needed for LPM; 64 if unset
}

// KeyMatch is the per-entry match spec for one key.
type KeyMatch struct {
	Value     uint64
	PrefixLen int    // MatchLPM: number of leading bits that must match
	Mask      uint64 // MatchTernary: 1-bits must match
}

// Entry is one table entry.
type Entry struct {
	Matches  []KeyMatch
	Priority int // ternary tie-break: higher wins
	Action   string
	Params   map[string]uint64
}

// Table is a match+action table declaration.
type Table struct {
	Name          string
	Keys          []Key
	Actions       []string // permitted action names
	DefaultAction string
	DefaultParams map[string]uint64
	MaxEntries    int
}

// Register declares a stateful register array.
type Register struct {
	Name string
	Size int
}

// Transition is one parser branch: if the select field equals Value, go
// to state Next.
type Transition struct {
	Value uint64
	Next  string
}

// ParserState extracts a header (optional) and selects the next state on
// one of its fields. The distinguished state names "accept" and "reject"
// terminate parsing.
type ParserState struct {
	Name        string
	Extract     string // header type to extract; "" for none
	SelectField string // qualified field to branch on; "" = always Default
	Transitions []Transition
	Default     string
}

// Terminal parser state names.
const (
	StateAccept = "accept"
	StateReject = "reject"
)

// canonical writes a deterministic textual form used for digests; any
// semantic change to the program changes this string.
func canonicalParams(m map[string]uint64) string {
	return string(appendCanonicalParams(nil, m))
}

// appendCanonicalParams appends canonicalParams' form to buf. Table
// entries carry zero or one params in practice, so the sort buffer lives
// on the stack and the digest path pays no per-call allocations.
func appendCanonicalParams(buf []byte, m map[string]uint64) []byte {
	if len(m) == 0 {
		return buf
	}
	var stack [8]string
	keys := stack[:0]
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = strconv.AppendUint(buf, m[k], 10)
		buf = append(buf, ',')
	}
	return buf
}
