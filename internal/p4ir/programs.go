package p4ir

// Canonical program library.
//
// These are the dataplane programs the paper's narrative names or
// implies: plain L2/L3 forwarding, the firewall and ACL of UC1
// ("firewall_v5.p4", "ACL_v3.p4"), a flow monitor (the §1 monitoring
// discussion and UC4's C2 fingerprinting), and the Athens-affair rogue
// variant that silently duplicates selected traffic to an exfiltration
// port. All are built from the same header set so any of them can be
// loaded on any pisa switch in the simulations.

// Standard headers shared by the program library.
func stdHeaders() []*HeaderType {
	return []*HeaderType{
		{Name: "eth", Fields: []Field{{"dst", 48}, {"src", 48}, {"typ", 16}}},
		{Name: "ip", Fields: []Field{{"src", 32}, {"dst", 32}, {"proto", 8}, {"ttl", 8}}},
		{Name: "tp", Fields: []Field{{"sport", 16}, {"dport", 16}, {"flags", 8}}},
	}
}

// EtherTypeIP is the eth.typ value that selects the IP parser branch.
const EtherTypeIP = 0x0800

func stdParser() []*ParserState {
	return []*ParserState{
		{
			Name: "start", Extract: "eth", SelectField: "eth.typ",
			Transitions: []Transition{{Value: EtherTypeIP, Next: "parse_ip"}},
			Default:     StateAccept,
		},
		{
			Name: "parse_ip", Extract: "ip", SelectField: "ip.proto",
			Transitions: []Transition{{Value: 6, Next: "parse_tp"}, {Value: 17, Next: "parse_tp"}},
			Default:     StateAccept,
		},
		{Name: "parse_tp", Extract: "tp", Default: StateAccept},
	}
}

func fwdActions() []*Action {
	return []*Action{
		{Name: "fwd", Params: []string{"port"}, Ops: []Op{{Kind: OpForward, Src: P("port")}}},
		{Name: "drop", Ops: []Op{{Kind: OpDrop}}},
		{Name: "nop"},
	}
}

// NewForwarding returns a plain destination-based forwarder: one ingress
// table keyed exactly on ip.dst choosing an output port.
func NewForwarding(name string) *Program {
	return &Program{
		Name:    name,
		Headers: stdHeaders(),
		Parser:  stdParser(),
		Actions: fwdActions(),
		Ingress: []*Table{{
			Name:          "ipv4_fwd",
			Keys:          []Key{{Field: "ip.dst", Kind: MatchExact}},
			Actions:       []string{"fwd", "drop", "nop"},
			DefaultAction: "drop",
			MaxEntries:    1024,
		}},
	}
}

// NewFirewall returns "firewall_v5.p4": a stateless firewall with a
// ternary 5-tuple-ish filter table applied before destination forwarding.
// Denied traffic is dropped; permitted traffic proceeds to ipv4_fwd.
func NewFirewall(name string) *Program {
	p := NewForwarding(name)
	p.Ingress = append([]*Table{{
		Name: "acl_filter",
		Keys: []Key{
			{Field: "ip.src", Kind: MatchTernary},
			{Field: "ip.dst", Kind: MatchTernary},
			{Field: "tp.dport", Kind: MatchTernary},
		},
		Actions:       []string{"drop", "nop"},
		DefaultAction: "nop",
		MaxEntries:    512,
	}}, p.Ingress...)
	return p
}

// NewACL returns "ACL_v3.p4": an exact-match allowlist on (ip.src,
// tp.dport) whose default denies, followed by forwarding — stricter than
// the firewall's default-allow.
func NewACL(name string) *Program {
	p := NewForwarding(name)
	p.Ingress = append([]*Table{{
		Name: "allowlist",
		Keys: []Key{
			{Field: "ip.src", Kind: MatchExact},
			{Field: "tp.dport", Kind: MatchExact},
		},
		Actions:       []string{"nop", "drop"},
		DefaultAction: "drop",
		MaxEntries:    256,
	}}, p.Ingress...)
	return p
}

// NewMonitor returns a flow monitor: forwarding plus per-flow packet
// counting into a register indexed by a flow-hash table entry, the
// substrate for UC4's traffic-pattern scanning.
func NewMonitor(name string) *Program {
	p := NewForwarding(name)
	p.Registers = []*Register{{Name: "flow_count", Size: 4096}}
	p.Actions = append(p.Actions, &Action{
		Name:   "count_flow",
		Params: []string{"idx"},
		Ops:    []Op{{Kind: OpCount, Reg: "flow_count", Index: P("idx")}},
	})
	p.Ingress = append([]*Table{{
		Name: "flow_stats",
		Keys: []Key{
			{Field: "ip.src", Kind: MatchExact},
			{Field: "ip.dst", Kind: MatchExact},
		},
		Actions:       []string{"count_flow", "nop"},
		DefaultAction: "nop",
		MaxEntries:    4096,
	}}, p.Ingress...)
	return p
}

// NewRogueForwarding returns the Athens-affair variant of NewForwarding:
// behaviourally identical on all traffic except that packets from
// targeted sources are *also* emitted on a mirror port via a second
// ternary table. Loaded in place of the legitimate program, it is
// invisible to functional probing of non-targeted flows — only
// attestation of the program digest reveals the swap (UC1).
func NewRogueForwarding(name string, mirrorPort uint64) *Program {
	p := NewForwarding(name)
	p.Actions = append(p.Actions, &Action{
		// The mirror action forwards to the tap; in the pisa runtime the
		// clone is modelled by the mirror table running in egress after
		// normal forwarding chose its port.
		Name: "mirror", Ops: []Op{
			{Kind: OpSet, Dst: "meta.mirror_port", Src: C(mirrorPort)},
			{Kind: OpSet, Dst: "meta.mirrored", Src: C(1)},
		},
	})
	p.Egress = append(p.Egress, &Table{
		Name:          "intercept",
		Keys:          []Key{{Field: "ip.src", Kind: MatchTernary}},
		Actions:       []string{"mirror", "nop"},
		DefaultAction: "nop",
		MaxEntries:    128,
	})
	return p
}
